package autoscale

import (
	"testing"

	"vizsched/internal/units"
)

func tick(t units.Time, i int, d units.Duration) units.Time { return t.Add(units.Duration(i) * d) }

// TestAutoscalePolicyHysteresis drives the controller through a pressure
// step and checks the band behaviour: no action before HoldUp consecutive
// pressured samples, exactly one action per streak, and the dead band
// resetting both runs.
func TestAutoscalePolicyHysteresis(t *testing.T) {
	cfg := &Config{MaxNodes: 8, HoldUp: 3, HoldDown: 4, Cooldown: units.Second}
	p := NewPolicy(cfg)
	iv := p.Config().Interval

	calm := Signals{ActiveNodes: 4, QueueDepth: 2, MinHeadroom: 1}
	hot := Signals{ActiveNodes: 4, QueueDepth: 40, MinHeadroom: 1}

	var now units.Time
	for i := 0; i < 2; i++ {
		if d := p.Evaluate(tick(now, i, iv), hot); d != Hold {
			t.Fatalf("sample %d: got %v before HoldUp satisfied", i, d)
		}
	}
	if d := p.Evaluate(tick(now, 2, iv), hot); d != ScaleUp {
		t.Fatalf("3rd pressured sample: got %v, want ScaleUp", d)
	}

	// A dead-band sample (between QueueLow and QueueHigh) must reset the
	// streak: two more hot samples after it stay Hold even past cooldown.
	now = tick(now, 3, iv).Add(cfg.Cooldown)
	mid := Signals{ActiveNodes: 4, QueueDepth: 8, MinHeadroom: 1} // 2/node: in band
	if d := p.Evaluate(now, mid); d != Hold {
		t.Fatalf("dead-band sample: got %v", d)
	}
	for i := 0; i < 2; i++ {
		if d := p.Evaluate(tick(now, i+1, iv), hot); d != Hold {
			t.Fatalf("post-reset sample %d: got %v, want Hold", i, d)
		}
	}
	if d := p.Evaluate(tick(now, 3, iv), hot); d != ScaleUp {
		t.Fatalf("want ScaleUp after fresh streak, got %v", d)
	}

	// Quiet samples eventually drain — but only after HoldDown in a row,
	// and never below MinNodes.
	now = tick(now, 4, iv).Add(cfg.Cooldown)
	for i := 0; i < 3; i++ {
		if d := p.Evaluate(tick(now, i, iv), calm); d != Hold {
			t.Fatalf("quiet sample %d: got %v before HoldDown satisfied", i, d)
		}
	}
	if d := p.Evaluate(tick(now, 3, iv), calm); d != Drain {
		t.Fatalf("4th quiet sample: got %v, want Drain", d)
	}
}

// TestAutoscalePolicyCooldown verifies decisions are spaced by Cooldown
// even under sustained pressure.
func TestAutoscalePolicyCooldown(t *testing.T) {
	cfg := &Config{MaxNodes: 8, HoldUp: 1, Cooldown: 10 * units.Second}
	p := NewPolicy(cfg)
	hot := Signals{ActiveNodes: 2, QueueDepth: 100, MinHeadroom: 1}
	if d := p.Evaluate(0, hot); d != ScaleUp {
		t.Fatalf("first sample: got %v", d)
	}
	if d := p.Evaluate(units.Time(5*units.Second), hot); d != Hold {
		t.Fatalf("inside cooldown: got %v", d)
	}
	if d := p.Evaluate(units.Time(10*units.Second), hot); d != ScaleUp {
		t.Fatalf("after cooldown: got %v", d)
	}
}

// TestAutoscalePolicyGuards checks the structural guards: the fleet band,
// the single-drain-at-a-time rule, SLO pressure overriding a shallow
// queue, and cache pressure blocking drains.
func TestAutoscalePolicyGuards(t *testing.T) {
	cfg := &Config{MinNodes: 2, MaxNodes: 4, HoldUp: 1, HoldDown: 1, Cooldown: units.Millisecond}
	var now units.Time
	next := func() units.Time { now = now.Add(units.Second); return now }

	p := NewPolicy(cfg)
	if d := p.Evaluate(next(), Signals{ActiveNodes: 4, QueueDepth: 400, MinHeadroom: 1}); d != Hold {
		t.Fatalf("at MaxNodes: got %v", d)
	}
	// Draining nodes count against the ceiling: 3 active + 1 draining = 4.
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, DrainingNodes: 1, QueueDepth: 400, MinHeadroom: 1}); d != Hold {
		t.Fatalf("active+draining at MaxNodes: got %v", d)
	}

	p = NewPolicy(cfg)
	if d := p.Evaluate(next(), Signals{ActiveNodes: 2, QueueDepth: 0, MinHeadroom: 1}); d != Hold {
		t.Fatalf("at MinNodes: got %v", d)
	}
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, DrainingNodes: 1, QueueDepth: 0, MinHeadroom: 1}); d != Hold {
		t.Fatalf("drain already in flight: got %v", d)
	}
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, QueueDepth: 0, MinHeadroom: 1, CacheUtilization: 0.95}); d != Hold {
		t.Fatalf("cache above high water: got %v", d)
	}
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, QueueDepth: 0, MinHeadroom: 1}); d != Drain {
		t.Fatalf("drainable sample: got %v", d)
	}

	// SLO pressure scales up even with an empty queue; an empty queue with
	// thin headroom must never drain.
	p = NewPolicy(cfg)
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, QueueDepth: 0, MinHeadroom: 0.05}); d != ScaleUp {
		t.Fatalf("thin headroom: got %v, want ScaleUp", d)
	}
	p = NewPolicy(cfg)
	if d := p.Evaluate(next(), Signals{ActiveNodes: 3, QueueDepth: 0, MinHeadroom: 1, LadderLevel: 2}); d != ScaleUp {
		t.Fatalf("ladder level 2: got %v, want ScaleUp", d)
	}
}

// TestAutoscalePickVictim pins the victim ordering: idle beats busy, then
// lighter home pressure, then smaller cache, then higher ID.
func TestAutoscalePickVictim(t *testing.T) {
	if _, ok := PickVictim(nil); ok {
		t.Fatal("empty candidate list returned a victim")
	}
	cands := []Candidate{
		{ID: 0, Busy: true, HomePressure: 0},
		{ID: 1, Busy: false, HomePressure: 5, CacheBytes: units.MB},
		{ID: 2, Busy: false, HomePressure: 2, CacheBytes: 4 * units.MB},
		{ID: 3, Busy: false, HomePressure: 2, CacheBytes: 2 * units.MB},
		{ID: 4, Busy: false, HomePressure: 2, CacheBytes: 2 * units.MB},
	}
	id, ok := PickVictim(cands)
	if !ok || id != 4 {
		t.Fatalf("PickVictim = %v,%v; want node 4 (idle, lightest homes, smallest cache, highest ID)", id, ok)
	}
	SortCandidates(cands)
	want := []int{4, 3, 2, 1, 0}
	for i, c := range cands {
		if int(c.ID) != want[i] {
			t.Fatalf("SortCandidates order %v at %d; want %v", c.ID, i, want)
		}
	}
}

// TestAutoscaleHeadroom pins the clamping behaviour the signal builders
// rely on.
func TestAutoscaleHeadroom(t *testing.T) {
	slo := 100 * units.Millisecond
	cases := []struct {
		p95  units.Duration
		want float64
	}{
		{0, 1},                        // no observations: full headroom
		{50 * units.Millisecond, 0.5}, // half the budget used
		{100 * units.Millisecond, 0},  // at SLO
		{250 * units.Millisecond, 0},  // beyond SLO clamps at zero
	}
	for _, c := range cases {
		if got := Headroom(c.p95, slo); got != c.want {
			t.Fatalf("Headroom(%v) = %v, want %v", c.p95, got, c.want)
		}
	}
	if got := Headroom(50*units.Millisecond, 0); got != 1 {
		t.Fatalf("zero SLO should yield full headroom, got %v", got)
	}
}
