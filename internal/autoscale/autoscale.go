// Package autoscale decides when the fleet itself becomes a scheduling
// decision: a hysteresis-banded control loop that watches queue depth,
// per-tenant SLO headroom (the QoS overload-ladder state), and cache
// pressure, and emits scale-up or graceful-drain decisions.
//
// The policy is a pure function of virtual-time signals — no wall clock, no
// randomness — so the simulator stays bit-deterministic at any `-parallel`
// and the live head can evaluate the same policy on its dispatcher tick.
// Executing a decision (demoting home sets, migrating queued batch tasks,
// pre-warming the survivors' caches) is the caller's job; this package only
// says *when* and *which node*.
package autoscale

import (
	"sort"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

// Config tunes the control loop. The zero value is not usable on its own;
// callers normalize through withDefaults, so partially filled literals get
// sane bands. A nil *Config disables autoscaling entirely — the invariant
// shared by every optional subsystem in this repo.
type Config struct {
	// Interval is the control-loop period: how often the policy samples
	// its signals. Sim registers a virtual-time ticker; the live head
	// piggybacks on its health-check tick.
	Interval units.Duration

	// MinNodes and MaxNodes band the active fleet. MaxNodes is clamped to
	// the provisioned fleet by the caller; zero means "use the fleet size".
	MinNodes int
	MaxNodes int
	// Initial is the number of nodes active at start; zero means MaxNodes
	// (start from the fixed-fleet shape and let the policy shrink it).
	Initial int

	// QueueHigh and QueueLow are per-active-node queue-depth bands: above
	// QueueHigh counts as scale-up pressure, at or below QueueLow counts
	// as drain pressure, and the gap between them is the hysteresis dead
	// band where the controller holds.
	QueueHigh float64
	QueueLow  float64

	// HeadroomMin is the SLO-headroom floor: when any tenant's headroom
	// (1 − p95/SLO, clamped to [0,1]) falls below it, or the overload
	// ladder leaves level 0, the policy treats the sample as scale-up
	// pressure regardless of queue depth. Draining requires full-fleet
	// headroom strictly above HeadroomMin.
	HeadroomMin float64

	// CacheHighWater blocks drains while the active fleet's aggregate
	// cache utilization exceeds it: the survivors could not absorb the
	// victim's working set without evicting hot data, so shrinking would
	// trade node-hours for cold-start misses.
	CacheHighWater float64

	// HoldUp and HoldDown are the hysteresis run lengths: how many
	// consecutive pressured samples the loop must see before acting.
	// Scale-up reacts faster than drain by default — adding capacity is
	// cheap to undo, draining is not.
	HoldUp   int
	HoldDown int

	// Cooldown is the minimum spacing between consecutive decisions, so
	// the loop observes the effect of one action before taking another.
	Cooldown units.Duration

	// MaxDrain bounds how long a drain may wait for running tasks to
	// finish and evacuation warms to land; past it the drain completes
	// anyway and whatever orphans remain unwarmed are dropped (counted in
	// the autoscale outcome, never fed to crash-recovery re-seeding).
	MaxDrain units.Duration

	// Warmup is the bring-up pre-warm window: for this long after a node
	// (re)activates, the control loop keeps offering the predictor's
	// hottest chunks to the prefetch governor for copying onto the new
	// node, so it joins the fleet warm instead of paying demand misses on
	// the interactive path.
	Warmup units.Duration
}

// DefaultConfig returns the tuning used by the elasticsweep experiment.
func DefaultConfig() *Config {
	c := Config{}
	return c.withDefaults()
}

// withDefaults fills zero fields with the defaults. It returns a copy.
func (c Config) withDefaults() *Config {
	if c.Interval <= 0 {
		c.Interval = 500 * units.Millisecond
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.QueueHigh <= 0 {
		c.QueueHigh = 4
	}
	if c.QueueLow <= 0 {
		c.QueueLow = 0.5
	}
	if c.HeadroomMin <= 0 {
		c.HeadroomMin = 0.2
	}
	if c.CacheHighWater <= 0 {
		c.CacheHighWater = 0.9
	}
	if c.HoldUp <= 0 {
		c.HoldUp = 2
	}
	if c.HoldDown <= 0 {
		c.HoldDown = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * units.Second
	}
	if c.MaxDrain <= 0 {
		c.MaxDrain = 30 * units.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 10 * units.Second
	}
	return &c
}

// Signals is one control-loop sample. Every field is derived from
// virtual-time state (or dispatcher-owned tables on the live head) so
// evaluating the policy is deterministic.
type Signals struct {
	// ActiveNodes is the number of nodes currently accepting work;
	// DrainingNodes counts drains still in flight (they hold capacity but
	// take no new work, and the policy won't stack another drain on top).
	ActiveNodes   int
	DrainingNodes int

	// QueueDepth is every job waiting for a node: the scheduler's working
	// window plus the QoS fair queues behind it. BatchBacklog is the
	// batch-class subset (deferred work, not latency pressure).
	QueueDepth   int
	BatchBacklog int

	// MinHeadroom is the worst tenant's SLO headroom, 1 − p95/SLO clamped
	// to [0,1]; 1 when no interactive latency has been observed yet.
	MinHeadroom float64
	// LadderLevel is the QoS overload-ladder level (0 = healthy).
	LadderLevel int

	// CacheUtilization is aggregate used/quota across active nodes' caches.
	CacheUtilization float64
}

// Decision is the policy's output for one sample.
type Decision int

const (
	// Hold takes no action this sample.
	Hold Decision = iota
	// ScaleUp activates one more node.
	ScaleUp
	// Drain starts a graceful drain of one node.
	Drain
)

// String names the decision for logs and experiment tables.
func (d Decision) String() string {
	switch d {
	case ScaleUp:
		return "scale-up"
	case Drain:
		return "drain"
	default:
		return "hold"
	}
}

// Policy is the hysteresis-banded controller. Not safe for concurrent use;
// both planes evaluate it from a single goroutine (the DES event loop, the
// head's dispatcher).
type Policy struct {
	cfg *Config

	highRun int // consecutive samples with scale-up pressure
	lowRun  int // consecutive samples with drain pressure

	acted   bool       // at least one decision has been issued
	lastAct units.Time // virtual time of the last non-Hold decision
}

// NewPolicy builds a controller from cfg (nil selects the defaults).
func NewPolicy(cfg *Config) *Policy {
	if cfg == nil {
		return &Policy{cfg: DefaultConfig()}
	}
	return &Policy{cfg: cfg.withDefaults()}
}

// Config exposes the normalized tuning the policy runs with.
func (p *Policy) Config() *Config { return p.cfg }

// Evaluate consumes one sample and returns the action to take now. The
// hysteresis state advances on every call, so callers must invoke it once
// per control-loop tick, pressured or not.
func (p *Policy) Evaluate(now units.Time, s Signals) Decision {
	cfg := p.cfg
	active := s.ActiveNodes
	if active < 1 {
		active = 1
	}
	perNode := float64(s.QueueDepth) / float64(active)

	sloPressed := s.LadderLevel > 0 || s.MinHeadroom < cfg.HeadroomMin
	up := perNode > cfg.QueueHigh || sloPressed
	down := !up && perNode <= cfg.QueueLow && s.LadderLevel == 0 &&
		s.MinHeadroom > cfg.HeadroomMin

	// The runs are mutually exclusive: any sample that is not drain-quiet
	// resets the drain run, and vice versa. The dead band between QueueLow
	// and QueueHigh resets both, which is what makes the band sticky.
	if up {
		p.highRun++
		p.lowRun = 0
	} else if down {
		p.lowRun++
		p.highRun = 0
	} else {
		p.highRun, p.lowRun = 0, 0
	}

	if p.acted && now.Sub(p.lastAct) < cfg.Cooldown {
		return Hold
	}

	if p.highRun >= cfg.HoldUp && cfg.MaxNodes > 0 && s.ActiveNodes+s.DrainingNodes < cfg.MaxNodes {
		p.note(now)
		return ScaleUp
	}
	if p.lowRun >= cfg.HoldDown && s.DrainingNodes == 0 &&
		s.ActiveNodes > cfg.MinNodes &&
		s.CacheUtilization <= cfg.CacheHighWater {
		p.note(now)
		return Drain
	}
	return Hold
}

// note records a decision for cooldown spacing and resets both runs, so the
// next action needs a fresh pressure streak.
func (p *Policy) note(now units.Time) {
	p.acted = true
	p.lastAct = now
	p.highRun, p.lowRun = 0, 0
}

// Candidate describes one drainable node for victim selection.
type Candidate struct {
	ID core.NodeID
	// Busy reports whether the node is currently executing or loading.
	Busy bool
	// HomePressure is the number of chunks whose home set includes the
	// node — the amount of re-homing and pre-warming a drain would cost.
	HomePressure int
	// CacheBytes is the node's resident cache footprint.
	CacheBytes units.Bytes
}

// PickVictim chooses which node a Drain decision removes: idle before busy,
// then the smallest home pressure (cheapest re-home), then the smallest
// cache footprint (least warmth thrown away), then the highest ID so the
// choice is total and deterministic. Returns false if there are no
// candidates.
func PickVictim(cands []Candidate) (core.NodeID, bool) {
	if len(cands) == 0 {
		return 0, false
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if victimLess(cands[i], cands[best]) {
			best = i
		}
	}
	return cands[best].ID, true
}

// victimLess orders candidates by drain preference.
func victimLess(a, b Candidate) bool {
	if a.Busy != b.Busy {
		return !a.Busy
	}
	if a.HomePressure != b.HomePressure {
		return a.HomePressure < b.HomePressure
	}
	if a.CacheBytes != b.CacheBytes {
		return a.CacheBytes < b.CacheBytes
	}
	return a.ID > b.ID
}

// SortCandidates orders a slice by drain preference (best victim first).
// Exposed for callers that want a fallback list rather than a single pick.
func SortCandidates(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool { return victimLess(cands[i], cands[j]) })
}

// Headroom computes SLO headroom from an observed p95 latency: 1 − p95/SLO
// clamped to [0,1]. A zero p95 (no observations) counts as full headroom.
func Headroom(p95, slo units.Duration) float64 {
	if slo <= 0 || p95 <= 0 {
		return 1
	}
	h := 1 - float64(p95)/float64(slo)
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}
