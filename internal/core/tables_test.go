package core

import (
	"testing"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// mkJob builds a test job over a dataset with nChunks chunks of the given
// size.
func mkJob(id JobID, class Class, action ActionID, ds volume.DatasetID, nChunks int, size units.Bytes, issued units.Time) *Job {
	j := &Job{ID: id, Class: class, Action: action, Dataset: ds, Issued: issued}
	j.Tasks = make([]Task, nChunks)
	for i := range j.Tasks {
		j.Tasks[i] = Task{
			Job:   j,
			Index: i,
			Chunk: volume.ChunkID{Dataset: ds, Index: i},
			Size:  size,
		}
	}
	j.Remaining = nChunks
	return j
}

func newHead(n int) *HeadState {
	return NewHeadState(n, 2*units.GB, DefaultCostModel())
}

func TestNewHeadStatePanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHeadState(0, units.GB, DefaultCostModel())
}

func TestEstimateLazyInitAndOverride(t *testing.T) {
	h := newHead(2)
	c := volume.ChunkID{Dataset: 1, Index: 0}
	e := h.Estimate(c, 512*units.MB, 4)
	if e != h.Model.MissExec(512*units.MB, 4) {
		t.Errorf("initial estimate = %v", e)
	}
	// A correction for a miss overwrites the estimate with the observed time.
	j := mkJob(1, Interactive, 1, 1, 4, 512*units.MB, 0)
	h.Correct(TaskResult{
		Task: &j.Tasks[0], Node: 0, Hit: false,
		Exec: 3 * units.Second, Predicted: e,
	}, units.Time(10*units.Second))
	if got := h.Estimate(c, 512*units.MB, 4); got != 3*units.Second {
		t.Errorf("estimate after correction = %v, want 3s", got)
	}
	// Hits do not touch the estimate.
	h.Correct(TaskResult{
		Task: &j.Tasks[0], Node: 0, Hit: true,
		Exec: 8 * units.Millisecond, Predicted: 8 * units.Millisecond,
	}, units.Time(11*units.Second))
	if got := h.Estimate(c, 512*units.MB, 4); got != 3*units.Second {
		t.Errorf("estimate after hit correction = %v, want 3s", got)
	}
}

func TestIdleThresholdIsHalfEstimate(t *testing.T) {
	h := newHead(2)
	c := volume.ChunkID{Dataset: 1, Index: 0}
	e := h.Estimate(c, 512*units.MB, 4)
	if got := h.IdleThreshold(c, 512*units.MB, 4); got != e/2 {
		t.Errorf("ε = %v, want %v", got, e/2)
	}
}

func TestCommitAssignUpdatesTables(t *testing.T) {
	h := newHead(2)
	j := mkJob(1, Interactive, 1, 1, 4, 512*units.MB, 0)
	tk := &j.Tasks[0]
	now := units.Time(units.Second)

	exec := h.CommitAssign(tk, 0, now)
	if exec != h.Model.MissExec(512*units.MB, 4) {
		t.Errorf("predicted exec = %v", exec)
	}
	if h.Available[0] != now.Add(exec) {
		t.Errorf("Available[0] = %v, want %v", h.Available[0], now.Add(exec))
	}
	if !h.Caches[0].Contains(tk.Chunk) {
		t.Error("predicted cache missing chunk after assign")
	}
	if h.InteractiveIdle(0, now) != 0 {
		t.Errorf("lastInteractive not stamped: idle = %v", h.InteractiveIdle(0, now))
	}
	// Second assignment of the same chunk predicts a hit.
	tk2 := &j.Tasks[1]
	tk2.Chunk = tk.Chunk
	exec2 := h.CommitAssign(tk2, 0, now)
	if exec2 != h.Model.HitExec(512*units.MB, 4) {
		t.Errorf("second assign predicted %v, want hit cost", exec2)
	}
}

func TestCommitAssignBatchDoesNotStampInteractive(t *testing.T) {
	h := newHead(1)
	j := mkJob(1, Batch, 1, 1, 1, units.MB, 0)
	now := units.Time(units.Second)
	h.CommitAssign(&j.Tasks[0], 0, now)
	if h.InteractiveIdle(0, now) <= 0 {
		t.Error("batch assignment stamped lastInteractive")
	}
}

func TestCorrectAppliesDriftAndEvictions(t *testing.T) {
	h := newHead(1)
	j := mkJob(1, Interactive, 1, 1, 2, 512*units.MB, 0)
	now := units.Time(0)
	pred := h.CommitAssign(&j.Tasks[0], 0, now)
	availBefore := h.Available[0]

	// The task actually ran 1s longer than predicted, and the node evicted
	// a chunk the head thought was resident.
	other := volume.ChunkID{Dataset: 9, Index: 0}
	h.Caches[0].Insert(other, 512*units.MB)
	h.Correct(TaskResult{
		Task: &j.Tasks[0], Node: 0, Hit: false,
		Exec: pred + units.Duration(units.Second), Predicted: pred,
		Evicted: []volume.ChunkID{other},
	}, units.Time(0))
	if h.Available[0] != availBefore.Add(units.Duration(units.Second)) {
		t.Errorf("Available not drifted: %v", h.Available[0])
	}
	if h.Caches[0].Contains(other) {
		t.Error("evicted chunk still predicted resident")
	}
	if !h.Caches[0].Contains(j.Tasks[0].Chunk) {
		t.Error("executed chunk not predicted resident")
	}
}

func TestCorrectClampsAvailableToNow(t *testing.T) {
	h := newHead(1)
	j := mkJob(1, Interactive, 1, 1, 1, units.MB, 0)
	now := units.Time(0)
	pred := h.CommitAssign(&j.Tasks[0], 0, now)
	// Task finished far faster than predicted; Available must not go below
	// the correction time.
	at := units.Time(5 * units.Second)
	h.Correct(TaskResult{
		Task: &j.Tasks[0], Node: 0, Hit: true,
		Exec: units.Duration(units.Millisecond), Predicted: pred + 100*units.Second,
	}, at)
	if h.Available[0] != at {
		t.Errorf("Available = %v, want clamped to %v", h.Available[0], at)
	}
}

func TestCachedOnAndFailure(t *testing.T) {
	h := newHead(3)
	c := volume.ChunkID{Dataset: 1, Index: 0}
	h.Caches[0].Insert(c, units.MB)
	h.Caches[2].Insert(c, units.MB)
	nodes := h.CachedOn(c)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Errorf("CachedOn = %v", nodes)
	}
	h.MarkFailed(0)
	if h.Alive(0) {
		t.Error("failed node still alive")
	}
	nodes = h.CachedOn(c)
	if len(nodes) != 1 || nodes[0] != 2 {
		t.Errorf("CachedOn after failure = %v", nodes)
	}
	h.MarkRepaired(0, units.Time(units.Second))
	if !h.Alive(0) || h.Available[0] != units.Time(units.Second) {
		t.Error("repair did not restore node")
	}
	if h.Caches[0].Contains(c) {
		t.Error("repaired node should come back cold")
	}
}

func TestPredictExecUsesCacheState(t *testing.T) {
	h := newHead(2)
	j := mkJob(1, Interactive, 1, 1, 4, 512*units.MB, 0)
	tk := &j.Tasks[0]
	miss := h.PredictExec(tk, 0)
	h.Caches[0].Insert(tk.Chunk, tk.Size)
	hit := h.PredictExec(tk, 0)
	if hit >= miss {
		t.Errorf("hit %v not cheaper than miss %v", hit, miss)
	}
	if hit != h.Model.HitExec(tk.Size, 4) {
		t.Errorf("hit = %v", hit)
	}
}
