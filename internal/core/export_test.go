package core

import (
	"math/rand"
	"reflect"
	"testing"

	"vizsched/internal/cache"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// mutateRandomly drives a HeadState through n random table mutations using
// the full public mutation surface, returning the jobs it fabricated so the
// same sequence can be replayed against a restored state.
func mutateRandomly(h *HeadState, rng *rand.Rand, n int) {
	now := units.Time(0)
	for i := 0; i < n; i++ {
		now = now.Add(units.Duration(rng.Intn(5)) * units.Millisecond)
		chunk := volume.ChunkID{Dataset: volume.DatasetID(rng.Intn(3)), Index: rng.Intn(16)}
		node := NodeID(rng.Intn(h.Nodes()))
		job := &Job{ID: JobID(i), Class: Class(rng.Intn(2)), Tasks: make([]Task, 1+rng.Intn(4))}
		t := &Task{Job: job, Chunk: chunk, Size: units.Bytes(1+rng.Intn(4)) * units.MB}
		switch rng.Intn(10) {
		case 0:
			h.MarkSuspect(node)
		case 1:
			h.MarkUp(node)
		case 2:
			if h.Nodes() > 1 && h.aliveCount() > 1 {
				h.MarkFailed(node)
			}
		case 3:
			h.MarkRepaired(node, now)
		case 4:
			h.MarkPrefetched(chunk, node, t.Size)
		default:
			if h.Health(node) != HealthUp {
				h.MarkRepaired(node, now)
			}
			pred := h.CommitAssign(t, node, now)
			if rng.Intn(2) == 0 {
				h.Correct(TaskResult{
					Task: t, Node: node, Hit: rng.Intn(2) == 0,
					Exec: pred + units.Duration(rng.Intn(3))*units.Millisecond, Predicted: pred,
				}, now.Add(pred))
			}
		}
	}
}

func (h *HeadState) aliveCount() int {
	n := 0
	for k := range h.Available {
		if h.health[k] == HealthUp {
			n++
		}
	}
	return n
}

func TestTableDumpRoundTripDeepEqual(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeadState(4, 16*units.MB, DefaultCostModel())
		h.SetReplication(2)
		mutateRandomly(h, rng, 300)

		dump := h.Dump()
		restored := LoadTables(dump, h.Model)
		again := restored.Dump()
		if !reflect.DeepEqual(dump, again) {
			t.Fatalf("seed %d: restored dump differs from original", seed)
		}

		// Behavioral equality: identical further mutations keep the states
		// in lockstep.
		rng2 := rand.New(rand.NewSource(seed + 100))
		rng3 := rand.New(rand.NewSource(seed + 100))
		mutateRandomly(h, rng2, 100)
		mutateRandomly(restored, rng3, 100)
		if !reflect.DeepEqual(h.Dump(), restored.Dump()) {
			t.Fatalf("seed %d: states diverged under identical mutations after restore", seed)
		}
	}
}

func TestResyncCacheAdoptsAnnouncedTruth(t *testing.T) {
	h := NewHeadState(2, 16*units.MB, DefaultCostModel())
	c0 := volume.ChunkID{Dataset: 0, Index: 0}
	c1 := volume.ChunkID{Dataset: 0, Index: 1}
	c2 := volume.ChunkID{Dataset: 0, Index: 2}
	h.Caches[0].Insert(c0, units.MB)
	h.MarkPrefetched(c1, 0, units.MB)
	h.MarkPrefetched(c2, 0, units.MB)

	// The worker announces: c2 survives, c1 is gone, and it holds c0 plus a
	// chunk the head never predicted.
	c3 := volume.ChunkID{Dataset: 0, Index: 3}
	var entries []cache.Entry
	for _, e := range h.Caches[0].Export() {
		if e.ID != c1 {
			entries = append(entries, e)
		}
	}
	entries = append(entries, cache.Entry{ID: c3, Size: units.MB})
	h.ResyncCache(0, entries)

	if !h.Caches[0].Contains(c3) || h.Caches[0].Contains(c1) {
		t.Fatalf("resync did not adopt announced contents: resident=%v", h.Caches[0].Resident())
	}
	if h.IsPrefetched(c1, 0) {
		t.Error("dead prefetched residency survived resync")
	}
	if !h.IsPrefetched(c2, 0) {
		t.Error("live prefetched residency was dropped by resync")
	}
	_, _, wasted := h.PrefetchAccuracy()
	if wasted != 1 {
		t.Errorf("wasted = %d, want 1 (the c1 warm died with the disconnect)", wasted)
	}
}
