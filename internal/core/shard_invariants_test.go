package core_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/qos"
	"vizsched/internal/shard"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file extends the core invariant property suite to the sharded
// control plane (§5.11). It lives in package core_test because the shard
// package imports core: the properties tie core's session identifiers to
// the ring, the shared directory, and the QoS fair queue. CI runs it under
// -race -count=3 with the rest of the suite.

// TestInvariantShardOwnershipUnique: session ownership is a pure function
// of the session key — no (tenant, action) pair can ever be owned by two
// shards, repeated lookups agree, and tenant affinity keeps every action of
// a named tenant on the tenant's shard.
func TestInvariantShardOwnershipUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shards := range []int{1, 2, 4, 7, 16} {
		ring := shard.NewRing(shards)
		owned := map[uint64]int{}
		for trial := 0; trial < 4000; trial++ {
			tenant := core.TenantID(rng.Intn(6))
			action := core.ActionID(rng.Intn(512))
			key := shard.SessionKey(tenant, action)
			s := ring.Owner(tenant, action)
			if s < 0 || s >= shards {
				t.Fatalf("%d shards: owner %d out of range for (%d,%d)", shards, s, tenant, action)
			}
			if prev, ok := owned[key]; ok && prev != s {
				t.Fatalf("%d shards: session %x owned by shards %d and %d", shards, key, prev, s)
			}
			owned[key] = s
			if got := ring.OwnerKey(key); got != s {
				t.Fatalf("%d shards: Owner=%d but OwnerKey=%d for key %x", shards, s, got, key)
			}
			if tenant != 0 {
				// Tenant affinity: the action must not influence placement.
				if other := ring.Owner(tenant, core.ActionID(rng.Intn(512))); other != s {
					t.Fatalf("%d shards: tenant %d split across shards %d and %d", shards, tenant, s, other)
				}
			}
		}
	}
}

// TestInvariantShardResizeMonotonic: growing the plane from n to n+1 shards
// moves sessions only onto the new shard — jump consistent hashing's
// monotonicity. A session can therefore never migrate between two existing
// shards across a resize, the property that makes shard growth a directory
// warm-up rather than a global reshuffle.
func TestInvariantShardResizeMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = shard.SessionKey(core.TenantID(rng.Intn(64)), core.ActionID(rng.Intn(1<<20)))
	}
	for n := 1; n < 12; n++ {
		old := shard.NewRing(n)
		grown := shard.NewRing(n + 1)
		moved := 0
		for _, key := range keys {
			a, b := old.OwnerKey(key), grown.OwnerKey(key)
			if a == b {
				continue
			}
			if b != n {
				t.Fatalf("growing %d→%d shards moved key %x from shard %d to existing shard %d", n, n+1, key, a, b)
			}
			moved++
		}
		// Roughly 1/(n+1) of keys should move; a plane that moves none is
		// not rebalancing, one that moves most is not consistent hashing.
		if frac := float64(moved) / float64(len(keys)); frac > 2.0/float64(n+1) {
			t.Fatalf("growing %d→%d shards moved %.1f%% of sessions, want ≈%.1f%%",
				n, n+1, 100*frac, 100.0/float64(n+1))
		}
	}
}

// TestInvariantDirectoryHomesConsistent: under concurrent randomized
// publishes from N shard writers, the directory stays structurally sound —
// home sets never exceed k, never contain duplicates or out-of-range nodes
// — and once quiescent, every shard reads the same homes and residency for
// every chunk (single source of truth, not per-shard divergence).
func TestInvariantDirectoryHomesConsistent(t *testing.T) {
	const (
		shardsN = 4
		nodes   = 12
		k       = 3
		chunks  = 48
		ops     = 3000
	)
	dir := shard.NewDirectory(shardsN, k)
	var wg sync.WaitGroup
	for s := 0; s < shardsN; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + s)))
			for op := 0; op < ops; op++ {
				c := volume.ChunkID{Dataset: volume.DatasetID(1 + rng.Intn(4)), Index: rng.Intn(chunks / 4)}
				switch rng.Intn(5) {
				case 0:
					dir.PublishEstimate(c, units.Duration(1+rng.Intn(int(units.Second))))
				case 1:
					dir.PublishResident(c, rng.Intn(nodes), rng.Intn(3) > 0)
				case 2:
					homes := make([]int, 0, k)
					start := rng.Intn(nodes)
					for i := 0; i < 1+rng.Intn(k); i++ {
						homes = append(homes, (start+i)%nodes)
					}
					dir.SetHomes(c, homes)
				case 3:
					dir.Estimate(c)
					dir.Residents(c)
				case 4:
					if rng.Intn(20) == 0 {
						dir.DropNode(rng.Intn(nodes))
					}
				}
			}
		}(s)
	}
	wg.Wait()

	if err := dir.Validate(nodes); err != nil {
		t.Fatalf("directory structurally unsound after concurrent publishes: %v", err)
	}
	for ds := 1; ds <= 4; ds++ {
		for idx := 0; idx < chunks/4; idx++ {
			c := volume.ChunkID{Dataset: volume.DatasetID(ds), Index: idx}
			homes := dir.Homes(c)
			if len(homes) > k {
				t.Fatalf("chunk %v home set %v exceeds k=%d", c, homes, k)
			}
			seen := map[int]bool{}
			for _, n := range homes {
				if n < 0 || n >= nodes {
					t.Fatalf("chunk %v home %d out of range", c, n)
				}
				if seen[n] {
					t.Fatalf("chunk %v home set %v has duplicates", c, homes)
				}
				seen[n] = true
			}
			// Every shard's quiescent view is the same view.
			views := make([][]int, shardsN)
			var vg sync.WaitGroup
			for s := 0; s < shardsN; s++ {
				vg.Add(1)
				go func(s int) {
					defer vg.Done()
					views[s] = dir.Residents(c)
				}(s)
			}
			vg.Wait()
			for s := 1; s < shardsN; s++ {
				if !reflect.DeepEqual(views[0], views[s]) {
					t.Fatalf("chunk %v: shard 0 sees residents %v, shard %d sees %v", c, views[0], s, views[s])
				}
			}
		}
	}
}

// TestInvariantDonationPreservesDRROrder: cross-shard donation pops batch
// jobs from the donor's fair queue via PopBatch — the property the ε-guard
// relies on is that any interleave of pops (donated or locally dispatched,
// any sizes, with arrivals in between) yields each tenant's jobs in exactly
// their enqueue order. Donation can move a tenant's work, never reorder it.
func TestInvariantDonationPreservesDRROrder(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			q := qos.NewFairQueue(2, map[core.TenantID]int{2: 3})
			nextID := core.JobID(1)
			enqueued := map[core.TenantID][]core.JobID{}
			push := func(n int) {
				for i := 0; i < n; i++ {
					tenant := core.TenantID(1 + rng.Intn(4))
					j := &core.Job{ID: nextID, Class: core.Batch, Tenant: tenant,
						Action: core.ActionID(rng.Intn(8))}
					j.Tasks = make([]core.Task, 1+rng.Intn(3))
					nextID++
					q.Push(j)
					enqueued[tenant] = append(enqueued[tenant], j.ID)
				}
			}
			push(40)

			// Alternate donation grabs and local drains, with arrivals
			// continuing in between — the donor's life under donation.
			popped := map[core.TenantID][]core.JobID{}
			for q.BatchLen() > 0 {
				for _, j := range q.PopBatch(nil, 1+rng.Intn(6)) {
					popped[j.Tenant] = append(popped[j.Tenant], j.ID)
				}
				if rng.Intn(3) == 0 {
					push(rng.Intn(5))
				}
			}

			for tenant, want := range enqueued {
				got := popped[tenant]
				if len(got) != len(want) {
					t.Fatalf("tenant %d: popped %d of %d jobs", tenant, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("tenant %d reordered: popped %v, enqueued %v", tenant, got, want)
					}
				}
			}
		})
	}
}
