package core

import (
	"sort"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// LocalityScheduler is the paper's scheduler ("OURS", Algorithm 1): it runs
// every scheduling cycle ω, decomposes queued jobs into per-chunk task
// groups, schedules all interactive tasks immediately — same-chunk tasks in
// a cycle to the same node, chosen to minimize predicted completion time —
// and defers batch tasks: cached batch fills nodes only up to the next
// scheduling time λ, and non-cached batch (which implies a long disk load)
// is placed only on nodes that have served no interactive task for the
// idle threshold ε = Estimate[c]/2.
type LocalityScheduler struct {
	cycle units.Duration
	// DisableIdleGuard drops the ε idle-time condition on non-cached batch
	// placement (ablation: batch loads may then interrupt interactive
	// streams, the failure mode the guard exists to prevent).
	DisableIdleGuard bool
}

// DefaultCycle is the ω used when none is specified: short enough that an
// interactive request never waits long for the next cycle at the paper's
// 33.33 fps target cadence (one request per 30 ms).
const DefaultCycle = 10 * units.Millisecond

// NewLocalityScheduler returns the paper's scheduler with the given cycle;
// a non-positive cycle selects DefaultCycle.
func NewLocalityScheduler(cycle units.Duration) *LocalityScheduler {
	if cycle <= 0 {
		cycle = DefaultCycle
	}
	return &LocalityScheduler{cycle: cycle}
}

// Name implements Scheduler.
func (s *LocalityScheduler) Name() string { return "OURS" }

// Trigger implements Scheduler.
func (s *LocalityScheduler) Trigger() Trigger { return Periodic }

// Cycle implements Scheduler.
func (s *LocalityScheduler) Cycle() units.Duration { return s.cycle }

// chunkGroup is one entry of the H_I / H_B hash tables: the unassigned
// tasks within this cycle that need the same chunk.
type chunkGroup struct {
	chunk volume.ChunkID
	size  units.Bytes
	tasks []*Task
}

// groupByChunk buckets unassigned tasks of the given class by chunk and
// returns the groups sorted by chunk ID for determinism.
func groupByChunk(queue []*Job, class Class) []*chunkGroup {
	byChunk := make(map[volume.ChunkID]*chunkGroup)
	for _, j := range queue {
		if j.Class != class {
			continue
		}
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			g := byChunk[t.Chunk]
			if g == nil {
				g = &chunkGroup{chunk: t.Chunk, size: t.Size}
				byChunk[t.Chunk] = g
			}
			g.tasks = append(g.tasks, t)
		}
	}
	groups := make([]*chunkGroup, 0, len(byChunk))
	for _, g := range byChunk {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(a, b int) bool { return chunkLess(groups[a].chunk, groups[b].chunk) })
	return groups
}

func chunkLess(a, b volume.ChunkID) bool {
	if a.Dataset != b.Dataset {
		return a.Dataset < b.Dataset
	}
	return a.Index < b.Index
}

// Schedule implements Algorithm 1.
func (s *LocalityScheduler) Schedule(now units.Time, queue []*Job, head *HeadState) []Assignment {
	lambda := now.Add(s.cycle) // λ: the next scheduling time
	var out []Assignment
	assign := func(t *Task, k NodeID) {
		t.Assigned = true
		head.CommitAssign(t, k, now)
		out = append(out, Assignment{Task: t, Node: k})
	}

	// Lines 2–7: decompose queued jobs into per-chunk task groups.
	hi := groupByChunk(queue, Interactive)
	hb := groupByChunk(queue, Batch)

	// Lines 8–9: split interactive groups into cached / non-cached; sort the
	// non-cached by estimated execution time so cheap loads start first.
	var cached, nonCached []*chunkGroup
	for _, g := range hi {
		if len(head.CachedOn(g.chunk)) > 0 {
			cached = append(cached, g)
		} else {
			nonCached = append(nonCached, g)
		}
	}
	sort.SliceStable(nonCached, func(a, b int) bool {
		ga, gb := nonCached[a], nonCached[b]
		ea := head.Estimate(ga.chunk, ga.size, ga.tasks[0].Job.GroupSize())
		eb := head.Estimate(gb.chunk, gb.size, gb.tasks[0].Job.GroupSize())
		if ea != eb {
			return ea < eb
		}
		return chunkLess(ga.chunk, gb.chunk)
	})

	// Lines 10–15: every interactive group goes, whole, to the node with the
	// earliest predicted completion for its chunk.
	for _, g := range append(cached, nonCached...) {
		k, ok := s.bestNode(now, g, head)
		if !ok {
			continue // no node alive; engine will retry next cycle
		}
		for _, t := range g.tasks {
			assign(t, k)
		}
	}

	// Lines 16–22: cached batch tasks fill each node until its predicted
	// available time crosses λ.
	for k := 0; k < head.Nodes(); k++ {
		node := NodeID(k)
		if !head.Alive(node) {
			continue
		}
	cachedBatch:
		for _, g := range hb {
			if !head.Caches[k].Contains(g.chunk) {
				continue
			}
			for _, t := range g.tasks {
				if t.Assigned {
					continue
				}
				if !head.Available[k].Before(lambda) {
					break cachedBatch
				}
				assign(t, node)
			}
		}
	}

	// Lines 23–31: non-cached batch, rarest chunks first (fewest predicted
	// replicas), placed only on nodes idle of interactive work for ε.
	var rest []*chunkGroup
	for _, g := range hb {
		pending := g.tasks[:0]
		for _, t := range g.tasks {
			if !t.Assigned {
				pending = append(pending, t)
			}
		}
		g.tasks = pending
		if len(g.tasks) > 0 {
			rest = append(rest, g)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool {
		ca := len(head.CachedOn(rest[a].chunk))
		cb := len(head.CachedOn(rest[b].chunk))
		if ca != cb {
			return ca < cb
		}
		return chunkLess(rest[a].chunk, rest[b].chunk)
	})
	gi := 0
	for k := 0; k < head.Nodes() && gi < len(rest); k++ {
		node := NodeID(k)
		if !head.Alive(node) {
			continue
		}
		for gi < len(rest) && head.Available[k].Before(lambda) {
			g := rest[gi]
			if len(g.tasks) == 0 {
				gi++
				continue
			}
			if !s.DisableIdleGuard {
				eps := head.IdleThreshold(g.chunk, g.size, g.tasks[0].Job.GroupSize())
				if head.InteractiveIdle(node, now) <= eps {
					break // this node served interactive work too recently
				}
			}
			assign(g.tasks[0], node)
			g.tasks = g.tasks[1:]
		}
	}
	return out
}

// bestNode returns the alive node minimizing predicted completion time for
// the group's chunk: max(Available[k], now) + cost, where cost is the hit
// cost on nodes predicted to hold the chunk and Estimate[c] elsewhere.
func (s *LocalityScheduler) bestNode(now units.Time, g *chunkGroup, head *HeadState) (NodeID, bool) {
	best := NodeID(-1)
	var bestDone units.Time
	for k := 0; k < head.Nodes(); k++ {
		if !head.Alive(NodeID(k)) {
			continue
		}
		start := head.Available[k]
		if start < now {
			start = now
		}
		done := start.Add(head.PredictExec(g.tasks[0], NodeID(k)))
		if best < 0 || done < bestDone {
			best = NodeID(k)
			bestDone = done
		}
	}
	return best, best >= 0
}
