package core

import (
	"cmp"
	"slices"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// LocalityScheduler is the paper's scheduler ("OURS", Algorithm 1): it runs
// every scheduling cycle ω, decomposes queued jobs into per-chunk task
// groups, schedules all interactive tasks immediately — same-chunk tasks in
// a cycle to the same node, chosen to minimize predicted completion time —
// and defers batch tasks: cached batch fills nodes only up to the next
// scheduling time λ, and non-cached batch (which implies a long disk load)
// is placed only on nodes that have served no interactive task for the
// idle threshold ε = Estimate[c]/2.
//
// A scheduler instance keeps scratch buffers (the H_I/H_B hash tables, the
// group slab, and the assignment output) that are recycled between cycles,
// so a steady-state cycle allocates only when the queue outgrows every
// previous cycle. Consequently an instance is not safe for concurrent use,
// and the slice returned by Schedule is only valid until the next Schedule
// call — both fine for the engine, which owns one instance per run and
// consumes assignments synchronously.
type LocalityScheduler struct {
	cycle units.Duration
	// DisableIdleGuard drops the ε idle-time condition on non-cached batch
	// placement (ablation: batch loads may then interrupt interactive
	// streams, the failure mode the guard exists to prevent).
	DisableIdleGuard bool
	// Replicas is the replication policy layer's target degree k (§5.6):
	// when ≥ 2, a bounded fraction of batch placements for under-replicated
	// chunks is diverted to the chunk's secondary node, so hot chunks become
	// k-resident out of real work instead of synthetic copies. 0/1 keeps the
	// paper's single-home behaviour exactly.
	Replicas int
	// SpreadEvery bounds the diverted fraction: one in every SpreadEvery
	// eligible batch placement opportunities goes to the secondary instead
	// of the primary. Non-positive selects DefaultSpreadEvery.
	SpreadEvery int
	// spreadTick counts eligible spread opportunities across cycles; purely
	// deterministic, so identical runs divert identical tasks.
	spreadTick int

	// prefetch, when set, plans background chunk warming (§5.8) after every
	// demand pass has committed — prefetch work ranks strictly below cached
	// batch and ε-eligible batch work by running last over the idle windows
	// they left. nil (the default) changes nothing.
	prefetch   PrefetchPlanner
	prefetches []PrefetchDirective

	// coShare, when positive, enables the fractional co-scheduling pass
	// (§5.13): each node the demand passes leave idle hosts one batch guest
	// at this share, preempted the instant demand work starts there. Zero
	// (the default) emits no co-scheduled assignments.
	coShare float64

	// Per-cycle scratch, reused across Schedule calls.
	byChunk                 map[volume.ChunkID]*chunkGroup
	groupSlab               []*chunkGroup
	usedGroups              int
	hi, hb                  []*chunkGroup
	cached, nonCached, rest []*chunkGroup
	out                     []Assignment
}

// DefaultCycle is the ω used when none is specified: short enough that an
// interactive request never waits long for the next cycle at the paper's
// 33.33 fps target cadence (one request per 30 ms).
const DefaultCycle = 10 * units.Millisecond

// DefaultSpreadEvery is the default diversion stride of the replication
// layer: one in four eligible batch placements goes to the secondary, slow
// enough that the primary keeps its locality advantage, fast enough that a
// hot chunk is k-resident within a few cycles.
const DefaultSpreadEvery = 4

// NewLocalityScheduler returns the paper's scheduler with the given cycle;
// a non-positive cycle selects DefaultCycle.
func NewLocalityScheduler(cycle units.Duration) *LocalityScheduler {
	if cycle <= 0 {
		cycle = DefaultCycle
	}
	return &LocalityScheduler{cycle: cycle}
}

// Name implements Scheduler.
func (s *LocalityScheduler) Name() string { return "OURS" }

// Trigger implements Scheduler.
func (s *LocalityScheduler) Trigger() Trigger { return Periodic }

// Cycle implements Scheduler.
func (s *LocalityScheduler) Cycle() units.Duration { return s.cycle }

// SetReplicas implements ReplicaSetter.
func (s *LocalityScheduler) SetReplicas(k int) { s.Replicas = k }

// SetPrefetchPlanner implements PrefetchSetter.
func (s *LocalityScheduler) SetPrefetchPlanner(p PrefetchPlanner) { s.prefetch = p }

// SetCoSchedule implements CoScheduleSetter: a positive share turns on the
// fractional co-scheduling pass (§5.13).
func (s *LocalityScheduler) SetCoSchedule(share float64) { s.coShare = share }

// PlannedPrefetches implements PrefetchSource. The slice is valid until the
// next Schedule call.
func (s *LocalityScheduler) PlannedPrefetches() []PrefetchDirective { return s.prefetches }

// spreadEvery returns the effective diversion stride.
func (s *LocalityScheduler) spreadEvery() int {
	if s.SpreadEvery > 0 {
		return s.SpreadEvery
	}
	return DefaultSpreadEvery
}

// chunkGroup is one entry of the H_I / H_B hash tables: the unassigned
// tasks within this cycle that need the same chunk, plus the sort keys
// Schedule precomputes so its orderings never call into the head tables
// from inside a comparator.
type chunkGroup struct {
	chunk volume.ChunkID
	size  units.Bytes
	tasks []*Task
	// est caches Estimate[c] for the non-cached interactive ordering;
	// replicas caches the predicted replica count for rarest-first batch.
	est      units.Duration
	replicas int
}

// newGroup takes a recycled group from the slab (growing it on first use).
func (s *LocalityScheduler) newGroup(c volume.ChunkID, size units.Bytes) *chunkGroup {
	if s.usedGroups == len(s.groupSlab) {
		s.groupSlab = append(s.groupSlab, new(chunkGroup))
	}
	g := s.groupSlab[s.usedGroups]
	s.usedGroups++
	g.chunk = c
	g.size = size
	g.tasks = g.tasks[:0]
	g.est = 0
	g.replicas = 0
	return g
}

// groupByChunk buckets unassigned tasks of the given class by chunk into
// dst and returns it sorted by chunk ID for determinism. The byChunk map is
// cleared and reused between calls.
func (s *LocalityScheduler) groupByChunk(queue []*Job, class Class, dst []*chunkGroup) []*chunkGroup {
	clear(s.byChunk)
	for _, j := range queue {
		if j.Class != class {
			continue
		}
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned {
				continue
			}
			g := s.byChunk[t.Chunk]
			if g == nil {
				g = s.newGroup(t.Chunk, t.Size)
				s.byChunk[t.Chunk] = g
			}
			g.tasks = append(g.tasks, t)
		}
	}
	for _, g := range s.byChunk {
		dst = append(dst, g)
	}
	slices.SortFunc(dst, func(a, b *chunkGroup) int { return chunkCompare(a.chunk, b.chunk) })
	return dst
}

func chunkCompare(a, b volume.ChunkID) int {
	if c := cmp.Compare(a.Dataset, b.Dataset); c != 0 {
		return c
	}
	return cmp.Compare(a.Index, b.Index)
}

// Schedule implements Algorithm 1.
func (s *LocalityScheduler) Schedule(now units.Time, queue []*Job, head *HeadState) []Assignment {
	lambda := now.Add(s.cycle) // λ: the next scheduling time
	if s.byChunk == nil {
		s.byChunk = make(map[volume.ChunkID]*chunkGroup)
	}
	s.usedGroups = 0
	out := s.out[:0]
	assign := func(t *Task, k NodeID) {
		t.Assigned = true
		head.CommitAssign(t, k, now)
		out = append(out, Assignment{Task: t, Node: k})
	}

	// Lines 2–7: decompose queued jobs into per-chunk task groups.
	hi := s.groupByChunk(queue, Interactive, s.hi[:0])
	hb := s.groupByChunk(queue, Batch, s.hb[:0])
	s.hi, s.hb = hi, hb

	// Lines 8–9: split interactive groups into cached / non-cached; sort the
	// non-cached by estimated execution time so cheap loads start first.
	cached, nonCached := s.cached[:0], s.nonCached[:0]
	for _, g := range hi {
		if head.ReplicaCount(g.chunk) > 0 {
			cached = append(cached, g)
		} else {
			g.est = head.Estimate(g.chunk, g.size, g.tasks[0].Job.GroupSize())
			nonCached = append(nonCached, g)
		}
	}
	s.cached, s.nonCached = cached, nonCached
	slices.SortStableFunc(nonCached, func(a, b *chunkGroup) int {
		if c := cmp.Compare(a.est, b.est); c != 0 {
			return c
		}
		return chunkCompare(a.chunk, b.chunk)
	})

	// Lines 10–15: every interactive group goes, whole, to the node with the
	// earliest predicted completion for its chunk.
	placeWhole := func(g *chunkGroup) {
		k, ok := s.bestNode(now, g, head)
		if !ok {
			return // no node alive; engine will retry next cycle
		}
		for _, t := range g.tasks {
			assign(t, k)
		}
	}
	for _, g := range cached {
		placeWhole(g)
	}
	for _, g := range nonCached {
		placeWhole(g)
	}

	// Replication pass (§5.6, before cached batch reinforces primaries):
	// for each cached-but-under-replicated chunk, every spreadEvery-th
	// opportunity diverts one batch task to the chunk's secondary node. The
	// task misses there, which loads the chunk — a deliberate replica bought
	// with real work. The secondary must be ε-idle (the miss implies a disk
	// load, the same reasoning as non-cached batch) and still inside λ, and
	// diversion stops once the chunk is k-resident, so the policy never
	// drives replica counts past k.
	if s.Replicas > 1 {
		for _, g := range hb {
			rc := head.ReplicaCount(g.chunk)
			if rc == 0 || rc >= s.Replicas {
				continue // zero-replica chunks take the rarest-first ε path
			}
			s.spreadTick++
			if s.spreadTick%s.spreadEvery() != 0 {
				continue
			}
			sec, ok := head.SecondaryFor(g.chunk)
			if !ok || !head.Available[sec].Before(lambda) {
				continue
			}
			if !s.DisableIdleGuard {
				eps := head.IdleThreshold(g.chunk, g.size, g.tasks[0].Job.GroupSize())
				if head.InteractiveIdle(sec, now) <= eps {
					continue
				}
			}
			assign(g.tasks[0], sec)
		}
	}

	// Lines 16–22: cached batch tasks fill each node until its predicted
	// available time crosses λ.
	for k := 0; k < head.Nodes(); k++ {
		node := NodeID(k)
		if !head.Alive(node) {
			continue
		}
	cachedBatch:
		for _, g := range hb {
			if !head.Caches[k].Contains(g.chunk) {
				continue
			}
			for _, t := range g.tasks {
				if t.Assigned {
					continue
				}
				if !head.Available[k].Before(lambda) {
					break cachedBatch
				}
				assign(t, node)
			}
		}
	}

	// Lines 23–31: non-cached batch, rarest chunks first (fewest predicted
	// replicas), placed only on nodes idle of interactive work for ε.
	rest := s.rest[:0]
	for _, g := range hb {
		pending := g.tasks[:0]
		for _, t := range g.tasks {
			if !t.Assigned {
				pending = append(pending, t)
			}
		}
		g.tasks = pending
		if len(g.tasks) > 0 {
			g.replicas = head.ReplicaCount(g.chunk)
			rest = append(rest, g)
		}
	}
	s.rest = rest
	slices.SortStableFunc(rest, func(a, b *chunkGroup) int {
		if c := cmp.Compare(a.replicas, b.replicas); c != 0 {
			return c
		}
		return chunkCompare(a.chunk, b.chunk)
	})
	gi := 0
	for k := 0; k < head.Nodes() && gi < len(rest); k++ {
		node := NodeID(k)
		if !head.Alive(node) {
			continue
		}
		for gi < len(rest) && head.Available[k].Before(lambda) {
			g := rest[gi]
			if len(g.tasks) == 0 {
				gi++
				continue
			}
			if !s.DisableIdleGuard {
				eps := head.IdleThreshold(g.chunk, g.size, g.tasks[0].Job.GroupSize())
				if head.InteractiveIdle(node, now) <= eps {
					break // this node served interactive work too recently
				}
			}
			// Replication (§5.6): once the group's first task has seeded a
			// home (replica count ≥ 1), later tasks of an under-replicated
			// chunk are occasionally diverted to the secondary, under the
			// same ε and λ conditions the primary placement obeys.
			target := node
			if s.Replicas > 1 {
				if rc := head.ReplicaCount(g.chunk); rc > 0 && rc < s.Replicas {
					s.spreadTick++
					if s.spreadTick%s.spreadEvery() == 0 {
						if sec, ok := head.SecondaryFor(g.chunk); ok && sec != node &&
							head.Available[sec].Before(lambda) && s.idleOK(head, g, sec, now) {
							target = sec
						}
					}
				}
			}
			assign(g.tasks[0], target)
			g.tasks = g.tasks[1:]
		}
	}
	// Co-schedule pass (§5.13): every alive node the demand passes above
	// left idle — in steady state that means the ε-guard refused it
	// non-cached batch while it shadows an interactive stream — hosts at
	// most one batch guest at fractional share. The engine runs the guest
	// only while the node has no demand task and suspends its share the
	// instant one starts, so the guard's reason (a started load cannot be
	// abandoned) no longer applies. Guests prefer a chunk already cached on
	// the node (a pure-compute guest); failing that, the first pending group
	// in hb order — with QoS enabled the presented window was popped by DRR,
	// so guest picks inherit the same fair-order guarantee as demand batch.
	if s.coShare > 0 {
		firstUnassigned := func(g *chunkGroup) *Task {
			for _, t := range g.tasks {
				if !t.Assigned {
					return t
				}
			}
			return nil
		}
		for k := 0; k < head.Nodes(); k++ {
			node := NodeID(k)
			if !head.Alive(node) || head.CoBusy(node) || head.Available[k].After(now) {
				continue
			}
			var pick *Task
			for _, g := range hb {
				if !head.Caches[k].Contains(g.chunk) {
					continue
				}
				if t := firstUnassigned(g); t != nil {
					pick = t
					break
				}
			}
			if pick == nil {
				for _, g := range hb {
					if t := firstUnassigned(g); t != nil {
						pick = t
						break
					}
				}
			}
			if pick == nil {
				break // no pending batch work anywhere
			}
			pick.Assigned = true
			head.CommitCoAssign(pick, node, now)
			out = append(out, Assignment{Task: pick, Node: node, CoScheduled: true})
		}
	}

	// Prefetch pass (§5.8): runs last, over whatever idle capacity the
	// demand passes left inside [now, λ).
	s.prefetches = s.prefetches[:0]
	if s.prefetch != nil {
		s.prefetches = append(s.prefetches, s.prefetch.Plan(now, lambda, head)...)
	}
	s.out = out
	return out
}

// idleOK reports whether node k satisfies the ε idle-time condition for
// placing a non-cached batch task of the group's chunk.
func (s *LocalityScheduler) idleOK(head *HeadState, g *chunkGroup, k NodeID, now units.Time) bool {
	if s.DisableIdleGuard {
		return true
	}
	eps := head.IdleThreshold(g.chunk, g.size, g.tasks[0].Job.GroupSize())
	return head.InteractiveIdle(k, now) > eps
}

// bestNode returns the alive node minimizing predicted completion time for
// the group's chunk: max(Available[k], now) + cost, where cost is the hit
// cost on nodes predicted to hold the chunk and Estimate[c] elsewhere.
func (s *LocalityScheduler) bestNode(now units.Time, g *chunkGroup, head *HeadState) (NodeID, bool) {
	best := NodeID(-1)
	var bestDone units.Time
	for k := 0; k < head.Nodes(); k++ {
		if !head.Alive(NodeID(k)) {
			continue
		}
		start := head.Available[k]
		if start < now {
			start = now
		}
		done := start.Add(head.PredictExec(g.tasks[0], NodeID(k)))
		if best < 0 || done < bestDone {
			best = NodeID(k)
			bestDone = done
		}
	}
	return best, best >= 0
}
