package core

import (
	"testing"

	"vizsched/internal/units"
)

// TestDrainHealthMachine walks the voluntary exit lane: only an Up node may
// start draining, a draining node stops counting as alive (and so stops
// counting as a replica holder), and CompleteDrain retires it to Down with
// a cold cache — all without a RehomeReport, because a drain demotes its
// homes separately, before the capacity leaves.
func TestDrainHealthMachine(t *testing.T) {
	h := newHead(3)
	j := mkJob(1, Batch, 0, 1, 1, 64*units.MB, 0)
	c := j.Tasks[0].Chunk
	commit(h, j, 0, 1, 0)

	if !h.MarkDraining(1) {
		t.Fatal("MarkDraining refused an Up node")
	}
	if !h.Draining(1) || h.Alive(1) {
		t.Error("draining node still counts as alive")
	}
	if h.MarkDraining(1) {
		t.Error("MarkDraining accepted a node already draining")
	}
	if n := h.ReplicaCount(c); n != 0 {
		t.Errorf("ReplicaCount = %d, draining holder must not count", n)
	}
	if nodes := h.CachedOn(c); len(nodes) != 0 {
		t.Errorf("CachedOn = %v, draining holder must not count", nodes)
	}

	h.CompleteDrain(1)
	if h.Health(1) != HealthDown {
		t.Errorf("health after CompleteDrain = %v, want down", h.Health(1))
	}
	if h.Caches[1].Used() != 0 {
		t.Error("CompleteDrain left the cache warm")
	}

	h.MarkFailed(2)
	if h.MarkDraining(2) {
		t.Error("MarkDraining accepted a down node")
	}
}

// TestDrainDemoteHomesVsMarkFailed runs the same cluster state through both
// exits. The crash re-homes what it can and re-seeds the rest; the drain
// must re-home to the identical survivors but report orphans to the
// evacuation warmer instead of ever incrementing Reseeded — the counter the
// rarest-first repair pass (and the crash dashboards) feed on.
func TestDrainDemoteHomesVsMarkFailed(t *testing.T) {
	build := func() (*HeadState, *Job) {
		h := newHead(3)
		h.SetReplication(2)
		a := mkJob(1, Batch, 0, 1, 2, 64*units.MB, 0)
		// Chunk 0: homes [0 1]. Chunk 1: home [0] only, organically resident
		// on nodes 1 and 2 with node 2 the less busy — the warmest adoptee.
		commit(h, a, 0, 0, 0)
		commit(h, a, 0, 1, 0)
		commit(h, a, 1, 0, 0)
		h.Caches[1].Insert(a.Tasks[1].Chunk, 64*units.MB)
		h.Caches[2].Insert(a.Tasks[1].Chunk, 64*units.MB)
		h.Available[1] = units.Time(10 * units.Second)
		h.Available[2] = units.Time(2 * units.Second)
		return h, a
	}

	crashed, ja := build()
	crashRep := crashed.MarkFailed(0)

	drained, jb := build()
	if !drained.MarkDraining(0) {
		t.Fatal("MarkDraining refused the victim")
	}
	drainRep, orphans := drained.DemoteHomes(0)
	drained.CompleteDrain(0)

	if drainRep.Rehomed != crashRep.Rehomed {
		t.Errorf("drain re-homed %d, crash re-homed %d — must match", drainRep.Rehomed, crashRep.Rehomed)
	}
	if drainRep.Reseeded != 0 {
		t.Errorf("drain incremented Reseeded (%d): orphans must go to evacuation, not re-seeding", drainRep.Reseeded)
	}
	if len(orphans) != 0 {
		t.Errorf("all-replicated drain reported orphans %v", orphans)
	}
	for i := range ja.Tasks {
		ca, _ := crashed.Home(ja.Tasks[i].Chunk)
		cb, ok := drained.Home(jb.Tasks[i].Chunk)
		if !ok || ca != cb {
			t.Errorf("chunk %d: drain home = %v,%v, crash home = %v — survivors must agree", i, cb, ok, ca)
		}
	}
	if p := drained.Pressure(0); p != 0 {
		t.Errorf("drained node pressure = %d, want 0", p)
	}
}

// TestDrainOrphansAndDemoteReportSoleCopies: a chunk whose only home and
// only residency is the victim is an orphan — DrainOrphans lists it before
// the drain (so evacuation can warm it) and DemoteHomes returns it at
// completion (so the outcome can account what MaxDrain abandoned).
func TestDrainOrphansAndDemoteReportSoleCopies(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	a := mkJob(1, Batch, 0, 1, 2, 64*units.MB, 0)
	commit(h, a, 0, 1, 0) // chunk 0: sole copy on the victim
	commit(h, a, 1, 1, 0) // chunk 1: homed on victim but replicated on 2
	h.Caches[2].Insert(a.Tasks[1].Chunk, 64*units.MB)

	if !h.MarkDraining(1) {
		t.Fatal("MarkDraining refused the victim")
	}
	orphans := h.DrainOrphans(1)
	if len(orphans) != 1 || orphans[0] != a.Tasks[0].Chunk {
		t.Fatalf("DrainOrphans = %v, want just the sole copy %v", orphans, a.Tasks[0].Chunk)
	}

	rep, demoted := h.DemoteHomes(1)
	if rep.Reseeded != 0 {
		t.Errorf("DemoteHomes counted %d re-seeds", rep.Reseeded)
	}
	if len(demoted) != 1 || demoted[0] != a.Tasks[0].Chunk {
		t.Errorf("DemoteHomes orphans = %v, want %v", demoted, a.Tasks[0].Chunk)
	}
	if home, _ := h.Home(a.Tasks[1].Chunk); home != 2 {
		t.Errorf("replicated chunk re-homed to %d, want the surviving replica 2", home)
	}
	if _, ok := h.Home(a.Tasks[0].Chunk); ok {
		t.Error("orphaned chunk still has a home after demotion")
	}
}
