// Package core implements the paper's primary contribution: the cost model
// for parallel volume rendering (§IV), the head node's three prediction
// tables with run-time correction (§V-B), and the periodic locality-aware
// scheduling heuristic of Algorithm 1 (§V-A).
//
// The baseline schedulers the paper compares against live in
// internal/baselines; both packages share the Scheduler interface and job
// model defined here.
package core

import (
	"fmt"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// JobID identifies a rendering job within one service run.
type JobID int64

// TenantID identifies the tenant (customer, team, billing account) a job
// belongs to. The zero tenant is the default for single-tenant deployments;
// the QoS layer (internal/qos) meters admission and queueing per tenant.
type TenantID int

// Class distinguishes the paper's two request kinds.
type Class int

// Job classes. Interactive jobs come from live user actions and must be
// scheduled immediately; batch jobs (animation frames, time-series renders)
// may be deferred.
const (
	Interactive Class = iota
	Batch
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Interactive {
		return "interactive"
	}
	return "batch"
}

// ActionID groups the jobs of one continuous user action (or one batch
// submission stream); the framerate metric (Definition 4) is computed per
// action.
type ActionID int

// Job is one rendering request J_i: a view of one dataset, decomposed into
// independent per-chunk tasks.
type Job struct {
	ID      JobID
	Class   Class
	Action  ActionID
	Tenant  TenantID
	Dataset volume.DatasetID
	// Issued is JI(i), the time the request entered the job queue.
	Issued units.Time
	// Tasks is the decomposition; populated by the engine from the dataset's
	// chunking before the job is first presented to a scheduler.
	Tasks []Task
	// Remaining counts tasks not yet assigned; the engine maintains it.
	Remaining int
}

// GroupSize returns the size of the job's render group for compositing-cost
// purposes: the number of tasks, since tasks land on distinct nodes in the
// common case.
func (j *Job) GroupSize() int { return len(j.Tasks) }

// Task is T_{i,j}: the piece of a job responsible for one data chunk.
type Task struct {
	Job   *Job
	Index int
	Chunk volume.ChunkID
	Size  units.Bytes
	// Assigned is set once a scheduler has placed the task; schedulers must
	// skip tasks that are already assigned.
	Assigned bool
	// PredictedExec is the execution time the head tables forecast when the
	// task was committed; the engine threads it into TaskResult so Correct
	// can measure prediction drift.
	PredictedExec units.Duration
}

// String renders the task as "J12/T3".
func (t *Task) String() string { return fmt.Sprintf("J%d/T%d", int64(t.Job.ID), t.Index) }

// NodeID indexes a rendering node R_k, 0-based.
type NodeID int

// Assignment places one task on one node. Assignments returned from a
// single Schedule call are enqueued in order on each node's FIFO.
type Assignment struct {
	Task *Task
	Node NodeID
	// CoScheduled marks a fractional-share guest placement (§5.13): the task
	// runs on the node's spare capacity, suspended whenever demand work is
	// active there. Only emitted by schedulers whose co-scheduling was
	// enabled via CoScheduleSetter, and only honoured by engines with the
	// fracshare layer on; the zero value is an ordinary assignment.
	CoScheduled bool
}

// Trigger tells the engine when to invoke a scheduler.
type Trigger int

// Trigger values. OnArrival schedulers (the FCFS family) run once per job as
// it enters the queue; Periodic schedulers (OURS, FS, SF) run every Cycle
// and see the whole queue.
const (
	OnArrival Trigger = iota
	Periodic
)

// Scheduler is the policy interface every scheduling scheme implements.
type Scheduler interface {
	// Name identifies the scheme in experiment output ("OURS", "FCFSL", …).
	Name() string
	// Trigger reports when the engine should invoke Schedule.
	Trigger() Trigger
	// Cycle is the scheduling period ω for Periodic schedulers; ignored for
	// OnArrival schedulers.
	Cycle() units.Duration
	// Schedule examines the queued jobs (each with ≥1 unassigned task) and
	// returns task placements. Unassigned tasks stay queued and are
	// re-presented on the next invocation. Schedule may mutate head's
	// prediction tables to account for its own assignments.
	Schedule(now units.Time, queue []*Job, head *HeadState) []Assignment
}

// DecompositionOverrider is an optional Scheduler extension for schemes that
// dictate their own data decomposition; FCFSU partitions every dataset into
// exactly one chunk per node.
type DecompositionOverrider interface {
	Decomposition(nodes int) volume.Decomposition
}

// TaskResult reports one finished task execution back to the head node so
// it can correct its predictions (§V-B).
type TaskResult struct {
	Task *Task
	Node NodeID
	// Hit reports whether the chunk was resident in the node's actual main
	// memory when the task started.
	Hit bool
	// Exec is the actual execution time; Predicted is what the head's
	// tables forecast at assignment time.
	Exec, Predicted units.Duration
	// Evicted lists chunks the node's actual cache dropped to load this
	// task's chunk.
	Evicted []volume.ChunkID
	// Finished is the task finish time TF.
	Finished units.Time
}
