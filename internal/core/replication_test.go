package core

import (
	"testing"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// commit places task i of job j on node k at now and returns the predicted
// exec, going through the same CommitAssign path the schedulers use.
func commit(h *HeadState, j *Job, i int, k NodeID, now units.Time) {
	h.CommitAssign(&j.Tasks[i], k, now)
}

func TestReplicationDisabledTracksNothing(t *testing.T) {
	h := newHead(3)
	j := mkJob(1, Batch, 0, 1, 4, 64*units.MB, 0)
	commit(h, j, 0, 1, 0)
	if _, ok := h.Home(j.Tasks[0].Chunk); ok {
		t.Error("Home tracked with replication disabled")
	}
	if _, ok := h.SecondaryFor(j.Tasks[0].Chunk); ok {
		t.Error("SecondaryFor returned a candidate with replication disabled")
	}
	if rep := h.MarkFailed(1); rep.Rehomed != 0 || rep.Reseeded != 0 {
		t.Errorf("MarkFailed report = %+v, want zero", rep)
	}
}

func TestTrackPlacementFillsHomeSetToK(t *testing.T) {
	h := newHead(4)
	h.SetReplication(2)
	j := mkJob(1, Batch, 0, 1, 1, 64*units.MB, 0)
	c := j.Tasks[0].Chunk

	commit(h, j, 0, 2, 0)
	if home, ok := h.Home(c); !ok || home != 2 {
		t.Fatalf("Home = %v,%v, want 2,true", home, ok)
	}
	// Re-committing to the primary does not grow the set.
	commit(h, j, 0, 2, 0)
	if hs := h.HomeSet(c); len(hs) != 1 {
		t.Fatalf("HomeSet after duplicate commit = %v", hs)
	}
	commit(h, j, 0, 0, 0)
	if hs := h.HomeSet(c); len(hs) != 2 || hs[0] != 2 || hs[1] != 0 {
		t.Fatalf("HomeSet = %v, want [2 0]", hs)
	}
	// A third distinct node is beyond k=2: organic, untracked.
	commit(h, j, 0, 3, 0)
	if hs := h.HomeSet(c); len(hs) != 2 {
		t.Fatalf("HomeSet grew past k: %v", hs)
	}
	if h.Pressure(2) != 1 || h.Pressure(0) != 1 || h.Pressure(3) != 0 {
		t.Errorf("pressure = [%d %d %d %d]", h.Pressure(0), h.Pressure(1), h.Pressure(2), h.Pressure(3))
	}
}

func TestSecondaryForPrefersLowPressure(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	a := mkJob(1, Batch, 0, 1, 2, 64*units.MB, 0)
	// Chunk 0 homes on node 0; chunk 1 homes on node 1. Node 2 carries no
	// home slots, so it is the low-pressure secondary for both.
	commit(h, a, 0, 0, 0)
	commit(h, a, 1, 1, 0)
	if sec, ok := h.SecondaryFor(a.Tasks[0].Chunk); !ok || sec != 2 {
		t.Errorf("SecondaryFor(chunk0) = %v,%v, want 2,true", sec, ok)
	}
	// Once node 2 is down, the only remaining candidate for chunk 0 is
	// node 1 (node 0 already holds it).
	h.MarkFailed(2)
	if sec, ok := h.SecondaryFor(a.Tasks[0].Chunk); !ok || sec != 1 {
		t.Errorf("SecondaryFor(chunk0) with node 2 down = %v,%v, want 1,true", sec, ok)
	}
}

func TestSecondaryForReinforcesEvictedHomeMember(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	j := mkJob(1, Batch, 0, 1, 1, 64*units.MB, 0)
	c := j.Tasks[0].Chunk
	commit(h, j, 0, 0, 0)
	commit(h, j, 0, 1, 0)
	// Simulate node 1 evicting the chunk: the policy should want it back on
	// its chosen secondary before recruiting a new node.
	h.Caches[1].Remove(c)
	if sec, ok := h.SecondaryFor(c); !ok || sec != 1 {
		t.Errorf("SecondaryFor = %v,%v, want the evicted member 1,true", sec, ok)
	}
	// Full set and all members resident: nothing to do.
	h.Caches[1].Insert(c, 64*units.MB)
	if sec, ok := h.SecondaryFor(c); ok {
		t.Errorf("SecondaryFor = %v with a full, resident home set", sec)
	}
}

func TestRehomePromotesSurvivorAndAdoptsWarmest(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	a := mkJob(1, Batch, 0, 1, 2, 64*units.MB, 0)
	// Chunk 0: homes [0 1]. Chunk 1: home [0] only, but organically resident
	// on nodes 1 and 2 with node 2 the less busy.
	commit(h, a, 0, 0, 0)
	commit(h, a, 0, 1, 0)
	commit(h, a, 1, 0, 0)
	c1 := a.Tasks[1].Chunk
	h.Caches[1].Insert(c1, 64*units.MB)
	h.Caches[2].Insert(c1, 64*units.MB)
	h.Available[1] = units.Time(10 * units.Second)
	h.Available[2] = units.Time(2 * units.Second)

	rep := h.MarkFailed(0)
	if rep.Rehomed != 2 || rep.Reseeded != 0 {
		t.Fatalf("report = %+v, want Rehomed=2 Reseeded=0", rep)
	}
	if !rep.Fully() {
		t.Error("Fully() = false for an all-warm re-home")
	}
	if home, _ := h.Home(a.Tasks[0].Chunk); home != 1 {
		t.Errorf("chunk 0 home = %d, want promoted survivor 1", home)
	}
	if home, _ := h.Home(c1); home != 2 {
		t.Errorf("chunk 1 home = %d, want warmest replica 2", home)
	}
}

func TestRehomeReseedsWhenNoReplicaSurvives(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	j := mkJob(1, Batch, 0, 1, 1, 64*units.MB, 0)
	c := j.Tasks[0].Chunk
	commit(h, j, 0, 1, 0) // only copy anywhere lives on node 1

	rep := h.MarkFailed(1)
	if rep.Rehomed != 0 || rep.Reseeded != 1 {
		t.Fatalf("report = %+v, want Rehomed=0 Reseeded=1", rep)
	}
	if rep.Fully() {
		t.Error("Fully() = true despite a re-seed")
	}
	if _, ok := h.Home(c); ok {
		t.Error("orphaned chunk still has a home")
	}
	if h.Pressure(1) != 0 {
		t.Errorf("dead node pressure = %d, want 0", h.Pressure(1))
	}
	// The rarest-first pass sees it as zero-replica again.
	if n := h.ReplicaCount(c); n != 0 {
		t.Errorf("ReplicaCount = %d after losing the only holder", n)
	}
}

func TestLocalitySchedulerSpreadsToSecondaries(t *testing.T) {
	h := newHead(3)
	h.SetReplication(2)
	s := &LocalityScheduler{Replicas: 2, SpreadEvery: 1, DisableIdleGuard: true}

	// Seed chunk residency: a batch job committed once gives every chunk a
	// single home; repeated scheduling of the same chunks should then grow
	// each home set toward k=2 via the spread pass.
	now := units.Time(0)
	for round := 0; round < 6; round++ {
		j := mkJob(JobID(round+1), Batch, 0, 1, 3, 64*units.MB, now)
		asn := s.Schedule(now, []*Job{j}, h)
		for _, a := range asn {
			h.CommitAssign(a.Task, a.Node, now)
		}
		now = now.Add(5 * units.Second)
	}
	for i := 0; i < 3; i++ {
		c := volume.ChunkID{Dataset: 1, Index: i}
		if hs := h.HomeSet(c); len(hs) > 2 {
			t.Errorf("chunk %d home set %v exceeds k=2", i, hs)
		}
	}
	// At least one chunk must have reached two homes: with stride 1 the
	// spread pass diverts every eligible cached-batch placement.
	grown := false
	for i := 0; i < 3; i++ {
		if len(h.HomeSet(volume.ChunkID{Dataset: 1, Index: i})) == 2 {
			grown = true
		}
	}
	if !grown {
		t.Error("no chunk reached two policy homes after repeated batch rounds")
	}
}

func TestSetReplicasImplementsReplicaSetter(t *testing.T) {
	var s ReplicaSetter = &LocalityScheduler{}
	s.SetReplicas(3)
	if got := s.(*LocalityScheduler).Replicas; got != 3 {
		t.Errorf("Replicas = %d, want 3", got)
	}
}
