package core

import (
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file is the scheduler-side half of the predictive prefetching layer
// (§5.8): the directive type a planner emits, the interfaces the engine and
// the live head use to wire a planner into a scheduler, and the head-state
// table that tracks which resident chunks exist only because of a prefetch
// (the Prefetched table) together with the accuracy counters.
//
// The planner runs at the *end* of Schedule, after every demand pass has
// committed its assignments, so prefetch work ranks strictly below cached
// batch and ε-eligible batch work by construction: it sees only the idle
// capacity demand left behind.

// PrefetchDirective asks the execution layer to warm one chunk on one node
// in the background. Size is the chunk's byte size (the cost the bandwidth
// governor already charged).
type PrefetchDirective struct {
	Node  NodeID
	Chunk volume.ChunkID
	Size  units.Bytes
}

// PrefetchPlanner emits ranked prefetch directives for the idle windows the
// demand schedule left open in [now, lambda). Implemented by
// prefetch.Controller.
type PrefetchPlanner interface {
	Plan(now, lambda units.Time, head *HeadState) []PrefetchDirective
}

// PrefetchSetter is implemented by schedulers that can host a prefetch
// planner (LocalityScheduler); the engine and the live head use it to wire
// the controller in, mirroring ReplicaSetter.
type PrefetchSetter interface {
	SetPrefetchPlanner(PrefetchPlanner)
}

// PrefetchSource exposes the directives the scheduler's planner produced in
// its latest Schedule call. Like the assignment slice, the returned slice
// is only valid until the next Schedule call.
type PrefetchSource interface {
	PlannedPrefetches() []PrefetchDirective
}

// prefKey identifies one prefetched residency: chunk c warmed on node k.
type prefKey struct {
	c volume.ChunkID
	k NodeID
}

// MarkPrefetched records a completed prefetch in the head tables: the chunk
// enters node k's predicted cache at the cold end (never displacing a chunk
// pinned by demand bookkeeping) and is tagged in the Prefetched table so a
// later demand touch or eviction settles the accuracy counters. Reports
// false when the predicted cache refused the admission.
func (h *HeadState) MarkPrefetched(c volume.ChunkID, k NodeID, size units.Bytes) bool {
	evicted, ok := h.Caches[k].InsertCold(c, size)
	if !ok {
		return false
	}
	for _, ev := range evicted {
		h.NotePrefetchEvicted(ev, k)
	}
	if h.prefetched == nil {
		h.prefetched = make(map[prefKey]struct{})
	}
	h.prefetched[prefKey{c, k}] = struct{}{}
	h.trackPlacement(c, k)
	return true
}

// IsPrefetched reports whether chunk c is resident on node k due to a
// prefetch that no demand task has touched yet.
func (h *HeadState) IsPrefetched(c volume.ChunkID, k NodeID) bool {
	_, ok := h.prefetched[prefKey{c, k}]
	return ok
}

// DemandTouchPrefetched settles a demand hit against the Prefetched table:
// if the chunk was prefetch-resident on the node, the entry converts to an
// ordinary residency and counts as a prefetch hit. Reports whether it did.
func (h *HeadState) DemandTouchPrefetched(c volume.ChunkID, k NodeID) bool {
	key := prefKey{c, k}
	if _, ok := h.prefetched[key]; !ok {
		return false
	}
	delete(h.prefetched, key)
	h.prefHits++
	return true
}

// NotePrefetchEvicted settles an eviction against the Prefetched table: a
// prefetched chunk evicted before any demand touch was wasted bandwidth.
// Reports whether the eviction hit a prefetched residency.
func (h *HeadState) NotePrefetchEvicted(c volume.ChunkID, k NodeID) bool {
	key := prefKey{c, k}
	if _, ok := h.prefetched[key]; !ok {
		return false
	}
	delete(h.prefetched, key)
	h.prefWasted++
	return true
}

// NotePrefetchHidden counts a hidden hit: a demand task arrived for a chunk
// whose prefetch load was still in flight and absorbed it, paying only the
// remaining load time.
func (h *HeadState) NotePrefetchHidden() { h.prefHidden++ }

// PrefetchAccuracy returns the accuracy counters: demand hits on prefetched
// chunks, hidden hits absorbed in flight, and prefetched chunks evicted
// unused.
func (h *HeadState) PrefetchAccuracy() (hits, hidden, wasted int64) {
	return h.prefHits, h.prefHidden, h.prefWasted
}

// dropPrefetchedOn clears every prefetched residency of a failed node,
// counting each as wasted: the warmed bytes died with the cache. Map
// iteration order is irrelevant — each entry is independently deleted and
// counted.
func (h *HeadState) dropPrefetchedOn(k NodeID) {
	for key := range h.prefetched {
		if key.k == k {
			delete(h.prefetched, key)
			h.prefWasted++
		}
	}
}
