package core

import (
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 64: 6, 100: 7}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDefaultCostModelOrdersOfMagnitude(t *testing.T) {
	m := DefaultCostModel()
	const chunk = 512 * units.MB
	io := m.IOTime(chunk)
	hit := m.HitExec(chunk, 4)
	miss := m.MissExec(chunk, 4)
	// Fig. 2: I/O is seconds, rendering+compositing is milliseconds. The
	// default (System 2) parallel file system loads a chunk in ≈1.2 s; the
	// System 1 local disks take ≈5.3 s.
	if io < 500*units.Millisecond || io > 10*units.Second {
		t.Errorf("IOTime(512MB) = %v, want ~1-5s", io)
	}
	if io1 := System1CostModel().IOTime(chunk); io1 < 4*units.Second || io1 > 10*units.Second {
		t.Errorf("System1 IOTime(512MB) = %v, want ~5s", io1)
	}
	if hit < 2*units.Millisecond || hit > 30*units.Millisecond {
		t.Errorf("HitExec(512MB) = %v, want ~10ms", hit)
	}
	// The dominance ratio the whole paper rests on: tio ≫ α.
	if ratio := float64(io) / float64(hit); ratio < 100 {
		t.Errorf("io/hit ratio = %v, want ≥100 (I/O must dominate)", ratio)
	}
	if miss != io+hit {
		t.Errorf("MissExec = %v, want io+hit = %v", miss, io+hit)
	}
}

func TestCompositeTimeGrowsWithGroup(t *testing.T) {
	m := DefaultCostModel()
	if m.CompositeTime(1) != 0 {
		t.Error("single-node group should composite for free")
	}
	if m.CompositeTime(4) >= m.CompositeTime(64) {
		t.Error("composite time must grow with group size")
	}
	// log2 growth: 64 nodes = 6 rounds.
	if m.CompositeTime(64) != 6*m.CompositeRound {
		t.Errorf("CompositeTime(64) = %v", m.CompositeTime(64))
	}
}

func TestTaskExecSelectsHitOrMiss(t *testing.T) {
	m := DefaultCostModel()
	const chunk = 256 * units.MB
	if m.TaskExec(chunk, 8, true) != m.HitExec(chunk, 8) {
		t.Error("hit selection wrong")
	}
	if m.TaskExec(chunk, 8, false) != m.MissExec(chunk, 8) {
		t.Error("miss selection wrong")
	}
}

// Property: costs are monotone in chunk size.
func TestQuickCostMonotoneInSize(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b uint32) bool {
		x, y := units.Bytes(a), units.Bytes(b)
		if x > y {
			x, y = y, x
		}
		return m.IOTime(x) <= m.IOTime(y) &&
			m.RenderTime(x) <= m.RenderTime(y) &&
			m.MissExec(x, 4) <= m.MissExec(y, 4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
