package core

import (
	"testing"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func TestOursMetadata(t *testing.T) {
	s := NewLocalityScheduler(0)
	if s.Name() != "OURS" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Trigger() != Periodic {
		t.Error("OURS must be periodic")
	}
	if s.Cycle() != DefaultCycle {
		t.Errorf("Cycle = %v, want default", s.Cycle())
	}
	if NewLocalityScheduler(5*units.Millisecond).Cycle() != 5*units.Millisecond {
		t.Error("explicit cycle ignored")
	}
}

func TestOursSchedulesAllInteractiveTasks(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(4)
	j1 := mkJob(1, Interactive, 1, 1, 4, 512*units.MB, 0)
	j2 := mkJob(2, Interactive, 2, 2, 4, 512*units.MB, 0)
	as := s.Schedule(0, []*Job{j1, j2}, h)
	if len(as) != 8 {
		t.Fatalf("assigned %d tasks, want all 8", len(as))
	}
	for _, j := range []*Job{j1, j2} {
		for i := range j.Tasks {
			if !j.Tasks[i].Assigned {
				t.Errorf("task %v left unassigned", &j.Tasks[i])
			}
		}
	}
}

func TestOursSameChunkSameNodeWithinCycle(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(4)
	// Three interactive jobs over the same dataset in one cycle: tasks for
	// chunk i must all land on the same node.
	jobs := []*Job{
		mkJob(1, Interactive, 1, 1, 4, 512*units.MB, 0),
		mkJob(2, Interactive, 2, 1, 4, 512*units.MB, 0),
		mkJob(3, Interactive, 3, 1, 4, 512*units.MB, 0),
	}
	as := s.Schedule(0, jobs, h)
	byChunk := make(map[volume.ChunkID]map[NodeID]bool)
	for _, a := range as {
		if byChunk[a.Task.Chunk] == nil {
			byChunk[a.Task.Chunk] = map[NodeID]bool{}
		}
		byChunk[a.Task.Chunk][a.Node] = true
	}
	for c, nodes := range byChunk {
		if len(nodes) != 1 {
			t.Errorf("chunk %v scattered over %d nodes", c, len(nodes))
		}
	}
}

func TestOursPrefersCachedNode(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(4)
	j := mkJob(1, Interactive, 1, 1, 1, 512*units.MB, 0)
	// Chunk is cached on node 2 only; all nodes equally available.
	h.Caches[2].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	as := s.Schedule(0, []*Job{j}, h)
	if len(as) != 1 || as[0].Node != 2 {
		t.Fatalf("assigned to %v, want node 2", as)
	}
}

func TestOursAbandonsCachedNodeWhenOverloaded(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(2)
	j := mkJob(1, Interactive, 1, 1, 1, 512*units.MB, 0)
	h.Caches[0].Insert(j.Tasks[0].Chunk, j.Tasks[0].Size)
	// Node 0 holds the cache but is busy for longer than a full reload
	// would take on idle node 1: load balance must win.
	h.Available[0] = units.Time(60 * units.Second)
	as := s.Schedule(0, []*Job{j}, h)
	if len(as) != 1 || as[0].Node != 1 {
		t.Fatalf("assigned to %v, want node 1", as)
	}
}

func TestOursDefersNonCachedBatchOnBusyInteractiveNodes(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(2)
	// Both nodes just served interactive work: ε not yet satisfied.
	ij := mkJob(1, Interactive, 1, 1, 2, 512*units.MB, 0)
	now := units.Time(0)
	s.Schedule(now, []*Job{ij}, h)

	bj := mkJob(2, Batch, 2, 7, 2, 512*units.MB, 0)
	as := s.Schedule(now.Add(units.Millisecond), []*Job{bj}, h)
	if len(as) != 0 {
		t.Fatalf("non-cached batch scheduled %d tasks on interactive-hot nodes", len(as))
	}
	// Long after the interactive activity, ε is satisfied and batch flows.
	later := now.Add(30 * units.Second)
	h.Available[0], h.Available[1] = later, later
	as = s.Schedule(later, []*Job{bj}, h)
	if len(as) == 0 {
		t.Fatal("batch never scheduled after idle threshold passed")
	}
}

func TestOursCachedBatchFillsUntilLambda(t *testing.T) {
	cycle := 10 * units.Millisecond
	s := NewLocalityScheduler(cycle)
	h := newHead(1)
	bj := mkJob(1, Batch, 1, 1, 1, 512*units.MB, 0)
	// The batch chunk is cached: tasks cost ~8ms each, so exactly one fits
	// before λ = now+10ms at a time.
	h.Caches[0].Insert(bj.Tasks[0].Chunk, bj.Tasks[0].Size)
	many := []*Job{}
	for i := 0; i < 5; i++ {
		many = append(many, mkJob(JobID(i+1), Batch, 1, 1, 1, 512*units.MB, 0))
	}
	as := s.Schedule(0, many, h)
	if len(as) == 0 {
		t.Fatal("cached batch starved")
	}
	if len(as) == 5 {
		t.Fatal("batch overfilled past λ")
	}
	// The rest remain unassigned for the next cycle.
	unassigned := 0
	for _, j := range many {
		if !j.Tasks[0].Assigned {
			unassigned++
		}
	}
	if unassigned != 5-len(as) {
		t.Errorf("unassigned = %d, want %d", unassigned, 5-len(as))
	}
}

func TestOursInteractivePriorityOverBatch(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(2)
	// One interactive and one batch job for the same (cached) dataset: the
	// interactive tasks must all be assigned; batch fills leftovers.
	for i := 0; i < 2; i++ {
		h.Caches[0].Insert(volume.ChunkID{Dataset: 1, Index: i}, 512*units.MB)
	}
	ij := mkJob(1, Interactive, 1, 1, 2, 512*units.MB, 0)
	bj := mkJob(2, Batch, 2, 1, 2, 512*units.MB, 0)
	as := s.Schedule(0, []*Job{bj, ij}, h)
	interactiveAssigned := 0
	for _, a := range as {
		if a.Task.Job.Class == Interactive {
			interactiveAssigned++
		}
	}
	if interactiveAssigned != 2 {
		t.Errorf("interactive tasks assigned = %d, want 2", interactiveAssigned)
	}
}

func TestOursSkipsFailedNodes(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(3)
	h.MarkFailed(1)
	j := mkJob(1, Interactive, 1, 1, 6, 256*units.MB, 0)
	as := s.Schedule(0, []*Job{j}, h)
	if len(as) != 6 {
		t.Fatalf("assigned %d, want 6", len(as))
	}
	for _, a := range as {
		if a.Node == 1 {
			t.Error("task placed on failed node")
		}
	}
}

func TestOursAllNodesFailedLeavesQueue(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(2)
	h.MarkFailed(0)
	h.MarkFailed(1)
	j := mkJob(1, Interactive, 1, 1, 2, 256*units.MB, 0)
	as := s.Schedule(0, []*Job{j}, h)
	if len(as) != 0 {
		t.Errorf("assigned %d tasks with no nodes alive", len(as))
	}
	if j.Tasks[0].Assigned || j.Tasks[1].Assigned {
		t.Error("tasks marked assigned with no nodes alive")
	}
}

func TestOursDeterministic(t *testing.T) {
	run := func() []Assignment {
		s := NewLocalityScheduler(0)
		h := newHead(4)
		jobs := []*Job{
			mkJob(1, Interactive, 1, 3, 4, 512*units.MB, 0),
			mkJob(2, Interactive, 2, 1, 4, 512*units.MB, 0),
			mkJob(3, Batch, 3, 2, 4, 512*units.MB, 0),
			mkJob(4, Interactive, 4, 1, 4, 512*units.MB, 0),
		}
		return s.Schedule(0, jobs, h)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Task.Chunk != b[i].Task.Chunk {
			t.Fatalf("assignment %d differs across runs", i)
		}
	}
}

func TestOursBalancesAcrossNodes(t *testing.T) {
	s := NewLocalityScheduler(0)
	h := newHead(8)
	// 6 datasets × 4 chunks = 24 chunk groups; they must spread over all
	// 8 nodes, not pile onto one.
	var jobs []*Job
	for d := 0; d < 6; d++ {
		jobs = append(jobs, mkJob(JobID(d+1), Interactive, ActionID(d+1), volume.DatasetID(d+1), 4, 512*units.MB, 0))
	}
	as := s.Schedule(0, jobs, h)
	counts := map[NodeID]int{}
	for _, a := range as {
		counts[a.Node]++
	}
	if len(counts) != 8 {
		t.Errorf("used %d nodes, want 8", len(counts))
	}
	for n, c := range counts {
		if c > 4 {
			t.Errorf("node %d overloaded with %d tasks", n, c)
		}
	}
}
