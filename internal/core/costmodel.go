package core

import (
	"math/bits"

	"vizsched/internal/units"
)

// CostModel quantifies the parallel volume rendering pipeline of §IV:
//
//	TExec(i,j,k) = tio + trender + tcomposite
//
// with tio dominating (tens of seconds for multi-GB data) and the rest a
// few milliseconds (Fig. 2), so TExec ≅ tio + α for misses. The constants
// below are calibrated to 2012-era hardware — spinning disks around
// 100 MB/s, PCIe 2.0 uploads, GPU ray casting at interactive rates — which
// is what reproduces the paper's framerate/latency shapes.
type CostModel struct {
	// DiskRate moves chunk bytes from the file system into main memory.
	DiskRate units.Rate
	// PCIeRate moves chunk bytes from main memory into GPU memory.
	PCIeRate units.Rate
	// RenderBase is the fixed per-task render cost (kernel launch, full
	// viewport traversal) independent of chunk size.
	RenderBase units.Duration
	// RenderRate converts chunk bytes to ray-casting time.
	RenderRate units.Rate
	// TaskOverhead is β: per-task dispatch, parameter transmission, and
	// subimage return over the interconnect.
	TaskOverhead units.Duration
	// CompositeRound is the cost of one swap round of parallel image
	// compositing; a render group of g nodes pays ⌈log₂ g⌉ rounds.
	CompositeRound units.Duration
}

// DefaultCostModel is System2CostModel: the larger of the paper's two
// testbeds, and the sane default for new deployments.
func DefaultCostModel() CostModel { return System2CostModel() }

// System1CostModel is calibrated to the paper's first system (§VI-A): an
// 8-node Linux cluster, one GTX 285 per node, quad-core hosts, gigabit-era
// interconnect. Per-task overheads are high relative to the second system —
// which is what makes FCFSU's uniform all-nodes partitioning cost roughly
// twice the resources per job in Scenario 1 (Fig. 4).
func System1CostModel() CostModel {
	return CostModel{
		DiskRate:       100 * units.MBps,
		PCIeRate:       4 * units.GBps,
		RenderBase:     1 * units.Millisecond,
		RenderRate:     256 * units.GBps,
		TaskOverhead:   5 * units.Millisecond,
		CompositeRound: 500 * units.Microsecond,
	}
}

// System2CostModel is calibrated to the paper's second system: the 100-node
// GPU cluster at Argonne (two FX5600s and 32 GB per node, InfiniBand-class
// interconnect and a GPFS-class parallel file system), whose lower per-task
// and I/O overheads let 64-node render groups sustain the 33.33 fps target
// in Scenario 3 (Fig. 6). A 512 MB chunk miss costs ≈1.2 s here versus
// ≈5.3 s on System 1; hits are ≈5–9 ms on both — Fig. 2's orders of
// magnitude either way.
func System2CostModel() CostModel {
	return CostModel{
		DiskRate:       500 * units.MBps,
		PCIeRate:       4 * units.GBps,
		RenderBase:     1 * units.Millisecond,
		RenderRate:     256 * units.GBps,
		TaskOverhead:   1500 * units.Microsecond,
		CompositeRound: 250 * units.Microsecond,
	}
}

// IOTime is tio: disk read plus GPU upload for a chunk of the given size.
func (m CostModel) IOTime(size units.Bytes) units.Duration {
	return m.DiskRate.TimeFor(size) + m.PCIeRate.TimeFor(size)
}

// RenderTime is trender for a chunk of the given size.
func (m CostModel) RenderTime(size units.Bytes) units.Duration {
	return m.RenderBase + m.RenderRate.TimeFor(size)
}

// CompositeTime is tcomposite for a render group of g nodes: ⌈log₂ g⌉
// exchange rounds. A single-node group composites nothing.
func (m CostModel) CompositeTime(group int) units.Duration {
	if group <= 1 {
		return 0
	}
	return m.CompositeRound * units.Duration(ceilLog2(group))
}

// HitExec is α: task execution when the chunk is already resident in the
// node's main memory.
func (m CostModel) HitExec(size units.Bytes, group int) units.Duration {
	return m.TaskOverhead + m.RenderTime(size) + m.CompositeTime(group)
}

// MissExec is a task execution that must first fetch its chunk: tio + α.
func (m CostModel) MissExec(size units.Bytes, group int) units.Duration {
	return m.IOTime(size) + m.HitExec(size, group)
}

// TaskExec selects hit or miss cost.
func (m CostModel) TaskExec(size units.Bytes, group int, hit bool) units.Duration {
	if hit {
		return m.HitExec(size, group)
	}
	return m.MissExec(size, group)
}

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
