package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file is the replication layer's property suite: randomized workloads
// and fault schedules drive the OURS scheduler cycle by cycle through the
// same Schedule → CommitAssign → Correct loop the engine and the live head
// use, and after every cycle the head-state invariants below must hold.
// CI runs it under -race -count=3 alongside the fault tests.

// invariantWorld drives one randomized run: a head, a scheduler, a rolling
// queue, and a seeded rng for job arrivals and fault injection.
type invariantWorld struct {
	t     *testing.T
	rng   *rand.Rand
	head  *HeadState
	sched *LocalityScheduler
	queue []*Job
	k     int
	now   units.Time
	next  JobID
}

func newInvariantWorld(t *testing.T, seed int64, nodes, k int) *invariantWorld {
	head := NewHeadState(nodes, 2*units.GB, System1CostModel())
	head.SetReplication(k)
	sched := NewLocalityScheduler(0)
	sched.SetReplicas(k)
	return &invariantWorld{
		t: t, rng: rand.New(rand.NewSource(seed)),
		head: head, sched: sched, k: k, next: 1,
	}
}

// arrive appends a random job to the queue.
func (w *invariantWorld) arrive() {
	class := Interactive
	if w.rng.Intn(3) == 0 {
		class = Batch
	}
	ds := volume.DatasetID(w.rng.Intn(3) + 1)
	chunks := w.rng.Intn(4) + 1
	j := &Job{
		ID: w.next, Class: class,
		Action:  ActionID(w.rng.Intn(4) + 1),
		Dataset: ds, Issued: w.now,
	}
	w.next++
	j.Tasks = make([]Task, chunks)
	for i := range j.Tasks {
		j.Tasks[i] = Task{
			Job: j, Index: i,
			Chunk: volume.ChunkID{Dataset: ds, Index: i},
			Size:  units.Bytes(w.rng.Intn(4)+1) * 64 * units.MB,
		}
	}
	j.Remaining = chunks
	w.queue = append(w.queue, j)
}

// alive counts HealthUp nodes.
func (w *invariantWorld) alive() int {
	n := 0
	for k := 0; k < w.head.Nodes(); k++ {
		if w.head.Alive(NodeID(k)) {
			n++
		}
	}
	return n
}

// chaos randomly fails and repairs nodes, keeping at least two alive so the
// scheduler always has a placement choice.
func (w *invariantWorld) chaos() {
	if w.rng.Intn(4) == 0 && w.alive() > 2 {
		victims := []NodeID{}
		for k := 0; k < w.head.Nodes(); k++ {
			if w.head.Alive(NodeID(k)) {
				victims = append(victims, NodeID(k))
			}
		}
		w.head.MarkFailed(victims[w.rng.Intn(len(victims))])
	}
	if w.rng.Intn(4) == 0 {
		for k := 0; k < w.head.Nodes(); k++ {
			if w.head.Health(NodeID(k)) == HealthDown {
				w.head.MarkRepaired(NodeID(k), w.now)
				break
			}
		}
	}
}

// cycle runs one scheduling cycle: arrivals, chaos, Schedule, CommitAssign,
// and random Corrects, returning the cycle's assignments.
func (w *invariantWorld) cycle() []Assignment {
	for i := w.rng.Intn(4); i > 0; i-- {
		w.arrive()
	}
	w.chaos()
	asn := w.sched.Schedule(w.now, w.queue, w.head)
	for _, a := range asn {
		exec := w.head.CommitAssign(a.Task, a.Node, w.now)
		a.Task.Job.Remaining--
		// Feed back a noisy completion for a random subset, exercising
		// Correct's estimate updates and predicted-cache reconciliation.
		if w.rng.Intn(2) == 0 {
			noise := units.Duration(w.rng.Int63n(int64(exec)/4 + 1))
			w.head.Correct(TaskResult{
				Task: a.Task, Node: a.Node, Hit: w.rng.Intn(2) == 0,
				Exec: exec + noise, Predicted: exec, Finished: w.now.Add(exec),
			}, w.now.Add(exec))
		}
	}
	live := w.queue[:0]
	for _, j := range w.queue {
		if j.Remaining > 0 {
			live = append(live, j)
		}
	}
	w.queue = live
	w.now = w.now.Add(100 * units.Millisecond)
	return asn
}

// checkState asserts the per-cycle head-state invariants.
func (w *invariantWorld) checkState(cycleNo int) {
	h := w.head
	// (1) Cache-table consistency: CachedOn(c) must agree with the per-node
	// caches and contain only HealthUp nodes, and ReplicaCount must be its
	// cardinality — both views of Cache[c] derive from the same tables.
	chunks := map[volume.ChunkID]bool{}
	for k := 0; k < h.Nodes(); k++ {
		for _, c := range h.Caches[k].Resident() {
			chunks[c] = true
		}
	}
	for c := range chunks {
		on := h.CachedOn(c)
		if len(on) != h.ReplicaCount(c) {
			w.t.Fatalf("cycle %d: chunk %v: CachedOn=%v but ReplicaCount=%d", cycleNo, c, on, h.ReplicaCount(c))
		}
		for _, n := range on {
			if !h.Alive(n) {
				w.t.Fatalf("cycle %d: chunk %v cached on dead node %d", cycleNo, c, n)
			}
			if !h.Caches[n].Contains(c) {
				w.t.Fatalf("cycle %d: chunk %v: CachedOn says node %d but cache disagrees", cycleNo, c, n)
			}
		}
	}
	// (2) Home sets: never longer than k, no duplicate members, no
	// HealthDown members (re-homing must have scrubbed them), and the
	// pressure table must equal a fresh recount of home slots.
	recount := make([]int, h.Nodes())
	for c := range chunks {
		hs := h.HomeSet(c)
		if len(hs) > w.k {
			w.t.Fatalf("cycle %d: chunk %v home set %v exceeds k=%d", cycleNo, c, hs, w.k)
		}
		seen := map[NodeID]bool{}
		for _, n := range hs {
			if seen[n] {
				w.t.Fatalf("cycle %d: chunk %v home set %v has duplicates", cycleNo, c, hs)
			}
			seen[n] = true
			if h.Health(n) == HealthDown {
				w.t.Fatalf("cycle %d: chunk %v home set %v contains down node %d", cycleNo, c, hs, n)
			}
		}
	}
	for c := range h.homes {
		for _, n := range h.homes[c] {
			recount[n]++
		}
	}
	for k, want := range recount {
		if got := h.Pressure(NodeID(k)); got != want {
			w.t.Fatalf("cycle %d: pressure[%d]=%d, recount says %d", cycleNo, k, got, want)
		}
	}
}

// checkInteractiveGrouping asserts that within one cycle's assignments, all
// interactive tasks on the same chunk landed on one node — the render-group
// co-location Algorithm 1 guarantees (same-chunk interactive work shares an
// upload, so splitting it wastes the cache).
func (w *invariantWorld) checkInteractiveGrouping(cycleNo int, asn []Assignment) {
	where := map[volume.ChunkID]NodeID{}
	for _, a := range asn {
		if a.Task.Job.Class != Interactive {
			continue
		}
		if prev, ok := where[a.Task.Chunk]; ok && prev != a.Node {
			w.t.Fatalf("cycle %d: interactive chunk %v split across nodes %d and %d",
				cycleNo, a.Task.Chunk, prev, a.Node)
		}
		where[a.Task.Chunk] = a.Node
	}
}

// TestInvariantReplicaSets drives randomized workloads with fault injection
// at several replication degrees and checks the cache/home/pressure
// invariants after every cycle.
func TestInvariantReplicaSets(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("k=%d/seed=%d", k, seed), func(t *testing.T) {
				w := newInvariantWorld(t, seed, 5, k)
				for cycle := 0; cycle < 120; cycle++ {
					asn := w.cycle()
					w.checkState(cycle)
					w.checkInteractiveGrouping(cycle, asn)
				}
			})
		}
	}
}

// TestInvariantInteractiveGroupOneNode focuses the grouping property on a
// workload that is mostly same-action interactive frames, where splitting
// would be most tempting for a load balancer.
func TestInvariantInteractiveGroupOneNode(t *testing.T) {
	w := newInvariantWorld(t, 99, 4, 2)
	for cycle := 0; cycle < 80; cycle++ {
		j := &Job{ID: w.next, Class: Interactive, Action: 1, Dataset: 1, Issued: w.now}
		w.next++
		j.Tasks = make([]Task, 4)
		for i := range j.Tasks {
			j.Tasks[i] = Task{Job: j, Index: i,
				Chunk: volume.ChunkID{Dataset: 1, Index: i}, Size: 128 * units.MB}
		}
		j.Remaining = 4
		w.queue = append(w.queue, j)
		asn := w.cycle()
		w.checkInteractiveGrouping(cycle, asn)
	}
}

// TestInvariantBatchNotStarved asserts the ε-deferral can postpone but never
// permanently starve batch work: with a steady single-action interactive
// stream pinning one node, a batch job over a cold dataset must still be
// fully assigned within a bounded number of cycles (other nodes accumulate
// interactive-idle time and cross ε).
func TestInvariantBatchNotStarved(t *testing.T) {
	for _, k := range []int{1, 2} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			head := NewHeadState(4, 2*units.GB, System1CostModel())
			head.SetReplication(k)
			sched := NewLocalityScheduler(0)
			sched.SetReplicas(k)
			now := units.Time(0)
			next := JobID(1)

			batch := &Job{ID: next, Class: Batch, Dataset: 2, Issued: now}
			next++
			batch.Tasks = make([]Task, 3)
			for i := range batch.Tasks {
				batch.Tasks[i] = Task{Job: batch, Index: i,
					Chunk: volume.ChunkID{Dataset: 2, Index: i}, Size: 256 * units.MB}
			}
			batch.Remaining = 3
			queue := []*Job{batch}

			for cycle := 0; cycle < 200 && batch.Remaining > 0; cycle++ {
				frame := &Job{ID: next, Class: Interactive, Action: 1, Dataset: 1, Issued: now}
				next++
				frame.Tasks = []Task{{Job: frame, Index: 0,
					Chunk: volume.ChunkID{Dataset: 1, Index: 0}, Size: 128 * units.MB}}
				frame.Remaining = 1
				queue = append(queue, frame)

				for _, a := range sched.Schedule(now, queue, head) {
					head.CommitAssign(a.Task, a.Node, now)
					a.Task.Job.Remaining--
				}
				live := queue[:0]
				for _, j := range queue {
					if j.Remaining > 0 {
						live = append(live, j)
					}
				}
				queue = live
				now = now.Add(100 * units.Millisecond)
			}
			if batch.Remaining > 0 {
				t.Fatalf("batch job still has %d unassigned tasks after 200 cycles (k=%d)", batch.Remaining, k)
			}
		})
	}
}
