package core

import (
	"fmt"

	"vizsched/internal/cache"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// HeadState is the head node's view of the cluster: the three tables of
// §V-A (Available, Cache, Estimate) plus the per-node last-interactive
// timestamps that implement the idle-time threshold ε. The tables are
// *predictions*, updated eagerly as tasks are scheduled and corrected as
// TaskResults flow back (§V-B). Every scheduler — OURS and the baselines —
// reads and writes the same structure, so their bookkeeping costs are
// comparable, which Table III measures.
type HeadState struct {
	// Available[k] predicts when node R_k will have drained its queue.
	Available []units.Time
	// Caches[k] predicts node R_k's main-memory residency (the Cache table,
	// indexed the transposed way: per node rather than per chunk; CachedOn
	// provides the per-chunk view Algorithm 1 uses).
	Caches []*cache.LRU
	// lastInteractive[k] is the last time an interactive task was assigned
	// to R_k.
	lastInteractive []units.Time
	// estimate[c] is the latest observed miss execution time for chunk c;
	// absent entries fall back to the cost model ("via a test run", §V-B).
	// Only Correct writes here, which keeps every table mutation inside the
	// journaled operations the snapshot+journal recovery replays (§5.10).
	estimate map[volume.ChunkID]units.Duration
	// estimateSrc, when non-nil, is consulted on an estimate-table miss
	// before falling back to the cost model — the hook the multi-head
	// control plane (§5.11) uses to share Estimate[c] observations across
	// shards through the chunk directory. Function-valued, so it never
	// serializes: Dump/LoadTables ignore it, and a recovered head starts
	// with whatever source its owner re-installs. Nil (the default) keeps
	// Estimate byte-identical to the single-head behaviour.
	estimateSrc func(volume.ChunkID) (units.Duration, bool)
	// hitObs learns actual cached-task execution times per (size, group),
	// the symmetric correction to estimate: without it, a system whose real
	// costs differ from the model would mis-rank cached against non-cached
	// placements.
	hitObs map[hitKey]units.Duration

	// Model prices task executions for predictions.
	Model CostModel

	// health[k] is the node's position in the up → suspect → down state
	// machine (§VI-D). Schedulers only place work on HealthUp nodes; the
	// suspect state lets a head stop feeding a silent node before declaring
	// it dead and requeueing its tasks.
	health []Health

	// replicaK is the replication policy's target degree k (§5.6); 1 is the
	// single-home behaviour of the paper and disables home tracking.
	replicaK int
	// homes[c] is the policy-tracked replica home set for chunk c, primary
	// first, never longer than replicaK. Residency beyond the set (bestNode
	// load-balancing) is organic and untracked.
	homes map[volume.ChunkID][]NodeID
	// pressure[k] is node k's placement-pressure score: the number of home
	// slots the policy has assigned to it. Secondary selection steers to
	// low-pressure nodes.
	pressure []int

	// coBusy[k] marks node k as hosting a co-scheduled fractional task
	// (§5.13); lazily allocated by CommitCoAssign, so runs without the
	// fracshare layer never touch it.
	coBusy []bool

	// prefetched tags residencies created by the prefetching layer (§5.8)
	// that no demand task has touched yet; the counters below settle its
	// entries into hits, hidden hits, or waste. Lazily allocated — nil until
	// the first MarkPrefetched, so prefetch-off runs never touch it.
	prefetched map[prefKey]struct{}
	prefHits   int64
	prefHidden int64
	prefWasted int64
}

// Health is a node's liveness state as seen by the head.
type Health int

// Health states. A node starts HealthUp; missed heartbeats demote it to
// HealthSuspect (no new work) and then HealthDown (tasks requeued, caches
// forgotten); a heartbeat resurrects a suspect, and a rejoin repairs a down
// node with a cold cache. HealthDraining is the voluntary exit lane (§5.12):
// the autoscaler parks a node there while its work migrates and its
// working set pre-warms elsewhere, then CompleteDrain retires it to
// HealthDown without any of the crash-path accounting.
const (
	HealthUp Health = iota
	HealthSuspect
	HealthDown
	HealthDraining
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case HealthUp:
		return "up"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	case HealthDraining:
		return "draining"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// NewHeadState builds head-node tables for n nodes with the given per-node
// main-memory quota.
func NewHeadState(n int, quota units.Bytes, model CostModel) *HeadState {
	if n <= 0 {
		panic(fmt.Sprintf("core: non-positive node count %d", n))
	}
	h := &HeadState{
		Available:       make([]units.Time, n),
		Caches:          make([]*cache.LRU, n),
		lastInteractive: make([]units.Time, n),
		estimate:        make(map[volume.ChunkID]units.Duration),
		hitObs:          make(map[hitKey]units.Duration),
		Model:           model,
		health:          make([]Health, n),
		replicaK:        1,
		pressure:        make([]int, n),
	}
	for k := range h.Caches {
		h.Caches[k] = cache.NewLRU(quota)
	}
	for k := range h.lastInteractive {
		h.lastInteractive[k] = -1 << 62 // long before the epoch: ε starts satisfied
	}
	return h
}

// Nodes returns the cluster size p.
func (h *HeadState) Nodes() int { return len(h.Available) }

// Alive reports whether node k is usable: only HealthUp nodes receive work.
func (h *HeadState) Alive(k NodeID) bool { return h.health[k] == HealthUp }

// Health returns node k's liveness state.
func (h *HeadState) Health(k NodeID) Health { return h.health[k] }

// MarkSuspect demotes an up node to suspect: it keeps its predicted caches
// (it may come back) but receives no new work. Down nodes stay down.
func (h *HeadState) MarkSuspect(k NodeID) {
	if h.health[k] == HealthUp {
		h.health[k] = HealthSuspect
	}
}

// MarkUp clears a suspect node back to up — a heartbeat arrived after all.
// Down nodes must rejoin through MarkRepaired instead.
func (h *HeadState) MarkUp(k NodeID) {
	if h.health[k] == HealthSuspect {
		h.health[k] = HealthUp
	}
}

// MarkFailed removes a node from scheduling consideration and forgets its
// predicted caches; MarkRepaired restores it (empty). With the replication
// layer enabled, the failed node's orphaned chunks are re-homed to their
// warmest surviving replica (or dropped for rarest-first re-seeding when
// none survives); the report says how much of the failure was absorbed
// warm. Disabled or untracked, the report is zero.
func (h *HeadState) MarkFailed(k NodeID) RehomeReport {
	h.health[k] = HealthDown
	h.dropPrefetchedOn(k)
	h.CoDone(k)
	h.Caches[k] = cache.NewLRU(h.Caches[k].Quota())
	return h.rehomeFailed(k)
}

// MarkRepaired returns a failed node to service with a cold cache.
func (h *HeadState) MarkRepaired(k NodeID, now units.Time) {
	h.health[k] = HealthUp
	h.Available[k] = now
}

// MarkDraining starts a graceful drain of node k (§5.12): the node takes no
// new work (Alive is false) and its predicted residency stops counting
// toward CachedOn/ReplicaCount, but — unlike a failure — its caches and
// home bookkeeping survive until CompleteDrain, because the node is still
// up and finishing what it holds. Only an up node can start draining;
// suspect and down nodes go through the crash path instead.
func (h *HeadState) MarkDraining(k NodeID) bool {
	if h.health[k] != HealthUp {
		return false
	}
	h.health[k] = HealthDraining
	return true
}

// Draining reports whether node k is mid-drain.
func (h *HeadState) Draining(k NodeID) bool { return h.health[k] == HealthDraining }

// CompleteDrain retires a draining node: HealthDown with a cold predicted
// cache, exactly like the end state of MarkFailed but with none of the
// crash-path side effects — DemoteHomes already moved the home sets, so
// nothing is re-homed here and nothing is left for the rarest-first pass to
// re-seed. The existing rejoin/repair path (MarkRepaired) brings the slot
// back into service later.
func (h *HeadState) CompleteDrain(k NodeID) {
	h.health[k] = HealthDown
	h.dropPrefetchedOn(k)
	h.CoDone(k)
	h.Caches[k] = cache.NewLRU(h.Caches[k].Quota())
}

// Estimate returns Estimate[c]: the expected miss execution time for a task
// on chunk c in a render group of the given size, falling back to the cost
// model until a miss has been observed. Reading never writes the table:
// every job renders its whole dataset, so pre-observation queries for a
// chunk always carry the same (size, group) and the fallback is as
// deterministic as a memoized entry — and a read-only Estimate keeps table
// mutations confined to the journaled operations recovery replays. A miss
// does strictly more work than a hit (it is a hit plus a load), so the
// estimate is floored just above the hit estimate — otherwise a fast
// observed load could make the scheduler prefer reloading over reusing
// forever.
func (h *HeadState) Estimate(c volume.ChunkID, size units.Bytes, group int) units.Duration {
	e, ok := h.estimate[c]
	if !ok && h.estimateSrc != nil {
		// Cross-shard fallback (§5.11): another shard may have observed this
		// chunk already. Local observations always win; the directory only
		// fills the cold-start gap the model would otherwise cover.
		e, ok = h.estimateSrc(c)
	}
	if !ok {
		e = h.Model.MissExec(size, group)
	}
	if floor := h.HitEstimate(size, group) + units.Microsecond; e < floor {
		return floor
	}
	return e
}

// SetEstimateSource installs (or, with nil, removes) the cross-shard
// estimate fallback. Owners install it once at shard construction; the
// zero state — no source — is exactly the single-head behaviour.
func (h *HeadState) SetEstimateSource(src func(volume.ChunkID) (units.Duration, bool)) {
	h.estimateSrc = src
}

// IdleThreshold returns ε = Estimate[c]/2, the minimum interactive-idle time
// a node must show before a non-cached batch task may be placed on it.
func (h *HeadState) IdleThreshold(c volume.ChunkID, size units.Bytes, group int) units.Duration {
	return h.Estimate(c, size, group) / 2
}

// InteractiveIdle returns how long node k has gone without an interactive
// assignment as of now.
func (h *HeadState) InteractiveIdle(k NodeID, now units.Time) units.Duration {
	return now.Sub(h.lastInteractive[k])
}

// CachedOn returns the nodes predicted to hold chunk c — the per-chunk view
// of the Cache table (Cache[c] in Algorithm 1). Failed nodes are excluded.
func (h *HeadState) CachedOn(c volume.ChunkID) []NodeID {
	var nodes []NodeID
	for k := range h.Caches {
		if h.health[k] == HealthUp && h.Caches[k].Contains(c) {
			nodes = append(nodes, NodeID(k))
		}
	}
	return nodes
}

// ReplicaCount returns len(CachedOn(c)) without allocating the node list —
// the form scheduler hot paths use, where only the predicted replica count
// matters (cached/non-cached splits and rarest-first ordering).
func (h *HeadState) ReplicaCount(c volume.ChunkID) int {
	n := 0
	for k := range h.Caches {
		if h.health[k] == HealthUp && h.Caches[k].Contains(c) {
			n++
		}
	}
	return n
}

// hitKey buckets hit-cost observations.
type hitKey struct {
	size  units.Bytes
	group int
}

// HitEstimate returns the expected cached-task execution time, preferring
// observed times over the cost model.
func (h *HeadState) HitEstimate(size units.Bytes, group int) units.Duration {
	if obs, ok := h.hitObs[hitKey{size, group}]; ok {
		return obs
	}
	return h.Model.HitExec(size, group)
}

// PredictExec prices running task t on node k under the current tables:
// the (observed) hit cost when the chunk is predicted resident, Estimate[c]
// otherwise.
func (h *HeadState) PredictExec(t *Task, k NodeID) units.Duration {
	group := t.Job.GroupSize()
	if h.Caches[k].Contains(t.Chunk) {
		return h.HitEstimate(t.Size, group)
	}
	return h.Estimate(t.Chunk, t.Size, group)
}

// CommitAssign records an assignment in the tables: bumps the node's
// predicted available time, predicts the chunk load (with LRU eviction) on
// a miss, and stamps lastInteractive for interactive tasks. It returns the
// predicted execution time, which the engine threads through to Correct.
func (h *HeadState) CommitAssign(t *Task, k NodeID, now units.Time) units.Duration {
	exec := h.PredictExec(t, k)
	start := h.Available[k]
	if start < now {
		start = now
	}
	h.Available[k] = start.Add(exec)
	if !h.Caches[k].Contains(t.Chunk) {
		h.Caches[k].Insert(t.Chunk, t.Size)
	} else {
		h.Caches[k].Touch(t.Chunk)
	}
	h.trackPlacement(t.Chunk, k)
	if t.Job.Class == Interactive {
		h.lastInteractive[k] = now
	}
	t.PredictedExec = exec
	return exec
}

// Correct reconciles the tables with an actual task completion (§V-B):
// Estimate[c] tracks the latest observed miss time, the Available
// prediction absorbs the drift between predicted and actual execution, and
// the predicted cache drops whatever the node actually evicted.
func (h *HeadState) Correct(res TaskResult, now units.Time) {
	if res.Hit {
		key := hitKey{res.Task.Size, res.Task.Job.GroupSize()}
		if prev, ok := h.hitObs[key]; ok {
			// Light smoothing keeps one outlier from flapping placements.
			h.hitObs[key] = (3*prev + res.Exec) / 4
		} else {
			h.hitObs[key] = res.Exec
		}
	} else {
		h.estimate[res.Task.Chunk] = res.Exec
	}
	drift := res.Exec - res.Predicted
	if drift != 0 {
		av := h.Available[res.Node].Add(drift)
		if av < now {
			av = now
		}
		h.Available[res.Node] = av
	}
	c := h.Caches[res.Node]
	for _, ev := range res.Evicted {
		c.Remove(ev)
		h.NotePrefetchEvicted(ev, res.Node)
	}
	// If the prediction said resident but the node actually missed, the
	// node has (re)loaded it now either way; make sure the table agrees.
	if !c.Contains(res.Task.Chunk) {
		c.Insert(res.Task.Chunk, res.Task.Size)
	}
}
