package core

import "vizsched/internal/units"

// This file is the scheduler-side half of the fractional-capacity layer
// (§5.13, internal/fracshare): co-scheduled assignments and the head-table
// bookkeeping that backs them. A co-scheduled task rides a node's spare
// capacity at a fractional share — it is preempted (share → 0) the instant a
// demand task starts on the node — so committing one must NOT advance the
// node's predicted available time: interactive placement has to keep seeing
// the node as free, or the guest would repel exactly the work it yields to.

// CoScheduleSetter is implemented by schedulers that can emit co-scheduled
// fractional assignments (OURS). The engine installs the configured co-share
// when the fracshare layer is enabled, mirroring ReplicaSetter and
// PrefetchSetter; without the call the scheduler emits none, so every other
// configuration is untouched.
type CoScheduleSetter interface {
	SetCoSchedule(share float64)
}

// CoBusy reports whether node k already hosts a co-scheduled task. The
// scheduler consults it so at most one guest runs per node — the slot model
// reserves the remaining capacity for demand work.
func (h *HeadState) CoBusy(k NodeID) bool {
	return h.coBusy != nil && h.coBusy[k]
}

// CommitCoAssign records a co-scheduled assignment in the tables: the
// predicted cache learns the chunk (the guest's execution loads it like any
// other task), but Available[k] and lastInteractive are left alone — the
// guest occupies only capacity the demand plan considers idle. Returns the
// predicted full-share execution time, threaded to Correct like any other
// assignment.
func (h *HeadState) CommitCoAssign(t *Task, k NodeID, now units.Time) units.Duration {
	exec := h.PredictExec(t, k)
	if !h.Caches[k].Contains(t.Chunk) {
		h.Caches[k].Insert(t.Chunk, t.Size)
	} else {
		h.Caches[k].Touch(t.Chunk)
	}
	h.trackPlacement(t.Chunk, k)
	if h.coBusy == nil {
		h.coBusy = make([]bool, len(h.Available))
	}
	h.coBusy[k] = true
	t.PredictedExec = exec
	return exec
}

// CoDone clears node k's co-scheduled occupancy — called when the guest
// completes, is requeued by a fault, or its node leaves service.
func (h *HeadState) CoDone(k NodeID) {
	if h.coBusy != nil {
		h.coBusy[k] = false
	}
}
