package core_test

import (
	"fmt"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// The paper's scheduler routes same-chunk tasks to the node that caches the
// chunk, so repeated renders of one dataset avoid re-reading it from disk.
func ExampleLocalityScheduler() {
	sched := core.NewLocalityScheduler(10 * units.Millisecond)
	head := core.NewHeadState(4, 2*units.GB, core.System1CostModel())

	job := &core.Job{ID: 1, Class: core.Interactive, Action: 1, Dataset: 7}
	job.Tasks = []core.Task{{
		Job: job, Index: 0,
		Chunk: volume.ChunkID{Dataset: 7, Index: 0},
		Size:  512 * units.MB,
	}}
	job.Remaining = 1

	// Node 2 already caches the chunk.
	head.Caches[2].Insert(job.Tasks[0].Chunk, 512*units.MB)

	assignments := sched.Schedule(0, []*core.Job{job}, head)
	fmt.Printf("task %v -> node %d\n", assignments[0].Task, assignments[0].Node)
	// Output:
	// task J1/T0 -> node 2
}

// The cost model quantifies why locality matters: reloading a chunk costs
// seconds, rendering a cached one costs milliseconds (Fig. 2).
func ExampleCostModel() {
	m := core.System1CostModel()
	const chunk = 512 * units.MB
	fmt.Printf("miss: %v\n", m.MissExec(chunk, 4).Std().Round(time.Millisecond))
	fmt.Printf("hit:  %v\n", m.HitExec(chunk, 4).Std().Round(time.Millisecond))
	// Output:
	// miss: 5.254s
	// hit:  9ms
}
