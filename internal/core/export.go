package core

import (
	"fmt"
	"slices"

	"vizsched/internal/cache"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file is the serialization boundary of the head's dispatch state
// (DESIGN.md §5.10): TableDump is a deterministic, self-contained value
// capturing every HeadState table — the §V-A prediction tables, health,
// replica homes and pressure, and the prefetch accuracy state — in sorted,
// slice-only form so that identical states always encode to identical
// bytes. Dump/LoadTables are the snapshot half of the head's
// snapshot+journal recovery; the journal half replays ordinary
// CommitAssign/Correct/MarkFailed mutations on top of a loaded dump.

// EstimateEntry is one Estimate[c] row.
type EstimateEntry struct {
	Chunk volume.ChunkID
	Exec  units.Duration
}

// HitObsEntry is one learned cached-execution observation.
type HitObsEntry struct {
	Size  units.Bytes
	Group int
	Exec  units.Duration
}

// HomeEntry is one chunk's replica home set, primary first.
type HomeEntry struct {
	Chunk volume.ChunkID
	Homes []NodeID
}

// PrefEntry is one untouched prefetched residency.
type PrefEntry struct {
	Chunk volume.ChunkID
	Node  NodeID
}

// CacheDump is one node's predicted cache.
type CacheDump struct {
	Quota   units.Bytes
	Entries []cache.Entry
	Stats   cache.Stats
}

// TableDump is the serializable form of a HeadState. All map-backed tables
// are flattened into key-sorted slices, so two deep-equal HeadStates always
// produce deep-equal (and byte-identical, under any deterministic encoder)
// dumps.
type TableDump struct {
	Available       []units.Time
	LastInteractive []units.Time
	Health          []Health
	ReplicaK        int
	Pressure        []int
	Caches          []CacheDump
	Estimates       []EstimateEntry
	HitObs          []HitObsEntry
	Homes           []HomeEntry
	Prefetched      []PrefEntry
	PrefHits        int64
	PrefHidden      int64
	PrefWasted      int64
}

// Dump captures the complete table state. The receiver is not mutated.
func (h *HeadState) Dump() *TableDump {
	d := &TableDump{
		Available:       slices.Clone(h.Available),
		LastInteractive: slices.Clone(h.lastInteractive),
		Health:          slices.Clone(h.health),
		ReplicaK:        h.replicaK,
		Pressure:        slices.Clone(h.pressure),
		Caches:          make([]CacheDump, len(h.Caches)),
		PrefHits:        h.prefHits,
		PrefHidden:      h.prefHidden,
		PrefWasted:      h.prefWasted,
	}
	for k, c := range h.Caches {
		d.Caches[k] = CacheDump{Quota: c.Quota(), Entries: c.Export(), Stats: c.Stats()}
	}
	for c, e := range h.estimate {
		d.Estimates = append(d.Estimates, EstimateEntry{Chunk: c, Exec: e})
	}
	slices.SortFunc(d.Estimates, func(a, b EstimateEntry) int { return chunkCompare(a.Chunk, b.Chunk) })
	for key, e := range h.hitObs {
		d.HitObs = append(d.HitObs, HitObsEntry{Size: key.size, Group: key.group, Exec: e})
	}
	slices.SortFunc(d.HitObs, func(a, b HitObsEntry) int {
		if a.Size != b.Size {
			return int(a.Size - b.Size)
		}
		return a.Group - b.Group
	})
	for c, hs := range h.homes {
		d.Homes = append(d.Homes, HomeEntry{Chunk: c, Homes: slices.Clone(hs)})
	}
	slices.SortFunc(d.Homes, func(a, b HomeEntry) int { return chunkCompare(a.Chunk, b.Chunk) })
	for key := range h.prefetched {
		d.Prefetched = append(d.Prefetched, PrefEntry{Chunk: key.c, Node: key.k})
	}
	slices.SortFunc(d.Prefetched, func(a, b PrefEntry) int {
		if c := chunkCompare(a.Chunk, b.Chunk); c != 0 {
			return c
		}
		return int(a.Node - b.Node)
	})
	return d
}

// LoadTables reconstructs a HeadState from a dump. The model is supplied by
// the caller (cost models carry function-valued configuration that does not
// serialize); everything else comes from the dump. LoadTables(h.Dump())
// yields tables that behave identically to h under any mutation sequence.
func LoadTables(d *TableDump, model CostModel) *HeadState {
	n := len(d.Available)
	if n == 0 || len(d.Caches) != n || len(d.Health) != n || len(d.LastInteractive) != n || len(d.Pressure) != n {
		panic(fmt.Sprintf("core: inconsistent table dump (n=%d caches=%d health=%d lastInteractive=%d pressure=%d)",
			n, len(d.Caches), len(d.Health), len(d.LastInteractive), len(d.Pressure)))
	}
	h := &HeadState{
		Available:       slices.Clone(d.Available),
		Caches:          make([]*cache.LRU, n),
		lastInteractive: slices.Clone(d.LastInteractive),
		estimate:        make(map[volume.ChunkID]units.Duration, len(d.Estimates)),
		hitObs:          make(map[hitKey]units.Duration, len(d.HitObs)),
		Model:           model,
		health:          slices.Clone(d.Health),
		replicaK:        d.ReplicaK,
		pressure:        slices.Clone(d.Pressure),
		prefHits:        d.PrefHits,
		prefHidden:      d.PrefHidden,
		prefWasted:      d.PrefWasted,
	}
	for k, cd := range d.Caches {
		h.Caches[k] = cache.NewLRU(cd.Quota)
		h.Caches[k].Restore(cd.Entries, cd.Stats)
	}
	for _, e := range d.Estimates {
		h.estimate[e.Chunk] = e.Exec
	}
	for _, e := range d.HitObs {
		h.hitObs[hitKey{e.Size, e.Group}] = e.Exec
	}
	if len(d.Homes) > 0 {
		h.homes = make(map[volume.ChunkID][]NodeID, len(d.Homes))
		for _, e := range d.Homes {
			h.homes[e.Chunk] = slices.Clone(e.Homes)
		}
	}
	if len(d.Prefetched) > 0 {
		h.prefetched = make(map[prefKey]struct{}, len(d.Prefetched))
		for _, e := range d.Prefetched {
			h.prefetched[prefKey{e.Chunk, e.Node}] = struct{}{}
		}
	}
	return h
}

// ResyncCache reconciles node k's predicted cache with the worker's
// announced truth during a resync epoch: the announcement (most-recent
// first, as the worker's own Export reports it) replaces the prediction
// wholesale. Prefetched-residency tags whose chunk did not survive on the
// worker settle as wasted — the warmed bytes are gone.
func (h *HeadState) ResyncCache(k NodeID, announced []cache.Entry) {
	fresh := cache.NewLRU(h.Caches[k].Quota())
	ents := make([]cache.Entry, len(announced))
	for i, e := range announced {
		// Announced pins and frequencies are worker-side facts; the
		// prediction table only needs identity, size, and recency.
		ents[i] = cache.Entry{ID: e.ID, Size: e.Size, Freq: e.Freq}
	}
	fresh.Restore(ents, cache.Stats{})
	h.Caches[k] = fresh
	for key := range h.prefetched {
		if key.k == k && !fresh.Contains(key.c) {
			delete(h.prefetched, key)
			h.prefWasted++
		}
	}
}
