package core

import (
	"slices"

	"vizsched/internal/volume"
)

// This file is the replication policy layer (DESIGN.md §5.6): a configurable
// replication degree k under which the scheduler deliberately places a
// bounded fraction of batch work on a chunk's *secondary* node instead of
// always reinforcing the primary home, so every hot chunk ends up resident
// on k nodes without synthetic copy traffic — and a node crash no longer
// orphans a dataset, because its chunks re-home to their warmest surviving
// replica. Both the simulator and the live service call through HeadState,
// so they share one policy implementation.

// DefaultReplicas is the replication degree k the policy layer uses when
// enabled without an explicit k: two copies of every hot chunk, the minimum
// that removes the single-home failure mode.
const DefaultReplicas = 2

// ReplicaSetter is implemented by schedulers that participate in the
// replication policy layer; the engine and the live head use it to push the
// configured degree into the scheduling policy.
type ReplicaSetter interface {
	// SetReplicas sets the target replication degree k; values ≤ 1 select
	// the single-home behaviour of Algorithm 1.
	SetReplicas(k int)
}

// RehomeReport summarizes what one node failure did to the policy's home
// tables.
type RehomeReport struct {
	// Rehomed counts chunks that lost the failed node from their home set
	// but still have a home afterwards: either a surviving secondary was
	// promoted, or (for chunks whose only home died) the warmest surviving
	// replica adopted them.
	Rehomed int
	// Reseeded counts chunks left with no home and no surviving predicted
	// replica — they will be re-seeded from disk by the rarest-first batch
	// pass, which orders zero-replica chunks ahead of everything else.
	Reseeded int
}

// Fully reports whether the failure was absorbed entirely warm: at least
// one chunk moved and none must be re-read from disk.
func (r RehomeReport) Fully() bool { return r.Rehomed > 0 && r.Reseeded == 0 }

// SetReplication sets the policy's target replication degree k. Values ≤ 1
// disable the layer (single-home, the paper's behaviour); home/secondary
// tracking only runs while the layer is enabled. Call before scheduling
// starts.
func (h *HeadState) SetReplication(k int) {
	if k < 1 {
		k = 1
	}
	h.replicaK = k
}

// ReplicaTarget returns the configured replication degree k (1 when the
// layer is disabled).
func (h *HeadState) ReplicaTarget() int {
	if h.replicaK < 1 {
		return 1
	}
	return h.replicaK
}

// Home returns chunk c's primary home node, the first member of its home
// set; ok is false when the policy is disabled or the chunk has never been
// placed (or was orphaned and awaits re-seeding).
func (h *HeadState) Home(c volume.ChunkID) (NodeID, bool) {
	hs := h.homes[c]
	if len(hs) == 0 {
		return -1, false
	}
	return hs[0], true
}

// HomeSet returns a copy of chunk c's policy-tracked home set (primary
// first). Nil when untracked.
func (h *HeadState) HomeSet(c volume.ChunkID) []NodeID {
	return slices.Clone(h.homes[c])
}

// Pressure returns node k's placement-pressure score: how many chunk home
// slots the policy has assigned to it. Secondaries are steered toward
// low-pressure nodes so replicas spread instead of piling onto one hot
// spare.
func (h *HeadState) Pressure(k NodeID) int { return h.pressure[k] }

// trackPlacement maintains the home tables on a committed assignment: the
// first node a chunk is committed to becomes its primary home, later
// distinct nodes fill the set up to k. Beyond k the placement is organic
// (bestNode load-balancing) and deliberately not tracked — the policy never
// owns more than k replicas of a chunk.
func (h *HeadState) trackPlacement(c volume.ChunkID, k NodeID) {
	if h.replicaK <= 1 {
		return
	}
	if h.homes == nil {
		h.homes = make(map[volume.ChunkID][]NodeID)
	}
	hs := h.homes[c]
	if slices.Contains(hs, k) || len(hs) >= h.replicaK {
		return
	}
	h.homes[c] = append(hs, k)
	h.pressure[k]++
}

// SecondaryFor returns the node the policy wants chunk c's next replica on:
// first an already-chosen home member that is not currently predicted to
// hold the chunk (re-reinforce an evicted secondary), then — while the home
// set is below k — the HealthUp node with the lowest placement pressure that
// neither belongs to the set nor already holds the chunk (ties break to the
// lowest node ID, keeping runs deterministic). ok is false when the layer is
// disabled or no candidate exists.
func (h *HeadState) SecondaryFor(c volume.ChunkID) (NodeID, bool) {
	if h.replicaK <= 1 {
		return -1, false
	}
	hs := h.homes[c]
	for _, n := range hs {
		if h.health[n] == HealthUp && !h.Caches[n].Contains(c) {
			return n, true
		}
	}
	if len(hs) >= h.replicaK {
		return -1, false
	}
	best := NodeID(-1)
	for k := range h.pressure {
		n := NodeID(k)
		if h.health[n] != HealthUp || h.Caches[n].Contains(c) || slices.Contains(hs, n) {
			continue
		}
		if best < 0 || h.pressure[n] < h.pressure[best] {
			best = n
		}
	}
	return best, best >= 0
}

// rehomeFailed repairs the home tables after node k went down: k is removed
// from every home set, chunks whose entire set died adopt their warmest
// surviving replica as the new primary, and chunks with no surviving
// replica anywhere are dropped from the tables to be re-seeded rarest-first.
// Called from MarkFailed, which reports the outcome to the caller.
func (h *HeadState) rehomeFailed(k NodeID) RehomeReport {
	var rep RehomeReport
	if h.replicaK <= 1 || len(h.homes) == 0 {
		return rep
	}
	// Map iteration order is random, but every per-chunk decision below
	// depends only on that chunk's own state (Available, caches, health),
	// so the outcome — and the counts — are order-independent.
	for c, hs := range h.homes {
		idx := slices.Index(hs, k)
		if idx < 0 {
			continue
		}
		hs = slices.Delete(hs, idx, idx+1)
		h.pressure[k]--
		if len(hs) == 0 {
			w, ok := h.warmestReplica(c)
			if !ok {
				delete(h.homes, c)
				rep.Reseeded++
				continue
			}
			hs = append(hs, w)
			h.pressure[w]++
		}
		h.homes[c] = hs
		rep.Rehomed++
	}
	return rep
}

// DrainOrphans previews what a drain of node k would strand: the chunks
// whose only home member is k and which no HealthUp node is predicted to
// hold. These are exactly the chunks MarkFailed would count as Reseeded —
// the drain protocol instead pre-warms them onto survivors through the
// prefetch governor while k is still serving, so the eventual DemoteHomes
// finds a warm adopter for every one of them. Call with k already marked
// draining (so k's own residency no longer counts); the result is sorted
// for deterministic warm ordering. Read-only.
func (h *HeadState) DrainOrphans(k NodeID) []volume.ChunkID {
	if h.replicaK <= 1 || len(h.homes) == 0 {
		return nil
	}
	var orphans []volume.ChunkID
	for c, hs := range h.homes {
		if len(hs) == 1 && hs[0] == k && h.ReplicaCount(c) == 0 {
			orphans = append(orphans, c)
		}
	}
	slices.SortFunc(orphans, CompareChunks)
	return orphans
}

// CompareChunks is the canonical total order on chunk IDs (dataset, then
// index) used wherever map-collected chunk sets must become deterministic
// slices.
func CompareChunks(a, b volume.ChunkID) int {
	if a.Dataset != b.Dataset {
		return int(a.Dataset) - int(b.Dataset)
	}
	return a.Index - b.Index
}

// DemoteHomes removes a draining node k from every home set — the graceful
// counterpart of rehomeFailed, run when the drain completes. Chunks with a
// surviving home member keep it; chunks whose only home was k adopt their
// warmest surviving replica (which the drain protocol's pre-warm phase has
// been filling); chunks with no surviving replica anywhere are dropped from
// the tables and returned (sorted) so the caller can account them — they are
// *not* counted as Reseeded, because a drain must never feed the
// rarest-first crash-recovery pass. Call with k marked draining.
func (h *HeadState) DemoteHomes(k NodeID) (RehomeReport, []volume.ChunkID) {
	var rep RehomeReport
	if h.replicaK <= 1 || len(h.homes) == 0 {
		return rep, nil
	}
	var orphans []volume.ChunkID
	// Per-chunk decisions depend only on that chunk's own state, so map
	// iteration order cannot change the outcome (same argument as
	// rehomeFailed).
	for c, hs := range h.homes {
		idx := slices.Index(hs, k)
		if idx < 0 {
			continue
		}
		hs = slices.Delete(hs, idx, idx+1)
		h.pressure[k]--
		if len(hs) == 0 {
			w, ok := h.warmestReplica(c)
			if !ok {
				delete(h.homes, c)
				orphans = append(orphans, c)
				continue
			}
			hs = append(hs, w)
			h.pressure[w]++
		}
		h.homes[c] = hs
		rep.Rehomed++
	}
	slices.SortFunc(orphans, CompareChunks)
	return rep, orphans
}

// warmestReplica picks the surviving replica that can serve chunk c
// soonest: among HealthUp nodes predicted to hold it, the one whose queue
// drains earliest (lowest Available; ties break to the lowest node ID).
func (h *HeadState) warmestReplica(c volume.ChunkID) (NodeID, bool) {
	best := NodeID(-1)
	for k := range h.Caches {
		n := NodeID(k)
		if h.health[n] != HealthUp || !h.Caches[n].Contains(c) {
			continue
		}
		if best < 0 || h.Available[n] < h.Available[best] {
			best = n
		}
	}
	return best, best >= 0
}
