package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func sampleLog() *Log {
	l := New(0)
	l.Add(Event{At: 0, Kind: JobArrive, Job: 1, Class: core.Interactive})
	l.Add(Event{At: units.Time(5 * units.Millisecond), Kind: Assign, Job: 1, Task: 0, Node: 2,
		Chunk: volume.ChunkID{Dataset: 1, Index: 0}})
	l.Add(Event{At: units.Time(20 * units.Millisecond), Kind: TaskDone, Job: 1, Task: 0, Node: 2,
		Chunk: volume.ChunkID{Dataset: 1, Index: 0}, Dur: 15 * units.Millisecond, Hit: true})
	l.Add(Event{At: units.Time(25 * units.Millisecond), Kind: JobDone, Job: 1, Dur: 25 * units.Millisecond})
	l.Add(Event{At: units.Time(30 * units.Millisecond), Kind: NodeFail, Node: 1})
	l.Add(Event{At: units.Time(40 * units.Millisecond), Kind: Load, Node: 0,
		Chunk: volume.ChunkID{Dataset: 2, Index: 1}, Dur: 8 * units.Millisecond})
	l.Add(Event{At: units.Time(50 * units.Millisecond), Kind: TaskDone, Job: 2, Class: core.Batch,
		Task: 1, Node: 0, Dur: 5 * units.Millisecond})
	return l
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{JobArrive, Assign, Load, TaskDone, JobDone, NodeFail, NodeRepair} {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(42).String(), "kind(") {
		t.Error("unknown kind should fall back")
	}
}

func TestCapDropsBeyondCapacity(t *testing.T) {
	l := New(2)
	for i := 0; i < 5; i++ {
		l.Add(Event{Kind: Assign})
	}
	if l.Len() != 2 || l.Dropped != 3 {
		t.Errorf("len=%d dropped=%d", l.Len(), l.Dropped)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 { // header + 7 events
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "at_us" || recs[0][1] != "kind" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[3][1] != "task-done" || recs[3][8] != "true" {
		t.Errorf("task-done row = %v", recs[3])
	}
}

func TestGanttSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().GanttSVG(&buf, 3, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "R0", "R2", "#4878cf", "#e8853b", "#999999", "#cc2222"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestGanttSVGEmptyRangeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).GanttSVG(&buf, 2, 0, 0); err == nil {
		t.Error("empty log rendered without error")
	}
}
