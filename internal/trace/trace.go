// Package trace records the scheduling and execution events of a simulation
// run and renders them for inspection: CSV for analysis pipelines and an
// SVG Gantt chart of per-node occupancy — the visual form of the load
// balance the paper's Figs. 4–7 summarize numerically.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Kind tags an event.
type Kind int

// Event kinds.
const (
	JobArrive Kind = iota + 1
	Assign
	Load
	TaskDone
	JobDone
	NodeFail
	NodeRepair
	// QoS admission outcomes (internal/qos): Admit and Throttle let the job
	// into the fair queue (Throttle on borrowed tokens), Reject turns it
	// away, Shed drops a stale interactive frame (on arrival or by
	// superseding a queued one). Degrade marks a ladder level change; the
	// event's Level field carries the new rung.
	Admit
	Throttle
	Reject
	Shed
	Degrade
	// Prefetch lifecycle (internal/prefetch): PrefetchIssue starts a
	// background warm (Dur carries the predicted load span), PrefetchHit
	// marks a demand task finding a warmed chunk (Hit true for a resident
	// hit, false for an in-flight absorption), PrefetchCancel abandons a
	// warm, and PrefetchWaste marks a warmed chunk evicted untouched.
	PrefetchIssue
	PrefetchHit
	PrefetchCancel
	PrefetchWaste
	// Distributed-framebuffer compositing (§5.9): TileFrag marks one
	// per-tile fragment folded into the head's reducer, TileDone a tile
	// finalizing (its expected fragment count met). For both, Task carries
	// the contributing task index and Level the tile index.
	TileFrag
	TileDone
	// Control-plane chaos (§5.10): HeadFail/HeadRepair bound a head outage
	// (the interval snapshot+journal recovery spans), NodePartition/NodeHeal
	// bound a transport partition that isolates a live node from the head —
	// the node keeps rendering and retains completion reports until heal.
	HeadFail
	HeadRepair
	NodePartition
	NodeHeal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case JobArrive:
		return "job-arrive"
	case Assign:
		return "assign"
	case Load:
		return "load"
	case TaskDone:
		return "task-done"
	case JobDone:
		return "job-done"
	case NodeFail:
		return "node-fail"
	case NodeRepair:
		return "node-repair"
	case Admit:
		return "admit"
	case Throttle:
		return "throttle"
	case Reject:
		return "reject"
	case Shed:
		return "shed"
	case Degrade:
		return "degrade"
	case PrefetchIssue:
		return "prefetch-issue"
	case PrefetchHit:
		return "prefetch-hit"
	case PrefetchCancel:
		return "prefetch-cancel"
	case PrefetchWaste:
		return "prefetch-waste"
	case TileFrag:
		return "tile-frag"
	case TileDone:
		return "tile-done"
	case HeadFail:
		return "head-fail"
	case HeadRepair:
		return "head-repair"
	case NodePartition:
		return "node-partition"
	case NodeHeal:
		return "node-heal"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence. Dur is the execution/load span ending
// at At for TaskDone and Load events.
type Event struct {
	At    units.Time
	Kind  Kind
	Job   core.JobID
	Class core.Class
	Task  int
	Node  core.NodeID
	Chunk volume.ChunkID
	Dur   units.Duration
	Hit   bool
	// Tenant identifies the job's tenant for QoS events (zero otherwise);
	// Level is the degradation-ladder rung carried by Degrade events and
	// the tile index carried by TileFrag/TileDone events.
	Tenant core.TenantID
	Level  int
}

// Log accumulates events up to an optional cap (0 = unbounded). When the
// cap is hit, further events are dropped and Dropped counts them — a
// full-scale scenario 4 produces tens of millions of events, which nobody
// should record by accident.
type Log struct {
	Events  []Event
	Cap     int
	Dropped int64
}

// New returns a log bounded to capacity events (0 = unbounded).
func New(capacity int) *Log { return &Log{Cap: capacity} }

// Add records an event, honoring the cap.
func (l *Log) Add(ev Event) {
	if l.Cap > 0 && len(l.Events) >= l.Cap {
		l.Dropped++
		return
	}
	l.Events = append(l.Events, ev)
}

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.Events) }

// WriteCSV emits the log with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_us", "kind", "job", "class", "task", "node", "chunk", "dur_us", "hit", "tenant", "level"}); err != nil {
		return err
	}
	for _, ev := range l.Events {
		rec := []string{
			strconv.FormatFloat(float64(ev.At)/1e3, 'f', 3, 64),
			ev.Kind.String(),
			strconv.FormatInt(int64(ev.Job), 10),
			ev.Class.String(),
			strconv.Itoa(ev.Task),
			strconv.Itoa(int(ev.Node)),
			ev.Chunk.String(),
			strconv.FormatFloat(ev.Dur.Microseconds(), 'f', 3, 64),
			strconv.FormatBool(ev.Hit),
			strconv.Itoa(int(ev.Tenant)),
			strconv.Itoa(ev.Level),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// GanttSVG renders per-node occupancy bars for TaskDone and Load events
// within [from, to] (zero `to` selects the last event). Interactive task
// bars are blue, batch bars orange, loads gray, failures red marks.
func (l *Log) GanttSVG(w io.Writer, nodes int, from, to units.Time) error {
	if to <= from {
		for _, ev := range l.Events {
			if ev.At > to {
				to = ev.At
			}
		}
	}
	if to <= from {
		return fmt.Errorf("trace: empty time range")
	}
	const (
		rowH    = 18
		rowGap  = 4
		width   = 1200
		leftPad = 60
		topPad  = 24
	)
	footerY := topPad + nodes*(rowH+rowGap)
	height := footerY + 24
	span := float64(to - from)
	x := func(t units.Time) float64 {
		return leftPad + float64(t-from)/span*(width-leftPad-10)
	}
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="14">node occupancy %v - %v</text>`+"\n", leftPad, from, to)
	for n := 0; n < nodes; n++ {
		y := topPad + n*(rowH+rowGap)
		fmt.Fprintf(w, `<text x="4" y="%d">R%d</text>`+"\n", y+rowH-5, n)
		fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftPad, y+rowH, width-10, y+rowH)
	}
	for _, ev := range l.Events {
		switch ev.Kind {
		case TaskDone, Load:
			start := ev.At - units.Time(ev.Dur)
			if ev.At < from || start > to {
				continue
			}
			if start < from {
				start = from
			}
			end := ev.At
			if end > to {
				end = to
			}
			y := topPad + int(ev.Node)*(rowH+rowGap)
			color := "#4878cf" // interactive
			switch {
			case ev.Kind == Load:
				color = "#999999"
			case ev.Class == core.Batch:
				color = "#e8853b"
			}
			wpx := x(end) - x(start)
			if wpx < 0.5 {
				wpx = 0.5
			}
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"/>`+"\n",
				x(start), y, wpx, rowH-2, color)
		case NodeFail:
			if ev.At < from || ev.At > to {
				continue
			}
			y := topPad + int(ev.Node)*(rowH+rowGap)
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="2" height="%d" fill="#cc2222"/>`+"\n",
				x(ev.At), y, rowH-2)
		case NodePartition, NodeHeal:
			// Partitions mark the isolated node's row: amber at the cut,
			// teal at the heal — the node kept working in between.
			if ev.At < from || ev.At > to {
				continue
			}
			color := "#dd8822"
			if ev.Kind == NodeHeal {
				color = "#228888"
			}
			y := topPad + int(ev.Node)*(rowH+rowGap)
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="2" height="%d" fill="%s"/>`+"\n",
				x(ev.At), y, rowH-2, color)
		case HeadFail, HeadRepair:
			// Head outages cut across every row: the control plane is down
			// for the whole cluster. Red dashed at the crash, green at the
			// recovered standby's takeover.
			if ev.At < from || ev.At > to {
				continue
			}
			color := "#cc2222"
			if ev.Kind == HeadRepair {
				color = "#2d8a2d"
			}
			fmt.Fprintf(w, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="%s" stroke-dasharray="4,2"/>`+"\n",
				x(ev.At), topPad, x(ev.At), footerY, color)
		case Degrade:
			// Ladder level changes cut across all rows: a dashed purple line
			// with the new rung labeled, so degradation episodes bracket the
			// load they were reacting to.
			if ev.At < from || ev.At > to {
				continue
			}
			fmt.Fprintf(w, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#7733aa" stroke-dasharray="3,2"/>`+"\n",
				x(ev.At), topPad, x(ev.At), footerY)
			fmt.Fprintf(w, `<text x="%.2f" y="%d" fill="#7733aa">L%d</text>`+"\n",
				x(ev.At)+2, topPad+10, ev.Level)
		case PrefetchIssue:
			// Background warms draw as light-green bars spanning the predicted
			// load, visibly thinner than demand work: idle-window filler.
			start := ev.At
			end := ev.At + units.Time(ev.Dur)
			if end < from || start > to {
				continue
			}
			if start < from {
				start = from
			}
			if end > to {
				end = to
			}
			y := topPad + int(ev.Node)*(rowH+rowGap)
			wpx := x(end) - x(start)
			if wpx < 0.5 {
				wpx = 0.5
			}
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="#7cc47c"/>`+"\n",
				x(start), y+3, wpx, rowH-8)
		case PrefetchHit, PrefetchCancel, PrefetchWaste:
			// Warm outcomes land in the footer band next to the admission
			// ticks: hits green, cancels gray, waste brown.
			if ev.At < from || ev.At > to {
				continue
			}
			color := "#2d8a2d"
			switch ev.Kind {
			case PrefetchCancel:
				color = "#888888"
			case PrefetchWaste:
				color = "#8a5a2d"
			}
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="1.5" height="10" fill="%s"/>`+"\n",
				x(ev.At), footerY+2, color)
		case Shed, Reject, Throttle:
			// Admission pushback lands in the footer band: sheds dark red,
			// rejects red-orange, throttles amber ticks.
			if ev.At < from || ev.At > to {
				continue
			}
			color := "#aa2222"
			switch ev.Kind {
			case Reject:
				color = "#dd5522"
			case Throttle:
				color = "#ddaa22"
			}
			fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="1.5" height="10" fill="%s"/>`+"\n",
				x(ev.At), footerY+2, color)
		}
	}
	fmt.Fprintln(w, `</svg>`)
	return nil
}
