// Package workload generates the multi-user request streams of the paper's
// four experiment scenarios (Table II): continuous and short interactive
// user actions issuing one rendering request per frame period, and batch
// submissions that drop bursts of animation-frame jobs into the queue.
// Everything is driven by an explicit seed, so a scenario regenerates
// identically run after run.
package workload

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Request is one rendering job arrival, before decomposition into tasks.
type Request struct {
	At      units.Time
	Class   core.Class
	Action  core.ActionID
	Tenant  core.TenantID
	Dataset volume.DatasetID
}

// Action is one continuous interactive session: from Start to End the user
// issues one request every Period.
type Action struct {
	ID      core.ActionID
	Dataset volume.DatasetID
	Tenant  core.TenantID
	Start   units.Time
	End     units.Time
	Period  units.Duration
}

// Requests expands the action into its per-frame requests, issued every
// Period from Start through End inclusive (a 60 s action at 30 ms issues
// 2001 requests, which is how Table II's 12006 = 6×2001 comes about).
func (a Action) Requests() []Request {
	var out []Request
	for t := a.Start; !t.After(a.End); t = t.Add(a.Period) {
		out = append(out, Request{At: t, Class: core.Interactive, Action: a.ID, Tenant: a.Tenant, Dataset: a.Dataset})
	}
	return out
}

// BatchSubmission is one batch request: Frames animation-frame jobs, all
// entering the queue at At. An animation renders one dataset from many
// angles; a time-varying sweep (the paper's "visualizing time-varying
// data") renders consecutive datasets — one per timestep — which touches
// Frames times the data.
type BatchSubmission struct {
	ID      core.ActionID
	Dataset volume.DatasetID
	Tenant  core.TenantID
	At      units.Time
	Frames  int
	// TimeSeries makes frame i use dataset Dataset+i (wrapping at
	// Datasets), modeling timestep files of one simulation.
	TimeSeries bool
	// Datasets is the wrap bound for TimeSeries (the library size).
	Datasets int
}

// Requests expands the submission into its frame jobs.
func (b BatchSubmission) Requests() []Request {
	out := make([]Request, b.Frames)
	for i := range out {
		ds := b.Dataset
		if b.TimeSeries && b.Datasets > 0 {
			ds = volume.DatasetID((int(b.Dataset)-1+i)%b.Datasets + 1)
		}
		out[i] = Request{At: b.At, Class: core.Batch, Action: b.ID, Tenant: b.Tenant, Dataset: ds}
	}
	return out
}

// Schedule is a complete generated workload: the request stream sorted by
// arrival time plus the descriptors it came from.
type Schedule struct {
	Requests    []Request
	Actions     []Action
	Submissions []BatchSubmission
	Length      units.Time
}

// InteractiveCount returns the number of interactive requests.
func (s *Schedule) InteractiveCount() int {
	n := 0
	for _, r := range s.Requests {
		if r.Class == core.Interactive {
			n++
		}
	}
	return n
}

// BatchCount returns the number of batch requests.
func (s *Schedule) BatchCount() int { return len(s.Requests) - s.InteractiveCount() }

// Spec describes a scenario's workload shape.
type Spec struct {
	// Length is the simulated duration.
	Length units.Time
	// Datasets is the number of datasets users pick from.
	Datasets int
	// Period is the interactive frame period (30 ms for the paper's
	// 33.33 fps target).
	Period units.Duration
	// ContinuousActions, when positive, creates exactly this many actions
	// spanning the full length (Scenario 1's six steady users), one per
	// dataset round-robin.
	ContinuousActions int
	// TargetInteractive, when positive, creates randomized short actions
	// until approximately this many interactive requests exist.
	TargetInteractive int
	// ShortActionMin/Max bound the random short-action durations.
	ShortActionMin, ShortActionMax units.Duration
	// DatasetZipf skews dataset popularity: dataset r is picked with weight
	// 1/r^s. Zero or negative selects uniform. Multi-user archives have hot
	// datasets; without skew every action switch forces a full reload and
	// the disk dominates every policy equally.
	DatasetZipf float64
	// HotDatasets/HotFraction define a two-tier popularity instead: with
	// probability HotFraction a pick is uniform over datasets 1..HotDatasets,
	// otherwise uniform over the remainder. This is the regime of the
	// paper's Scenario 2: a hot working set that exceeds any single node's
	// memory quota but fits cluster-wide — exactly where locality-aware
	// placement pays and blind placement thrashes. Takes precedence over
	// DatasetZipf when HotDatasets > 0.
	HotDatasets int
	HotFraction float64
	// TargetBatch, when positive, creates batch submissions totalling
	// approximately this many frame jobs.
	TargetBatch int
	// BatchFramesMin/Max bound the frames per batch submission.
	BatchFramesMin, BatchFramesMax int
	// BatchUniform makes batch submissions pick datasets uniformly instead
	// of following the interactive popularity shape. Batch renders (archive
	// animations, time-series sweeps) target cold data as often as hot —
	// which is precisely what forces the data swapping the paper's
	// Scenario 2 studies.
	BatchUniform bool
	// BatchTimeSeries makes every batch submission sweep consecutive
	// datasets (timesteps) instead of orbiting one — the paper's
	// time-varying-data use case and the worst case for locality.
	BatchTimeSeries bool
	// Tenants, when > 1, assigns each action and batch submission to a
	// tenant 1..Tenants; TenantSkew makes tenant r's share proportional to
	// 1/r^s (zero = uniform), so tenant 1 is the greedy customer the QoS
	// layer exists to contain. Tenant draws come from a separate rng, so
	// single-tenant schedules are bit-identical with or without the fields.
	Tenants    int
	TenantSkew float64
	// Seed drives all randomness.
	Seed int64
}

// Generate expands a spec into a concrete schedule.
func Generate(spec Spec) *Schedule {
	if spec.Period <= 0 {
		spec.Period = 30 * units.Millisecond
	}
	if spec.Datasets <= 0 {
		panic("workload: spec needs datasets")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pick := datasetPicker(spec)
	batchPick := pick
	if spec.BatchUniform {
		uniform := spec
		uniform.HotDatasets = 0
		uniform.DatasetZipf = 0
		batchPick = datasetPicker(uniform)
	}
	s := &Schedule{Length: spec.Length}
	nextAction := core.ActionID(1)

	for i := 0; i < spec.ContinuousActions; i++ {
		a := Action{
			ID:      nextAction,
			Dataset: volume.DatasetID(i%spec.Datasets + 1),
			Start:   0,
			End:     spec.Length,
			Period:  spec.Period,
		}
		nextAction++
		s.Actions = append(s.Actions, a)
	}

	if spec.TargetInteractive > 0 {
		minD, maxD := spec.ShortActionMin, spec.ShortActionMax
		if minD <= 0 {
			minD = 2 * units.Second
		}
		if maxD < minD {
			maxD = minD * 4
		}
		generated := 0
		for generated < spec.TargetInteractive {
			dur := minD + units.Duration(rng.Int63n(int64(maxD-minD)+1))
			frames := int(dur / spec.Period)
			if frames < 1 {
				frames = 1
			}
			if over := generated + frames - spec.TargetInteractive; over > 0 {
				frames -= over
				dur = units.Duration(frames) * spec.Period
			}
			latest := int64(spec.Length) - int64(dur)
			if latest < 0 {
				latest = 0
			}
			start := units.Time(rng.Int63n(latest + 1))
			a := Action{
				ID:      nextAction,
				Dataset: pick(rng),
				Start:   start,
				End:     start.Add(units.Duration(frames-1) * spec.Period),
				Period:  spec.Period,
			}
			nextAction++
			s.Actions = append(s.Actions, a)
			generated += frames
		}
	}

	if spec.TargetBatch > 0 {
		minF, maxF := spec.BatchFramesMin, spec.BatchFramesMax
		if minF <= 0 {
			minF = 20
		}
		if maxF < minF {
			maxF = minF * 5
		}
		generated := 0
		for generated < spec.TargetBatch {
			frames := minF + rng.Intn(maxF-minF+1)
			if over := generated + frames - spec.TargetBatch; over > 0 {
				frames -= over
			}
			if frames < 1 {
				frames = 1
			}
			b := BatchSubmission{
				ID:         nextAction,
				Dataset:    batchPick(rng),
				At:         units.Time(rng.Int63n(int64(spec.Length))),
				Frames:     frames,
				TimeSeries: spec.BatchTimeSeries,
				Datasets:   spec.Datasets,
			}
			nextAction++
			s.Submissions = append(s.Submissions, b)
			generated += frames
		}
	}

	if spec.Tenants > 1 {
		// A dedicated rng keeps tenant assignment from disturbing the
		// dataset/timing draws above: Tenants=0/1 schedules stay
		// bit-identical to pre-tenant generation.
		trng := rand.New(rand.NewSource(spec.Seed + 7777))
		tpick := tenantPicker(spec.Tenants, spec.TenantSkew)
		for i := range s.Actions {
			s.Actions[i].Tenant = tpick(trng)
		}
		for i := range s.Submissions {
			s.Submissions[i].Tenant = tpick(trng)
		}
	}

	for _, a := range s.Actions {
		s.Requests = append(s.Requests, a.Requests()...)
	}
	for _, b := range s.Submissions {
		s.Requests = append(s.Requests, b.Requests()...)
	}
	slices.SortStableFunc(s.Requests, func(a, b Request) int { return cmp.Compare(a.At, b.At) })
	return s
}

// TenantSampler returns a self-seeded sampler over tenant IDs 1..n for
// callers outside Generate (live load drivers): Zipf-weighted with exponent
// skew (tenant 1 hottest), uniform when skew <= 0. n <= 1 always yields the
// default tenant 0.
func TenantSampler(n int, skew float64, seed int64) func() core.TenantID {
	if n <= 1 {
		return func() core.TenantID { return 0 }
	}
	rng := rand.New(rand.NewSource(seed))
	pick := tenantPicker(n, skew)
	return func() core.TenantID { return pick(rng) }
}

// tenantPicker returns a sampler over tenant IDs 1..n: Zipf-weighted with
// exponent s (tenant 1 hottest), uniform when s <= 0.
func tenantPicker(n int, s float64) func(*rand.Rand) core.TenantID {
	if s <= 0 {
		return func(rng *rand.Rand) core.TenantID {
			return core.TenantID(rng.Intn(n) + 1)
		}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += 1 / math.Pow(float64(r), s)
		cdf[r-1] = sum
	}
	return func(rng *rand.Rand) core.TenantID {
		u := rng.Float64() * sum
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return core.TenantID(lo + 1)
	}
}

// datasetPicker returns a sampler over dataset IDs 1..n per the spec's
// popularity shape: two-tier when HotDatasets is set, else Zipf with
// exponent DatasetZipf, else uniform.
func datasetPicker(spec Spec) func(*rand.Rand) volume.DatasetID {
	n := spec.Datasets
	if hot := spec.HotDatasets; hot > 0 && hot < n {
		f := spec.HotFraction
		if f <= 0 || f > 1 {
			f = 0.95
		}
		return func(rng *rand.Rand) volume.DatasetID {
			if rng.Float64() < f {
				return volume.DatasetID(rng.Intn(hot) + 1)
			}
			return volume.DatasetID(hot + rng.Intn(n-hot) + 1)
		}
	}
	s := spec.DatasetZipf
	if s <= 0 {
		return func(rng *rand.Rand) volume.DatasetID {
			return volume.DatasetID(rng.Intn(n) + 1)
		}
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += 1 / math.Pow(float64(r), s)
		cdf[r-1] = sum
	}
	return func(rng *rand.Rand) volume.DatasetID {
		u := rng.Float64() * sum
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return volume.DatasetID(lo + 1)
	}
}

// ScenarioID selects one of the paper's four experiments.
type ScenarioID int

// The paper's four scenarios (Table II).
const (
	Scenario1 ScenarioID = 1 + iota
	Scenario2
	Scenario3
	Scenario4
)

// ScenarioConfig bundles everything Table II specifies for one scenario:
// the cluster shape, the data population, and the workload spec.
type ScenarioConfig struct {
	ID           ScenarioID
	Nodes        int
	MemQuota     units.Bytes // per-node main-memory quota
	DatasetSize  units.Bytes
	DatasetCount int
	Chkmax       units.Bytes
	Spec         Spec
	// System1 marks the 8-node GTX 285 cluster; otherwise the ANL system.
	System1 bool
}

// TotalMemory returns the cluster-wide quota (Table II's "total memory").
func (c ScenarioConfig) TotalMemory() units.Bytes {
	return units.Bytes(c.Nodes) * c.MemQuota
}

// TotalData returns the combined dataset size (Table II's "total size").
func (c ScenarioConfig) TotalData() units.Bytes {
	return units.Bytes(c.DatasetCount) * c.DatasetSize
}

// Scenario returns the paper's configuration for the given scenario,
// optionally scaled: scale ∈ (0,1] shrinks the run length and job targets
// proportionally so unit tests finish quickly while benchmarks run the full
// thing. The cluster and data shapes are never scaled — they are what the
// scenario is about.
func Scenario(id ScenarioID, scale float64) ScenarioConfig {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	scaleN := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	scaleT := func(t units.Time) units.Time {
		v := units.Time(float64(t) * scale)
		if min := units.Time(2 * units.Second); v < min {
			v = min
		}
		return v
	}
	switch id {
	case Scenario1:
		length := scaleT(units.Time(60 * units.Second))
		return ScenarioConfig{
			ID: id, Nodes: 8, MemQuota: 2 * units.GB,
			DatasetSize: 2 * units.GB, DatasetCount: 6, Chkmax: 512 * units.MB,
			System1: true,
			Spec: Spec{
				Length: length, Datasets: 6,
				ContinuousActions: 6,
				Seed:              101,
			},
		}
	case Scenario2:
		length := scaleT(units.Time(120 * units.Second))
		return ScenarioConfig{
			ID: id, Nodes: 8, MemQuota: 2 * units.GB,
			DatasetSize: 2 * units.GB, DatasetCount: 12, Chkmax: 512 * units.MB,
			System1: true,
			Spec: Spec{
				Length: length, Datasets: 12,
				TargetInteractive: scaleN(21011),
				TargetBatch:       scaleN(2251),
				ShortActionMin:    3 * units.Second,
				ShortActionMax:    10 * units.Second,
				HotDatasets:       6,
				HotFraction:       0.985,
				BatchUniform:      true,
				BatchFramesMin:    10, BatchFramesMax: 60,
				Seed: 102,
			},
		}
	case Scenario3:
		length := scaleT(units.Time(300 * units.Second))
		return ScenarioConfig{
			ID: id, Nodes: 64, MemQuota: 8 * units.GB,
			DatasetSize: 8 * units.GB, DatasetCount: 32, Chkmax: 512 * units.MB,
			Spec: Spec{
				Length: length, Datasets: 32,
				TargetInteractive: scaleN(160633),
				TargetBatch:       scaleN(9844),
				ShortActionMin:    3 * units.Second,
				ShortActionMax:    12 * units.Second,
				BatchFramesMin:    20, BatchFramesMax: 120,
				Seed: 103,
			},
		}
	case Scenario4:
		length := scaleT(units.Time(600 * units.Second))
		return ScenarioConfig{
			ID: id, Nodes: 64, MemQuota: 8 * units.GB,
			DatasetSize: 8 * units.GB, DatasetCount: 128, Chkmax: 512 * units.MB,
			Spec: Spec{
				Length: length, Datasets: 128,
				TargetInteractive: scaleN(388481),
				TargetBatch:       scaleN(35176),
				ShortActionMin:    3 * units.Second,
				ShortActionMax:    12 * units.Second,
				BatchFramesMin:    20, BatchFramesMax: 120,
				Seed: 104,
			},
		}
	default:
		panic(fmt.Sprintf("workload: unknown scenario %d", id))
	}
}

// Library builds the scenario's dataset library under the given
// decomposition policy (schedulers may override the policy; see
// core.DecompositionOverrider).
func (c ScenarioConfig) Library(policy volume.Decomposition) *volume.Library {
	lib := volume.NewLibrary()
	for i := 1; i <= c.DatasetCount; i++ {
		name := fmt.Sprintf("dataset-%02d", i)
		lib.Add(volume.NewDataset(volume.DatasetID(i), name, c.DatasetSize, policy))
	}
	return lib
}
