package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func TestActionRequests(t *testing.T) {
	a := Action{
		ID: 1, Dataset: 2,
		Start:  units.Time(units.Second),
		End:    units.Time(units.Second + 100*units.Millisecond),
		Period: 30 * units.Millisecond,
	}
	reqs := a.Requests()
	// Frames at 1.000, 1.030, 1.060, 1.090.
	if len(reqs) != 4 {
		t.Fatalf("got %d requests, want 4", len(reqs))
	}
	for i, r := range reqs {
		if r.Class != core.Interactive || r.Action != 1 || r.Dataset != 2 {
			t.Errorf("request %d metadata wrong: %+v", i, r)
		}
	}
	if reqs[3].At != units.Time(units.Second+90*units.Millisecond) {
		t.Errorf("last request at %v", reqs[3].At)
	}
}

func TestBatchSubmissionRequests(t *testing.T) {
	b := BatchSubmission{ID: 5, Dataset: 3, At: units.Time(2 * units.Second), Frames: 7}
	reqs := b.Requests()
	if len(reqs) != 7 {
		t.Fatalf("got %d, want 7", len(reqs))
	}
	for _, r := range reqs {
		if r.Class != core.Batch || r.At != b.At || r.Dataset != 3 {
			t.Errorf("bad batch request %+v", r)
		}
	}
}

func TestGenerateContinuousActions(t *testing.T) {
	s := Generate(Spec{
		Length: units.Time(3 * units.Second), Datasets: 6,
		ContinuousActions: 6, Period: 30 * units.Millisecond, Seed: 1,
	})
	if len(s.Actions) != 6 {
		t.Fatalf("actions = %d", len(s.Actions))
	}
	// 6 actions × 101 frames (endpoints inclusive: 0 through 3 s at 30 ms).
	if got := s.InteractiveCount(); got != 606 {
		t.Errorf("interactive = %d, want 606", got)
	}
	if s.BatchCount() != 0 {
		t.Errorf("batch = %d, want 0", s.BatchCount())
	}
	// Each of the 6 datasets used exactly once.
	used := map[volume.DatasetID]int{}
	for _, a := range s.Actions {
		used[a.Dataset]++
	}
	if len(used) != 6 {
		t.Errorf("datasets used = %d, want 6", len(used))
	}
}

func TestGenerateHitsTargets(t *testing.T) {
	s := Generate(Spec{
		Length: units.Time(30 * units.Second), Datasets: 12,
		TargetInteractive: 2000, TargetBatch: 300,
		ShortActionMin: units.Second, ShortActionMax: 3 * units.Second,
		BatchFramesMin: 10, BatchFramesMax: 40,
		Seed: 7,
	})
	if got := s.InteractiveCount(); got != 2000 {
		t.Errorf("interactive = %d, want exactly 2000", got)
	}
	if got := s.BatchCount(); got != 300 {
		t.Errorf("batch = %d, want exactly 300", got)
	}
}

func TestGenerateSortedAndDeterministic(t *testing.T) {
	spec := Spec{
		Length: units.Time(20 * units.Second), Datasets: 4,
		TargetInteractive: 500, TargetBatch: 100, Seed: 42,
	}
	a, b := Generate(spec), Generate(spec)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("not deterministic in count")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs between runs", i)
		}
	}
	if !sort.SliceIsSorted(a.Requests, func(i, j int) bool { return a.Requests[i].At < a.Requests[j].At }) {
		t.Error("requests not sorted by arrival")
	}
}

func TestGenerateRequestsWithinLength(t *testing.T) {
	s := Generate(Spec{
		Length: units.Time(10 * units.Second), Datasets: 3,
		TargetInteractive: 1000, TargetBatch: 50, Seed: 3,
	})
	for _, r := range s.Requests {
		if r.At < 0 {
			t.Fatalf("request before epoch: %v", r.At)
		}
	}
	// Batch arrivals stay within the run length (actions may run past it by
	// at most one action duration — the engine simply stops issuing).
	for _, b := range s.Submissions {
		if b.At >= s.Length {
			t.Errorf("batch at %v beyond length %v", b.At, s.Length)
		}
	}
}

func TestGeneratePanicsWithoutDatasets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Generate(Spec{Length: units.Time(units.Second)})
}

// Property: generated interactive totals match the target exactly for any
// seed and reasonable target.
func TestQuickGenerateExactTargets(t *testing.T) {
	f := func(seed int64, rawTarget uint16) bool {
		target := int(rawTarget%5000) + 1
		s := Generate(Spec{
			Length: units.Time(30 * units.Second), Datasets: 5,
			TargetInteractive: target, Seed: seed,
		})
		return s.InteractiveCount() == target
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScenarioConfigsMatchTableII(t *testing.T) {
	cases := []struct {
		id          ScenarioID
		nodes       int
		totalMem    units.Bytes
		datasets    int
		totalData   units.Bytes
		interactive int
		batch       int
	}{
		{Scenario1, 8, 16 * units.GB, 6, 12 * units.GB, 12006, 0},
		{Scenario2, 8, 16 * units.GB, 12, 24 * units.GB, 21011, 2251},
		{Scenario3, 64, 512 * units.GB, 32, 256 * units.GB, 160633, 9844},
		{Scenario4, 64, 512 * units.GB, 128, 1 * units.TB, 388481, 35176},
	}
	for _, c := range cases {
		cfg := Scenario(c.id, 1)
		if cfg.Nodes != c.nodes {
			t.Errorf("scenario %d nodes = %d, want %d", c.id, cfg.Nodes, c.nodes)
		}
		if cfg.TotalMemory() != c.totalMem {
			t.Errorf("scenario %d memory = %v, want %v", c.id, cfg.TotalMemory(), c.totalMem)
		}
		if cfg.DatasetCount != c.datasets {
			t.Errorf("scenario %d datasets = %d, want %d", c.id, cfg.DatasetCount, c.datasets)
		}
		if cfg.TotalData() != c.totalData {
			t.Errorf("scenario %d data = %v, want %v", c.id, cfg.TotalData(), c.totalData)
		}
		s := Generate(cfg.Spec)
		gotI, gotB := s.InteractiveCount(), s.BatchCount()
		// Scenario 1's six continuous actions produce 6×2001 = 12006 at
		// exactly 60 s / 30 ms; targets elsewhere are exact by construction.
		if gotI != c.interactive {
			t.Errorf("scenario %d interactive = %d, want %d", c.id, gotI, c.interactive)
		}
		if gotB != c.batch {
			t.Errorf("scenario %d batch = %d, want %d", c.id, gotB, c.batch)
		}
	}
}

func TestScenarioScaling(t *testing.T) {
	full := Scenario(Scenario2, 1)
	small := Scenario(Scenario2, 0.01)
	if small.Nodes != full.Nodes || small.DatasetCount != full.DatasetCount {
		t.Error("scaling must not change cluster or data shape")
	}
	if small.Spec.TargetInteractive >= full.Spec.TargetInteractive/50 {
		t.Errorf("scaled target = %d", small.Spec.TargetInteractive)
	}
	if small.Spec.Length >= full.Spec.Length {
		t.Error("scaled length not reduced")
	}
}

func TestScenarioUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Scenario(99, 1)
}

func TestScenarioLibrary(t *testing.T) {
	cfg := Scenario(Scenario1, 1)
	lib := cfg.Library(volume.MaxChunk{Chkmax: cfg.Chkmax})
	if lib.Len() != 6 {
		t.Fatalf("library size = %d", lib.Len())
	}
	for _, d := range lib.All() {
		if d.ChunkCount() != 4 {
			t.Errorf("dataset %s chunks = %d, want 4", d.Name, d.ChunkCount())
		}
	}
}

func TestTimeSeriesBatchWalksDatasets(t *testing.T) {
	b := BatchSubmission{ID: 1, Dataset: 3, At: 0, Frames: 5, TimeSeries: true, Datasets: 4}
	reqs := b.Requests()
	want := []volume.DatasetID{3, 4, 1, 2, 3}
	for i, r := range reqs {
		if r.Dataset != want[i] {
			t.Fatalf("frame %d dataset = %d, want %d", i, r.Dataset, want[i])
		}
	}
}

func TestGenerateBatchTimeSeries(t *testing.T) {
	s := Generate(Spec{
		Length: units.Time(10 * units.Second), Datasets: 6,
		TargetBatch: 60, BatchFramesMin: 20, BatchFramesMax: 20,
		BatchTimeSeries: true, Seed: 5,
	})
	// Each 20-frame submission must touch many datasets, not one.
	perAction := map[core.ActionID]map[volume.DatasetID]bool{}
	for _, r := range s.Requests {
		if r.Class != core.Batch {
			continue
		}
		if perAction[r.Action] == nil {
			perAction[r.Action] = map[volume.DatasetID]bool{}
		}
		perAction[r.Action][r.Dataset] = true
	}
	for a, ds := range perAction {
		if len(ds) < 5 {
			t.Errorf("submission %d touched %d datasets, want ≥5", a, len(ds))
		}
	}
}
