package workload

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Save serializes the schedule (gzip-compressed gob) so a generated
// workload can be archived and replayed bit-identically — useful when
// comparing scheduler changes against a frozen request stream rather than
// a re-generated one.
func (s *Schedule) Save(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(s); err != nil {
		return fmt.Errorf("workload: encoding schedule: %w", err)
	}
	return zw.Close()
}

// LoadSchedule reads a schedule written by Save.
func LoadSchedule(r io.Reader) (*Schedule, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("workload: opening schedule: %w", err)
	}
	defer zr.Close()
	s := &Schedule{}
	if err := gob.NewDecoder(zr).Decode(s); err != nil {
		return nil, fmt.Errorf("workload: decoding schedule: %w", err)
	}
	if len(s.Requests) == 0 {
		return nil, fmt.Errorf("workload: schedule is empty")
	}
	return s, nil
}

// SaveFile writes the schedule to the named file.
func (s *Schedule) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadScheduleFile reads a schedule from the named file.
func LoadScheduleFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSchedule(f)
}
