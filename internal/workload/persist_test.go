package workload

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"vizsched/internal/units"
)

func TestScheduleSaveLoadRoundTrip(t *testing.T) {
	orig := Generate(Spec{
		Length: units.Time(10 * units.Second), Datasets: 4,
		TargetInteractive: 500, TargetBatch: 80, Seed: 11,
	})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Requests) != len(orig.Requests) || got.Length != orig.Length {
		t.Fatalf("shape mismatch: %d vs %d requests", len(got.Requests), len(orig.Requests))
	}
	for i := range orig.Requests {
		if got.Requests[i] != orig.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	if len(got.Actions) != len(orig.Actions) || len(got.Submissions) != len(orig.Submissions) {
		t.Error("descriptors lost")
	}
}

func TestScheduleSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wl.gob.gz")
	orig := Generate(Spec{
		Length: units.Time(2 * units.Second), Datasets: 2,
		ContinuousActions: 2, Seed: 3,
	})
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScheduleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.InteractiveCount() != orig.InteractiveCount() {
		t.Error("counts differ after file roundtrip")
	}
}

func TestLoadScheduleRejectsGarbage(t *testing.T) {
	if _, err := LoadSchedule(strings.NewReader("not gzip")); err == nil {
		t.Error("garbage accepted")
	}
	var empty Schedule
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSchedule(&buf); err == nil {
		t.Error("empty schedule accepted")
	}
}

func TestLoadScheduleFileMissing(t *testing.T) {
	if _, err := LoadScheduleFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file accepted")
	}
}
