package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512 * MB, "512MB"},
		{2 * GB, "2GB"},
		{1 * TB, "1TB"},
		{4 * KB, "4KB"},
		{100, "100B"},
		{3 * GB / 2, "1536MB"},
		{3*GB/2 + 1, "1.50GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(3 * Second)
	if !t0.Before(t1) || !t1.After(t0) {
		t.Error("Before/After inconsistent")
	}
	if d := t1.Sub(t0); d != 3*Second {
		t.Errorf("Sub = %v, want 3s", d)
	}
	if s := t1.Seconds(); s != 3 {
		t.Errorf("Seconds = %v, want 3", s)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if ms := d.Milliseconds(); ms != 1.5 {
		t.Errorf("Milliseconds = %v, want 1.5", ms)
	}
	if us := d.Microseconds(); us != 1500 {
		t.Errorf("Microseconds = %v, want 1500", us)
	}
	if d.Std() != 1500*time.Microsecond {
		t.Errorf("Std = %v", d.Std())
	}
	if FromStd(2*time.Second) != 2*Second {
		t.Error("FromStd mismatch")
	}
}

func TestRateTimeFor(t *testing.T) {
	r := 100 * MBps
	// 200MB at 100MB/s = 2s.
	if d := r.TimeFor(200 * MB); d != 2*Second {
		t.Errorf("TimeFor = %v, want 2s", d)
	}
	if d := Rate(0).TimeFor(GB); d != 0 {
		t.Errorf("zero rate TimeFor = %v, want 0", d)
	}
	if d := r.TimeFor(0); d != 0 {
		t.Errorf("zero size TimeFor = %v, want 0", d)
	}
	if d := r.TimeFor(-5); d != 0 {
		t.Errorf("negative size TimeFor = %v, want 0", d)
	}
}

func TestRateString(t *testing.T) {
	if got := (100 * MBps).String(); got != "100.0MB/s" {
		t.Errorf("got %q", got)
	}
	if got := (2 * GBps).String(); got != "2.0GB/s" {
		t.Errorf("got %q", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 5, 2},
		{11, 5, 3},
		{1, 5, 1},
		{0, 5, 0},
		{-3, 5, 0},
		{int64(2 * GB), int64(512 * MB), 4},
		{int64(2*GB) + 1, int64(512 * MB), 5},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv(1,0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

// Property: CeilDiv(a,b) is the smallest k with k*b >= a, for positive a, b.
func TestQuickCeilDiv(t *testing.T) {
	f := func(a, b uint16) bool {
		if b == 0 {
			return true
		}
		k := CeilDiv(int64(a), int64(b))
		if a == 0 {
			return k == 0
		}
		return k*int64(b) >= int64(a) && (k-1)*int64(b) < int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: TimeFor is monotonic in size for a fixed positive rate.
func TestQuickRateMonotonic(t *testing.T) {
	f := func(a, b uint32) bool {
		r := 50 * MBps
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return r.TimeFor(x) <= r.TimeFor(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
