// Package units provides the elementary quantities shared by every other
// package in vizsched: byte sizes, the simulated-time type used by the
// discrete-event kernel, and data-rate helpers.
//
// Simulated time is kept separate from wall-clock time on purpose. All
// rendering, I/O, and queueing dynamics advance a virtual clock, while
// scheduling *cost* (Table III of the paper) is measured in real wall time
// around the actual scheduler code. Mixing the two types is a compile error,
// which is the point.
package units

import (
	"fmt"
	"time"
)

// Bytes is a size in bytes. It is a distinct type so that sizes, times and
// rates cannot be accidentally interchanged.
type Bytes int64

// Common byte-size multiples.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
	TB Bytes = 1 << 40
)

// String renders the size using the largest fitting binary unit, matching
// the style of the paper's tables (e.g. "512MB", "2GB").
func (b Bytes) String() string {
	switch {
	case b >= TB && b%TB == 0:
		return fmt.Sprintf("%dTB", b/TB)
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%dGB", b/GB)
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%dMB", b/MB)
	case b >= KB && b%KB == 0:
		return fmt.Sprintf("%dKB", b/KB)
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Time is a point on the simulated clock, in nanoseconds since the start of
// the simulation. The zero value is the simulation epoch.
type Time int64

// Duration is a span of simulated time, in nanoseconds. It deliberately
// mirrors time.Duration so the conversion helpers below are trivial and the
// formatting is familiar.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t−u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u on the simulated clock.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u on the simulated clock.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a float64 number of simulated seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration since the simulation epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a float64 number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a float64 number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Std converts a simulated duration to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using the time package's conventions.
func (d Duration) String() string { return time.Duration(d).String() }

// FromStd converts a time.Duration to a simulated Duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Rate is a data-transfer rate in bytes per simulated second.
type Rate float64

// Common rates. DiskSATA approximates the sustained sequential read rate of
// the 2012-era spinning disks behind the paper's "tens of seconds per chunk"
// observation; GPUUpload approximates PCIe 2.0 x16 host-to-device copies.
const (
	MBps Rate = 1 << 20
	GBps Rate = 1 << 30
)

// TimeFor returns the simulated time needed to move n bytes at rate r.
// A non-positive rate yields zero (treated as "instantaneous"), which keeps
// degenerate configurations from producing negative or infinite times.
func (r Rate) TimeFor(n Bytes) Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / float64(r) * float64(Second))
}

// String formats the rate in MB/s or GB/s.
func (r Rate) String() string {
	if r >= GBps {
		return fmt.Sprintf("%.1fGB/s", float64(r)/float64(GBps))
	}
	return fmt.Sprintf("%.1fMB/s", float64(r)/float64(MBps))
}

// CeilDiv returns ceil(a/b) for positive b. It is the decomposition formula
// m = ⌈Dsize / Chkmax⌉ from §III-C of the paper, and general enough to live
// here.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units.CeilDiv: non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
