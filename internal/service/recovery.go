package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/hastate"
	"vizsched/internal/journal"
	"vizsched/internal/prefetch"
	"vizsched/internal/qos"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// This file is the head's failover machinery (DESIGN.md §5.10): journaling
// hooks the dispatcher calls on every recoverable mutation, the snapshot
// builder, the crash hook used by tests and the failover example, and
// StartRecovered — the warm-standby entry point that resumes dispatching
// from a replayed hastate.State.

// snapRequest asks the dispatcher for a consistent snapshot: built on the
// dispatcher goroutine, so it observes no half-applied mutation. A non-nil
// next additionally rotates the journal at the cut (see SnapshotRotate).
type snapRequest struct {
	reply chan *hastate.Snapshot
	next  *journal.Writer
}

// journalRec appends one record to the write-ahead log. A nil Journal makes
// this a no-op, keeping the non-HA configuration byte-identical. Append
// errors are logged, not fatal: a head that cannot journal keeps serving
// (recoverability degrades, availability does not).
func (h *Head) journalRec(kind journal.Kind, job core.JobID, task int, node core.NodeID, at units.Time, body any) {
	if h.Journal == nil {
		return
	}
	var raw []byte
	if body != nil {
		var err error
		raw, err = hastate.EncodeBody(body)
		if err != nil {
			h.Logf("head: encoding %v journal body: %v", kind, err)
			return
		}
	}
	if err := h.Journal.Append(journal.Record{
		Kind: kind,
		Job:  uint64(job),
		Task: int32(task),
		Node: int32(node),
		At:   int64(at),
		Body: raw,
	}); err != nil {
		h.Logf("head: journal append (%v): %v", kind, err)
	}
}

// jobRecord captures a job's durable form: the original request (so a
// recovered head can re-dispatch and finalize it) plus each task's position
// in the dispatch lifecycle.
func (h *Head) jobRecord(lj *liveJob) hastate.JobRecord {
	raw, err := transport.Encode(lj.req)
	if err != nil {
		h.Logf("head: encoding job %d request for journal: %v", lj.job.ID, err)
	}
	rec := hastate.JobRecord{
		ID:      lj.job.ID,
		Key:     lj.req.Key,
		Class:   lj.job.Class,
		Action:  lj.job.Action,
		Tenant:  lj.job.Tenant,
		Dataset: lj.job.Dataset,
		Issued:  lj.job.Issued,
		Req:     raw,
		Tasks:   make([]hastate.TaskInfo, len(lj.job.Tasks)),
	}
	for i := range lj.job.Tasks {
		t := &lj.job.Tasks[i]
		ti := hastate.TaskInfo{Chunk: t.Chunk, Size: t.Size}
		switch {
		case lj.frags[i] != nil || (lj.restoredDone != nil && lj.restoredDone[i]):
			ti.State, ti.Node, ti.Predicted = hastate.TaskDone, lj.nodes[i], t.PredictedExec
		case t.Assigned:
			ti.State, ti.Node, ti.Predicted = hastate.TaskAssigned, lj.nodes[i], t.PredictedExec
		}
		rec.Tasks[i] = ti
	}
	return rec
}

// buildSnapshot assembles the durable state. Dispatcher-owned: called only
// from the event loop, so tables and in-flight jobs are mutation-free for
// the duration.
func (h *Head) buildSnapshot(inflight map[core.JobID]*liveJob) *hastate.Snapshot {
	h.mu.Lock()
	next := h.nextJobID
	h.mu.Unlock()
	snap := &hastate.Snapshot{
		At:        h.now(),
		NextJobID: next,
		Tables:    h.state.Dump(),
	}
	if h.qosc != nil {
		snap.QoS = h.qosc.Export()
	}
	ljs := make([]*liveJob, 0, len(inflight))
	for _, lj := range inflight {
		ljs = append(ljs, lj)
	}
	sort.Slice(ljs, func(i, j int) bool { return ljs[i].job.ID < ljs[j].job.ID })
	for _, lj := range ljs {
		snap.Jobs = append(snap.Jobs, h.jobRecord(lj))
	}
	return snap
}

// Snapshot captures the head's complete durable state at one dispatch-loop
// instant — the base a journal replays on top of. Safe from any goroutine;
// valid after Start.
func (h *Head) Snapshot() (*hastate.Snapshot, error) {
	if !h.started {
		return nil, fmt.Errorf("service: Snapshot before Start")
	}
	req := snapRequest{reply: make(chan *hastate.Snapshot, 1)}
	select {
	case h.snapCh <- req:
	case <-h.doneCh:
		return nil, fmt.Errorf("service: Snapshot after dispatcher exit")
	}
	select {
	case snap := <-req.reply:
		return snap, nil
	case <-h.doneCh:
		return nil, fmt.Errorf("service: Snapshot after dispatcher exit")
	}
}

// SnapshotRotate captures the head's durable state and swaps the journal
// to next in one dispatcher step: the old log is synced (so it is complete
// up to the cut), the snapshot is built, and next is installed before any
// further mutation can be journaled. The returned snapshot plus the new
// log replays to exactly the same tables as the old base plus the old log
// — the checkpoint operation a long-running head uses to truncate its
// WAL.
func (h *Head) SnapshotRotate(next *journal.Writer) (*hastate.Snapshot, error) {
	if !h.started {
		return nil, fmt.Errorf("service: SnapshotRotate before Start")
	}
	if next == nil {
		return nil, fmt.Errorf("service: SnapshotRotate needs a journal writer (use Snapshot for a plain capture)")
	}
	req := snapRequest{reply: make(chan *hastate.Snapshot, 1), next: next}
	select {
	case h.snapCh <- req:
	case <-h.doneCh:
		return nil, fmt.Errorf("service: SnapshotRotate after dispatcher exit")
	}
	select {
	case snap := <-req.reply:
		return snap, nil
	case <-h.doneCh:
		return nil, fmt.Errorf("service: SnapshotRotate after dispatcher exit")
	}
}

// Crash kills the head abruptly — no shutdown handshake to workers, no
// journal sync, connections dropped mid-whatever — and waits for the
// dispatcher to exit. The failure-injection hook behind the failover tests
// and example; a real head crash looks exactly like this from the outside.
func (h *Head) Crash() {
	if !h.started {
		return
	}
	h.crashOnce.Do(func() { close(h.crashCh) })
	<-h.doneCh
}

// closedSender returns a sender that rejects every Send with ErrClosed: the
// placeholder for a recovered head's worker slots before their workers have
// resynced. Attempted dispatches fail like sends to a dead node would, and
// the rejoin path swaps in a live sender.
func closedSender() *sender {
	s := &sender{closed: true}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// StartRecovered launches the head from a replayed hastate.State instead of
// a fresh table set — the warm-standby takeover (§5.10). No workers may have
// been added: every worker slot starts disconnected (its health demoted to
// suspect so nothing is dispatched blind) and workers reattach through the
// Rejoin path with Resync set, re-announcing their caches and replaying
// retained results for completed-but-unacked tasks. Recovered jobs resume
// where the journal left them: queued tasks reschedule, in-flight tasks get
// a reconnect grace before the deadline scanner presumes them lost, and
// fully-completed jobs wait for retained replays to deliver without any
// re-rendering.
func (h *Head) StartRecovered(st *hastate.State) error {
	if h.started {
		return fmt.Errorf("service: StartRecovered after Start")
	}
	if len(h.workers) != 0 {
		return fmt.Errorf("service: StartRecovered with pre-added workers; workers rejoin via resync")
	}
	if h.Compositing != "" && h.Compositing != "dfb" {
		return fmt.Errorf("service: unknown compositing algorithm %q", h.Compositing)
	}
	h.state = st.Tables
	n := len(st.Tables.Available)
	if h.Replicas > 1 {
		// The tables already carry the replication degree; only the
		// scheduler's own knob needs setting.
		if rs, ok := h.sched.(core.ReplicaSetter); ok {
			rs.SetReplicas(h.Replicas)
		}
	}
	if h.QoS != nil {
		cfg := *h.QoS
		if h.DropStale {
			cfg.AlwaysShedStale = true
		}
		h.qosc = qos.NewController(&cfg)
		if st.QoS != nil {
			h.qosc.Restore(st.QoS)
		}
	}
	if h.Prefetch != nil {
		if ps, ok := h.sched.(core.PrefetchSetter); ok {
			h.prefc = prefetch.NewController(h.Prefetch, n, h.chunkSize)
			ps.SetPrefetchPlanner(h.prefc)
			h.prefSrc, _ = h.sched.(core.PrefetchSource)
		}
	}
	// Back-date the wall anchor so the service clock resumes at the
	// recovered instant: journal records written from here on sort after
	// everything replayed, and Estimate aging sees no time warp.
	h.start = time.Now().Add(-time.Duration(st.At))
	h.workers = make([]transport.Conn, n)
	h.senders = make([]*sender, n)
	h.gens = make([]uint64, n)
	h.lastBeat = make([]time.Time, n)
	h.downAt = make([]time.Time, n)
	h.healthView = make([]atomic.Int32, n)
	wall := time.Now()
	for k := 0; k < n; k++ {
		node := core.NodeID(k)
		h.senders[k] = closedSender()
		h.lastBeat[k] = wall // grace: silence is counted from takeover
		if st.Tables.Health(node) == core.HealthUp {
			// No connection backs an "up" verdict yet; demote to suspect
			// (journaled like any health transition) until the resync hello
			// proves the worker alive.
			st.Tables.MarkSuspect(node)
			h.journalRec(journal.KindSuspect, 0, -1, node, st.At, nil)
		}
		if st.Tables.Health(node) == core.HealthDown {
			h.downAt[k] = wall
		}
		h.healthView[k].Store(int32(st.Tables.Health(node)))
	}
	h.mu.Lock()
	h.nextJobID = st.NextJobID
	h.mu.Unlock()

	// Rebuild the live jobs. The dispatcher adopts recovered/recoveredQueue
	// before its first event.
	var live []*core.Job
	for _, rj := range st.Jobs {
		lj := h.restoreJob(rj)
		h.recovered = append(h.recovered, lj)
		if key := lj.req.Key; key != 0 {
			h.byKey[key] = lj
		}
		if rj.Rec.Done() {
			continue // complete; waits for retained replays, renders nothing
		}
		live = append(live, rj.Job)
		if rj.Job.Remaining == 0 {
			continue // fully in flight; completions or deadlines move it
		}
		if h.qosc != nil && rj.Job.Remaining == len(rj.Job.Tasks) {
			// Undispatched jobs re-enter the fair queue in admission order;
			// partially-dispatched ones go straight to the working set below.
			h.qosc.Requeue(rj.Job)
			continue
		}
		h.recoveredQueue = append(h.recoveredQueue, lj)
	}
	if h.qosc != nil {
		// The journal-reconstructed job list is the authority on session
		// in-flight depths; the snapshot's view may lag it.
		h.qosc.Rebind(live)
	}
	h.started = true
	go h.dispatch()
	return nil
}

// restoreJob rebuilds the dispatcher-facing liveJob around a recovered job.
// The client connection is nil until the client re-submits its idempotency
// key and re-attaches.
func (h *Head) restoreJob(rj *hastate.RecoveredJob) *liveJob {
	job := rj.Job
	lj := &liveJob{
		job:      job,
		frags:    make([]*FragmentBody, len(job.Tasks)),
		nodes:    make([]core.NodeID, len(job.Tasks)),
		deadline: make([]time.Time, len(job.Tasks)),
		retryAt:  make([]time.Time, len(job.Tasks)),
		retries:  make([]int, len(job.Tasks)),
		wall:     time.Now(),
	}
	if len(rj.Rec.Req) > 0 {
		if err := transport.Decode(rj.Rec.Req, &lj.req); err != nil {
			h.Logf("head: decoding recovered job %d request: %v", job.ID, err)
		}
	}
	now := time.Now()
	for i := range rj.Rec.Tasks {
		ti := &rj.Rec.Tasks[i]
		if ti.State == hastate.TaskQueued {
			continue
		}
		lj.nodes[i] = ti.Node
		if h.DeadlineFactor > 0 {
			// Outstanding work gets a reconnect grace on top of its usual
			// deadline: the worker holding the result must have time to
			// resync and replay before the task is presumed lost.
			lj.deadline[i] = now.Add(h.DownAfter + h.taskDeadline(&job.Tasks[i]))
		}
		if ti.State == hastate.TaskDone {
			if lj.restoredDone == nil {
				lj.restoredDone = make([]bool, len(job.Tasks))
			}
			lj.restoredDone[i] = true
		}
	}
	return lj
}

// retainedCap bounds the delivered-result store backing client re-attach;
// FIFO eviction, so the window covers the most recent deliveries.
const retainedCap = 128

// storeRetained records a delivered result under its idempotency key.
func (h *Head) storeRetained(key uint64, res ResultBody) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.storeRetainedLocked(key, res)
}

// storeRetainedLocked is storeRetained with h.mu already held — used by
// finalize, which must store the result and drop the key binding in one
// critical section so a racing re-submission sees exactly one of them.
func (h *Head) storeRetainedLocked(key uint64, res ResultBody) {
	if _, exists := h.retained[key]; !exists {
		h.retainedOrder = append(h.retainedOrder, key)
		if len(h.retainedOrder) > retainedCap {
			delete(h.retained, h.retainedOrder[0])
			h.retainedOrder = h.retainedOrder[1:]
		}
	}
	h.retained[key] = res
}

// lookupRetained serves a re-submitted key from the delivered-result store.
func (h *Head) lookupRetained(key uint64) (ResultBody, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	res, ok := h.retained[key]
	return res, ok
}

// dropKey removes a finished job's idempotency-key binding. byKey is
// h.mu-guarded; a later liveJob that reused the key is left alone.
func (h *Head) dropKey(lj *liveJob) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dropKeyLocked(lj)
}

// dropKeyLocked is dropKey with h.mu already held.
func (h *Head) dropKeyLocked(lj *liveJob) {
	if key := lj.req.Key; key != 0 && h.byKey[key] == lj {
		delete(h.byKey, key)
	}
}
