package service

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/img"
	"vizsched/internal/raycast"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// testCatalog writes two small bricked datasets into a temp dir.
func testCatalog(t *testing.T, chunks int) *Catalog {
	t.Helper()
	dir := t.TempDir()
	cat := NewCatalog()
	for _, name := range []string{"supernova", "plume"} {
		g := volume.Generate(volume.FieldByName(name), 24, 24, 24)
		m, err := WriteDataset(filepath.Join(dir, name), name, g, chunks, name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := volume.Generate(volume.Supernova, 16, 16, 20)
	m, err := WriteDataset(dir, "nova", g, 4, "supernova")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Chunks) != 4 {
		t.Fatalf("chunks = %d", len(m.Chunks))
	}
	loaded, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "nova" || loaded.Dims != m.Dims || len(loaded.Chunks) != 4 {
		t.Errorf("manifest mismatch: %+v", loaded)
	}
	// Bricks reload with ghost geometry intact.
	b, err := loaded.LoadBrick(2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Extent != m.Chunks[2].Extent || b.GridOrigin != m.Chunks[2].GridOrigin {
		t.Error("brick geometry lost in roundtrip")
	}
	if _, err := loaded.LoadBrick(99); err == nil {
		t.Error("out-of-range brick did not error")
	}
}

func TestCatalogLoadDir(t *testing.T) {
	root := t.TempDir()
	g := volume.Generate(volume.Plume, 12, 12, 16)
	if _, err := WriteDataset(filepath.Join(root, "a"), "a", g, 2, "plume"); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteDataset(filepath.Join(root, "b"), "b", g, 2, "plume"); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.LoadDir(root); err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 || cat.Get("a") == nil || cat.Get("b") == nil {
		t.Errorf("catalog = %v", cat.Names())
	}
	if err := cat.Add(cat.Get("a")); err == nil {
		t.Error("duplicate Add did not error")
	}
}

// The live service must produce the same image a direct monolithic render
// does — the full distributed pipeline (decompose, schedule, render on
// workers, 2-3-swap composite) is an implementation detail of the picture.
func TestEndToEndRenderMatchesDirect(t *testing.T) {
	cat := testCatalog(t, 3)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 3, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	req := RenderBody{
		Dataset: "supernova",
		Angle:   0.7, Elevation: 0.3, Dist: 2.4,
		Width: 48, Height: 48,
	}
	res, err := client.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.Bounds().Dx() != 48 || res.Image.Bounds().Dy() != 48 {
		t.Fatalf("image size = %v", res.Image.Bounds())
	}
	if res.Misses != 3 || res.Hits != 0 {
		t.Errorf("first render hits/misses = %d/%d, want 0/3", res.Hits, res.Misses)
	}

	// Direct render of the same view.
	g := volume.Generate(volume.Supernova, 24, 24, 24)
	cam := raycast.NewCamera(0.7, 0.3, 2.4)
	direct := raycast.RenderFull(g, cam, raycast.PresetTF("supernova"),
		raycast.Options{Width: 48, Height: 48})
	directPNG := direct.ToNRGBA()

	var worst int
	b := res.Image.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r1, g1, b1, _ := res.Image.At(x, y).RGBA()
			r2, g2, b2, _ := directPNG.At(x, y).RGBA()
			for _, d := range []int{int(r1>>8) - int(r2>>8), int(g1>>8) - int(g2>>8), int(b1>>8) - int(b2>>8)} {
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 12 {
		t.Errorf("service image differs from direct render by %d/255 at worst", worst)
	}

	// Second render of the same dataset: everything cached.
	res2, err := client.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hits != 3 || res2.Misses != 0 {
		t.Errorf("second render hits/misses = %d/%d, want 3/0", res2.Hits, res2.Misses)
	}
}

func TestServiceWithEachScheduler(t *testing.T) {
	for _, mk := range []func() core.Scheduler{
		func() core.Scheduler { return core.NewLocalityScheduler(5 * units.Millisecond) },
	} {
		cat := testCatalog(t, 2)
		cl, err := StartCluster(mk(), cat, 2, 64*units.MB)
		if err != nil {
			t.Fatal(err)
		}
		client := cl.Connect()
		if _, err := client.Render(RenderBody{
			Dataset: "plume", Angle: 1, Elevation: 0.2, Dist: 2.5,
			Width: 24, Height: 24,
		}); err != nil {
			t.Errorf("render failed: %v", err)
		}
		client.Close()
		cl.Stop()
	}
}

func TestUnknownDatasetErrors(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	if _, err := client.Render(RenderBody{Dataset: "nope", Width: 16, Height: 16, Dist: 2}); err == nil {
		t.Error("unknown dataset did not error")
	}
	if _, err := client.Render(RenderBody{Dataset: "plume", Width: -1, Height: 16, Dist: 2}); err == nil {
		t.Error("bad size did not error")
	}
}

func TestConcurrentClientsAndBatch(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 2, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for u := 0; u < 2; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := cl.Connect()
			defer client.Close()
			name := []string{"supernova", "plume"}[u]
			for f := 0; f < 3; f++ {
				if _, err := client.Render(RenderBody{
					Dataset: name,
					Angle:   float64(f) * 0.3, Dist: 2.4,
					Width: 20, Height: 20,
					Action: u + 1,
					Batch:  f == 2,
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestTCPServiceEndToEnd(t *testing.T) {
	cat := testCatalog(t, 2)

	// Workers serve over real TCP connections.
	head := NewHead(core.NewLocalityScheduler(5*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	workerL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer workerL.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := transport.DialTCP(workerL.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			w := NewWorker("tcp-worker", cat, 64*units.MB)
			w.Logf = func(string, ...any) {}
			_ = w.Serve(conn)
			_ = i
		}()
	}
	for i := 0; i < 2; i++ {
		conn, err := workerL.Accept()
		if err != nil {
			t.Fatal(err)
		}
		if err := head.AddWorker(conn); err != nil {
			t.Fatal(err)
		}
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}

	clientL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go head.ServeClients(clientL)

	client, err := DialTCP(clientL.Addr())
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Render(RenderBody{
		Dataset: "supernova", Angle: 0.4, Elevation: 0.2, Dist: 2.5,
		Width: 32, Height: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Image.Bounds().Dx() != 32 {
		t.Errorf("bad image: %v", res.Image.Bounds())
	}
	client.Close()
	clientL.Close()
	head.Stop()
	wg.Wait()
}

func TestWorkerFailureReschedules(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 2, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	// Warm both workers.
	if _, err := client.Render(RenderBody{Dataset: "plume", Dist: 2.4, Width: 16, Height: 16}); err != nil {
		t.Fatal(err)
	}
	// Kill worker 1's connection from the head side.
	cl.Head.workers[1].Close()
	time.Sleep(20 * time.Millisecond)
	// Renders must still complete on the survivor.
	res, err := client.Render(RenderBody{Dataset: "plume", Dist: 2.4, Width: 16, Height: 16})
	if err != nil {
		t.Fatalf("render after worker loss: %v", err)
	}
	if res.Image == nil {
		t.Fatal("no image after worker loss")
	}
}

func TestPixelCodecs(t *testing.T) {
	m := img.New(16, 16)
	m.Set(1, 1, img.RGBA{R: 0.1, G: 0.2, B: 0.3, A: 0.4})
	m.Set(7, 9, img.RGBA{R: 0.9, G: 0.05, B: 0.5, A: 1})

	raw, err := encodePixels(m, CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePixels(16, 16, CodecRaw, raw)
	if err != nil {
		t.Fatal(err)
	}
	if img.MaxDiff(m, got) != 0 {
		t.Error("raw codec not lossless")
	}

	packed, err := encodePixels(m, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	got, err = decodePixels(16, 16, CodecFlate, packed)
	if err != nil {
		t.Fatal(err)
	}
	// 16-bit quantization: within 1/65535 per channel.
	if d := img.MaxDiff(m, got); d > 1.0/60000 {
		t.Errorf("flate codec error %v", d)
	}
	// A mostly-transparent fragment must compress well below raw size.
	if len(packed)*4 > len(raw) {
		t.Errorf("flate %dB vs raw %dB: no compression on sparse fragment", len(packed), len(raw))
	}
	// Errors: bad codec, truncated payloads.
	if _, err := encodePixels(m, 99); err == nil {
		t.Error("unknown codec accepted on encode")
	}
	if _, err := decodePixels(16, 16, 99, raw); err == nil {
		t.Error("unknown codec accepted on decode")
	}
	if _, err := decodePixels(16, 16, CodecRaw, raw[:8]); err == nil {
		t.Error("truncated raw accepted")
	}
	if _, err := decodePixels(16, 16, CodecFlate, []byte{1, 2}); err == nil {
		t.Error("corrupt flate accepted")
	}
}
