package service

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"vizsched/internal/compositing"
	"vizsched/internal/core"
	"vizsched/internal/img"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// liveJob is one in-flight render: the scheduler-facing job plus everything
// needed to assemble and deliver the final image.
type liveJob struct {
	job   *core.Job
	req   RenderBody
	frags []*FragmentBody
	got   int
	// nodes records which worker each task went to, for failure cleanup.
	nodes []core.NodeID
	// reply delivers the outcome to the issuing client connection.
	conn  transport.Conn
	msgID uint64
	wall  time.Time
}

// workerEvent is anything a worker-reader goroutine feeds the dispatcher.
type workerEvent struct {
	node core.NodeID
	msg  transport.Message
	err  error
}

// clientEvent is a job arrival from a client connection.
type clientEvent struct {
	lj *liveJob
}

// sender decouples the dispatcher from worker connections with an
// unbounded queue and a writer goroutine. Without it, the dispatcher could
// block sending a task to a worker whose fragment replies are themselves
// waiting on the dispatcher — a classic two-channel deadlock.
type sender struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []transport.Message
	closed bool
}

func newSender(conn transport.Conn, onErr func(error)) *sender {
	s := &sender{}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		for {
			s.mu.Lock()
			for len(s.queue) == 0 && !s.closed {
				s.cond.Wait()
			}
			if s.closed && len(s.queue) == 0 {
				s.mu.Unlock()
				return
			}
			m := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			if err := conn.Send(m); err != nil {
				onErr(err)
				return
			}
		}
	}()
	return s
}

// Send enqueues without blocking the caller.
func (s *sender) Send(m transport.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return transport.ErrClosed
	}
	s.queue = append(s.queue, m)
	s.cond.Signal()
	return nil
}

// Close stops the writer after the queue drains.
func (s *sender) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// Head is the master node: it owns the job queue, the scheduler and its
// prediction tables, and the worker connections. One dispatcher goroutine
// owns all mutable state; listening goroutines feed it through channels —
// the listening/dispatching thread pair of the paper's design (§III-A).
type Head struct {
	sched    core.Scheduler
	state    *core.HeadState
	catalog  *Catalog
	model    core.CostModel
	memQuota units.Bytes

	// dsIDs/dsNames map between catalog names and scheduler dataset IDs.
	dsIDs   map[string]volume.DatasetID
	dsNames map[volume.DatasetID]string

	workers []transport.Conn
	senders []*sender
	start   time.Time

	jobCh   chan clientEvent
	workCh  chan workerEvent
	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool

	mu        sync.Mutex
	nextJobID core.JobID

	stats headStats

	// DropStale, when set before Start, supersedes queued-but-undispatched
	// interactive frames when a newer frame of the same action arrives —
	// what a real viewer wants under lag: the latest view, not every view.
	// The superseded request receives an error reply.
	DropStale bool

	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewHead builds a head node for the catalog. memQuota must match what the
// workers dedicate to their caches, since the head's tables predict them.
func NewHead(sched core.Scheduler, catalog *Catalog, memQuota units.Bytes, model core.CostModel) *Head {
	h := &Head{
		sched:   sched,
		catalog: catalog,
		model:   model,
		dsIDs:   make(map[string]volume.DatasetID),
		dsNames: make(map[volume.DatasetID]string),
		jobCh:   make(chan clientEvent, 64),
		workCh:  make(chan workerEvent, 256),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
		Logf:    log.Printf,
	}
	for i, name := range catalog.Names() {
		id := volume.DatasetID(i + 1)
		h.dsIDs[name] = id
		h.dsNames[id] = name
	}
	h.memQuota = memQuota
	return h
}

// AddWorker registers a connected worker. It must be called before Start;
// the worker's hello message is consumed here.
func (h *Head) AddWorker(conn transport.Conn) error {
	if h.started {
		return fmt.Errorf("service: AddWorker after Start")
	}
	msg, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("service: worker hello: %w", err)
	}
	if msg.Kind != transport.KindHello {
		return fmt.Errorf("service: expected hello, got %v", msg.Kind)
	}
	var hello HelloBody
	if err := transport.Decode(msg.Body, &hello); err != nil {
		return err
	}
	h.workers = append(h.workers, conn)
	return nil
}

// Start launches the dispatcher and worker readers. At least one worker
// must have been added.
func (h *Head) Start() error {
	if len(h.workers) == 0 {
		return fmt.Errorf("service: no workers")
	}
	h.state = core.NewHeadState(len(h.workers), h.memQuota, h.model)
	h.start = time.Now()
	h.started = true
	for i, conn := range h.workers {
		node := core.NodeID(i)
		conn := conn
		h.senders = append(h.senders, newSender(conn, func(err error) {
			h.workCh <- workerEvent{node: node, err: err}
		}))
		go func() {
			for {
				msg, err := conn.Recv()
				if err != nil {
					h.workCh <- workerEvent{node: node, err: err}
					return
				}
				h.workCh <- workerEvent{node: node, msg: msg}
			}
		}()
	}
	go h.dispatch()
	return nil
}

// Stop shuts the service down and waits for the dispatcher to exit. A head
// that was never started stops trivially.
func (h *Head) Stop() {
	if !h.started {
		return
	}
	close(h.stopCh)
	<-h.doneCh
}

// now returns service-relative time for the scheduler's tables.
func (h *Head) now() units.Time { return units.Time(time.Since(h.start)) }

// dispatch is the single goroutine owning the queue, tables, and in-flight
// job state.
func (h *Head) dispatch() {
	defer close(h.doneCh)
	queue := make([]*liveJob, 0, 64)
	inflight := make(map[core.JobID]*liveJob)

	cycle := h.sched.Cycle()
	var tick <-chan time.Time
	if h.sched.Trigger() == core.Periodic {
		t := time.NewTicker(cycle.Std())
		defer t.Stop()
		tick = t.C
	}

	runSched := func() {
		if len(queue) == 0 {
			return
		}
		jobs := make([]*core.Job, len(queue))
		for i, lj := range queue {
			jobs[i] = lj.job
		}
		assignments := h.sched.Schedule(h.now(), jobs, h.state)
		for _, a := range assignments {
			lj := inflight[a.Task.Job.ID]
			lj.nodes[a.Task.Index] = a.Node
			body := TaskBody{
				JobID:     uint64(lj.job.ID),
				TaskIndex: a.Task.Index,
				Dataset:   h.dsNames[lj.job.Dataset],
				Chunk:     a.Task.Index,
				Render:    lj.req,
			}
			a.Task.Job.Remaining--
			raw, err := transport.Encode(body)
			if err != nil {
				h.Logf("head: encoding task: %v", err)
				continue
			}
			if err := h.senders[a.Node].Send(transport.Message{
				Kind: transport.KindTask, ID: uint64(lj.job.ID), Body: raw,
			}); err != nil {
				h.Logf("head: send to node %d failed: %v", a.Node, err)
			}
		}
		live := queue[:0]
		for _, lj := range queue {
			if lj.job.Remaining > 0 {
				live = append(live, lj)
			}
		}
		queue = live
	}

	fail := func(lj *liveJob, msg string) {
		h.stats.jobsFailed.Add(1)
		delete(inflight, lj.job.ID)
		// Drop it from the queue too: a failed job must never reach the
		// scheduler again.
		for i, q := range queue {
			if q == lj {
				queue = append(queue[:i], queue[i+1:]...)
				break
			}
		}
		if err := send(lj.conn, transport.KindError, lj.msgID, ErrorBody{Msg: msg}); err != nil {
			h.Logf("head: error reply failed: %v", err)
		}
	}

	for {
		select {
		case <-h.stopCh:
			for i, w := range h.workers {
				_ = h.senders[i].Send(transport.Message{Kind: transport.KindShutdown})
				h.senders[i].Close()
				w.Close()
			}
			return

		case ev := <-h.jobCh:
			lj := ev.lj
			if h.DropStale && lj.job.Class == core.Interactive {
				for i, old := range queue {
					if old.job.Class == core.Interactive &&
						old.job.Action == lj.job.Action &&
						old.job.Remaining == len(old.job.Tasks) {
						queue = append(queue[:i], queue[i+1:]...)
						fail(old, "superseded by a newer frame")
						break
					}
				}
			}
			inflight[lj.job.ID] = lj
			queue = append(queue, lj)
			if h.sched.Trigger() == core.OnArrival {
				runSched()
			}

		case <-tick:
			runSched()

		case ev := <-h.workCh:
			if ev.err != nil {
				h.nodeDown(ev.node, inflight, &queue)
				continue
			}
			switch ev.msg.Kind {
			case transport.KindFragment:
				var frag FragmentBody
				if err := transport.Decode(ev.msg.Body, &frag); err != nil {
					h.Logf("head: bad fragment from node %d: %v", ev.node, err)
					continue
				}
				lj := inflight[core.JobID(frag.JobID)]
				if lj == nil {
					continue // job already failed
				}
				h.correct(lj, ev.node, &frag)
				if lj.frags[frag.TaskIndex] == nil {
					lj.frags[frag.TaskIndex] = &frag
					lj.got++
				}
				if lj.got == len(lj.frags) {
					delete(inflight, lj.job.ID)
					go h.finalize(lj)
				}
			case transport.KindError:
				var eb ErrorBody
				_ = transport.Decode(ev.msg.Body, &eb)
				if lj := inflight[core.JobID(ev.msg.ID)]; lj != nil {
					fail(lj, eb.Msg)
				}
			default:
				h.Logf("head: unexpected %v from node %d", ev.msg.Kind, ev.node)
			}
		}
	}
}

// correct feeds a fragment's execution facts back into the tables (§V-B).
func (h *Head) correct(lj *liveJob, node core.NodeID, frag *FragmentBody) {
	task := &lj.job.Tasks[frag.TaskIndex]
	evicted := make([]volume.ChunkID, 0, len(frag.Evicted))
	for _, ev := range frag.Evicted {
		if id, ok := h.dsIDs[ev.Dataset]; ok {
			evicted = append(evicted, volume.ChunkID{Dataset: id, Index: ev.Index})
		}
	}
	h.state.Correct(core.TaskResult{
		Task:      task,
		Node:      node,
		Hit:       frag.Hit,
		Exec:      units.Duration(frag.ExecNanos),
		Predicted: task.PredictedExec,
		Evicted:   evicted,
		Finished:  h.now(),
	}, h.now())
	if frag.Hit {
		h.stats.hits.Add(1)
	} else {
		h.stats.misses.Add(1)
	}
	h.stats.renderNanos.Add(frag.ExecNanos)
}

// nodeDown handles a worker connection failure: mark it failed and requeue
// the unfinished tasks it held (§VI-D).
func (h *Head) nodeDown(node core.NodeID, inflight map[core.JobID]*liveJob, queue *[]*liveJob) {
	if !h.state.Alive(node) {
		return
	}
	h.Logf("head: node %d down; re-scheduling its tasks", node)
	h.stats.workersDown.Add(1)
	h.state.MarkFailed(node)
	for _, lj := range inflight {
		requeued := false
		for i := range lj.job.Tasks {
			t := &lj.job.Tasks[i]
			if t.Assigned && lj.frags[i] == nil && lj.nodes[i] == node {
				t.Assigned = false
				t.PredictedExec = 0
				if lj.job.Remaining == 0 {
					requeued = true
				}
				lj.job.Remaining++
			}
		}
		if requeued {
			*queue = append(*queue, lj)
		}
	}
}

// finalize composites a completed job's fragments and replies to the client.
// It runs outside the dispatcher: the job is complete, so nothing else
// touches it.
func (h *Head) finalize(lj *liveJob) {
	images := make([]*img.Image, len(lj.frags))
	depths := make([]float64, len(lj.frags))
	hits, misses := 0, 0
	for i, f := range lj.frags {
		m, err := decodePixels(f.W, f.H, f.Codec, f.Data)
		if err != nil {
			_ = send(lj.conn, transport.KindError, lj.msgID, ErrorBody{Msg: err.Error()})
			return
		}
		images[i] = m
		depths[i] = f.Depth
		if f.Hit {
			hits++
		} else {
			misses++
		}
	}
	layers := compositing.ByDepth(images, depths)
	// The head composites with real goroutine parallelism; the swap
	// algorithms in internal/compositing model the distributed exchange the
	// workers would perform and are verified equal to this result.
	final, _ := compositing.Concurrent{}.Composite(layers)

	var buf bytes.Buffer
	if err := final.EncodePNG(&buf); err != nil {
		_ = send(lj.conn, transport.KindError, lj.msgID, ErrorBody{Msg: err.Error()})
		return
	}
	res := ResultBody{
		Width:        final.W,
		Height:       final.H,
		PNG:          buf.Bytes(),
		ElapsedNanos: time.Since(lj.wall).Nanoseconds(),
		Hits:         hits,
		Misses:       misses,
	}
	if err := send(lj.conn, transport.KindResult, lj.msgID, res); err != nil {
		h.Logf("head: result reply failed: %v", err)
	}
	h.stats.jobsCompleted.Add(1)
	if lj.req.Batch {
		h.stats.batchCompleted.Add(1)
	}
}

// KillWorker forcibly closes the connection to worker k — a failure
// injection hook for tests and demonstrations of §VI-D's fault tolerance.
func (h *Head) KillWorker(k core.NodeID) {
	if int(k) < 0 || int(k) >= len(h.workers) {
		return
	}
	h.workers[k].Close()
}

// submit builds a liveJob from a render request and hands it to the
// dispatcher.
func (h *Head) submit(conn transport.Conn, msgID uint64, req RenderBody) error {
	m := h.catalog.Get(req.Dataset)
	if m == nil {
		return fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	if req.Width <= 0 || req.Width > 4096 || req.Height <= 0 || req.Height > 4096 {
		return fmt.Errorf("bad image size %dx%d", req.Width, req.Height)
	}
	h.mu.Lock()
	h.nextJobID++
	id := h.nextJobID
	h.mu.Unlock()

	class := core.Interactive
	if req.Batch {
		class = core.Batch
	}
	dsID := h.dsIDs[req.Dataset]
	job := &core.Job{
		ID:      id,
		Class:   class,
		Action:  core.ActionID(req.Action),
		Dataset: dsID,
		Issued:  h.now(),
	}
	job.Tasks = make([]core.Task, len(m.Chunks))
	for i, c := range m.Chunks {
		job.Tasks[i] = core.Task{
			Job:   job,
			Index: i,
			Chunk: volume.ChunkID{Dataset: dsID, Index: i},
			Size:  c.SizeBytes,
		}
	}
	job.Remaining = len(job.Tasks)
	h.stats.jobsIssued.Add(1)
	if req.Batch {
		h.stats.batchIssued.Add(1)
	}
	h.jobCh <- clientEvent{lj: &liveJob{
		job:   job,
		req:   req,
		frags: make([]*FragmentBody, len(job.Tasks)),
		nodes: make([]core.NodeID, len(job.Tasks)),
		conn:  conn,
		msgID: msgID,
		wall:  time.Now(),
	}}
	return nil
}

// HandleClient serves one client connection: each render request becomes a
// job; results flow back asynchronously with the request's message ID.
func (h *Head) HandleClient(conn transport.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Kind {
		case transport.KindRender:
			var req RenderBody
			if err := transport.Decode(msg.Body, &req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
				continue
			}
			if err := h.submit(conn, msg.ID, req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
			}
		case transport.KindShutdown:
			return
		default:
			_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: "unexpected " + msg.Kind.String()})
		}
	}
}

// ServeClients accepts client connections until the listener closes.
func (h *Head) ServeClients(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go h.HandleClient(conn)
	}
}
