package service

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/cache"
	"vizsched/internal/compositing"
	"vizsched/internal/compositing/dfb"
	"vizsched/internal/core"
	"vizsched/internal/fracshare"
	"vizsched/internal/hastate"
	"vizsched/internal/img"
	"vizsched/internal/journal"
	"vizsched/internal/prefetch"
	"vizsched/internal/qos"
	"vizsched/internal/trace"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// liveJob is one in-flight render: the scheduler-facing job plus everything
// needed to assemble and deliver the final image.
type liveJob struct {
	job   *core.Job
	req   RenderBody
	frags []*FragmentBody
	got   int
	// nodes records which worker each task went to, for failure cleanup.
	nodes []core.NodeID
	// deadline[i] is when a dispatched task i is presumed lost; zero while
	// the task is not in flight.
	deadline []time.Time
	// retryAt[i] is the end of task i's backoff hold after a missed
	// deadline: the task stays marked Assigned (so schedulers skip it) until
	// the hold expires and it is released back to the queue.
	retryAt []time.Time
	// retries[i] counts missed deadlines for task i; beyond Head.MaxRetries
	// the whole job is failed back to the client.
	retries []int
	// reply delivers the outcome to the issuing client connection.
	conn  transport.Conn
	msgID uint64
	wall  time.Time

	// Distributed-framebuffer state (§5.9), nil/zero when Compositing is off:
	// red reduces arriving TileFragBody pixels straight into out under
	// layout, and finalize ships out instead of decoding and compositing
	// full-frame fragments. Created lazily from the first tile fragment,
	// whose FrameW/FrameH carry the job's (possibly QoS-degraded) frame size.
	layout dfb.Layout
	out    *img.Image
	red    *dfb.Reducer
	// tileFrags counts tile fragments folded into red, so the in-flight
	// gauge can be settled when the job delivers or fails.
	tileFrags int
	// tileSeen dedups tile fragments by (task, tile): a duplicated delivery
	// (network chaos, a resync replay) must not be reduced twice. Lazily
	// allocated on the dfb path only.
	tileSeen map[int64]struct{}

	// restoredDone marks tasks whose completion was journaled before a head
	// crash (§5.10): the replayed tables already reflect them, so when the
	// worker's retained replay delivers the data, the head stores it without
	// correcting or re-journaling. Nil except on recovered jobs.
	restoredDone []bool
}

// workerEvent is anything a worker-reader goroutine feeds the dispatcher.
// gen stamps which incarnation of the node's connection produced it, so a
// stale reader's death cannot take down a rejoined worker.
type workerEvent struct {
	node core.NodeID
	gen  uint64
	msg  transport.Message
	err  error
}

// clientEvent is a job arrival from a client connection.
type clientEvent struct {
	lj *liveJob
}

// rejoinEvent asks the dispatcher to restore a down node's slot with a
// fresh connection.
type rejoinEvent struct {
	conn  transport.Conn
	hello HelloBody
}

// sender decouples the dispatcher from worker connections with an
// unbounded queue and a writer goroutine. Without it, the dispatcher could
// block sending a task to a worker whose fragment replies are themselves
// waiting on the dispatcher — a classic two-channel deadlock.
type sender struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []transport.Message
	closed bool
}

func newSender(conn transport.Conn, onErr func(error)) *sender {
	s := &sender{}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		for {
			s.mu.Lock()
			for len(s.queue) == 0 && !s.closed {
				s.cond.Wait()
			}
			if s.closed && len(s.queue) == 0 {
				s.mu.Unlock()
				return
			}
			m := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			if err := conn.Send(m); err != nil {
				onErr(err)
				return
			}
		}
	}()
	return s
}

// Send enqueues without blocking the caller.
func (s *sender) Send(m transport.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return transport.ErrClosed
	}
	s.queue = append(s.queue, m)
	s.cond.Signal()
	return nil
}

// Close stops the writer after the queue drains.
func (s *sender) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// Head is the master node: it owns the job queue, the scheduler and its
// prediction tables, and the worker connections. One dispatcher goroutine
// owns all mutable state; listening goroutines feed it through channels —
// the listening/dispatching thread pair of the paper's design (§III-A).
type Head struct {
	sched    core.Scheduler
	state    *core.HeadState
	catalog  *Catalog
	model    core.CostModel
	memQuota units.Bytes

	// dsIDs/dsNames map between catalog names and scheduler dataset IDs.
	dsIDs   map[string]volume.DatasetID
	dsNames map[volume.DatasetID]string

	// workers is guarded by mu: the dispatcher replaces entries on rejoin
	// while KillWorker reads them from other goroutines. senders and gens
	// are dispatcher-owned after Start.
	workers []transport.Conn
	senders []*sender
	gens    []uint64
	start   time.Time

	// lastBeat and downAt are dispatcher-owned heartbeat/repair bookkeeping;
	// healthView mirrors the state machine for race-free introspection.
	lastBeat   []time.Time
	downAt     []time.Time
	healthView []atomic.Int32

	jobCh    chan clientEvent
	workCh   chan workerEvent
	rejoinCh chan rejoinEvent
	stopCh   chan struct{}
	doneCh   chan struct{}
	started  bool

	mu        sync.Mutex
	nextJobID core.JobID

	stats headStats
	rng   *rand.Rand

	// DropStale, when set before Start, supersedes queued-but-undispatched
	// interactive frames when a newer frame of the same action arrives —
	// what a real viewer wants under lag: the latest view, not every view.
	// The superseded request receives an error reply.
	DropStale bool

	// MaxQueue, when positive, bounds the number of queued (undispatched)
	// jobs. At the bound, arriving batch jobs are rejected and arriving
	// interactive frames shed the oldest queued interactive frame — a batch
	// burst can delay batch work but can never wedge interactive service.
	MaxQueue int

	// QoS, when set before Start, enables the multi-tenant admission and
	// fairness layer (§5.7): per-tenant token buckets decide
	// admit/throttle/reject at arrival, a deficit-round-robin fair queue
	// replaces the single FIFO, and an SLO-driven degradation ladder sheds
	// load under sustained overload. Nil keeps the original single-queue
	// behaviour exactly. When QoS is active, DropStale folds into the
	// controller (AlwaysShedStale) and MaxQueue bounds the fair queue.
	QoS  *qos.Config
	qosc *qos.Controller

	// Prefetch, when set before Start, enables the predictive chunk-warming
	// layer (§5.8): a Markov/frequency predictor trained on the fragment
	// completion stream plans warms into the scheduler's idle windows, a
	// token-bucket governor bounds warming bandwidth per worker, and warmed
	// bricks enter worker caches at the cold end. Requires a scheduler that
	// implements core.PrefetchSetter (OURS); inert otherwise. Nil keeps the
	// demand-only behaviour exactly.
	Prefetch *prefetch.Config
	prefc    *prefetch.Controller
	prefSrc  core.PrefetchSource

	// Compositing selects how the head assembles a job's fragments: ""
	// (default) keeps the decode-then-composite path exactly, while "dfb"
	// enables the asynchronous tile-owner distributed framebuffer (§5.9) —
	// workers push per-tile fragments as they render, the head reduces each
	// tile the moment its expected fragment count is met, and the delivered
	// PNG is byte-identical to the default path (the reducer replays the
	// same stable depth order). Set before AddWorker: the hello ack
	// advertises the tile size to workers.
	Compositing string
	// TileSize is the dfb tile edge; 0 selects dfb.DefaultTileSize.
	TileSize int

	// Trace, when set before Start, receives per-tile compositing events
	// (trace.TileFrag per fragment folded, trace.TileDone per tile
	// finalized). Dispatcher-owned while running; read it only after Stop.
	Trace *trace.Log

	// BatchWindow caps how many batch jobs the fair queue releases into the
	// scheduler's working set per pass when QoS is active; zero means the
	// default of 256 (matching the simulator).
	BatchWindow int

	// DeadlineFactor is k in the dispatch-deadline rule: a task overdue by
	// k× its predicted execution time (floored at MinDeadline) is presumed
	// lost and re-dispatched. Non-positive disables deadlines.
	DeadlineFactor float64
	// MinDeadline floors every task deadline; predictions for tiny cached
	// tasks would otherwise expire on scheduler-queue latency alone.
	MinDeadline time.Duration
	// MaxRetries bounds deadline-triggered re-dispatches per task; past it
	// the job is failed back to the client.
	MaxRetries int
	// RetryBackoff is the base of the exponential backoff (with jitter)
	// between a missed deadline and the task's re-entry into the queue.
	RetryBackoff time.Duration
	// CheckInterval is how often the dispatcher scans deadlines and
	// heartbeat freshness.
	CheckInterval time.Duration
	// SuspectAfter and DownAfter drive the up → suspect → down health state
	// machine: a worker silent for SuspectAfter receives no new work; silent
	// for DownAfter it is declared dead, its connection closed, and its
	// in-flight tasks requeued.
	SuspectAfter time.Duration
	DownAfter    time.Duration

	// Journal, when set before Start (or StartRecovered), receives one
	// record per dispatch-state mutation — the write-ahead log §5.10's
	// failover replays on top of the last Snapshot. Dispatcher-owned after
	// Start; the writer's BatchSize trades fsync cost against the records a
	// crash may lose. Nil disables journaling exactly.
	Journal *journal.Writer

	// Failover machinery (§5.10). recovered/recoveredQueue carry jobs
	// rebuilt by StartRecovered until the dispatcher adopts them. byKey is
	// the idempotency-key index over in-flight jobs and retained/
	// retainedOrder hold delivered results for client re-attach; all three
	// are mu-guarded so finalize can atomically move a key from byKey to
	// retained while the dispatcher admits — a re-submission always sees
	// exactly one of the two and never re-renders.
	recovered      []*liveJob
	recoveredQueue []*liveJob
	byKey          map[uint64]*liveJob
	retained       map[uint64]ResultBody
	retainedOrder  []uint64

	snapCh    chan snapRequest
	crashCh   chan struct{}
	crashOnce sync.Once
	stopOnce  sync.Once

	// Replicas is the replication policy layer's degree k (§5.6), applied to
	// the scheduler tables (and the scheduler itself, when it implements
	// core.ReplicaSetter) at Start: hot chunks are kept resident on k
	// workers, and a worker declared down has its chunks re-homed to their
	// warmest surviving replica instead of orphaning a dataset. Set ≤ 1 for
	// the paper's single-home behaviour. Defaults to core.DefaultReplicas.
	Replicas int

	// Autoscale, when set before Start, enables the elastic-fleet layer
	// (§5.12): the dispatcher's health-check tick evaluates the same
	// hysteresis policy the simulator runs — queue depth, per-tenant SLO
	// headroom, cache pressure — and executes its decisions. A drain
	// gracefully retires one worker (migrate queued batch tasks, pre-warm
	// orphan chunks onto survivors, demote home sets, clean Shutdown); a
	// scale-up raises the desired-workers gauge for an external provisioner
	// and bring-up rides the existing Rejoin path. Nil keeps the fixed-fleet
	// behaviour exactly.
	Autoscale *autoscale.Config

	// FracShare, when set before Start, enables the fractional-capacity
	// layer (§5.13) on the live fleet: the hello ack advertises the slot
	// count K and workers execute up to K tasks concurrently, with the
	// operating system doing the actual time-slicing the simulator's share
	// model prices. The head keeps the busy-share account (per-node
	// in-flight and utilization gauges, the fracshare_* metrics family).
	// Nil keeps the serial-FIFO worker behaviour exactly.
	FracShare *fracshare.Config
	frac      *fracTracker

	// ShardID is this head's shard index when it runs as one shard of a
	// MultiHead control plane (§5.11); the hello ack carries it so workers
	// know which shard they serve. Zero for a standalone head.
	ShardID int

	// EstimateSource, when set before Start, is consulted on estimate-table
	// misses: a MultiHead wires every shard to the shared chunk directory so
	// one shard's measurements seed another's predictions. Nil keeps the
	// local-tables-only behaviour exactly.
	EstimateSource func(volume.ChunkID) (units.Duration, bool)

	// OnCorrect, when set before Start, observes every table correction from
	// the dispatcher goroutine: the local node that ran the task, the chunk,
	// the measured execution time, and the evictions it caused. A MultiHead
	// publishes these facts into the shared directory. Nil disables exactly.
	OnCorrect func(node core.NodeID, chunk volume.ChunkID, exec units.Duration, evicted []volume.ChunkID)

	// OnNodeDown, when set before Start, observes node-death declarations
	// from the dispatcher goroutine so a MultiHead can drop the node's
	// residency from the shared directory. Nil disables exactly.
	OnNodeDown func(core.NodeID)

	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewHead builds a head node for the catalog. memQuota must match what the
// workers dedicate to their caches, since the head's tables predict them.
func NewHead(sched core.Scheduler, catalog *Catalog, memQuota units.Bytes, model core.CostModel) *Head {
	h := &Head{
		sched:    sched,
		catalog:  catalog,
		model:    model,
		dsIDs:    make(map[string]volume.DatasetID),
		dsNames:  make(map[volume.DatasetID]string),
		jobCh:    make(chan clientEvent, 64),
		workCh:   make(chan workerEvent, 256),
		rejoinCh: make(chan rejoinEvent, 4),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		snapCh:   make(chan snapRequest),
		crashCh:  make(chan struct{}),
		byKey:    make(map[uint64]*liveJob),
		retained: make(map[uint64]ResultBody),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		Logf:     log.Printf,

		DeadlineFactor: 4,
		MinDeadline:    time.Second,
		MaxRetries:     3,
		RetryBackoff:   25 * time.Millisecond,
		CheckInterval:  50 * time.Millisecond,
		SuspectAfter:   3 * DefaultHeartbeat,
		DownAfter:      10 * DefaultHeartbeat,
		Replicas:       core.DefaultReplicas,
	}
	for i, name := range catalog.Names() {
		id := volume.DatasetID(i + 1)
		h.dsIDs[name] = id
		h.dsNames[id] = name
	}
	h.memQuota = memQuota
	return h
}

// AddWorker registers a connected worker. It must be called before Start;
// the worker's hello message is consumed here and acked with the node slot.
func (h *Head) AddWorker(conn transport.Conn) error {
	if h.started {
		return fmt.Errorf("service: AddWorker after Start")
	}
	msg, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("service: worker hello: %w", err)
	}
	if msg.Kind != transport.KindHello {
		return fmt.Errorf("service: expected hello, got %v", msg.Kind)
	}
	var hello HelloBody
	if err := transport.Decode(msg.Body, &hello); err != nil {
		return err
	}
	node := len(h.workers)
	h.workers = append(h.workers, conn)
	return send(conn, transport.KindHello, 0, HelloBody{
		NodeID: node, TileSize: h.dfbTile(), Shard: h.ShardID, Slots: h.fracSlots(),
	})
}

// fracSlots returns the fractional slot count workers must run with, or 0
// when the fractional-capacity layer is off.
func (h *Head) fracSlots() int {
	if h.FracShare == nil {
		return 0
	}
	return h.FracShare.SlotCount()
}

// dfbTile returns the tile edge workers must fragment to, or 0 when the
// distributed framebuffer is off.
func (h *Head) dfbTile() int {
	if h.Compositing != "dfb" {
		return 0
	}
	if h.TileSize > 0 {
		return h.TileSize
	}
	return dfb.DefaultTileSize
}

// Rejoin re-registers a reconnecting worker under its previous NodeID —
// the §VI-D repair path. The hello must carry Rejoin and a NodeID the head
// currently considers down; otherwise the connection is closed. Valid after
// Start; safe to call from any goroutine.
func (h *Head) Rejoin(conn transport.Conn) error {
	if !h.started {
		return fmt.Errorf("service: Rejoin before Start")
	}
	msg, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("service: rejoin hello: %w", err)
	}
	if msg.Kind != transport.KindHello {
		return fmt.Errorf("service: expected hello, got %v", msg.Kind)
	}
	var hello HelloBody
	if err := transport.Decode(msg.Body, &hello); err != nil {
		return err
	}
	return h.rejoinDecoded(conn, hello)
}

// rejoinDecoded hands an already-decoded rejoin hello to the dispatcher —
// the tail of Rejoin, split out so MultiHead.Rejoin can decode once, route
// by the hello's shard index, and deliver to the owning head.
func (h *Head) rejoinDecoded(conn transport.Conn, hello HelloBody) error {
	if !h.started {
		return fmt.Errorf("service: Rejoin before Start")
	}
	if !hello.Rejoin || hello.NodeID < 0 || hello.NodeID >= len(h.healthView) {
		conn.Close()
		return fmt.Errorf("service: bad rejoin hello (rejoin=%v node=%d)", hello.Rejoin, hello.NodeID)
	}
	select {
	case h.rejoinCh <- rejoinEvent{conn: conn, hello: hello}:
		return nil
	case <-h.stopCh:
		conn.Close()
		return transport.ErrClosed
	}
}

// Start launches the dispatcher and worker readers. At least one worker
// must have been added.
func (h *Head) Start() error {
	if len(h.workers) == 0 {
		return fmt.Errorf("service: no workers")
	}
	if h.Compositing != "" && h.Compositing != "dfb" {
		return fmt.Errorf("service: unknown compositing algorithm %q", h.Compositing)
	}
	n := len(h.workers)
	h.state = core.NewHeadState(n, h.memQuota, h.model)
	if h.EstimateSource != nil {
		h.state.SetEstimateSource(h.EstimateSource)
	}
	if h.Replicas > 1 {
		h.state.SetReplication(h.Replicas)
		if rs, ok := h.sched.(core.ReplicaSetter); ok {
			rs.SetReplicas(h.Replicas)
		}
	}
	if h.QoS != nil {
		cfg := *h.QoS
		if h.DropStale {
			cfg.AlwaysShedStale = true
		}
		h.qosc = qos.NewController(&cfg)
	}
	if h.Prefetch != nil {
		if ps, ok := h.sched.(core.PrefetchSetter); ok {
			h.prefc = prefetch.NewController(h.Prefetch, n, h.chunkSize)
			ps.SetPrefetchPlanner(h.prefc)
			h.prefSrc, _ = h.sched.(core.PrefetchSource)
		}
	}
	if h.FracShare != nil {
		h.frac = newFracTracker(n, h.fracSlots())
	}
	h.start = time.Now()
	h.started = true
	h.gens = make([]uint64, n)
	h.lastBeat = make([]time.Time, n)
	h.downAt = make([]time.Time, n)
	h.healthView = make([]atomic.Int32, n)
	for i, conn := range h.workers {
		node := core.NodeID(i)
		h.lastBeat[i] = h.start
		h.senders = append(h.senders, newSender(conn, func(err error) {
			h.workCh <- workerEvent{node: node, err: err}
		}))
		h.readWorker(node, 0, conn)
	}
	go h.dispatch()
	return nil
}

// readWorker spawns the reader goroutine for one incarnation of a worker
// connection.
func (h *Head) readWorker(node core.NodeID, gen uint64, conn transport.Conn) {
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				h.workCh <- workerEvent{node: node, gen: gen, err: err}
				return
			}
			h.workCh <- workerEvent{node: node, gen: gen, msg: msg}
		}
	}()
}

// Stop shuts the service down and waits for the dispatcher to exit. A head
// that was never started stops trivially; repeated Stops are idempotent.
func (h *Head) Stop() {
	if !h.started {
		return
	}
	h.stopOnce.Do(func() { close(h.stopCh) })
	<-h.doneCh
}

// now returns service-relative time for the scheduler's tables.
func (h *Head) now() units.Time { return units.Time(time.Since(h.start)) }

// chunkSize resolves a scheduler chunk ID to its manifest byte size; zero
// for chunks the predictor extrapolated past a dataset edge.
func (h *Head) chunkSize(c volume.ChunkID) units.Bytes {
	m := h.catalog.Get(h.dsNames[c.Dataset])
	if m == nil || c.Index < 0 || c.Index >= len(m.Chunks) {
		return 0
	}
	return m.Chunks[c.Index].SizeBytes
}

// WorkerHealth returns the head's current liveness verdict for worker k.
// Safe from any goroutine.
func (h *Head) WorkerHealth(k core.NodeID) core.Health {
	if int(k) < 0 || int(k) >= len(h.healthView) {
		return core.HealthDown
	}
	return core.Health(h.healthView[k].Load())
}

// setHealth records a state-machine transition in both the scheduler tables
// (dispatcher-owned) and the atomic mirror, journaling transitions that
// actually moved the tables.
func (h *Head) setHealth(k core.NodeID, to core.Health) {
	switch to {
	case core.HealthSuspect:
		if h.state.Health(k) == core.HealthUp {
			h.state.MarkSuspect(k)
			h.journalRec(journal.KindSuspect, 0, -1, k, h.now(), nil)
		}
	case core.HealthUp:
		if h.state.Health(k) == core.HealthSuspect {
			h.state.MarkUp(k)
			h.journalRec(journal.KindUp, 0, -1, k, h.now(), nil)
		}
	}
	h.healthView[k].Store(int32(to))
}

// taskDeadline derives a dispatch deadline from the committed prediction:
// DeadlineFactor × Estimate-based prediction, floored at MinDeadline.
func (h *Head) taskDeadline(t *core.Task) time.Duration {
	d := time.Duration(float64(t.PredictedExec.Std()) * h.DeadlineFactor)
	if d < h.MinDeadline {
		d = h.MinDeadline
	}
	return d
}

// dispatch is the single goroutine owning the queue, tables, and in-flight
// job state.
func (h *Head) dispatch() {
	defer close(h.doneCh)
	queue := make([]*liveJob, 0, 64)
	inflight := make(map[core.JobID]*liveJob)

	// A recovered head (StartRecovered) arrives with replayed jobs: adopt
	// them before the first event so completions and resyncs find them.
	for _, lj := range h.recovered {
		inflight[lj.job.ID] = lj
	}
	queue = append(queue, h.recoveredQueue...)
	h.recovered, h.recoveredQueue = nil, nil

	cycle := h.sched.Cycle()
	var tick <-chan time.Time
	if h.sched.Trigger() == core.Periodic {
		t := time.NewTicker(cycle.Std())
		defer t.Stop()
		tick = t.C
	}
	checkEvery := h.CheckInterval
	if checkEvery <= 0 {
		checkEvery = 50 * time.Millisecond
	}
	check := time.NewTicker(checkEvery)
	defer check.Stop()

	var scaler *liveScaler
	if h.Autoscale != nil {
		scaler = h.newLiveScaler()
	}

	// sendPrefetches ships warm directives to their workers. A failed send
	// is left to the connection reader: the node-down path abandons the
	// controller's in-flight record along with everything else.
	sendPrefetches := func(ds []core.PrefetchDirective) {
		for _, d := range ds {
			h.stats.prefetchIssued.Add(1)
			h.stats.prefetchBytes.Add(int64(d.Size))
			raw, err := transport.Encode(PrefetchBody{Dataset: h.dsNames[d.Chunk.Dataset], Chunk: d.Chunk.Index})
			if err != nil {
				h.Logf("head: encoding prefetch: %v", err)
				continue
			}
			if err := h.senders[d.Node].Send(transport.Message{Kind: transport.KindPrefetch, Body: raw}); err != nil {
				h.Logf("head: prefetch send to node %d failed: %v", d.Node, err)
			}
		}
	}
	pcycle := cycle
	if pcycle <= 0 {
		pcycle = core.DefaultCycle
	}

	runSched := func() {
		if h.qosc != nil {
			// Refill the working window from the fair queue: every queued
			// interactive frame (one per tenant per round), then batch jobs by
			// deficit round robin up to the window. Popped jobs whose liveJob
			// is gone (failed or shed meanwhile) are dropped silently.
			popped := h.qosc.PopInteractive(nil)
			bw := h.BatchWindow
			if bw <= 0 {
				bw = 256
			}
			batchHere := 0
			for _, lj := range queue {
				if lj.job.Class == core.Batch {
					batchHere++
				}
			}
			if batchHere < bw {
				popped = h.qosc.PopBatch(popped, bw-batchHere)
			}
			for _, j := range popped {
				if lj := inflight[j.ID]; lj != nil {
					queue = append(queue, lj)
				}
			}
		}
		if len(queue) == 0 {
			// A truly idle cycle still warms: the in-Schedule planner only
			// runs when there is demand work to schedule around.
			if h.prefc != nil {
				sendPrefetches(h.prefc.Plan(h.now(), h.now().Add(pcycle), h.state))
			}
			return
		}
		jobs := make([]*core.Job, 0, len(queue))
		for _, lj := range queue {
			if lj.job.Remaining > 0 {
				jobs = append(jobs, lj.job)
			}
		}
		if len(jobs) > 0 {
			// One clock read for the pass: every CommitAssign inside Schedule
			// and every journaled dispatch record must carry the same instant,
			// or replay could not reproduce the tables.
			now := h.now()
			assignments := h.sched.Schedule(now, jobs, h.state)
			for _, a := range assignments {
				lj := inflight[a.Task.Job.ID]
				lj.nodes[a.Task.Index] = a.Node
				if lj.restoredDone != nil {
					lj.restoredDone[a.Task.Index] = false
				}
				body := TaskBody{
					JobID:     uint64(lj.job.ID),
					TaskIndex: a.Task.Index,
					Dataset:   h.dsNames[lj.job.Dataset],
					Chunk:     a.Task.Index,
					Render:    lj.req,
				}
				a.Task.Job.Remaining--
				h.journalRec(journal.KindDispatch, lj.job.ID, a.Task.Index, a.Node, now,
					hastate.DispatchBody{Predicted: a.Task.PredictedExec})
				if h.DeadlineFactor > 0 {
					lj.deadline[a.Task.Index] = time.Now().Add(h.taskDeadline(a.Task))
				}
				raw, err := transport.Encode(body)
				if err != nil {
					h.Logf("head: encoding task: %v", err)
					continue
				}
				if err := h.senders[a.Node].Send(transport.Message{
					Kind: transport.KindTask, ID: uint64(lj.job.ID), Body: raw,
				}); err != nil {
					h.Logf("head: send to node %d failed: %v", a.Node, err)
				}
				if h.frac != nil {
					h.frac.noteDispatch(int(a.Node))
				}
			}
		}
		// The scheduler's own planner fitted warms into this cycle's leftover
		// idle windows (strictly below every demand assignment); ship them.
		if h.prefSrc != nil {
			sendPrefetches(h.prefSrc.PlannedPrefetches())
		}
		live := queue[:0]
		for _, lj := range queue {
			if lj.job.Remaining > 0 {
				live = append(live, lj)
			}
		}
		queue = live
	}

	// failJob fails a job back to its client without touching the QoS
	// controller's books — for jobs the controller already accounted for
	// (shed victims) or never admitted.
	failJob := func(lj *liveJob, msg string) {
		h.stats.jobsFailed.Add(1)
		if lj.tileFrags > 0 {
			h.stats.fragsInFlight.Add(-int64(lj.tileFrags))
			lj.tileFrags = 0
		}
		if _, admitted := inflight[lj.job.ID]; admitted {
			// Only journaled-admitted jobs get a fail record; replay drops
			// them so a standby never resurrects an abandoned job.
			h.journalRec(journal.KindFail, lj.job.ID, -1, -1, h.now(), nil)
		}
		delete(inflight, lj.job.ID)
		h.dropKey(lj)
		// Drop it from the queue too: a failed job must never reach the
		// scheduler again.
		for i, q := range queue {
			if q == lj {
				queue = append(queue[:i], queue[i+1:]...)
				break
			}
		}
		if lj.conn == nil {
			return // a recovered job with no re-attached client yet
		}
		if err := send(lj.conn, transport.KindError, lj.msgID, ErrorBody{Msg: msg}); err != nil {
			h.Logf("head: error reply failed: %v", err)
		}
	}

	// fail additionally tells the QoS controller an admitted job was lost,
	// so per-tenant accounting and the in-flight session bound stay exact.
	fail := func(lj *liveJob, msg string) {
		if h.qosc != nil {
			h.qosc.Forget(lj.job)
		}
		failJob(lj, msg)
	}

	// release returns a presumed-lost task to the schedulable queue.
	release := func(lj *liveJob, i int) {
		t := &lj.job.Tasks[i]
		t.Assigned = false
		t.PredictedExec = 0
		lj.deadline[i] = time.Time{}
		lj.retryAt[i] = time.Time{}
		if lj.restoredDone != nil {
			// A restored-Done task being released means its retained replay
			// never arrived; it will be re-rendered as a fresh dispatch whose
			// completion must be journaled like any other.
			lj.restoredDone[i] = false
		}
		if lj.job.Remaining == 0 {
			queue = append(queue, lj)
		}
		lj.job.Remaining++
		h.stats.tasksRedispatched.Add(1)
		if h.frac != nil {
			h.frac.noteDone(int(lj.nodes[i]), false)
		}
	}

	// migrate is release's drain-side twin (§5.12): the task returns to the
	// queue as a migration, never as crash redispatch — the counters the
	// autoscaler must keep disjoint from Recovery.
	migrate := func(lj *liveJob, i int) {
		t := &lj.job.Tasks[i]
		t.Assigned = false
		t.PredictedExec = 0
		lj.deadline[i] = time.Time{}
		lj.retryAt[i] = time.Time{}
		if lj.restoredDone != nil {
			lj.restoredDone[i] = false
		}
		if lj.job.Remaining == 0 {
			queue = append(queue, lj)
		}
		lj.job.Remaining++
		h.stats.tasksMigrated.Add(1)
		if h.frac != nil {
			h.frac.noteDone(int(lj.nodes[i]), false)
		}
	}

	// nodeDown declares worker node dead: close its connection, mark it
	// failed, and requeue the unfinished tasks it held (§VI-D).
	nodeDown := func(node core.NodeID) {
		if h.state.Health(node) == core.HealthDown {
			return
		}
		h.Logf("head: node %d down; re-scheduling its tasks", node)
		h.stats.workersDown.Add(1)
		if h.prefc != nil {
			h.prefc.FailNode(node)
		}
		h.journalRec(journal.KindRehome, 0, -1, node, h.now(), nil)
		var rehome core.RehomeReport
		h.trackWaste(func() { rehome = h.state.MarkFailed(node) })
		if rehome.Rehomed > 0 || rehome.Reseeded > 0 {
			h.stats.chunksRehomed.Add(int64(rehome.Rehomed))
			h.stats.chunksReseeded.Add(int64(rehome.Reseeded))
			h.Logf("head: node %d chunks re-homed: %d warm, %d re-seeding rarest-first", node, rehome.Rehomed, rehome.Reseeded)
		}
		h.healthView[node].Store(int32(core.HealthDown))
		if h.OnNodeDown != nil {
			h.OnNodeDown(node)
		}
		h.downAt[node] = time.Now()
		h.senders[node].Close()
		h.mu.Lock()
		conn := h.workers[node]
		h.mu.Unlock()
		if conn != nil { // a recovered head's slot may never have connected
			conn.Close()
		}
		for _, lj := range inflight {
			for i := range lj.job.Tasks {
				t := &lj.job.Tasks[i]
				if t.Assigned && lj.frags[i] == nil && lj.nodes[i] == node {
					release(lj, i)
				}
			}
		}
	}

	// checkHealth scans heartbeat freshness and task deadlines — the
	// periodic half of the fault-tolerance layer.
	checkHealth := func() {
		now := time.Now()
		for k := range h.lastBeat {
			node := core.NodeID(k)
			if h.state.Health(node) == core.HealthDown {
				continue
			}
			silent := now.Sub(h.lastBeat[k])
			switch {
			case h.DownAfter > 0 && silent > h.DownAfter:
				h.Logf("head: node %d silent for %v; declaring it down", k, silent.Round(time.Millisecond))
				nodeDown(node)
			case h.SuspectAfter > 0 && silent > h.SuspectAfter:
				if h.state.Health(node) == core.HealthUp {
					h.Logf("head: node %d silent for %v; suspect", k, silent.Round(time.Millisecond))
					h.setHealth(node, core.HealthSuspect)
				}
			}
		}
		if h.DeadlineFactor <= 0 {
			return
		}
		changed := false
		for _, lj := range inflight {
			for i := range lj.job.Tasks {
				t := &lj.job.Tasks[i]
				if !t.Assigned || lj.frags[i] != nil {
					continue
				}
				if !lj.retryAt[i].IsZero() {
					if now.After(lj.retryAt[i]) {
						release(lj, i)
						changed = true
					}
					continue
				}
				if lj.deadline[i].IsZero() || now.Before(lj.deadline[i]) {
					continue
				}
				// Overdue: presumed lost. Retry with exponential backoff +
				// jitter, or fail the job once the budget is spent.
				lj.deadline[i] = time.Time{}
				lj.retries[i]++
				if lj.retries[i] > h.MaxRetries {
					fail(lj, fmt.Sprintf("task %d lost %d times; giving up", i, lj.retries[i]))
					break
				}
				backoff := h.RetryBackoff << (lj.retries[i] - 1)
				backoff += time.Duration(h.rng.Int63n(int64(backoff)/2 + 1))
				h.Logf("head: task %v overdue on node %d; retry %d after %v",
					lj.job.Tasks[i].String(), lj.nodes[i], lj.retries[i], backoff.Round(time.Millisecond))
				lj.retryAt[i] = now.Add(backoff)
			}
		}
		if changed {
			runSched()
		}
	}

	// admitQoS runs an arriving job through the QoS controller: the token
	// buckets and degradation ladder decide admit/throttle/reject, admitted
	// jobs enter the per-tenant fair queue, and MaxQueue acts as a backstop
	// over the fair queue plus the working window.
	admitQoS := func(lj *liveJob) {
		// Rung 2 of the ladder: shrink the requested image before any task
		// dispatches, trading interactive fidelity for latency.
		if s := h.qosc.ResolutionScale(); s < 1 && lj.job.Class == core.Interactive {
			if w := int(float64(lj.req.Width) * s); w >= 16 {
				lj.req.Width = w
			}
			if ht := int(float64(lj.req.Height) * s); ht >= 16 {
				lj.req.Height = ht
			}
		}
		dec, victim := h.qosc.Admit(lj.job, h.now())
		if victim != nil {
			h.stats.jobsShed.Add(1)
			if vlj := inflight[victim.ID]; vlj != nil {
				failJob(vlj, "superseded by a newer frame")
			}
		}
		switch dec {
		case qos.Rejected:
			h.stats.jobsRejected.Add(1)
			failJob(lj, "rejected by admission control")
			return
		case qos.ShedStale:
			h.stats.jobsShed.Add(1)
			failJob(lj, "shed: session already at its in-flight frame bound")
			return
		case qos.Throttled:
			h.stats.jobsThrottled.Add(1)
		}
		inflight[lj.job.ID] = lj
		h.journalRec(journal.KindAdmit, lj.job.ID, -1, -1, h.now(),
			hastate.AdmitBody{Job: h.jobRecord(lj)})
		if h.MaxQueue > 0 && h.qosc.QueueLen()+len(queue) > h.MaxQueue {
			if lj.job.Class == core.Batch {
				if h.qosc.ShedQueued(lj.job) {
					h.stats.jobsShed.Add(1)
					failJob(lj, "head overloaded: batch queue full")
					return
				}
			} else if old := h.qosc.OldestInteractive(); old != nil && old.ID != lj.job.ID {
				if h.qosc.ShedQueued(old) {
					h.stats.jobsShed.Add(1)
					if vlj := inflight[old.ID]; vlj != nil {
						failJob(vlj, "shed under overload")
					}
				}
			}
		}
		if h.sched.Trigger() == core.OnArrival {
			runSched()
		}
	}

	// admit applies the overload policy and enqueues an arriving job. A
	// non-zero idempotency key is resolved first: a key already in flight
	// re-attaches the reply path (the client reconnected after losing the
	// head or its reply), and a key with a retained result is served from
	// the store — neither renders anything twice.
	admit := func(lj *liveJob) {
		if key := lj.req.Key; key != 0 {
			// One critical section: finalize moves a key from byKey to the
			// retained store atomically, so checking both under the same
			// hold guarantees a duplicate key hits exactly one of them.
			h.mu.Lock()
			if prior := h.byKey[key]; prior != nil {
				prior.conn, prior.msgID = lj.conn, lj.msgID
				h.mu.Unlock()
				h.stats.jobsReattached.Add(1)
				return
			}
			if res, ok := h.retained[key]; ok {
				h.mu.Unlock()
				h.stats.retainedServed.Add(1)
				// Off the dispatcher: a slow client must not stall dispatch.
				go func(conn transport.Conn, msgID uint64) {
					_ = send(conn, transport.KindResult, msgID, res)
				}(lj.conn, lj.msgID)
				return
			}
			h.byKey[key] = lj
			h.mu.Unlock()
		}
		if h.qosc != nil {
			admitQoS(lj)
			return
		}
		if h.MaxQueue > 0 && len(queue) >= h.MaxQueue {
			if lj.job.Class == core.Batch {
				h.stats.jobsShed.Add(1)
				h.stats.jobsFailed.Add(1)
				if err := send(lj.conn, transport.KindError, lj.msgID, ErrorBody{Msg: "head overloaded: batch queue full"}); err != nil {
					h.Logf("head: shed reply failed: %v", err)
				}
				return
			}
			// Interactive frames are always admitted; make room by shedding
			// the oldest still-undispatched interactive frame, if any.
			for i, old := range queue {
				if old.job.Class == core.Interactive && old.job.Remaining == len(old.job.Tasks) {
					queue = append(queue[:i], queue[i+1:]...)
					h.stats.jobsShed.Add(1)
					fail(old, "shed under overload")
					break
				}
			}
		}
		if h.DropStale && lj.job.Class == core.Interactive {
			for i, old := range queue {
				if old.job.Class == core.Interactive &&
					old.job.Action == lj.job.Action &&
					old.job.Remaining == len(old.job.Tasks) {
					queue = append(queue[:i], queue[i+1:]...)
					fail(old, "superseded by a newer frame")
					break
				}
			}
		}
		inflight[lj.job.ID] = lj
		h.journalRec(journal.KindAdmit, lj.job.ID, -1, -1, h.now(),
			hastate.AdmitBody{Job: h.jobRecord(lj)})
		queue = append(queue, lj)
		if h.sched.Trigger() == core.OnArrival {
			runSched()
		}
	}

	// rejoin restores a node's slot with a fresh connection: the §VI-D
	// repair path for a down node, extended (§5.10) with the resync epoch a
	// recovered head runs — the worker re-announces its cache and retained
	// completions, the head adopts the announced truth into its tables, and
	// the ack lists the tasks the head still considers outstanding so the
	// worker replays retained results instead of re-rendering them.
	rejoin := func(ev rejoinEvent) {
		node := core.NodeID(ev.hello.NodeID)
		health := h.state.Health(node)
		if health != core.HealthDown && !ev.hello.Resync {
			h.Logf("head: rejected rejoin for node %d (health %v)", node, health)
			ev.conn.Close()
			return
		}
		h.gens[node]++
		gen := h.gens[node]
		h.mu.Lock()
		prior := h.workers[node]
		h.workers[node] = ev.conn
		h.mu.Unlock()
		if health != core.HealthDown {
			// The slot's previous incarnation was never declared down (a
			// recovered standby's unconnected placeholder, or a worker that
			// reconnected before the silence threshold): retire it.
			h.senders[node].Close()
			if prior != nil && prior != ev.conn {
				prior.Close()
			}
		}
		h.senders[node] = newSender(ev.conn, func(err error) {
			h.workCh <- workerEvent{node: node, gen: gen, err: err}
		})
		h.readWorker(node, gen, ev.conn)
		now := h.now()
		if ev.hello.Resync {
			// Adopt the worker's announced cache wholesale: the head's
			// prediction may be stale (a recovered table, or drift across the
			// disconnect), and the worker holds ground truth.
			entries := make([]cache.Entry, 0, len(ev.hello.Cached))
			for _, cr := range ev.hello.Cached {
				id, ok := h.dsIDs[cr.Dataset]
				if !ok {
					continue
				}
				c := volume.ChunkID{Dataset: id, Index: cr.Index}
				size := h.chunkSize(c)
				if size <= 0 {
					continue
				}
				entries = append(entries, cache.Entry{ID: c, Size: size})
			}
			h.trackWaste(func() { h.state.ResyncCache(node, entries) })
			h.journalRec(journal.KindResync, 0, -1, node, now, hastate.ResyncBody{Entries: entries})
			h.stats.workersResynced.Add(1)
		}
		switch health {
		case core.HealthDown:
			h.state.MarkRepaired(node, now)
			h.journalRec(journal.KindRepair, 0, -1, node, now, nil)
		case core.HealthSuspect:
			h.state.MarkUp(node)
			h.journalRec(journal.KindUp, 0, -1, node, now, nil)
		}
		h.healthView[node].Store(int32(core.HealthUp))
		h.lastBeat[node] = time.Now()
		if !h.downAt[node].IsZero() {
			h.stats.mttrNanos.Add(time.Since(h.downAt[node]).Nanoseconds())
			h.stats.mttrEvents.Add(1)
			h.downAt[node] = time.Time{}
		}
		h.stats.workersRejoined.Add(1)
		h.Logf("head: node %d rejoined (%s, resync=%v)", node, ev.hello.Name, ev.hello.Resync)
		ack := HelloBody{NodeID: int(node), TileSize: h.dfbTile(), Shard: h.ShardID, Slots: h.fracSlots()}
		if ev.hello.Resync {
			for _, lj := range inflight {
				for i := range lj.job.Tasks {
					t := &lj.job.Tasks[i]
					if t.Assigned && lj.frags[i] == nil && lj.nodes[i] == node {
						ack.Outstanding = append(ack.Outstanding, TaskRef{JobID: uint64(lj.job.ID), TaskIndex: i})
					}
				}
			}
		}
		if err := send(ev.conn, transport.KindHello, 0, ack); err != nil {
			h.Logf("head: rejoin ack failed: %v", err)
		}
		// A node just became schedulable; put waiting work on it now rather
		// than at the next tick or arrival.
		runSched()
		// Pre-warmed bring-up: a worker that came back from Down is cold —
		// for the warm-up window the autoscaler's tick copies the hottest
		// predicted chunks onto it through the governor.
		if scaler != nil && health == core.HealthDown {
			scaler.noteBringup(node)
		}
	}

	stop := func() {
		h.mu.Lock()
		workers := append([]transport.Conn(nil), h.workers...)
		h.mu.Unlock()
		for i, w := range workers {
			_ = h.senders[i].Send(transport.Message{Kind: transport.KindShutdown})
			h.senders[i].Close()
			if w != nil {
				w.Close()
			}
		}
		if h.Journal != nil {
			_ = h.Journal.Sync()
		}
	}
	// crash is abrupt death (Crash): connections drop with no shutdown
	// handshake and the journal is NOT synced — workers and clients see a
	// broken pipe, and records still in the batch buffer are lost, exactly
	// as a real head crash would lose them.
	crash := func() {
		h.mu.Lock()
		workers := append([]transport.Conn(nil), h.workers...)
		h.mu.Unlock()
		for i, w := range workers {
			h.senders[i].Close()
			if w != nil {
				w.Close()
			}
		}
	}
	// snapshot serves one snapshot request. With req.next set, the cut is
	// atomic with a journal rotation: the old log is synced and retired,
	// the snapshot built, and the new writer installed before any further
	// event can journal — so every record in the old log is ≤ the cut and
	// every record after it lands in the new log. Without this atomicity a
	// completion racing the cut would appear both in the snapshot's tables
	// and in the log replayed on top of them (a duplicate the replayer
	// rejects).
	snapshot := func(req snapRequest) {
		if req.next != nil && h.Journal != nil {
			_ = h.Journal.Sync()
		}
		snap := h.buildSnapshot(inflight)
		if req.next != nil {
			h.Journal = req.next
		}
		req.reply <- snap
	}

	for {
		// Termination has strict priority. Go's select picks uniformly at
		// random among ready cases, so once Crash or Stop has fired the
		// loop could otherwise keep draining worker completions — each
		// journaling a record "after" the death, which a recovery test
		// would then see as work the dead head somehow did.
		select {
		case <-h.crashCh:
			crash()
			return
		case <-h.stopCh:
			stop()
			return
		default:
		}

		select {
		case <-h.stopCh:
			stop()
			return

		case <-h.crashCh:
			crash()
			return

		case req := <-h.snapCh:
			snapshot(req)

		case ev := <-h.jobCh:
			admit(ev.lj)

		case ev := <-h.rejoinCh:
			rejoin(ev)

		case <-tick:
			runSched()

		case <-check.C:
			checkHealth()
			// Refresh the queue-depth/backlog gauges on the same cadence the
			// autoscaler samples them — cheap, and /metrics reads atomics.
			depth, backlog := len(queue), 0
			for _, lj := range queue {
				if lj.job.Class == core.Batch {
					backlog++
				}
			}
			if h.qosc != nil {
				depth += h.qosc.QueueLen()
				backlog += h.qosc.BatchBacklog()
			}
			h.stats.queueDepth.Store(int64(depth))
			h.stats.batchBacklog.Store(int64(backlog))
			if h.frac != nil {
				h.frac.sample()
			}
			if scaler != nil {
				scaler.tick(inflight, func() int { return len(queue) }, migrate, sendPrefetches, runSched)
			}

		case ev := <-h.workCh:
			if ev.gen != h.gens[ev.node] {
				continue // stale connection incarnation
			}
			if ev.err != nil {
				nodeDown(ev.node)
				continue
			}
			// Any traffic proves liveness; a suspect node is rehabilitated.
			h.lastBeat[ev.node] = time.Now()
			if h.state.Health(ev.node) == core.HealthSuspect {
				h.setHealth(ev.node, core.HealthUp)
			}
			switch ev.msg.Kind {
			case transport.KindHeartbeat:
				// Liveness only; handled above.
			case transport.KindTileFrag:
				var tf TileFragBody
				if err := transport.Decode(ev.msg.Body, &tf); err != nil {
					h.Logf("head: bad tile fragment from node %d: %v", ev.node, err)
					continue
				}
				lj := inflight[core.JobID(tf.JobID)]
				if lj == nil {
					continue // job already failed
				}
				if err := h.tileFrag(lj, ev.node, &tf); err != nil {
					h.Logf("head: tile fragment from node %d: %v", ev.node, err)
					fail(lj, err.Error())
				}
			case transport.KindFragment:
				var frag FragmentBody
				if err := transport.Decode(ev.msg.Body, &frag); err != nil {
					h.Logf("head: bad fragment from node %d: %v", ev.node, err)
					continue
				}
				lj := inflight[core.JobID(frag.JobID)]
				if lj == nil {
					continue // job already failed or delivered (stale duplicate)
				}
				if frag.TaskIndex < 0 || frag.TaskIndex >= len(lj.frags) {
					h.Logf("head: fragment task %d out of range from node %d", frag.TaskIndex, ev.node)
					continue
				}
				// Only the first report per task is folded in: a duplicated
				// delivery (network chaos, a resync replay racing the
				// original) must not double-correct the tables or
				// double-count cache stats.
				if lj.frags[frag.TaskIndex] == nil {
					i := frag.TaskIndex
					t := &lj.job.Tasks[i]
					if !t.Assigned {
						// The task was presumed lost and released for
						// re-dispatch, but the original completed after all:
						// reclaim it before a duplicate is scheduled.
						t.Assigned = true
						lj.job.Remaining--
						if lj.job.Remaining == 0 {
							// Keep the invariant "queued ⟺ Remaining > 0"
							// that release relies on.
							for qi, q := range queue {
								if q == lj {
									queue = append(queue[:qi], queue[qi+1:]...)
									break
								}
							}
						}
					}
					lj.deadline[i] = time.Time{}
					lj.retryAt[i] = time.Time{}
					if lj.restoredDone != nil && lj.restoredDone[i] {
						// The completion was journaled before the crash and
						// the replayed tables already reflect it; this is the
						// worker's retained replay carrying the pixels. Store
						// without correcting or re-journaling.
					} else {
						now := h.now()
						touch, evicted := h.correct(lj, ev.node, &frag, now)
						h.journalRec(journal.KindComplete, lj.job.ID, i, ev.node, now,
							hastate.CompleteBody{
								Hit: frag.Hit, Touch: touch,
								Exec: units.Duration(frag.ExecNanos), Evicted: evicted,
							})
					}
					lj.frags[i] = &frag
					lj.got++
					if h.frac != nil {
						h.frac.noteDone(int(ev.node), true)
					}
				}
				if lj.got == len(lj.frags) {
					delete(inflight, lj.job.ID)
					// The key binding survives until finalize retires it
					// into the retained store, so a re-submission racing
					// the PNG encode re-attaches instead of re-rendering.
					go h.finalize(lj)
				}
			case transport.KindPrefetchDone:
				var pd PrefetchDoneBody
				if err := transport.Decode(ev.msg.Body, &pd); err != nil {
					h.Logf("head: bad prefetch report from node %d: %v", ev.node, err)
					continue
				}
				h.prefetchDone(ev.node, pd)
			case transport.KindError:
				var eb ErrorBody
				_ = transport.Decode(ev.msg.Body, &eb)
				if lj := inflight[core.JobID(ev.msg.ID)]; lj != nil {
					fail(lj, eb.Msg)
				}
			default:
				h.Logf("head: unexpected %v from node %d", ev.msg.Kind, ev.node)
			}
		}
	}
}

// tileFrag folds one per-tile fragment into the job's distributed-
// framebuffer reduction (§5.9). Dispatcher-owned. The reducer is created
// lazily from the first fragment's frame size; fragments are unranked
// (Rank -1), so each tile buffers until its expected count is met and then
// reduces after a stable (Depth, TaskIndex) sort — the exact schedule the
// full-frame path's ByDepth+composite runs, making the output bit-identical.
func (h *Head) tileFrag(lj *liveJob, node core.NodeID, tf *TileFragBody) error {
	if tf.TaskIndex < 0 || tf.TaskIndex >= len(lj.frags) {
		return fmt.Errorf("tile fragment task %d out of range (%d tasks)", tf.TaskIndex, len(lj.frags))
	}
	if lj.red == nil {
		if tf.FrameW <= 0 || tf.FrameH <= 0 {
			return fmt.Errorf("tile fragment with bad frame %dx%d", tf.FrameW, tf.FrameH)
		}
		lj.layout = dfb.NewLayout(tf.FrameW, tf.FrameH, h.dfbTile())
		lj.out = img.New(tf.FrameW, tf.FrameH)
		lj.red = dfb.NewReducer(lj.layout, len(lj.frags), lj.out)
	}
	if lj.out.W != tf.FrameW || lj.out.H != tf.FrameH {
		return fmt.Errorf("tile fragment frame %dx%d does not match job frame %dx%d",
			tf.FrameW, tf.FrameH, lj.out.W, lj.out.H)
	}
	if tf.Tile < 0 || tf.Tile >= lj.layout.NumTiles() {
		return fmt.Errorf("tile %d out of range (layout has %d)", tf.Tile, lj.layout.NumTiles())
	}
	// Dedup by (task, tile): a duplicated delivery must not be reduced
	// twice — the reducer counts fragments per tile, so a duplicate would
	// both overcount toward finalization and double-blend the layer.
	seen := int64(tf.TaskIndex)<<32 | int64(tf.Tile)
	if _, dup := lj.tileSeen[seen]; dup {
		return nil
	}
	if lj.tileSeen == nil {
		lj.tileSeen = make(map[int64]struct{})
	}
	lj.tileSeen[seen] = struct{}{}
	x0, y0, x1, y1 := lj.layout.Bounds(tf.Tile)
	tm, err := decodePixels(x1-x0, y1-y0, tf.Codec, tf.Data)
	if err != nil {
		return fmt.Errorf("decoding tile %d: %w", tf.Tile, err)
	}
	finalized, err := lj.red.Add(dfb.Fragment{
		Tile:  tf.Tile,
		Rank:  -1,
		Depth: tf.Depth,
		Seq:   tf.TaskIndex,
		Pix:   tm.Pix,
	})
	if err != nil {
		return err
	}
	lj.tileFrags++
	h.stats.tileFragments.Add(1)
	h.stats.fragsInFlight.Add(1)
	if h.Trace != nil {
		h.Trace.Add(trace.Event{
			At: h.now(), Kind: trace.TileFrag, Job: lj.job.ID, Class: lj.job.Class,
			Task: tf.TaskIndex, Node: node, Level: tf.Tile,
		})
	}
	if finalized {
		h.stats.tilesFinalized.Add(1)
		if h.Trace != nil {
			h.Trace.Add(trace.Event{
				At: h.now(), Kind: trace.TileDone, Job: lj.job.ID, Class: lj.job.Class,
				Task: tf.TaskIndex, Node: node, Level: tf.Tile,
			})
		}
	}
	return nil
}

// correct feeds a fragment's execution facts back into the tables (§V-B) at
// the given instant, and returns what the journal's completion record needs:
// whether a prefetched residency was settled into a demand hit, and the
// eviction list mapped to scheduler chunk IDs.
func (h *Head) correct(lj *liveJob, node core.NodeID, frag *FragmentBody, now units.Time) (touch bool, evicted []volume.ChunkID) {
	task := &lj.job.Tasks[frag.TaskIndex]
	evicted = make([]volume.ChunkID, 0, len(frag.Evicted))
	for _, ev := range frag.Evicted {
		if id, ok := h.dsIDs[ev.Dataset]; ok {
			evicted = append(evicted, volume.ChunkID{Dataset: id, Index: ev.Index})
		}
	}
	if h.prefc != nil && frag.Hit && h.state.DemandTouchPrefetched(task.Chunk, node) {
		h.stats.prefetchHits.Add(1)
		touch = true
	}
	h.trackWaste(func() {
		h.state.Correct(core.TaskResult{
			Task:      task,
			Node:      node,
			Hit:       frag.Hit,
			Exec:      units.Duration(frag.ExecNanos),
			Predicted: task.PredictedExec,
			Evicted:   evicted,
			Finished:  now,
		}, now)
	})
	if h.prefc != nil {
		// Every completed fragment trains the predictor's trajectory model.
		h.prefc.Observe(lj.job.Action, task.Chunk, now)
	}
	h.stats.evictions.Add(int64(len(frag.Evicted)))
	if frag.Hit {
		h.stats.hits.Add(1)
	} else {
		h.stats.misses.Add(1)
	}
	h.stats.renderNanos.Add(frag.ExecNanos)
	if h.OnCorrect != nil {
		h.OnCorrect(node, task.Chunk, units.Duration(frag.ExecNanos), evicted)
	}
	return touch, evicted
}

// prefetchDone settles a warm the head had in flight on the reporting node,
// syncing the prediction tables with what actually landed (or did not).
// Dispatcher-owned: called only from the event loop.
func (h *Head) prefetchDone(node core.NodeID, pd PrefetchDoneBody) {
	if h.prefc == nil {
		return
	}
	id, ok := h.dsIDs[pd.Dataset]
	if !ok {
		return
	}
	c := volume.ChunkID{Dataset: id, Index: pd.Chunk}
	if !pd.Loaded {
		// Already resident, load failure, or a pin-saturated cache: nothing
		// landed, so release the node for the next plan.
		h.prefc.Cancel(node, c)
		h.stats.prefetchCancelled.Add(1)
		return
	}
	h.prefc.Loaded(node, c)
	h.stats.prefetchLoaded.Add(1)
	h.stats.prefetchNanos.Add(pd.Nanos)
	size := h.chunkSize(c)
	h.state.MarkPrefetched(c, node, size)
	evicted := make([]volume.ChunkID, 0, len(pd.Evicted))
	for _, ev := range pd.Evicted {
		did, ok := h.dsIDs[ev.Dataset]
		if !ok {
			continue
		}
		evc := volume.ChunkID{Dataset: did, Index: ev.Index}
		evicted = append(evicted, evc)
		h.state.Caches[node].Remove(evc)
		h.prefc.NoteEvicted(node, evc)
		if h.state.NotePrefetchEvicted(evc, node) {
			h.stats.prefetchWasted.Add(1)
		}
	}
	h.stats.evictions.Add(int64(len(pd.Evicted)))
	h.journalRec(journal.KindPrefetch, 0, -1, node, h.now(),
		hastate.PrefetchBody{Chunk: c, Size: size, Loaded: true, Evicted: evicted})
}

// trackWaste runs fn and folds any prefetch waste the head tables recorded
// during it (warmed chunks evicted untouched) into the stats mirror.
func (h *Head) trackWaste(fn func()) {
	if h.prefc == nil {
		fn()
		return
	}
	_, _, before := h.state.PrefetchAccuracy()
	fn()
	_, _, after := h.state.PrefetchAccuracy()
	if after > before {
		h.stats.prefetchWasted.Add(after - before)
	}
}

// finalize composites a completed job's fragments and replies to the client.
// It runs outside the dispatcher: the job is complete, so nothing else
// touches it.
func (h *Head) finalize(lj *liveJob) {
	failf := func(err error) {
		if h.qosc != nil {
			h.qosc.Forget(lj.job)
		}
		h.stats.jobsFailed.Add(1)
		h.mu.Lock()
		h.dropKeyLocked(lj) // no retained result: a re-submission re-renders
		conn, msgID := lj.conn, lj.msgID
		h.mu.Unlock()
		if conn != nil {
			_ = send(conn, transport.KindError, msgID, ErrorBody{Msg: err.Error()})
		}
	}
	hits, misses := 0, 0
	for _, f := range lj.frags {
		if f.Hit {
			hits++
		} else {
			misses++
		}
	}
	var final *img.Image
	if h.Compositing == "dfb" {
		// The tile reducer assembled the frame as fragments arrived; the
		// connection's FIFO order guarantees every worker's tiles preceded
		// its execution report, so a complete job means a complete frame.
		h.stats.fragsInFlight.Add(-int64(lj.tileFrags))
		if lj.red == nil || !lj.red.Done() {
			failf(fmt.Errorf("incomplete tile reduction at finalize"))
			return
		}
		final = lj.out
	} else {
		images := make([]*img.Image, len(lj.frags))
		depths := make([]float64, len(lj.frags))
		for i, f := range lj.frags {
			m, err := decodePixels(f.W, f.H, f.Codec, f.Data)
			if err != nil {
				failf(err)
				return
			}
			images[i] = m
			depths[i] = f.Depth
		}
		layers := compositing.ByDepth(images, depths)
		// The head composites with real goroutine parallelism; the swap
		// algorithms in internal/compositing model the distributed exchange
		// the workers would perform and are verified equal to this result.
		final, _ = compositing.Concurrent{}.Composite(layers)
	}

	var buf bytes.Buffer
	if err := final.EncodePNG(&buf); err != nil {
		failf(err)
		return
	}
	res := ResultBody{
		Width:        final.W,
		Height:       final.H,
		PNG:          buf.Bytes(),
		ElapsedNanos: time.Since(lj.wall).Nanoseconds(),
		Hits:         hits,
		Misses:       misses,
	}
	// Retire the key atomically: store the result, drop the in-flight
	// binding, and capture the reply path in one critical section. A
	// re-submission racing the PNG encode either re-attached (finalize sees
	// its conn here) or arrives after and is served from the store — in no
	// interleaving does it miss both and re-render.
	h.mu.Lock()
	if lj.req.Key != 0 {
		h.storeRetainedLocked(lj.req.Key, res)
		h.dropKeyLocked(lj)
	}
	conn, msgID := lj.conn, lj.msgID
	h.mu.Unlock()
	if conn == nil {
		// A recovered job whose client never re-attached: the result waits in
		// the retained store for the key's re-submission.
		h.Logf("head: job %d completed with no client attached; result retained", lj.job.ID)
	} else if err := send(conn, transport.KindResult, msgID, res); err != nil {
		h.Logf("head: result reply failed: %v", err)
	}
	h.stats.frameLat.add(time.Since(lj.wall))
	h.stats.jobsCompleted.Add(1)
	if lj.req.Batch {
		h.stats.batchCompleted.Add(1)
	}
	if h.qosc != nil {
		lat := units.Duration(time.Since(lj.wall))
		if changed, level := h.qosc.Observe(lj.job, lat, h.now()); changed {
			h.Logf("head: qos degradation ladder -> %v", level)
		}
	}
}

// QoSController exposes the running QoS controller for introspection
// (degradation level, per-tenant outcome, fairness). Nil when QoS is off or
// the head has not started.
func (h *Head) QoSController() *qos.Controller { return h.qosc }

// KillWorker forcibly closes the connection to worker k — a failure
// injection hook for tests and demonstrations of §VI-D's fault tolerance.
func (h *Head) KillWorker(k core.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if int(k) < 0 || int(k) >= len(h.workers) {
		return
	}
	h.workers[k].Close()
}

// submit builds a liveJob from a render request and hands it to the
// dispatcher.
func (h *Head) submit(conn transport.Conn, msgID uint64, req RenderBody) error {
	m := h.catalog.Get(req.Dataset)
	if m == nil {
		return fmt.Errorf("unknown dataset %q", req.Dataset)
	}
	if req.Width <= 0 || req.Width > 4096 || req.Height <= 0 || req.Height > 4096 {
		return fmt.Errorf("bad image size %dx%d", req.Width, req.Height)
	}
	h.mu.Lock()
	h.nextJobID++
	id := h.nextJobID
	h.mu.Unlock()

	class := core.Interactive
	if req.Batch {
		class = core.Batch
	}
	dsID := h.dsIDs[req.Dataset]
	job := &core.Job{
		ID:      id,
		Class:   class,
		Action:  core.ActionID(req.Action),
		Tenant:  core.TenantID(req.Tenant),
		Dataset: dsID,
		Issued:  h.now(),
	}
	job.Tasks = make([]core.Task, len(m.Chunks))
	for i, c := range m.Chunks {
		job.Tasks[i] = core.Task{
			Job:   job,
			Index: i,
			Chunk: volume.ChunkID{Dataset: dsID, Index: i},
			Size:  c.SizeBytes,
		}
	}
	job.Remaining = len(job.Tasks)
	h.stats.jobsIssued.Add(1)
	if req.Batch {
		h.stats.batchIssued.Add(1)
	}
	h.jobCh <- clientEvent{lj: &liveJob{
		job:      job,
		req:      req,
		frags:    make([]*FragmentBody, len(job.Tasks)),
		nodes:    make([]core.NodeID, len(job.Tasks)),
		deadline: make([]time.Time, len(job.Tasks)),
		retryAt:  make([]time.Time, len(job.Tasks)),
		retries:  make([]int, len(job.Tasks)),
		conn:     conn,
		msgID:    msgID,
		wall:     time.Now(),
	}}
	return nil
}

// HandleClient serves one client connection: each render request becomes a
// job; results flow back asynchronously with the request's message ID.
func (h *Head) HandleClient(conn transport.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Kind {
		case transport.KindRender:
			var req RenderBody
			if err := transport.Decode(msg.Body, &req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
				continue
			}
			if err := h.submit(conn, msg.ID, req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
			}
		case transport.KindShutdown:
			return
		default:
			_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: "unexpected " + msg.Kind.String()})
		}
	}
}

// ServeClients accepts client connections until the listener closes.
func (h *Head) ServeClients(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go h.HandleClient(conn)
	}
}
