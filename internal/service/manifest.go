// Package service is the live (non-simulated) visualization service: a head
// node with listening and dispatching goroutines, rendering workers that
// cache data bricks and run the software ray caster, and a client API —
// the master-slave architecture of the paper's Fig. 1 with Go channels/TCP
// standing in for MPI. The head drives the same core.Scheduler policies the
// simulator evaluates, so Algorithm 1 schedules real renders here.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vizsched/internal/raycast"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// ChunkInfo describes one on-disk brick of a dataset.
type ChunkInfo struct {
	Index      int
	File       string // relative to the manifest's directory
	Extent     volume.Box
	GridOrigin [3]int
	SizeBytes  units.Bytes
}

// Manifest describes a bricked dataset on disk: the unit the workers load
// chunk-by-chunk, which is what makes the service's I/O genuinely chunked
// instead of monolithic.
type Manifest struct {
	Name   string
	Dims   [3]int
	TF     string // transfer-function preset (raycast.PresetTF)
	Chunks []ChunkInfo

	// dir is where the manifest was loaded from; not serialized.
	dir string
}

// TotalSize returns the summed brick payload size.
func (m *Manifest) TotalSize() units.Bytes {
	var sum units.Bytes
	for _, c := range m.Chunks {
		sum += c.SizeBytes
	}
	return sum
}

// ChunkPath returns the absolute path of chunk i's brick file.
func (m *Manifest) ChunkPath(i int) string {
	return filepath.Join(m.dir, m.Chunks[i].File)
}

// manifestFile is the JSON file name within a dataset directory.
const manifestFile = "manifest.json"

// WriteDataset bricks the grid into nChunks z-slabs (each with a one-voxel
// ghost margin so seam interpolation matches a monolithic render), writes
// them plus a manifest into dir, and returns the manifest.
func WriteDataset(dir, name string, g *volume.Grid, nChunks int, tf string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Name: name, Dims: g.Dims, TF: tf, dir: dir}
	for i, box := range volume.BrickZ(g.Dims, nChunks) {
		brick := raycast.MakeBrick(g, box)
		file := fmt.Sprintf("%s.c%02d.vsvol", name, i)
		if err := volume.SaveGrid(filepath.Join(dir, file), brick.Grid); err != nil {
			return nil, fmt.Errorf("service: writing chunk %d: %w", i, err)
		}
		m.Chunks = append(m.Chunks, ChunkInfo{
			Index:      i,
			File:       file,
			Extent:     box,
			GridOrigin: brick.GridOrigin,
			SizeBytes:  brick.Grid.SizeBytes(),
		})
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), raw, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadManifest reads a dataset manifest from its directory.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, fmt.Errorf("service: parsing manifest in %s: %w", dir, err)
	}
	if m.Name == "" || len(m.Chunks) == 0 {
		return nil, fmt.Errorf("service: manifest in %s is empty", dir)
	}
	m.dir = dir
	return m, nil
}

// LoadBrick reads chunk i's voxels and reassembles the renderable brick.
func (m *Manifest) LoadBrick(i int) (*raycast.Brick, error) {
	if i < 0 || i >= len(m.Chunks) {
		return nil, fmt.Errorf("service: dataset %s has no chunk %d", m.Name, i)
	}
	g, err := volume.LoadGrid(m.ChunkPath(i))
	if err != nil {
		return nil, fmt.Errorf("service: loading %s chunk %d: %w", m.Name, i, err)
	}
	c := m.Chunks[i]
	return &raycast.Brick{
		Grid:       g,
		Extent:     c.Extent,
		GridOrigin: c.GridOrigin,
		FullDims:   m.Dims,
	}, nil
}

// Catalog is a set of datasets available to a service, keyed by name.
type Catalog struct {
	byName map[string]*Manifest
	names  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Manifest)}
}

// Add registers a manifest; duplicate names error.
func (c *Catalog) Add(m *Manifest) error {
	if _, dup := c.byName[m.Name]; dup {
		return fmt.Errorf("service: duplicate dataset %q", m.Name)
	}
	c.byName[m.Name] = m
	c.names = append(c.names, m.Name)
	return nil
}

// LoadDir scans dir for subdirectories containing manifests and adds them.
func (c *Catalog) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := LoadManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a dataset directory
			}
			return err
		}
		if err := c.Add(m); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the named manifest, or nil.
func (c *Catalog) Get(name string) *Manifest { return c.byName[name] }

// Names returns dataset names in registration order.
func (c *Catalog) Names() []string { return c.names }

// Len returns the number of datasets.
func (c *Catalog) Len() int { return len(c.names) }
