package service

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vizsched/internal/img"
)

// Fragment pixel codecs. Volume-rendered fragments are mostly transparent
// (rays that miss the brick), so even byte-oriented DEFLATE shrinks them
// several-fold — the compression leg of Ma & Camp's latency-hiding
// pipeline [14].
const (
	// CodecRaw ships float32 RGBA samples as-is.
	CodecRaw = 0
	// CodecFlate quantizes to 16-bit channels and DEFLATEs.
	CodecFlate = 1
)

// encodePixels serializes an image under the codec.
func encodePixels(m *img.Image, codec int) ([]byte, error) {
	switch codec {
	case CodecRaw:
		buf := make([]byte, 0, len(m.Pix)*16)
		var scratch [4]byte
		for _, p := range m.Pix {
			for _, v := range [4]float32{p.R, p.G, p.B, p.A} {
				binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
				buf = append(buf, scratch[:]...)
			}
		}
		return buf, nil
	case CodecFlate:
		quant := make([]byte, len(m.Pix)*8)
		for i, p := range m.Pix {
			binary.LittleEndian.PutUint16(quant[i*8+0:], quant16(p.R))
			binary.LittleEndian.PutUint16(quant[i*8+2:], quant16(p.G))
			binary.LittleEndian.PutUint16(quant[i*8+4:], quant16(p.B))
			binary.LittleEndian.PutUint16(quant[i*8+6:], quant16(p.A))
		}
		var out bytes.Buffer
		zw, err := flate.NewWriter(&out, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(quant); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	default:
		return nil, fmt.Errorf("service: unknown pixel codec %d", codec)
	}
}

// decodePixels rebuilds an image from its wire form.
func decodePixels(w, h int, codec int, data []byte) (*img.Image, error) {
	m := img.New(w, h)
	switch codec {
	case CodecRaw:
		if len(data) != len(m.Pix)*16 {
			return nil, fmt.Errorf("service: raw payload is %d bytes, want %d", len(data), len(m.Pix)*16)
		}
		for i := range m.Pix {
			m.Pix[i] = img.RGBA{
				R: math.Float32frombits(binary.LittleEndian.Uint32(data[i*16+0:])),
				G: math.Float32frombits(binary.LittleEndian.Uint32(data[i*16+4:])),
				B: math.Float32frombits(binary.LittleEndian.Uint32(data[i*16+8:])),
				A: math.Float32frombits(binary.LittleEndian.Uint32(data[i*16+12:])),
			}
		}
		return m, nil
	case CodecFlate:
		quant, err := io.ReadAll(flate.NewReader(bytes.NewReader(data)))
		if err != nil {
			return nil, fmt.Errorf("service: inflating fragment: %w", err)
		}
		if len(quant) != len(m.Pix)*8 {
			return nil, fmt.Errorf("service: inflated payload is %d bytes, want %d", len(quant), len(m.Pix)*8)
		}
		for i := range m.Pix {
			m.Pix[i] = img.RGBA{
				R: dequant16(binary.LittleEndian.Uint16(quant[i*8+0:])),
				G: dequant16(binary.LittleEndian.Uint16(quant[i*8+2:])),
				B: dequant16(binary.LittleEndian.Uint16(quant[i*8+4:])),
				A: dequant16(binary.LittleEndian.Uint16(quant[i*8+6:])),
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("service: unknown pixel codec %d", codec)
	}
}

func quant16(v float32) uint16 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return math.MaxUint16
	}
	return uint16(v*math.MaxUint16 + 0.5)
}

func dequant16(q uint16) float32 {
	return float32(q) / math.MaxUint16
}
