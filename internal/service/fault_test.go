package service

import (
	"strings"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// TestKillWorkerMidJobRejoin is the full §VI-D cycle on the live service: a
// worker is killed while a burst of frames has fragments in flight, every
// job still completes via requeue on the survivors, the worker rejoins its
// old slot, receives new work, and the recovery report shows a repaired
// node (MTTR > 0) with no jobs lost.
func TestKillWorkerMidJobRejoin(t *testing.T) {
	cat := testCatalog(t, 3)
	cl, err := StartCluster(core.NewLocalityScheduler(2*units.Millisecond), cat, 3, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	// Launch a burst so fragments are in flight when the worker dies.
	const frames = 8
	outs := make([]<-chan Outcome, frames)
	for f := 0; f < frames; f++ {
		ch, err := client.RenderAsync(RenderBody{
			Dataset: "supernova", Angle: 0.1 * float64(f), Dist: 2.4,
			Width: 32, Height: 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[f] = ch
	}
	cl.Head.KillWorker(1)

	for f, ch := range outs {
		select {
		case out := <-ch:
			if out.Err != nil {
				t.Fatalf("frame %d failed: %v", f, out.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("frame %d hung after worker kill", f)
		}
	}
	waitHealth(t, cl.Head, 1, core.HealthDown)

	// Rejoin with a cold cache and verify the head routes work to it again.
	if err := cl.RejoinWorker(1); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, cl.Head, 1, core.HealthUp)

	// Render until the rejoined worker has executed something. Its cache is
	// cold, so the first task it receives is a miss.
	deadline := time.Now().Add(20 * time.Second)
	for cl.workers[1].TasksExecuted() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rejoined worker never received a task")
		}
		if _, err := client.Render(RenderBody{
			Dataset: "plume", Dist: 2.4, Width: 32, Height: 32,
		}); err != nil {
			t.Fatal(err)
		}
	}

	rec := cl.Head.Recovery()
	if rec.WorkersDown != 1 || rec.WorkersRejoined != 1 {
		t.Errorf("down/rejoined = %d/%d, want 1/1", rec.WorkersDown, rec.WorkersRejoined)
	}
	if rec.MTTR <= 0 {
		t.Errorf("MTTR = %v, want > 0", rec.MTTR)
	}
	if rec.JobsLost != 0 {
		t.Errorf("jobs lost = %d, want 0", rec.JobsLost)
	}
}

// waitHealth polls the head's atomic health mirror for a state.
func waitHealth(t *testing.T, h *Head, k core.NodeID, want core.Health) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.WorkerHealth(k) != want {
		if time.Now().After(deadline) {
			t.Fatalf("node %d health = %v, want %v", k, h.WorkerHealth(k), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blackHoleWorker handshakes like a worker but swallows every task without
// replying and never sends a heartbeat — the silent-but-connected failure
// mode deadlines exist for.
func blackHoleWorker(conn transport.Conn) {
	_ = send(conn, transport.KindHello, 0, HelloBody{Name: "blackhole", MemQuota: int64(64 * units.MB)})
	for {
		if _, err := conn.Recv(); err != nil {
			return
		}
	}
}

// TestDeadlineRedispatch drives a task into a silent worker: the missed
// heartbeats demote the node to suspect (so it gets no new work), the
// dispatch deadline declares the task lost, and after backoff it re-runs on
// the healthy worker. The render completes and the re-dispatch is counted.
func TestDeadlineRedispatch(t *testing.T) {
	cat := testCatalog(t, 4)
	head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	head.MinDeadline = 100 * time.Millisecond
	head.DeadlineFactor = 2
	head.RetryBackoff = 5 * time.Millisecond
	head.CheckInterval = 10 * time.Millisecond
	head.SuspectAfter = 50 * time.Millisecond
	head.DownAfter = time.Minute // keep it connected: deadlines, not nodeDown, must recover

	// Worker 0 is real; worker 1 is the black hole.
	w := NewWorker("real", cat, 64*units.MB)
	w.Logf = head.Logf
	w.Heartbeat = 10 * time.Millisecond
	realHead, realWorker := transport.Pipe()
	go func() { _ = w.Serve(realWorker) }()
	if err := head.AddWorker(realHead); err != nil {
		t.Fatal(err)
	}
	bhHead, bhWorker := transport.Pipe()
	go blackHoleWorker(bhWorker)
	if err := head.AddWorker(bhHead); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	clientSide, headSide := transport.Pipe()
	go head.HandleClient(headSide)
	client := NewClient(clientSide)
	defer client.Close()

	res, err := client.Render(RenderBody{
		Dataset: "supernova", Dist: 2.4, Width: 32, Height: 32,
	})
	if err != nil {
		t.Fatalf("render with a silent worker: %v", err)
	}
	if res.Image == nil {
		t.Fatal("no image")
	}
	rec := head.Recovery()
	if rec.TasksRedispatched == 0 {
		t.Error("no deadline re-dispatch was recorded")
	}
	if rec.JobsLost != 0 {
		t.Errorf("jobs lost = %d, want 0", rec.JobsLost)
	}
	if got := head.WorkerHealth(1); got != core.HealthSuspect {
		t.Errorf("silent node health = %v, want suspect", got)
	}
}

// TestHeartbeatSuspectRejoinsOnTraffic exercises the up → suspect → up half
// of the state machine: a worker whose beacons stop is suspected, and any
// traffic from it rehabilitates it without a rejoin.
func TestHeartbeatSuspectRejoinsOnTraffic(t *testing.T) {
	cat := testCatalog(t, 2)
	head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	head.CheckInterval = 5 * time.Millisecond
	head.SuspectAfter = 30 * time.Millisecond
	head.DownAfter = time.Minute

	// A hand-driven worker: hello, then heartbeats only when poked.
	hw, ww := transport.Pipe()
	if err := send(ww, transport.KindHello, 0, HelloBody{Name: "manual", MemQuota: int64(64 * units.MB)}); err != nil {
		t.Fatal(err)
	}
	go func() { // drain the head's sends (hello ack, tasks, shutdown)
		for {
			if _, err := ww.Recv(); err != nil {
				return
			}
		}
	}()
	if err := head.AddWorker(hw); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	waitHealth(t, head, 0, core.HealthSuspect)
	if err := ww.Send(transport.Message{Kind: transport.KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, head, 0, core.HealthUp)
}

// TestOverloadShedFailsStaleInteractive drives the bounded queue: with
// MaxQueue = 1 and a slow scheduler tick, a burst of interactive frames
// sheds the oldest undispatched frames (each superseded request errors) while
// the newest still renders, and a batch job arriving at the bound is
// rejected outright.
func TestOverloadShedFailsStaleInteractive(t *testing.T) {
	cat := testCatalog(t, 2)
	head := NewHead(core.NewLocalityScheduler(200*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	head.MaxQueue = 1

	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = head.Logf
	hw, ww := transport.Pipe()
	go func() { _ = w.Serve(ww) }()
	if err := head.AddWorker(hw); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	clientSide, headSide := transport.Pipe()
	go head.HandleClient(headSide)
	client := NewClient(clientSide)
	defer client.Close()

	var chans []<-chan Outcome
	for f := 0; f < 3; f++ {
		ch, err := client.RenderAsync(RenderBody{
			Dataset: "plume", Angle: 0.2 * float64(f), Dist: 2.4,
			Width: 24, Height: 24, Action: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		// Give the dispatcher time to admit each frame before the next, so
		// the arrival order is deterministic.
		time.Sleep(10 * time.Millisecond)
	}
	batchCh, err := client.RenderAsync(RenderBody{
		Dataset: "plume", Dist: 2.4, Width: 24, Height: 24, Batch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := <-batchCh; out.Err == nil || !strings.Contains(out.Err.Error(), "overloaded") {
		t.Errorf("batch at full queue: err = %v, want overloaded rejection", out.Err)
	}

	var completed, shed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for f, ch := range chans {
		f, ch := f, ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case out := <-ch:
				mu.Lock()
				defer mu.Unlock()
				if out.Err == nil {
					completed++
				} else if strings.Contains(out.Err.Error(), "shed") {
					shed++
				} else {
					t.Errorf("frame %d: unexpected error %v", f, out.Err)
				}
			case <-time.After(30 * time.Second):
				t.Errorf("frame %d hung", f)
			}
		}()
	}
	wg.Wait()
	if completed < 1 {
		t.Error("no interactive frame survived the shedding")
	}
	if shed != 2 {
		t.Errorf("shed = %d, want 2", shed)
	}
	if got := head.Stats().JobsShed; got != 3 { // 2 interactive + 1 batch
		t.Errorf("JobsShed = %d, want 3", got)
	}
}

// TestWorkerRejoinRejectedWhileUp: a rejoin hello for a live slot must be
// refused, not allowed to hijack the connection.
func TestWorkerRejoinRejectedWhileUp(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(2*units.Millisecond), cat, 2, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	headSide, workerSide := transport.Pipe()
	go func() {
		_ = send(workerSide, transport.KindHello, 0,
			HelloBody{Name: "imposter", MemQuota: int64(64 * units.MB), NodeID: 1, Rejoin: true})
	}()
	if err := cl.Head.Rejoin(headSide); err != nil {
		t.Fatalf("Rejoin returned transport error: %v", err)
	}
	// The dispatcher must close the imposter's connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := workerSide.Recv(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("imposter connection was not closed")
		}
	}
	if cl.Head.WorkerHealth(1) != core.HealthUp {
		t.Errorf("node 1 health = %v after rejected rejoin", cl.Head.WorkerHealth(1))
	}
}
