package service

import (
	"fmt"
	"sync"

	"vizsched/internal/core"
	"vizsched/internal/shard"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// MultiHead is the sharded control plane (§5.11): N independent Heads, each
// a full dispatcher over its own worker slice, coordinated only through a
// shared chunk directory. Sessions are routed to shards by consistent hash
// with tenant affinity — a tenant's (or, for the default tenant, an
// action's) requests always land on the same shard, so per-session ordering
// and per-tenant QoS state never span shards. No dispatch decision takes a
// cross-shard lock: the directory's striped read paths are the only shared
// state, and they carry facts (residency, estimates), not authority.
//
// Workers are placed round-robin across shards at registration; the hello
// ack tells each worker its shard. Client connections may be served by any
// shard — MultiHead.HandleClient routes each request to its owner, and
// replies multiplex safely over the shared connection because transport
// sends are frame-atomic.
type MultiHead struct {
	heads []*Head
	ring  *shard.Ring
	dir   *shard.Directory

	// globals[s][local] is the global node index of shard s's local slot;
	// filled during AddWorker (single-threaded, pre-Start), read by the
	// shards' dispatcher hooks after Start.
	globals [][]int

	mu      sync.Mutex
	next    int // round-robin placement cursor
	total   int // global worker count
	started bool
}

// NewMultiHead builds a sharded control plane over the catalog. Each shard
// gets its own scheduler from newSched — scheduler tables are shard-local by
// design; only the directory is shared. Configuration applied through
// Configure before AddWorker/Start reaches every shard.
func NewMultiHead(shards int, newSched func() core.Scheduler, catalog *Catalog, memQuota units.Bytes, model core.CostModel) (*MultiHead, error) {
	if shards < 1 {
		return nil, fmt.Errorf("service: need at least one shard, got %d", shards)
	}
	if newSched == nil {
		return nil, fmt.Errorf("service: NewMultiHead needs a scheduler factory")
	}
	m := &MultiHead{
		ring:    shard.NewRing(shards),
		globals: make([][]int, shards),
	}
	k := 1
	for i := 0; i < shards; i++ {
		h := NewHead(newSched(), catalog, memQuota, model)
		h.ShardID = i
		m.heads = append(m.heads, h)
		if h.Replicas > k {
			k = h.Replicas
		}
	}
	m.dir = shard.NewDirectory(shards, k)
	for i, h := range m.heads {
		si := i
		h.EstimateSource = m.dir.Estimate
		h.OnCorrect = func(node core.NodeID, chunk volume.ChunkID, exec units.Duration, evicted []volume.ChunkID) {
			g := m.globals[si][int(node)]
			m.dir.PublishEstimate(chunk, exec)
			m.dir.PublishResident(chunk, g, true)
			for _, ev := range evicted {
				m.dir.PublishResident(ev, g, false)
			}
		}
		h.OnNodeDown = func(node core.NodeID) {
			m.dir.DropNode(m.globals[si][int(node)])
		}
	}
	return m, nil
}

// Configure runs fn on every shard head — the sharded analogue of the
// configure hook in StartClusterWith. Must be called before AddWorker/Start.
func (m *MultiHead) Configure(fn func(*Head)) {
	for _, h := range m.heads {
		fn(h)
	}
}

// Shards returns the shard count.
func (m *MultiHead) Shards() int { return len(m.heads) }

// Shard returns shard i's head, for introspection and tests.
func (m *MultiHead) Shard(i int) *Head { return m.heads[i] }

// Ring exposes the session→shard hash ring.
func (m *MultiHead) Ring() *shard.Ring { return m.ring }

// Directory exposes the shared chunk directory.
func (m *MultiHead) Directory() *shard.Directory { return m.dir }

// Workers returns the global worker count across all shards.
func (m *MultiHead) Workers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// AddWorker registers a connected worker with the next shard round-robin.
// It must be called before Start. Returns the shard the worker landed on.
func (m *MultiHead) AddWorker(conn transport.Conn) (int, error) {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return 0, fmt.Errorf("service: AddWorker after Start")
	}
	s := m.next % len(m.heads)
	m.next++
	g := m.total
	m.total++
	m.globals[s] = append(m.globals[s], g)
	m.mu.Unlock()
	if err := m.heads[s].AddWorker(conn); err != nil {
		return s, err
	}
	return s, nil
}

// Rejoin routes a reconnecting worker to the shard that owns its slot. The
// hello ack of the original registration told the worker its shard index
// (HelloBody.Shard); the worker echoes it when redialing, so routing needs
// no shared lookup table — decode once here, then hand the connection to
// the owning head's ordinary rejoin path. Valid after Start; safe to call
// from any goroutine.
func (m *MultiHead) Rejoin(conn transport.Conn) error {
	msg, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("service: rejoin hello: %w", err)
	}
	if msg.Kind != transport.KindHello {
		conn.Close()
		return fmt.Errorf("service: expected hello, got %v", msg.Kind)
	}
	var hello HelloBody
	if err := transport.Decode(msg.Body, &hello); err != nil {
		conn.Close()
		return err
	}
	if hello.Shard < 0 || hello.Shard >= len(m.heads) {
		conn.Close()
		return fmt.Errorf("service: rejoin hello names shard %d of %d", hello.Shard, len(m.heads))
	}
	return m.heads[hello.Shard].rejoinDecoded(conn, hello)
}

// Start launches every shard's dispatcher. Every shard needs at least one
// worker — with fewer workers than shards the plane cannot start.
func (m *MultiHead) Start() error {
	m.mu.Lock()
	m.started = true
	total := m.total
	m.mu.Unlock()
	if total < len(m.heads) {
		return fmt.Errorf("service: %d shards need at least %d workers, have %d", len(m.heads), len(m.heads), total)
	}
	for i, h := range m.heads {
		if err := h.Start(); err != nil {
			for _, prev := range m.heads[:i] {
				prev.Stop()
			}
			return fmt.Errorf("service: starting shard %d: %w", i, err)
		}
	}
	return nil
}

// Stop shuts every shard down and waits for their dispatchers to exit.
func (m *MultiHead) Stop() {
	for _, h := range m.heads {
		h.Stop()
	}
}

// Owner returns the shard head that owns the request's session: tenant
// affinity when a tenant is named, action affinity for the default tenant.
func (m *MultiHead) Owner(req RenderBody) *Head {
	return m.heads[m.ring.Owner(core.TenantID(req.Tenant), core.ActionID(req.Action))]
}

// HandleClient serves one client connection against the whole plane: each
// render request is routed to its owning shard, and replies flow back over
// the shared connection under the request's message ID.
func (m *MultiHead) HandleClient(conn transport.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Kind {
		case transport.KindRender:
			var req RenderBody
			if err := transport.Decode(msg.Body, &req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
				continue
			}
			if err := m.Owner(req).submit(conn, msg.ID, req); err != nil {
				_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()})
			}
		case transport.KindShutdown:
			return
		default:
			_ = send(conn, transport.KindError, msg.ID, ErrorBody{Msg: "unexpected " + msg.Kind.String()})
		}
	}
}

// ServeClients accepts client connections until the listener closes.
func (m *MultiHead) ServeClients(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go m.HandleClient(conn)
	}
}

// MultiCluster is the in-process form of a sharded deployment: a MultiHead
// plus its workers wired over channel transports, mirroring Cluster.
type MultiCluster struct {
	MH      *MultiHead
	workers []*Worker
	wg      sync.WaitGroup
}

// StartMultiCluster builds and starts an in-process sharded service:
// `shards` heads over `nodes` workers placed round-robin. configure (if
// non-nil) runs on every shard head before workers attach.
func StartMultiCluster(shards int, newSched func() core.Scheduler, catalog *Catalog, nodes int, quota units.Bytes, configure func(*Head)) (*MultiCluster, error) {
	if nodes < shards {
		return nil, fmt.Errorf("service: %d shards need at least %d workers", shards, shards)
	}
	mh, err := NewMultiHead(shards, newSched, catalog, quota, core.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	mh.Configure(func(h *Head) {
		h.Logf = func(string, ...any) {} // quiet by default; callers can reassign
	})
	if configure != nil {
		mh.Configure(configure)
	}
	mc := &MultiCluster{MH: mh}
	for i := 0; i < nodes; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), catalog, quota)
		w.Logf = mh.heads[0].Logf
		headSide, workerSide := transport.Pipe()
		mc.workers = append(mc.workers, w)
		mc.wg.Add(1)
		go func() {
			defer mc.wg.Done()
			_ = w.Serve(workerSide)
		}()
		if _, err := mh.AddWorker(headSide); err != nil {
			return nil, err
		}
	}
	if err := mh.Start(); err != nil {
		return nil, err
	}
	return mc, nil
}

// locate maps a global worker index to its (shard, local slot) under the
// round-robin placement AddWorker uses.
func (m *MultiHead) locate(g int) (shardIdx, local int) {
	return g % len(m.heads), g / len(m.heads)
}

// KillWorker forcibly closes global worker g's connection — fault injection
// for tests, routed to the owning shard's dispatcher.
func (mc *MultiCluster) KillWorker(g int) {
	s, local := mc.MH.locate(g)
	mc.MH.heads[s].KillWorker(core.NodeID(local))
}

// RejoinWorker restarts global worker g as a fresh process (cold cache) and
// reconnects it through MultiHead.Rejoin: the worker echoes the shard index
// its original registration ack assigned, and the plane routes the
// connection to that shard without consulting any shared table. The owning
// shard must currently consider the slot down.
func (mc *MultiCluster) RejoinWorker(g int) error {
	if g < 0 || g >= len(mc.workers) {
		return fmt.Errorf("service: no such worker %d", g)
	}
	old := mc.workers[g]
	w := NewWorker(old.Name, old.catalog, old.quota)
	w.Logf = mc.MH.heads[0].Logf
	// A restarted process learns its shard the way an operator would tell
	// it: from the slot it is reclaiming.
	w.shard.Store(int64(old.Shard()))
	_, local := mc.MH.locate(g)
	headSide, workerSide := transport.Pipe()
	mc.workers[g] = w
	mc.wg.Add(1)
	go func() {
		defer mc.wg.Done()
		_ = w.Rejoin(workerSide, local)
	}()
	return mc.MH.Rejoin(headSide)
}

// Worker returns the cluster's global worker i, for tests that inspect
// worker-side state.
func (mc *MultiCluster) Worker(i int) *Worker {
	if i < 0 || i >= len(mc.workers) {
		return nil
	}
	return mc.workers[i]
}

// Connect returns a client attached to the sharded plane.
func (mc *MultiCluster) Connect() *Client {
	clientSide, headSide := transport.Pipe()
	go mc.MH.HandleClient(headSide)
	return NewClient(clientSide)
}

// Stop shuts down every shard and waits for the workers to exit.
func (mc *MultiCluster) Stop() {
	mc.MH.Stop()
	mc.wg.Wait()
}
