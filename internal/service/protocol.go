package service

import (
	"vizsched/internal/transport"
)

// HelloBody introduces a worker to the head. The head replies with its own
// HelloBody carrying the NodeID the worker is registered under, which the
// worker presents (with Rejoin set) when reconnecting after a failure.
type HelloBody struct {
	Name     string
	MemQuota int64 // bytes the worker will dedicate to its brick cache
	// NodeID is the slot this worker occupies. In the head's ack it is the
	// assignment; in a rejoin hello it is the identity being reclaimed.
	NodeID int
	// Rejoin marks a reconnection after a failure: the head restores the
	// node's slot (cold cache) instead of registering a new worker.
	Rejoin bool
	// TileSize, in the head's ack, switches the worker to distributed-
	// framebuffer compositing (§5.9): render results are pushed as per-tile
	// TileFragBody messages of this tile edge, with the FragmentBody reduced
	// to a pixel-free execution report. Zero keeps full-frame fragments.
	TileSize int
	// Shard, in the head's ack, is the shard index of the head this worker
	// registered with (§5.11) — zero for a standalone head. The worker echoes
	// it in rejoin/resync hellos so MultiHead.Rejoin can route the connection
	// to the owning shard without consulting any shared state (-1 if the
	// worker never completed a registration).
	Shard int
	// Slots, in the head's ack, is the fractional-capacity slot count K
	// (§5.13): the worker executes up to K tasks concurrently, letting the
	// operating system time-slice the node the way the simulator's share
	// model prices it. Zero or one keeps the serial FIFO executor exactly.
	Slots int
	// Resync marks a reconnection to a recovered (or restarted) head
	// (§5.10): alongside Rejoin, the worker re-announces its full state so
	// the head can reconcile tables rebuilt from snapshot+journal with
	// ground truth. Cached lists the worker's actual brick residency
	// (MRU-first); Completed lists recently finished tasks whose results the
	// worker still retains and can replay without re-rendering.
	Resync    bool
	Cached    []ChunkRef
	Completed []TaskRef
	// Outstanding, in the head's ack to a resync hello, lists the tasks the
	// head still considers in-flight on this node. The worker replays
	// retained results for any it already finished — the completed-but-
	// unacked reconciliation — and re-executes nothing else unasked.
	Outstanding []TaskRef
}

// TaskRef names one task on the wire.
type TaskRef struct {
	JobID     uint64
	TaskIndex int
}

// RenderBody is a client's rendering request: a camera over a named dataset.
type RenderBody struct {
	Dataset string
	// Camera orbit parameters (radians, radians, distance in unit-cube
	// multiples) — the interaction parameters a viewer would send.
	Angle, Elevation, Dist float64
	Width, Height          int
	// Mode selects the render mode (raycast.ModeComposite, ModeMIP,
	// ModeIso) and IsoValue its threshold.
	Mode     int
	IsoValue float32
	// Batch marks the request deferrable (animation frame) rather than
	// interactive.
	Batch bool
	// Action groups requests of one user session for scheduling fairness.
	Action int
	// Tenant identifies the customer the request bills to; the QoS layer
	// meters admission and queueing per tenant. Zero is the default tenant.
	Tenant int
	// Key, when non-zero, makes the request idempotent: the head remembers
	// the job under this client-chosen key, and a re-submission after a
	// head failover (or a lost reply) re-attaches to the in-flight job or
	// returns the retained result instead of rendering again. Zero opts out.
	Key uint64
}

// TaskBody assigns one chunk of a render job to a worker.
type TaskBody struct {
	JobID     uint64
	TaskIndex int
	Dataset   string
	Chunk     int
	Render    RenderBody
}

// ChunkRef names a chunk on the wire.
type ChunkRef struct {
	Dataset string
	Index   int
}

// FragmentBody returns one rendered fragment plus execution facts the head
// uses to correct its tables.
type FragmentBody struct {
	JobID     uint64
	TaskIndex int
	W, H      int
	// Codec selects the pixel encoding of Data (CodecRaw or CodecFlate).
	Codec     int
	Data      []byte
	Depth     float64
	Hit       bool
	ExecNanos int64
	// Evicted lists bricks the worker's cache dropped to make room.
	Evicted []ChunkRef
}

// TileFragBody is one task's contribution to one tile of the distributed
// framebuffer (§5.9). A worker running with a non-zero hello TileSize sends
// every tile of its rendered layer as a TileFragBody — the head reduces them
// into the output frame as they arrive — followed by a FragmentBody with nil
// Data carrying the execution facts.
type TileFragBody struct {
	JobID     uint64
	TaskIndex int
	// Tile indexes the dfb.Layout over FrameW×FrameH with the agreed tile
	// edge; the head derives the tile's pixel rectangle from the same layout.
	Tile           int
	FrameW, FrameH int
	// Depth orders this task's layer among the tile's fragments (ties break
	// by TaskIndex, matching the full-frame path's stable ByDepth sort).
	Depth float64
	// Codec/Data carry the tile-local pixel run (see ExtractTile), encoded
	// exactly like a FragmentBody payload.
	Codec int
	Data  []byte
}

// PrefetchBody asks a worker to warm one chunk into its cache ahead of
// predicted demand (§5.8). The worker admits it at the cache's cold end —
// never displacing recently-demanded bricks — and reports the outcome with
// a PrefetchDoneBody.
type PrefetchBody struct {
	Dataset string
	Chunk   int
}

// PrefetchDoneBody reports one warm's outcome. Resident means the chunk was
// already cached (nothing moved); Loaded means it was read from disk and
// admitted cold. Both false means the load failed or the cache refused the
// cold insert, and the warm was dropped.
type PrefetchDoneBody struct {
	Dataset  string
	Chunk    int
	Resident bool
	Loaded   bool
	// Nanos is the wall time the load took, for operator visibility.
	Nanos int64
	// Evicted lists bricks the cold insert displaced.
	Evicted []ChunkRef
}

// ResultBody returns the final composited image to the client.
type ResultBody struct {
	Width, Height int
	PNG           []byte
	ElapsedNanos  int64
	Hits, Misses  int
}

// ErrorBody reports a failed request.
type ErrorBody struct {
	Msg string
}

// send encodes body and ships it with the given kind and id.
func send(c transport.Conn, kind transport.Kind, id uint64, body any) error {
	raw, err := transport.Encode(body)
	if err != nil {
		return err
	}
	return c.Send(transport.Message{Kind: kind, ID: id, Body: raw})
}
