package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
)

// headStats holds the service's operational counters; all fields are
// atomics because the dispatcher writes while HTTP handlers read.
type headStats struct {
	jobsIssued     atomic.Int64
	jobsCompleted  atomic.Int64
	jobsFailed     atomic.Int64
	batchIssued    atomic.Int64
	batchCompleted atomic.Int64
	hits           atomic.Int64
	misses         atomic.Int64
	renderNanos    atomic.Int64
	workersDown    atomic.Int64

	// Fault-tolerance counters (§VI-D): deadline-triggered re-dispatches,
	// overload sheds, rejoins, and the accumulated down-time behind MTTR.
	tasksRedispatched atomic.Int64
	jobsShed          atomic.Int64
	workersRejoined   atomic.Int64
	mttrNanos         atomic.Int64
	mttrEvents        atomic.Int64

	// Failover counters (§5.10): workers that re-announced state to a
	// recovered head, clients re-attached to in-flight jobs by idempotency
	// key, and re-submissions served from the retained-result store.
	workersResynced atomic.Int64
	jobsReattached  atomic.Int64
	retainedServed  atomic.Int64

	// Replication counters (§5.6): chunks whose home moved to a warm
	// surviving replica when a worker died, and chunks left to rarest-first
	// re-seeding because no replica survived.
	chunksRehomed  atomic.Int64
	chunksReseeded atomic.Int64

	// QoS counters (§5.7): admission-control verdicts beyond plain admit.
	jobsThrottled atomic.Int64
	jobsRejected  atomic.Int64

	// Cache and prefetch counters (§5.8): evictions the workers report
	// (demand loads and cold warms alike), and the warming pipeline's
	// lifecycle from directive to demand hit.
	evictions         atomic.Int64
	prefetchIssued    atomic.Int64
	prefetchLoaded    atomic.Int64
	prefetchCancelled atomic.Int64
	prefetchHits      atomic.Int64
	prefetchWasted    atomic.Int64
	prefetchBytes     atomic.Int64
	prefetchNanos     atomic.Int64

	// Distributed-framebuffer counters (§5.9): tiles whose reduction
	// completed, tile fragments folded in, and the gauge of fragments
	// reduced into frames not yet delivered.
	tilesFinalized atomic.Int64
	tileFragments  atomic.Int64
	fragsInFlight  atomic.Int64

	// Queue gauges: every job waiting for a node (the scheduler's working
	// window plus the QoS fair queues) and its batch-class subset. The
	// dispatcher refreshes them on its health-check tick.
	queueDepth   atomic.Int64
	batchBacklog atomic.Int64

	// Autoscale counters (§5.12) — deliberately disjoint from the crash
	// counters above: a graceful drain increments these and never
	// workersDown, tasksRedispatched, the MTTR accumulators, or
	// chunksReseeded.
	desiredWorkers  atomic.Int64
	drains          atomic.Int64
	drainsCompleted atomic.Int64
	tasksMigrated   atomic.Int64
	drainRehomed    atomic.Int64
	drainOrphaned   atomic.Int64
	orphanWarms     atomic.Int64
	bringupWarms    atomic.Int64

	// frameLat samples end-to-end frame latencies for the quantile view.
	frameLat latRing
}

// latRing keeps the most recent frame latencies in a fixed ring for cheap
// streaming quantiles — enough history for a monitoring scrape, bounded
// memory forever.
type latRing struct {
	mu   sync.Mutex
	buf  [512]time.Duration
	next int
	n    int
}

func (r *latRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantiles returns nearest-rank p50/p95/p99 over the retained window, or
// zeros when nothing has completed yet.
func (r *latRing) quantiles() (p50, p95, p99 time.Duration) {
	r.mu.Lock()
	sorted := append([]time.Duration(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p int) time.Duration {
		i := (len(sorted)*p + 99) / 100
		if i < 1 {
			i = 1
		}
		return sorted[i-1]
	}
	return rank(50), rank(95), rank(99)
}

// StatsSnapshot is a point-in-time view of the service counters.
type StatsSnapshot struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	JobsIssued     int64   `json:"jobs_issued"`
	JobsCompleted  int64   `json:"jobs_completed"`
	JobsFailed     int64   `json:"jobs_failed"`
	BatchIssued    int64   `json:"batch_issued"`
	BatchCompleted int64   `json:"batch_completed"`
	ChunkHits      int64   `json:"chunk_hits"`
	ChunkMisses    int64   `json:"chunk_misses"`
	HitRatePct     float64 `json:"hit_rate_pct"`
	MeanTaskMillis float64 `json:"mean_task_ms"`
	Workers        int     `json:"workers"`
	WorkersDown    int64   `json:"workers_down"`

	TasksRedispatched int64   `json:"tasks_redispatched"`
	JobsShed          int64   `json:"jobs_shed"`
	WorkersRejoined   int64   `json:"workers_rejoined"`
	WorkersResynced   int64   `json:"workers_resynced"`
	JobsReattached    int64   `json:"jobs_reattached"`
	RetainedServed    int64   `json:"retained_served"`
	MTTRSeconds       float64 `json:"mttr_seconds"`

	ChunksRehomed  int64 `json:"chunks_rehomed"`
	ChunksReseeded int64 `json:"chunks_reseeded"`

	// QueueDepth is every job waiting for a node; BatchBacklog is its
	// batch-class subset — the autoscaler's primary pressure signals,
	// exported whether or not autoscaling is on.
	QueueDepth   int64 `json:"queue_depth"`
	BatchBacklog int64 `json:"batch_backlog"`

	// CacheEvictions counts bricks worker caches dropped to make room —
	// with ChunkHits/ChunkMisses, the full cache-efficacy picture.
	CacheEvictions int64 `json:"cache_evictions"`

	// QoS is present only when the head runs with a QoS config.
	QoS *QoSSnapshot `json:"qos,omitempty"`
	// Prefetch is present only when the head runs with a prefetch config.
	Prefetch *PrefetchSnapshot `json:"prefetch,omitempty"`
	// Compositing is present only when the head runs the distributed
	// framebuffer (Compositing = "dfb").
	Compositing *CompositingSnapshot `json:"compositing,omitempty"`
	// Autoscale is present only when the head runs with an autoscale config.
	Autoscale *AutoscaleSnapshot `json:"autoscale,omitempty"`
	// FracShare is present only when the head runs with a fractional-capacity
	// config (§5.13).
	FracShare *FracShareSnapshot `json:"fracshare,omitempty"`
}

// AutoscaleSnapshot is the elastic-fleet layer's slice of a stats snapshot
// (§5.12): the fleet shape the policy wants versus what it has, and the
// graceful-drain lifecycle counters — all disjoint from the crash counters.
type AutoscaleSnapshot struct {
	DesiredWorkers  int64 `json:"desired_workers"`
	ActiveWorkers   int   `json:"active_workers"`
	DrainingWorkers int   `json:"draining_workers"`
	Drains          int64 `json:"drains"`
	DrainsCompleted int64 `json:"drains_completed"`
	TasksMigrated   int64 `json:"tasks_migrated"`
	DrainRehomed    int64 `json:"drain_rehomed"`
	DrainOrphaned   int64 `json:"drain_orphaned"`
	OrphanWarms     int64 `json:"orphan_warms"`
	BringupWarms    int64 `json:"bringup_warms"`
}

// CompositingSnapshot is the distributed framebuffer's slice of a stats
// snapshot (§5.9): the tile pipeline's throughput counters, the fragments
// currently reduced into undelivered frames, and end-to-end frame latency
// quantiles over the recent completion window.
type CompositingSnapshot struct {
	Algorithm      string  `json:"algorithm"`
	TileSize       int     `json:"tile_size"`
	TilesFinalized int64   `json:"tiles_finalized"`
	TileFragments  int64   `json:"tile_fragments"`
	FragsInFlight  int64   `json:"fragments_in_flight"`
	FrameP50Millis float64 `json:"frame_p50_ms"`
	FrameP95Millis float64 `json:"frame_p95_ms"`
	FrameP99Millis float64 `json:"frame_p99_ms"`
}

// PrefetchSnapshot is the predictive-warming layer's slice of a stats
// snapshot (§5.8): how many warms were issued, how many landed, and how many
// of those were touched by demand before eviction.
type PrefetchSnapshot struct {
	Issued         int64   `json:"issued"`
	Loaded         int64   `json:"loaded"`
	Cancelled      int64   `json:"cancelled"`
	Hits           int64   `json:"hits"`
	Wasted         int64   `json:"wasted"`
	BytesMoved     int64   `json:"bytes_moved"`
	HitRatePct     float64 `json:"hit_rate_pct"`
	MeanLoadMillis float64 `json:"mean_load_ms"`
}

// QoSSnapshot is the QoS subsystem's slice of a stats snapshot: the
// degradation ladder position, aggregate admission verdicts, Jain's fairness
// index over per-tenant completions, and per-tenant accounting.
type QoSSnapshot struct {
	Level         int     `json:"level"`
	LevelName     string  `json:"level_name"`
	MaxLevel      int     `json:"max_level"`
	LevelChanges  int64   `json:"level_changes"`
	JobsThrottled int64   `json:"jobs_throttled"`
	JobsRejected  int64   `json:"jobs_rejected"`
	Jain          float64 `json:"jain_fairness"`
	// SLOMillis is the interactive SLO the headroom gauges measure against;
	// MinHeadroomPct is the worst tenant's SLO headroom (100 × (1 − p95/SLO),
	// clamped to [0,100]) — the autoscaler's scale-up trigger.
	SLOMillis      float64             `json:"slo_ms"`
	MinHeadroomPct float64             `json:"min_headroom_pct"`
	Tenants        []TenantQoSSnapshot `json:"tenants,omitempty"`
}

// TenantQoSSnapshot is one tenant's admission and latency accounting.
type TenantQoSSnapshot struct {
	Tenant    int     `json:"tenant"`
	Issued    int64   `json:"issued"`
	Admitted  int64   `json:"admitted"`
	Throttled int64   `json:"throttled"`
	Rejected  int64   `json:"rejected"`
	Shed      int64   `json:"shed"`
	Completed int64   `json:"completed"`
	Failed    int64   `json:"failed"`
	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	// HeadroomPct is this tenant's SLO headroom, 100 × (1 − p95/SLO) clamped
	// to [0,100]; 100 with no observations yet.
	HeadroomPct float64 `json:"headroom_pct"`
}

// RecoveryReport summarizes the service's fault-tolerance activity: how
// often workers went down, how fast they came back (mean time to repair),
// how much work had to be re-dispatched, and how many jobs were lost to
// clients despite it.
type RecoveryReport struct {
	WorkersDown       int64
	WorkersRejoined   int64
	TasksRedispatched int64
	JobsLost          int64
	JobsShed          int64
	// WorkersResynced / JobsReattached / RetainedServed count the head-
	// failover machinery's activity (§5.10): workers that re-announced state
	// to a recovered head, clients re-attached to still-running jobs by
	// idempotency key, and re-submissions served from retained results.
	WorkersResynced int64
	JobsReattached  int64
	RetainedServed  int64
	// ChunksRehomed / ChunksReseeded count the replication layer's response
	// to worker deaths: homes moved warm to a surviving replica versus
	// dropped for rarest-first re-seeding.
	ChunksRehomed  int64
	ChunksReseeded int64
	// MTTR is the mean wall time from a node being declared down to its
	// rejoin; zero if no node has rejoined yet.
	MTTR time.Duration
}

// String renders the report for operators and the failover example.
func (r RecoveryReport) String() string {
	return fmt.Sprintf(
		"recovery: workers down=%d rejoined=%d, tasks re-dispatched=%d, jobs lost=%d (shed=%d), chunks re-homed=%d (re-seeded=%d), MTTR=%v",
		r.WorkersDown, r.WorkersRejoined, r.TasksRedispatched, r.JobsLost, r.JobsShed,
		r.ChunksRehomed, r.ChunksReseeded,
		r.MTTR.Round(time.Millisecond))
}

// Recovery returns the fault-tolerance counters as a report. JobsLost counts
// every job that failed back to a client, whatever the cause — under a
// clean recovery it stays zero.
func (h *Head) Recovery() RecoveryReport {
	r := RecoveryReport{
		WorkersDown:       h.stats.workersDown.Load(),
		WorkersRejoined:   h.stats.workersRejoined.Load(),
		TasksRedispatched: h.stats.tasksRedispatched.Load(),
		JobsLost:          h.stats.jobsFailed.Load(),
		JobsShed:          h.stats.jobsShed.Load(),
		WorkersResynced:   h.stats.workersResynced.Load(),
		JobsReattached:    h.stats.jobsReattached.Load(),
		RetainedServed:    h.stats.retainedServed.Load(),
		ChunksRehomed:     h.stats.chunksRehomed.Load(),
		ChunksReseeded:    h.stats.chunksReseeded.Load(),
	}
	if n := h.stats.mttrEvents.Load(); n > 0 {
		r.MTTR = time.Duration(h.stats.mttrNanos.Load() / n)
	}
	return r
}

// Stats returns the service counters. Valid after Start.
func (h *Head) Stats() StatsSnapshot {
	s := StatsSnapshot{
		JobsIssued:     h.stats.jobsIssued.Load(),
		JobsCompleted:  h.stats.jobsCompleted.Load(),
		JobsFailed:     h.stats.jobsFailed.Load(),
		BatchIssued:    h.stats.batchIssued.Load(),
		BatchCompleted: h.stats.batchCompleted.Load(),
		ChunkHits:      h.stats.hits.Load(),
		ChunkMisses:    h.stats.misses.Load(),
		Workers:        len(h.workers),
		WorkersDown:    h.stats.workersDown.Load(),

		TasksRedispatched: h.stats.tasksRedispatched.Load(),
		JobsShed:          h.stats.jobsShed.Load(),
		WorkersRejoined:   h.stats.workersRejoined.Load(),
		WorkersResynced:   h.stats.workersResynced.Load(),
		JobsReattached:    h.stats.jobsReattached.Load(),
		RetainedServed:    h.stats.retainedServed.Load(),
		ChunksRehomed:     h.stats.chunksRehomed.Load(),
		ChunksReseeded:    h.stats.chunksReseeded.Load(),
		CacheEvictions:    h.stats.evictions.Load(),

		QueueDepth:   h.stats.queueDepth.Load(),
		BatchBacklog: h.stats.batchBacklog.Load(),
	}
	if n := h.stats.mttrEvents.Load(); n > 0 {
		s.MTTRSeconds = time.Duration(h.stats.mttrNanos.Load() / n).Seconds()
	}
	if h.started {
		s.UptimeSeconds = time.Since(h.start).Seconds()
	}
	if total := s.ChunkHits + s.ChunkMisses; total > 0 {
		s.HitRatePct = 100 * float64(s.ChunkHits) / float64(total)
		s.MeanTaskMillis = float64(h.stats.renderNanos.Load()) / float64(total) / 1e6
	}
	if h.qosc != nil {
		o := h.qosc.Outcome()
		level := h.qosc.Level()
		slo := h.qosc.SLO()
		q := &QoSSnapshot{
			Level:          int(level),
			LevelName:      level.String(),
			MaxLevel:       o.MaxLevel,
			LevelChanges:   o.LevelChanges,
			JobsThrottled:  h.stats.jobsThrottled.Load(),
			JobsRejected:   h.stats.jobsRejected.Load(),
			Jain:           o.Jain(),
			SLOMillis:      slo.Seconds() * 1e3,
			MinHeadroomPct: 100,
		}
		for _, t := range o.Tenants {
			headroom := 100 * autoscale.Headroom(t.Latency.P95, slo)
			if headroom < q.MinHeadroomPct {
				q.MinHeadroomPct = headroom
			}
			q.Tenants = append(q.Tenants, TenantQoSSnapshot{
				Tenant:      t.Tenant,
				Issued:      t.Issued,
				Admitted:    t.Admitted,
				Throttled:   t.Throttled,
				Rejected:    t.Rejected,
				Shed:        t.ShedTotal,
				Completed:   t.Completed,
				Failed:      t.Failed,
				P50Millis:   t.Latency.P50.Seconds() * 1e3,
				P95Millis:   t.Latency.P95.Seconds() * 1e3,
				P99Millis:   t.Latency.P99.Seconds() * 1e3,
				HeadroomPct: headroom,
			})
		}
		s.QoS = q
	}
	if h.prefc != nil {
		p := &PrefetchSnapshot{
			Issued:     h.stats.prefetchIssued.Load(),
			Loaded:     h.stats.prefetchLoaded.Load(),
			Cancelled:  h.stats.prefetchCancelled.Load(),
			Hits:       h.stats.prefetchHits.Load(),
			Wasted:     h.stats.prefetchWasted.Load(),
			BytesMoved: h.stats.prefetchBytes.Load(),
		}
		if p.Loaded > 0 {
			p.HitRatePct = 100 * float64(p.Hits) / float64(p.Loaded)
			p.MeanLoadMillis = float64(h.stats.prefetchNanos.Load()) / float64(p.Loaded) / 1e6
		}
		s.Prefetch = p
	}
	if h.Compositing == "dfb" {
		p50, p95, p99 := h.stats.frameLat.quantiles()
		s.Compositing = &CompositingSnapshot{
			Algorithm:      h.Compositing,
			TileSize:       h.dfbTile(),
			TilesFinalized: h.stats.tilesFinalized.Load(),
			TileFragments:  h.stats.tileFragments.Load(),
			FragsInFlight:  h.stats.fragsInFlight.Load(),
			FrameP50Millis: p50.Seconds() * 1e3,
			FrameP95Millis: p95.Seconds() * 1e3,
			FrameP99Millis: p99.Seconds() * 1e3,
		}
	}
	if h.Autoscale != nil {
		a := &AutoscaleSnapshot{
			DesiredWorkers:  h.stats.desiredWorkers.Load(),
			Drains:          h.stats.drains.Load(),
			DrainsCompleted: h.stats.drainsCompleted.Load(),
			TasksMigrated:   h.stats.tasksMigrated.Load(),
			DrainRehomed:    h.stats.drainRehomed.Load(),
			DrainOrphaned:   h.stats.drainOrphaned.Load(),
			OrphanWarms:     h.stats.orphanWarms.Load(),
			BringupWarms:    h.stats.bringupWarms.Load(),
		}
		for k := range h.healthView {
			switch core.Health(h.healthView[k].Load()) {
			case core.HealthUp, core.HealthSuspect:
				a.ActiveWorkers++
			case core.HealthDraining:
				a.DrainingWorkers++
			}
		}
		s.Autoscale = a
	}
	if h.frac != nil {
		s.FracShare = h.frac.snapshot()
	}
	return s
}

// StatsHandler serves the counters as JSON (GET /) and in Prometheus text
// exposition format (GET /metrics) — what an operator points monitoring at:
//
//	mux := http.NewServeMux()
//	mux.Handle("/", head.StatsHandler())
//	go http.ListenAndServe(":8080", mux)
func (h *Head) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := h.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		write := func(name string, v float64) {
			_, _ = w.Write([]byte("vizsched_" + name + " "))
			_, _ = w.Write(appendFloat(nil, v))
			_, _ = w.Write([]byte("\n"))
		}
		writeL := func(name, labels string, v float64) {
			_, _ = w.Write([]byte("vizsched_" + name + "{" + labels + "} "))
			_, _ = w.Write(appendFloat(nil, v))
			_, _ = w.Write([]byte("\n"))
		}
		write("jobs_issued_total", float64(s.JobsIssued))
		write("jobs_completed_total", float64(s.JobsCompleted))
		write("jobs_failed_total", float64(s.JobsFailed))
		write("batch_issued_total", float64(s.BatchIssued))
		write("batch_completed_total", float64(s.BatchCompleted))
		write("chunk_hits_total", float64(s.ChunkHits))
		write("chunk_misses_total", float64(s.ChunkMisses))
		write("workers", float64(s.Workers))
		write("workers_down", float64(s.WorkersDown))
		write("tasks_redispatched_total", float64(s.TasksRedispatched))
		write("jobs_shed_total", float64(s.JobsShed))
		write("workers_rejoined_total", float64(s.WorkersRejoined))
		write("workers_resynced_total", float64(s.WorkersResynced))
		write("jobs_reattached_total", float64(s.JobsReattached))
		write("retained_served_total", float64(s.RetainedServed))
		write("chunks_rehomed_total", float64(s.ChunksRehomed))
		write("chunks_reseeded_total", float64(s.ChunksReseeded))
		write("cache_evictions_total", float64(s.CacheEvictions))
		write("queue_depth", float64(s.QueueDepth))
		write("batch_backlog", float64(s.BatchBacklog))
		write("mttr_seconds", s.MTTRSeconds)
		write("uptime_seconds", s.UptimeSeconds)
		if q := s.QoS; q != nil {
			write("jobs_throttled_total", float64(q.JobsThrottled))
			write("jobs_rejected_total", float64(q.JobsRejected))
			write("qos_level", float64(q.Level))
			write("qos_max_level", float64(q.MaxLevel))
			write("qos_level_changes_total", float64(q.LevelChanges))
			write("fairness_jain", q.Jain)
			write("qos_slo_seconds", q.SLOMillis/1e3)
			write("qos_min_headroom_pct", q.MinHeadroomPct)
			for _, t := range q.Tenants {
				l := fmt.Sprintf("tenant=%q", fmt.Sprint(t.Tenant))
				writeL("tenant_jobs_issued_total", l, float64(t.Issued))
				writeL("tenant_jobs_admitted_total", l, float64(t.Admitted))
				writeL("tenant_jobs_throttled_total", l, float64(t.Throttled))
				writeL("tenant_jobs_rejected_total", l, float64(t.Rejected))
				writeL("tenant_jobs_shed_total", l, float64(t.Shed))
				writeL("tenant_jobs_completed_total", l, float64(t.Completed))
				writeL("tenant_jobs_failed_total", l, float64(t.Failed))
				for _, pq := range []struct {
					q string
					v float64
				}{
					{"0.5", t.P50Millis}, {"0.95", t.P95Millis}, {"0.99", t.P99Millis},
				} {
					writeL("tenant_latency_seconds", l+",quantile=\""+pq.q+"\"", pq.v/1e3)
				}
				writeL("tenant_slo_headroom_pct", l, t.HeadroomPct)
			}
		}
		if p := s.Prefetch; p != nil {
			write("prefetch_issued_total", float64(p.Issued))
			write("prefetch_loaded_total", float64(p.Loaded))
			write("prefetch_cancelled_total", float64(p.Cancelled))
			write("prefetch_hits_total", float64(p.Hits))
			write("prefetch_wasted_total", float64(p.Wasted))
			write("prefetch_bytes_moved_total", float64(p.BytesMoved))
			write("prefetch_hit_rate_pct", p.HitRatePct)
		}
		if c := s.Compositing; c != nil {
			write("dfb_tile_size", float64(c.TileSize))
			write("dfb_tiles_finalized_total", float64(c.TilesFinalized))
			write("dfb_tile_fragments_total", float64(c.TileFragments))
			write("dfb_fragments_in_flight", float64(c.FragsInFlight))
			for _, pq := range []struct {
				q string
				v float64
			}{
				{"0.5", c.FrameP50Millis}, {"0.95", c.FrameP95Millis}, {"0.99", c.FrameP99Millis},
			} {
				_, _ = w.Write([]byte("vizsched_frame_latency_seconds{quantile=\"" + pq.q + "\"} "))
				_, _ = w.Write(appendFloat(nil, pq.v/1e3))
				_, _ = w.Write([]byte("\n"))
			}
		}
		if a := s.Autoscale; a != nil {
			write("autoscale_desired_workers", float64(a.DesiredWorkers))
			write("autoscale_active_workers", float64(a.ActiveWorkers))
			write("autoscale_draining_workers", float64(a.DrainingWorkers))
			write("autoscale_drains_total", float64(a.Drains))
			write("autoscale_drains_completed_total", float64(a.DrainsCompleted))
			write("autoscale_tasks_migrated_total", float64(a.TasksMigrated))
			write("autoscale_drain_rehomed_total", float64(a.DrainRehomed))
			write("autoscale_drain_orphaned_total", float64(a.DrainOrphaned))
			write("autoscale_orphan_warms_total", float64(a.OrphanWarms))
			write("autoscale_bringup_warms_total", float64(a.BringupWarms))
		}
		if f := s.FracShare; f != nil {
			write("fracshare_slots", float64(f.Slots))
			write("fracshare_tasks_dispatched_total", float64(f.TasksDispatched))
			write("fracshare_tasks_completed_total", float64(f.TasksCompleted))
			write("fracshare_mean_busy_pct", f.MeanBusyPct)
			for k := range f.NodeBusyPct {
				l := fmt.Sprintf("node=%q", fmt.Sprint(k))
				writeL("fracshare_node_busy_pct", l, f.NodeBusyPct[k])
				writeL("fracshare_node_in_flight", l, float64(f.NodeInFlight[k]))
			}
			for _, pq := range []struct {
				q string
				v float64
			}{
				{"0.5", f.BusyP50Pct}, {"0.95", f.BusyP95Pct}, {"0.99", f.BusyP99Pct},
			} {
				writeL("fracshare_busy_pct", "quantile=\""+pq.q+"\"", pq.v)
			}
		}
	})
	return mux
}

// appendFloat formats v compactly for the exposition format.
func appendFloat(dst []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return appendInt(dst, int64(v))
	}
	return []byte(jsonNumber(v))
}

func appendInt(dst []byte, v int64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}

func jsonNumber(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
