package service

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
	"time"
)

// headStats holds the service's operational counters; all fields are
// atomics because the dispatcher writes while HTTP handlers read.
type headStats struct {
	jobsIssued     atomic.Int64
	jobsCompleted  atomic.Int64
	jobsFailed     atomic.Int64
	batchIssued    atomic.Int64
	batchCompleted atomic.Int64
	hits           atomic.Int64
	misses         atomic.Int64
	renderNanos    atomic.Int64
	workersDown    atomic.Int64
}

// StatsSnapshot is a point-in-time view of the service counters.
type StatsSnapshot struct {
	UptimeSeconds  float64 `json:"uptime_seconds"`
	JobsIssued     int64   `json:"jobs_issued"`
	JobsCompleted  int64   `json:"jobs_completed"`
	JobsFailed     int64   `json:"jobs_failed"`
	BatchIssued    int64   `json:"batch_issued"`
	BatchCompleted int64   `json:"batch_completed"`
	ChunkHits      int64   `json:"chunk_hits"`
	ChunkMisses    int64   `json:"chunk_misses"`
	HitRatePct     float64 `json:"hit_rate_pct"`
	MeanTaskMillis float64 `json:"mean_task_ms"`
	Workers        int     `json:"workers"`
	WorkersDown    int64   `json:"workers_down"`
}

// Stats returns the service counters. Valid after Start.
func (h *Head) Stats() StatsSnapshot {
	s := StatsSnapshot{
		JobsIssued:     h.stats.jobsIssued.Load(),
		JobsCompleted:  h.stats.jobsCompleted.Load(),
		JobsFailed:     h.stats.jobsFailed.Load(),
		BatchIssued:    h.stats.batchIssued.Load(),
		BatchCompleted: h.stats.batchCompleted.Load(),
		ChunkHits:      h.stats.hits.Load(),
		ChunkMisses:    h.stats.misses.Load(),
		Workers:        len(h.workers),
		WorkersDown:    h.stats.workersDown.Load(),
	}
	if h.started {
		s.UptimeSeconds = time.Since(h.start).Seconds()
	}
	if total := s.ChunkHits + s.ChunkMisses; total > 0 {
		s.HitRatePct = 100 * float64(s.ChunkHits) / float64(total)
		s.MeanTaskMillis = float64(h.stats.renderNanos.Load()) / float64(total) / 1e6
	}
	return s
}

// StatsHandler serves the counters as JSON (GET /) and in Prometheus text
// exposition format (GET /metrics) — what an operator points monitoring at:
//
//	mux := http.NewServeMux()
//	mux.Handle("/", head.StatsHandler())
//	go http.ListenAndServe(":8080", mux)
func (h *Head) StatsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Stats())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s := h.Stats()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		write := func(name string, v float64) {
			_, _ = w.Write([]byte("vizsched_" + name + " "))
			_, _ = w.Write(appendFloat(nil, v))
			_, _ = w.Write([]byte("\n"))
		}
		write("jobs_issued_total", float64(s.JobsIssued))
		write("jobs_completed_total", float64(s.JobsCompleted))
		write("jobs_failed_total", float64(s.JobsFailed))
		write("batch_issued_total", float64(s.BatchIssued))
		write("batch_completed_total", float64(s.BatchCompleted))
		write("chunk_hits_total", float64(s.ChunkHits))
		write("chunk_misses_total", float64(s.ChunkMisses))
		write("workers", float64(s.Workers))
		write("workers_down", float64(s.WorkersDown))
		write("uptime_seconds", s.UptimeSeconds)
	})
	return mux
}

// appendFloat formats v compactly for the exposition format.
func appendFloat(dst []byte, v float64) []byte {
	if v == float64(int64(v)) {
		return appendInt(dst, int64(v))
	}
	return []byte(jsonNumber(v))
}

func appendInt(dst []byte, v int64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, tmp[i:]...)
}

func jsonNumber(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
