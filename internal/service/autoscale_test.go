package service

import (
	"testing"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/prefetch"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// TestAutoscaleLiveDrainIsNeverACrash runs the elastic loop on the live
// service: after a burst of renders the fleet goes quiet, the policy drains
// a node, and the exit must look nothing like a failure — no down workers,
// no re-dispatches, no MTTR sample, no re-seeded chunks, no lost jobs. The
// drained slot then rejoins through the ordinary bring-up path without
// contributing an MTTR sample, because a voluntary exit never set downAt.
func TestAutoscaleLiveDrainIsNeverACrash(t *testing.T) {
	cat := testCatalog(t, 3)
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 3, 64*units.MB,
		func(h *Head) {
			h.CheckInterval = 10 * time.Millisecond
			h.Prefetch = prefetch.DefaultConfig()
			h.Autoscale = &autoscale.Config{
				Interval: 20 * units.Millisecond,
				MinNodes: 1,
				HoldDown: 3,
				Cooldown: 3600 * units.Second, // one drain per test
				MaxDrain: 10 * units.Second,
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	for f := 0; f < 6; f++ {
		if _, err := client.Render(RenderBody{
			Dataset: "supernova", Angle: 0.1 * float64(f), Dist: 2.4,
			Width: 32, Height: 32,
		}); err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
	}

	// Quiet fleet: the policy should drain exactly one node.
	deadline := time.Now().Add(30 * time.Second)
	for cl.Head.Stats().Autoscale.DrainsCompleted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no drain completed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := cl.Head.Stats()
	if st.WorkersDown != 0 {
		t.Errorf("WorkersDown = %d after a drain, want 0", st.WorkersDown)
	}
	if st.TasksRedispatched != 0 {
		t.Errorf("TasksRedispatched = %d after a drain, want 0", st.TasksRedispatched)
	}
	if st.MTTRSeconds != 0 {
		t.Errorf("MTTRSeconds = %v after a drain, want 0", st.MTTRSeconds)
	}
	if st.ChunksReseeded != 0 {
		t.Errorf("ChunksReseeded = %d after a drain, want 0", st.ChunksReseeded)
	}
	if st.JobsFailed != 0 {
		t.Errorf("JobsFailed = %d, want 0", st.JobsFailed)
	}
	victim := core.NodeID(-1)
	for k := 0; k < 3; k++ {
		if cl.Head.WorkerHealth(core.NodeID(k)) == core.HealthDown {
			if victim >= 0 {
				t.Fatalf("nodes %d and %d both retired; one drain should retire one node", victim, k)
			}
			victim = core.NodeID(k)
		}
	}
	if victim < 0 {
		t.Fatal("no node retired after the drain completed")
	}

	// The shrunken fleet still serves.
	if _, err := client.Render(RenderBody{
		Dataset: "plume", Dist: 2.4, Width: 32, Height: 32,
	}); err != nil {
		t.Fatalf("render on shrunken fleet: %v", err)
	}

	// Bring-up rides the ordinary rejoin path; a voluntary exit left no
	// downAt, so the rejoin must not produce an MTTR sample.
	if err := cl.RejoinWorker(victim); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, cl.Head, victim, core.HealthUp)
	rec := cl.Head.Recovery()
	if rec.WorkersRejoined != 1 {
		t.Errorf("WorkersRejoined = %d, want 1", rec.WorkersRejoined)
	}
	if rec.MTTR != 0 {
		t.Errorf("MTTR = %v after drain + rejoin, want 0 (a drain is not a repair)", rec.MTTR)
	}
	if rec.WorkersDown != 0 {
		t.Errorf("WorkersDown = %d, want 0", rec.WorkersDown)
	}
}

// TestMultiHeadShardAwareRejoin closes the PR-8 gap: a worker that dies on
// shard 1 of a sharded plane redials the plane (not a specific head), and
// the shard index echoed from its registration ack routes the rejoin to the
// owning dispatcher. A hello naming a shard that does not exist is refused.
func TestMultiHeadShardAwareRejoin(t *testing.T) {
	cat := testCatalog(t, 2)
	mc, err := StartMultiCluster(2,
		func() core.Scheduler { return core.NewLocalityScheduler(2 * units.Millisecond) },
		cat, 4, 64*units.MB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Stop()

	// Global worker 3 sits on shard 1, local slot 1. Its hello ack told it so.
	deadline := time.Now().Add(10 * time.Second)
	for mc.Worker(3).Shard() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker 3 shard = %d, want 1 from the hello ack", mc.Worker(3).Shard())
		}
		time.Sleep(2 * time.Millisecond)
	}

	mc.KillWorker(3)
	waitHealth(t, mc.MH.Shard(1), 1, core.HealthDown)

	if err := mc.RejoinWorker(3); err != nil {
		t.Fatal(err)
	}
	waitHealth(t, mc.MH.Shard(1), 1, core.HealthUp)
	if got := mc.MH.Shard(1).Recovery().WorkersRejoined; got != 1 {
		t.Errorf("shard 1 rejoins = %d, want 1", got)
	}
	if got := mc.MH.Shard(0).Recovery().WorkersRejoined; got != 0 {
		t.Errorf("shard 0 rejoins = %d, want 0 — rejoin landed on the wrong shard", got)
	}

	// A rejoin hello naming a shard outside the plane is refused.
	headSide, workerSide := transport.Pipe()
	go func() {
		_ = send(workerSide, transport.KindHello, 0,
			HelloBody{Name: "lost", MemQuota: int64(64 * units.MB), NodeID: 0, Rejoin: true, Shard: 5})
	}()
	if err := mc.MH.Rejoin(headSide); err == nil {
		t.Error("Rejoin accepted a hello naming shard 5 of 2")
	}
}
