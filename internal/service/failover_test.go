package service

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/hastate"
	"vizsched/internal/journal"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// quietHead silences a head's diagnostics for tests.
func quietHead(h *Head) { h.Logf = func(string, ...any) {} }

// TestHeadFailoverJournalRecovery is the §5.10 tentpole end to end on the
// live service: a journaling head serves a burst of keyed jobs, a snapshot
// taken at genesis plus the journal replays to tables deep-equal to the
// running head's, the head crashes abruptly, a standby resumes from the
// replayed state, the workers resync onto it, and every client re-submission
// is served byte-identical to the original run without a single re-render.
func TestHeadFailoverJournalRecovery(t *testing.T) {
	cat := testCatalog(t, 3)
	model := core.DefaultCostModel()
	var logBuf bytes.Buffer
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 2, 64*units.MB, func(h *Head) {
		h.Journal = journal.NewWriter(&logBuf, 1) // every record durable
		h.SuspectAfter = 5 * time.Second
		h.DownAfter = 20 * time.Second
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Stop() }()

	// Genesis snapshot before any job: the journal from here covers the
	// head's entire mutation history.
	genesis, err := cl.Head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	client := cl.Connect()
	defer client.Close()
	const frames = 4
	reqs := make([]RenderBody, frames)
	pngs := make([][]byte, frames)
	for f := 0; f < frames; f++ {
		ds := "supernova"
		if f%2 == 1 {
			ds = "plume"
		}
		reqs[f] = RenderBody{
			Dataset: ds, Angle: 0.3 * float64(f), Dist: 2.4,
			Width: 32, Height: 32, Key: uint64(f + 1),
		}
		res, err := client.Render(reqs[f])
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		pngs[f] = res.PNG
	}
	tasksBefore := cl.Worker(0).TasksExecuted() + cl.Worker(1).TasksExecuted()
	if tasksBefore != frames*3 {
		t.Fatalf("tasks executed = %d, want %d", tasksBefore, frames*3)
	}

	// The replayed tables must be deep-equal to the live head's, mutation
	// for mutation.
	liveSnap, err := cl.Head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.Head.Crash()
	recs, err := journal.ReadAll(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := hastate.Replay(genesis, recs, model)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !reflect.DeepEqual(st.Tables.Dump(), liveSnap.Tables) {
		t.Fatal("replayed tables differ from the crashed head's")
	}
	if len(st.Jobs) != frames {
		t.Fatalf("recovered jobs = %d, want %d", len(st.Jobs), frames)
	}
	for _, rj := range st.Jobs {
		if !rj.Rec.Done() {
			t.Fatalf("job %d not fully done in recovered state", rj.Rec.ID)
		}
	}

	// Warm-standby takeover: fresh scheduler, replayed state, worker resync.
	standby := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, model)
	quietHead(standby)
	var standbyLog bytes.Buffer
	standby.Journal = journal.NewWriter(&standbyLog, 1)
	standby.SuspectAfter = 5 * time.Second
	standby.DownAfter = 20 * time.Second
	if err := standby.StartRecovered(st); err != nil {
		t.Fatal(err)
	}
	if err := cl.ResyncTo(standby); err != nil {
		t.Fatal(err)
	}

	// Every re-submitted key must deliver the original bytes with zero
	// re-rendering: the workers' retained replays complete the recovered
	// jobs, and the client is served by re-attach or from the retained store.
	client2 := cl.Connect()
	defer client2.Close()
	for f := 0; f < frames; f++ {
		res, err := client2.Render(reqs[f])
		if err != nil {
			t.Fatalf("re-submitted frame %d: %v", f, err)
		}
		if !bytes.Equal(res.PNG, pngs[f]) {
			t.Errorf("re-submitted frame %d PNG differs from the original", f)
		}
	}
	if got := cl.Worker(0).TasksExecuted() + cl.Worker(1).TasksExecuted(); got != tasksBefore {
		t.Errorf("tasks executed rose %d -> %d across failover: work was re-rendered", tasksBefore, got)
	}
	rec := standby.Recovery()
	if rec.WorkersResynced != 2 {
		t.Errorf("workers resynced = %d, want 2", rec.WorkersResynced)
	}
	if rec.JobsLost != 0 {
		t.Errorf("jobs lost = %d, want 0", rec.JobsLost)
	}
	if rec.JobsReattached+rec.RetainedServed != frames {
		t.Errorf("reattached+retained = %d+%d, want %d total",
			rec.JobsReattached, rec.RetainedServed, frames)
	}
}

// gateConn swallows worker→head completion traffic on command: the
// completed-but-unacked window a resync epoch must reconcile.
type gateConn struct {
	transport.Conn
	mu      sync.Mutex
	swallow bool
}

func (g *gateConn) setSwallow(v bool) {
	g.mu.Lock()
	g.swallow = v
	g.mu.Unlock()
}

func (g *gateConn) Send(m transport.Message) error {
	g.mu.Lock()
	sw := g.swallow
	g.mu.Unlock()
	if sw && (m.Kind == transport.KindFragment || m.Kind == transport.KindTileFrag) {
		return nil
	}
	return g.Conn.Send(m)
}

// TestResyncEpochReconcilesUnackedCompletion drives the idempotent-recovery
// guarantee: a worker completes its tasks but the reports never reach the
// head (lost acks), the head crashes, and the recovered standby's resync
// epoch reconciles the work through the worker's retained replay — the job
// delivers with zero re-renders.
func TestResyncEpochReconcilesUnackedCompletion(t *testing.T) {
	cat := testCatalog(t, 2)
	model := core.DefaultCostModel()
	var logBuf bytes.Buffer
	head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, model)
	quietHead(head)
	head.Journal = journal.NewWriter(&logBuf, 1)
	head.MinDeadline = 30 * time.Second // no re-dispatch before the crash
	head.SuspectAfter = 10 * time.Second
	head.DownAfter = 30 * time.Second

	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = head.Logf
	headSide, workerSide := transport.Pipe()
	gate := &gateConn{Conn: workerSide}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = w.Serve(gate)
	}()
	if err := head.AddWorker(headSide); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	genesis, err := head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	clientSide, headClientSide := transport.Pipe()
	go head.HandleClient(headClientSide)
	client := NewClient(clientSide)
	defer client.Close()

	gate.setSwallow(true)
	req := RenderBody{Dataset: "supernova", Dist: 2.4, Width: 32, Height: 32, Key: 77}
	if _, err := client.RenderAsync(req); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for w.TasksExecuted() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker executed %d tasks, want 2", w.TasksExecuted())
		}
		time.Sleep(2 * time.Millisecond)
	}
	head.Crash()
	<-serveDone

	recs, err := journal.ReadAll(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := hastate.Replay(genesis, recs, model)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(st.Jobs) != 1 || st.Jobs[0].Rec.Done() {
		t.Fatalf("recovered state: %d jobs, done=%v; want 1 in-flight job",
			len(st.Jobs), len(st.Jobs) == 1 && st.Jobs[0].Rec.Done())
	}

	standby := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, model)
	quietHead(standby)
	standby.MinDeadline = 30 * time.Second
	standby.SuspectAfter = 10 * time.Second
	standby.DownAfter = 30 * time.Second
	if err := standby.StartRecovered(st); err != nil {
		t.Fatal(err)
	}
	defer standby.Stop()

	gate.setSwallow(false)
	headSide2, workerSide2 := transport.Pipe()
	resyncDone := make(chan struct{})
	go func() {
		defer close(resyncDone)
		_ = w.Resync(workerSide2, 0)
	}()
	if err := standby.Rejoin(headSide2); err != nil {
		t.Fatal(err)
	}

	// The retained replay must complete the job with no new renders.
	deadline = time.Now().Add(20 * time.Second)
	for standby.Stats().JobsCompleted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("recovered job never completed from retained replay")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := w.TasksExecuted(); got != 2 {
		t.Errorf("tasks executed = %d after recovery, want 2 (no re-render)", got)
	}

	// The client's re-submission of the same key is served from the
	// retained-result store.
	clientSide2, headClientSide2 := transport.Pipe()
	go standby.HandleClient(headClientSide2)
	client2 := NewClient(clientSide2)
	defer client2.Close()
	res, err := client2.Render(req)
	if err != nil {
		t.Fatalf("re-submission: %v", err)
	}
	if res.Image == nil {
		t.Fatal("re-submission returned no image")
	}
	if got := standby.Recovery().RetainedServed; got != 1 {
		t.Errorf("retained served = %d, want 1", got)
	}
	if got := w.TasksExecuted(); got != 2 {
		t.Errorf("tasks executed = %d after re-submission, want 2", got)
	}
	standby.Stop()
	<-resyncDone
}

// TestNetChaosIdempotentDuplicates runs the service under duplicate-heavy
// network chaos on the worker→head direction: every fragment (and tile
// fragment, in dfb mode) may arrive twice, yet completion accounting stays
// exact and the delivered PNGs are byte-identical to a chaos-free run.
func TestNetChaosIdempotentDuplicates(t *testing.T) {
	for _, mode := range []string{"", "dfb"} {
		name := "fullframe"
		if mode == "dfb" {
			name = "dfb"
		}
		t.Run(name, func(t *testing.T) {
			cat := testCatalog(t, 3)
			render := func(chaos bool) ([][]byte, *Head, *transport.FaultInjector) {
				head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
				quietHead(head)
				head.Compositing = mode
				var inj *transport.FaultInjector
				if chaos {
					inj = transport.NewFaultInjector(transport.FaultConfig{Seed: 42, Duplicate: 0.5})
				}
				for i := 0; i < 2; i++ {
					w := NewWorker("w", cat, 64*units.MB)
					w.Logf = head.Logf
					headSide, workerSide := transport.Pipe()
					up := transport.Conn(workerSide)
					if inj != nil {
						up = inj.Wrap(up)
					}
					go func() { _ = w.Serve(up) }()
					if err := head.AddWorker(headSide); err != nil {
						t.Fatal(err)
					}
				}
				if err := head.Start(); err != nil {
					t.Fatal(err)
				}
				clientSide, headClientSide := transport.Pipe()
				go head.HandleClient(headClientSide)
				client := NewClient(clientSide)
				defer client.Close()
				const frames = 4
				pngs := make([][]byte, frames)
				for f := 0; f < frames; f++ {
					res, err := client.Render(RenderBody{
						Dataset: "supernova", Angle: 0.25 * float64(f), Dist: 2.4,
						Width: 32, Height: 32,
					})
					if err != nil {
						t.Fatalf("frame %d: %v", f, err)
					}
					pngs[f] = res.PNG
				}
				return pngs, head, inj
			}

			clean, cleanHead, _ := render(false)
			cleanHead.Stop()
			chaotic, chaosHead, inj := render(true)
			defer chaosHead.Stop()

			for f := range clean {
				if !bytes.Equal(clean[f], chaotic[f]) {
					t.Errorf("frame %d PNG differs under duplication chaos", f)
				}
			}
			if inj.Stats().Duplicated == 0 {
				t.Fatal("the injector never duplicated anything; the test is vacuous")
			}
			s := chaosHead.Stats()
			if s.JobsCompleted != 4 {
				t.Errorf("jobs completed = %d, want 4", s.JobsCompleted)
			}
			// Exactly one accounting event per task: duplicates must not
			// double-count cache stats.
			if total := s.ChunkHits + s.ChunkMisses; total != 4*3 {
				t.Errorf("hits+misses = %d, want %d", total, 4*3)
			}
		})
	}
}

// TestNetChaosPartitionSuspectHeals drives the transport-level partition
// switch: black-holed heartbeats demote the worker to suspect (no new work),
// healing before DownAfter rehabilitates it on the next beacon, and service
// resumes with nothing lost.
func TestNetChaosPartitionSuspectHeals(t *testing.T) {
	cat := testCatalog(t, 2)
	head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	quietHead(head)
	head.CheckInterval = 5 * time.Millisecond
	head.SuspectAfter = 40 * time.Millisecond
	head.DownAfter = 30 * time.Second

	inj := transport.NewFaultInjector(transport.FaultConfig{Seed: 7})
	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = head.Logf
	w.Heartbeat = 10 * time.Millisecond
	headSide, workerSide := transport.Pipe()
	go func() { _ = w.Serve(inj.Wrap(workerSide)) }()
	if err := head.AddWorker(inj.Wrap(headSide)); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	clientSide, headClientSide := transport.Pipe()
	go head.HandleClient(headClientSide)
	client := NewClient(clientSide)
	defer client.Close()

	if _, err := client.Render(RenderBody{Dataset: "plume", Dist: 2.4, Width: 24, Height: 24}); err != nil {
		t.Fatalf("pre-partition render: %v", err)
	}
	inj.Partition()
	waitHealth(t, head, 0, core.HealthSuspect)
	inj.Heal()
	waitHealth(t, head, 0, core.HealthUp)
	if _, err := client.Render(RenderBody{Dataset: "plume", Angle: 0.4, Dist: 2.4, Width: 24, Height: 24}); err != nil {
		t.Fatalf("post-heal render: %v", err)
	}
	if got := inj.Stats().Partitioned; got == 0 {
		t.Error("the partition never black-holed anything; the test is vacuous")
	}
	if got := head.Stats().WorkersDown; got != 0 {
		t.Errorf("workers down = %d, want 0 (partition healed before DownAfter)", got)
	}
	if got := head.Recovery().JobsLost; got != 0 {
		t.Errorf("jobs lost = %d, want 0", got)
	}
}

// TestFailoverServeLoopResyncsToStandby exercises the worker's reconnect
// loop end to end: a serving worker loses its head mid-session, ServeLoop
// redials with backoff, the dial lands on a recovered standby, the resync
// epoch restores the slot, and a clean Stop ends the loop with nil.
func TestFailoverServeLoopResyncsToStandby(t *testing.T) {
	cat := testCatalog(t, 2)
	model := core.DefaultCostModel()
	var logBuf bytes.Buffer
	head := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, model)
	quietHead(head)
	head.Journal = journal.NewWriter(&logBuf, 1)

	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = head.Logf
	headSide, workerSide := transport.Pipe()
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = w.Serve(workerSide)
	}()
	if err := head.AddWorker(headSide); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	genesis, err := head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	clientSide, headClientSide := transport.Pipe()
	go head.HandleClient(headClientSide)
	client := NewClient(clientSide)
	if _, err := client.Render(RenderBody{Dataset: "plume", Dist: 2.4, Width: 24, Height: 24}); err != nil {
		t.Fatal(err)
	}
	client.Close()
	head.Crash()
	<-serveDone

	recs, err := journal.ReadAll(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st, err := hastate.Replay(genesis, recs, model)
	if err != nil {
		t.Fatal(err)
	}
	standby := NewHead(core.NewLocalityScheduler(2*units.Millisecond), cat, 64*units.MB, model)
	quietHead(standby)
	if err := standby.StartRecovered(st); err != nil {
		t.Fatal(err)
	}

	// The loop's dial lands every attempt on the standby's rejoin endpoint.
	dial := func() (transport.Conn, error) {
		hs, ws := transport.Pipe()
		go func() { _ = standby.Rejoin(hs) }()
		return ws, nil
	}
	loopDone := make(chan error, 1)
	go func() {
		loopDone <- w.ServeLoop(dial, ReconnectConfig{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond, Retries: 8, Seed: 1})
	}()
	waitHealth(t, standby, 0, core.HealthUp)

	client2Side, headClient2Side := transport.Pipe()
	go standby.HandleClient(headClient2Side)
	client2 := NewClient(client2Side)
	defer client2.Close()
	if _, err := client2.Render(RenderBody{Dataset: "plume", Angle: 0.3, Dist: 2.4, Width: 24, Height: 24}); err != nil {
		t.Fatalf("render via resynced ServeLoop worker: %v", err)
	}
	standby.Stop()
	select {
	case err := <-loopDone:
		if err != nil {
			t.Errorf("ServeLoop = %v, want nil after clean shutdown", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("ServeLoop did not exit after head Stop")
	}
	if got := standby.Recovery().WorkersResynced; got < 1 {
		t.Errorf("workers resynced = %d, want >= 1", got)
	}
}

// TestFailoverServeLoopGivesUp: a dial that always fails exhausts the retry
// budget and reports it, rather than spinning forever.
func TestFailoverServeLoopGivesUp(t *testing.T) {
	cat := testCatalog(t, 2)
	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = func(string, ...any) {}
	dial := func() (transport.Conn, error) { return nil, transport.ErrClosed }
	err := w.ServeLoop(dial, ReconnectConfig{Base: time.Millisecond, Max: 2 * time.Millisecond, Retries: 3, Seed: 1})
	if err == nil {
		t.Fatal("ServeLoop returned nil for a dead endpoint")
	}
}
