package service

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

func TestStatsCountersAndHandler(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 2, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	for i := 0; i < 3; i++ {
		if _, err := client.Render(RenderBody{
			Dataset: "plume", Angle: float64(i), Dist: 2.4,
			Width: 16, Height: 16, Batch: i == 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := cl.Head.Stats()
	if s.JobsIssued != 3 || s.JobsCompleted != 3 {
		t.Errorf("issued/completed = %d/%d, want 3/3", s.JobsIssued, s.JobsCompleted)
	}
	if s.BatchIssued != 1 || s.BatchCompleted != 1 {
		t.Errorf("batch = %d/%d, want 1/1", s.BatchIssued, s.BatchCompleted)
	}
	// 2 chunks per job × 3 jobs = 6 accesses; first job loads both.
	if s.ChunkHits+s.ChunkMisses != 6 {
		t.Errorf("accesses = %d, want 6", s.ChunkHits+s.ChunkMisses)
	}
	if s.ChunkMisses != 2 {
		t.Errorf("misses = %d, want 2", s.ChunkMisses)
	}
	if s.HitRatePct < 60 || s.MeanTaskMillis <= 0 || s.Workers != 2 {
		t.Errorf("derived stats wrong: %+v", s)
	}

	// JSON endpoint.
	rec := httptest.NewRecorder()
	cl.Head.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	var decoded StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if decoded.JobsCompleted != 3 {
		t.Errorf("JSON completed = %d", decoded.JobsCompleted)
	}

	// Prometheus endpoint.
	rec = httptest.NewRecorder()
	cl.Head.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"vizsched_jobs_issued_total 3",
		"vizsched_chunk_misses_total 2",
		"vizsched_workers 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestStatsCountsFailures(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	if _, err := client.Render(RenderBody{Dataset: "nope", Width: 8, Height: 8, Dist: 2}); err == nil {
		t.Fatal("want error")
	}
	// Unknown-dataset requests are rejected before issue, so failed jobs
	// stay zero — verify nothing leaked into the counters.
	s := cl.Head.Stats()
	if s.JobsIssued != 0 || s.JobsFailed != 0 {
		t.Errorf("rejected request leaked into stats: %+v", s)
	}
}

func TestDropStaleSupersedesQueuedFrames(t *testing.T) {
	cat := testCatalog(t, 2)
	// A half-second cycle keeps the first frame queued long enough for the
	// second to supersede it.
	cl, err := StartCluster(core.NewLocalityScheduler(500*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	cl.Head.DropStale = true
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	req := RenderBody{Dataset: "plume", Dist: 2.4, Width: 16, Height: 16, Action: 1}
	ch1, err := client.RenderAsync(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Angle = 0.5
	ch2, err := client.RenderAsync(req)
	if err != nil {
		t.Fatal(err)
	}
	o1 := <-ch1
	o2 := <-ch2
	if o1.Err == nil {
		t.Error("stale frame was not superseded")
	}
	if o2.Err != nil {
		t.Errorf("fresh frame failed: %v", o2.Err)
	}
}

// A burst far larger than any channel buffer: before the unbounded
// per-worker sender existed, the dispatcher deadlocked against the
// fragment path at ~64 outstanding tasks.
func TestLargeBurstDoesNotDeadlock(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(2*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	const frames = 300
	chans := make([]<-chan Outcome, 0, frames)
	for f := 0; f < frames; f++ {
		ch, err := client.RenderAsync(RenderBody{
			Dataset: "plume", Angle: float64(f) * 0.01, Dist: 2.4,
			Width: 8, Height: 8, Batch: true, Action: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	done := make(chan struct{})
	go func() {
		for _, ch := range chans {
			if o := <-ch; o.Err != nil {
				t.Error(o.Err)
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("burst deadlocked")
	}
}
