package service

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/prefetch"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// scrubCatalog writes n single-chunk datasets whose names sort in scrub
// order, so a client stepping through them in catalog order produces the
// dataset-delta trajectory the Markov predictor learns.
func scrubCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	dir := t.TempDir()
	cat := NewCatalog()
	g := volume.Generate(volume.Plume, 20, 20, 20)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("scrub%d", i)
		m, err := WriteDataset(filepath.Join(dir, name), name, g, 1, "plume")
		if err != nil {
			t.Fatal(err)
		}
		if err := cat.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// TestPrefetchLiveServiceWarms drives the live service through a dataset
// scrub with prefetching on: after the first couple of steps the head's
// planner warms the next dataset's brick into the worker during the idle
// gap between frames, so later frames land as cache hits and the stats
// snapshot reports the warm → hit pipeline end to end.
func TestPrefetchLiveServiceWarms(t *testing.T) {
	cat := scrubCatalog(t, 6)
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 1, 64*units.MB, func(h *Head) {
		h.Prefetch = prefetch.DefaultConfig()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()

	hits := 0
	for _, name := range cat.Names() {
		res, err := client.Render(RenderBody{
			Dataset: name,
			Angle:   0.4, Elevation: 0.2, Dist: 2.2,
			Width: 32, Height: 32,
			Action: 7,
		})
		if err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		hits += res.Hits
		// The idle gap the planner warms into; a real viewer thinks far
		// longer than this between frames.
		time.Sleep(80 * time.Millisecond)
	}

	s := cl.Head.Stats()
	if s.Prefetch == nil {
		t.Fatal("prefetch-enabled head reports no prefetch snapshot")
	}
	if s.Prefetch.Issued == 0 {
		t.Fatalf("no warms issued across a predictable scrub: %+v", s.Prefetch)
	}
	if s.Prefetch.Hits < 1 || hits < 1 {
		t.Fatalf("warmed bricks never hit: snapshot=%+v client hits=%d", s.Prefetch, hits)
	}
	if s.Prefetch.BytesMoved <= 0 {
		t.Fatalf("issued warms moved no bytes: %+v", s.Prefetch)
	}
	// The worker's own cache counters (satellite of §5.8): the scrub's
	// demand misses plus prefetch hits must all be visible.
	ws := cl.workers[0].CacheStats()
	if ws.Hits < int64(hits) || ws.Misses == 0 {
		t.Fatalf("worker cache counters inconsistent: %+v (client hits %d)", ws, hits)
	}
}

// TestPrefetchLiveServiceOffNoSnapshot: without a prefetch config the head
// must not expose a prefetch snapshot, issue directives, or touch the
// prediction tables.
func TestPrefetchLiveServiceOffNoSnapshot(t *testing.T) {
	cat := scrubCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(2*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	for _, name := range cat.Names() {
		if _, err := client.Render(RenderBody{
			Dataset: name,
			Angle:   0.4, Elevation: 0.2, Dist: 2.2,
			Width: 24, Height: 24,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if s := cl.Head.Stats(); s.Prefetch != nil {
		t.Fatalf("prefetch snapshot present on a plain head: %+v", s.Prefetch)
	}
}
