package service

import (
	"sort"
	"sync"
	"time"
)

// fracTracker is the head-side busy-share account for the fractional-
// capacity layer (§5.13): the wall-clock twin of fracshare.Meter. The
// dispatcher notes every task handoff and completion; between transitions a
// node's busy share is the piecewise-constant min(in-flight, K)/K, so the
// per-node integral accumulates exactly like the simulator's meter does on
// virtual time. A periodic sample of the cluster-mean share feeds a fixed
// ring for quantiles, mirroring the frame-latency ring.
type fracTracker struct {
	mu         sync.Mutex
	slots      int
	inflight   []int
	busy       []time.Duration // ∫ busy-share dt per node
	last       []time.Time     // start of each node's current share span
	started    time.Time
	dispatched int64
	completed  int64

	ring shareRing
}

func newFracTracker(nodes, slots int) *fracTracker {
	now := time.Now()
	t := &fracTracker{
		slots:    slots,
		inflight: make([]int, nodes),
		busy:     make([]time.Duration, nodes),
		last:     make([]time.Time, nodes),
		started:  now,
	}
	for k := range t.last {
		t.last[k] = now
	}
	return t
}

// share is node k's current busy fraction; callers hold mu.
func (t *fracTracker) share(k int) float64 {
	n := t.inflight[k]
	if n > t.slots {
		n = t.slots
	}
	return float64(n) / float64(t.slots)
}

// fold closes node k's open share span at now; callers hold mu.
func (t *fracTracker) fold(k int, now time.Time) {
	if now.After(t.last[k]) {
		t.busy[k] += time.Duration(float64(now.Sub(t.last[k])) * t.share(k))
		t.last[k] = now
	}
}

// noteDispatch records a task handed to node k.
func (t *fracTracker) noteDispatch(k int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k < 0 || k >= len(t.inflight) {
		return
	}
	t.fold(k, time.Now())
	t.inflight[k]++
	t.dispatched++
}

// noteDone records a task leaving node k — a completion report, or a
// release/migration returning it to the queue. Clamped at zero: a straggler
// fragment arriving after its task was presumed lost and released decrements
// only once.
func (t *fracTracker) noteDone(k int, completed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k < 0 || k >= len(t.inflight) {
		return
	}
	t.fold(k, time.Now())
	if t.inflight[k] > 0 {
		t.inflight[k]--
	}
	if completed {
		t.completed++
	}
}

// sample pushes the cluster-mean busy share into the quantile ring; the
// dispatcher calls it on the health-check tick.
func (t *fracTracker) sample() {
	t.mu.Lock()
	now := time.Now()
	var sum float64
	for k := range t.inflight {
		t.fold(k, now)
		sum += t.share(k)
	}
	mean := sum / float64(len(t.inflight))
	t.mu.Unlock()
	t.ring.add(mean)
}

// snapshot builds the exported view.
func (t *fracTracker) snapshot() *FracShareSnapshot {
	t.mu.Lock()
	now := time.Now()
	s := &FracShareSnapshot{
		Slots:           t.slots,
		TasksDispatched: t.dispatched,
		TasksCompleted:  t.completed,
		NodeBusyPct:     make([]float64, len(t.busy)),
		NodeInFlight:    append([]int(nil), t.inflight...),
	}
	up := now.Sub(t.started)
	for k := range t.busy {
		t.fold(k, now)
		if up > 0 {
			s.NodeBusyPct[k] = 100 * float64(t.busy[k]) / float64(up)
		}
		s.MeanBusyPct += s.NodeBusyPct[k]
	}
	s.MeanBusyPct /= float64(len(t.busy))
	t.mu.Unlock()
	s.BusyP50Pct, s.BusyP95Pct, s.BusyP99Pct = t.ring.quantiles()
	s.BusyP50Pct *= 100
	s.BusyP95Pct *= 100
	s.BusyP99Pct *= 100
	return s
}

// shareRing keeps the most recent busy-share samples in a fixed ring for
// cheap streaming quantiles — latRing's shape with float payloads.
type shareRing struct {
	mu   sync.Mutex
	buf  [512]float64
	next int
	n    int
}

func (r *shareRing) add(v float64) {
	r.mu.Lock()
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantiles returns nearest-rank p50/p95/p99 over the retained window, or
// zeros when nothing has been sampled yet.
func (r *shareRing) quantiles() (p50, p95, p99 float64) {
	r.mu.Lock()
	sorted := append([]float64(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(sorted)
	rank := func(p int) float64 {
		i := (len(sorted)*p + 99) / 100
		if i < 1 {
			i = 1
		}
		return sorted[i-1]
	}
	return rank(50), rank(95), rank(99)
}

// FracShareSnapshot is the fractional-capacity layer's slice of a stats
// snapshot (§5.13): the slot count workers run with, per-node in-flight and
// lifetime busy-share gauges, and busy-fraction quantiles over the sampled
// window.
type FracShareSnapshot struct {
	Slots           int     `json:"slots"`
	TasksDispatched int64   `json:"tasks_dispatched"`
	TasksCompleted  int64   `json:"tasks_completed"`
	MeanBusyPct     float64 `json:"mean_busy_pct"`
	// NodeBusyPct[k] is node k's lifetime mean busy share (the busy-share
	// integral over uptime); NodeInFlight[k] is its tasks currently running.
	NodeBusyPct  []float64 `json:"node_busy_pct"`
	NodeInFlight []int     `json:"node_in_flight"`
	// Busy-fraction quantiles over the recent sample ring.
	BusyP50Pct float64 `json:"busy_p50_pct"`
	BusyP95Pct float64 `json:"busy_p95_pct"`
	BusyP99Pct float64 `json:"busy_p99_pct"`
}
