package service

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/qos"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// settleOutcome polls the controller until per-tenant accounting is closed
// (every issued job completed, failed, shed, or rejected) or times out.
func settleOutcome(t *testing.T, head *Head) *metrics.QoSOutcome {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := head.QoSController().Outcome()
		settled := true
		for _, ts := range out.Tenants {
			if ts.Completed+ts.Failed+ts.ShedTotal+ts.Rejected != ts.Issued {
				settled = false
			}
		}
		if settled {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("per-tenant accounting never settled: %+v", out.Tenants)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQoSMaxQueueBoundaryMixedTenants drives the bounded fair queue with two
// tenants: at MaxQueue the backstop sheds the oldest queued interactive frame
// and rejects queued batch work, while per-tenant accounting stays exact.
func TestQoSMaxQueueBoundaryMixedTenants(t *testing.T) {
	cat := testCatalog(t, 2)
	head := NewHead(core.NewLocalityScheduler(200*units.Millisecond), cat, 64*units.MB, core.DefaultCostModel())
	head.Logf = func(string, ...any) {}
	head.MaxQueue = 1
	head.QoS = &qos.Config{InteractiveRate: 1000, InteractiveBurst: 1000, BatchRate: 1000, BatchBurst: 1000}

	w := NewWorker("w0", cat, 64*units.MB)
	w.Logf = head.Logf
	hw, ww := transport.Pipe()
	go func() { _ = w.Serve(ww) }()
	if err := head.AddWorker(hw); err != nil {
		t.Fatal(err)
	}
	if err := head.Start(); err != nil {
		t.Fatal(err)
	}
	defer head.Stop()

	clientSide, headSide := transport.Pipe()
	go head.HandleClient(headSide)
	client := NewClient(clientSide)
	defer client.Close()

	// Alternate tenants so the shed victims cross tenant lines: t1 frame,
	// t2 frame (sheds t1's), t1 frame (sheds t2's), then a t2 batch job that
	// cannot fit the bound at all.
	var chans []<-chan Outcome
	for f := 0; f < 3; f++ {
		ch, err := client.RenderAsync(RenderBody{
			Dataset: "plume", Angle: 0.2 * float64(f), Dist: 2.4,
			Width: 24, Height: 24, Action: f%2 + 1, Tenant: f%2 + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		time.Sleep(10 * time.Millisecond)
	}
	batchCh, err := client.RenderAsync(RenderBody{
		Dataset: "plume", Dist: 2.4, Width: 24, Height: 24,
		Batch: true, Action: 9, Tenant: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out := <-batchCh; out.Err == nil || !strings.Contains(out.Err.Error(), "overloaded") {
		t.Errorf("batch at full queue: err = %v, want overloaded rejection", out.Err)
	}

	var completed, shed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for f, ch := range chans {
		f, ch := f, ch
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case out := <-ch:
				mu.Lock()
				defer mu.Unlock()
				if out.Err == nil {
					completed++
				} else if strings.Contains(out.Err.Error(), "shed") {
					shed++
				} else {
					t.Errorf("frame %d: unexpected error %v", f, out.Err)
				}
			case <-time.After(30 * time.Second):
				t.Errorf("frame %d hung", f)
			}
		}()
	}
	wg.Wait()
	if completed < 1 {
		t.Error("no interactive frame survived the shedding")
	}
	if shed != 2 {
		t.Errorf("shed = %d, want 2", shed)
	}
	if got := head.Stats().JobsShed; got != 3 { // 2 interactive + 1 batch
		t.Errorf("JobsShed = %d, want 3", got)
	}

	out := settleOutcome(t, head)
	if len(out.Tenants) != 2 {
		t.Fatalf("tenants in outcome = %d, want 2", len(out.Tenants))
	}
	var issued, sheds int64
	for _, ts := range out.Tenants {
		issued += ts.Issued
		sheds += ts.ShedTotal
		if ts.ShedOnArrival() != 0 {
			t.Errorf("tenant %d: %d arrival sheds, want all sheds from the queue bound", ts.Tenant, ts.ShedOnArrival())
		}
	}
	if issued != 4 || sheds != 3 {
		t.Errorf("outcome issued=%d sheds=%d, want 4 and 3", issued, sheds)
	}
}

// TestQoSLiveOverloadLadderRecovers is the live overload demo: flooding two
// tenants through a one-worker head engages the degradation ladder; pacing
// the same sessions afterwards walks it back to normal with no head restart,
// interactive latency back under the SLO, and every job accounted for.
func TestQoSLiveOverloadLadderRecovers(t *testing.T) {
	const slo = 50 * time.Millisecond
	cat := testCatalog(t, 2)
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 1, 64*units.MB, func(h *Head) {
		h.QoS = &qos.Config{
			InteractiveRate: 1e6, InteractiveBurst: 1e6,
			BatchRate: 1e6, BatchBurst: 1e6,
			InteractiveSLO: units.Duration(slo),
			Window:         units.Duration(50 * time.Millisecond),
			StepWindows:    1,
			RecoverWindows: 2,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	head := cl.Head

	issued := map[int]int64{}
	// Flood: both tenants fire frames as fast as the pipe accepts; a single
	// worker serializes the renders, so tail latency grows far past the SLO.
	var chans []<-chan Outcome
	for f := 0; f < 120; f++ {
		tenant := f%2 + 1
		ch, err := client.RenderAsync(RenderBody{
			Dataset: "plume", Angle: 0.01 * float64(f), Dist: 2.4,
			Width: 24, Height: 24, Action: tenant, Tenant: tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		issued[tenant]++
		chans = append(chans, ch)
	}
	var okReplies, errReplies int64
	for _, ch := range chans {
		if out := <-ch; out.Err == nil {
			okReplies++
		} else {
			errReplies++
		}
	}
	if len(head.QoSController().History()) == 0 {
		t.Fatal("flood never engaged the degradation ladder")
	}

	// Recovery: pace the same two sessions gently until the ladder is fully
	// withdrawn. Each frame completes in a couple of milliseconds, so every
	// ladder window is clean.
	var pacedOK int64
	paced := func(f int) RenderResult {
		tenant := f%2 + 1
		r, err := client.Render(RenderBody{
			Dataset: "plume", Angle: 0.5, Dist: 2.4,
			Width: 24, Height: 24, Action: tenant, Tenant: tenant,
		})
		if err != nil {
			t.Fatalf("paced frame failed during recovery: %v", err)
		}
		issued[tenant]++
		pacedOK++
		return r
	}
	deadline := time.Now().Add(20 * time.Second)
	for f := 0; head.QoSController().Level() != qos.LevelNormal; f++ {
		if time.Now().After(deadline) {
			t.Fatalf("ladder stuck at %v", head.QoSController().Level())
		}
		paced(f)
		time.Sleep(15 * time.Millisecond)
	}

	// Recovered: fresh frames must meet the SLO at p95.
	var lat []time.Duration
	for f := 0; f < 20; f++ {
		lat = append(lat, paced(f).Elapsed)
		time.Sleep(10 * time.Millisecond)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if p95 := lat[len(lat)*95/100]; p95 > slo {
		t.Errorf("post-recovery interactive p95 = %v, want under SLO %v", p95, slo)
	}

	out := settleOutcome(t, head)
	hist := head.QoSController().History()
	maxLevel := qos.LevelNormal
	for _, ch := range hist {
		if ch.Level > maxLevel {
			maxLevel = ch.Level
		}
	}
	if maxLevel < qos.LevelHalveBatch {
		t.Errorf("max ladder level = %v, want at least halve-batch", maxLevel)
	}
	if out.FinalLevel != int(qos.LevelNormal) {
		t.Errorf("final level = %d, want normal", out.FinalLevel)
	}
	// Every issued job is accounted: per tenant the issue count matches what
	// the client sent, and completions/failures/sheds/rejections cover it.
	var outCompleted int64
	for _, ts := range out.Tenants {
		if ts.Issued != issued[ts.Tenant] {
			t.Errorf("tenant %d: controller issued=%d, client sent %d", ts.Tenant, ts.Issued, issued[ts.Tenant])
		}
		if got := ts.Completed + ts.Failed + ts.ShedTotal + ts.Rejected; got != ts.Issued {
			t.Errorf("tenant %d: accounting gap: %d of %d jobs accounted", ts.Tenant, got, ts.Issued)
		}
		outCompleted += ts.Completed
	}
	// Client-side view must agree: every success reply is a controller
	// completion, every error reply a failure/shed/rejection.
	if want := okReplies + pacedOK; outCompleted != want {
		t.Errorf("controller completed=%d, client saw %d successes", outCompleted, want)
	}
	if s := head.Stats(); s.QoS == nil || s.QoS.Jain <= 0 {
		t.Errorf("stats snapshot missing QoS section: %+v", s.QoS)
	}
}
