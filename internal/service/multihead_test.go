package service

import (
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// TestMultiHeadRoutingAndDirectory drives a two-shard plane end to end:
// sessions land on the shard the ring names, every shard does real work,
// workers learn their shard from the hello ack, and completions feed the
// shared chunk directory.
func TestMultiHeadRoutingAndDirectory(t *testing.T) {
	cat := testCatalog(t, 3)
	mc, err := StartMultiCluster(2, func() core.Scheduler {
		return core.NewLocalityScheduler(2 * units.Millisecond)
	}, cat, 4, 64*units.MB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Stop()

	// Round-robin placement: worker i serves shard i%2, and the hello ack
	// told it so. The ack is consumed on the worker's serve goroutine, so
	// poll briefly.
	for i := 0; i < 4; i++ {
		deadline := time.Now().Add(2 * time.Second)
		for mc.Worker(i).Shard() == -1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if got := mc.Worker(i).Shard(); got != i%2 {
			t.Fatalf("worker %d on shard %d, want %d", i, got, i%2)
		}
	}

	// Find actions owned by each shard so the burst provably spans both.
	ring := mc.MH.Ring()
	byShard := map[int]core.ActionID{}
	for a := core.ActionID(1); len(byShard) < 2 && a < 64; a++ {
		s := ring.Owner(0, a)
		if _, ok := byShard[s]; !ok {
			byShard[s] = a
		}
	}
	if len(byShard) < 2 {
		t.Fatal("ring never mapped an action to shard 1")
	}

	client := mc.Connect()
	defer client.Close()
	before := [2]int64{mc.MH.Shard(0).Stats().JobsIssued, mc.MH.Shard(1).Stats().JobsIssued}
	for s, action := range byShard {
		ds := "supernova"
		if s == 1 {
			ds = "plume"
		}
		if _, err := client.Render(RenderBody{
			Dataset: ds, Angle: 0.3, Dist: 2.4, Width: 16, Height: 16,
			Action: int(action),
		}); err != nil {
			t.Fatalf("render on shard %d: %v", s, err)
		}
		if got := mc.MH.Shard(s).Stats().JobsIssued; got != before[s]+1 {
			t.Fatalf("shard %d issued %d jobs, want %d — request routed off-owner", s, got, before[s]+1)
		}
	}

	// Both shards completed fragments, so the shared directory has heard
	// estimate and residency facts from both sides.
	st := mc.MH.Directory().Snapshot()
	if st.Publishes == 0 {
		t.Fatal("directory saw no publishes — shards are not sharing locality facts")
	}
	if err := mc.MH.Directory().Validate(mc.MH.Workers()); err != nil {
		t.Fatalf("directory invariant violated: %v", err)
	}
}

// TestMultiHeadSharedEstimates: a chunk rendered only by shard 0 must have a
// directory estimate visible to shard 1's tables via the estimate source.
func TestMultiHeadSharedEstimates(t *testing.T) {
	cat := testCatalog(t, 2)
	mc, err := StartMultiCluster(2, func() core.Scheduler {
		return core.NewLocalityScheduler(2 * units.Millisecond)
	}, cat, 2, 64*units.MB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Stop()

	ring := mc.MH.Ring()
	var action core.ActionID
	for a := core.ActionID(1); a < 64; a++ {
		if ring.Owner(0, a) == 0 {
			action = a
			break
		}
	}
	client := mc.Connect()
	defer client.Close()
	if _, err := client.Render(RenderBody{
		Dataset: "supernova", Angle: 0.1, Dist: 2.4, Width: 16, Height: 16,
		Action: int(action),
	}); err != nil {
		t.Fatal(err)
	}

	dir := mc.MH.Directory()
	id := mc.MH.Shard(0).dsIDs["supernova"]
	found := false
	for idx := 0; idx < 2; idx++ {
		if d, ok := dir.Estimate(volume.ChunkID{Dataset: id, Index: idx}); ok && d > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no supernova chunk estimate reached the shared directory")
	}
}

// TestMultiHeadNeedsWorkerPerShard: a plane with fewer workers than shards
// refuses to start instead of leaving empty dispatchers.
func TestMultiHeadNeedsWorkerPerShard(t *testing.T) {
	cat := testCatalog(t, 2)
	if _, err := StartMultiCluster(3, func() core.Scheduler {
		return core.NewLocalityScheduler(2 * units.Millisecond)
	}, cat, 2, 64*units.MB, nil); err == nil {
		t.Fatal("3 shards started with 2 workers")
	}
}
