package service

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/trace"
	"vizsched/internal/units"
)

// renderOnce starts a cluster (optionally configured), renders one frame,
// and returns the PNG bytes plus the stopped cluster's head for inspection.
func renderOnce(t *testing.T, configure func(*Head)) ([]byte, *Head) {
	t.Helper()
	cat := testCatalog(t, 3)
	cl, err := StartClusterWith(core.NewLocalityScheduler(5*units.Millisecond), cat, 3, 64*units.MB, configure)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	res, err := client.Render(RenderBody{
		Dataset: "supernova",
		Angle:   0.7, Elevation: 0.3, Dist: 2.4,
		Width: 48, Height: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.PNG, cl.Head
}

// TestDFBServicePNGIdentical is the live half of the §5.9 acceptance claim:
// the distributed-framebuffer path must deliver byte-identical PNGs to the
// default decode-then-composite path — the tile reducer replays the same
// stable depth order the full-frame path sorts into.
func TestDFBServicePNGIdentical(t *testing.T) {
	ref, _ := renderOnce(t, nil)
	got, head := renderOnce(t, func(h *Head) {
		h.Compositing = "dfb"
		h.TileSize = 16
	})
	if !bytes.Equal(ref, got) {
		t.Fatalf("dfb PNG differs from default path (%d vs %d bytes)", len(got), len(ref))
	}

	s := head.Stats()
	if s.Compositing == nil {
		t.Fatal("stats missing compositing snapshot")
	}
	c := s.Compositing
	// 48×48 at tile 16 is a 3×3 layout; 3 tasks contribute to each tile.
	if c.TilesFinalized != 9 {
		t.Errorf("tiles finalized = %d, want 9", c.TilesFinalized)
	}
	if c.TileFragments != 27 {
		t.Errorf("tile fragments = %d, want 27", c.TileFragments)
	}
	if c.FragsInFlight != 0 {
		t.Errorf("fragments in flight = %d after delivery, want 0", c.FragsInFlight)
	}
	if c.TileSize != 16 || c.Algorithm != "dfb" {
		t.Errorf("snapshot identity wrong: %+v", c)
	}
	if c.FrameP50Millis <= 0 || c.FrameP99Millis < c.FrameP50Millis {
		t.Errorf("frame latency quantiles implausible: p50=%v p99=%v", c.FrameP50Millis, c.FrameP99Millis)
	}
}

// TestDFBServiceRawCodecIdentical repeats the identity check under CodecRaw
// — no quantization anywhere, so it would catch a float-order divergence the
// quantized path could mask.
func TestDFBServiceRawCodecIdentical(t *testing.T) {
	cat := testCatalog(t, 3)
	run := func(configure func(*Head)) []byte {
		cl, err := StartClusterWith(core.NewLocalityScheduler(5*units.Millisecond), cat, 2, 64*units.MB, configure)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Stop()
		for _, w := range cl.workers {
			w.Codec = CodecRaw
		}
		client := cl.Connect()
		defer client.Close()
		res, err := client.Render(RenderBody{
			Dataset: "plume",
			Angle:   1.1, Elevation: -0.2, Dist: 2.0,
			Width: 40, Height: 56,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PNG
	}
	ref := run(nil)
	got := run(func(h *Head) { h.Compositing = "dfb" }) // default 64px tiles clip to frame
	if !bytes.Equal(ref, got) {
		t.Fatal("dfb PNG differs from default path under CodecRaw")
	}
}

// TestDFBServiceTraceAndMetrics checks the operator surface: per-tile trace
// events and the /metrics exposition.
func TestDFBServiceTraceAndMetrics(t *testing.T) {
	log := trace.New(0)
	_, head := renderOnce(t, func(h *Head) {
		h.Compositing = "dfb"
		h.TileSize = 16
		h.Trace = log
	})

	frags, dones := 0, 0
	for _, ev := range log.Events {
		switch ev.Kind {
		case trace.TileFrag:
			frags++
		case trace.TileDone:
			dones++
			if ev.Level < 0 || ev.Level >= 9 {
				t.Errorf("tile-done event with tile index %d", ev.Level)
			}
		}
	}
	if frags != 27 || dones != 9 {
		t.Errorf("trace has %d tile-frag / %d tile-done events, want 27/9", frags, dones)
	}

	rec := httptest.NewRecorder()
	head.StatsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"vizsched_dfb_tiles_finalized_total 9",
		"vizsched_dfb_tile_fragments_total 27",
		"vizsched_dfb_fragments_in_flight 0",
		"vizsched_frame_latency_seconds{quantile=\"0.95\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDFBServiceBadCompositingRejected pins Start's validation.
func TestDFBServiceBadCompositingRejected(t *testing.T) {
	cat := testCatalog(t, 2)
	_, err := StartClusterWith(core.NewLocalityScheduler(5*units.Millisecond), cat, 1, 64*units.MB,
		func(h *Head) { h.Compositing = "binary-swap" })
	if err == nil || !strings.Contains(err.Error(), "unknown compositing") {
		t.Fatalf("bogus compositing accepted: %v", err)
	}
}
