package service

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/hastate"
	"vizsched/internal/journal"
	"vizsched/internal/units"
)

// TestSnapshotRotateCutIsAtomic is the regression test for the snapshot-cut
// race: a snapshot taken while completions are in flight used to share its
// journal with records finalized after the cut, so replaying "snapshot +
// whole journal" double-applied them. SnapshotRotate must place every
// record at-or-before the cut in the old log and every later record in the
// new log, exactly:
//
//	Replay(genesis, logA)        == snapshot at the cut
//	Replay(cut, logB)            == final state
//	Replay(genesis, logA ++ logB) == final state
//
// The render burst runs concurrently with the rotation, so the cut lands
// between (and races) live finalizations.
func TestSnapshotRotateCutIsAtomic(t *testing.T) {
	cat := testCatalog(t, 3)
	model := core.DefaultCostModel()
	var logA, logB bytes.Buffer
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 2, 64*units.MB, func(h *Head) {
		h.Journal = journal.NewWriter(&logA, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Stop() }()

	genesis, err := cl.Head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent render burst: frames finalize while the rotation below
	// cuts the log somewhere in the middle of them.
	const frames = 12
	var wg sync.WaitGroup
	errs := make([]error, frames)
	for f := 0; f < frames; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			client := cl.Connect()
			defer client.Close()
			ds := "supernova"
			if f%2 == 1 {
				ds = "plume"
			}
			_, errs[f] = client.Render(RenderBody{
				Dataset: ds, Angle: 0.1 * float64(f), Dist: 2.4,
				Width: 16, Height: 16, Key: uint64(f + 1),
			})
		}(f)
	}
	time.Sleep(5 * time.Millisecond) // let part of the burst land before the cut
	cut, err := cl.Head.SnapshotRotate(journal.NewWriter(&logB, 1))
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for f, e := range errs {
		if e != nil {
			t.Fatalf("frame %d: %v", f, e)
		}
	}

	final, err := cl.Head.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.Head.Crash()

	recsA, err := journal.ReadAll(bytes.NewReader(logA.Bytes()))
	if err != nil {
		t.Fatalf("log A: %v", err)
	}
	recsB, err := journal.ReadAll(bytes.NewReader(logB.Bytes()))
	if err != nil {
		t.Fatalf("log B: %v", err)
	}

	// Old base + old log lands exactly on the cut.
	atCut, err := hastate.Replay(genesis, recsA, model)
	if err != nil {
		t.Fatalf("replay(genesis, A): %v", err)
	}
	if !reflect.DeepEqual(atCut.Tables.Dump(), cut.Tables) {
		t.Fatal("replay(genesis, logA) differs from the cut snapshot: a post-cut record leaked into the old log")
	}

	// Cut + new log lands exactly on the final state. A pre-cut record
	// leaked into the new log would double-apply here and fail Replay's
	// divergence checks.
	fromCut, err := hastate.Replay(cut, recsB, model)
	if err != nil {
		t.Fatalf("replay(cut, B): %v", err)
	}
	if !reflect.DeepEqual(fromCut.Tables.Dump(), final.Tables) {
		t.Fatal("replay(cut, logB) differs from the final state")
	}

	// And the concatenation is seamless: nothing was lost or duplicated at
	// the boundary.
	whole, err := hastate.Replay(genesis, append(append([]journal.Record(nil), recsA...), recsB...), model)
	if err != nil {
		t.Fatalf("replay(genesis, A++B): %v", err)
	}
	if !reflect.DeepEqual(whole.Tables.Dump(), final.Tables) {
		t.Fatal("replay(genesis, logA++logB) differs from the final state")
	}
	if len(recsB) == 0 {
		t.Logf("note: burst finished before the cut; boundary not exercised this run")
	}
}

// TestSnapshotRotateRejectsNil: rotation without a writer is an error, not
// a silent plain snapshot.
func TestSnapshotRotateRejectsNil(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartClusterWith(core.NewLocalityScheduler(2*units.Millisecond), cat, 1, 64*units.MB, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { cl.Stop() }()
	if _, err := cl.Head.SnapshotRotate(nil); err == nil {
		t.Fatal("SnapshotRotate(nil) succeeded")
	}
}
