package service

import (
	"bytes"
	"fmt"
	"image"
	"image/png"
	"sync"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/transport"
	"vizsched/internal/units"
)

// RenderResult is a completed render as seen by a client.
type RenderResult struct {
	Image   image.Image
	PNG     []byte
	Elapsed time.Duration
	// Hits and Misses report how many of the job's chunks were already
	// resident on their workers.
	Hits, Misses int
}

// Client issues render requests to a head node over any transport. It is
// safe for concurrent use; requests are correlated by message ID so several
// renders (for instance, a batch animation) can be in flight at once.
type Client struct {
	conn transport.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Outcome
	readErr error
	started bool
}

// Outcome is the resolution of an asynchronous render.
type Outcome struct {
	Result RenderResult
	Err    error
}

// NewClient wraps a connection to a head node.
func NewClient(conn transport.Conn) *Client {
	return &Client{conn: conn, pending: make(map[uint64]chan Outcome)}
}

// DialTCP connects a client to a head node's TCP address.
func DialTCP(addr string) (*Client, error) {
	conn, err := transport.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// readLoop delivers responses to their waiting requests.
func (c *Client) readLoop() {
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				ch <- Outcome{Err: fmt.Errorf("service: connection lost: %w", err)}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[msg.ID]
		delete(c.pending, msg.ID)
		c.mu.Unlock()
		if ch == nil {
			continue
		}
		switch msg.Kind {
		case transport.KindResult:
			var body ResultBody
			if err := transport.Decode(msg.Body, &body); err != nil {
				ch <- Outcome{Err: err}
				continue
			}
			decoded, err := png.Decode(bytes.NewReader(body.PNG))
			if err != nil {
				ch <- Outcome{Err: fmt.Errorf("service: decoding result: %w", err)}
				continue
			}
			ch <- Outcome{Result: RenderResult{
				Image:   decoded,
				PNG:     body.PNG,
				Elapsed: time.Duration(body.ElapsedNanos),
				Hits:    body.Hits,
				Misses:  body.Misses,
			}}
		case transport.KindError:
			var body ErrorBody
			_ = transport.Decode(msg.Body, &body)
			ch <- Outcome{Err: fmt.Errorf("service: %s", body.Msg)}
		}
	}
}

// Render issues one request and waits for its image.
func (c *Client) Render(req RenderBody) (RenderResult, error) {
	ch, err := c.RenderAsync(req)
	if err != nil {
		return RenderResult{}, err
	}
	r := <-ch
	return r.Result, r.Err
}

// RenderAsync issues a request and returns a channel that will receive the
// outcome — how a viewer pipelines interactive frames.
func (c *Client) RenderAsync(req RenderBody) (<-chan Outcome, error) {
	c.mu.Lock()
	if !c.started {
		c.started = true
		go c.readLoop()
	}
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan Outcome, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	if err := send(c.conn, transport.KindRender, id, req); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// Cluster is an in-process deployment: a head plus n workers wired over
// channel transports — the single-binary form used by the quickstart
// example and the tests. Production deployments use cmd/vizserver and TCP.
type Cluster struct {
	Head    *Head
	workers []*Worker
	wg      sync.WaitGroup
}

// StartCluster builds and starts an in-process service over the catalog.
func StartCluster(sched core.Scheduler, catalog *Catalog, nodes int, quota units.Bytes) (*Cluster, error) {
	return StartClusterWith(sched, catalog, nodes, quota, nil)
}

// StartClusterWith is StartCluster with a configuration hook: configure (if
// non-nil) runs on the built head before Start, so fields that must be set
// pre-Start (QoS, MaxQueue, DropStale, deadlines) can be applied.
func StartClusterWith(sched core.Scheduler, catalog *Catalog, nodes int, quota units.Bytes, configure func(*Head)) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("service: need at least one node")
	}
	head := NewHead(sched, catalog, quota, core.DefaultCostModel())
	head.Logf = func(string, ...any) {} // quiet by default; callers can reassign
	if configure != nil {
		configure(head)
	}
	cl := &Cluster{Head: head}
	for i := 0; i < nodes; i++ {
		w := NewWorker(fmt.Sprintf("worker-%d", i), catalog, quota)
		w.Logf = head.Logf
		headSide, workerSide := transport.Pipe()
		cl.workers = append(cl.workers, w)
		cl.wg.Add(1)
		go func() {
			defer cl.wg.Done()
			_ = w.Serve(workerSide)
		}()
		if err := head.AddWorker(headSide); err != nil {
			return nil, err
		}
	}
	if err := head.Start(); err != nil {
		return nil, err
	}
	return cl, nil
}

// RejoinWorker starts a fresh worker process (cold cache) that reclaims the
// given node slot — the in-process form of restarting a crashed worker and
// pointing it back at the head. The head must currently consider the node
// down, or it rejects the rejoin.
func (cl *Cluster) RejoinWorker(node core.NodeID) error {
	if int(node) < 0 || int(node) >= len(cl.workers) {
		return fmt.Errorf("service: no such node %d", node)
	}
	old := cl.workers[int(node)]
	w := NewWorker(old.Name, old.catalog, old.quota)
	w.Logf = cl.Head.Logf
	headSide, workerSide := transport.Pipe()
	cl.workers[int(node)] = w
	cl.wg.Add(1)
	go func() {
		defer cl.wg.Done()
		_ = w.Rejoin(workerSide, int(node))
	}()
	return cl.Head.Rejoin(headSide)
}

// Worker returns the cluster's worker at node i, for tests and examples
// that inspect worker-side state (retained results, cache contents).
func (cl *Cluster) Worker(i int) *Worker {
	if i < 0 || i >= len(cl.workers) {
		return nil
	}
	return cl.workers[i]
}

// ResyncTo re-homes every surviving worker onto a recovered standby head
// (§5.10): each worker reconnects over a fresh pipe through the resync path,
// re-announcing its cache and retained completions. The in-process form of
// pointing the worker fleet at the address the standby took over. The
// cluster's Head is replaced; the old head must already be stopped/crashed.
func (cl *Cluster) ResyncTo(head *Head) error {
	// The workers' previous serve sessions own their state; wait for the
	// dead head's connection closes to unwind them before re-entering.
	cl.wg.Wait()
	cl.Head = head
	for i, w := range cl.workers {
		headSide, workerSide := transport.Pipe()
		cl.wg.Add(1)
		go func(w *Worker, node int, conn transport.Conn) {
			defer cl.wg.Done()
			_ = w.Resync(conn, node)
		}(w, i, workerSide)
		if err := head.Rejoin(headSide); err != nil {
			return err
		}
	}
	return nil
}

// Connect returns a client attached to the in-process head.
func (cl *Cluster) Connect() *Client {
	clientSide, headSide := transport.Pipe()
	go cl.Head.HandleClient(headSide)
	return NewClient(clientSide)
}

// Stop shuts down the head and waits for the workers to exit.
func (cl *Cluster) Stop() {
	cl.Head.Stop()
	cl.wg.Wait()
}
