package service

import (
	"fmt"
	"log"
	"time"

	"vizsched/internal/cache"
	"vizsched/internal/raycast"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Worker is one rendering node of the live service: it executes assigned
// tasks FIFO, keeps loaded bricks in an LRU-managed memory budget, renders
// with the software ray caster, and streams fragments back to the head —
// the render/communication thread split of the paper's implementation
// (§V-C) maps onto its executor and network goroutines.
type Worker struct {
	Name    string
	catalog *Catalog
	quota   units.Bytes

	// lru tracks residency accounting; bricks holds the payloads.
	lru    *cache.LRU
	bricks map[volume.ChunkID]*raycast.Brick
	// datasetIDs gives each dataset name a stable local ID for cache keys.
	datasetIDs map[string]volume.DatasetID

	// Codec selects the fragment pixel encoding (CodecFlate by default:
	// volume fragments are mostly transparent and compress well).
	Codec int

	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewWorker returns a worker serving the catalog within the memory quota.
func NewWorker(name string, catalog *Catalog, quota units.Bytes) *Worker {
	if quota <= 0 {
		panic("service: worker needs a positive memory quota")
	}
	return &Worker{
		Name:       name,
		catalog:    catalog,
		quota:      quota,
		lru:        cache.NewLRU(quota),
		bricks:     make(map[volume.ChunkID]*raycast.Brick),
		datasetIDs: make(map[string]volume.DatasetID),
		Codec:      CodecFlate,
		Logf:       log.Printf,
	}
}

// chunkID maps a wire chunk reference to a local cache key.
func (w *Worker) chunkID(dataset string, chunk int) volume.ChunkID {
	id, ok := w.datasetIDs[dataset]
	if !ok {
		id = volume.DatasetID(len(w.datasetIDs) + 1)
		w.datasetIDs[dataset] = id
	}
	return volume.ChunkID{Dataset: id, Index: chunk}
}

// datasetName inverts chunkID's mapping for eviction reports.
func (w *Worker) datasetName(id volume.DatasetID) string {
	for name, d := range w.datasetIDs {
		if d == id {
			return name
		}
	}
	return ""
}

// loadBrick returns the brick for the task, loading from disk on a miss.
// It reports whether the access hit and what was evicted.
func (w *Worker) loadBrick(dataset string, chunk int) (*raycast.Brick, bool, []ChunkRef, error) {
	cid := w.chunkID(dataset, chunk)
	if w.lru.Touch(cid) {
		return w.bricks[cid], true, nil, nil
	}
	m := w.catalog.Get(dataset)
	if m == nil {
		return nil, false, nil, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	brick, err := m.LoadBrick(chunk)
	if err != nil {
		return nil, false, nil, err
	}
	evictedIDs := w.lru.Insert(cid, brick.Grid.SizeBytes())
	var evicted []ChunkRef
	for _, ev := range evictedIDs {
		delete(w.bricks, ev)
		evicted = append(evicted, ChunkRef{Dataset: w.datasetName(ev.Dataset), Index: ev.Index})
	}
	w.bricks[cid] = brick
	return brick, false, evicted, nil
}

// execute runs one task and builds its fragment.
func (w *Worker) execute(t TaskBody) (FragmentBody, error) {
	start := time.Now()
	brick, hit, evicted, err := w.loadBrick(t.Dataset, t.Chunk)
	if err != nil {
		return FragmentBody{}, err
	}
	cam := raycast.NewCamera(t.Render.Angle, t.Render.Elevation, t.Render.Dist)
	tf := raycast.PresetTF(w.catalog.Get(t.Dataset).TF)
	frag := raycast.RenderBrick(brick, cam, tf, raycast.Options{
		Width:    t.Render.Width,
		Height:   t.Render.Height,
		Mode:     raycast.Mode(t.Render.Mode),
		IsoValue: t.Render.IsoValue,
		Parallel: true,
	})
	data, err := encodePixels(frag.Image, w.Codec)
	if err != nil {
		return FragmentBody{}, err
	}
	return FragmentBody{
		JobID:     t.JobID,
		TaskIndex: t.TaskIndex,
		W:         frag.Image.W, H: frag.Image.H,
		Codec:     w.Codec,
		Data:      data,
		Depth:     frag.Depth,
		Hit:       hit,
		ExecNanos: time.Since(start).Nanoseconds(),
		Evicted:   evicted,
	}, nil
}

// Serve processes messages from the head until the connection closes or a
// shutdown message arrives. Tasks execute strictly FIFO.
func (w *Worker) Serve(conn transport.Conn) error {
	if err := send(conn, transport.KindHello, 0, HelloBody{Name: w.Name, MemQuota: int64(w.quota)}); err != nil {
		return err
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		switch msg.Kind {
		case transport.KindShutdown:
			return nil
		case transport.KindTask:
			var t TaskBody
			if err := transport.Decode(msg.Body, &t); err != nil {
				w.Logf("worker %s: bad task: %v", w.Name, err)
				continue
			}
			frag, err := w.execute(t)
			if err != nil {
				w.Logf("worker %s: task J%d/T%d failed: %v", w.Name, t.JobID, t.TaskIndex, err)
				if serr := send(conn, transport.KindError, msg.ID, ErrorBody{Msg: err.Error()}); serr != nil {
					return serr
				}
				continue
			}
			if err := send(conn, transport.KindFragment, msg.ID, frag); err != nil {
				return err
			}
		default:
			w.Logf("worker %s: unexpected %v message", w.Name, msg.Kind)
		}
	}
}

// CachedChunks reports the worker's resident chunk count, for tests.
func (w *Worker) CachedChunks() int { return w.lru.Len() }
