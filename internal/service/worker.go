package service

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/cache"
	"vizsched/internal/compositing/dfb"
	"vizsched/internal/img"
	"vizsched/internal/raycast"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Worker is one rendering node of the live service: it executes assigned
// tasks FIFO, keeps loaded bricks in an LRU-managed memory budget, renders
// with the software ray caster, and streams fragments back to the head —
// the render/communication thread split of the paper's implementation
// (§V-C) maps onto its executor and network goroutines.
type Worker struct {
	Name    string
	catalog *Catalog
	quota   units.Bytes

	// lru tracks residency accounting; bricks holds the payloads. cacheMu
	// guards both (and datasetIDs): with fractional slots, task executors
	// run concurrently and contend for the cache — the serialized load
	// under the lock is the single disk the share model prices, while
	// renders overlap freely outside it.
	cacheMu sync.Mutex
	lru     *cache.LRU
	bricks  map[volume.ChunkID]*raycast.Brick
	// datasetIDs gives each dataset name a stable local ID for cache keys.
	datasetIDs map[string]volume.DatasetID

	// Codec selects the fragment pixel encoding (CodecFlate by default:
	// volume fragments are mostly transparent and compress well).
	Codec int

	// Heartbeat is the liveness-beacon interval; zero disables heartbeats
	// (the head then relies on connection errors and task deadlines alone).
	Heartbeat time.Duration

	// node is the slot the head assigned in its hello ack; -1 until known.
	// Atomic: the serve loop writes it while callers poll Node.
	node atomic.Int64
	// shard is the shard index from the head's hello ack (§5.11); 0 for a
	// standalone head, -1 until the ack arrives. Atomic like node.
	shard atomic.Int64
	// tileSize is the distributed-framebuffer tile edge from the head's
	// hello ack; 0 keeps full-frame fragments. Serve-loop owned: the ack is
	// processed and tasks execute on the same goroutine.
	tileSize int
	// tasks counts executed tasks. Atomic: the serve loop increments it
	// while callers poll TasksExecuted.
	tasks atomic.Int64

	// slots is the fractional slot count K from the head's hello ack
	// (§5.13); sem bounds concurrent task executors to it and execWG drains
	// them before serve returns. 0 or 1 keeps the serial FIFO path: tasks
	// execute inline on the serve goroutine exactly as before.
	slots  atomic.Int64
	sem    chan struct{}
	execWG sync.WaitGroup

	// retained holds recently completed results for the resync replay
	// (§5.10): a head recovered from snapshot+journal lists the tasks it
	// still considers outstanding, and the worker re-sends retained results
	// instead of re-rendering. retainMu guards it against concurrent slot
	// executors; Resync reads it with the executors drained. RetainCap
	// bounds it; zero means DefaultRetain.
	retainMu  sync.Mutex
	retained  []retainedResult
	RetainCap int

	// Logf receives diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// retainedResult is one completed task's replayable output.
type retainedResult struct {
	ref   TaskRef
	frag  FragmentBody
	tiles []TileFragBody
}

// DefaultRetain is the retained-result window when RetainCap is zero.
const DefaultRetain = 64

// DefaultHeartbeat is the worker liveness-beacon interval.
const DefaultHeartbeat = 500 * time.Millisecond

// NewWorker returns a worker serving the catalog within the memory quota.
func NewWorker(name string, catalog *Catalog, quota units.Bytes) *Worker {
	if quota <= 0 {
		panic("service: worker needs a positive memory quota")
	}
	w := &Worker{
		Name:       name,
		catalog:    catalog,
		quota:      quota,
		lru:        cache.NewLRU(quota),
		bricks:     make(map[volume.ChunkID]*raycast.Brick),
		datasetIDs: make(map[string]volume.DatasetID),
		Codec:      CodecFlate,
		Heartbeat:  DefaultHeartbeat,
		Logf:       log.Printf,
	}
	w.node.Store(-1)
	w.shard.Store(-1)
	return w
}

// Node returns the slot the head assigned this worker, or -1 before the
// hello ack arrives.
func (w *Worker) Node() int { return int(w.node.Load()) }

// Shard returns the shard index of the head this worker registered with
// (§5.11): zero for a standalone head, -1 before the hello ack arrives.
func (w *Worker) Shard() int { return int(w.shard.Load()) }

// TasksExecuted reports how many tasks this worker has completed.
func (w *Worker) TasksExecuted() int64 { return w.tasks.Load() }

// Slots reports the fractional slot count the head's hello ack assigned
// (§5.13): 0 before the ack (or with the layer off), in which case tasks
// execute serially.
func (w *Worker) Slots() int { return int(w.slots.Load()) }

// chunkID maps a wire chunk reference to a local cache key.
func (w *Worker) chunkID(dataset string, chunk int) volume.ChunkID {
	id, ok := w.datasetIDs[dataset]
	if !ok {
		id = volume.DatasetID(len(w.datasetIDs) + 1)
		w.datasetIDs[dataset] = id
	}
	return volume.ChunkID{Dataset: id, Index: chunk}
}

// datasetName inverts chunkID's mapping for eviction reports.
func (w *Worker) datasetName(id volume.DatasetID) string {
	for name, d := range w.datasetIDs {
		if d == id {
			return name
		}
	}
	return ""
}

// loadBrick returns the brick for the task, loading from disk on a miss.
// It reports whether the access hit and what was evicted.
func (w *Worker) loadBrick(dataset string, chunk int) (*raycast.Brick, bool, []ChunkRef, error) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	cid := w.chunkID(dataset, chunk)
	if w.lru.Touch(cid) {
		return w.bricks[cid], true, nil, nil
	}
	m := w.catalog.Get(dataset)
	if m == nil {
		return nil, false, nil, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	brick, err := m.LoadBrick(chunk)
	if err != nil {
		return nil, false, nil, err
	}
	evictedIDs := w.lru.Insert(cid, brick.Grid.SizeBytes())
	var evicted []ChunkRef
	for _, ev := range evictedIDs {
		delete(w.bricks, ev)
		evicted = append(evicted, ChunkRef{Dataset: w.datasetName(ev.Dataset), Index: ev.Index})
	}
	w.bricks[cid] = brick
	return brick, false, evicted, nil
}

// prefetch warms one chunk ahead of predicted demand (§5.8). It runs inline
// in the serve loop: the head's planner only issues warms into windows it
// predicts idle, so a directive racing queued demand work was mis-planned
// and is cheap to absorb; a production worker would run it on the dedicated
// I/O thread of the paper's §V-C split. The brick enters the cache at the
// cold end so a warm can never displace recently-demanded data.
func (w *Worker) prefetch(p PrefetchBody) PrefetchDoneBody {
	start := time.Now()
	done := PrefetchDoneBody{Dataset: p.Dataset, Chunk: p.Chunk}
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	cid := w.chunkID(p.Dataset, p.Chunk)
	if w.lru.Contains(cid) {
		done.Resident = true
		return done
	}
	m := w.catalog.Get(p.Dataset)
	if m == nil {
		w.Logf("worker %s: prefetch for unknown dataset %q", w.Name, p.Dataset)
		return done
	}
	brick, err := m.LoadBrick(p.Chunk)
	if err != nil {
		w.Logf("worker %s: prefetch %s/%d failed: %v", w.Name, p.Dataset, p.Chunk, err)
		return done
	}
	evictedIDs, ok := w.lru.InsertCold(cid, brick.Grid.SizeBytes())
	if !ok {
		return done // quota pinned solid; drop the warm
	}
	for _, ev := range evictedIDs {
		delete(w.bricks, ev)
		done.Evicted = append(done.Evicted, ChunkRef{Dataset: w.datasetName(ev.Dataset), Index: ev.Index})
	}
	w.bricks[cid] = brick
	done.Loaded = true
	done.Nanos = time.Since(start).Nanoseconds()
	return done
}

// execute runs one task and builds its fragment. When the head enabled
// distributed-framebuffer compositing (tileSize > 0), the rendered layer is
// split into per-tile fragments and the returned FragmentBody carries only
// the execution facts (nil Data); otherwise tiles is nil and the body holds
// the full frame.
func (w *Worker) execute(t TaskBody) (FragmentBody, []TileFragBody, error) {
	start := time.Now()
	brick, hit, evicted, err := w.loadBrick(t.Dataset, t.Chunk)
	if err != nil {
		return FragmentBody{}, nil, err
	}
	cam := raycast.NewCamera(t.Render.Angle, t.Render.Elevation, t.Render.Dist)
	tf := raycast.PresetTF(w.catalog.Get(t.Dataset).TF)
	frag := raycast.RenderBrick(brick, cam, tf, raycast.Options{
		Width:    t.Render.Width,
		Height:   t.Render.Height,
		Mode:     raycast.Mode(t.Render.Mode),
		IsoValue: t.Render.IsoValue,
		Parallel: true,
	})
	meta := FragmentBody{
		JobID:     t.JobID,
		TaskIndex: t.TaskIndex,
		W:         frag.Image.W, H: frag.Image.H,
		Codec:   w.Codec,
		Depth:   frag.Depth,
		Hit:     hit,
		Evicted: evicted,
	}
	if ts := w.tileSize; ts > 0 {
		layout := dfb.NewLayout(frag.Image.W, frag.Image.H, ts)
		tiles := make([]TileFragBody, layout.NumTiles())
		for tl := range tiles {
			x0, y0, x1, y1 := layout.Bounds(tl)
			tm := &img.Image{W: x1 - x0, H: y1 - y0, Pix: dfb.ExtractTile(layout, frag.Image, tl)}
			data, err := encodePixels(tm, w.Codec)
			if err != nil {
				return FragmentBody{}, nil, err
			}
			tiles[tl] = TileFragBody{
				JobID:     t.JobID,
				TaskIndex: t.TaskIndex,
				Tile:      tl,
				FrameW:    frag.Image.W,
				FrameH:    frag.Image.H,
				Depth:     frag.Depth,
				Codec:     w.Codec,
				Data:      data,
			}
		}
		meta.ExecNanos = time.Since(start).Nanoseconds()
		return meta, tiles, nil
	}
	data, err := encodePixels(frag.Image, w.Codec)
	if err != nil {
		return FragmentBody{}, nil, err
	}
	meta.Data = data
	meta.ExecNanos = time.Since(start).Nanoseconds()
	return meta, nil, nil
}

// Serve processes messages from the head until the connection closes or a
// shutdown message arrives. Tasks execute strictly FIFO.
func (w *Worker) Serve(conn transport.Conn) error {
	hello := HelloBody{Name: w.Name, MemQuota: int64(w.quota), NodeID: w.Node()}
	return w.serve(conn, hello)
}

// Rejoin reconnects this worker to a head that has marked it down,
// reclaiming the given node slot. The worker arrives with whatever cache it
// has (typically cold: a restarted process uses a fresh Worker); the head
// assumes cold and relearns residency from fragment reports.
func (w *Worker) Rejoin(conn transport.Conn, node int) error {
	w.node.Store(int64(node))
	hello := HelloBody{Name: w.Name, MemQuota: int64(w.quota), NodeID: node, Rejoin: true, Shard: w.Shard()}
	return w.serve(conn, hello)
}

// Resync reconnects this worker to a recovered head (§5.10), reclaiming the
// given node slot with a full state re-announcement: actual cache residency
// (MRU-first) and the completed tasks whose results are retained for replay.
// The head reconciles its replayed tables against this ground truth and
// lists still-outstanding tasks in its ack; retained matches are re-sent
// without re-rendering.
func (w *Worker) Resync(conn transport.Conn, node int) error {
	w.node.Store(int64(node))
	hello := HelloBody{
		Name: w.Name, MemQuota: int64(w.quota), NodeID: node,
		Rejoin: true, Resync: true, Shard: w.Shard(),
	}
	for _, e := range w.lru.Export() {
		hello.Cached = append(hello.Cached, ChunkRef{Dataset: w.datasetName(e.ID.Dataset), Index: e.ID.Index})
	}
	for i := range w.retained {
		hello.Completed = append(hello.Completed, w.retained[i].ref)
	}
	return w.serve(conn, hello)
}

// retain remembers one completed result for resync replay, bounded FIFO.
func (w *Worker) retain(r retainedResult) {
	w.retainMu.Lock()
	defer w.retainMu.Unlock()
	for i := range w.retained {
		if w.retained[i].ref == r.ref {
			w.retained[i] = r // a re-render of the same task supersedes
			return
		}
	}
	cap := w.RetainCap
	if cap <= 0 {
		cap = DefaultRetain
	}
	w.retained = append(w.retained, r)
	if len(w.retained) > cap {
		w.retained = w.retained[len(w.retained)-cap:]
	}
}

// replayRetained re-sends retained results for the tasks the head's resync
// ack listed as outstanding: completed-but-unacked work delivers without a
// second render. Tiles go before the execution report, preserving the FIFO
// contract the reducer relies on.
func (w *Worker) replayRetained(conn transport.Conn, outstanding []TaskRef) error {
	want := make(map[TaskRef]struct{}, len(outstanding))
	for _, ref := range outstanding {
		want[ref] = struct{}{}
	}
	for i := range w.retained {
		r := &w.retained[i]
		if _, ok := want[r.ref]; !ok {
			continue
		}
		for t := range r.tiles {
			if err := send(conn, transport.KindTileFrag, r.ref.JobID, r.tiles[t]); err != nil {
				return err
			}
		}
		if err := send(conn, transport.KindFragment, r.ref.JobID, r.frag); err != nil {
			return err
		}
		w.Logf("worker %s: replayed retained J%d/T%d", w.Name, r.ref.JobID, r.ref.TaskIndex)
	}
	return nil
}

// runTask executes one task and ships its output: tile fragments first,
// then the execution report — the per-task FIFO contract the head's reducer
// relies on, which holds per goroutine under fractional slots too. The
// returned error is a dead connection; execution failures are reported to
// the head and absorbed.
func (w *Worker) runTask(conn transport.Conn, msgID uint64, t TaskBody) error {
	frag, tiles, err := w.execute(t)
	if err != nil {
		w.Logf("worker %s: task J%d/T%d failed: %v", w.Name, t.JobID, t.TaskIndex, err)
		return send(conn, transport.KindError, msgID, ErrorBody{Msg: err.Error()})
	}
	w.tasks.Add(1)
	w.retain(retainedResult{
		ref:   TaskRef{JobID: t.JobID, TaskIndex: t.TaskIndex},
		frag:  frag,
		tiles: tiles,
	})
	// Tile fragments go first: the connection preserves send order, so the
	// head sees every tile before the execution report that completes the
	// task's accounting.
	for i := range tiles {
		if err := send(conn, transport.KindTileFrag, msgID, tiles[i]); err != nil {
			return err
		}
	}
	return send(conn, transport.KindFragment, msgID, frag)
}

// serve sends the hello, starts the heartbeat beacon, and runs the task
// loop.
func (w *Worker) serve(conn transport.Conn, hello HelloBody) error {
	if err := send(conn, transport.KindHello, 0, hello); err != nil {
		return err
	}
	// Fractional-slot executors must drain before the session ends: a
	// Resync after reconnect reads the retained results they write.
	defer w.execWG.Wait()
	if w.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(w.Heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					// A send error means the connection is gone; the task
					// loop sees it too and returns.
					if err := conn.Send(transport.Message{Kind: transport.KindHeartbeat}); err != nil {
						return
					}
				}
			}
		}()
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			if err == transport.ErrClosed {
				return nil
			}
			return err
		}
		switch msg.Kind {
		case transport.KindShutdown:
			return nil
		case transport.KindHello:
			// The head's ack assigns (or confirms) this worker's node slot.
			var ack HelloBody
			if err := transport.Decode(msg.Body, &ack); err == nil {
				w.node.Store(int64(ack.NodeID))
				w.shard.Store(int64(ack.Shard))
				w.tileSize = ack.TileSize
				w.slots.Store(int64(ack.Slots))
				if ack.Slots > 1 {
					w.sem = make(chan struct{}, ack.Slots)
				} else {
					w.sem = nil
				}
				if len(ack.Outstanding) > 0 {
					if err := w.replayRetained(conn, ack.Outstanding); err != nil {
						return err
					}
				}
			}
		case transport.KindTask:
			var t TaskBody
			if err := transport.Decode(msg.Body, &t); err != nil {
				w.Logf("worker %s: bad task: %v", w.Name, err)
				continue
			}
			if w.sem != nil {
				// Fractional slots (§5.13): run up to K tasks concurrently,
				// blocking intake at the K+1th so the head's FIFO still
				// backpressures. A send failure here means the connection
				// died; the serve loop's Recv sees it too and returns.
				w.sem <- struct{}{}
				w.execWG.Add(1)
				go func(msgID uint64, t TaskBody) {
					defer w.execWG.Done()
					defer func() { <-w.sem }()
					if err := w.runTask(conn, msgID, t); err != nil {
						w.Logf("worker %s: task J%d/T%d send failed: %v", w.Name, t.JobID, t.TaskIndex, err)
					}
				}(msg.ID, t)
				continue
			}
			if err := w.runTask(conn, msg.ID, t); err != nil {
				return err
			}
		case transport.KindPrefetch:
			var p PrefetchBody
			if err := transport.Decode(msg.Body, &p); err != nil {
				w.Logf("worker %s: bad prefetch: %v", w.Name, err)
				continue
			}
			if err := send(conn, transport.KindPrefetchDone, msg.ID, w.prefetch(p)); err != nil {
				return err
			}
		default:
			w.Logf("worker %s: unexpected %v message", w.Name, msg.Kind)
		}
	}
}

// ReconnectConfig tunes ServeLoop's reconnection policy.
type ReconnectConfig struct {
	// Base is the first backoff delay (default 100ms); Max caps the
	// exponential growth (default 5s).
	Base, Max time.Duration
	// Retries bounds consecutive failed reconnect attempts (default 8);
	// a session that survives longer than Base resets the counter.
	Retries int
	// Seed fixes the jitter source for deterministic tests; 0 seeds from
	// the clock.
	Seed int64
}

// ServeLoop keeps this worker connected across head restarts: dial, serve,
// and on failure redial with exponential backoff plus jitter. A first
// connection introduces the worker with Serve; once a node slot is known,
// reconnections go through Resync so a recovered head reconciles against
// the worker's announced state. A clean shutdown (the head's Shutdown
// message) returns nil; exhausting the retry budget returns the reason the
// loop gave up.
func (w *Worker) ServeLoop(dial func() (transport.Conn, error), rc ReconnectConfig) error {
	base := rc.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := rc.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	retries := rc.Retries
	if retries <= 0 {
		retries = 8
	}
	seed := rc.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(seed))
	attempt := 0
	for {
		conn, err := dial()
		if err == nil {
			began := time.Now()
			var serr error
			if node := w.Node(); node >= 0 {
				serr = w.Resync(conn, node)
			} else {
				serr = w.Serve(conn)
			}
			conn.Close()
			if serr == nil {
				// A clean exit: the head sent Shutdown (or closed the
				// connection in an orderly way). The loop is done.
				return nil
			}
			w.Logf("worker %s: session ended: %v", w.Name, serr)
			if time.Since(began) > base {
				attempt = 0 // the session was real; reset the retry budget
			}
		} else {
			w.Logf("worker %s: dial failed: %v", w.Name, err)
		}
		attempt++
		if attempt > retries {
			return fmt.Errorf("worker %s: giving up after %d reconnect attempts", w.Name, attempt-1)
		}
		backoff := base << (attempt - 1)
		if backoff > max || backoff <= 0 {
			backoff = max
		}
		backoff += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
		w.Logf("worker %s: reconnecting in %v (attempt %d/%d)", w.Name, backoff.Round(time.Millisecond), attempt, retries)
		time.Sleep(backoff)
	}
}

// CachedChunks reports the worker's resident chunk count, for tests.
func (w *Worker) CachedChunks() int { return w.lru.Len() }

// CacheStats reports the worker cache's cumulative hit/miss/eviction
// counters. Like CachedChunks it is not synchronized with a live serve
// loop; read it after Serve returns or accept approximate values.
func (w *Worker) CacheStats() cache.Stats { return w.lru.Stats() }
