package service

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/fracshare"
	"vizsched/internal/units"
)

// TestFracShareLiveSlots runs the live cluster with fractional slots: the
// hello ack must carry K to the workers, concurrent renders must all
// complete correctly, and the head's busy-share account must show up in
// both the stats snapshot and the fracshare_* metrics family.
func TestFracShareLiveSlots(t *testing.T) {
	cat := testCatalog(t, 3)
	cl, err := StartClusterWith(core.NewLocalityScheduler(5*units.Millisecond), cat, 2, 64*units.MB,
		func(h *Head) { h.FracShare = &fracshare.Config{Slots: 3} })
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for u := 0; u < 4; u++ {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := cl.Connect()
			defer client.Close()
			name := []string{"supernova", "plume"}[u%2]
			for f := 0; f < 2; f++ {
				if _, err := client.Render(RenderBody{
					Dataset: name,
					Angle:   float64(u) * 0.4, Dist: 2.4,
					Width: 20, Height: 20,
					Action: u + 1,
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for i := 0; i < 2; i++ {
		if got := cl.Worker(i).Slots(); got != 3 {
			t.Errorf("worker %d slots = %d, want 3 from the hello ack", i, got)
		}
	}

	s := cl.Head.Stats()
	fs := s.FracShare
	if fs == nil {
		t.Fatal("StatsSnapshot.FracShare nil with the layer on")
	}
	if fs.Slots != 3 {
		t.Errorf("snapshot slots = %d, want 3", fs.Slots)
	}
	if fs.TasksDispatched < 8*3 {
		t.Errorf("tasks dispatched = %d, want >= %d (8 jobs x 3 chunks)", fs.TasksDispatched, 8*3)
	}
	if fs.TasksCompleted != fs.TasksDispatched {
		t.Errorf("tasks completed = %d, dispatched = %d: account did not settle", fs.TasksCompleted, fs.TasksDispatched)
	}
	if len(fs.NodeBusyPct) != 2 || len(fs.NodeInFlight) != 2 {
		t.Fatalf("per-node gauges sized %d/%d, want 2", len(fs.NodeBusyPct), len(fs.NodeInFlight))
	}
	var busy float64
	for k := range fs.NodeBusyPct {
		if fs.NodeInFlight[k] != 0 {
			t.Errorf("node %d in-flight = %d after all jobs delivered", k, fs.NodeInFlight[k])
		}
		busy += fs.NodeBusyPct[k]
	}
	if busy <= 0 {
		t.Error("busy-share integral is zero after 8 rendered jobs")
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	cl.Head.StatsHandler().ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"vizsched_fracshare_slots 3",
		"vizsched_fracshare_tasks_dispatched_total",
		"vizsched_fracshare_node_busy_pct{node=\"0\"}",
		"vizsched_fracshare_node_in_flight{node=\"1\"}",
		"vizsched_fracshare_busy_pct{quantile=\"0.95\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFracShareOffByDefault pins the nil-config contract: no slot count in
// the hello ack, no fracshare section in the snapshot, no fracshare_* lines
// in /metrics.
func TestFracShareOffByDefault(t *testing.T) {
	cat := testCatalog(t, 2)
	cl, err := StartCluster(core.NewLocalityScheduler(5*units.Millisecond), cat, 1, 64*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	client := cl.Connect()
	defer client.Close()
	if _, err := client.Render(RenderBody{Dataset: "plume", Dist: 2.4, Width: 16, Height: 16}); err != nil {
		t.Fatal(err)
	}
	if got := cl.Worker(0).Slots(); got != 0 {
		t.Errorf("worker slots = %d with the layer off, want 0", got)
	}
	if s := cl.Head.Stats(); s.FracShare != nil {
		t.Error("StatsSnapshot.FracShare non-nil with the layer off")
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	cl.Head.StatsHandler().ServeHTTP(rec, req)
	if strings.Contains(rec.Body.String(), "fracshare") {
		t.Error("/metrics exposes fracshare_* lines with the layer off")
	}
}

// TestFracTrackerAccounting drives the busy-share account directly: a node
// with 2 of K=2 slots busy integrates at full share, releases clamp at
// zero, and quantiles appear once sampled.
func TestFracTrackerAccounting(t *testing.T) {
	tr := newFracTracker(2, 2)
	tr.noteDispatch(0)
	tr.noteDispatch(0)
	tr.noteDispatch(0) // over-subscribed: share clamps at 1
	time.Sleep(5 * time.Millisecond)
	tr.sample()
	tr.noteDone(0, true)
	tr.noteDone(0, true)
	tr.noteDone(0, false) // a release, not a completion
	tr.noteDone(0, false) // straggler: clamped, never negative
	tr.noteDone(-1, true) // out of range: ignored
	s := tr.snapshot()
	if s.Slots != 2 || s.TasksDispatched != 3 || s.TasksCompleted != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.NodeInFlight[0] != 0 || s.NodeInFlight[1] != 0 {
		t.Errorf("in-flight = %v, want zeros", s.NodeInFlight)
	}
	if s.NodeBusyPct[0] <= 0 {
		t.Error("node 0 accumulated no busy share")
	}
	if s.NodeBusyPct[1] != 0 {
		t.Errorf("idle node 1 busy = %v", s.NodeBusyPct[1])
	}
	if s.BusyP95Pct <= 0 {
		t.Error("sampled quantile is zero despite a fully busy node")
	}
}
