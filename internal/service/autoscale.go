package service

import (
	"slices"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/journal"
	"vizsched/internal/transport"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file wires the elastic autoscaler (§5.12) into the live head. The
// same pure policy the simulator runs is evaluated on the dispatcher's
// health-check tick; executing its decisions maps onto the service's
// machinery:
//
//	scale-up: the head cannot provision hardware, so the decision raises the
//	          desired-workers gauge (exported on /metrics) and bring-up rides
//	          the existing rejoin path — an operator or an external
//	          provisioner attaches a worker, and the dispatcher puts it to
//	          work the moment the hello lands.
//	drain:    the victim stops taking work (HealthDraining: schedulers only
//	          assign to Alive nodes), its dispatched-but-incomplete batch
//	          tasks migrate back to the queue (counted as migrations, never
//	          as crash redispatch — a duplicate completion from the victim
//	          is absorbed by the same first-report-wins dedup the deadline
//	          machinery uses), its would-be-orphan chunks are pre-warmed
//	          onto survivors through the prefetch governor, and only when
//	          its in-flight work has finished and the warms have landed does
//	          the head demote its homes, journal the re-home, and send the
//	          worker a clean Shutdown. Nothing touches workersDown, the
//	          MTTR accumulators, or the re-seed counters: a drain is never
//	          accounted as a crash.
//
// All liveScaler state is dispatcher-owned; only the stats mirror is shared.

// liveScaler is the dispatcher-side drain/scale machinery around the policy.
type liveScaler struct {
	h   *Head
	pol *autoscale.Policy

	lastEval units.Time

	// draining is the node mid-drain (-1 when none).
	draining     core.NodeID
	drainStart   time.Time
	drainPending []volume.ChunkID // orphans awaiting evacuation warms

	// warming holds the bring-up pre-warm deadline for each worker that
	// recently (re)joined: until it passes, every control tick offers the
	// predictor's hottest chunks to the governor for copying onto the new
	// node, so bring-up joins the fleet warm.
	warming map[core.NodeID]time.Time

	// desired is the fleet size the policy wants; exported as a gauge so an
	// external provisioner knows when to attach (or stop re-attaching)
	// workers.
	desired int
}

// newLiveScaler normalizes the config against the registered fleet and
// seeds the desired-workers gauge. Called from the dispatcher at startup.
func (h *Head) newLiveScaler() *liveScaler {
	cfg := *h.Autoscale
	n := len(h.workers)
	if cfg.MaxNodes <= 0 || cfg.MaxNodes > n {
		cfg.MaxNodes = n
	}
	if cfg.MinNodes > cfg.MaxNodes {
		cfg.MinNodes = cfg.MaxNodes
	}
	s := &liveScaler{h: h, pol: autoscale.NewPolicy(&cfg), draining: -1, desired: n,
		warming: make(map[core.NodeID]time.Time)}
	h.stats.desiredWorkers.Store(int64(n))
	return s
}

// tick runs once per dispatcher health-check: advance any drain in flight,
// and — at the policy's own interval — sample the signals and act.
func (s *liveScaler) tick(inflight map[core.JobID]*liveJob, queueLen func() int,
	migrate func(*liveJob, int), sendPrefetches func([]core.PrefetchDirective), runSched func()) {
	h := s.h
	if s.draining >= 0 {
		s.advance(inflight, sendPrefetches)
	}
	s.pumpWarmup(sendPrefetches)
	now := h.now()
	if now.Sub(s.lastEval) < s.pol.Config().Interval {
		return
	}
	s.lastEval = now
	switch s.pol.Evaluate(now, s.signals(queueLen)) {
	case autoscale.ScaleUp:
		if s.desired < s.pol.Config().MaxNodes {
			s.desired++
			h.stats.desiredWorkers.Store(int64(s.desired))
			h.Logf("head: autoscale wants %d workers; bring-up rides the rejoin path", s.desired)
		}
	case autoscale.Drain:
		s.begin(inflight, migrate, sendPrefetches, runSched)
	}
}

// noteBringup starts the bring-up pre-warm window for a worker that just
// (re)joined through the rejoin path — the live half of pre-warmed node
// bring-up. Dispatcher goroutine only.
func (s *liveScaler) noteBringup(k core.NodeID) {
	s.warming[k] = time.Now().Add(s.pol.Config().Warmup.Std())
}

// pumpWarmup offers one governed bring-up warm per warming worker per tick,
// copying the predictor's hottest chunks onto nodes inside their warm-up
// window so they take interactive work warm instead of paying demand misses.
func (s *liveScaler) pumpWarmup(sendPrefetches func([]core.PrefetchDirective)) {
	h := s.h
	if h.prefc == nil || len(s.warming) == 0 {
		return
	}
	nodes := make([]core.NodeID, 0, len(s.warming))
	for k := range s.warming {
		nodes = append(nodes, k)
	}
	slices.Sort(nodes)
	now := h.now()
	for _, k := range nodes {
		if time.Now().After(s.warming[k]) || h.state.Health(k) != core.HealthUp {
			delete(s.warming, k)
			continue
		}
		if d, ok := h.prefc.Warmup(now, k, h.state); ok {
			h.stats.bringupWarms.Add(1)
			sendPrefetches([]core.PrefetchDirective{d})
		}
	}
}

// signals samples the policy inputs from dispatcher-owned tables.
func (s *liveScaler) signals(queueLen func() int) autoscale.Signals {
	h := s.h
	sig := autoscale.Signals{QueueDepth: queueLen(), MinHeadroom: 1}
	for k := range h.healthView {
		switch h.state.Health(core.NodeID(k)) {
		case core.HealthUp, core.HealthSuspect:
			sig.ActiveNodes++
		case core.HealthDraining:
			sig.DrainingNodes++
		}
	}
	if h.qosc != nil {
		sig.QueueDepth += h.qosc.QueueLen()
		sig.BatchBacklog = h.qosc.BatchBacklog()
		sig.LadderLevel = int(h.qosc.Level())
		slo := h.qosc.SLO()
		for _, tp := range h.qosc.TenantP95s() {
			if hr := autoscale.Headroom(tp.P95, slo); hr < sig.MinHeadroom {
				sig.MinHeadroom = hr
			}
		}
	}
	var used, quota units.Bytes
	for k := range h.healthView {
		if h.state.Health(core.NodeID(k)) == core.HealthUp {
			used += h.state.Caches[k].Used()
			quota += h.state.Caches[k].Quota()
		}
	}
	if quota > 0 {
		sig.CacheUtilization = float64(used) / float64(quota)
	}
	return sig
}

// begin picks a victim and starts its graceful exit.
func (s *liveScaler) begin(inflight map[core.JobID]*liveJob,
	migrate func(*liveJob, int), sendPrefetches func([]core.PrefetchDirective), runSched func()) {
	h := s.h
	busy := make(map[core.NodeID]bool)
	for _, lj := range inflight {
		for i := range lj.job.Tasks {
			if lj.job.Tasks[i].Assigned && lj.frags[i] == nil {
				busy[lj.nodes[i]] = true
			}
		}
	}
	var cands []autoscale.Candidate
	for k := range h.healthView {
		node := core.NodeID(k)
		if h.state.Health(node) != core.HealthUp {
			continue
		}
		cands = append(cands, autoscale.Candidate{
			ID:           node,
			Busy:         busy[node],
			HomePressure: h.state.Pressure(node),
			CacheBytes:   h.state.Caches[k].Used(),
		})
	}
	victim, ok := autoscale.PickVictim(cands)
	if !ok || !h.state.MarkDraining(victim) {
		return
	}
	h.healthView[victim].Store(int32(core.HealthDraining))
	s.draining = victim
	s.drainStart = time.Now()
	h.stats.drains.Add(1)
	if h.prefc != nil {
		// Abandon any warm the victim had in flight; its cache has no future.
		h.prefc.FailNode(victim)
	}
	// Work stealing: the victim's dispatched-but-incomplete batch tasks
	// migrate back to the queue for idle survivors. Interactive tasks are
	// left to finish — they are latency-critical and nearly done. A late
	// completion from the victim is absorbed by the first-report-wins dedup.
	migrated := 0
	for _, lj := range inflight {
		if lj.job.Class != core.Batch {
			continue
		}
		for i := range lj.job.Tasks {
			t := &lj.job.Tasks[i]
			if t.Assigned && lj.frags[i] == nil && lj.nodes[i] == victim {
				migrate(lj, i)
				migrated++
			}
		}
	}
	s.drainPending = h.state.DrainOrphans(victim)
	h.Logf("head: draining node %d (migrated %d batch tasks, %d orphan chunks to evacuate)",
		victim, migrated, len(s.drainPending))
	s.pump(sendPrefetches)
	if migrated > 0 {
		runSched()
	}
}

// pump drops pending orphans that have landed on a survivor and offers the
// rest to the prefetch governor for evacuation warming.
func (s *liveScaler) pump(sendPrefetches func([]core.PrefetchDirective)) {
	if len(s.drainPending) == 0 {
		return
	}
	h := s.h
	live := s.drainPending[:0]
	for _, c := range s.drainPending {
		if h.state.ReplicaCount(c) == 0 {
			live = append(live, c)
		}
	}
	s.drainPending = live
	if h.prefc == nil || len(s.drainPending) == 0 {
		return
	}
	ds := h.prefc.Evacuate(h.now(), s.drainPending, h.state, s.draining)
	h.stats.orphanWarms.Add(int64(len(ds)))
	sendPrefetches(ds)
}

// advance progresses the drain in flight and completes it once the victim
// is idle and its working set is safe (or MaxDrain expired).
func (s *liveScaler) advance(inflight map[core.JobID]*liveJob, sendPrefetches func([]core.PrefetchDirective)) {
	h := s.h
	if h.state.Health(s.draining) != core.HealthDraining {
		// The victim crashed (or went silent) mid-drain: nodeDown's crash
		// path has taken over — MarkFailed, redispatch, Recovery accounting.
		s.draining = -1
		s.drainPending = nil
		return
	}
	s.pump(sendPrefetches)
	idle := true
	for _, lj := range inflight {
		for i := range lj.job.Tasks {
			if lj.job.Tasks[i].Assigned && lj.frags[i] == nil && lj.nodes[i] == s.draining {
				idle = false
				break
			}
		}
		if !idle {
			break
		}
	}
	expired := time.Since(s.drainStart) >= s.pol.Config().MaxDrain.Std()
	if (idle && len(s.drainPending) == 0) || expired {
		s.finish()
	}
}

// finish demotes the victim's home sets, journals the re-home, and retires
// the worker with a clean Shutdown — the voluntary exit that never touches
// workersDown, the MTTR accumulators, or the re-seed counters.
func (s *liveScaler) finish() {
	h := s.h
	victim := s.draining
	now := h.now()
	// One KindRehome record: a standby's replay runs MarkFailed, which
	// re-homes to the same survivors DemoteHomes picked, so the recovered
	// tables converge without a drain-specific record kind.
	h.journalRec(journal.KindRehome, 0, -1, victim, now, nil)
	var rep core.RehomeReport
	var orphans []volume.ChunkID
	h.trackWaste(func() { rep, orphans = h.state.DemoteHomes(victim) })
	h.stats.drainRehomed.Add(int64(rep.Rehomed))
	h.stats.drainOrphaned.Add(int64(len(orphans)))
	h.state.CompleteDrain(victim)
	h.healthView[victim].Store(int32(core.HealthDown))
	if h.OnNodeDown != nil {
		h.OnNodeDown(victim)
	}
	// A clean Shutdown: the worker's serve loop returns nil and its
	// reconnect loop stops redialing. The eventual connection error event is
	// swallowed by nodeDown's already-down guard. downAt stays zero, so a
	// later scale-up rejoin of this slot contributes no MTTR sample.
	_ = h.senders[victim].Send(transport.Message{Kind: transport.KindShutdown})
	h.senders[victim].Close()
	s.draining = -1
	s.drainPending = nil
	if s.desired > s.pol.Config().MinNodes {
		s.desired--
	}
	h.stats.desiredWorkers.Store(int64(s.desired))
	h.stats.drainsCompleted.Add(1)
	h.Logf("head: node %d drained in %v (%d chunks re-homed, %d orphaned)",
		victim, time.Since(s.drainStart).Round(time.Millisecond), rep.Rehomed, len(orphans))
}
