package metrics

import (
	"fmt"

	"vizsched/internal/units"
)

// PrefetchOutcome is the prefetching layer's run summary (§5.8): volume
// moved, and how the warmed chunks settled — demand-hit, hidden-hit
// (absorbed in flight), or evicted unused.
type PrefetchOutcome struct {
	// Issued counts directives the planner emitted; Loaded counts warms
	// that completed; Cancelled counts warms abandoned before completion
	// (node busy/failed or demand absorbed them).
	Issued    int64
	Loaded    int64
	Cancelled int64

	// Hits counts demand tasks that found their chunk prefetch-resident;
	// HiddenHits counts demand tasks that absorbed an in-flight warm and
	// paid only the remaining load time; Wasted counts warmed chunks
	// evicted before any demand touch.
	Hits       int64
	HiddenHits int64
	Wasted     int64

	// BytesMoved is the total warming volume the governor granted.
	BytesMoved units.Bytes
}

// HitRatio returns hits per loaded warm; with nothing loaded, zero.
func (o *PrefetchOutcome) HitRatio() float64 { return o.ratio(o.Hits) }

// HiddenHitRatio returns hidden hits per issued warm.
func (o *PrefetchOutcome) HiddenHitRatio() float64 { return o.ratio(o.HiddenHits) }

// WasteRatio returns warmed-then-evicted chunks per loaded warm.
func (o *PrefetchOutcome) WasteRatio() float64 { return o.ratio(o.Wasted) }

func (o *PrefetchOutcome) ratio(n int64) float64 {
	if o.Loaded == 0 {
		return 0
	}
	return float64(n) / float64(o.Loaded)
}

// String renders a one-line summary.
func (o *PrefetchOutcome) String() string {
	return fmt.Sprintf(
		"prefetch: issued=%d loaded=%d cancelled=%d hits=%d hidden=%d wasted=%d moved=%v",
		o.Issued, o.Loaded, o.Cancelled, o.Hits, o.HiddenHits, o.Wasted, o.BytesMoved)
}
