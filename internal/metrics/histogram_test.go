package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram misbehaves")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Error("String for empty")
	}
	if !strings.Contains(h.Render(8), "no samples") {
		t.Error("Render for empty")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	samples := make([]units.Duration, 10000)
	for i := range samples {
		// Log-uniform from 10µs to 10s.
		exp := rng.Float64() * 6 // 10^1..10^7 µs
		d := units.Duration(10 * float64(units.Microsecond) * pow10(exp))
		samples[i] = d
		h.Add(d)
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		ratio := float64(got) / float64(want)
		// Bucketed quantiles must be within one bucket (~±10%).
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("q=%v: got %v want %v (ratio %.3f)", q, got, want, ratio)
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	if x > 0 {
		// Linear blend is plenty for test data generation.
		r *= 1 + 9*x
	}
	return r
}

func TestHistogramUnderflow(t *testing.T) {
	var h Histogram
	h.Add(units.Duration(10)) // 10ns: below the 1µs floor
	h.Add(2 * units.Second)
	if h.N() != 2 {
		t.Errorf("N = %d", h.N())
	}
	if h.Quantile(0) != 0 {
		t.Error("q0 should report the underflow as 0")
	}
	if h.Quantile(1) < units.Second {
		t.Errorf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Add(units.Millisecond)
		b.Add(units.Second)
	}
	a.Merge(&b)
	if a.N() != 200 {
		t.Errorf("merged N = %d", a.N())
	}
	if a.P50() > 10*units.Millisecond {
		t.Errorf("p50 = %v", a.P50())
	}
	if a.P99() < 500*units.Millisecond {
		t.Errorf("p99 = %v", a.P99())
	}
}

func TestHistogramRender(t *testing.T) {
	var h Histogram
	for i := 0; i < 50; i++ {
		h.Add(units.Millisecond)
		h.Add(100 * units.Millisecond)
	}
	out := h.Render(8)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines > 10 {
		t.Errorf("render produced %d rows, want ≤ 10", lines)
	}
}

// Property: quantiles are monotone in q and bounded by observed extremes'
// buckets.
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(raw []uint32, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, r := range raw {
			h.Add(units.Duration(r%1e9) + units.Microsecond)
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return h.Quantile(a) <= h.Quantile(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
