// Package metrics collects and summarizes the quantities the paper's
// evaluation reports: per-class job latency (Definition 3), per-action
// framerate (Definition 4), batch working time (Definition 2), data-reuse
// hit rate, and scheduling cost (Table III). All aggregation is streaming —
// scenario 4 completes 400k+ jobs and storing per-job samples would
// dominate memory.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"vizsched/internal/units"
)

// Running accumulates count/mean/min/max of a duration-valued stream.
type Running struct {
	N         int64
	sum       float64
	Min, Max  units.Duration
	populated bool
}

// Add folds one observation in.
func (r *Running) Add(d units.Duration) {
	r.N++
	r.sum += float64(d)
	if !r.populated || d < r.Min {
		r.Min = d
	}
	if !r.populated || d > r.Max {
		r.Max = d
	}
	r.populated = true
}

// Mean returns the average, or zero with no observations.
func (r *Running) Mean() units.Duration {
	if r.N == 0 {
		return 0
	}
	return units.Duration(r.sum / float64(r.N))
}

// ActionStat tracks one action's framerate per Definition 4: over the n
// completed jobs of the action, framerate = (n−1)/(JF(n)−JF(1)).
type ActionStat struct {
	Completed   int64
	FirstFinish units.Time
	LastFinish  units.Time
	// FirstLatency is the latency of the action's first completed job — the
	// cold-start cost a user feels when a session starts, and the number
	// predictive prefetching (§5.8) attacks.
	FirstLatency units.Duration
}

// Finish folds one job completion in. Finish times from a DES arrive in
// nondecreasing order, so first/last tracking suffices.
func (a *ActionStat) Finish(at units.Time) {
	if a.Completed == 0 {
		a.FirstFinish = at
	}
	a.LastFinish = at
	a.Completed++
}

// Framerate returns the achieved frames per second, or zero when fewer than
// two jobs completed.
func (a *ActionStat) Framerate() float64 {
	if a.Completed < 2 {
		return 0
	}
	span := a.LastFinish.Sub(a.FirstFinish).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(a.Completed-1) / span
}

// ClassStats aggregates one job class.
type ClassStats struct {
	Issued    int64
	Completed int64
	Latency   Running // JF − JI
	Working   Running // JF − JS (the paper's batch "working time")
	// LatencyHist captures the latency distribution for tail analysis.
	LatencyHist Histogram
}

// Report is the full result of one scenario run under one scheduler — one
// bar group of Figs. 4–7 plus one row of Table III.
type Report struct {
	Scheduler string
	Horizon   units.Time

	Interactive ClassStats
	Batch       ClassStats
	// actions tracks per-action framerates for interactive actions.
	actions map[int]*ActionStat

	// Hits and Misses count task accesses by actual cache residency.
	Hits, Misses int64
	// Loads counts disk loads performed; equal to Misses in the serial node
	// model, but smaller under overlapped I/O where waiting tasks coalesce
	// onto one load.
	Loads int64
	// Evictions counts actual cache evictions across all nodes (swap volume).
	Evictions int64

	// SchedWall is real wall-clock time spent inside Schedule calls;
	// SchedInvocations counts calls; JobsScheduled counts distinct jobs that
	// received at least one assignment.
	SchedWall        time.Duration
	SchedInvocations int64
	JobsScheduled    int64

	// BusyNodeTime accumulates node-seconds of task execution for the
	// utilization figure.
	BusyNodeTime units.Duration
	Nodes        int

	// GuardIdle and QueueIdle split sampled node idleness while batch work is
	// pending (§5.13). GuardIdle is idleness attributable to OURS's ε-guard:
	// the node was recently interactive and every pending batch group would
	// be a cache miss there, so filling it would risk the next frame.
	// QueueIdle is every other sampled idle-with-pending-work interval.
	// Sampled once per scheduling cycle for periodic schedulers; both stay
	// zero for on-arrival schedulers.
	GuardIdle units.Duration
	QueueIdle units.Duration

	// BatchStretch accumulates per-batch-job stretch: (JF − JI) divided by
	// the job's largest task execution — the slowdown a job suffered relative
	// to running alone, the DFRS comparison's fairness metric.
	BatchStretch FloatRunning

	// Recovery aggregates the run's fault-tolerance outcomes (§VI-D).
	Recovery Recovery

	// tenants tracks per-tenant issue/completion streams for fairness
	// analysis; populated only for multi-tenant workloads (see tenant.go).
	tenants map[int]*TenantStat
	// QoS carries the admission/degradation outcome when the run had the
	// QoS subsystem enabled; nil otherwise.
	QoS *QoSOutcome
	// Prefetch carries the chunk-warming outcome when the run had the
	// prefetching layer enabled; nil otherwise.
	Prefetch *PrefetchOutcome
	// Autoscale carries the elastic-fleet outcome when the run had the
	// autoscaler enabled; nil otherwise.
	Autoscale *AutoscaleOutcome
	// FracShare carries the fractional-capacity outcome when the run had the
	// fracshare layer enabled; nil otherwise.
	FracShare *FracShareOutcome
}

// Recovery tracks what faults cost a run: how much work had to be
// re-dispatched, how long nodes stayed down (MTTR), and how deep and how
// long the interactive framerate dipped below a target while the cluster
// was degraded. Frame completions are bucketed into one-second windows so
// the dip is measurable without storing per-job samples.
type Recovery struct {
	// Faults counts injected fault events (each flap cycle counts once).
	Faults int64
	// TasksRedispatched counts tasks returned to the queue by node crashes.
	TasksRedispatched int64
	// Downtime accumulates per-interval node down time; Mean() is MTTR.
	Downtime Running

	// ChunksRehomed counts chunks whose home moved to a warm surviving
	// replica after a crash; ChunksReseeded counts chunks that lost every
	// replica and had to be re-read from disk (§5.6).
	ChunksRehomed  int64
	ChunksReseeded int64
	// EffectiveDowntime accumulates per-interval *service-impact* downtime:
	// when a crash's orphaned chunks were all re-homed warm, the interval
	// ends at the re-home, not at the node's later cold repair — the window
	// between re-home and MarkRepaired is warm-restore time the service
	// never felt, and folding it in would double-count the outage.
	// ServiceMTTR is its mean; without re-homing it equals Downtime.
	EffectiveDowntime Running

	// Control-plane (head) outages (§5.10). The head's dispatch state is
	// journaled, so a crash defers work instead of losing it: arrivals
	// buffer until the standby takes over, completion reports are retained
	// on the workers and reconciled at repair.
	HeadCrashes int64
	// ControlOutage accumulates per-outage control-plane downtime; its mean
	// is the control-plane MTTR the hasweep experiment reports.
	ControlOutage Running
	// ArrivalsDeferred counts requests that arrived during a head outage
	// and were admitted at repair; ResultsDeferred counts completion
	// reports workers retained across an outage or partition and the head
	// reconciled afterwards — committed work that survived re-render-free.
	ArrivalsDeferred int64
	ResultsDeferred  int64
	// CommittedAtCrash is the number of jobs fully committed when the head
	// last went down; CommittedLost accumulates committed jobs whose
	// completions vanished across an outage — structurally zero under
	// snapshot+journal recovery, and asserted zero by the failover tests.
	CommittedAtCrash int64
	CommittedLost    int64
	headDownAt       units.Time
	headOpen         bool

	// downAt tracks open down intervals per node; rehomedAt caps an open
	// interval's service impact at the re-home time.
	downAt    map[int]units.Time
	rehomedAt map[int]units.Time
	// firstFault is when degradation began; the dip scan starts there.
	firstFault units.Time
	faulted    bool
	// frames counts interactive job completions per one-second window.
	frames     map[int64]int64
	lastWindow int64
}

// FaultInjected records one fault beginning at now.
func (rc *Recovery) FaultInjected(now units.Time) {
	rc.Faults++
	if !rc.faulted {
		rc.faulted = true
		rc.firstFault = now
	}
}

// TaskRedispatched counts one crash-requeued task.
func (rc *Recovery) TaskRedispatched() { rc.TasksRedispatched++ }

// HeadDown opens a control-plane outage at now, recording how many jobs
// were committed at the crash so HeadRepaired can verify none were lost.
func (rc *Recovery) HeadDown(now units.Time, committed int64) {
	if rc.headOpen {
		return
	}
	rc.HeadCrashes++
	rc.headOpen = true
	rc.headDownAt = now
	rc.CommittedAtCrash = committed
}

// HeadRepaired closes the open control-plane outage, folding its span into
// ControlOutage. committed is the job-completion count after the standby
// reconciled the workers' retained reports; any shortfall against the
// at-crash count is committed loss (zero under journaled recovery).
func (rc *Recovery) HeadRepaired(now units.Time, committed int64) {
	if !rc.headOpen {
		return
	}
	rc.headOpen = false
	rc.ControlOutage.Add(now.Sub(rc.headDownAt))
	if lost := rc.CommittedAtCrash - committed; lost > 0 {
		rc.CommittedLost += lost
	}
}

// ArrivalDeferred counts one request buffered through a head outage.
func (rc *Recovery) ArrivalDeferred() { rc.ArrivalsDeferred++ }

// ResultDeferred counts one completion report retained on its worker while
// the head was unreachable and reconciled afterwards.
func (rc *Recovery) ResultDeferred() { rc.ResultsDeferred++ }

// ControlMTTR is the mean control-plane outage duration; zero without head
// faults.
func (rc *Recovery) ControlMTTR() units.Duration { return rc.ControlOutage.Mean() }

// NodeDown opens a down interval for node k.
func (rc *Recovery) NodeDown(k int, now units.Time) {
	if rc.downAt == nil {
		rc.downAt = make(map[int]units.Time)
	}
	if _, open := rc.downAt[k]; !open {
		rc.downAt[k] = now
	}
}

// NodeRepaired closes node k's down interval, folding the full down→repair
// span into Downtime and the re-home-capped span into EffectiveDowntime:
// once re-homing restored the node's chunks warm elsewhere, MarkRepaired
// returning the node cold must not re-count the warm-restore window.
func (rc *Recovery) NodeRepaired(k int, now units.Time) {
	if at, open := rc.downAt[k]; open {
		rc.Downtime.Add(now.Sub(at))
		end := now
		if re, ok := rc.rehomedAt[k]; ok && re < end {
			end = re
		}
		rc.EffectiveDowntime.Add(end.Sub(at))
		delete(rc.downAt, k)
	}
	delete(rc.rehomedAt, k)
}

// ChunksMoved records one crash's re-homing outcome (§5.6).
func (rc *Recovery) ChunksMoved(rehomed, reseeded int) {
	rc.ChunksRehomed += int64(rehomed)
	rc.ChunksReseeded += int64(reseeded)
}

// NodeRehomed records that node k's orphaned chunks were all re-homed warm
// at now: the outage's service impact ends here. Only meaningful while k's
// down interval is open; calls outside one are ignored.
func (rc *Recovery) NodeRehomed(k int, now units.Time) {
	if _, open := rc.downAt[k]; !open {
		return
	}
	if rc.rehomedAt == nil {
		rc.rehomedAt = make(map[int]units.Time)
	}
	if _, dup := rc.rehomedAt[k]; !dup {
		rc.rehomedAt[k] = now
	}
}

// Frame buckets one interactive completion into its one-second window.
func (rc *Recovery) Frame(finished units.Time) {
	if rc.frames == nil {
		rc.frames = make(map[int64]int64)
	}
	w := int64(finished) / int64(units.Second)
	rc.frames[w]++
	if w > rc.lastWindow {
		rc.lastWindow = w
	}
}

// MTTR is the mean down-interval duration over repaired nodes; zero when
// nothing was repaired.
func (rc *Recovery) MTTR() units.Duration { return rc.Downtime.Mean() }

// ServiceMTTR is the mean *service-impact* down-interval duration: outages
// fully absorbed by warm re-homing end at the re-home, the rest at repair.
// Equal to MTTR when no re-homing happened.
func (rc *Recovery) ServiceMTTR() units.Duration { return rc.EffectiveDowntime.Mean() }

// FramerateDip scans the one-second windows from the first fault to the last
// completed frame and reports how far below target the worst window fell
// (depth, in fps) and the total time spent below target. Without faults both
// are zero: a dip is only attributed to degradation it could stem from.
func (rc *Recovery) FramerateDip(target float64) (depth float64, below units.Duration) {
	if !rc.faulted || target <= 0 {
		return 0, 0
	}
	from := int64(rc.firstFault) / int64(units.Second)
	for w := from; w <= rc.lastWindow; w++ {
		fps := float64(rc.frames[w])
		if fps < target {
			below += units.Second
			if d := target - fps; d > depth {
				depth = d
			}
		}
	}
	return depth, below
}

// NewReport returns an empty report for the named scheduler.
func NewReport(scheduler string, nodes int) *Report {
	return &Report{Scheduler: scheduler, Nodes: nodes, actions: make(map[int]*ActionStat)}
}

// JobIssued records a job entering the system.
func (r *Report) JobIssued(interactive bool) {
	if interactive {
		r.Interactive.Issued++
	} else {
		r.Batch.Issued++
	}
}

// JobCompleted records a finished job.
func (r *Report) JobCompleted(interactive bool, action int, issued, started, finished units.Time) {
	cs := &r.Batch
	if interactive {
		cs = &r.Interactive
	}
	cs.Completed++
	cs.Latency.Add(finished.Sub(issued))
	cs.LatencyHist.Add(finished.Sub(issued))
	cs.Working.Add(finished.Sub(started))
	if interactive {
		a := r.actions[action]
		if a == nil {
			a = &ActionStat{}
			r.actions[action] = a
		}
		if a.Completed == 0 {
			a.FirstLatency = finished.Sub(issued)
		}
		a.Finish(finished)
		r.Recovery.Frame(finished)
	}
}

// TaskAccess records a cache hit or miss.
func (r *Report) TaskAccess(hit bool) {
	if hit {
		r.Hits++
	} else {
		r.Misses++
	}
}

// BusyAdd accumulates node busy time.
func (r *Report) BusyAdd(d units.Duration) { r.BusyNodeTime += d }

// EvictionsAdd accumulates cache evictions.
func (r *Report) EvictionsAdd(n int) { r.Evictions += int64(n) }

// LoadAdd records one disk load.
func (r *Report) LoadAdd() { r.Loads++ }

// TaskExecuted records one serial task execution's cache outcome and node
// time in one call.
func (r *Report) TaskExecuted(hit bool, exec units.Duration, evictions int) {
	r.TaskAccess(hit)
	r.EvictionsAdd(evictions)
	r.BusyAdd(exec)
}

// IdleSampled attributes one cycle's worth of idle-with-pending-batch time on
// one node to the ε-guard (guard=true) or to ordinary queueing.
func (r *Report) IdleSampled(guard bool, d units.Duration) {
	if guard {
		r.GuardIdle += d
	} else {
		r.QueueIdle += d
	}
}

// StretchAdd folds one batch job's stretch in: latency over its largest
// task's execution time. Non-positive bases are skipped.
func (r *Report) StretchAdd(latency, base units.Duration) {
	if base <= 0 {
		return
	}
	r.BatchStretch.Add(float64(latency) / float64(base))
}

// ScheduleCall records one scheduler invocation.
func (r *Report) ScheduleCall(wall time.Duration, jobsAssigned int) {
	r.SchedWall += wall
	r.SchedInvocations++
	r.JobsScheduled += int64(jobsAssigned)
}

// HitRate returns hits/(hits+misses), or zero with no executions.
func (r *Report) HitRate() float64 {
	total := r.Hits + r.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(total)
}

// MeanFramerate averages the per-action framerates over interactive actions
// that completed at least two jobs — the bar heights of Figs. 4–7.
// Summation runs in action order: float addition is not associative, so
// iterating the map directly would make the last bits run-dependent.
func (r *Report) MeanFramerate() float64 {
	ids := make([]int, 0, len(r.actions))
	for id := range r.actions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	var n int
	for _, id := range ids {
		if f := r.actions[id].Framerate(); f > 0 {
			sum += f
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanFirstFrameLatency averages each interactive action's first-frame
// latency — the session cold-start cost. Summation runs in action order for
// the same bit-determinism reason as MeanFramerate.
func (r *Report) MeanFirstFrameLatency() units.Duration {
	ids := make([]int, 0, len(r.actions))
	for id := range r.actions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sum float64
	var n int
	for _, id := range ids {
		if a := r.actions[id]; a.Completed > 0 {
			sum += float64(a.FirstLatency)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return units.Duration(sum / float64(n))
}

// MinFramerate returns the worst per-action framerate (fairness floor).
func (r *Report) MinFramerate() float64 {
	min := math.Inf(1)
	any := false
	for _, a := range r.actions {
		if f := a.Framerate(); f > 0 {
			any = true
			if f < min {
				min = f
			}
		}
	}
	if !any {
		return 0
	}
	return min
}

// ActionCount returns the number of interactive actions observed.
func (r *Report) ActionCount() int { return len(r.actions) }

// AvgSchedCostPerJob is Table III's "avg. cost": wall time per scheduled job.
func (r *Report) AvgSchedCostPerJob() time.Duration {
	if r.JobsScheduled == 0 {
		return 0
	}
	return r.SchedWall / time.Duration(r.JobsScheduled)
}

// Utilization returns mean node busy fraction over the horizon.
func (r *Report) Utilization() float64 {
	if r.Nodes == 0 || r.Horizon == 0 {
		return 0
	}
	return r.BusyNodeTime.Seconds() / (float64(r.Nodes) * r.Horizon.Seconds())
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"%-6s fps=%6.2f  int-lat=%9v  batch-lat=%9v  work=%9v  hit=%6.2f%%  sched=%7v/job  util=%4.0f%%",
		r.Scheduler, r.MeanFramerate(),
		r.Interactive.Latency.Mean().Std().Round(time.Millisecond),
		r.Batch.Latency.Mean().Std().Round(time.Millisecond),
		r.Batch.Working.Mean().Std().Round(time.Millisecond),
		100*r.HitRate(),
		r.AvgSchedCostPerJob().Round(100*time.Nanosecond),
		100*r.Utilization(),
	)
}
