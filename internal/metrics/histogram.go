package metrics

import (
	"fmt"
	"math"
	"strings"

	"vizsched/internal/units"
)

// Histogram is a streaming log-bucketed duration histogram: 8 buckets per
// octave from 1µs to ~1hr, constant memory, good-enough (±9%) quantiles.
// The paper reports mean latencies; a service operator wants tails too.
type Histogram struct {
	counts [bucketCount]int64
	total  int64
	// under counts observations below the first bucket's floor.
	under int64
}

const (
	histMin        = int64(units.Microsecond)
	bucketsPerOct  = 8
	octaves        = 32 // 1µs << 32 ≈ 1.2h
	bucketCount    = bucketsPerOct * octaves
	bucketGrowBase = 1.0905077326652577 // 2^(1/8)
)

// bucketFor maps a duration to its bucket index.
func bucketFor(d units.Duration) int {
	if int64(d) < histMin {
		return -1
	}
	idx := int(math.Log(float64(d)/float64(histMin)) / math.Log(bucketGrowBase))
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketFloor returns the lower bound of bucket i.
func bucketFloor(i int) units.Duration {
	return units.Duration(float64(histMin) * math.Pow(bucketGrowBase, float64(i)))
}

// Add records one observation.
func (h *Histogram) Add(d units.Duration) {
	h.total++
	idx := bucketFor(d)
	if idx < 0 {
		h.under++
		return
	}
	h.counts[idx]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// Quantile returns an approximation of the q-quantile (q in [0,1]).
func (h *Histogram) Quantile(q float64) units.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.total-1))
	if rank < h.under {
		return 0
	}
	seen := h.under
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return bucketFloor(i)
		}
	}
	return bucketFloor(bucketCount - 1)
}

// P50, P95, P99 are the quantiles service dashboards live on.
func (h *Histogram) P50() units.Duration { return h.Quantile(0.50) }
func (h *Histogram) P95() units.Duration { return h.Quantile(0.95) }
func (h *Histogram) P99() units.Duration { return h.Quantile(0.99) }

// QuantileSummary is a point-in-time extraction of the dashboard quantiles —
// a plain value that can be copied out from under a lock and serialized
// (Prometheus exposition, JSON stats) without holding the histogram.
type QuantileSummary struct {
	N             int64
	P50, P95, P99 units.Duration
}

// Summarize extracts the p50/p95/p99 quantiles in one pass-friendly call.
func (h *Histogram) Summarize() QuantileSummary {
	return QuantileSummary{N: h.total, P50: h.P50(), P95: h.P95(), P99: h.P99()}
}

// Quantiles evaluates several quantiles at once, in the order given.
func (h *Histogram) Quantiles(qs ...float64) []units.Duration {
	out := make([]units.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// HistogramDump is a Histogram's serializable form: only the non-empty
// buckets are listed, so dumps stay small and deep-equal for equal
// histograms regardless of how they were built.
type HistogramDump struct {
	Buckets []BucketCount
	Total   int64
	Under   int64
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	Index int
	Count int64
}

// Dump extracts the histogram's state for serialization.
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{Total: h.total, Under: h.under}
	for i, c := range h.counts {
		if c > 0 {
			d.Buckets = append(d.Buckets, BucketCount{Index: i, Count: c})
		}
	}
	return d
}

// Restore overwrites the histogram with a dumped state. Bucket indexes
// outside the compiled range are folded into the last bucket rather than
// dropped, so totals stay consistent across layout changes.
func (h *Histogram) Restore(d HistogramDump) {
	*h = Histogram{total: d.Total, under: d.Under}
	for _, b := range d.Buckets {
		idx := b.Index
		if idx < 0 {
			idx = 0
		}
		if idx >= bucketCount {
			idx = bucketCount - 1
		}
		h.counts[idx] += b.Count
	}
}

// Merge folds another histogram in.
func (h *Histogram) Merge(o *Histogram) {
	h.total += o.total
	h.under += o.under
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// String renders a compact sparkline summary.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "histogram{empty}"
	}
	return fmt.Sprintf("histogram{n=%d p50=%v p95=%v p99=%v}",
		h.total, h.P50().Std(), h.P95().Std(), h.P99().Std())
}

// Render draws an ASCII bar chart of the non-empty region, at most maxRows
// rows (merging adjacent buckets as needed) — for cmd/vizsim -v output.
func (h *Histogram) Render(maxRows int) string {
	if h.total == 0 {
		return "(no samples)\n"
	}
	lo, hi := -1, -1
	for i, c := range h.counts {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return "(all samples below 1µs)\n"
	}
	if maxRows < 1 {
		maxRows = 16
	}
	span := hi - lo + 1
	per := (span + maxRows - 1) / maxRows
	var b strings.Builder
	var peak int64
	rows := make([]int64, 0, maxRows)
	bounds := make([]units.Duration, 0, maxRows)
	for i := lo; i <= hi; i += per {
		var sum int64
		for j := i; j < i+per && j <= hi; j++ {
			sum += h.counts[j]
		}
		rows = append(rows, sum)
		bounds = append(bounds, bucketFloor(i))
		if sum > peak {
			peak = sum
		}
	}
	for i, sum := range rows {
		width := int(float64(sum) / float64(peak) * 40)
		fmt.Fprintf(&b, "%12v %8d %s\n", bounds[i].Std(), sum, strings.Repeat("#", width))
	}
	return b.String()
}
