package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestRunningStats(t *testing.T) {
	var r Running
	if r.Mean() != 0 {
		t.Error("empty mean not zero")
	}
	r.Add(2 * units.Second)
	r.Add(4 * units.Second)
	r.Add(6 * units.Second)
	if r.N != 3 {
		t.Errorf("N = %d", r.N)
	}
	if r.Mean() != 4*units.Second {
		t.Errorf("Mean = %v", r.Mean())
	}
	if r.Min != 2*units.Second || r.Max != 6*units.Second {
		t.Errorf("Min/Max = %v/%v", r.Min, r.Max)
	}
}

// Property: mean lies within [min, max] for any observation set.
func TestQuickRunningBounds(t *testing.T) {
	f := func(xs []uint32) bool {
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(units.Duration(x))
		}
		m := r.Mean()
		return m >= r.Min && m <= r.Max && r.N == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActionFramerate(t *testing.T) {
	var a ActionStat
	if a.Framerate() != 0 {
		t.Error("empty action framerate not zero")
	}
	// 4 jobs finishing at 0, 30, 60, 90 ms: (4-1)/(0.09s) = 33.33 fps.
	for i := 0; i < 4; i++ {
		a.Finish(units.Time(units.Duration(i) * 30 * units.Millisecond))
	}
	if f := a.Framerate(); math.Abs(f-33.333) > 0.01 {
		t.Errorf("Framerate = %v, want 33.33", f)
	}
	// Single completion: undefined → zero.
	var b ActionStat
	b.Finish(units.Time(units.Second))
	if b.Framerate() != 0 {
		t.Error("single-job framerate not zero")
	}
}

func TestReportAggregation(t *testing.T) {
	r := NewReport("OURS", 8)
	r.Horizon = units.Time(60 * units.Second)
	r.JobIssued(true)
	r.JobIssued(true)
	r.JobIssued(false)

	r.JobCompleted(true, 1, 0, units.Time(5*units.Millisecond), units.Time(20*units.Millisecond))
	r.JobCompleted(true, 1, units.Time(30*units.Millisecond), units.Time(32*units.Millisecond), units.Time(50*units.Millisecond))
	r.JobCompleted(false, 2, 0, units.Time(units.Second), units.Time(3*units.Second))

	if r.Interactive.Completed != 2 || r.Batch.Completed != 1 {
		t.Errorf("completed = %d/%d", r.Interactive.Completed, r.Batch.Completed)
	}
	if r.Interactive.Latency.Mean() != 20*units.Millisecond {
		t.Errorf("interactive latency = %v", r.Interactive.Latency.Mean())
	}
	if r.Batch.Working.Mean() != 2*units.Second {
		t.Errorf("batch working = %v", r.Batch.Working.Mean())
	}
	if r.ActionCount() != 1 {
		t.Errorf("actions = %d", r.ActionCount())
	}
	// Framerate for action 1: 1 interval of 30ms → 33.3fps.
	if f := r.MeanFramerate(); math.Abs(f-33.333) > 0.01 {
		t.Errorf("mean framerate = %v", f)
	}
	if f := r.MinFramerate(); math.Abs(f-33.333) > 0.01 {
		t.Errorf("min framerate = %v", f)
	}
}

func TestHitRateAndUtilization(t *testing.T) {
	r := NewReport("X", 2)
	r.Horizon = units.Time(10 * units.Second)
	if r.HitRate() != 0 {
		t.Error("empty hit rate not zero")
	}
	r.TaskExecuted(true, 2*units.Second, 0)
	r.TaskExecuted(true, 2*units.Second, 1)
	r.TaskExecuted(false, 6*units.Second, 2)
	if hr := r.HitRate(); math.Abs(hr-2.0/3) > 1e-9 {
		t.Errorf("hit rate = %v", hr)
	}
	if r.Evictions != 3 {
		t.Errorf("evictions = %d", r.Evictions)
	}
	// 10 node-seconds busy over 2 nodes × 10 s = 50%.
	if u := r.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v", u)
	}
}

func TestSchedulingCost(t *testing.T) {
	r := NewReport("X", 1)
	if r.AvgSchedCostPerJob() != 0 {
		t.Error("empty cost not zero")
	}
	r.ScheduleCall(100_000, 2) // 100µs for 2 jobs
	r.ScheduleCall(300_000, 2)
	if got := r.AvgSchedCostPerJob(); got != 100_000 {
		t.Errorf("avg cost = %v, want 100µs", got)
	}
	if r.SchedInvocations != 2 || r.JobsScheduled != 4 {
		t.Error("invocation accounting wrong")
	}
}

func TestReportString(t *testing.T) {
	r := NewReport("FCFS", 4)
	r.Horizon = units.Time(units.Second)
	if s := r.String(); len(s) == 0 {
		t.Error("empty String")
	}
}

func TestRecoveryFramerateDipAfterFailure(t *testing.T) {
	var rc Recovery
	// 30 fps before anything breaks; without faults no dip is attributed.
	for w := int64(0); w < 5; w++ {
		for f := 0; f < 30; f++ {
			rc.Frame(units.Time(w)*units.Time(units.Second) + units.Time(f))
		}
	}
	if depth, below := rc.FramerateDip(30); depth != 0 || below != 0 {
		t.Errorf("dip without faults = (%v, %v), want zero", depth, below)
	}

	// A fault at t=5s, two degraded windows (10 fps), then recovery.
	rc.FaultInjected(units.Time(5 * units.Second))
	for w := int64(5); w < 7; w++ {
		for f := 0; f < 10; f++ {
			rc.Frame(units.Time(w)*units.Time(units.Second) + units.Time(f))
		}
	}
	for f := 0; f < 30; f++ {
		rc.Frame(units.Time(7*units.Second) + units.Time(f))
	}
	depth, below := rc.FramerateDip(30)
	if depth != 20 {
		t.Errorf("dip depth = %v, want 20 fps", depth)
	}
	if below != 2*units.Second {
		t.Errorf("time below target = %v, want 2s", below)
	}
}

func TestRecoveryMTTRFromDownIntervals(t *testing.T) {
	var rc Recovery
	rc.NodeDown(0, units.Time(units.Second))
	rc.NodeDown(0, units.Time(2*units.Second)) // double-down is idempotent
	rc.NodeRepaired(0, units.Time(5*units.Second))
	rc.NodeDown(1, units.Time(10*units.Second))
	rc.NodeRepaired(1, units.Time(12*units.Second))
	rc.NodeRepaired(1, units.Time(20*units.Second)) // repair without open interval: no-op
	if got, want := rc.MTTR(), 3*units.Second; got != want {
		t.Errorf("MTTR = %v, want %v", got, want)
	}
	if rc.Downtime.N != 2 {
		t.Errorf("down intervals = %d, want 2", rc.Downtime.N)
	}
	// A node still down contributes nothing until repaired.
	rc.NodeDown(2, units.Time(30*units.Second))
	if rc.Downtime.N != 2 {
		t.Error("open interval leaked into Downtime")
	}
}

// TestRecoveryServiceMTTRCapsAtRehome is the regression test for the
// warm-restore double-count: once a crash's chunks are all re-homed warm,
// the later MarkRepaired (restoring the node cold) must not fold the
// rehome→repair window back into the service-impact MTTR. Raw MTTR keeps
// the full span.
func TestRecoveryServiceMTTRCapsAtRehome(t *testing.T) {
	var rc Recovery
	rc.NodeDown(0, units.Time(units.Second))
	rc.NodeRehomed(0, units.Time(2*units.Second))
	rc.NodeRehomed(0, units.Time(3*units.Second)) // later duplicate: first wins
	rc.NodeRepaired(0, units.Time(9*units.Second))
	if got, want := rc.MTTR(), 8*units.Second; got != want {
		t.Errorf("raw MTTR = %v, want the full span %v", got, want)
	}
	if got, want := rc.ServiceMTTR(), units.Duration(units.Second); got != want {
		t.Errorf("ServiceMTTR = %v, want the rehome-capped %v", got, want)
	}
	// Without a re-home the two agree.
	rc.NodeDown(1, units.Time(20*units.Second))
	rc.NodeRepaired(1, units.Time(24*units.Second))
	if rc.Downtime.N != 2 || rc.EffectiveDowntime.N != 2 {
		t.Fatalf("interval counts = %d/%d, want 2/2", rc.Downtime.N, rc.EffectiveDowntime.N)
	}
	if got, want := rc.ServiceMTTR(), (1+4)*units.Second/2; got != want {
		t.Errorf("ServiceMTTR after a plain interval = %v, want %v", got, want)
	}
}

// TestRecoveryRehomeOutsideDownIntervalIgnored: a re-home report with no
// open down interval (or one arriving after the repair already closed it)
// must not cap a later, unrelated outage.
func TestRecoveryRehomeOutsideDownIntervalIgnored(t *testing.T) {
	var rc Recovery
	rc.NodeRehomed(0, units.Time(units.Second)) // no interval open: ignored
	rc.NodeDown(0, units.Time(10*units.Second))
	rc.NodeRepaired(0, units.Time(14*units.Second))
	if got, want := rc.ServiceMTTR(), 4*units.Second; got != want {
		t.Errorf("ServiceMTTR = %v, want uncapped %v", got, want)
	}
	// A stale re-home stamp must not survive the repair into the next outage.
	rc.NodeDown(0, units.Time(20*units.Second))
	rc.NodeRehomed(0, units.Time(21*units.Second))
	rc.NodeRepaired(0, units.Time(25*units.Second))
	rc.NodeDown(0, units.Time(30*units.Second))
	rc.NodeRepaired(0, units.Time(36*units.Second))
	if rc.EffectiveDowntime.N != 3 {
		t.Fatalf("effective intervals = %d, want 3", rc.EffectiveDowntime.N)
	}
	sum := float64((4 + 1 + 6) * units.Second)
	if got, want := rc.EffectiveDowntime.Mean(), units.Duration(sum/3); got != want {
		t.Errorf("effective downtime mean = %v, want %v", got, want)
	}
}

// TestRecoveryChunksMovedAccumulates pins the counter plumbing the sweeps
// report.
func TestRecoveryChunksMovedAccumulates(t *testing.T) {
	var rc Recovery
	rc.ChunksMoved(3, 1)
	rc.ChunksMoved(2, 0)
	if rc.ChunksRehomed != 5 || rc.ChunksReseeded != 1 {
		t.Errorf("counters = %d/%d, want 5/1", rc.ChunksRehomed, rc.ChunksReseeded)
	}
}
