package metrics

import (
	"sort"

	"vizsched/internal/units"
)

// This file holds the multi-tenant side of the report: per-tenant latency
// and completion streams, Jain's fairness index over them, and the summary
// types the QoS subsystem (internal/qos) fills in. The types live here so
// qos can return them without metrics importing qos.

// TenantStat aggregates one tenant's job stream within a run.
type TenantStat struct {
	Issued      int64
	Completed   int64
	Interactive int64 // completed interactive jobs
	Latency     Running
	LatencyHist Histogram
}

// TenantIssued records a job of tenant t entering the system.
func (r *Report) TenantIssued(t int) {
	if r.tenants == nil {
		r.tenants = make(map[int]*TenantStat)
	}
	ts := r.tenants[t]
	if ts == nil {
		ts = &TenantStat{}
		r.tenants[t] = ts
	}
	ts.Issued++
}

// TenantCompleted records a finished job of tenant t.
func (r *Report) TenantCompleted(t int, interactive bool, latency units.Duration) {
	if r.tenants == nil {
		r.tenants = make(map[int]*TenantStat)
	}
	ts := r.tenants[t]
	if ts == nil {
		ts = &TenantStat{}
		r.tenants[t] = ts
	}
	ts.Completed++
	if interactive {
		ts.Interactive++
	}
	ts.Latency.Add(latency)
	ts.LatencyHist.Add(latency)
}

// TenantIDs returns the observed tenant ids in ascending order.
func (r *Report) TenantIDs() []int {
	ids := make([]int, 0, len(r.tenants))
	for id := range r.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Tenant returns tenant t's stats, or nil if the tenant was never seen.
func (r *Report) Tenant(t int) *TenantStat { return r.tenants[t] }

// JainFairness computes Jain's index over per-tenant interactive
// completions: (Σx)²/(n·Σx²), 1 when all tenants got equal service, 1/n
// when one tenant got everything. Tenants that issued work but completed
// nothing count as zeros; with fewer than two tenants the index is 1.
func (r *Report) JainFairness() float64 {
	xs := make([]float64, 0, len(r.tenants))
	for _, id := range r.TenantIDs() {
		xs = append(xs, float64(r.tenants[id].Interactive))
	}
	return JainIndex(xs)
}

// JainIndex is Jain's fairness index over an allocation vector. Defined as
// 1 for empty or all-zero vectors (nothing was allocated, nothing unfair).
func JainIndex(xs []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// TenantQoS is one tenant's admission/queueing outcome as counted by the
// QoS controller. The decision counters partition the tenant's issued jobs:
// every job is exactly one of admitted, throttled (admitted on borrowed
// tokens), rejected, or shed-on-arrival. ShedTotal additionally counts
// queued jobs dropped later (stale-frame supersede, queue-bound sheds), so
// ShedTotal ≥ shed-on-arrival = Issued − Admitted − Throttled − Rejected.
type TenantQoS struct {
	Tenant    int
	Issued    int64
	Admitted  int64
	Throttled int64
	Rejected  int64
	ShedTotal int64
	Completed int64
	Failed    int64
	Latency   QuantileSummary
}

// ShedOnArrival derives the arrival-time sheds from the decision partition.
func (t *TenantQoS) ShedOnArrival() int64 {
	return t.Issued - t.Admitted - t.Throttled - t.Rejected
}

// QoSOutcome summarizes a run under the QoS subsystem: aggregate decision
// counters, degradation-ladder activity, and the per-tenant breakdown.
type QoSOutcome struct {
	Admitted  int64
	Throttled int64
	Rejected  int64
	Shed      int64
	// LevelChanges counts degradation-ladder transitions; MaxLevel is the
	// deepest rung reached (0 = never degraded); FinalLevel is the rung at
	// the end of the run (0 = fully recovered).
	LevelChanges int64
	MaxLevel     int
	FinalLevel   int
	Tenants      []TenantQoS
}

// Jain computes Jain's index over the per-tenant completed-job counts in
// the outcome — the controller-side view of service fairness.
func (o *QoSOutcome) Jain() float64 {
	xs := make([]float64, len(o.Tenants))
	for i, t := range o.Tenants {
		xs[i] = float64(t.Completed)
	}
	return JainIndex(xs)
}
