package metrics

import "vizsched/internal/units"

// FloatRunning accumulates count/mean/min/max of a unitless float stream —
// the stretch ratios the fractional-scheduling comparison reports, where a
// Duration-typed Running would be a lie.
type FloatRunning struct {
	N         int64
	sum       float64
	Min, Max  float64
	populated bool
}

// Add folds one observation in.
func (r *FloatRunning) Add(v float64) {
	r.N++
	r.sum += v
	if !r.populated || v < r.Min {
		r.Min = v
	}
	if !r.populated || v > r.Max {
		r.Max = v
	}
	r.populated = true
}

// Mean returns the average, or zero with no observations.
func (r *FloatRunning) Mean() float64 {
	if r.N == 0 {
		return 0
	}
	return r.sum / float64(r.N)
}

// FracShareOutcome summarizes one run's fractional-capacity activity
// (§5.13). Nil on runs without the fracshare layer.
type FracShareOutcome struct {
	// Slots is the per-node slot count K the run used.
	Slots int

	// CoScheduled counts guest (co-scheduled) assignments committed;
	// CoCompleted counts guests that ran to completion. They differ by
	// guests still running at the horizon or requeued by faults.
	CoScheduled int64
	CoCompleted int64
	// Preemptions counts share→0 suspensions of a guest because demand work
	// started on its node; Resumes counts the guests' share restorations
	// when the node went demand-idle again.
	Preemptions int64
	Resumes     int64

	// CoBusyTime integrates the guests' granted share over virtual time —
	// the ε-guard idle actually reclaimed, directly comparable to the
	// report's GuardIdle.
	CoBusyTime units.Duration
	// CoWork is the full-share work guests delivered (the cached-batch
	// throughput bought with reclaimed idle).
	CoWork units.Duration

	// NodeBusy is each node's busy-share integral over the horizon — the
	// per-node utilization gauges the live service exports as
	// fracshare_node_busy_seconds.
	NodeBusy []units.Duration
}

// ReclaimedPct returns the share of attributed ε-guard idle the guests
// reclaimed, as a percentage (capped at 100).
func (f *FracShareOutcome) ReclaimedPct(guardIdle units.Duration) float64 {
	if f == nil || guardIdle <= 0 {
		return 0
	}
	pct := 100 * float64(f.CoBusyTime) / float64(guardIdle)
	if pct > 100 {
		pct = 100
	}
	return pct
}
