package metrics

import "vizsched/internal/units"

// AutoscaleOutcome summarizes one run's elastic-fleet activity (§5.12). It
// is deliberately disjoint from Recovery: a graceful drain is a scheduling
// decision, not a failure, so nothing here ever feeds MTTR, redispatch, or
// re-seed accounting — the drain tests pin that separation.
type AutoscaleOutcome struct {
	// ScaleUps counts nodes activated by the policy; Drains counts drains
	// started and DrainsCompleted those that finished (they differ only if
	// the run ended mid-drain).
	ScaleUps        int64
	Drains          int64
	DrainsCompleted int64

	// TasksMigrated counts queued tasks moved off draining nodes onto the
	// survivors' queues — work-stealing volume, never counted as
	// crash-redispatch.
	TasksMigrated int64
	// OrphanWarms counts would-be-orphan chunks pre-warmed onto survivors
	// through the prefetch governor before their node left.
	OrphanWarms int64
	// BringupWarms counts hot chunks copied onto newly activated nodes
	// during their bring-up window, so a scale-up joins the fleet warm.
	BringupWarms int64
	// WarmBytes is the bytes the evacuation and bring-up warms moved.
	WarmBytes units.Bytes
	// DrainRehomed counts chunks whose home sets were demoted warm at drain
	// completion; DrainOrphaned counts chunks that left the tables with no
	// surviving replica anyway (the pre-warm could not finish in time) —
	// kept out of Recovery.ChunksReseeded by design.
	DrainRehomed  int64
	DrainOrphaned int64

	// DrainTime accumulates drain start→completion spans.
	DrainTime Running

	// NodeSeconds is the time-integral of the active node count over the
	// horizon — the run's capacity bill. A fixed fleet's value is simply
	// nodes × horizon; the elastic saving is the headline number the
	// elasticsweep experiment reports.
	NodeSeconds float64
	// MinActive and MaxActive bound the active fleet size seen during the
	// run.
	MinActive int
	MaxActive int
}

// NodeHours converts the capacity bill to node-hours.
func (a *AutoscaleOutcome) NodeHours() float64 { return a.NodeSeconds / 3600 }
