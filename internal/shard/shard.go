// Package shard is the multi-head control plane (DESIGN.md §5.11): the
// single dispatcher loop of internal/service — and its simulated twin in
// internal/sim — is the scaling ceiling ROADMAP names, because every admit,
// dispatch, and completion funnels through one goroutine no matter how
// cheap each scheduler cycle gets. This package partitions that funnel.
//
// The design has three parts, each deliberately small:
//
//   - Ring: a consistent-hash partition of sessions across N head shards.
//     Hashing is on the session (core.ActionID) with tenant affinity: jobs
//     of a non-default tenant all map through the tenant's hash, so one
//     shard owns a tenant's whole QoS state (token buckets, DRR deficits)
//     and fair-queue ordering never crosses a shard boundary. Jump
//     consistent hashing keeps the partition minimal under resizing.
//
//   - Directory: the shared chunk directory that keeps the paper's locality
//     tables coherent across shards without funneling dispatch through one
//     lock. Each shard's dispatcher remains single-threaded over its own
//     HeadState; the directory carries only the slow-moving cross-shard
//     facts — observed Estimate[c] values, global chunk residency, and
//     replica home sets bounded by k — behind striped RW-locks so shards
//     touching different chunks never contend.
//
//   - The donation board (part of Directory): idle shards advertise spare
//     capacity, loaded shards advertise batch backlog, and a donation moves
//     queued batch jobs from the hottest shard to an idle one. Donated jobs
//     are popped in DRR order from the donor's fair queue, so a tenant's
//     batch ordering is preserved — the invariant the property suite checks.
//
// A shard is exactly the recovered-head unit of §5.10: an independent
// dispatcher over a partition of the key space, with its own journal and
// tables. The directory is soft state — lost entries only cost estimate
// warm-up, never correctness.
package shard

import (
	"fmt"

	"vizsched/internal/units"
)

// HeadCost prices one shard's control-plane work in virtual time — the
// serial resource the simulator charges per dispatcher operation. The
// defaults are calibrated so a head saturates near a thousand admissions
// per second (parse + admission control + queue insert on 2012-era cores),
// which is what makes the shardsweep's overload scenario bind on the
// control plane rather than the GPUs.
type HeadCost struct {
	// Admit is charged per arriving request: decode, admission control,
	// queue insertion.
	Admit units.Duration
	// Dispatch is charged per job that receives assignments in a scheduler
	// pass: placement bookkeeping, task encode, send.
	Dispatch units.Duration
	// Complete is charged per completion report folded into the tables.
	Complete units.Duration
}

// DefaultHeadCost is the calibration the shardsweep experiment uses.
func DefaultHeadCost() HeadCost {
	return HeadCost{
		Admit:    800 * units.Microsecond,
		Dispatch: 120 * units.Microsecond,
		Complete: 40 * units.Microsecond,
	}
}

// Partition splits p nodes across n shards as contiguous ranges, remainder
// to the low shards: shard i owns [Start, Start+Count). Contiguity keeps
// the global↔local node-ID mapping a subtraction.
type Partition struct {
	Start, Count int
}

// SplitNodes partitions p nodes across n shards. Every shard receives at
// least one node; p < n is a configuration error.
func SplitNodes(p, n int) []Partition {
	if n <= 0 || p < n {
		panic(fmt.Sprintf("shard: cannot split %d nodes across %d shards", p, n))
	}
	parts := make([]Partition, n)
	base, extra := p/n, p%n
	start := 0
	for i := range parts {
		count := base
		if i < extra {
			count++
		}
		parts[i] = Partition{Start: start, Count: count}
		start += count
	}
	return parts
}
