package shard

import (
	"math/rand"
	"sync"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// TestRingOwnerStable: ownership is a pure function — the invariant "no
// session owned by two shards" reduces to Owner being deterministic.
func TestRingOwnerStable(t *testing.T) {
	r := NewRing(4)
	for a := 0; a < 1000; a++ {
		o1 := r.Owner(0, core.ActionID(a))
		o2 := r.Owner(0, core.ActionID(a))
		if o1 != o2 {
			t.Fatalf("action %d owned by both shard %d and %d", a, o1, o2)
		}
		if o1 < 0 || o1 >= 4 {
			t.Fatalf("action %d owner %d out of range", a, o1)
		}
	}
}

// TestRingTenantAffinity: every session of a non-default tenant lands on
// the tenant's shard regardless of action ID.
func TestRingTenantAffinity(t *testing.T) {
	r := NewRing(8)
	for tenant := 1; tenant <= 50; tenant++ {
		want := r.Owner(core.TenantID(tenant), 1)
		for a := 2; a < 40; a++ {
			if got := r.Owner(core.TenantID(tenant), core.ActionID(a)); got != want {
				t.Fatalf("tenant %d action %d on shard %d, want %d", tenant, a, got, want)
			}
		}
	}
}

// TestRingBalance: default-tenant sessions spread roughly evenly.
func TestRingBalance(t *testing.T) {
	const shards, sessions = 4, 4000
	r := NewRing(shards)
	counts := make([]int, shards)
	for a := 1; a <= sessions; a++ {
		counts[r.Owner(0, core.ActionID(a))]++
	}
	for s, n := range counts {
		if n < sessions/shards/2 || n > sessions/shards*2 {
			t.Fatalf("shard %d owns %d of %d sessions — unbalanced %v", s, n, sessions, counts)
		}
	}
}

// TestRingResizeMinimalMovement: growing the ring n→n+1 moves about
// 1/(n+1) of the keys — the consistent-hashing contract.
func TestRingResizeMinimalMovement(t *testing.T) {
	const keys = 10000
	small, big := NewRing(4), NewRing(5)
	moved := 0
	for a := 1; a <= keys; a++ {
		if small.Owner(0, core.ActionID(a)) != big.Owner(0, core.ActionID(a)) {
			moved++
		}
	}
	// Expect ~keys/5 = 2000; fail outside [10%, 30%].
	if moved < keys/10 || moved > keys*3/10 {
		t.Fatalf("resize 4→5 moved %d/%d keys, want ≈%d", moved, keys, keys/5)
	}
}

func TestSplitNodes(t *testing.T) {
	parts := SplitNodes(10, 4)
	total := 0
	next := 0
	for i, p := range parts {
		if p.Start != next {
			t.Fatalf("partition %d starts at %d, want %d", i, p.Start, next)
		}
		if p.Count < 2 || p.Count > 3 {
			t.Fatalf("partition %d count %d, want 2 or 3", i, p.Count)
		}
		next = p.Start + p.Count
		total += p.Count
	}
	if total != 10 {
		t.Fatalf("partitions cover %d nodes, want 10", total)
	}
}

func chunk(ds, idx int) volume.ChunkID {
	return volume.ChunkID{Dataset: volume.DatasetID(ds), Index: idx}
}

// TestDirectoryEstimate: publish/lookup round trip plus the miss path.
func TestDirectoryEstimate(t *testing.T) {
	d := NewDirectory(4, 2)
	c := chunk(1, 3)
	if _, ok := d.Estimate(c); ok {
		t.Fatal("estimate hit before any publish")
	}
	d.PublishEstimate(c, 42*units.Millisecond)
	got, ok := d.Estimate(c)
	if !ok || got != 42*units.Millisecond {
		t.Fatalf("Estimate = %v, %v; want 42ms, true", got, ok)
	}
	st := d.Snapshot()
	if st.Lookups != 2 || st.Hits != 1 || st.Chunks != 1 {
		t.Fatalf("stats %+v; want 2 lookups, 1 hit, 1 chunk", st)
	}
}

// TestDirectoryHomesBounded: the directory truncates oversized home sets,
// so the ≤k invariant holds no matter what a publisher sends.
func TestDirectoryHomesBounded(t *testing.T) {
	d := NewDirectory(2, 2)
	c := chunk(2, 0)
	d.SetHomes(c, []int{5, 9, 1, 7})
	got := d.Homes(c)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("Homes = %v, want [5 9]", got)
	}
	if err := d.Validate(16); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestDirectoryDropNode: a failed node vanishes from residency and homes.
func TestDirectoryDropNode(t *testing.T) {
	d := NewDirectory(2, 3)
	c := chunk(1, 1)
	d.PublishResident(c, 4, true)
	d.PublishResident(c, 7, true)
	d.SetHomes(c, []int{7, 4})
	d.DropNode(7)
	if r := d.Residents(c); len(r) != 1 || r[0] != 4 {
		t.Fatalf("Residents after drop = %v, want [4]", r)
	}
	if h := d.Homes(c); len(h) != 1 || h[0] != 4 {
		t.Fatalf("Homes after drop = %v, want [4]", h)
	}
}

// TestDirectoryBoard: hottest-shard resolution is deterministic with ties
// toward the lowest shard ID.
func TestDirectoryBoard(t *testing.T) {
	d := NewDirectory(4, 1)
	if _, _, ok := d.Hottest(0); ok {
		t.Fatal("Hottest with empty board")
	}
	d.Advertise(1, 0, 7)
	d.Advertise(2, 0, 7)
	d.Advertise(3, 2, 0)
	s, b, ok := d.Hottest(3)
	if !ok || s != 1 || b != 7 {
		t.Fatalf("Hottest = %d (%d, %v), want shard 1 with 7", s, b, ok)
	}
	// The asker never donates to itself.
	if s, _, ok := d.Hottest(1); !ok || s != 2 {
		t.Fatalf("Hottest(1) = %d, want 2", s)
	}
}

// TestDirectoryConcurrent hammers the directory from many goroutines under
// -race: striped locks must serialize per-chunk state without a global
// bottleneck or a data race.
func TestDirectoryConcurrent(t *testing.T) {
	d := NewDirectory(8, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				c := chunk(rng.Intn(4)+1, rng.Intn(64))
				switch rng.Intn(5) {
				case 0:
					d.PublishEstimate(c, units.Duration(rng.Intn(1000)+1)*units.Microsecond)
				case 1:
					d.Estimate(c)
				case 2:
					d.PublishResident(c, rng.Intn(32), rng.Intn(2) == 0)
				case 3:
					a := rng.Intn(32)
					d.SetHomes(c, []int{a, (a + 1) % 32})
				case 4:
					d.Advertise(rng.Intn(8), rng.Intn(4), rng.Intn(10))
					d.Hottest(rng.Intn(8))
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if err := d.Validate(32); err != nil {
		t.Fatalf("Validate after concurrent writes: %v", err)
	}
	if st := d.Snapshot(); st.Chunks == 0 {
		t.Fatal("directory empty after concurrent writes")
	}
}
