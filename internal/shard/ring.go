package shard

import (
	"fmt"

	"vizsched/internal/core"
)

// Ring maps session keys onto shards with jump consistent hashing
// (Lamping & Veach): a pure function of (key, shard count), so every
// component — heads, the simulator, tests — computes ownership
// independently and identically, with no routing table to keep coherent.
// Resizing from n to n+1 shards moves exactly 1/(n+1) of the keys, the
// consistent-hashing minimum.
type Ring struct {
	shards int
}

// NewRing builds a ring over n shards.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic(fmt.Sprintf("shard: non-positive shard count %d", n))
	}
	return &Ring{shards: n}
}

// Shards returns the shard count N.
func (r *Ring) Shards() int { return r.shards }

// fnv64a hashes a small tuple with FNV-1a — cheap, stateless, and stable
// across runs (unlike maphash), which the bit-reproducibility contract of
// the simulator requires.
func fnv64a(tag byte, v uint64) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	h ^= uint64(tag)
	h *= prime64
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime64
	}
	return h
}

// SessionKey derives the routing key for a job: tenant affinity first —
// every session of a non-default tenant hashes through the tenant ID, so
// one shard owns the tenant's admission buckets and DRR state outright —
// and per-session (action) spreading for the default tenant, where no
// cross-session QoS state exists to keep together.
func SessionKey(tenant core.TenantID, action core.ActionID) uint64 {
	if tenant != 0 {
		return fnv64a('t', uint64(int64(tenant)))
	}
	return fnv64a('a', uint64(int64(action)))
}

// Owner returns the shard owning the given session.
func (r *Ring) Owner(tenant core.TenantID, action core.ActionID) int {
	return r.OwnerKey(SessionKey(tenant, action))
}

// OwnerKey returns the shard owning a raw routing key — jump consistent
// hash over the ring's shard count.
func (r *Ring) OwnerKey(key uint64) int {
	var b, j int64 = -1, 0
	for j < int64(r.shards) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
