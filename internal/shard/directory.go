package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// stripeCount is the lock-striping width of the directory. Chunks hash
// across stripes, so shards publishing or reading different chunks almost
// never touch the same lock — the "coherent without funneling dispatch
// through a lock" requirement. Power of two for mask indexing.
const stripeCount = 64

// entry is one chunk's directory row.
type entry struct {
	// estimate is the latest observed miss execution time any shard
	// published for this chunk — the cross-shard half of Estimate[c]. Zero
	// means unobserved.
	estimate units.Duration
	// resident is the global-node set predicted to hold the chunk, the
	// union of every shard's Cache[c] view.
	resident map[int]struct{}
	// homes is the replica home set (global node IDs, primary first),
	// bounded by the directory's k.
	homes []int
}

// stripe is one lock shard of the directory.
type stripe struct {
	mu     sync.RWMutex
	chunks map[volume.ChunkID]*entry
}

// Directory is the shared chunk directory of the multi-head control plane:
// per-chunk locality facts (Estimate[c], global residency, home sets) that
// individual shards publish as they observe them and consult when their own
// tables have no entry, plus the donation board shards use to move batch
// work toward idle capacity. All methods are safe for concurrent use from
// every shard's dispatcher.
type Directory struct {
	shards int
	// k bounds every home set, mirroring the replication degree; SetHomes
	// truncates beyond it so no publisher can violate the invariant.
	k int

	stripes [stripeCount]stripe

	// Donation board: capacity[s] is shard s's advertised idle executor
	// count (0 = not idle), backlog[s] its advertised queued batch jobs.
	// Plain slices under one small mutex — the board is tiny, written once
	// per shard per cycle, and never on the per-task path.
	boardMu  sync.Mutex
	capacity []int
	backlog  []int

	// Counters for operator visibility and the sweep's coherence column.
	lookups   atomic.Int64
	hits      atomic.Int64
	publishes atomic.Int64
	donations atomic.Int64
}

// NewDirectory builds a directory for n shards with home sets bounded by k
// (k < 1 is treated as the single-home degree 1).
func NewDirectory(n, k int) *Directory {
	if n <= 0 {
		panic(fmt.Sprintf("shard: non-positive shard count %d", n))
	}
	if k < 1 {
		k = 1
	}
	d := &Directory{shards: n, k: k, capacity: make([]int, n), backlog: make([]int, n)}
	for i := range d.stripes {
		d.stripes[i].chunks = make(map[volume.ChunkID]*entry)
	}
	return d
}

// K returns the home-set bound.
func (d *Directory) K() int { return d.k }

// Shards returns the shard count the board is sized for.
func (d *Directory) Shards() int { return d.shards }

// stripeFor picks a chunk's stripe by FNV-1a over its identity.
func (d *Directory) stripeFor(c volume.ChunkID) *stripe {
	h := fnv64a('c', uint64(int64(c.Dataset))<<32|uint64(uint32(c.Index)))
	return &d.stripes[h&(stripeCount-1)]
}

// ent returns the chunk's row, creating it when create is set. Caller holds
// the stripe lock in the matching mode.
func (s *stripe) ent(c volume.ChunkID, create bool) *entry {
	e := s.chunks[c]
	if e == nil && create {
		e = &entry{resident: make(map[int]struct{})}
		s.chunks[c] = e
	}
	return e
}

// PublishEstimate records an observed miss execution time for a chunk —
// called by a shard after Correct folds a completion into its own tables,
// so every shard's next Estimate[c] read sees the observation.
func (d *Directory) PublishEstimate(c volume.ChunkID, exec units.Duration) {
	if exec <= 0 {
		return
	}
	st := d.stripeFor(c)
	st.mu.Lock()
	st.ent(c, true).estimate = exec
	st.mu.Unlock()
	d.publishes.Add(1)
}

// Estimate returns the directory's Estimate[c], if any shard has published
// one. This is the fallback core.HeadState consults between its own table
// and the cost model: shard-local observations always win (they reflect
// the shard's own hardware path), the directory fills cold starts, and the
// model remains the floor.
func (d *Directory) Estimate(c volume.ChunkID) (units.Duration, bool) {
	st := d.stripeFor(c)
	st.mu.RLock()
	e := st.ent(c, false)
	var exec units.Duration
	if e != nil {
		exec = e.estimate
	}
	st.mu.RUnlock()
	d.lookups.Add(1)
	if exec > 0 {
		d.hits.Add(1)
		return exec, true
	}
	return 0, false
}

// PublishResident updates a chunk's global residency: on=true after a node
// (global ID) loads or is predicted to load it, on=false after an eviction
// or node failure drops it.
func (d *Directory) PublishResident(c volume.ChunkID, globalNode int, on bool) {
	st := d.stripeFor(c)
	st.mu.Lock()
	if on {
		st.ent(c, true).resident[globalNode] = struct{}{}
	} else if e := st.ent(c, false); e != nil {
		delete(e.resident, globalNode)
	}
	st.mu.Unlock()
	d.publishes.Add(1)
}

// Residents returns the chunk's global residency set, sorted.
func (d *Directory) Residents(c volume.ChunkID) []int {
	st := d.stripeFor(c)
	st.mu.RLock()
	defer st.mu.RUnlock()
	e := st.ent(c, false)
	if e == nil || len(e.resident) == 0 {
		return nil
	}
	out := make([]int, 0, len(e.resident))
	for k := range e.resident {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SetHomes publishes a chunk's replica home set (global node IDs, primary
// first). Sets longer than k are truncated — the directory enforces the
// bound rather than trusting publishers, so the ≤k invariant holds by
// construction.
func (d *Directory) SetHomes(c volume.ChunkID, homes []int) {
	if len(homes) > d.k {
		homes = homes[:d.k]
	}
	cp := append([]int(nil), homes...)
	st := d.stripeFor(c)
	st.mu.Lock()
	st.ent(c, true).homes = cp
	st.mu.Unlock()
	d.publishes.Add(1)
}

// Homes returns the chunk's published home set (primary first), or nil.
func (d *Directory) Homes(c volume.ChunkID) []int {
	st := d.stripeFor(c)
	st.mu.RLock()
	defer st.mu.RUnlock()
	e := st.ent(c, false)
	if e == nil || len(e.homes) == 0 {
		return nil
	}
	return append([]int(nil), e.homes...)
}

// DropNode removes a failed global node from every residency set and home
// set — called when a shard declares one of its workers down, so other
// shards stop treating the dead node's bricks as warm.
func (d *Directory) DropNode(globalNode int) {
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.Lock()
		for _, e := range st.chunks {
			delete(e.resident, globalNode)
			for j, h := range e.homes {
				if h == globalNode {
					e.homes = append(e.homes[:j], e.homes[j+1:]...)
					break
				}
			}
		}
		st.mu.Unlock()
	}
}

// --- Donation board ---

// Advertise publishes shard s's donation posture for the current cycle:
// capacity is its idle executor count past the ε-guard (0 when busy),
// backlog its queued batch jobs available for adoption.
func (d *Directory) Advertise(s, capacity, backlog int) {
	d.boardMu.Lock()
	d.capacity[s] = capacity
	d.backlog[s] = backlog
	d.boardMu.Unlock()
}

// Hottest returns the shard with the largest advertised batch backlog,
// excluding the asker, with ties broken toward the lowest shard ID so every
// reader resolves the same donor deterministically. ok is false when no
// other shard has backlog.
func (d *Directory) Hottest(asker int) (s, backlog int, ok bool) {
	d.boardMu.Lock()
	defer d.boardMu.Unlock()
	best, bestN := -1, 0
	for i, b := range d.backlog {
		if i == asker || b <= bestN {
			continue
		}
		best, bestN = i, b
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bestN, true
}

// NoteDonation counts jobs moved by one donation for the stats row.
func (d *Directory) NoteDonation(jobs int) { d.donations.Add(int64(jobs)) }

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Chunks    int
	Lookups   int64
	Hits      int64
	Publishes int64
	Donations int64
}

// Snapshot returns the directory's counters and size.
func (d *Directory) Snapshot() Stats {
	n := 0
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.RLock()
		n += len(st.chunks)
		st.mu.RUnlock()
	}
	return Stats{
		Chunks:    n,
		Lookups:   d.lookups.Load(),
		Hits:      d.hits.Load(),
		Publishes: d.publishes.Load(),
		Donations: d.donations.Load(),
	}
}

// Validate walks every row and reports the first structural violation:
// a home set longer than k, a duplicate node within a home set, or a home
// outside the residency-plausible node range [0, nodes). It is the
// invariant hook the property suite and the shardsweep both call; a nil
// error means the directory is internally consistent.
func (d *Directory) Validate(nodes int) error {
	for i := range d.stripes {
		st := &d.stripes[i]
		st.mu.RLock()
		for c, e := range st.chunks {
			if len(e.homes) > d.k {
				st.mu.RUnlock()
				return fmt.Errorf("shard: chunk %v home set %v exceeds k=%d", c, e.homes, d.k)
			}
			seen := make(map[int]struct{}, len(e.homes))
			for _, h := range e.homes {
				if h < 0 || (nodes > 0 && h >= nodes) {
					st.mu.RUnlock()
					return fmt.Errorf("shard: chunk %v home %d outside [0,%d)", c, h, nodes)
				}
				if _, dup := seen[h]; dup {
					st.mu.RUnlock()
					return fmt.Errorf("shard: chunk %v duplicate home %d", c, h)
				}
				seen[h] = struct{}{}
			}
			for k := range e.resident {
				if k < 0 || (nodes > 0 && k >= nodes) {
					st.mu.RUnlock()
					return fmt.Errorf("shard: chunk %v resident node %d outside [0,%d)", c, k, nodes)
				}
			}
		}
		st.mu.RUnlock()
	}
	return nil
}
