package cache

import (
	"container/list"
	"fmt"
	"math/rand"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Policy names an eviction strategy for Store.
type Policy int

// Eviction policies. PolicyLRU matches the paper's nodes ("the least
// recently used caches are released", §V-B); the others exist for the
// eviction ablation.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
	PolicyLFU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	case PolicyLFU:
		return "lfu"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Store is a byte-quota chunk cache with a pluggable eviction policy. It
// exposes the same operations as LRU; LRU remains the concrete type used on
// hot paths, while Store backs the eviction-policy ablation.
type Store struct {
	policy Policy
	quota  units.Bytes
	used   units.Bytes

	// order is maintained for LRU (recency) and FIFO (insertion).
	order *list.List
	items map[volume.ChunkID]*storeEntry

	// freq tracks access counts for LFU.
	rng *rand.Rand

	// Evictions counts chunks dropped to make room.
	Evictions int64
}

type storeEntry struct {
	id   volume.ChunkID
	size units.Bytes
	el   *list.Element
	freq int64
}

// NewStore returns an empty cache with the given policy and quota. Random
// eviction draws from the given seed for reproducibility.
func NewStore(policy Policy, quota units.Bytes, seed int64) *Store {
	if quota <= 0 {
		panic(fmt.Sprintf("cache: non-positive quota %v", quota))
	}
	return &Store{
		policy: policy,
		quota:  quota,
		order:  list.New(),
		items:  make(map[volume.ChunkID]*storeEntry),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Policy returns the configured eviction policy.
func (s *Store) Policy() Policy { return s.policy }

// Quota returns the configured byte limit.
func (s *Store) Quota() units.Bytes { return s.quota }

// Used returns the bytes currently resident.
func (s *Store) Used() units.Bytes { return s.used }

// Len returns the number of resident chunks.
func (s *Store) Len() int { return len(s.items) }

// Contains reports residency without recording an access.
func (s *Store) Contains(id volume.ChunkID) bool {
	_, ok := s.items[id]
	return ok
}

// Touch records an access and reports whether the chunk was resident.
func (s *Store) Touch(id volume.ChunkID) bool {
	e, ok := s.items[id]
	if !ok {
		return false
	}
	e.freq++
	if s.policy == PolicyLRU {
		s.order.MoveToFront(e.el)
	}
	return true
}

// victim selects the entry to evict under the policy.
func (s *Store) victim() *storeEntry {
	switch s.policy {
	case PolicyLRU, PolicyFIFO:
		return s.order.Back().Value.(*storeEntry)
	case PolicyRandom:
		n := s.rng.Intn(len(s.items))
		el := s.order.Front()
		for i := 0; i < n; i++ {
			el = el.Next()
		}
		return el.Value.(*storeEntry)
	case PolicyLFU:
		var worst *storeEntry
		for el := s.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*storeEntry)
			if worst == nil || e.freq < worst.freq {
				worst = e
			}
		}
		return worst
	default:
		panic("cache: unknown policy")
	}
}

// Insert adds the chunk (or touches it if resident), evicting under the
// policy as needed, and returns the evicted IDs.
func (s *Store) Insert(id volume.ChunkID, size units.Bytes) []volume.ChunkID {
	if size <= 0 {
		panic(fmt.Sprintf("cache: non-positive chunk size %v", size))
	}
	if size > s.quota {
		panic(fmt.Sprintf("cache: chunk %v (%v) exceeds quota %v", id, size, s.quota))
	}
	if s.Touch(id) {
		return nil
	}
	var evicted []volume.ChunkID
	for s.used+size > s.quota {
		v := s.victim()
		s.order.Remove(v.el)
		delete(s.items, v.id)
		s.used -= v.size
		s.Evictions++
		evicted = append(evicted, v.id)
	}
	e := &storeEntry{id: id, size: size, freq: 1}
	e.el = s.order.PushFront(e)
	s.items[id] = e
	s.used += size
	return evicted
}

// Remove drops the chunk if resident and reports whether it was.
func (s *Store) Remove(id volume.ChunkID) bool {
	e, ok := s.items[id]
	if !ok {
		return false
	}
	s.order.Remove(e.el)
	delete(s.items, id)
	s.used -= e.size
	return true
}

// Resident returns resident chunk IDs, most-recent/newest first.
func (s *Store) Resident() []volume.ChunkID {
	out := make([]volume.ChunkID, 0, len(s.items))
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).id)
	}
	return out
}

// Chunks is the minimal cache interface shared by LRU and Store, which the
// simulation engine's nodes program against.
type Chunks interface {
	Contains(volume.ChunkID) bool
	Touch(volume.ChunkID) bool
	Insert(volume.ChunkID, units.Bytes) []volume.ChunkID
	Remove(volume.ChunkID) bool
	Resident() []volume.ChunkID
	Used() units.Bytes
	Quota() units.Bytes
	Len() int
}

// Compile-time interface checks.
var (
	_ Chunks = (*LRU)(nil)
	_ Chunks = (*Store)(nil)
)
