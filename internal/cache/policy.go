package cache

import (
	"container/list"
	"fmt"
	"math/rand"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Policy names an eviction strategy for Store.
type Policy int

// Eviction policies. PolicyLRU matches the paper's nodes ("the least
// recently used caches are released", §V-B); the others exist for the
// eviction ablation.
const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
	PolicyLFU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	case PolicyLFU:
		return "lfu"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Stats is a cache's cumulative access accounting. Hits and misses are
// counted at Touch (the access point); inserts do not re-count the miss
// that triggered them.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is a byte-quota chunk cache with a pluggable eviction policy.
// LRU is a thin wrapper over a Store with PolicyLRU; the scheduler's hot
// paths and the eviction ablation share this one implementation.
//
// Chunks may be pinned (Pin/Unpin) while a scheduled task depends on them:
// demand Insert ignores pins entirely — its eviction choices are identical
// with and without pins, keeping golden outputs stable — but InsertCold
// (the prefetch admission path) never evicts a pinned chunk.
type Store struct {
	policy Policy
	quota  units.Bytes
	used   units.Bytes
	seed   int64

	// order is maintained for LRU (recency) and FIFO (insertion).
	order *list.List
	items map[volume.ChunkID]*storeEntry

	// rng drives random eviction.
	rng *rand.Rand

	// pins maps pinned chunks to their pin counts; pinnedBytes is the total
	// size of pinned residents, maintained for InsertCold's feasibility check.
	pins        map[volume.ChunkID]int
	pinnedBytes units.Bytes

	stats Stats
}

type storeEntry struct {
	id   volume.ChunkID
	size units.Bytes
	el   *list.Element
	freq int64
}

// NewStore returns an empty cache with the given policy and quota. Random
// eviction draws from the given seed for reproducibility.
func NewStore(policy Policy, quota units.Bytes, seed int64) *Store {
	if quota <= 0 {
		panic(fmt.Sprintf("cache: non-positive quota %v", quota))
	}
	return &Store{
		policy: policy,
		quota:  quota,
		seed:   seed,
		order:  list.New(),
		items:  make(map[volume.ChunkID]*storeEntry),
		rng:    rand.New(rand.NewSource(seed)),
		pins:   make(map[volume.ChunkID]int),
	}
}

// Policy returns the configured eviction policy.
func (s *Store) Policy() Policy { return s.policy }

// Quota returns the configured byte limit.
func (s *Store) Quota() units.Bytes { return s.quota }

// Used returns the bytes currently resident.
func (s *Store) Used() units.Bytes { return s.used }

// Len returns the number of resident chunks.
func (s *Store) Len() int { return len(s.items) }

// Stats returns the cumulative hit/miss/eviction counters.
func (s *Store) Stats() Stats { return s.stats }

// Contains reports residency without recording an access.
func (s *Store) Contains(id volume.ChunkID) bool {
	_, ok := s.items[id]
	return ok
}

// Touch records an access and reports whether the chunk was resident.
func (s *Store) Touch(id volume.ChunkID) bool {
	if !s.touch(id) {
		s.stats.Misses++
		return false
	}
	s.stats.Hits++
	return true
}

// touch is Touch without the hit/miss accounting, used by Insert so the
// miss that triggered an insert is not counted twice.
func (s *Store) touch(id volume.ChunkID) bool {
	e, ok := s.items[id]
	if !ok {
		return false
	}
	e.freq++
	if s.policy == PolicyLRU {
		s.order.MoveToFront(e.el)
	}
	return true
}

// victim selects the entry to evict under the policy.
func (s *Store) victim() *storeEntry {
	switch s.policy {
	case PolicyLRU, PolicyFIFO:
		return s.order.Back().Value.(*storeEntry)
	case PolicyRandom:
		n := s.rng.Intn(len(s.items))
		el := s.order.Front()
		for i := 0; i < n; i++ {
			el = el.Next()
		}
		return el.Value.(*storeEntry)
	case PolicyLFU:
		var worst *storeEntry
		for el := s.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*storeEntry)
			if worst == nil || e.freq < worst.freq {
				worst = e
			}
		}
		return worst
	default:
		panic("cache: unknown policy")
	}
}

// victimUnpinned selects the entry InsertCold evicts: the policy's choice
// restricted to unpinned residents. Callers must ensure at least one
// unpinned entry exists.
func (s *Store) victimUnpinned() *storeEntry {
	switch s.policy {
	case PolicyLRU, PolicyFIFO:
		for el := s.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*storeEntry)
			if _, pinned := s.pins[e.id]; !pinned {
				return e
			}
		}
	case PolicyRandom:
		free := len(s.items) - len(s.pins)
		n := s.rng.Intn(free)
		for el := s.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*storeEntry)
			if _, pinned := s.pins[e.id]; pinned {
				continue
			}
			if n == 0 {
				return e
			}
			n--
		}
	case PolicyLFU:
		var worst *storeEntry
		for el := s.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*storeEntry)
			if _, pinned := s.pins[e.id]; pinned {
				continue
			}
			if worst == nil || e.freq < worst.freq {
				worst = e
			}
		}
		return worst
	}
	panic("cache: victimUnpinned with no unpinned entries")
}

// drop removes an entry from all bookkeeping (clearing its pins, if any).
func (s *Store) drop(e *storeEntry) {
	s.order.Remove(e.el)
	delete(s.items, e.id)
	s.used -= e.size
	if _, pinned := s.pins[e.id]; pinned {
		delete(s.pins, e.id)
		s.pinnedBytes -= e.size
	}
}

// Insert adds the chunk (or touches it if resident), evicting under the
// policy as needed, and returns the evicted IDs. Demand inserts ignore
// pins: a pinned chunk can be evicted here (the pin is cleared), so
// eviction behaviour is byte-identical whether or not pinning is in use.
func (s *Store) Insert(id volume.ChunkID, size units.Bytes) []volume.ChunkID {
	if size <= 0 {
		panic(fmt.Sprintf("cache: non-positive chunk size %v", size))
	}
	if size > s.quota {
		panic(fmt.Sprintf("cache: chunk %v (%v) exceeds quota %v", id, size, s.quota))
	}
	if s.touch(id) {
		return nil
	}
	var evicted []volume.ChunkID
	for s.used+size > s.quota {
		v := s.victim()
		s.drop(v)
		s.stats.Evictions++
		evicted = append(evicted, v.id)
	}
	e := &storeEntry{id: id, size: size, freq: 1}
	e.el = s.order.PushFront(e)
	s.items[id] = e
	s.used += size
	return evicted
}

// InsertCold admits a chunk at the cold end of the cache — the prefetch
// admission path. Unlike Insert it is best-effort: it never evicts a
// pinned chunk, and reports ok=false (without mutating anything) when the
// chunk cannot fit after evicting every unpinned resident. A resident
// chunk is left where it is (no promotion) and reported ok=true. The
// admitted chunk starts with zero frequency so LFU also sees it as cold.
func (s *Store) InsertCold(id volume.ChunkID, size units.Bytes) (evicted []volume.ChunkID, ok bool) {
	if size <= 0 {
		panic(fmt.Sprintf("cache: non-positive chunk size %v", size))
	}
	if s.Contains(id) {
		return nil, true
	}
	if size > s.quota-s.pinnedBytes {
		return nil, false
	}
	for s.used+size > s.quota {
		v := s.victimUnpinned()
		s.drop(v)
		s.stats.Evictions++
		evicted = append(evicted, v.id)
	}
	e := &storeEntry{id: id, size: size, freq: 0}
	e.el = s.order.PushBack(e)
	s.items[id] = e
	s.used += size
	return evicted, true
}

// Pin marks a resident chunk as depended on by a scheduled task, protecting
// it from InsertCold eviction. Pins nest (counted); a non-resident chunk
// cannot be pinned and Pin reports false.
func (s *Store) Pin(id volume.ChunkID) bool {
	e, ok := s.items[id]
	if !ok {
		return false
	}
	if s.pins[id] == 0 {
		s.pinnedBytes += e.size
	}
	s.pins[id]++
	return true
}

// Unpin releases one pin on the chunk. It is a no-op if the chunk is not
// pinned (e.g. it was evicted by a demand insert, which clears all pins).
func (s *Store) Unpin(id volume.ChunkID) {
	n, ok := s.pins[id]
	if !ok {
		return
	}
	if n <= 1 {
		delete(s.pins, id)
		if e, resident := s.items[id]; resident {
			s.pinnedBytes -= e.size
		}
		return
	}
	s.pins[id] = n - 1
}

// Pinned reports whether the chunk currently holds at least one pin.
func (s *Store) Pinned(id volume.ChunkID) bool {
	_, ok := s.pins[id]
	return ok
}

// PinnedBytes returns the total size of pinned residents.
func (s *Store) PinnedBytes() units.Bytes { return s.pinnedBytes }

// Remove drops the chunk if resident (clearing its pins) and reports
// whether it was.
func (s *Store) Remove(id volume.ChunkID) bool {
	e, ok := s.items[id]
	if !ok {
		return false
	}
	s.drop(e)
	return true
}

// Resident returns resident chunk IDs, most-recent/newest first. The order
// is the deterministic recency/insertion list (never map order), so
// snapshots and golden comparisons are reproducible; it matches
// LRU.Resident exactly because LRU is a wrapper over this Store.
func (s *Store) Resident() []volume.ChunkID {
	out := make([]volume.ChunkID, 0, len(s.items))
	for el := s.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).id)
	}
	return out
}

// Clone returns an independent copy with identical contents, order,
// frequencies, pins, and counters. The random-eviction stream restarts
// from the original seed (exact for the deterministic policies, which is
// every use the head's prediction tables make of it).
func (s *Store) Clone() *Store {
	n := NewStore(s.policy, s.quota, s.seed)
	for el := s.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*storeEntry)
		ne := &storeEntry{id: e.id, size: e.size, freq: e.freq}
		ne.el = n.order.PushFront(ne)
		n.items[ne.id] = ne
		n.used += ne.size
	}
	for id, cnt := range s.pins {
		n.pins[id] = cnt
	}
	n.pinnedBytes = s.pinnedBytes
	n.stats = s.stats
	return n
}

// Chunks is the cache interface shared by LRU and Store, which the
// simulation engine's nodes program against.
type Chunks interface {
	Contains(volume.ChunkID) bool
	Touch(volume.ChunkID) bool
	Insert(volume.ChunkID, units.Bytes) []volume.ChunkID
	InsertCold(volume.ChunkID, units.Bytes) ([]volume.ChunkID, bool)
	Pin(volume.ChunkID) bool
	Unpin(volume.ChunkID)
	Remove(volume.ChunkID) bool
	Resident() []volume.ChunkID
	Used() units.Bytes
	Quota() units.Bytes
	Len() int
	Stats() Stats
}

// Compile-time interface checks.
var (
	_ Chunks = (*LRU)(nil)
	_ Chunks = (*Store)(nil)
)
