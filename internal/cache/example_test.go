package cache_test

import (
	"fmt"

	"vizsched/internal/cache"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// A node's main memory holds data chunks under a byte quota; the least
// recently used chunk is evicted when a new one arrives.
func ExampleLRU() {
	mem := cache.NewLRU(units.GB)
	a := volume.ChunkID{Dataset: 1, Index: 0}
	b := volume.ChunkID{Dataset: 1, Index: 1}
	c := volume.ChunkID{Dataset: 2, Index: 0}

	mem.Insert(a, 512*units.MB)
	mem.Insert(b, 512*units.MB)
	mem.Touch(a) // a is now hotter than b

	evicted := mem.Insert(c, 512*units.MB)
	fmt.Println("evicted:", evicted)
	fmt.Println("a resident:", mem.Contains(a))
	// Output:
	// evicted: [d1/c1]
	// a resident: true
}

// Store generalizes LRU with pluggable eviction policies for the ablation
// benchmarks.
func ExampleStore() {
	mem := cache.NewStore(cache.PolicyFIFO, units.GB, 0)
	a := volume.ChunkID{Dataset: 1, Index: 0}
	b := volume.ChunkID{Dataset: 1, Index: 1}
	mem.Insert(a, 512*units.MB)
	mem.Insert(b, 512*units.MB)
	mem.Touch(a) // FIFO ignores recency
	evicted := mem.Insert(volume.ChunkID{Dataset: 2, Index: 0}, 512*units.MB)
	fmt.Println("evicted:", evicted)
	// Output:
	// evicted: [d1/c0]
}
