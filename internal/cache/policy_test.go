package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func allPolicies() []Policy {
	return []Policy{PolicyLRU, PolicyFIFO, PolicyRandom, PolicyLFU}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{PolicyLRU: "lru", PolicyFIFO: "fifo", PolicyRandom: "random", PolicyLFU: "lfu"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestStoreBasicOpsAllPolicies(t *testing.T) {
	for _, p := range allPolicies() {
		s := NewStore(p, 10, 1)
		if ev := s.Insert(cid(1, 0), 4); ev != nil {
			t.Errorf("%v: unexpected eviction", p)
		}
		if !s.Contains(cid(1, 0)) || !s.Touch(cid(1, 0)) {
			t.Errorf("%v: residency broken", p)
		}
		if s.Used() != 4 || s.Len() != 1 {
			t.Errorf("%v: accounting broken", p)
		}
		if !s.Remove(cid(1, 0)) || s.Remove(cid(1, 0)) {
			t.Errorf("%v: Remove broken", p)
		}
	}
}

func TestStoreLRUEvictsLeastRecent(t *testing.T) {
	s := NewStore(PolicyLRU, 8, 1)
	s.Insert(cid(1, 0), 4)
	s.Insert(cid(1, 1), 4)
	s.Touch(cid(1, 0))
	ev := s.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 1) {
		t.Errorf("LRU evicted %v", ev)
	}
}

func TestStoreFIFOIgnoresTouch(t *testing.T) {
	s := NewStore(PolicyFIFO, 8, 1)
	s.Insert(cid(1, 0), 4)
	s.Insert(cid(1, 1), 4)
	// Touching the oldest does not save it under FIFO.
	s.Touch(cid(1, 0))
	ev := s.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 0) {
		t.Errorf("FIFO evicted %v, want the oldest insert", ev)
	}
}

func TestStoreLFUEvictsColdest(t *testing.T) {
	s := NewStore(PolicyLFU, 8, 1)
	s.Insert(cid(1, 0), 4)
	s.Insert(cid(1, 1), 4)
	for i := 0; i < 5; i++ {
		s.Touch(cid(1, 1))
	}
	ev := s.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 0) {
		t.Errorf("LFU evicted %v, want the cold chunk", ev)
	}
}

func TestStoreRandomDeterministicPerSeed(t *testing.T) {
	run := func() []volume.ChunkID {
		s := NewStore(PolicyRandom, 8, 42)
		var ev []volume.ChunkID
		for i := 0; i < 10; i++ {
			ev = append(ev, s.Insert(cid(1, i), 4)...)
		}
		return ev
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("random policy not reproducible")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy diverged across identical seeds")
		}
	}
}

func TestStorePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero quota": func() { NewStore(PolicyLRU, 0, 1) },
		"oversize":   func() { NewStore(PolicyLRU, 4, 1).Insert(cid(1, 0), 5) },
		"zero size":  func() { NewStore(PolicyLRU, 4, 1).Insert(cid(1, 0), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: under every policy, used bytes stay within quota and equal the
// sum of resident sizes.
func TestQuickStoreInvariants(t *testing.T) {
	f := func(seed int64, ops uint8, policyRaw uint8) bool {
		policy := allPolicies()[int(policyRaw)%4]
		rng := rand.New(rand.NewSource(seed))
		quota := units.Bytes(rng.Intn(40) + 8)
		s := NewStore(policy, quota, seed)
		sizes := map[volume.ChunkID]units.Bytes{}
		for i := 0; i < int(ops); i++ {
			id := cid(rng.Intn(3), rng.Intn(6))
			switch rng.Intn(3) {
			case 0:
				size, had := sizes[id]
				if !had {
					size = units.Bytes(rng.Int63n(int64(quota))) + 1
					sizes[id] = size
				}
				s.Insert(id, size)
			case 1:
				s.Touch(id)
			default:
				s.Remove(id)
			}
			if s.Used() > quota {
				return false
			}
			var sum units.Bytes
			for _, r := range s.Resident() {
				sum += sizes[r]
			}
			if sum != s.Used() || len(s.Resident()) != s.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The Store with PolicyLRU must behave identically to the dedicated LRU.
func TestQuickStoreLRUMatchesLRU(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		quota := units.Bytes(rng.Intn(30) + 8)
		a := NewLRU(quota)
		b := NewStore(PolicyLRU, quota, 0)
		sizes := map[volume.ChunkID]units.Bytes{}
		for i := 0; i < int(ops); i++ {
			id := cid(0, rng.Intn(6))
			switch rng.Intn(3) {
			case 0:
				size, had := sizes[id]
				if !had {
					size = units.Bytes(rng.Int63n(int64(quota))) + 1
					sizes[id] = size
				}
				evA := a.Insert(id, size)
				evB := b.Insert(id, size)
				if len(evA) != len(evB) {
					return false
				}
				for j := range evA {
					if evA[j] != evB[j] {
						return false
					}
				}
			case 1:
				if a.Touch(id) != b.Touch(id) {
					return false
				}
			default:
				if a.Remove(id) != b.Remove(id) {
					return false
				}
			}
		}
		ra, rb := a.Resident(), b.Resident()
		if len(ra) != len(rb) {
			return false
		}
		for i := range ra {
			if ra[i] != rb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
