package cache

import (
	"fmt"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Entry is one resident chunk in a cache export, carrying everything needed
// to rebuild the residency exactly: identity, size, the LFU frequency
// counter, and the pin count.
type Entry struct {
	ID   volume.ChunkID
	Size units.Bytes
	Freq int64
	Pins int
}

// Export returns the cache contents in recency order, most-recent first —
// the same deterministic order Resident uses — plus per-entry frequency and
// pin counts. Feeding the result to Restore on an empty cache of the same
// quota rebuilds an identical cache (Clone, through a serializable value).
func (s *Store) Export() []Entry {
	out := make([]Entry, 0, len(s.items))
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry)
		out = append(out, Entry{ID: e.id, Size: e.size, Freq: e.freq, Pins: s.pins[e.id]})
	}
	return out
}

// Restore rebuilds the cache from an Export: entries (most-recent first)
// replace the current contents, and the cumulative stats counters are set
// to st. The random-eviction stream restarts from the seed, exactly as in
// Clone. Panics if an entry exceeds the quota — an export from a
// same-quota cache cannot.
func (s *Store) Restore(entries []Entry, st Stats) {
	s.order.Init()
	s.items = make(map[volume.ChunkID]*storeEntry, len(entries))
	s.pins = make(map[volume.ChunkID]int)
	s.used, s.pinnedBytes = 0, 0
	for _, ent := range entries {
		if ent.Size <= 0 {
			panic(fmt.Sprintf("cache: restore of non-positive size %v for %v", ent.Size, ent.ID))
		}
		e := &storeEntry{id: ent.ID, size: ent.Size, freq: ent.Freq}
		e.el = s.order.PushBack(e)
		s.items[ent.ID] = e
		s.used += ent.Size
		if ent.Pins > 0 {
			s.pins[ent.ID] = ent.Pins
			s.pinnedBytes += ent.Size
		}
	}
	if s.used > s.quota {
		panic(fmt.Sprintf("cache: restore overflows quota (%v > %v)", s.used, s.quota))
	}
	s.stats = st
}

// Export returns the cache contents most-recent first; see Store.Export.
func (c *LRU) Export() []Entry { return c.s.Export() }

// Restore rebuilds the cache from an Export; see Store.Restore.
func (c *LRU) Restore(entries []Entry, st Stats) { c.s.Restore(entries, st) }
