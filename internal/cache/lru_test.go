package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

func cid(d, i int) volume.ChunkID {
	return volume.ChunkID{Dataset: volume.DatasetID(d), Index: i}
}

func TestInsertAndContains(t *testing.T) {
	c := NewLRU(10)
	if ev := c.Insert(cid(1, 0), 4); ev != nil {
		t.Errorf("unexpected eviction %v", ev)
	}
	if !c.Contains(cid(1, 0)) || c.Contains(cid(1, 1)) {
		t.Error("Contains wrong")
	}
	if c.Used() != 4 || c.Len() != 1 {
		t.Errorf("Used=%v Len=%d", c.Used(), c.Len())
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := NewLRU(10)
	c.Insert(cid(1, 0), 4)
	c.Insert(cid(1, 1), 4)
	// Touch chunk 0 so chunk 1 is now least recently used.
	if !c.Touch(cid(1, 0)) {
		t.Fatal("Touch missed resident chunk")
	}
	ev := c.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 1) {
		t.Errorf("evicted %v, want [d1/c1]", ev)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("Evictions = %d", got)
	}
}

func TestInsertExistingTouches(t *testing.T) {
	c := NewLRU(10)
	c.Insert(cid(1, 0), 4)
	c.Insert(cid(1, 1), 4)
	// Re-inserting chunk 0 must refresh it instead of duplicating.
	if ev := c.Insert(cid(1, 0), 4); ev != nil {
		t.Errorf("re-insert evicted %v", ev)
	}
	if c.Used() != 8 || c.Len() != 2 {
		t.Errorf("Used=%v Len=%d", c.Used(), c.Len())
	}
	ev := c.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 1) {
		t.Errorf("evicted %v, want chunk 1", ev)
	}
}

func TestMultiEviction(t *testing.T) {
	c := NewLRU(10)
	c.Insert(cid(1, 0), 3)
	c.Insert(cid(1, 1), 3)
	c.Insert(cid(1, 2), 3)
	ev := c.Insert(cid(1, 3), 8)
	if len(ev) != 3 {
		t.Errorf("evicted %d chunks, want 3", len(ev))
	}
	if c.Used() != 8 || c.Len() != 1 {
		t.Errorf("Used=%v Len=%d", c.Used(), c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU(10)
	c.Insert(cid(1, 0), 4)
	if !c.Remove(cid(1, 0)) {
		t.Error("Remove missed resident chunk")
	}
	if c.Remove(cid(1, 0)) {
		t.Error("Remove hit absent chunk")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Error("state not empty after Remove")
	}
}

func TestResidentOrder(t *testing.T) {
	c := NewLRU(100)
	c.Insert(cid(1, 0), 1)
	c.Insert(cid(1, 1), 1)
	c.Insert(cid(1, 2), 1)
	c.Touch(cid(1, 0))
	got := c.Resident()
	want := []volume.ChunkID{cid(1, 0), cid(1, 2), cid(1, 1)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resident = %v, want %v", got, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := NewLRU(10)
	c.Insert(cid(1, 0), 4)
	c.Insert(cid(1, 1), 4)
	cl := c.Clone()
	// Same contents and recency order.
	a, b := c.Resident(), cl.Resident()
	if len(a) != len(b) || a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("clone order %v != %v", b, a)
	}
	// Divergence after clone.
	cl.Insert(cid(1, 2), 4)
	if c.Contains(cid(1, 2)) {
		t.Error("clone writes leaked to original")
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero quota":     func() { NewLRU(0) },
		"zero size":      func() { NewLRU(10).Insert(cid(1, 0), 0) },
		"oversize chunk": func() { NewLRU(10).Insert(cid(1, 0), 11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: used bytes never exceed the quota and always equal the sum of
// resident chunk sizes, under any operation sequence.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		quota := units.Bytes(rng.Intn(50) + 10)
		c := NewLRU(quota)
		sizes := make(map[volume.ChunkID]units.Bytes)
		for i := 0; i < int(ops); i++ {
			id := cid(rng.Intn(3), rng.Intn(5))
			switch rng.Intn(3) {
			case 0:
				size, had := sizes[id]
				if !had {
					size = units.Bytes(rng.Int63n(int64(quota))) + 1
					sizes[id] = size
				}
				c.Insert(id, size)
			case 1:
				c.Touch(id)
			default:
				c.Remove(id)
			}
			if c.Used() > quota {
				return false
			}
			var sum units.Bytes
			for _, r := range c.Resident() {
				sum += sizes[r]
			}
			if sum != c.Used() || len(c.Resident()) != c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
