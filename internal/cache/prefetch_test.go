package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// Table-driven coverage of the cache-admission guards around prefetch:
// InsertCold must admit at the cold end, refuse rather than evict a pinned
// chunk, and leave the cache untouched when it refuses.
func TestPrefetchInsertColdAdmission(t *testing.T) {
	type op struct {
		insert     volume.ChunkID // demand insert when size > 0
		insertSize units.Bytes
		pin        volume.ChunkID // pin when non-zero
	}
	pinned := func(ids ...volume.ChunkID) []volume.ChunkID { return ids }
	cases := []struct {
		name        string
		quota       units.Bytes
		setup       []op
		cold        volume.ChunkID
		coldSize    units.Bytes
		wantOK      bool
		wantEvicted []volume.ChunkID
		wantKept    []volume.ChunkID // must remain resident afterwards
	}{
		{
			name:  "fits without eviction",
			quota: 10,
			setup: []op{{insert: cid(1, 0), insertSize: 4}},
			cold:  cid(1, 1), coldSize: 4,
			wantOK:   true,
			wantKept: pinned(cid(1, 0), cid(1, 1)),
		},
		{
			name:  "evicts unpinned LRU victim at exactly-full quota",
			quota: 8,
			setup: []op{
				{insert: cid(1, 0), insertSize: 4},
				{insert: cid(1, 1), insertSize: 4},
			},
			cold: cid(1, 2), coldSize: 4,
			wantOK:      true,
			wantEvicted: pinned(cid(1, 0)),
			wantKept:    pinned(cid(1, 1), cid(1, 2)),
		},
		{
			name:  "skips pinned victim, evicts next-coldest",
			quota: 8,
			setup: []op{
				{insert: cid(1, 0), insertSize: 4},
				{insert: cid(1, 1), insertSize: 4},
				{pin: cid(1, 0)},
			},
			cold: cid(1, 2), coldSize: 4,
			wantOK:      true,
			wantEvicted: pinned(cid(1, 1)),
			wantKept:    pinned(cid(1, 0), cid(1, 2)),
		},
		{
			name:  "refuses when only pinned chunks could make room",
			quota: 8,
			setup: []op{
				{insert: cid(1, 0), insertSize: 4},
				{insert: cid(1, 1), insertSize: 4},
				{pin: cid(1, 0)},
				{pin: cid(1, 1)},
			},
			cold: cid(1, 2), coldSize: 4,
			wantOK:   false,
			wantKept: pinned(cid(1, 0), cid(1, 1)),
		},
		{
			name:  "refuses oversize without panicking",
			quota: 8,
			setup: []op{{insert: cid(1, 0), insertSize: 4}},
			cold:  cid(1, 2), coldSize: 9,
			wantOK:   false,
			wantKept: pinned(cid(1, 0)),
		},
		{
			name:  "already resident is a no-op success",
			quota: 8,
			setup: []op{
				{insert: cid(1, 0), insertSize: 4},
				{insert: cid(1, 1), insertSize: 4},
			},
			cold: cid(1, 0), coldSize: 4,
			wantOK:   true,
			wantKept: pinned(cid(1, 0), cid(1, 1)),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewLRU(tc.quota)
			for _, o := range tc.setup {
				if o.insertSize > 0 {
					c.Insert(o.insert, o.insertSize)
				}
				if (o.pin != volume.ChunkID{}) {
					if !c.Pin(o.pin) {
						t.Fatalf("Pin(%v) failed during setup", o.pin)
					}
				}
			}
			usedBefore := c.Used()
			evicted, ok := c.InsertCold(tc.cold, tc.coldSize)
			if ok != tc.wantOK {
				t.Fatalf("InsertCold ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok && c.Used() != usedBefore {
				t.Errorf("refused InsertCold mutated the cache: used %v -> %v", usedBefore, c.Used())
			}
			if len(evicted) != len(tc.wantEvicted) {
				t.Fatalf("evicted %v, want %v", evicted, tc.wantEvicted)
			}
			for i := range evicted {
				if evicted[i] != tc.wantEvicted[i] {
					t.Fatalf("evicted %v, want %v", evicted, tc.wantEvicted)
				}
			}
			for _, id := range tc.wantKept {
				if !c.Contains(id) {
					t.Errorf("chunk %v missing after InsertCold", id)
				}
			}
		})
	}
}

// A cold insert lands at the cold end: it is the first LRU victim, and a
// demand insert racing it never loses the chunk a scheduled task pinned.
func TestPrefetchColdInsertIsFirstVictim(t *testing.T) {
	c := NewLRU(12)
	c.Insert(cid(1, 0), 4)
	c.Insert(cid(1, 1), 4)
	if _, ok := c.InsertCold(cid(2, 0), 4); !ok {
		t.Fatal("InsertCold failed with free space")
	}
	got := c.Resident()
	want := []volume.ChunkID{cid(1, 1), cid(1, 0), cid(2, 0)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Resident = %v, want %v", got, want)
		}
	}
	// The racing demand insert evicts the cold prefetched chunk, not the
	// demand-resident ones.
	ev := c.Insert(cid(3, 0), 4)
	if len(ev) != 1 || ev[0] != cid(2, 0) {
		t.Fatalf("demand insert evicted %v, want the cold prefetched chunk", ev)
	}
}

// Pin bookkeeping across nesting, unpin, demand eviction, and removal.
func TestPrefetchPinLifecycle(t *testing.T) {
	c := NewLRU(8)
	if c.Pin(cid(1, 0)) {
		t.Error("pinned a non-resident chunk")
	}
	c.Insert(cid(1, 0), 4)
	c.Insert(cid(1, 1), 4)
	if !c.Pin(cid(1, 0)) || !c.Pin(cid(1, 0)) {
		t.Fatal("Pin failed on resident chunk")
	}
	c.Unpin(cid(1, 0))
	if !c.Pinned(cid(1, 0)) {
		t.Error("nested pin released after one Unpin")
	}
	c.Unpin(cid(1, 0))
	if c.Pinned(cid(1, 0)) {
		t.Error("chunk still pinned after matching Unpins")
	}
	// Demand eviction of a pinned chunk clears the pin (pins do not change
	// demand eviction choices).
	c.Pin(cid(1, 0))
	c.Touch(cid(1, 1))
	ev := c.Insert(cid(1, 2), 4)
	if len(ev) != 1 || ev[0] != cid(1, 0) {
		t.Fatalf("demand insert evicted %v, want the pinned LRU chunk", ev)
	}
	if c.Pinned(cid(1, 0)) || c.PinnedBytes() != 0 {
		t.Error("pin survived demand eviction")
	}
	c.Unpin(cid(1, 0)) // must be a safe no-op
}

// Counters: hits and misses accrue at Touch only; inserting after a counted
// miss does not double-count, and evictions accrue on both insert paths.
func TestPrefetchCacheStatsCounters(t *testing.T) {
	c := NewLRU(8)
	if c.Touch(cid(1, 0)) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(cid(1, 0), 4)
	if !c.Touch(cid(1, 0)) {
		t.Fatal("miss on resident chunk")
	}
	c.Insert(cid(1, 1), 4)
	c.Insert(cid(1, 2), 4) // evicts one
	c.InsertCold(cid(1, 3), 4)
	c.InsertCold(cid(1, 2), 4) // already resident: no-op, counts nothing
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("Stats = %+v, want 1 hit / 1 miss", st)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (one demand, one cold)", st.Evictions)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	cl := c.Clone()
	if cl.Stats() != st {
		t.Errorf("Clone stats %+v != %+v", cl.Stats(), st)
	}
}

// Property: under any interleaving of demand inserts, cold inserts, pins,
// unpins, touches, and removes, (1) a pinned chunk is never evicted by
// InsertCold, (2) used bytes never exceed quota, and (3) pinned bytes always
// equal the sum of pinned resident sizes. Run under -race in CI with the
// prefetch job.
func TestPrefetchPinQuickProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		quota := units.Bytes(rng.Intn(40) + 8)
		c := NewLRU(quota)
		sizes := make(map[volume.ChunkID]units.Bytes)
		sizeFor := func(id volume.ChunkID) units.Bytes {
			s, ok := sizes[id]
			if !ok {
				s = units.Bytes(rng.Int63n(int64(quota))) + 1
				sizes[id] = s
			}
			return s
		}
		for i := 0; i < int(ops)+16; i++ {
			id := cid(rng.Intn(3), rng.Intn(4))
			switch rng.Intn(5) {
			case 0:
				c.Insert(id, sizeFor(id))
			case 1:
				wasPinned := make(map[volume.ChunkID]bool)
				for _, r := range c.Resident() {
					wasPinned[r] = c.Pinned(r)
				}
				evicted, ok := c.InsertCold(id, sizeFor(id))
				for _, ev := range evicted {
					if wasPinned[ev] {
						return false // (1) violated
					}
				}
				if !ok && len(evicted) > 0 {
					return false
				}
			case 2:
				c.Pin(id)
			case 3:
				c.Unpin(id)
			default:
				if rng.Intn(2) == 0 {
					c.Touch(id)
				} else {
					c.Remove(id)
				}
			}
			if c.Used() > quota {
				return false // (2) violated
			}
			var pinnedSum units.Bytes
			for _, r := range c.Resident() {
				if c.Pinned(r) {
					pinnedSum += sizes[r]
				}
			}
			if pinnedSum != c.PinnedBytes() {
				return false // (3) violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Resident order is the deterministic recency list for every policy — never
// map order — so snapshots and golden comparisons are reproducible.
func TestPrefetchResidentDeterministicOrder(t *testing.T) {
	for _, p := range []Policy{PolicyLRU, PolicyFIFO, PolicyRandom, PolicyLFU} {
		build := func() []volume.ChunkID {
			s := NewStore(p, 100, 42)
			for i := 0; i < 10; i++ {
				s.Insert(cid(i%3, i), 5)
			}
			s.Touch(cid(0, 0))
			s.InsertCold(cid(9, 9), 5)
			return s.Resident()
		}
		a, b := build(), build()
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: Resident order not deterministic: %v vs %v", p, a, b)
			}
		}
	}
}
