// Package cache provides the byte-quota LRU chunk cache used in two places:
// as each rendering node's *actual* main-memory state, and as the head
// node's *predicted* per-node Cache table (paper §V-B). Keeping one
// implementation for both guarantees the prediction and the reality evict in
// the same order when fed the same access stream.
package cache

import (
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// LRU is a least-recently-used cache of data chunks bounded by a byte quota.
// It is a thin wrapper over Store with PolicyLRU — one eviction
// implementation serves both the named LRU type and the policy ablation —
// kept as a distinct type for its Clone method and as the concrete type the
// head's prediction tables use. It is not safe for concurrent use; each
// owner guards its own instance.
type LRU struct {
	s *Store
}

// NewLRU returns an empty cache with the given quota. A zero or negative
// quota panics: a cacheless node cannot render at all.
func NewLRU(quota units.Bytes) *LRU {
	return &LRU{s: NewStore(PolicyLRU, quota, 0)}
}

// Quota returns the configured byte limit.
func (c *LRU) Quota() units.Bytes { return c.s.Quota() }

// Used returns the bytes currently resident.
func (c *LRU) Used() units.Bytes { return c.s.Used() }

// Len returns the number of resident chunks.
func (c *LRU) Len() int { return c.s.Len() }

// Stats returns the cumulative hit/miss/eviction counters.
func (c *LRU) Stats() Stats { return c.s.Stats() }

// Contains reports residency without updating recency.
func (c *LRU) Contains(id volume.ChunkID) bool { return c.s.Contains(id) }

// Touch marks the chunk most-recently-used and reports whether it was
// resident.
func (c *LRU) Touch(id volume.ChunkID) bool { return c.s.Touch(id) }

// Insert adds the chunk (or touches it if already resident), evicting
// least-recently-used chunks as needed. It returns the IDs evicted. A chunk
// larger than the whole quota panics: the decomposition policy must prevent
// that configuration.
func (c *LRU) Insert(id volume.ChunkID, size units.Bytes) []volume.ChunkID {
	return c.s.Insert(id, size)
}

// InsertCold admits the chunk at the least-recently-used end without
// evicting pinned chunks; see Store.InsertCold.
func (c *LRU) InsertCold(id volume.ChunkID, size units.Bytes) ([]volume.ChunkID, bool) {
	return c.s.InsertCold(id, size)
}

// Pin protects a resident chunk from InsertCold eviction; see Store.Pin.
func (c *LRU) Pin(id volume.ChunkID) bool { return c.s.Pin(id) }

// Unpin releases one pin on the chunk; see Store.Unpin.
func (c *LRU) Unpin(id volume.ChunkID) { c.s.Unpin(id) }

// Pinned reports whether the chunk currently holds at least one pin.
func (c *LRU) Pinned(id volume.ChunkID) bool { return c.s.Pinned(id) }

// PinnedBytes returns the total size of pinned residents.
func (c *LRU) PinnedBytes() units.Bytes { return c.s.PinnedBytes() }

// Remove drops the chunk if resident and reports whether it was.
func (c *LRU) Remove(id volume.ChunkID) bool { return c.s.Remove(id) }

// Resident returns the resident chunk IDs from most- to least-recently used.
func (c *LRU) Resident() []volume.ChunkID { return c.s.Resident() }

// Clone returns an independent copy with identical contents and recency
// order, used when the head node seeds a what-if projection.
func (c *LRU) Clone() *LRU {
	return &LRU{s: c.s.Clone()}
}
