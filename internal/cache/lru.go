// Package cache provides the byte-quota LRU chunk cache used in two places:
// as each rendering node's *actual* main-memory state, and as the head
// node's *predicted* per-node Cache table (paper §V-B). Keeping one
// implementation for both guarantees the prediction and the reality evict in
// the same order when fed the same access stream.
package cache

import (
	"container/list"
	"fmt"

	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// LRU is a least-recently-used cache of data chunks bounded by a byte quota.
// It is not safe for concurrent use; each owner guards its own instance.
type LRU struct {
	quota units.Bytes
	used  units.Bytes
	order *list.List // front = most recently used; values are *entry
	items map[volume.ChunkID]*list.Element

	// Evictions counts chunks dropped to make room, an input to the swap
	// diagnostics in the experiment reports.
	Evictions int64
}

type entry struct {
	id   volume.ChunkID
	size units.Bytes
}

// NewLRU returns an empty cache with the given quota. A zero or negative
// quota panics: a cacheless node cannot render at all.
func NewLRU(quota units.Bytes) *LRU {
	if quota <= 0 {
		panic(fmt.Sprintf("cache: non-positive quota %v", quota))
	}
	return &LRU{
		quota: quota,
		order: list.New(),
		items: make(map[volume.ChunkID]*list.Element),
	}
}

// Quota returns the configured byte limit.
func (c *LRU) Quota() units.Bytes { return c.quota }

// Used returns the bytes currently resident.
func (c *LRU) Used() units.Bytes { return c.used }

// Len returns the number of resident chunks.
func (c *LRU) Len() int { return len(c.items) }

// Contains reports residency without updating recency.
func (c *LRU) Contains(id volume.ChunkID) bool {
	_, ok := c.items[id]
	return ok
}

// Touch marks the chunk most-recently-used and reports whether it was
// resident.
func (c *LRU) Touch(id volume.ChunkID) bool {
	el, ok := c.items[id]
	if !ok {
		return false
	}
	c.order.MoveToFront(el)
	return true
}

// Insert adds the chunk (or touches it if already resident), evicting
// least-recently-used chunks as needed. It returns the IDs evicted. A chunk
// larger than the whole quota panics: the decomposition policy must prevent
// that configuration.
func (c *LRU) Insert(id volume.ChunkID, size units.Bytes) []volume.ChunkID {
	if size <= 0 {
		panic(fmt.Sprintf("cache: non-positive chunk size %v", size))
	}
	if size > c.quota {
		panic(fmt.Sprintf("cache: chunk %v (%v) exceeds quota %v", id, size, c.quota))
	}
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return nil
	}
	var evicted []volume.ChunkID
	for c.used+size > c.quota {
		back := c.order.Back()
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.items, e.id)
		c.used -= e.size
		c.Evictions++
		evicted = append(evicted, e.id)
	}
	c.items[id] = c.order.PushFront(&entry{id: id, size: size})
	c.used += size
	return evicted
}

// Remove drops the chunk if resident and reports whether it was.
func (c *LRU) Remove(id volume.ChunkID) bool {
	el, ok := c.items[id]
	if !ok {
		return false
	}
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.items, id)
	c.used -= e.size
	return true
}

// Resident returns the resident chunk IDs from most- to least-recently used.
func (c *LRU) Resident() []volume.ChunkID {
	out := make([]volume.ChunkID, 0, len(c.items))
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).id)
	}
	return out
}

// Clone returns an independent copy with identical contents and recency
// order, used when the head node seeds a what-if projection.
func (c *LRU) Clone() *LRU {
	n := NewLRU(c.quota)
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		n.Insert(e.id, e.size)
	}
	n.Evictions = c.Evictions
	return n
}
