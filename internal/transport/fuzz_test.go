package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// frameSeed builds a valid wire frame for the seed corpus.
func frameSeed(kind Kind, id uint64, body []byte) []byte {
	b, err := AppendFrame(nil, Message{Kind: kind, ID: id, Body: body})
	if err != nil {
		panic(err)
	}
	return b
}

// FuzzFrameDecode drives ReadFrame with arbitrary byte streams and checks
// the codec's safety contract:
//
//   - never panics, never allocates past MaxFrameSize;
//   - every error is a truncation (io.EOF / io.ErrUnexpectedEOF) or an
//     explicit rejection (ErrCorruptFrame / ErrFrameTooLarge) — garbage in
//     the stream is detected, not misparsed;
//   - every successfully decoded frame re-encodes byte-identically to the
//     prefix it was decoded from (the codec is a bijection on valid
//     frames), and decoding always makes progress so a reader loop cannot
//     spin.
func FuzzFrameDecode(f *testing.F) {
	// Bound the length-prefix allocation for the fuzz run: the guard under
	// test is "length > MaxFrameSize is rejected before allocation", which
	// is exercised just as well at 1 MiB as at the production 512 MiB,
	// without letting a hostile length prefix allocate gigabytes per exec.
	oldMax := MaxFrameSize
	MaxFrameSize = 1 << 20
	f.Cleanup(func() { MaxFrameSize = oldMax })

	f.Add([]byte{})
	f.Add(frameSeed(1, 7, nil))
	f.Add(frameSeed(3, 1<<40, []byte("tile-fragment-payload")))
	two := append(frameSeed(2, 1, []byte("a")), frameSeed(4, 2, []byte("bb"))...)
	f.Add(two)
	// Torn tail: a valid frame missing its last byte.
	whole := frameSeed(5, 9, []byte("torn"))
	f.Add(whole[:len(whole)-1])
	// CRC flip in the body.
	flipped := frameSeed(5, 9, []byte("flip"))
	flipped[len(flipped)-1] ^= 0xff
	f.Add(flipped)
	// Declared length beyond the bound.
	huge := frameSeed(1, 1, nil)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	f.Add(huge)
	// Declared length shorter than the message header.
	runt := frameSeed(1, 1, nil)
	runt[0], runt[1], runt[2], runt[3] = 0, 0, 0, 4
	f.Add(runt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			before := r.Len()
			m, err := ReadFrame(r, nil)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, ErrCorruptFrame) && !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			consumed := before - r.Len()
			if consumed < frameHeaderLen+frameMetaLen {
				t.Fatalf("decode succeeded consuming only %dB", consumed)
			}
			start := len(data) - before
			reenc, err := AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
			if !bytes.Equal(reenc, data[start:start+consumed]) {
				t.Fatalf("decode/encode not a bijection:\n in  %x\n out %x",
					data[start:start+consumed], reenc)
			}
		}
	})
}
