package transport

import (
	"testing"
)

// collect receives n messages (or until the pipe closes) into a slice.
func collect(c Conn, n int) []Message {
	var out []Message
	for len(out) < n {
		m, err := c.Recv()
		if err != nil {
			break
		}
		out = append(out, m)
	}
	return out
}

func TestNetChaosDropIsSeededDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		a, b := Pipe()
		fi := NewFaultInjector(FaultConfig{Seed: seed, Drop: 0.5})
		fa := fi.Wrap(a)
		for i := uint64(0); i < 40; i++ {
			if err := fa.Send(Message{Kind: KindTask, ID: i}); err != nil {
				t.Fatal(err)
			}
		}
		fa.Close()
		var ids []uint64
		for {
			m, err := b.Recv()
			if err != nil {
				break
			}
			ids = append(ids, m.ID)
		}
		return ids
	}
	one, two := run(7), run(7)
	if len(one) == 0 || len(one) == 40 {
		t.Fatalf("drop rate 0.5 delivered %d/40", len(one))
	}
	if len(one) != len(two) {
		t.Fatalf("same seed, different delivery: %d vs %d", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("same seed, different order at %d: %d vs %d", i, one[i], two[i])
		}
	}
	other := run(8)
	same := len(other) == len(one)
	if same {
		for i := range one {
			if one[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestNetChaosDuplicateAndReorder(t *testing.T) {
	a, b := Pipe()
	fi := NewFaultInjector(FaultConfig{Seed: 3, Duplicate: 1})
	fa := fi.Wrap(a)
	fa.Send(Message{Kind: KindTileFrag, ID: 1})
	got := collect(b, 2)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 1 {
		t.Fatalf("duplicate not delivered twice: %+v", got)
	}
	if fi.Stats().Duplicated != 1 {
		t.Errorf("stats: %+v", fi.Stats())
	}

	a2, b2 := Pipe()
	fi2 := NewFaultInjector(FaultConfig{Seed: 3, Reorder: 1})
	fa2 := fi2.Wrap(a2)
	fa2.Send(Message{Kind: KindTileFrag, ID: 1}) // held
	fa2.Send(Message{Kind: KindTileFrag, ID: 2}) // ships, then releases 1... but 2 is also held-eligible
	fa2.Send(Message{Kind: KindTileFrag, ID: 3})
	fa2.Close() // flush any held message
	got2 := collect(b2, 3)
	if len(got2) != 3 {
		t.Fatalf("reorder lost messages: %+v", got2)
	}
	inOrder := got2[0].ID == 1 && got2[1].ID == 2 && got2[2].ID == 3
	if inOrder {
		t.Fatalf("reorder probability 1 delivered in order: %+v", got2)
	}
	if fi2.Stats().Reordered == 0 {
		t.Errorf("stats: %+v", fi2.Stats())
	}
}

func TestNetChaosPartitionBlackholesAndHeals(t *testing.T) {
	a, b := Pipe()
	fi := NewFaultInjector(FaultConfig{Seed: 1})
	fa := fi.Wrap(a)
	fi.Partition()
	if !fi.Partitioned() {
		t.Fatal("Partitioned() false after Partition()")
	}
	// Partitions swallow everything, even hellos.
	if err := fa.Send(Message{Kind: KindHello, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(Message{Kind: KindTask, ID: 2}); err != nil {
		t.Fatal(err)
	}
	fi.Heal()
	if err := fa.Send(Message{Kind: KindTask, ID: 3}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.ID != 3 {
		t.Fatalf("post-heal message: %+v err=%v", m, err)
	}
	if s := fi.Stats(); s.Partitioned != 2 {
		t.Errorf("partitioned count: %+v", s)
	}
}

func TestNetChaosHelloExemptFromFaults(t *testing.T) {
	a, b := Pipe()
	fi := NewFaultInjector(FaultConfig{Seed: 2, Drop: 1})
	fa := fi.Wrap(a)
	if err := fa.Send(Message{Kind: KindHello, ID: 5}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Kind != KindHello {
		t.Fatalf("hello was faulted: %+v err=%v", m, err)
	}
	// Everything else drops.
	fa.Send(Message{Kind: KindTask})
	fa.Close()
	if _, err := b.Recv(); err == nil {
		t.Error("dropped message was delivered")
	}
}

func TestNetChaosCorruptMutatesBodyNotOriginal(t *testing.T) {
	a, b := Pipe()
	fi := NewFaultInjector(FaultConfig{Seed: 11, Corrupt: 1})
	fa := fi.Wrap(a)
	orig := []byte{1, 2, 3, 4}
	keep := append([]byte(nil), orig...)
	fa.Send(Message{Kind: KindFragment, ID: 1, Body: orig})
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(keep) {
		t.Error("corruption mutated the caller's buffer")
	}
	if string(m.Body) == string(keep) {
		t.Error("body was not corrupted")
	}
	if fi.Stats().Corrupted != 1 {
		t.Errorf("stats: %+v", fi.Stats())
	}
}
