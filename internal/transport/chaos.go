package transport

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// FaultConfig parameterizes a FaultInjector. Each probability is evaluated
// independently per message in a fixed order (drop, corrupt, duplicate,
// reorder, delay) from a seeded per-connection stream, so a single-threaded
// sender sees a reproducible fault sequence for a given seed.
type FaultConfig struct {
	// Seed fixes the fault decision streams; connections wrapped by the
	// same injector derive independent sub-streams from it.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Corrupt is the probability a message's body is bit-flipped. The
	// mutation happens above the wire codec, modeling payload corruption
	// that frame CRCs cannot see — the receiver's gob decode must reject it.
	Corrupt float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back and released after
	// the next message on the same connection (a one-slot reorder).
	Reorder float64
	// Delay is the probability a message (and everything behind it on the
	// ordered pipe) stalls for a uniform duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds the stall; zero disables delays.
	MaxDelay time.Duration
}

// FaultStats counts the injector's interventions across all wrapped
// connections.
type FaultStats struct {
	Sent, Dropped, Corrupted, Duplicated, Reordered, Delayed, Partitioned int64
}

// FaultInjector wraps Conns with seeded network chaos: drop, corrupt,
// duplicate, reorder, delay, and an injector-wide partition switch that
// black-holes every wrapped connection until healed. KindHello messages are
// exempt (outside partitions) so handshakes and resync announcements can
// always complete — the chaos is aimed at steady-state traffic.
type FaultInjector struct {
	cfg    FaultConfig
	nconns int64
	parted atomic.Bool

	sent, dropped, corrupted, duplicated, reordered, delayed, partitioned atomic.Int64
}

// NewFaultInjector returns an injector for cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg}
}

// Partition starts black-holing every wrapped connection (both directions
// when both ends are wrapped). Sends succeed from the caller's view — the
// bytes just never arrive — matching how a real partition looks to a sender
// with a full socket buffer.
func (fi *FaultInjector) Partition() { fi.parted.Store(true) }

// Heal ends the partition.
func (fi *FaultInjector) Heal() { fi.parted.Store(false) }

// Partitioned reports whether the injector is currently partitioned.
func (fi *FaultInjector) Partitioned() bool { return fi.parted.Load() }

// Stats returns a snapshot of intervention counts.
func (fi *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Sent:        fi.sent.Load(),
		Dropped:     fi.dropped.Load(),
		Corrupted:   fi.corrupted.Load(),
		Duplicated:  fi.duplicated.Load(),
		Reordered:   fi.reordered.Load(),
		Delayed:     fi.delayed.Load(),
		Partitioned: fi.partitioned.Load(),
	}
}

// Wrap returns a Conn that applies the injector's faults to every Send on c.
// Faults are sender-side: wrap both ends of a pipe to fault both directions.
func (fi *FaultInjector) Wrap(c Conn) Conn {
	idx := atomic.AddInt64(&fi.nconns, 1)
	return &faultConn{
		next: c,
		fi:   fi,
		rng:  rand.New(rand.NewSource(fi.cfg.Seed + 1000003*idx)),
	}
}

// faultConn applies seeded faults on the send side of one connection.
type faultConn struct {
	next Conn
	fi   *FaultInjector
	mu   sync.Mutex
	rng  *rand.Rand
	held *Message // one-slot reorder buffer
}

// Send implements Conn. The mutex serializes concurrent senders so the
// decision stream stays well-defined; for deterministic tests use a single
// sending goroutine per wrapped connection.
func (c *faultConn) Send(m Message) error {
	fi := c.fi
	if fi.parted.Load() {
		fi.partitioned.Add(1)
		return nil // black hole: the sender cannot tell
	}
	if m.Kind == KindHello {
		return c.next.Send(m)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fi.sent.Add(1)
	cfg := &fi.cfg
	if cfg.Drop > 0 && c.rng.Float64() < cfg.Drop {
		fi.dropped.Add(1)
		return nil
	}
	if cfg.Corrupt > 0 && c.rng.Float64() < cfg.Corrupt && len(m.Body) > 0 {
		fi.corrupted.Add(1)
		body := make([]byte, len(m.Body))
		copy(body, m.Body)
		body[c.rng.Intn(len(body))] ^= 1 << uint(c.rng.Intn(8))
		m.Body = body
	}
	dup := cfg.Duplicate > 0 && c.rng.Float64() < cfg.Duplicate
	reorder := cfg.Reorder > 0 && c.rng.Float64() < cfg.Reorder
	if cfg.Delay > 0 && cfg.MaxDelay > 0 && c.rng.Float64() < cfg.Delay {
		fi.delayed.Add(1)
		time.Sleep(time.Duration(1 + c.rng.Int63n(int64(cfg.MaxDelay))))
	}
	if reorder && c.held == nil {
		// Hold this message; it ships after the next one (or on Close).
		fi.reordered.Add(1)
		held := m
		c.held = &held
		return nil
	}
	if err := c.next.Send(m); err != nil {
		return err
	}
	if dup {
		fi.duplicated.Add(1)
		if err := c.next.Send(m); err != nil {
			return err
		}
	}
	if c.held != nil {
		held := *c.held
		c.held = nil
		return c.next.Send(held)
	}
	return nil
}

// Recv implements Conn.
func (c *faultConn) Recv() (Message, error) { return c.next.Recv() }

// Close implements Conn, flushing any held reordered message first so a
// clean shutdown does not silently lose the last frame.
func (c *faultConn) Close() error {
	c.mu.Lock()
	if c.held != nil {
		held := *c.held
		c.held = nil
		c.mu.Unlock()
		_ = c.next.Send(held)
	} else {
		c.mu.Unlock()
	}
	return c.next.Close()
}
