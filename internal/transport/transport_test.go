package transport

import (
	"sync"
	"testing"
)

func testConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	// Round trip both directions.
	want := Message{Kind: KindRender, ID: 42, Body: []byte("payload")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.ID != want.ID || string(got.Body) != "payload" {
		t.Fatalf("got %+v", got)
	}
	if err := b.Send(Message{Kind: KindResult, ID: 42}); err != nil {
		t.Fatal(err)
	}
	if got, err = a.Recv(); err != nil || got.Kind != KindResult {
		t.Fatalf("reply: %+v err=%v", got, err)
	}
	// Ordering is preserved.
	for i := uint64(0); i < 10; i++ {
		if err := a.Send(Message{Kind: KindTask, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := b.Recv()
		if err != nil || m.ID != i {
			t.Fatalf("order broken at %d: %+v err=%v", i, m, err)
		}
	}
	// Close propagates.
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Error("Recv on closed peer did not error")
	}
	if err := b.Send(Message{}); err == nil {
		// TCP may buffer one write after peer close; a second must fail.
		if err2 := b.Send(Message{}); err2 == nil {
			t.Error("Send to closed peer never errored")
		}
	}
	b.Close()
}

func TestPipeConn(t *testing.T) {
	a, b := Pipe()
	testConnPair(t, a, b)
}

func TestTCPConn(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var server Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, _ = l.Accept()
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if server == nil {
		t.Fatal("accept failed")
	}
	testConnPair(t, client, server)
}

func TestChanListener(t *testing.T) {
	l := NewChanListener()
	var accepted Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		accepted, _ = l.Accept()
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := c.Send(Message{Kind: KindHello}); err != nil {
		t.Fatal(err)
	}
	if m, err := accepted.Recv(); err != nil || m.Kind != KindHello {
		t.Fatalf("accept side got %+v err=%v", m, err)
	}
	l.Close()
	if _, err := l.Dial(); err == nil {
		t.Error("Dial after Close did not error")
	}
	if _, err := l.Accept(); err == nil {
		t.Error("Accept after Close did not error")
	}
}

func TestPipeDrainsBufferedAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	a.Send(Message{Kind: KindResult, ID: 7})
	a.Close()
	m, err := b.Recv()
	if err != nil || m.ID != 7 {
		t.Fatalf("buffered message lost: %+v err=%v", m, err)
	}
}

func TestEncodeDecode(t *testing.T) {
	type payload struct {
		Name  string
		Count int
		Data  []float32
	}
	in := payload{Name: "x", Count: 3, Data: []float32{1, 2, 3}}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Data) != 3 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	// Corrupt payload errors rather than panics.
	if err := Decode([]byte{1, 2, 3}, &out); err == nil {
		t.Error("corrupt decode did not error")
	}
}

func TestKindString(t *testing.T) {
	if KindTask.String() != "task" || Kind(99).String() == "" {
		t.Error("Kind.String broken")
	}
}

// BenchmarkTransportRoundTrip measures one encode → send → recv → decode
// cycle over the in-process transport with a fragment-sized body. The
// pooled encode/decode buffers are what keep allocs/op low; this is the
// per-fragment hot path of the live service and the dfb compositor.
func BenchmarkTransportRoundTrip(b *testing.B) {
	a, peer := Pipe()
	defer a.Close()
	defer peer.Close()
	type fragment struct {
		JobID     uint64
		TaskIndex int
		Depth     float64
		Data      []byte
	}
	in := fragment{JobID: 7, TaskIndex: 3, Depth: 1.5, Data: make([]byte, 4096)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := Encode(in)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Send(Message{Kind: KindFragment, ID: uint64(i), Body: body}); err != nil {
			b.Fatal(err)
		}
		m, err := peer.Recv()
		if err != nil {
			b.Fatal(err)
		}
		var out fragment
		if err := Decode(m.Body, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func TestConcurrentSendersOnTCP(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		done <- c
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-done

	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := client.Send(Message{Kind: KindTask}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	got := 0
	for got < 4*n {
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
		got++
	}
	wg.Wait()
	client.Close()
	server.Close()
}
