package transport

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net"
	"sync"
	"testing"
)

func testConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	// Round trip both directions.
	want := Message{Kind: KindRender, ID: 42, Body: []byte("payload")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.ID != want.ID || string(got.Body) != "payload" {
		t.Fatalf("got %+v", got)
	}
	if err := b.Send(Message{Kind: KindResult, ID: 42}); err != nil {
		t.Fatal(err)
	}
	if got, err = a.Recv(); err != nil || got.Kind != KindResult {
		t.Fatalf("reply: %+v err=%v", got, err)
	}
	// Ordering is preserved.
	for i := uint64(0); i < 10; i++ {
		if err := a.Send(Message{Kind: KindTask, ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		m, err := b.Recv()
		if err != nil || m.ID != i {
			t.Fatalf("order broken at %d: %+v err=%v", i, m, err)
		}
	}
	// Close propagates.
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Error("Recv on closed peer did not error")
	}
	if err := b.Send(Message{}); err == nil {
		// TCP may buffer one write after peer close; a second must fail.
		if err2 := b.Send(Message{}); err2 == nil {
			t.Error("Send to closed peer never errored")
		}
	}
	b.Close()
}

func TestPipeConn(t *testing.T) {
	a, b := Pipe()
	testConnPair(t, a, b)
}

func TestTCPConn(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var server Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, _ = l.Accept()
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if server == nil {
		t.Fatal("accept failed")
	}
	testConnPair(t, client, server)
}

func TestChanListener(t *testing.T) {
	l := NewChanListener()
	var accepted Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		accepted, _ = l.Accept()
	}()
	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := c.Send(Message{Kind: KindHello}); err != nil {
		t.Fatal(err)
	}
	if m, err := accepted.Recv(); err != nil || m.Kind != KindHello {
		t.Fatalf("accept side got %+v err=%v", m, err)
	}
	l.Close()
	if _, err := l.Dial(); err == nil {
		t.Error("Dial after Close did not error")
	}
	if _, err := l.Accept(); err == nil {
		t.Error("Accept after Close did not error")
	}
}

func TestPipeDrainsBufferedAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	a.Send(Message{Kind: KindResult, ID: 7})
	a.Close()
	m, err := b.Recv()
	if err != nil || m.ID != 7 {
		t.Fatalf("buffered message lost: %+v err=%v", m, err)
	}
}

func TestEncodeDecode(t *testing.T) {
	type payload struct {
		Name  string
		Count int
		Data  []float32
	}
	in := payload{Name: "x", Count: 3, Data: []float32{1, 2, 3}}
	raw, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Data) != 3 {
		t.Fatalf("roundtrip mismatch: %+v", out)
	}
	// Corrupt payload errors rather than panics.
	if err := Decode([]byte{1, 2, 3}, &out); err == nil {
		t.Error("corrupt decode did not error")
	}
}

func TestKindString(t *testing.T) {
	if KindTask.String() != "task" || Kind(99).String() == "" {
		t.Error("Kind.String broken")
	}
}

// BenchmarkTransportRoundTrip measures one encode → send → recv → decode
// cycle with a fragment-sized body: the in-process pipe isolates the pooled
// gob codec cost, and the tcp variant adds the length-prefixed CRC32 frame
// codec on a loopback socket — the delta between the two is the checksum +
// framing overhead per message.
func BenchmarkTransportRoundTrip(b *testing.B) {
	type fragment struct {
		JobID     uint64
		TaskIndex int
		Depth     float64
		Data      []byte
	}
	in := fragment{JobID: 7, TaskIndex: 3, Depth: 1.5, Data: make([]byte, 4096)}
	run := func(b *testing.B, a, peer Conn) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body, err := Encode(in)
			if err != nil {
				b.Fatal(err)
			}
			if err := a.Send(Message{Kind: KindFragment, ID: uint64(i), Body: body}); err != nil {
				b.Fatal(err)
			}
			m, err := peer.Recv()
			if err != nil {
				b.Fatal(err)
			}
			var out fragment
			if err := Decode(m.Body, &out); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pipe", func(b *testing.B) {
		a, peer := Pipe()
		defer a.Close()
		defer peer.Close()
		run(b, a, peer)
	})
	b.Run("tcp-crc32", func(b *testing.B) {
		l, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		done := make(chan Conn, 1)
		go func() {
			c, _ := l.Accept()
			done <- c
		}()
		a, err := DialTCP(l.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		peer := <-done
		if peer == nil {
			b.Fatal("accept failed")
		}
		defer peer.Close()
		run(b, a, peer)
	})
}

// tcpPair returns a connected raw net.Conn (for writing hostile bytes) and
// the framed transport Conn reading from it.
func tcpPair(t *testing.T) (net.Conn, Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan net.Conn, 1)
	go func() {
		nc, _ := l.Accept()
		done <- nc
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server := <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	framed := newTCPConn(server)
	t.Cleanup(func() { raw.Close(); framed.Close() })
	return raw, framed
}

func TestTCPRejectsCorruptFrame(t *testing.T) {
	raw, framed := tcpPair(t)
	// A well-formed frame with a deliberately wrong CRC.
	payload := make([]byte, frameMetaLen+4)
	binary.BigEndian.PutUint32(payload[0:4], uint32(KindTask))
	binary.BigEndian.PutUint64(payload[4:12], 7)
	copy(payload[frameMetaLen:], "data")
	hdr := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload)^0xdeadbeef)
	raw.Write(hdr)
	raw.Write(payload)
	if _, err := framed.Recv(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame, got %v", err)
	}
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	raw, framed := tcpPair(t)
	hdr := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], MaxFrameSize+1)
	raw.Write(hdr)
	if _, err := framed.Recv(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestTCPRejectsUndersizedFrame(t *testing.T) {
	raw, framed := tcpPair(t)
	hdr := make([]byte, frameHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], 3) // shorter than the message header
	raw.Write(hdr)
	if _, err := framed.Recv(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want ErrCorruptFrame, got %v", err)
	}
}

func TestTCPSendRefusesOversizedBody(t *testing.T) {
	old := MaxFrameSize
	MaxFrameSize = 1024
	defer func() { MaxFrameSize = old }()
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, _ := l.Accept()
		if c != nil {
			defer c.Close()
			c.Recv()
		}
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Send(Message{Kind: KindFragment, Body: make([]byte, 2048)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
}

func TestTCPEmptyBodyRoundTrip(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		done <- c
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-done
	defer server.Close()
	if err := client.Send(Message{Kind: KindHeartbeat, ID: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := server.Recv()
	if err != nil || m.Kind != KindHeartbeat || m.ID != 9 || len(m.Body) != 0 {
		t.Fatalf("got %+v err=%v", m, err)
	}
}

func TestConcurrentSendersOnTCP(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		c, _ := l.Accept()
		done <- c
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-done

	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := client.Send(Message{Kind: KindTask}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	got := 0
	for got < 4*n {
		if _, err := server.Recv(); err != nil {
			t.Fatal(err)
		}
		got++
	}
	wg.Wait()
	client.Close()
	server.Close()
}
