// Package transport provides the message-passing substrate for the live
// (non-simulated) visualization service: an in-process channel transport
// for single-binary deployments and tests, and a TCP transport with a
// length-prefixed, CRC32-guarded wire protocol standing in for the paper's
// MPI layer.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
)

// Kind tags a message's role in the service protocol.
type Kind int

// Protocol message kinds.
const (
	// KindHello introduces a worker to the head (payload: HelloBody).
	KindHello Kind = iota + 1
	// KindRender carries a render request from a client to the head.
	KindRender
	// KindTask carries one task assignment from the head to a worker.
	KindTask
	// KindFragment returns a rendered fragment from a worker.
	KindFragment
	// KindResult returns a final image to a client.
	KindResult
	// KindError reports a failure for a specific request.
	KindError
	// KindShutdown asks the receiver to stop.
	KindShutdown
	// KindHeartbeat is a liveness beacon (no body). Workers emit it on an
	// interval so the head can tell a stalled node from an idle one.
	KindHeartbeat
	// KindPrefetch asks a worker to warm one chunk into its cache ahead of
	// predicted demand (payload: PrefetchBody).
	KindPrefetch
	// KindPrefetchDone reports a warm's outcome back to the head (payload:
	// PrefetchDoneBody).
	KindPrefetchDone
	// KindTileFrag pushes one renderer's tile fragment to the tile's owner
	// in the distributed-framebuffer compositing path (payload: a tile
	// fragment body defined by the sender's layer).
	KindTileFrag
	// KindTileDone delivers a finalized tile from its owner to the display.
	KindTileDone
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindRender:
		return "render"
	case KindTask:
		return "task"
	case KindFragment:
		return "fragment"
	case KindResult:
		return "result"
	case KindError:
		return "error"
	case KindShutdown:
		return "shutdown"
	case KindHeartbeat:
		return "heartbeat"
	case KindPrefetch:
		return "prefetch"
	case KindPrefetchDone:
		return "prefetch-done"
	case KindTileFrag:
		return "tile-frag"
	case KindTileDone:
		return "tile-done"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Message is one framed protocol unit. Body holds a gob-encoded struct
// appropriate to the Kind; ID correlates requests with responses.
type Message struct {
	Kind Kind
	ID   uint64
	Body []byte
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional ordered message pipe. Send is safe for concurrent
// callers (a worker's executor and heartbeat goroutines share one
// connection); Recv is safe for one concurrent caller — the service uses a
// single reader goroutine per connection.
type Conn interface {
	Send(m Message) error
	Recv() (Message, error)
	Close() error
}

// Listener accepts incoming connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the dialable address of this listener.
	Addr() string
}

// --- In-process transport ---

// chanConn is one end of a paired in-process connection.
type chanConn struct {
	out  chan<- Message
	in   <-chan Message
	done chan struct{}
	once sync.Once
	// peerDone observes the other end's closure.
	peerDone chan struct{}
}

// Pipe returns two connected in-process ends.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	da := make(chan struct{})
	db := make(chan struct{})
	a := &chanConn{out: ab, in: ba, done: da, peerDone: db}
	b := &chanConn{out: ba, in: ab, done: db, peerDone: da}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Message) error {
	// Check closure first: a select with a ready buffered channel and a
	// closed done channel picks randomly, which would let sends to a dead
	// peer "succeed" half the time.
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peerDone:
		return ErrClosed
	case c.out <- m:
		return nil
	}
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	select {
	case <-c.done:
		return Message{}, ErrClosed
	case m := <-c.in:
		return m, nil
	case <-c.peerDone:
		// Drain anything the peer sent before closing.
		select {
		case m := <-c.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// Close implements Conn.
func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

// ChanListener hands out in-process connections to dialers that hold a
// reference to it.
type ChanListener struct {
	mu     sync.Mutex
	queue  chan Conn
	closed bool
}

// NewChanListener returns an in-process listener.
func NewChanListener() *ChanListener {
	return &ChanListener{queue: make(chan Conn, 16)}
}

// Dial creates a connection pair, queues the server end for Accept, and
// returns the client end.
func (l *ChanListener) Dial() (Conn, error) {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	client, server := Pipe()
	l.queue <- server
	return client, nil
}

// Accept implements Listener.
func (l *ChanListener) Accept() (Conn, error) {
	c, ok := <-l.queue
	if !ok {
		return nil, ErrClosed
	}
	return c, nil
}

// Close implements Listener.
func (l *ChanListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.queue)
	}
	return nil
}

// Addr implements Listener.
func (l *ChanListener) Addr() string { return "inproc" }

// --- TCP transport ---

// Wire framing: every message travels as one self-delimiting frame
//
//	[4B big-endian payload length][4B big-endian CRC32(payload)][payload]
//	payload = [4B kind][8B id][body bytes]
//
// The length prefix bounds reads (a corrupted or hostile peer cannot make
// the receiver allocate unbounded memory past MaxFrameSize), and the CRC32
// (IEEE) detects payload corruption before any of it is interpreted. The
// header is checked before the payload is read, so an oversized length is
// rejected without consuming the stream.
const (
	frameHeaderLen = 8  // length + CRC
	frameMetaLen   = 12 // kind + id inside the payload
)

// MaxFrameSize caps a single frame's payload. Full-frame fragments dominate
// sizing: a 4K RGBA float accumulation is ~265MB, so 512MB leaves headroom
// while still rejecting a corrupt length prefix (which is uniform over 4GB)
// with probability ~7/8 before the CRC even runs.
var MaxFrameSize = uint32(512 << 20)

// ErrCorruptFrame reports a frame whose CRC32 did not match its payload.
var ErrCorruptFrame = errors.New("transport: corrupt frame (CRC mismatch)")

// ErrFrameTooLarge reports a frame whose declared length exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size bound")

// tcpConn frames Messages over a net.Conn with the length+CRC codec.
type tcpConn struct {
	nc   net.Conn
	wmu  sync.Mutex
	whdr [frameHeaderLen + frameMetaLen]byte
	rhdr [frameHeaderLen + frameMetaLen]byte
	once sync.Once
}

func newTCPConn(nc net.Conn) *tcpConn {
	return &tcpConn{nc: nc}
}

// Send implements Conn.
func (c *tcpConn) Send(m Message) error {
	if uint64(frameMetaLen+len(m.Body)) > uint64(MaxFrameSize) {
		return fmt.Errorf("%w: payload %dB > limit %dB", ErrFrameTooLarge, frameMetaLen+len(m.Body), MaxFrameSize)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	h := c.whdr[:]
	binary.BigEndian.PutUint32(h[8:12], uint32(m.Kind))
	binary.BigEndian.PutUint64(h[12:20], m.ID)
	crc := crc32.ChecksumIEEE(h[8:])
	crc = crc32.Update(crc, crc32.IEEETable, m.Body)
	binary.BigEndian.PutUint32(h[0:4], uint32(frameMetaLen+len(m.Body)))
	binary.BigEndian.PutUint32(h[4:8], crc)
	if _, err := c.nc.Write(h); err != nil {
		return err
	}
	if len(m.Body) > 0 {
		if _, err := c.nc.Write(m.Body); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements Conn.
func (c *tcpConn) Recv() (Message, error) {
	return ReadFrame(c.nc, c.rhdr[:])
}

// ReadFrame decodes one frame from r. scratch, when at least
// frameHeaderLen+frameMetaLen bytes, is used for the fixed header (a
// connection reuses one buffer across frames); pass nil to allocate. The
// length prefix is validated against MaxFrameSize before any payload
// allocation and the CRC before any interpretation, so a corrupt or
// hostile stream yields ErrCorruptFrame/ErrFrameTooLarge (or the reader's
// own error on truncation) — never a panic or an unbounded allocation.
// Factored out of the connection so the corruption-handling contract is
// fuzzable against raw byte streams.
func ReadFrame(r io.Reader, scratch []byte) (Message, error) {
	if len(scratch) < frameHeaderLen+frameMetaLen {
		scratch = make([]byte, frameHeaderLen+frameMetaLen)
	}
	h := scratch[:frameHeaderLen+frameMetaLen]
	if _, err := io.ReadFull(r, h[:frameHeaderLen]); err != nil {
		return Message{}, err
	}
	length := binary.BigEndian.Uint32(h[0:4])
	want := binary.BigEndian.Uint32(h[4:8])
	if length < frameMetaLen {
		return Message{}, fmt.Errorf("%w: declared payload %dB is shorter than the %dB message header",
			ErrCorruptFrame, length, frameMetaLen)
	}
	if length > MaxFrameSize {
		return Message{}, fmt.Errorf("%w: declared payload %dB > limit %dB", ErrFrameTooLarge, length, MaxFrameSize)
	}
	if _, err := io.ReadFull(r, h[frameHeaderLen:]); err != nil {
		return Message{}, err
	}
	var body []byte
	if n := int(length) - frameMetaLen; n > 0 {
		body = make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return Message{}, err
		}
	}
	crc := crc32.ChecksumIEEE(h[frameHeaderLen:])
	crc = crc32.Update(crc, crc32.IEEETable, body)
	if crc != want {
		return Message{}, fmt.Errorf("%w: got %08x want %08x over %dB payload", ErrCorruptFrame, crc, want, length)
	}
	return Message{
		Kind: Kind(binary.BigEndian.Uint32(h[8:12])),
		ID:   binary.BigEndian.Uint64(h[12:20]),
		Body: body,
	}, nil
}

// AppendFrame appends m's wire encoding to dst — the exact bytes Send
// writes — and returns the extended slice. Fails only on an oversized
// body. The encoder half of ReadFrame; the fuzz suite round-trips through
// the pair.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	if uint64(frameMetaLen+len(m.Body)) > uint64(MaxFrameSize) {
		return dst, fmt.Errorf("%w: payload %dB > limit %dB", ErrFrameTooLarge, frameMetaLen+len(m.Body), MaxFrameSize)
	}
	var h [frameHeaderLen + frameMetaLen]byte
	binary.BigEndian.PutUint32(h[8:12], uint32(m.Kind))
	binary.BigEndian.PutUint64(h[12:20], m.ID)
	crc := crc32.ChecksumIEEE(h[8:])
	crc = crc32.Update(crc, crc32.IEEETable, m.Body)
	binary.BigEndian.PutUint32(h[0:4], uint32(frameMetaLen+len(m.Body)))
	binary.BigEndian.PutUint32(h[4:8], crc)
	dst = append(dst, h[:]...)
	return append(dst, m.Body...), nil
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() { err = c.nc.Close() })
	return err
}

// tcpListener wraps a net.Listener.
type tcpListener struct {
	nl net.Listener
}

// ListenTCP starts a TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{nl: nl}, nil
}

// Accept implements Listener.
func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

// Close implements Listener.
func (l *tcpListener) Close() error { return l.nl.Close() }

// Addr implements Listener.
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// DialTCP connects to a TCP listener.
func DialTCP(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(nc), nil
}

// Body encode/decode buffers are pooled: fragment and tile traffic encodes
// a body per message, and the grown scratch buffers are perfectly reusable.
// The gob encoder/decoder themselves are NOT pooled — they carry per-stream
// type-descriptor state and must start fresh for each self-contained body.
var (
	encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	decRdrPool = sync.Pool{New: func() any { return new(bytes.Reader) }}
)

// Encode gob-encodes a body struct for a Message.
func Encode(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, err
	}
	// Copy out at exact size: the pooled buffer's backing array stays with
	// the pool instead of escaping into the Message.
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encBufPool.Put(buf)
	return out, nil
}

// Decode gob-decodes a Message body into v.
func Decode(body []byte, v any) error {
	r := decRdrPool.Get().(*bytes.Reader)
	r.Reset(body)
	err := gob.NewDecoder(r).Decode(v)
	decRdrPool.Put(r)
	return err
}
