package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// failSweepNames are the schedulers the failure sweep compares — the same
// trio as Fig. 8, which is where the paper's baselines stay competitive.
var failSweepNames = []string{"FCFSU", "FCFSL", "OURS"}

// TargetFPS is the interactive service target the recovery metrics measure
// dips against (the paper's 33.33 fps goal).
const TargetFPS = 100.0 / 3.0

// FailSweepPoint is one (fault rate, scheduler) cell of the failure sweep.
type FailSweepPoint struct {
	// Rate is the injected fault rate in faults per simulated minute.
	Rate      float64
	Scheduler string

	Framerate    float64
	Latency      units.Duration
	HitRate      float64
	Redispatched int64
	MTTR         units.Duration
	// Unfinished counts jobs issued but not completed by the horizon.
	Unfinished int64
	// DipDepth/DipBelow are how far under TargetFPS the worst one-second
	// window fell after the first fault, and the total time spent under it.
	DipDepth float64
	DipBelow units.Duration
}

// FaultSchedule derives a deterministic chaos schedule from a fault rate:
// rate faults per simulated minute over the horizon, mixing all four fault
// kinds, targets and times drawn from a seed that depends only on (rate,
// seed). Every scheduler in a sweep cell replays the identical schedule, so
// differences between policies are differences in recovery, not in luck.
func FaultSchedule(nodes int, length units.Time, rate float64, seed int64) []sim.Failure {
	count := int(rate*length.Seconds()/60 + 0.5)
	if count <= 0 || nodes <= 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ int64(rate*1000)*0x1f3b))
	fs := make([]sim.Failure, 0, count)
	for i := 0; i < count; i++ {
		// Keep faults inside the middle 80% of the run so recovery is
		// observable before the horizon cuts the tail off.
		at := units.Time(float64(length) * (0.1 + 0.8*rng.Float64()))
		f := sim.Failure{
			At:   at,
			Node: core.NodeID(rng.Intn(nodes)),
			Kind: sim.FaultKind(rng.Intn(4)),
		}
		switch f.Kind {
		case sim.FaultCrash:
			f.RepairAt = at.Add(units.Duration(2+rng.Intn(6)) * units.Second)
		case sim.FaultSlowDisk:
			f.Factor = 2 + 6*rng.Float64()
			f.RepairAt = at.Add(units.Duration(5+rng.Intn(10)) * units.Second)
		case sim.FaultStall:
			f.RepairAt = at.Add(units.Duration(1+rng.Intn(4)) * units.Second)
		case sim.FaultFlap:
			f.Period = units.Duration(4+rng.Intn(4)) * units.Second
			f.Count = 2 + rng.Intn(2)
			f.Seed = rng.Int63()
		}
		fs = append(fs, f)
	}
	return fs
}

// runFailCell plays Scenario 2 under one scheduler with the given fault
// schedule and distills the recovery metrics.
func runFailCell(cfg workload.ScenarioConfig, name string, rate float64, faults []sim.Failure) FailSweepPoint {
	sched, err := SchedulerByName(name)
	if err != nil {
		panic(err)
	}
	engCfg := sim.ScenarioEngineConfig(cfg, sched, Jitter)
	engCfg.Failures = faults
	eng := sim.New(engCfg)
	wl := workload.Generate(cfg.Spec)
	rep := eng.Run(wl, 0)
	return failPoint(rate, rep)
}

// failPoint distills one report into a sweep point.
func failPoint(rate float64, rep *metrics.Report) FailSweepPoint {
	depth, below := rep.Recovery.FramerateDip(TargetFPS)
	return FailSweepPoint{
		Rate:         rate,
		Scheduler:    rep.Scheduler,
		Framerate:    rep.MeanFramerate(),
		Latency:      rep.Interactive.Latency.Mean(),
		HitRate:      rep.HitRate(),
		Redispatched: rep.Recovery.TasksRedispatched,
		MTTR:         rep.Recovery.MTTR(),
		Unfinished: (rep.Interactive.Issued - rep.Interactive.Completed) +
			(rep.Batch.Issued - rep.Batch.Completed),
		DipDepth: depth,
		DipBelow: below,
	}
}

// FailureSweep runs Scenario 2 under OURS, FCFSL, and FCFSU at each fault
// rate (faults per simulated minute), sequentially. Results are grouped by
// rate, in failSweepNames order within each rate, and are deterministic:
// the same rates always produce bit-identical virtual-time metrics.
func FailureSweep(rates []float64, scale float64) []FailSweepPoint {
	return FailureSweepN(rates, scale, 1)
}

// FailureSweepN is FailureSweep with an explicit worker count; every
// (rate, scheduler) cell is an independent simulation, so all cells run
// concurrently. The fault schedule for a rate is built once and shared
// read-only across that rate's schedulers.
func FailureSweepN(rates []float64, scale float64, workers int) []FailSweepPoint {
	cfg := workload.Scenario(workload.Scenario2, scale)
	schedules := make([][]sim.Failure, len(rates))
	for i, rate := range rates {
		schedules[i] = FaultSchedule(cfg.Nodes, cfg.Spec.Length, rate, int64(cfg.ID)*104729)
	}
	out := make([]FailSweepPoint, len(rates)*len(failSweepNames))
	ForEach(workers, len(out), func(cell int) {
		ri, ni := cell/len(failSweepNames), cell%len(failSweepNames)
		out[cell] = runFailCell(cfg, failSweepNames[ni], rates[ri], schedules[ri])
	})
	return out
}

// WriteFailureSweep runs and prints the failure sweep.
func WriteFailureSweep(w io.Writer, rates []float64, scale float64, workers int) []FailSweepPoint {
	points := FailureSweepN(rates, scale, workers)
	PrintFailureSweep(w, points)
	return points
}

// PrintFailureSweep prints already-computed failure-sweep points.
func PrintFailureSweep(w io.Writer, points []FailSweepPoint) {
	fmt.Fprintf(w, "Failure sweep — Scenario 2 under a chaos fault mix (crash/slowdisk/stall/flap), target %.2f fps\n", TargetFPS)
	fmt.Fprintf(w, "  %-10s %-6s %8s %12s %9s %8s %9s %10s %10s\n",
		"faults/min", "sched", "fps", "int-latency", "hit-rate", "redisp", "MTTR", "dip-depth", "dip-time")
	last := -1.0
	for _, p := range points {
		if p.Rate != last && last >= 0 {
			fmt.Fprintln(w)
		}
		last = p.Rate
		fmt.Fprintf(w, "  %-10.1f %-6s %8.2f %12v %8.2f%% %8d %9v %10.2f %10v\n",
			p.Rate, p.Scheduler, p.Framerate,
			p.Latency.Std().Round(time.Millisecond),
			100*p.HitRate, p.Redispatched,
			p.MTTR.Std().Round(time.Millisecond),
			p.DipDepth, p.DipBelow.Std())
	}
	fmt.Fprintln(w)
}

// FailureSweepCSV writes the failure sweep as CSV.
func FailureSweepCSV(w io.Writer, points []FailSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"faults_per_min", "scheduler", "fps", "interactive_latency_ms",
		"hit_rate_pct", "tasks_redispatched", "mttr_ms", "unfinished_jobs",
		"dip_depth_fps", "dip_below_target_s",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, p := range points {
		rec := []string{
			f(p.Rate),
			p.Scheduler,
			f(p.Framerate),
			f(p.Latency.Milliseconds()),
			f(100 * p.HitRate),
			strconv.FormatInt(p.Redispatched, 10),
			f(p.MTTR.Milliseconds()),
			strconv.FormatInt(p.Unfinished, 10),
			f(p.DipDepth),
			f(p.DipBelow.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
