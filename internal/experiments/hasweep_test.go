package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

var haSweepOutages = []float64{0.05, 0.1}

const haSweepScale = 0.1

// TestHASweepDeterministicAcrossWorkers: the whole sweep runs in virtual
// time — crash, resync epoch, and reconciliation included — so it must be
// bit-identical whether cells run sequentially or concurrently.
func TestHASweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	seq := HASweepN(haSweepOutages, haSweepScale, 1)
	par := HASweepN(haSweepOutages, haSweepScale, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	again := HASweepN(haSweepOutages, haSweepScale, 4)
	if !reflect.DeepEqual(par, again) {
		t.Errorf("sweep not reproducible:\nfirst: %+v\nagain: %+v", par, again)
	}
}

// TestHASweepCommittedSurvival is the acceptance criterion: across every
// outage length and fault shape, zero committed sessions are lost and zero
// tasks re-render — the outage defers work, it never destroys it — and the
// measured control-plane MTTR is exactly the injected outage span.
func TestHASweepCommittedSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := HASweepN(haSweepOutages, haSweepScale, DefaultWorkers())
	if len(points) != len(haSweepOutages)*len(haSweepModes) {
		t.Fatalf("got %d points, want %d", len(points), len(haSweepOutages)*len(haSweepModes))
	}
	for _, p := range points {
		if p.CommittedLost != 0 {
			t.Errorf("%s outage %.2f: committed lost = %d, want 0", p.Mode, p.Outage, p.CommittedLost)
		}
		if p.Redispatched != 0 {
			t.Errorf("%s outage %.2f: tasks redispatched = %d, want 0 (nothing re-renders)",
				p.Mode, p.Outage, p.Redispatched)
		}
		if p.Completed == 0 {
			t.Errorf("%s outage %.2f: no interactive jobs completed", p.Mode, p.Outage)
		}
		switch p.Mode {
		case "clean":
			if p.ControlMTTR != 0 || p.ArrivalsDeferred != 0 || p.ResultsDeferred != 0 {
				t.Errorf("clean outage %.2f: nonzero recovery metrics %+v", p.Outage, p)
			}
		default:
			if p.CommittedAtCrash == 0 {
				t.Errorf("%s outage %.2f: nothing committed before the crash; the cell is vacuous",
					p.Mode, p.Outage)
			}
			if p.ArrivalsDeferred == 0 {
				t.Errorf("%s outage %.2f: the outage deferred no arrivals", p.Mode, p.Outage)
			}
			if p.ControlMTTR <= 0 {
				t.Errorf("%s outage %.2f: control MTTR = %v, want > 0", p.Mode, p.Outage, p.ControlMTTR)
			}
		}
	}
	// Longer outages cost frames monotonically in expectation; at minimum the
	// faulted runs must not complete more than the clean run.
	for i := 0; i < len(points); i += len(haSweepModes) {
		clean := points[i]
		for _, p := range points[i+1 : i+len(haSweepModes)] {
			if p.Completed > clean.Completed {
				t.Errorf("%s outage %.2f completed more (%d) than clean (%d)",
					p.Mode, p.Outage, p.Completed, clean.Completed)
			}
		}
	}
}

// TestHASweepOutput: the print and CSV forms render every point.
func TestHASweepOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := HASweepN([]float64{0.1}, haSweepScale, DefaultWorkers())
	var buf bytes.Buffer
	PrintHASweep(&buf, points)
	for _, mode := range haSweepModes {
		if !strings.Contains(buf.String(), mode) {
			t.Errorf("printed sweep missing mode %q:\n%s", mode, buf.String())
		}
	}
	var csvBuf bytes.Buffer
	if err := HASweepCSV(&csvBuf, points); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if got, want := len(lines), 1+len(points); got != want {
		t.Errorf("CSV rows = %d, want %d", got, want)
	}
}
