package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/prefetch"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// The elastic sweep (§5.12) prices the fixed fleet's idle capacity: a
// diurnal workload alternates busy phases (several concurrent interactive
// sessions plus a batch backlog) with long quiet valleys. The fixed fleet
// is provisioned for the peak and bills nodes × horizon; the elastic fleet
// runs the same OURS scheduler under the autoscale policy, draining nodes
// gracefully through the valleys and re-activating them when the next phase
// builds pressure. The headline claim: interactive p95 within a few percent
// of the fixed fleet at a ≥30% smaller node-hours bill, with zero tasks
// lost across every drain.

// elasticSweepModes compares the peak-provisioned fixed fleet against the
// elastic policy on the same diurnal workload.
var elasticSweepModes = []string{"fixed", "elastic"}

const (
	// elasticDatasets × elasticChunk working set; small enough that a few
	// nodes hold it warm, so valleys genuinely need almost no fleet.
	elasticDatasets = 4
	elasticChunk    = 256 * units.MB
	// elasticSessions concurrent viewers per busy phase, at elasticPeriod
	// per frame — the peak the fixed fleet is provisioned for.
	elasticSessions = 6
	elasticPeriod   = 150 * units.Millisecond
	// elasticBatch submissions land at each busy-phase start, so drains that
	// cut into a phase have queued batch work to migrate.
	elasticBatch = 8
)

// ElasticSweepPoint is one (fleet size, mode) cell of the sweep.
type ElasticSweepPoint struct {
	Nodes int
	Mode  string

	Issued    int64
	Completed int64
	// Lost is issued − completed: the acceptance gate demands zero in both
	// modes — a drain never loses work.
	Lost int64
	// P95 is the interactive latency tail over the whole run, ramps
	// included.
	P95 units.Duration
	// NodeHours is the capacity bill: nodes × horizon for the fixed fleet,
	// the active-node time-integral for the elastic one.
	NodeHours float64
	// SavingsPct is the elastic cell's bill reduction against the fixed
	// cell at the same fleet size (zero for fixed cells).
	SavingsPct float64

	ScaleUps        int64
	Drains          int64
	DrainsCompleted int64
	TasksMigrated   int64
	OrphanWarms     int64
	BringupWarms    int64
	MinActive       int
	MaxActive       int
}

// elasticWorkload builds the diurnal schedule over `seconds`: busy phases
// on [0, 0.2H) and [0.5H, 0.7H) — elasticSessions interactive sessions each
// plus a batch burst at phase start — and quiet valleys everywhere else.
func elasticWorkload(seconds int) *workload.Schedule {
	horizon := units.Time(seconds) * units.Time(units.Second)
	wl := &workload.Schedule{Length: horizon}
	phases := []struct{ from, to float64 }{{0, 0.2}, {0.5, 0.7}}
	action := core.ActionID(1)
	for pi, ph := range phases {
		start := units.Time(float64(horizon) * ph.from)
		end := units.Time(float64(horizon) * ph.to)
		for s := 0; s < elasticSessions; s++ {
			// Sessions stagger in behind the batch burst — the diurnal ramp
			// the policy rides up: the backlog at phase start triggers the
			// scale-ups, bring-up warms land on the new nodes, and the
			// interactive sessions arrive one at a time onto a fleet that is
			// already growing warm.
			a := workload.Action{
				ID:      action,
				Dataset: volume.DatasetID(1 + s%elasticDatasets),
				Tenant:  core.TenantID(s % 3),
				Start:   start.Add(2*units.Second + units.Duration(s)*2*units.Second),
				End:     end,
				Period:  elasticPeriod,
			}
			action++
			wl.Requests = append(wl.Requests, a.Requests()...)
		}
		for b := 0; b < elasticBatch; b++ {
			// The backlog leads the phase — the first submissions are the
			// queue pressure that triggers the scale-ups — then trickles in
			// through the ramp instead of head-of-line blocking the first
			// sessions on the small valley fleet.
			wl.Requests = append(wl.Requests, workload.Request{
				At:      start.Add(units.Duration(b) * units.Millisecond),
				Class:   core.Batch,
				Action:  action,
				Tenant:  3,
				Dataset: volume.DatasetID(1 + (pi*elasticBatch+b)%elasticDatasets),
			})
			action++
		}
	}
	sort.SliceStable(wl.Requests, func(i, j int) bool { return wl.Requests[i].At < wl.Requests[j].At })
	return wl
}

// elasticConfig builds one cell's cluster: OURS with prefetching (the
// evacuation warmer rides the same governor) and replication 2, elastic
// cells adding the autoscale policy tuned for the diurnal period.
func elasticConfig(nodes int, elastic bool) sim.Config {
	sched, err := SchedulerByName("OURS")
	if err != nil {
		panic(err)
	}
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: elasticChunk})
	if o, ok := sched.(core.DecompositionOverrider); ok {
		policy = o.Decomposition(nodes)
	}
	lib := volume.NewLibrary()
	for i := 1; i <= elasticDatasets; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("diurnal-%d", i), units.GB, policy))
	}
	cfg := sim.Config{
		Nodes:     nodes,
		MemQuota:  2 * units.GB,
		Model:     core.System2CostModel(),
		Scheduler: sched,
		Library:   lib,
		Seed:      11,
		Preload:   true,
		Replicas:  2,
		// TopK must cover the whole working set (elasticDatasets datasets ×
		// the per-fleet decomposition) or bring-up warms leave a cold tail,
		// and the frequency prior must survive the quiet valley (HalfLife ≫
		// the 10 s default) or the predictor forgets the working set before
		// the next phase's bring-ups ask for it.
		Prefetch: &prefetch.Config{TopK: 128, HalfLife: 60 * units.Second, MinScore: 0.001},
	}
	if elastic {
		cfg.Autoscale = &autoscale.Config{
			Interval:  100 * units.Millisecond,
			MinNodes:  2,
			QueueHigh: 0.5,
			QueueLow:  0.1,
			HoldUp:    1,
			HoldDown:  30,
			Cooldown:  100 * units.Millisecond,
			MaxDrain:  10 * units.Second,
			Warmup:    15 * units.Second,
			// Bring-up warms run every cache full by design, so full caches
			// are the steady state here, not a reason to hold a drain: the
			// valley fleet serves almost nothing and can re-load at leisure.
			CacheHighWater: 1,
		}
	}
	return cfg
}

// runElasticCell plays the diurnal scenario on one fleet in one mode.
func runElasticCell(nodes int, mode string, seconds int) ElasticSweepPoint {
	elastic := mode == "elastic"
	rep := sim.New(elasticConfig(nodes, elastic)).Run(elasticWorkload(seconds), 0)
	issued := rep.Interactive.Issued + rep.Batch.Issued
	completed := rep.Interactive.Completed + rep.Batch.Completed
	p := ElasticSweepPoint{
		Nodes:     nodes,
		Mode:      mode,
		Issued:    issued,
		Completed: completed,
		Lost:      issued - completed,
		P95:       rep.Interactive.LatencyHist.P95(),
		NodeHours: float64(nodes) * rep.Horizon.Seconds() / 3600,
	}
	if as := rep.Autoscale; as != nil {
		p.NodeHours = as.NodeHours()
		p.ScaleUps = as.ScaleUps
		p.Drains = as.Drains
		p.DrainsCompleted = as.DrainsCompleted
		p.TasksMigrated = as.TasksMigrated
		p.OrphanWarms = as.OrphanWarms
		p.BringupWarms = as.BringupWarms
		p.MinActive = as.MinActive
		p.MaxActive = as.MaxActive
	}
	return p
}

// ElasticSweep runs the elastic sweep sequentially.
func ElasticSweep(fleets []int, scale float64) []ElasticSweepPoint {
	return ElasticSweepN(fleets, scale, 1)
}

// ElasticSweepN is ElasticSweep with an explicit worker count. Every cell is
// an independent virtual-time simulation into an index-addressed slot, and
// the derived savings pair cells positionally, so results are bit-identical
// at any worker count.
func ElasticSweepN(fleets []int, scale float64, workers int) []ElasticSweepPoint {
	seconds := int(120 * scale)
	if seconds < 20 {
		seconds = 20
	}
	out := make([]ElasticSweepPoint, len(fleets)*len(elasticSweepModes))
	ForEach(workers, len(out), func(cell int) {
		mi := cell % len(elasticSweepModes)
		fi := cell / len(elasticSweepModes)
		out[cell] = runElasticCell(fleets[fi], elasticSweepModes[mi], seconds)
	})
	for fi := range fleets {
		fixed := out[fi*len(elasticSweepModes)]
		for mi := 1; mi < len(elasticSweepModes); mi++ {
			p := &out[fi*len(elasticSweepModes)+mi]
			if fixed.NodeHours > 0 {
				p.SavingsPct = 100 * (1 - p.NodeHours/fixed.NodeHours)
			}
		}
	}
	return out
}

// WriteElasticSweep runs and prints the elastic sweep.
func WriteElasticSweep(w io.Writer, fleets []int, scale float64, workers int) []ElasticSweepPoint {
	points := ElasticSweepN(fleets, scale, workers)
	PrintElasticSweep(w, points)
	return points
}

// PrintElasticSweep prints already-computed elastic-sweep points.
func PrintElasticSweep(w io.Writer, points []ElasticSweepPoint) {
	fmt.Fprintf(w, "elastic sweep — diurnal sessions, peak-provisioned fixed fleet vs graceful-drain autoscaling, OURS (§5.12)\n")
	fmt.Fprintf(w, "  %-6s %-8s %7s %9s %6s %8s %10s %8s %7s %7s %9s %8s %8s %7s\n",
		"nodes", "mode", "issued", "completed", "lost", "p95", "node-hours", "savings",
		"ups", "drains", "migrated", "evac", "bringup", "active")
	for _, p := range points {
		active := "-"
		savings := "-"
		if p.Mode == "elastic" {
			active = fmt.Sprintf("%d..%d", p.MinActive, p.MaxActive)
			savings = fmt.Sprintf("%.1f%%", p.SavingsPct)
		}
		fmt.Fprintf(w, "  %-6d %-8s %7d %9d %6d %8v %10.3f %8s %7d %7d %9d %8d %8d %7s\n",
			p.Nodes, p.Mode, p.Issued, p.Completed, p.Lost,
			p.P95.Std().Round(time.Millisecond), p.NodeHours, savings,
			p.ScaleUps, p.Drains, p.TasksMigrated, p.OrphanWarms, p.BringupWarms, active)
	}
	fmt.Fprintln(w)
}

// ElasticSweepCSV writes the elastic sweep as CSV.
func ElasticSweepCSV(w io.Writer, points []ElasticSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"nodes", "mode", "issued", "completed", "lost", "interactive_p95_ms",
		"node_hours", "savings_pct", "scale_ups", "drains", "drains_completed",
		"tasks_migrated", "orphan_warms", "bringup_warms", "min_active", "max_active",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Nodes), p.Mode, i(p.Issued), i(p.Completed), i(p.Lost),
			f(p.P95.Milliseconds()), f(p.NodeHours), f(p.SavingsPct),
			i(p.ScaleUps), i(p.Drains), i(p.DrainsCompleted),
			i(p.TasksMigrated), i(p.OrphanWarms), i(p.BringupWarms),
			strconv.Itoa(p.MinActive), strconv.Itoa(p.MaxActive),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
