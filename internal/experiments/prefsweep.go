package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/prefetch"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// prefSweepModes compares demand-only loading against the predictive
// prefetching layer (§5.8) on the same workload.
var prefSweepModes = []string{"off", "on"}

// prefSweep cell geometry: a single-node arena where sessions revisit a
// small set of 512 MB single-chunk datasets in cyclic order. The cache
// quota (in chunks) is always below the dataset count, so without
// prefetching every session's first frame is a cold ~5 s load — the
// cost Def. 1's tio term assigns to a miss — while the prefetcher's
// frequency prior re-warms the evicted dataset during the inter-session
// idle gap.
const (
	prefSweepDatasets  = 4
	prefSweepChunk     = 512 * units.MB
	prefSweepSessions  = 16
	prefSweepBasePause = 8 * units.Second
)

// PrefetchSweepPoint is one (cache quota, load, mode) cell of the sweep.
type PrefetchSweepPoint struct {
	// QuotaChunks is the node's cache capacity in 512 MB chunks; the
	// working set is prefSweepDatasets chunks.
	QuotaChunks int
	// Load scales session arrival rate: the idle gap between sessions is
	// prefSweepBasePause/Load, so higher load leaves less room to warm.
	Load float64
	Mode string

	Sessions  int
	Completed int64
	// FirstFrame is the mean first-frame latency over sessions — the
	// session cold-start cost prefetching attacks.
	FirstFrame units.Duration
	P95        units.Duration
	// Prefetch lifecycle counters (zero in "off" mode).
	Issued, Loaded, Hits, HiddenHits, Wasted int64
	BytesMoved                               units.Bytes
}

// runPrefetchCell plays one cell of the sweep.
func runPrefetchCell(quotaChunks int, load float64, mode string) PrefetchSweepPoint {
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: prefSweepChunk})
	lib := volume.NewLibrary()
	for i := 1; i <= prefSweepDatasets; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("rev-%d", i), prefSweepChunk, policy))
	}
	pause := units.Duration(float64(prefSweepBasePause) / load)
	wl := &workload.Schedule{}
	at := units.Time(0)
	for s := 0; s < prefSweepSessions; s++ {
		wl.Requests = append(wl.Requests, workload.Request{
			At:      at,
			Class:   core.Interactive,
			Action:  core.ActionID(s + 1),
			Dataset: volume.DatasetID(s%prefSweepDatasets + 1),
		})
		at = at.Add(pause)
	}
	wl.Length = at.Add(30 * units.Second)

	sched, err := SchedulerByName("OURS")
	if err != nil {
		panic(err)
	}
	cfg := sim.Config{
		Nodes:     1,
		MemQuota:  units.Bytes(quotaChunks) * prefSweepChunk,
		Model:     core.System1CostModel(),
		Scheduler: sched,
		Library:   lib,
		Jitter:    Jitter,
		Seed:      7,
	}
	if mode == "on" {
		cfg.Prefetch = prefetch.DefaultConfig()
	}
	rep := sim.New(cfg).Run(wl, 0)

	p := PrefetchSweepPoint{
		QuotaChunks: quotaChunks,
		Load:        load,
		Mode:        mode,
		Sessions:    prefSweepSessions,
		Completed:   rep.Interactive.Completed,
		FirstFrame:  rep.MeanFirstFrameLatency(),
		P95:         rep.Interactive.LatencyHist.P95(),
	}
	if rep.Prefetch != nil {
		p.Issued = rep.Prefetch.Issued
		p.Loaded = rep.Prefetch.Loaded
		p.Hits = rep.Prefetch.Hits
		p.HiddenHits = rep.Prefetch.HiddenHits
		p.Wasted = rep.Prefetch.Wasted
		p.BytesMoved = rep.Prefetch.BytesMoved
	}
	return p
}

// PrefetchSweep runs the prefetch sweep sequentially: for each cache quota
// (in 512 MB chunks) and load multiplier, the demand-only baseline and the
// predictive prefetcher on the same session-revisit workload.
func PrefetchSweep(quotas []int, loads []float64) []PrefetchSweepPoint {
	return PrefetchSweepN(quotas, loads, 1)
}

// PrefetchSweepN is PrefetchSweep with an explicit worker count; every cell
// is an independent simulation writing into an index-addressed slot, so
// output order and values are bit-identical for any worker count.
func PrefetchSweepN(quotas []int, loads []float64, workers int) []PrefetchSweepPoint {
	out := make([]PrefetchSweepPoint, len(quotas)*len(loads)*len(prefSweepModes))
	ForEach(workers, len(out), func(cell int) {
		mi := cell % len(prefSweepModes)
		li := (cell / len(prefSweepModes)) % len(loads)
		qi := cell / (len(prefSweepModes) * len(loads))
		out[cell] = runPrefetchCell(quotas[qi], loads[li], prefSweepModes[mi])
	})
	return out
}

// PrintPrefetchSweep prints already-computed prefetch-sweep points.
func PrintPrefetchSweep(w io.Writer, points []PrefetchSweepPoint) {
	fmt.Fprintf(w, "Prefetch sweep — session-revisit scrub, demand-only vs predictive warming (§5.8)\n")
	fmt.Fprintf(w, "  %-6s %-5s %-4s %9s %12s %10s %7s %7s %7s %7s %7s %9s\n",
		"quota", "load", "mode", "sessions", "first-frame", "p95",
		"issued", "loaded", "hits", "hidden", "wasted", "moved")
	lastKey := ""
	for _, p := range points {
		key := fmt.Sprintf("%d/%v", p.QuotaChunks, p.Load)
		if key != lastKey && lastKey != "" {
			fmt.Fprintln(w)
		}
		lastKey = key
		fmt.Fprintf(w, "  %-6s %-5.1f %-4s %9d %12v %10v %7d %7d %7d %7d %7d %9v\n",
			fmt.Sprintf("%dx512M", p.QuotaChunks), p.Load, p.Mode, p.Sessions,
			p.FirstFrame.Std().Round(time.Millisecond),
			p.P95.Std().Round(time.Millisecond),
			p.Issued, p.Loaded, p.Hits, p.HiddenHits, p.Wasted, p.BytesMoved)
	}
	fmt.Fprintln(w)
}

// WritePrefetchSweep runs and prints the prefetch sweep.
func WritePrefetchSweep(w io.Writer, quotas []int, loads []float64, workers int) []PrefetchSweepPoint {
	points := PrefetchSweepN(quotas, loads, workers)
	PrintPrefetchSweep(w, points)
	return points
}

// PrefetchSweepCSV writes the prefetch sweep as CSV.
func PrefetchSweepCSV(w io.Writer, points []PrefetchSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"quota_chunks", "load", "mode", "sessions", "completed",
		"first_frame_ms", "p95_ms",
		"issued", "loaded", "hits", "hidden_hits", "wasted", "bytes_moved",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.QuotaChunks), f(p.Load), p.Mode,
			strconv.Itoa(p.Sessions), i(p.Completed),
			f(p.FirstFrame.Milliseconds()), f(p.P95.Milliseconds()),
			i(p.Issued), i(p.Loaded), i(p.Hits), i(p.HiddenHits), i(p.Wasted),
			i(int64(p.BytesMoved)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
