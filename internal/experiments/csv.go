package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vizsched/internal/metrics"
	"vizsched/internal/workload"
)

// ScenarioCSV writes one scenario's per-scheduler results as CSV, one row
// per policy — the data behind one of Figs. 4–7, ready for any plotting
// tool.
func ScenarioCSV(w io.Writer, id workload.ScenarioID, reports []*metrics.Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "scheduler", "fps", "interactive_latency_ms",
		"interactive_p95_ms", "batch_latency_ms", "batch_working_ms",
		"hit_rate_pct", "sched_cost_ns_per_job", "utilization_pct",
		"interactive_completed", "batch_completed", "loads", "evictions",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range reports {
		rec := []string{
			strconv.Itoa(int(id)),
			r.Scheduler,
			f(r.MeanFramerate()),
			f(r.Interactive.Latency.Mean().Milliseconds()),
			f(r.Interactive.LatencyHist.P95().Milliseconds()),
			f(r.Batch.Latency.Mean().Milliseconds()),
			f(r.Batch.Working.Mean().Milliseconds()),
			f(100 * r.HitRate()),
			strconv.FormatInt(r.AvgSchedCostPerJob().Nanoseconds(), 10),
			f(100 * r.Utilization()),
			strconv.FormatInt(r.Interactive.Completed, 10),
			strconv.FormatInt(r.Batch.Completed, 10),
			strconv.FormatInt(r.Loads, 10),
			strconv.FormatInt(r.Evictions, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig8CSV writes the user-action sweep as CSV.
func Fig8CSV(w io.Writer, points []Fig8Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"actions", "fcfsu_ns_per_job", "fcfsl_ns_per_job", "ours_ns_per_job"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Actions),
			strconv.FormatInt(p.Cost["FCFSU"].Nanoseconds(), 10),
			strconv.FormatInt(p.Cost["FCFSL"].Nanoseconds(), 10),
			strconv.FormatInt(p.Cost["OURS"].Nanoseconds(), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig9CSV writes the dataset sweep as CSV.
func Fig9CSV(w io.Writer, points []Fig9Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"datasets", "sched_cost_ns_per_job", "fps", "latency_ms"}); err != nil {
		return err
	}
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Datasets),
			strconv.FormatInt(p.Cost.Nanoseconds(), 10),
			fmt.Sprintf("%.3f", p.Framerate),
			fmt.Sprintf("%.3f", p.Latency.Milliseconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
