package experiments

import (
	"bytes"
	"testing"
)

// TestFracSweepAcceptance pins §5.13's headline claims at the default cell:
// the DFRS baseline beats the batch baselines on mean utilization (the
// published DFRS-vs-batch result: late binding never strands an idle node
// behind another node's committed FIFO), and OURS+co reclaims ε-guard idle
// into co-scheduled batch work while holding OURS's interactive tail.
func TestFracSweepAcceptance(t *testing.T) {
	points := FracSweepN(1.0, 4)
	if len(points) != len(fracSweepModes) {
		t.Fatalf("got %d points, want %d", len(points), len(fracSweepModes))
	}
	byMode := map[string]FracSweepPoint{}
	for _, p := range points {
		byMode[p.Mode] = p
	}
	dfrs, fcfs, fcfsl := byMode["DFRS"], byMode["FCFS"], byMode["FCFSL"]
	ours, co := byMode["OURS"], byMode["OURS+co"]

	if dfrs.Utilization <= fcfs.Utilization {
		t.Errorf("DFRS utilization %.3f not above FCFS %.3f", dfrs.Utilization, fcfs.Utilization)
	}
	if dfrs.Utilization <= fcfsl.Utilization {
		t.Errorf("DFRS utilization %.3f not above FCFSL %.3f", dfrs.Utilization, fcfsl.Utilization)
	}
	if fcfs.GuardIdle != 0 || fcfs.QueueIdle != 0 {
		t.Errorf("on-arrival FCFS sampled idle split %v/%v, want zero", fcfs.GuardIdle, fcfs.QueueIdle)
	}

	if ours.GuardIdle <= 0 {
		t.Errorf("OURS guard idle %v, want > 0 — nothing for co-scheduling to reclaim", ours.GuardIdle)
	}
	if co.CoScheduled == 0 || co.CoCompleted == 0 {
		t.Errorf("OURS+co never ran a guest (scheduled=%d completed=%d)", co.CoScheduled, co.CoCompleted)
	}
	if co.Preemptions == 0 {
		t.Errorf("OURS+co guests were never preempted by interactive work")
	}
	if co.ReclaimedPct < 25 {
		t.Errorf("OURS+co reclaimed %.1f%% of guard idle, want >= 25%%", co.ReclaimedPct)
	}
	if co.BatchCompleted < ours.BatchCompleted {
		t.Errorf("OURS+co completed %d batch jobs, fewer than OURS's %d", co.BatchCompleted, ours.BatchCompleted)
	}
	// The acceptance gate: reclaiming guard idle must not cost the
	// interactive tail. Allow 5% slack for repriced completions landing a
	// hair differently.
	if limit := ours.P95 + ours.P95/20; co.P95 > limit {
		t.Errorf("OURS+co p95 %v exceeds OURS %v by more than 5%%", co.P95, ours.P95)
	}
}

// TestFracSweepDeterministicAcrossWorkers pins the bit-identical CSV
// guarantee at -parallel 1, 4, and 8: every mode is an independent
// virtual-time simulation into an index-addressed slot, so the worker count
// must not leak into any byte of the output.
func TestFracSweepDeterministicAcrossWorkers(t *testing.T) {
	var first []byte
	for _, workers := range []int{1, 4, 8} {
		var buf bytes.Buffer
		if err := FracSweepCSV(&buf, FracSweepN(0.25, workers)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Errorf("workers=%d: CSV differs from workers=1 output", workers)
		}
	}
}
