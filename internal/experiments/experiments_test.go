package experiments

import (
	"bytes"
	"strings"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

func TestSchedulersRoster(t *testing.T) {
	want := []string{"FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS"}
	got := Schedulers()
	if len(got) != len(want) {
		t.Fatalf("roster size = %d", len(got))
	}
	for i, s := range got {
		if s.Name() != want[i] {
			t.Errorf("roster[%d] = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestSchedulerByName(t *testing.T) {
	s, err := SchedulerByName("OURS")
	if err != nil || s.Name() != "OURS" {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := SchedulerByName("NOPE"); err == nil {
		t.Error("unknown scheduler did not error")
	}
	// Fresh instances, not shared state.
	a, _ := SchedulerByName("FS")
	b, _ := SchedulerByName("FS")
	if a == b {
		t.Error("SchedulerByName returned a shared instance")
	}
}

func TestFig2PipelineShape(t *testing.T) {
	rows := Fig2Pipeline(core.System1CostModel(), 512*units.MB, 16)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The defining property: disk I/O dwarfs every other stage.
	disk := rows[0].Time
	for _, r := range rows[1:] {
		if disk < 10*r.Time {
			t.Errorf("disk (%v) does not dominate %s (%v)", disk, r.Stage, r.Time)
		}
	}
}

func TestWriteFig2(t *testing.T) {
	var buf bytes.Buffer
	WriteFig2(&buf)
	out := buf.String()
	for _, want := range []string{"System 1", "System 2", "ray casting", "tio dominates"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q", want)
		}
	}
}

func TestWriteTableII(t *testing.T) {
	var buf bytes.Buffer
	WriteTableII(&buf, 1)
	out := buf.String()
	for _, want := range []string{"12006", "21011", "160633", "388481", "512GB", "1TB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

// The headline result at reduced scale: OURS beats every locality-blind
// scheduler on framerate in scenario 1, and FCFSU sits in between.
func TestScenario1ShapeSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	var buf bytes.Buffer
	reports := WriteScenario(&buf, workload.Scenario1, 0.1)
	get := func(name string) *metrics.Report {
		for _, r := range reports {
			if r.Scheduler == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return nil
	}
	ours := get("OURS").MeanFramerate()
	fcfsl := get("FCFSL").MeanFramerate()
	fcfsu := get("FCFSU").MeanFramerate()
	for _, blind := range []string{"FS", "SF", "FCFS"} {
		if f := get(blind).MeanFramerate(); f >= fcfsu {
			t.Errorf("%s fps %.2f not below FCFSU %.2f", blind, f, fcfsu)
		}
	}
	if ours < 30 {
		t.Errorf("OURS fps = %.2f, want ≈33", ours)
	}
	if fcfsu >= fcfsl {
		t.Errorf("FCFSU %.2f should trail FCFSL %.2f in scenario 1", fcfsu, fcfsl)
	}
	// Table III shape: OURS and FCFSU near-perfect reuse.
	if hr := get("OURS").HitRate(); hr < 0.99 {
		t.Errorf("OURS hit rate = %.4f", hr)
	}
	if hr := get("FCFSU").HitRate(); hr < 0.99 {
		t.Errorf("FCFSU hit rate = %.4f", hr)
	}
	if !strings.Contains(buf.String(), "Fig 4") {
		t.Error("missing figure header")
	}
}

func TestWriteTableIIIFormatting(t *testing.T) {
	results := map[workload.ScenarioID][]*metrics.Report{
		workload.Scenario1: {
			metrics.NewReport("FS", 8), metrics.NewReport("SF", 8),
			metrics.NewReport("FCFS", 8), metrics.NewReport("FCFSU", 8),
			metrics.NewReport("FCFSL", 8), metrics.NewReport("OURS", 8),
		},
	}
	var buf bytes.Buffer
	WriteTableIII(&buf, results)
	if !strings.Contains(buf.String(), "hit rate") || !strings.Contains(buf.String(), "avg cost") {
		t.Error("Table III rows missing")
	}
}

func TestFig8SweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	points := Fig8ActionSweep([]int{1, 4}, 2)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		for _, name := range []string{"FCFSU", "FCFSL", "OURS"} {
			if p.Cost[name] <= 0 {
				t.Errorf("actions=%d %s cost = %v", p.Actions, name, p.Cost[name])
			}
		}
	}
}

func TestFig9SweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run")
	}
	points := Fig9DatasetSweep([]int{2, 8}, 3)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Framerate <= 0 || p.Cost <= 0 {
			t.Errorf("datasets=%d: fps=%.2f cost=%v", p.Datasets, p.Framerate, p.Cost)
		}
	}
}
