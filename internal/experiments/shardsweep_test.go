package experiments

import (
	"bytes"
	"strings"
	"testing"
)

var shardSweepCounts = []int{1, 2, 4}

const shardSweepScale = 0.5

// TestShardSweepDeterministicAcrossWorkers is the acceptance guard for the
// sharded engine's virtual-time merge: the sweep's CSV must be bit-identical
// at -parallel 1, 4, and 8 — every shard's event stream, the donation
// decisions, and the derived speedups leave no room for scheduling races.
func TestShardSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	csvAt := func(workers int) string {
		points := ShardSweepN(shardSweepCounts, shardSweepScale, workers)
		var buf bytes.Buffer
		if err := ShardSweepCSV(&buf, points); err != nil {
			t.Fatalf("CSV at %d workers: %v", workers, err)
		}
		return buf.String()
	}
	one := csvAt(1)
	for _, workers := range []int{4, 8} {
		if got := csvAt(workers); got != one {
			t.Errorf("shardsweep CSV diverges at -parallel %d:\n-- parallel 1 --\n%s\n-- parallel %d --\n%s",
				workers, one, workers, got)
		}
	}
}

// TestShardSweepScaling is the headline acceptance criterion: on the
// overload scenario (arrivals at 3.5× one head's admission capacity), four
// shards must complete at least 3× the sessions one shard does, with zero
// cross-shard invariant violations in any cell.
func TestShardSweepScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := ShardSweepN([]int{1, 4}, shardSweepScale, DefaultWorkers())
	for _, p := range points {
		if p.InvariantErr != "" {
			t.Errorf("invariants violated at %d shards: %s", p.Shards, p.InvariantErr)
		}
		if p.Completed == 0 {
			t.Fatalf("%d shards completed nothing", p.Shards)
		}
	}
	ratio := float64(points[1].Completed) / float64(points[0].Completed)
	if ratio < 3 {
		t.Errorf("4 shards completed %d vs %d at 1 shard — %.2fx, want ≥3x",
			points[1].Completed, points[0].Completed, ratio)
	}
}

// TestShardSweepOutput: the print and CSV forms render every point, and a
// donation-capable cell reports through the donated column.
func TestShardSweepOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := ShardSweepN(shardSweepCounts, shardSweepScale, DefaultWorkers())
	var buf bytes.Buffer
	PrintShardSweep(&buf, points)
	if got := strings.Count(buf.String(), "\n"); got < len(points)+2 {
		t.Errorf("print rendered %d lines, want ≥ %d", got, len(points)+2)
	}
	var csvBuf bytes.Buffer
	if err := ShardSweepCSV(&csvBuf, points); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	if got, want := strings.Count(csvBuf.String(), "\n"), len(points)+1; got != want {
		t.Errorf("CSV rows = %d, want %d", got, want)
	}
}
