package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"vizsched/internal/qos"
)

var (
	qosSweepSkews = []float64{0, 1.5}
	qosSweepLoads = []float64{1, 2, 3}
)

const qosSweepScale = 0.1

// TestQoSSweepDeterministicAcrossWorkers: every cell is an independent
// virtual-time simulation into an index-addressed slot, so the sweep must be
// bit-identical whether cells run sequentially or concurrently, and across
// repeated runs — the property `vizbench -parallel` relies on.
func TestQoSSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	seq := QoSSweepN(qosSweepSkews, qosSweepLoads, qosSweepScale, 1)
	par := QoSSweepN(qosSweepSkews, qosSweepLoads, qosSweepScale, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	again := QoSSweepN(qosSweepSkews, qosSweepLoads, qosSweepScale, 4)
	if !reflect.DeepEqual(par, again) {
		t.Errorf("sweep not reproducible:\nfirst: %+v\nagain: %+v", par, again)
	}
}

// TestQoSSweepFairnessImproves is the acceptance criterion: with skewed
// tenant demand at 2× overload and beyond, admission control plus DRR must
// yield a strictly higher Jain fairness index than the FIFO baseline, while
// shedding load instead of letting the queue (and tail latency) collapse.
func TestQoSSweepFairnessImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := QoSSweepN([]float64{1.5}, []float64{2, 3}, qosSweepScale, DefaultWorkers())
	if len(points)%2 != 0 {
		t.Fatalf("odd point count %d, want FIFO/QoS pairs", len(points))
	}
	for i := 0; i < len(points); i += 2 {
		fifo, q := points[i], points[i+1]
		if fifo.Mode != "FIFO" || q.Mode != "QoS" || fifo.Load != q.Load {
			t.Fatalf("pairing broken: %+v / %+v", fifo, q)
		}
		if q.Jain <= fifo.Jain {
			t.Errorf("load %.1fx skew %.1f: QoS jain %.3f <= FIFO %.3f", q.Load, q.Skew, q.Jain, fifo.Jain)
		}
		if q.P95 >= fifo.P95 {
			t.Errorf("load %.1fx: QoS p95 %v >= FIFO %v — shedding should bound the tail", q.Load, q.P95, fifo.P95)
		}
		if q.Rejected == 0 && q.Throttled == 0 && q.Shed == 0 {
			t.Errorf("load %.1fx: QoS made no admission decisions under overload", q.Load)
		}
		if fifo.Admitted != 0 || fifo.Rejected != 0 || fifo.MaxLevel != 0 {
			t.Errorf("FIFO cell carries QoS counters: %+v", fifo)
		}
		if q.Completed == 0 || fifo.Completed == 0 {
			t.Errorf("load %.1fx: empty cell (fifo %d, qos %d completions)", q.Load, fifo.Completed, q.Completed)
		}
	}
}

// TestQoSSweepLadderEngagesUnderOverload: by 3× the degradation ladder must
// have stepped at least once during the run.
func TestQoSSweepLadderEngagesUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	pts := QoSSweepN([]float64{0}, []float64{3}, qosSweepScale, DefaultWorkers())
	q := pts[len(pts)-1]
	if q.Mode != "QoS" {
		t.Fatalf("last cell is %q, want QoS", q.Mode)
	}
	if q.MaxLevel < int(qos.LevelHalveBatch) {
		t.Errorf("3x overload never engaged the ladder: max level %d", q.MaxLevel)
	}
}

// TestQoSSweepCSV pins the CSV surface consumed by the plotting scripts.
func TestQoSSweepCSV(t *testing.T) {
	pts := []QoSSweepPoint{{Skew: 1.5, Load: 2, Mode: "QoS", Actions: 12, Jain: 0.987, Admitted: 10}}
	var buf bytes.Buffer
	if err := QoSSweepCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tenant_skew,load,mode,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "QoS") || !strings.Contains(lines[1], "0.987") {
		t.Errorf("row = %q", lines[1])
	}
}
