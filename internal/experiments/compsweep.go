package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vizsched/internal/sim"
	"vizsched/internal/units"
)

// compSweepAlgorithms are the compositors the sweep compares: the paper's
// 2-3 swap, the classic binary swap, and the asynchronous distributed
// framebuffer (§5.9).
var compSweepAlgorithms = []string{"binary-swap", "2-3-swap", "dfb"}

// CompSweepNodes are the default cluster sizes, spanning the paper's small
// configuration up to the 100-node scale of its scheduling experiments.
var CompSweepNodes = []int{8, 16, 27, 48, 64, 100}

// CompSweepPoint is one (nodes, algorithm) cell of the compositing sweep.
type CompSweepPoint struct {
	Nodes     int
	Algorithm string

	// MeanLatency/P95Latency are per-frame latencies on a healthy cluster.
	MeanLatency units.Duration
	P95Latency  units.Duration
	// StragglerLatency is the mean per-frame latency with one node slowed
	// 3.5×; Degradation is its ratio over MeanLatency — the straggler
	// sensitivity the asynchronous design exists to shrink. The factor is
	// chosen so the straggled frame plus the barriered rounds overruns the
	// frame budget: the collectives queue up while the asynchronous
	// pipeline absorbs the slow node.
	StragglerLatency units.Duration
	Degradation      float64
}

// compCell evaluates one sweep cell: the same seeded render-time stream
// with and without the slow node, so the degradation ratio isolates the
// straggler's effect from jitter luck.
func compCell(nodes int, alg string) CompSweepPoint {
	base := sim.CompFrameConfig{
		Nodes:     nodes,
		Algorithm: alg,
		Jitter:    Jitter,
		Period:    units.Duration(1e9/TargetFPS) * units.Nanosecond,
		Straggler: -1,
		Seed:      int64(nodes)*7919 + 17,
	}
	healthy := sim.RunCompFrame(base)
	slow := base
	slow.Straggler = nodes / 2
	slow.StragglerFactor = 3.5
	straggled := sim.RunCompFrame(slow)
	return CompSweepPoint{
		Nodes:            nodes,
		Algorithm:        alg,
		MeanLatency:      healthy.MeanLatency,
		P95Latency:       healthy.P95Latency,
		StragglerLatency: straggled.MeanLatency,
		Degradation:      float64(straggled.MeanLatency) / float64(healthy.MeanLatency),
	}
}

// CompSweep runs the compositing sweep over the default node counts.
func CompSweep(workers int) []CompSweepPoint {
	return CompSweepN(CompSweepNodes, workers)
}

// CompSweepN evaluates every (nodes, algorithm) cell. Cells are independent
// closed-form recurrences indexed deterministically, so the result is
// bit-identical at any worker count.
func CompSweepN(nodes []int, workers int) []CompSweepPoint {
	out := make([]CompSweepPoint, len(nodes)*len(compSweepAlgorithms))
	ForEach(workers, len(out), func(cell int) {
		ni, ai := cell/len(compSweepAlgorithms), cell%len(compSweepAlgorithms)
		out[cell] = compCell(nodes[ni], compSweepAlgorithms[ai])
	})
	return out
}

// WriteCompSweep runs and prints the compositing sweep.
func WriteCompSweep(w io.Writer, workers int) []CompSweepPoint {
	points := CompSweep(workers)
	PrintCompSweep(w, points)
	return points
}

// PrintCompSweep prints already-computed compositing-sweep points.
func PrintCompSweep(w io.Writer, points []CompSweepPoint) {
	fmt.Fprintf(w, "Compositing sweep — per-frame latency at %.2f fps, straggler = one node 3.5× slow\n", TargetFPS)
	fmt.Fprintf(w, "  %-6s %-12s %10s %10s %12s %12s\n",
		"nodes", "algorithm", "mean", "p95", "straggler", "degradation")
	last := -1
	for _, p := range points {
		if p.Nodes != last && last >= 0 {
			fmt.Fprintln(w)
		}
		last = p.Nodes
		fmt.Fprintf(w, "  %-6d %-12s %10v %10v %12v %11.2fx\n",
			p.Nodes, p.Algorithm,
			p.MeanLatency.Std().Round(10*time.Microsecond),
			p.P95Latency.Std().Round(10*time.Microsecond),
			p.StragglerLatency.Std().Round(10*time.Microsecond),
			p.Degradation)
	}
	fmt.Fprintln(w)
}

// CompSweepCSV writes the compositing sweep as CSV.
func CompSweepCSV(w io.Writer, points []CompSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"nodes", "algorithm", "mean_latency_ms", "p95_latency_ms",
		"straggler_latency_ms", "degradation",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Nodes),
			p.Algorithm,
			f(p.MeanLatency.Milliseconds()),
			f(p.P95Latency.Milliseconds()),
			f(p.StragglerLatency.Milliseconds()),
			f(p.Degradation),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
