package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/shard"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// The shard sweep (§5.11) measures control-plane scaling: sessions arrive
// at several times one head's admission capacity, so a single dispatcher is
// the bottleneck by construction and throughput should grow near-linearly
// with shard count until the data plane saturates.

// shardSweepAdmit is the modeled per-admission control-plane cost: 2ms
// serializes one shard at 500 sessions/s.
const shardSweepAdmit = 2 * units.Millisecond

// shardSweepRate is the arrival rate, 3.5× one shard's admission capacity.
const shardSweepRate = 1750

// ShardSweepPoint is one shard-count cell of the sweep.
type ShardSweepPoint struct {
	Shards int

	Issued    int64
	Completed int64
	// Donated counts batch jobs adopted across shards through the donation
	// board; zero at one shard by definition.
	Donated int64
	// Throughput is completed sessions per second of simulated time.
	Throughput float64
	// Speedup is this cell's completions over the 1-shard cell's — the
	// headline near-linear-scaling number.
	Speedup float64
	Latency units.Duration
	// InvariantErr is non-empty if the cross-shard property suite failed:
	// dual session ownership, ring-inconsistent admission, or a structurally
	// unsound directory.
	InvariantErr string
	Directory    shard.Stats
}

// shardSweepConfig builds the overload cluster: plenty of render capacity
// (16 nodes, small warm datasets) so admission, not rendering, is scarce.
func shardSweepConfig(shards int) sim.Config {
	lib := volume.NewLibrary()
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: 256 * units.MB})
	for i := 1; i <= 8; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), "ds", 64*units.MB, policy))
	}
	return sim.Config{
		Nodes:    16,
		MemQuota: 2 * units.GB,
		Model:    core.System1CostModel(),
		NewScheduler: func() core.Scheduler {
			s, err := SchedulerByName("OURS")
			if err != nil {
				panic(err)
			}
			return s
		},
		Library:  lib,
		Seed:     1,
		Preload:  true,
		Shards:   shards,
		Donation: shards > 1,
		HeadCost: &shard.HeadCost{
			Admit:    shardSweepAdmit,
			Dispatch: 50 * units.Microsecond,
			Complete: 20 * units.Microsecond,
		},
	}
}

// shardSweepWorkload is the overload arrival stream: interactive
// single-frame sessions (each its own action, so the ring spreads them) at
// shardSweepRate, plus one tenant's early batch flood that lands entirely
// on its owning shard — the donation board's reason to exist.
func shardSweepWorkload(seconds int) *workload.Schedule {
	wl := &workload.Schedule{Length: units.Time(seconds) * units.Time(units.Second)}
	gap := units.Second / units.Duration(shardSweepRate)
	var at units.Time
	id := core.ActionID(1)
	for at < wl.Length {
		wl.Requests = append(wl.Requests, workload.Request{
			At:      at,
			Class:   core.Interactive,
			Action:  id,
			Dataset: volume.DatasetID(1 + int(id)%8),
		})
		id++
		at = at.Add(gap)
	}
	for i := 0; i < 120; i++ {
		wl.Requests = append(wl.Requests, workload.Request{
			At:      units.Time(units.Duration(i) * units.Millisecond),
			Class:   core.Batch,
			Action:  id + core.ActionID(i),
			Tenant:  7,
			Dataset: volume.DatasetID(1 + i%8),
		})
	}
	sort.SliceStable(wl.Requests, func(i, j int) bool { return wl.Requests[i].At < wl.Requests[j].At })
	return wl
}

// runShardCell plays the overload scenario at one shard count.
func runShardCell(shards, seconds int) ShardSweepPoint {
	se := sim.NewSharded(shardSweepConfig(shards))
	rep := se.Run(shardSweepWorkload(seconds), 0)
	p := ShardSweepPoint{
		Shards:     shards,
		Issued:     rep.JobsIssued(),
		Completed:  rep.JobsCompleted(),
		Donated:    rep.Donated,
		Throughput: float64(rep.JobsCompleted()) / float64(seconds),
		Latency:    rep.MeanInteractiveLatency(),
		Directory:  rep.Directory,
	}
	if err := se.InvariantCheck(); err != nil {
		p.InvariantErr = err.Error()
	}
	return p
}

// ShardSweep runs the shard-scaling sweep sequentially.
func ShardSweep(shardCounts []int, scale float64) []ShardSweepPoint {
	return ShardSweepN(shardCounts, scale, 1)
}

// ShardSweepN is ShardSweep with an explicit worker count. Every cell is an
// independent virtual-time simulation into an index-addressed slot, so the
// results — including the derived speedups — are bit-identical at any
// worker count.
func ShardSweepN(shardCounts []int, scale float64, workers int) []ShardSweepPoint {
	seconds := int(8 * scale)
	if seconds < 2 {
		seconds = 2
	}
	out := make([]ShardSweepPoint, len(shardCounts))
	ForEach(workers, len(out), func(cell int) {
		out[cell] = runShardCell(shardCounts[cell], seconds)
	})
	for i := range out {
		if out[0].Completed > 0 {
			out[i].Speedup = float64(out[i].Completed) / float64(out[0].Completed)
		}
	}
	return out
}

// WriteShardSweep runs and prints the shard sweep.
func WriteShardSweep(w io.Writer, shardCounts []int, scale float64, workers int) []ShardSweepPoint {
	points := ShardSweepN(shardCounts, scale, workers)
	PrintShardSweep(w, points)
	return points
}

// PrintShardSweep prints already-computed shard-sweep points.
func PrintShardSweep(w io.Writer, points []ShardSweepPoint) {
	fmt.Fprintf(w, "shard sweep — sessions at %d/s vs %v per admission (%.1fx one head's capacity), OURS per shard (§5.11)\n",
		shardSweepRate, shardSweepAdmit.Std(),
		float64(shardSweepRate)*shardSweepAdmit.Seconds())
	fmt.Fprintf(w, "  %-7s %9s %10s %9s %8s %8s %12s %10s %s\n",
		"shards", "issued", "completed", "sess/s", "speedup", "donated", "int-latency", "dir-hits", "invariants")
	for _, p := range points {
		inv := "ok"
		if p.InvariantErr != "" {
			inv = "VIOLATED: " + p.InvariantErr
		}
		fmt.Fprintf(w, "  %-7d %9d %10d %9.1f %8.2f %8d %12v %10d %s\n",
			p.Shards, p.Issued, p.Completed, p.Throughput, p.Speedup,
			p.Donated, p.Latency.Std().Round(time.Millisecond),
			p.Directory.Hits, inv)
	}
	fmt.Fprintln(w)
}

// ShardSweepCSV writes the shard sweep as CSV.
func ShardSweepCSV(w io.Writer, points []ShardSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"shards", "issued", "completed", "sessions_per_s", "speedup",
		"donated", "interactive_latency_ms", "dir_chunks", "dir_lookups",
		"dir_hits", "dir_publishes", "invariant_error",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			strconv.Itoa(p.Shards), i(p.Issued), i(p.Completed),
			f(p.Throughput), f(p.Speedup), i(p.Donated),
			f(p.Latency.Milliseconds()),
			strconv.Itoa(p.Directory.Chunks), i(p.Directory.Lookups),
			i(p.Directory.Hits), i(p.Directory.Publishes),
			p.InvariantErr,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
