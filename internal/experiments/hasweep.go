package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// haSweepModes are the control-plane fault shapes the HA sweep compares:
// a clean run, a head crash (snapshot+journal standby takeover, §5.10), and
// the same crash overlapped with a node partition that heals while the head
// is still down — the worst ordering for the resync epoch.
var haSweepModes = []string{"clean", "headcrash", "crash+part"}

// HASweepPoint is one (outage fraction, mode) cell of the HA sweep.
type HASweepPoint struct {
	// Outage is the head's downtime as a fraction of the run horizon; the
	// crash lands at 40% of the horizon so recovery is observable before the
	// end cuts the tail off.
	Outage float64
	Mode   string

	Framerate float64
	Latency   units.Duration
	// ControlMTTR is the measured control-plane outage span — by
	// construction exactly Outage×horizon for the faulted modes.
	ControlMTTR units.Duration
	// ArrivalsDeferred/ResultsDeferred count the work buffered across the
	// outage: requests held at admission and completion reports retained on
	// the nodes for the resync epoch.
	ArrivalsDeferred int64
	ResultsDeferred  int64
	// CommittedAtCrash is the committed-session count the instant the head
	// died; CommittedLost is how far below it the recovered head came back —
	// the headline number, structurally zero.
	CommittedAtCrash int64
	CommittedLost    int64
	// Redispatched counts tasks that re-rendered; a control-plane fault
	// must never cause any.
	Redispatched int64
	// Unfinished counts jobs issued but not completed by the horizon — the
	// frames the outage cost the user.
	Unfinished int64
	// DipDepth/DipBelow are how far under TargetFPS the worst one-second
	// window fell after the crash, and the total time spent under it.
	DipDepth  float64
	DipBelow  units.Duration
	Issued    int64
	Completed int64
}

// haFaults builds the fault schedule for one mode: the head crash spans
// [40%, 40%+outage] of the horizon; crash+part additionally partitions node 1
// shortly before the crash and heals it mid-outage, so its retained reports
// must wait for the head's repair rather than the heal.
func haFaults(mode string, length units.Time, outage float64) []sim.Failure {
	if mode == "clean" || outage <= 0 {
		return nil
	}
	crashAt := units.Time(float64(length) * 0.4)
	repairAt := crashAt.Add(units.Duration(float64(length) * outage))
	fs := []sim.Failure{{Kind: sim.FaultHeadCrash, At: crashAt, RepairAt: repairAt}}
	if mode == "crash+part" {
		fs = append(fs, sim.Failure{
			Kind:     sim.FaultPartition,
			Node:     core.NodeID(1),
			At:       units.Time(float64(length) * 0.35),
			RepairAt: crashAt.Add(units.Duration(float64(length) * outage / 2)),
		})
	}
	return fs
}

// runHACell plays Scenario 2 under OURS with one control-plane fault shape
// and distills the recovery metrics.
func runHACell(cfg workload.ScenarioConfig, mode string, outage float64) HASweepPoint {
	sched, err := SchedulerByName("OURS")
	if err != nil {
		panic(err)
	}
	engCfg := sim.ScenarioEngineConfig(cfg, sched, Jitter)
	engCfg.Failures = haFaults(mode, cfg.Spec.Length, outage)
	rep := sim.New(engCfg).Run(workload.Generate(cfg.Spec), 0)

	rc := &rep.Recovery
	depth, below := rc.FramerateDip(TargetFPS)
	return HASweepPoint{
		Outage:           outage,
		Mode:             mode,
		Framerate:        rep.MeanFramerate(),
		Latency:          rep.Interactive.Latency.Mean(),
		ControlMTTR:      rc.ControlMTTR(),
		ArrivalsDeferred: rc.ArrivalsDeferred,
		ResultsDeferred:  rc.ResultsDeferred,
		CommittedAtCrash: rc.CommittedAtCrash,
		CommittedLost:    rc.CommittedLost,
		Redispatched:     rc.TasksRedispatched,
		Unfinished: (rep.Interactive.Issued - rep.Interactive.Completed) +
			(rep.Batch.Issued - rep.Batch.Completed),
		DipDepth:  depth,
		DipBelow:  below,
		Issued:    rep.Interactive.Issued,
		Completed: rep.Interactive.Completed,
	}
}

// HASweep runs the head-failover sweep sequentially: Scenario 2 under OURS
// for each outage fraction, in the three haSweepModes. Results are grouped
// by outage with modes in haSweepModes order, and are deterministic: the
// whole sweep runs in virtual time, so values are bit-identical at any
// worker count.
func HASweep(outages []float64, scale float64) []HASweepPoint {
	return HASweepN(outages, scale, 1)
}

// HASweepN is HASweep with an explicit worker count; every (outage, mode)
// cell is an independent simulation, so all cells run concurrently into
// index-addressed slots.
func HASweepN(outages []float64, scale float64, workers int) []HASweepPoint {
	cfg := workload.Scenario(workload.Scenario2, scale)
	out := make([]HASweepPoint, len(outages)*len(haSweepModes))
	ForEach(workers, len(out), func(cell int) {
		mi := cell % len(haSweepModes)
		oi := cell / len(haSweepModes)
		out[cell] = runHACell(cfg, haSweepModes[mi], outages[oi])
	})
	return out
}

// WriteHASweep runs and prints the HA sweep.
func WriteHASweep(w io.Writer, outages []float64, scale float64, workers int) []HASweepPoint {
	points := HASweepN(outages, scale, workers)
	PrintHASweep(w, points)
	return points
}

// PrintHASweep prints already-computed HA-sweep points.
func PrintHASweep(w io.Writer, points []HASweepPoint) {
	fmt.Fprintf(w, "HA sweep — Scenario 2 under OURS, head crash at 40%% of the horizon (§5.10), target %.2f fps\n", TargetFPS)
	fmt.Fprintf(w, "  %-7s %-10s %8s %12s %9s %8s %8s %10s %9s %8s %6s %10s %10s\n",
		"outage", "mode", "fps", "int-latency", "ctl-MTTR", "defer", "retain",
		"committed", "lost", "redisp", "unfin", "dip-depth", "dip-time")
	last := -1.0
	for _, p := range points {
		if p.Outage != last && last >= 0 {
			fmt.Fprintln(w)
		}
		last = p.Outage
		fmt.Fprintf(w, "  %-7.2f %-10s %8.2f %12v %9v %8d %8d %10d %9d %8d %6d %10.2f %10v\n",
			p.Outage, p.Mode, p.Framerate,
			p.Latency.Std().Round(time.Millisecond),
			p.ControlMTTR.Std().Round(time.Millisecond),
			p.ArrivalsDeferred, p.ResultsDeferred,
			p.CommittedAtCrash, p.CommittedLost, p.Redispatched, p.Unfinished,
			p.DipDepth, p.DipBelow.Std())
	}
	fmt.Fprintln(w)
}

// HASweepCSV writes the HA sweep as CSV.
func HASweepCSV(w io.Writer, points []HASweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"outage_fraction", "mode", "fps", "interactive_latency_ms",
		"control_mttr_ms", "arrivals_deferred", "results_deferred",
		"committed_at_crash", "committed_lost", "tasks_redispatched",
		"unfinished_jobs", "dip_depth_fps", "dip_below_target_s",
		"issued", "completed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			f(p.Outage), p.Mode, f(p.Framerate),
			f(p.Latency.Milliseconds()),
			f(p.ControlMTTR.Milliseconds()),
			i(p.ArrivalsDeferred), i(p.ResultsDeferred),
			i(p.CommittedAtCrash), i(p.CommittedLost), i(p.Redispatched),
			i(p.Unfinished), f(p.DipDepth), f(p.DipBelow.Seconds()),
			i(p.Issued), i(p.Completed),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
