package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vizsched/internal/metrics"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// ReplicaSweepPoint is one (fault rate, replication degree) cell of the
// replica sweep. K is 0 for the FCFSU baseline row (replication does not
// apply to a scheduler that ignores locality) and the OURS target degree
// otherwise.
type ReplicaSweepPoint struct {
	// Rate is the injected fault rate in faults per simulated minute.
	Rate      float64
	Scheduler string
	// K is the replication degree: 0 marks the FCFSU baseline, 1 is OURS
	// without the replication layer (the paper's behaviour), ≥2 enables the
	// spread + re-homing policy.
	K int

	Framerate    float64
	Latency      units.Duration
	HitRate      float64
	Redispatched int64
	// MTTR is the raw node down → repair mean; ServiceMTTR caps each down
	// interval at the moment re-homing restored warm service (§5.6), so the
	// gap between the two is the time replication bought back.
	MTTR        units.Duration
	ServiceMTTR units.Duration
	// ChunksRehomed/ChunksReseeded count how failures were absorbed: homes
	// moved warm to a surviving replica versus dropped cold for rarest-first
	// re-seeding.
	ChunksRehomed  int64
	ChunksReseeded int64
	// DipDepth/DipBelow are how far under TargetFPS the worst one-second
	// window fell after the first fault, and the total time spent under it.
	DipDepth float64
	DipBelow units.Duration
}

// runReplicaCell plays Scenario 2 under one (scheduler, k) pair with the
// given fault schedule and distills the recovery metrics.
func runReplicaCell(cfg workload.ScenarioConfig, name string, k int, rate float64, faults []sim.Failure) ReplicaSweepPoint {
	sched, err := SchedulerByName(name)
	if err != nil {
		panic(err)
	}
	engCfg := sim.ScenarioEngineConfig(cfg, sched, Jitter)
	engCfg.Failures = faults
	if k > 1 {
		engCfg.Replicas = k
	}
	eng := sim.New(engCfg)
	wl := workload.Generate(cfg.Spec)
	rep := eng.Run(wl, 0)
	return replicaPoint(rate, k, rep)
}

// replicaPoint distills one report into a sweep point.
func replicaPoint(rate float64, k int, rep *metrics.Report) ReplicaSweepPoint {
	depth, below := rep.Recovery.FramerateDip(TargetFPS)
	return ReplicaSweepPoint{
		Rate:           rate,
		Scheduler:      rep.Scheduler,
		K:              k,
		Framerate:      rep.MeanFramerate(),
		Latency:        rep.Interactive.Latency.Mean(),
		HitRate:        rep.HitRate(),
		Redispatched:   rep.Recovery.TasksRedispatched,
		MTTR:           rep.Recovery.MTTR(),
		ServiceMTTR:    rep.Recovery.ServiceMTTR(),
		ChunksRehomed:  rep.Recovery.ChunksRehomed,
		ChunksReseeded: rep.Recovery.ChunksReseeded,
		DipDepth:       depth,
		DipBelow:       below,
	}
}

// ReplicaSweep runs the replica sweep sequentially: for each fault rate, an
// FCFSU baseline row (K=0) followed by an OURS row per replication degree in
// ks. See ReplicaSweepN.
func ReplicaSweep(ks []int, rates []float64, scale float64) []ReplicaSweepPoint {
	return ReplicaSweepN(ks, rates, scale, 1)
}

// ReplicaSweepN is ReplicaSweep with an explicit worker count; every cell is
// an independent simulation, so all cells run concurrently. The fault
// schedule for a rate is built once (identical to the failure sweep's for
// the same rate) and replayed by every cell of that rate, so differences
// between degrees are differences in recovery policy, not in luck. Results
// are grouped by rate — FCFSU first, then OURS in ks order — and are
// deterministic: the same inputs always produce bit-identical virtual-time
// metrics, whatever the worker count.
func ReplicaSweepN(ks []int, rates []float64, scale float64, workers int) []ReplicaSweepPoint {
	cfg := workload.Scenario(workload.Scenario2, scale)
	schedules := make([][]sim.Failure, len(rates))
	for i, rate := range rates {
		schedules[i] = FaultSchedule(cfg.Nodes, cfg.Spec.Length, rate, int64(cfg.ID)*104729)
	}
	perRate := 1 + len(ks)
	out := make([]ReplicaSweepPoint, len(rates)*perRate)
	ForEach(workers, len(out), func(cell int) {
		ri, ci := cell/perRate, cell%perRate
		if ci == 0 {
			out[cell] = runReplicaCell(cfg, "FCFSU", 0, rates[ri], schedules[ri])
		} else {
			out[cell] = runReplicaCell(cfg, "OURS", ks[ci-1], rates[ri], schedules[ri])
		}
	})
	return out
}

// WriteReplicaSweep runs and prints the replica sweep.
func WriteReplicaSweep(w io.Writer, ks []int, rates []float64, scale float64, workers int) []ReplicaSweepPoint {
	points := ReplicaSweepN(ks, rates, scale, workers)
	PrintReplicaSweep(w, points)
	return points
}

// PrintReplicaSweep prints already-computed replica-sweep points.
func PrintReplicaSweep(w io.Writer, points []ReplicaSweepPoint) {
	fmt.Fprintf(w, "Replica sweep — Scenario 2, OURS at k replicas vs FCFSU, chaos fault mix, target %.2f fps\n", TargetFPS)
	fmt.Fprintf(w, "  %-10s %-6s %2s %8s %9s %9s %9s %7s %7s %10s %10s\n",
		"faults/min", "sched", "k", "fps", "hit-rate", "MTTR", "svc-MTTR", "rehome", "reseed", "dip-depth", "dip-time")
	last := -1.0
	for _, p := range points {
		if p.Rate != last && last >= 0 {
			fmt.Fprintln(w)
		}
		last = p.Rate
		k := "-"
		if p.K > 0 {
			k = strconv.Itoa(p.K)
		}
		fmt.Fprintf(w, "  %-10.1f %-6s %2s %8.2f %8.2f%% %9v %9v %7d %7d %10.2f %10v\n",
			p.Rate, p.Scheduler, k, p.Framerate,
			100*p.HitRate,
			p.MTTR.Std().Round(time.Millisecond),
			p.ServiceMTTR.Std().Round(time.Millisecond),
			p.ChunksRehomed, p.ChunksReseeded,
			p.DipDepth, p.DipBelow.Std())
	}
	fmt.Fprintln(w)
}

// ReplicaSweepCSV writes the replica sweep as CSV.
func ReplicaSweepCSV(w io.Writer, points []ReplicaSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"faults_per_min", "scheduler", "replicas", "fps",
		"interactive_latency_ms", "hit_rate_pct", "tasks_redispatched",
		"mttr_ms", "service_mttr_ms", "chunks_rehomed", "chunks_reseeded",
		"dip_depth_fps", "dip_below_target_s",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, p := range points {
		rec := []string{
			f(p.Rate),
			p.Scheduler,
			strconv.Itoa(p.K),
			f(p.Framerate),
			f(p.Latency.Milliseconds()),
			f(100 * p.HitRate),
			strconv.FormatInt(p.Redispatched, 10),
			f(p.MTTR.Milliseconds()),
			f(p.ServiceMTTR.Milliseconds()),
			strconv.FormatInt(p.ChunksRehomed, 10),
			strconv.FormatInt(p.ChunksReseeded, 10),
			f(p.DipDepth),
			f(p.DipBelow.Seconds()),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
