package experiments

import (
	"reflect"
	"testing"

	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// failSweepRates: a clean baseline plus three increasing chaos rates. At
// this scale OURS retains the framerate lead at every rate; EXPERIMENTS.md
// discusses draws where a crash of a locality home node inverts it.
var failSweepRates = []float64{0, 1, 2, 3}

const failSweepScale = 0.5

// TestFailureSweepDeterministicAcrossWorkers: every metric in the sweep is
// virtual-time, so the points must be bit-identical whether the cells run
// sequentially or concurrently, and across repeated runs.
func TestFailureSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	seq := FailureSweepN(failSweepRates, failSweepScale, 1)
	par := FailureSweepN(failSweepRates, failSweepScale, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	again := FailureSweepN(failSweepRates, failSweepScale, 4)
	if !reflect.DeepEqual(par, again) {
		t.Errorf("sweep not reproducible:\nfirst: %+v\nagain: %+v", par, again)
	}
}

// TestFailureSweepOursStaysAhead: under the same chaos schedule, the paper's
// scheduler must keep the highest framerate at every fault rate — locality
// plus urgency degrades more gracefully than either FCFS baseline.
func TestFailureSweepOursStaysAhead(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := FailureSweepN(failSweepRates, failSweepScale, DefaultWorkers())
	byRate := map[float64]map[string]FailSweepPoint{}
	for _, p := range points {
		if byRate[p.Rate] == nil {
			byRate[p.Rate] = map[string]FailSweepPoint{}
		}
		byRate[p.Rate][p.Scheduler] = p
	}
	for rate, cells := range byRate {
		ours := cells["OURS"]
		for name, p := range cells {
			if name != "OURS" && p.Framerate >= ours.Framerate {
				t.Errorf("rate %.1f: %s fps %.2f >= OURS %.2f", rate, name, p.Framerate, ours.Framerate)
			}
		}
	}
	// The clean baseline must show no recovery activity; the chaotic rates
	// must show the injected degradation being measured.
	for _, p := range points {
		if p.Rate == 0 && (p.Redispatched != 0 || p.MTTR != 0) {
			t.Errorf("rate 0 %s: redispatched=%d MTTR=%v, want zero", p.Scheduler, p.Redispatched, p.MTTR)
		}
	}
	// Rate 3's schedule contains crashes at this scale, so recovery must be
	// visible: bounced tasks and a measured repair time.
	if p := byRate[3]["OURS"]; p.MTTR == 0 || p.Redispatched == 0 {
		t.Errorf("rate 3 OURS: MTTR=%v redispatched=%d, want measured recovery", p.MTTR, p.Redispatched)
	}
}

// TestFaultScheduleShapes pins the schedule derivation: rate 0 and tiny
// horizons yield no faults, counts scale with rate, every fault lands inside
// the horizon, and the same inputs reproduce the same schedule.
func TestFaultScheduleShapes(t *testing.T) {
	length := units.Time(60 * units.Second)
	if fs := FaultSchedule(8, length, 0, 1); fs != nil {
		t.Errorf("rate 0 produced %d faults", len(fs))
	}
	if fs := FaultSchedule(1, length, 4, 1); fs != nil {
		t.Error("single-node cluster got a fault schedule")
	}
	fs := FaultSchedule(8, length, 4, 1)
	if len(fs) != 4 {
		t.Errorf("4 faults/min over 60s produced %d faults, want 4", len(fs))
	}
	for _, f := range fs {
		if f.At < 0 || f.At > length {
			t.Errorf("fault at %v outside horizon %v", f.At, length)
		}
		if int(f.Node) < 0 || int(f.Node) >= 8 {
			t.Errorf("fault targets node %d of 8", f.Node)
		}
	}
	if !reflect.DeepEqual(fs, FaultSchedule(8, length, 4, 1)) {
		t.Error("identical inputs produced different schedules")
	}
	if reflect.DeepEqual(fs, FaultSchedule(8, length, 4, 2)) {
		t.Error("different seeds produced identical schedules")
	}
}

// TestFailureSweepUsesScenario2 pins the sweep to the paper's contended
// scenario so the acceptance comparison stays meaningful.
func TestFailureSweepUsesScenario2(t *testing.T) {
	cfg := workload.Scenario(workload.Scenario2, failSweepScale)
	if cfg.ID != workload.Scenario2 {
		t.Fatalf("scenario = %v", cfg.ID)
	}
	if cfg.Nodes <= 1 {
		t.Fatalf("scenario 2 has %d nodes; the sweep needs a cluster", cfg.Nodes)
	}
}
