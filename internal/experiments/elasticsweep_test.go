package experiments

import (
	"bytes"
	"testing"
)

// TestElasticSweepAcceptance pins §5.12's headline claim end to end: on the
// diurnal workload the elastic fleet matches the peak-provisioned fixed
// fleet's interactive p95 (within 5%) at ≥30% fewer node-hours, with zero
// tasks lost across every drain — and it gets there by actually cycling the
// fleet (scale-ups, completed drains, bring-up warms all non-zero).
func TestElasticSweepAcceptance(t *testing.T) {
	fleets := []int{10, 12}
	points := ElasticSweepN(fleets, 1.0, 4)
	if len(points) != 2*len(fleets) {
		t.Fatalf("got %d points, want %d", len(points), 2*len(fleets))
	}
	for i := 0; i < len(points); i += 2 {
		fixed, elastic := points[i], points[i+1]
		if fixed.Mode != "fixed" || elastic.Mode != "elastic" || fixed.Nodes != elastic.Nodes {
			t.Fatalf("cell layout broken: %+v / %+v", fixed, elastic)
		}
		n := fixed.Nodes
		if fixed.Lost != 0 {
			t.Errorf("fleet %d fixed: lost %d tasks", n, fixed.Lost)
		}
		if elastic.Lost != 0 {
			t.Errorf("fleet %d elastic: lost %d tasks across %d drains, want 0",
				n, elastic.Lost, elastic.Drains)
		}
		if limit := fixed.P95 + fixed.P95/20; elastic.P95 > limit {
			t.Errorf("fleet %d: elastic p95 %v exceeds fixed %v by more than 5%%",
				n, elastic.P95, fixed.P95)
		}
		if elastic.SavingsPct < 30 {
			t.Errorf("fleet %d: savings %.1f%%, want >= 30%%", n, elastic.SavingsPct)
		}
		if elastic.ScaleUps == 0 || elastic.DrainsCompleted == 0 {
			t.Errorf("fleet %d: fleet never cycled (ups=%d drains-completed=%d)",
				n, elastic.ScaleUps, elastic.DrainsCompleted)
		}
		if elastic.Drains != elastic.DrainsCompleted {
			t.Errorf("fleet %d: %d drains started, %d completed", n, elastic.Drains, elastic.DrainsCompleted)
		}
		if elastic.BringupWarms == 0 {
			t.Errorf("fleet %d: no bring-up warms; scale-ups came up cold", n)
		}
		if elastic.MinActive >= n {
			t.Errorf("fleet %d: MinActive %d — the fleet never shrank", n, elastic.MinActive)
		}
	}
}

// TestElasticSweepDeterministicAcrossWorkers pins the bit-identical CSV
// guarantee at -parallel 1, 4, and 8: every cell is an independent
// virtual-time simulation into an index-addressed slot, so the worker count
// must not leak into any byte of the output.
func TestElasticSweepDeterministicAcrossWorkers(t *testing.T) {
	fleets := []int{10, 12}
	var first []byte
	for _, workers := range []int{1, 4, 8} {
		var buf bytes.Buffer
		if err := ElasticSweepCSV(&buf, ElasticSweepN(fleets, 0.25, workers)); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Errorf("workers=%d: CSV differs from workers=1 output", workers)
		}
	}
}
