package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/fracshare"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// The frac sweep (§5.13) prices fractional capacity on a mixed workload:
// several interactive sessions hold their nodes near the frame period while
// a steady cold batch backlog oversubscribes the cluster. Three comparisons
// fall out of one run per mode:
//
//   - Batch scheduling vs late binding: the FCFS family commits every task
//     to a node FIFO at arrival, so residency mispredictions over a deep
//     backlog drain the FIFOs unevenly — nodes go idle behind another
//     node's convoy while committed work still queues there. DFRS re-binds
//     each window and packs nodes with fractional slots, the utilization
//     and stretch gap the DFRS paper measures against batch scheduling.
//   - ε-guard idle: OURS refuses to fill recently-interactive nodes with
//     batch misses; GuardIdle vs QueueIdle splits the idle it buys.
//   - Co-scheduling: OURS+co runs one cached batch guest at CoShare inside
//     the guard window, preempted to share zero the instant a frame lands —
//     reclaiming guard idle into batch throughput at (ideally) no
//     interactive tail cost.
var fracSweepModes = []string{"FCFS", "FCFSL", "DFRS", "OURS", "OURS+co"}

const (
	fracNodes = 8
	// fracDatasets × 1 GB at fracChunk chunks against fracNodes × 2 GB of
	// memory: dataset 1 is the interactive working set and fits every node
	// warm; the batch backlog cycles the rest, slightly overflowing cluster
	// memory so reuse is marginal — batch residency predictions keep going
	// stale, which is what disperses the FCFS family's committed FIFOs.
	fracDatasets = 18
	fracChunk    = 256 * units.MB
	// fracSessions concurrent viewers of dataset 1 at fracPeriod per frame,
	// spanning the whole horizon — the interactive load the ε-guard protects.
	// One shared dataset keeps the interactive footprint cache-resident under
	// every policy, so the comparison ranks batch scheduling, not whether a
	// policy thrashes the viewers' chunks.
	fracSessions = 4
	fracPeriod   = 120 * units.Millisecond
	// The batch backlog lands as one burst of fracBatchPerSecond × horizon
	// jobs just after the sessions start — slightly more cold work than the
	// cluster can finish. A burst, not a trickle, is what exposes the
	// commit-at-arrival pathology: the FCFS family binds the whole backlog
	// to node FIFOs at t≈2s on predictions that then go stale, and the nodes
	// whose FIFOs drain early idle for the rest of the run because no new
	// arrivals refill them. DFRS holds the excess in the queue and re-binds
	// every window, so a free slot anywhere always pulls the next job.
	fracBatchPerSecond = 3
)

// FracSweepPoint is one mode's outcome on the shared mixed workload.
type FracSweepPoint struct {
	Mode string

	Fps float64
	// P95 is the interactive latency tail — the co-scheduling acceptance
	// gate: OURS+co must hold OURS's tail while reclaiming its guard idle.
	P95 units.Duration
	// Utilization is the mean node busy fraction: the busy-share integral
	// for fractional modes, executed-work time over nodes × horizon for
	// serial ones — both "fraction of node-time occupied".
	Utilization    float64
	BatchCompleted int64
	// StretchMean is the mean batch slowdown relative to running alone
	// (latency over the job's largest task execution) — the DFRS fairness
	// metric.
	StretchMean float64

	// GuardIdle/QueueIdle split idle-with-pending-batch time (§5.13); both
	// zero for the on-arrival FCFS family.
	GuardIdle units.Duration
	QueueIdle units.Duration
	// ReclaimedPct is the share of guard idle the co-scheduled guests ran
	// in; CoScheduled/CoCompleted/Preemptions summarize the guest traffic.
	ReclaimedPct float64
	CoScheduled  int64
	CoCompleted  int64
	Preemptions  int64
}

// fracWorkload builds the shared schedule over `seconds`: fracSessions
// staggered interactive sessions spanning the horizon plus one burst of
// batch jobs at t≈2s cycling the cold datasets.
func fracWorkload(seconds int) *workload.Schedule {
	horizon := units.Time(seconds) * units.Time(units.Second)
	wl := &workload.Schedule{Length: horizon}
	action := core.ActionID(1)
	for s := 0; s < fracSessions; s++ {
		a := workload.Action{
			ID:      action,
			Dataset: 1,
			Tenant:  core.TenantID(s % 3),
			Start:   units.Time(0).Add(units.Second + units.Duration(s)*500*units.Millisecond),
			End:     horizon.Add(-units.Second),
			Period:  fracPeriod,
		}
		action++
		wl.Requests = append(wl.Requests, a.Requests()...)
	}
	for b := 0; b < seconds*fracBatchPerSecond; b++ {
		wl.Requests = append(wl.Requests, workload.Request{
			At:      units.Time(0).Add(2*units.Second + units.Duration(b)*units.Millisecond),
			Class:   core.Batch,
			Action:  action,
			Tenant:  3,
			Dataset: volume.DatasetID(2 + b%(fracDatasets-1)),
		})
		action++
	}
	sort.SliceStable(wl.Requests, func(i, j int) bool { return wl.Requests[i].At < wl.Requests[j].At })
	return wl
}

// fracConfig builds one mode's cluster. DFRS pairs with slots-only
// fracshare (CoShare < 0: no guests); OURS+co adds guest co-scheduling at
// the default share; the serial modes leave FracShare nil.
func fracConfig(mode string) sim.Config {
	name := mode
	if mode == "OURS+co" {
		name = "OURS"
	}
	sched, err := SchedulerByName(name)
	if err != nil {
		panic(err)
	}
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: fracChunk})
	if o, ok := sched.(core.DecompositionOverrider); ok {
		policy = o.Decomposition(fracNodes)
	}
	lib := volume.NewLibrary()
	for i := 1; i <= fracDatasets; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("frac-%d", i), units.GB, policy))
	}
	cfg := sim.Config{
		Nodes:     fracNodes,
		MemQuota:  2 * units.GB,
		Model:     core.System2CostModel(),
		Scheduler: sched,
		Library:   lib,
		Seed:      7,
		Jitter:    Jitter,
		Preload:   true,
	}
	switch mode {
	case "DFRS":
		cfg.FracShare = &fracshare.Config{CoShare: -1}
	case "OURS+co":
		cfg.FracShare = &fracshare.Config{}
	}
	return cfg
}

// runFracCell plays the shared workload under one mode.
func runFracCell(mode string, seconds int) FracSweepPoint {
	rep := sim.New(fracConfig(mode)).Run(fracWorkload(seconds), 0)
	p := FracSweepPoint{
		Mode:           mode,
		Fps:            rep.MeanFramerate(),
		P95:            rep.Interactive.LatencyHist.P95(),
		Utilization:    rep.Utilization(),
		BatchCompleted: rep.Batch.Completed,
		StretchMean:    rep.BatchStretch.Mean(),
		GuardIdle:      rep.GuardIdle,
		QueueIdle:      rep.QueueIdle,
	}
	if fs := rep.FracShare; fs != nil {
		// The busy-share integral is the occupancy a fractional node actually
		// delivered; BusyNodeTime would credit started-but-unfinished work.
		var busy units.Duration
		for _, d := range fs.NodeBusy {
			busy += d
		}
		p.Utilization = busy.Seconds() / (float64(rep.Nodes) * rep.Horizon.Seconds())
		p.ReclaimedPct = fs.ReclaimedPct(rep.GuardIdle)
		p.CoScheduled = fs.CoScheduled
		p.CoCompleted = fs.CoCompleted
		p.Preemptions = fs.Preemptions
	}
	return p
}

// FracSweep runs the frac sweep sequentially.
func FracSweep(scale float64) []FracSweepPoint {
	return FracSweepN(scale, 1)
}

// FracSweepN is FracSweep with an explicit worker count. Every mode is an
// independent virtual-time simulation into an index-addressed slot, so
// results are bit-identical at any worker count.
func FracSweepN(scale float64, workers int) []FracSweepPoint {
	seconds := int(90 * scale)
	if seconds < 20 {
		seconds = 20
	}
	out := make([]FracSweepPoint, len(fracSweepModes))
	ForEach(workers, len(out), func(cell int) {
		out[cell] = runFracCell(fracSweepModes[cell], seconds)
	})
	return out
}

// WriteFracSweep runs and prints the frac sweep.
func WriteFracSweep(w io.Writer, scale float64, workers int) []FracSweepPoint {
	points := FracSweepN(scale, workers)
	PrintFracSweep(w, points)
	return points
}

// PrintFracSweep prints already-computed frac-sweep points.
func PrintFracSweep(w io.Writer, points []FracSweepPoint) {
	fmt.Fprintf(w, "frac sweep — mixed interactive + batch backlog: batch scheduling vs DFRS vs ε-guard co-scheduling (§5.13)\n")
	fmt.Fprintf(w, "  %-8s %6s %9s %6s %7s %8s %10s %10s %9s %6s %6s %8s\n",
		"mode", "fps", "p95", "util", "batch", "stretch",
		"guard-idle", "queue-idle", "reclaimed", "co", "done", "preempt")
	for _, p := range points {
		fmt.Fprintf(w, "  %-8s %6.2f %9v %5.1f%% %7d %8.2f %10v %10v %8.1f%% %6d %6d %8d\n",
			p.Mode, p.Fps, p.P95.Std().Round(time.Millisecond), 100*p.Utilization,
			p.BatchCompleted, p.StretchMean,
			p.GuardIdle.Std().Round(10*time.Millisecond), p.QueueIdle.Std().Round(10*time.Millisecond),
			p.ReclaimedPct, p.CoScheduled, p.CoCompleted, p.Preemptions)
	}
	fmt.Fprintln(w)
}

// FracSweepCSV writes the frac sweep as CSV.
func FracSweepCSV(w io.Writer, points []FracSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"mode", "fps", "interactive_p95_ms", "utilization_pct", "batch_completed",
		"stretch_mean", "guard_idle_s", "queue_idle_s", "reclaimed_pct",
		"co_scheduled", "co_completed", "preemptions",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			p.Mode, f(p.Fps), f(p.P95.Milliseconds()), f(100 * p.Utilization),
			i(p.BatchCompleted), f(p.StretchMean),
			f(p.GuardIdle.Seconds()), f(p.QueueIdle.Seconds()), f(p.ReclaimedPct),
			i(p.CoScheduled), i(p.CoCompleted), i(p.Preemptions),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
