package experiments

import (
	"reflect"
	"testing"
)

// replSweepKs/replSweepRates: the ISSUE's acceptance grid — a clean baseline
// plus a crash-heavy rate where re-homing is observable — at the failsweep's
// scale so cells stay comparable with that suite.
var (
	replSweepKs    = []int{1, 2, 3}
	replSweepRates = []float64{0, 4}
)

const replSweepScale = 0.5

// TestReplicaSweepDeterministicAcrossWorkers: every metric in the sweep is
// virtual-time, so the points must be bit-identical whether the cells run
// sequentially or concurrently, and across repeated runs — the same golden
// property the failure sweep guarantees.
func TestReplicaSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	seq := ReplicaSweepN(replSweepKs, replSweepRates, replSweepScale, 1)
	par := ReplicaSweepN(replSweepKs, replSweepRates, replSweepScale, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("sweep diverges across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	again := ReplicaSweepN(replSweepKs, replSweepRates, replSweepScale, 4)
	if !reflect.DeepEqual(par, again) {
		t.Errorf("sweep not reproducible:\nfirst: %+v\nagain: %+v", par, again)
	}
}

// TestReplicaSweepAcceptance encodes the PR's acceptance criteria on the
// deterministic sweep: at k=2 OURS must recover no worse than 1.2× FCFSU
// (raw MTTR and post-crash below-target time) while retaining at least 90%
// of its no-fault framerate advantage over FCFSU.
func TestReplicaSweepAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := ReplicaSweepN(replSweepKs, replSweepRates, replSweepScale, DefaultWorkers())
	cell := func(rate float64, k int) ReplicaSweepPoint {
		for _, p := range points {
			if p.Rate == rate && p.K == k {
				return p
			}
		}
		t.Fatalf("no cell for rate=%v k=%d", rate, k)
		return ReplicaSweepPoint{}
	}
	faultRate := replSweepRates[len(replSweepRates)-1]
	fcfsu := cell(faultRate, 0)
	k1 := cell(faultRate, 1)
	k2 := cell(faultRate, 2)

	if lim := fcfsu.MTTR + fcfsu.MTTR/5; k2.MTTR > lim {
		t.Errorf("k=2 MTTR %v exceeds 1.2× FCFSU's %v", k2.MTTR, fcfsu.MTTR)
	}
	if lim := fcfsu.DipBelow + fcfsu.DipBelow/5; k2.DipBelow > lim {
		t.Errorf("k=2 dip duration %v exceeds 1.2× FCFSU's %v", k2.DipBelow, fcfsu.DipBelow)
	}

	// No-fault framerate advantage retention: replication's spread placements
	// must not trade away the scheduler's headline win.
	base := cell(0, 0)
	adv1 := cell(0, 1).Framerate - base.Framerate
	adv2 := cell(0, 2).Framerate - base.Framerate
	if adv1 <= 0 {
		t.Fatalf("OURS k=1 shows no no-fault advantage over FCFSU (%.2f vs %.2f)",
			cell(0, 1).Framerate, base.Framerate)
	}
	if adv2 < 0.9*adv1 {
		t.Errorf("k=2 retains %.2f fps of the %.2f fps no-fault advantage, want ≥90%%", adv2, adv1)
	}

	// Replication must actually fire under crashes — k≥2 re-homes chunks the
	// single-home run loses — and capping at the re-home can only shorten the
	// service-impact MTTR, never lengthen it.
	if k1.ChunksRehomed != 0 {
		t.Errorf("k=1 re-homed %d chunks; the layer should be off", k1.ChunksRehomed)
	}
	if k2.ChunksRehomed == 0 {
		t.Errorf("k=2 re-homed no chunks at rate %.1f", faultRate)
	}
	if k2.ServiceMTTR > k2.MTTR {
		t.Errorf("k=2 ServiceMTTR %v exceeds raw MTTR %v", k2.ServiceMTTR, k2.MTTR)
	}
	if k2.ServiceMTTR >= k1.ServiceMTTR && k2.ChunksRehomed > 0 {
		t.Errorf("k=2 ServiceMTTR %v not improved over k=1's %v despite %d warm re-homes",
			k2.ServiceMTTR, k1.ServiceMTTR, k2.ChunksRehomed)
	}

	// Clean baseline rows must show no recovery or replication activity.
	for _, p := range points {
		if p.Rate == 0 && (p.ChunksRehomed != 0 || p.ChunksReseeded != 0 || p.MTTR != 0 || p.ServiceMTTR != 0) {
			t.Errorf("rate 0 %s k=%d: rehome=%d reseed=%d MTTR=%v svc=%v, want all zero",
				p.Scheduler, p.K, p.ChunksRehomed, p.ChunksReseeded, p.MTTR, p.ServiceMTTR)
		}
	}
}

// TestReplicaSweepRowLayout pins the output contract: rows grouped by rate,
// FCFSU (K=0) first, then OURS in ks order — what PrintReplicaSweep and the
// CSV rely on.
func TestReplicaSweepRowLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs full simulations")
	}
	points := ReplicaSweepN([]int{1, 2}, []float64{0, 4}, 0.2, 2)
	wantK := []int{0, 1, 2, 0, 1, 2}
	wantRate := []float64{0, 0, 0, 4, 4, 4}
	if len(points) != len(wantK) {
		t.Fatalf("got %d points, want %d", len(points), len(wantK))
	}
	for i, p := range points {
		if p.K != wantK[i] || p.Rate != wantRate[i] {
			t.Errorf("row %d: (rate=%v k=%d), want (rate=%v k=%d)", i, p.Rate, p.K, wantRate[i], wantK[i])
		}
		if p.K == 0 && p.Scheduler != "FCFSU" {
			t.Errorf("row %d: K=0 scheduler = %s", i, p.Scheduler)
		}
		if p.K > 0 && p.Scheduler != "OURS" {
			t.Errorf("row %d: K=%d scheduler = %s", i, p.K, p.Scheduler)
		}
	}
}
