package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// randomQueue builds a reproducible random job queue over nDatasets
// datasets with the given chunk counts.
func randomQueue(rng *rand.Rand, nJobs, nDatasets, maxChunks int) []*core.Job {
	queue := make([]*core.Job, nJobs)
	for j := range queue {
		class := core.Interactive
		if rng.Intn(3) == 0 {
			class = core.Batch
		}
		ds := volume.DatasetID(rng.Intn(nDatasets) + 1)
		chunks := rng.Intn(maxChunks) + 1
		job := &core.Job{
			ID:      core.JobID(j + 1),
			Class:   class,
			Action:  core.ActionID(rng.Intn(8) + 1),
			Dataset: ds,
			Issued:  units.Time(rng.Int63n(int64(units.Second))),
		}
		job.Tasks = make([]core.Task, chunks)
		for i := range job.Tasks {
			job.Tasks[i] = core.Task{
				Job: job, Index: i,
				Chunk: volume.ChunkID{Dataset: ds, Index: i},
				Size:  units.Bytes(rng.Intn(7)+1) * 64 * units.MB,
			}
		}
		job.Remaining = chunks
		queue[j] = job
	}
	return queue
}

// Every scheduler, fed arbitrary queues and partially warmed head states,
// must satisfy the engine's contract: returned assignments reference
// distinct previously-unassigned tasks from the queue, marked assigned,
// placed on alive in-range nodes.
func TestQuickSchedulerContract(t *testing.T) {
	names := []string{"FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS", "DELAY"}
	f := func(seed int64, rawNodes, rawJobs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := int(rawNodes%15) + 2
		nJobs := int(rawJobs%20) + 1
		for _, name := range names {
			sched, err := SchedulerByName(name)
			if err != nil {
				return false
			}
			head := core.NewHeadState(nodes, 2*units.GB, core.System1CostModel())
			// Warm a few random predicted caches.
			for i := 0; i < rng.Intn(10); i++ {
				head.Caches[rng.Intn(nodes)].Insert(
					volume.ChunkID{Dataset: volume.DatasetID(rng.Intn(4) + 1), Index: rng.Intn(4)},
					units.Bytes(rng.Intn(7)+1)*64*units.MB)
			}
			// Occasionally fail a node.
			if nodes > 2 && rng.Intn(3) == 0 {
				head.MarkFailed(core.NodeID(rng.Intn(nodes)))
			}
			queue := randomQueue(rng, nJobs, 4, 4)
			now := units.Time(rng.Int63n(int64(units.Second)))

			seen := map[*core.Task]bool{}
			for _, a := range sched.Schedule(now, queue, head) {
				if a.Task == nil || seen[a.Task] {
					t.Logf("%s: nil or duplicate task", name)
					return false
				}
				seen[a.Task] = true
				if !a.Task.Assigned {
					t.Logf("%s: assignment not marked", name)
					return false
				}
				if a.Node < 0 || int(a.Node) >= nodes {
					t.Logf("%s: node %d out of range", name, a.Node)
					return false
				}
				if !head.Alive(a.Node) {
					t.Logf("%s: assigned to failed node %d", name, a.Node)
					return false
				}
			}
			// Tasks not in the seen set must remain unassigned.
			for _, j := range queue {
				for i := range j.Tasks {
					tk := &j.Tasks[i]
					if tk.Assigned != seen[tk] {
						t.Logf("%s: task marks inconsistent with returned assignments", name)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// OURS must assign every interactive task every cycle (its core
// responsiveness guarantee), for any queue, as long as a node is alive.
func TestQuickOursAssignsAllInteractive(t *testing.T) {
	f := func(seed int64, rawJobs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sched := core.NewLocalityScheduler(0)
		head := core.NewHeadState(4, 2*units.GB, core.System1CostModel())
		queue := randomQueue(rng, int(rawJobs%25)+1, 5, 4)
		sched.Schedule(0, queue, head)
		for _, j := range queue {
			if j.Class != core.Interactive {
				continue
			}
			for i := range j.Tasks {
				if !j.Tasks[i].Assigned {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The head's Available table must be nondecreasing under commits: an
// assignment can only push a node's availability later.
func TestQuickCommitMonotone(t *testing.T) {
	f := func(seed int64, rawJobs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		head := core.NewHeadState(4, 2*units.GB, core.System1CostModel())
		queue := randomQueue(rng, int(rawJobs%10)+1, 3, 4)
		for _, j := range queue {
			for i := range j.Tasks {
				k := core.NodeID(rng.Intn(4))
				before := head.Available[k]
				head.CommitAssign(&j.Tasks[i], k, 0)
				if head.Available[k] <= before && before > 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
