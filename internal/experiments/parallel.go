package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// DefaultWorkers is the worker count the -parallel flags default to: one
// worker per schedulable CPU. Each simulation run is single-threaded, so
// this fills the machine without oversubscribing it — oversubscription
// would contend the wall-clock scheduling-cost measurements (Table III,
// Figs. 8–9); see EXPERIMENTS.md for the measurement policy.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach invokes fn(i) for every i in [0, n) using up to workers
// goroutines, returning when all calls have completed. With workers <= 1
// (or n <= 1) it degenerates to a plain sequential loop on the calling
// goroutine. fn must be safe to call concurrently with itself; each index
// is dispatched exactly once. Because callers write results into
// index-addressed slots, output order is independent of interleaving — the
// foundation of the bit-identical parallel/sequential guarantee.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunScenarioAllN is RunScenarioAll with an explicit worker count: each
// scheduler's run of the scenario is an independent simulation, so the six
// policies execute concurrently. Reports come back in the canonical
// Schedulers() order regardless of completion order, and every virtual-time
// metric is bit-identical to a sequential run — each run owns a fresh
// engine, scheduler, and workload; only the read-only scenario config is
// shared.
func RunScenarioAllN(id workload.ScenarioID, scale float64, workers int) []*metrics.Report {
	cfg := workload.Scenario(id, scale)
	scheds := Schedulers()
	out := make([]*metrics.Report, len(scheds))
	ForEach(workers, len(scheds), func(i int) {
		out[i] = sim.RunScenario(cfg, scheds[i], Jitter)
	})
	return out
}

// RunScenarios runs every (scenario, scheduler) pair across the given
// scenario IDs with up to workers concurrent simulations — the fan-out
// cmd/vizbench uses, where all cells of Figs. 4–7 and Table III are
// mutually independent. The result maps each scenario to its reports in
// Schedulers() order.
func RunScenarios(ids []workload.ScenarioID, scale float64, workers int) map[workload.ScenarioID][]*metrics.Report {
	nSched := len(Schedulers())
	out := make(map[workload.ScenarioID][]*metrics.Report, len(ids))
	cfgs := make([]workload.ScenarioConfig, len(ids))
	for i, id := range ids {
		cfgs[i] = workload.Scenario(id, scale)
		out[id] = make([]*metrics.Report, nSched)
	}
	ForEach(workers, len(ids)*nSched, func(cell int) {
		si, ki := cell/nSched, cell%nSched
		// Fresh scheduler instance per cell: scheduler scratch state is not
		// shareable across concurrent runs.
		out[ids[si]][ki] = sim.RunScenario(cfgs[si], Schedulers()[ki], Jitter)
	})
	return out
}

// fig8Names are the schedulers Fig. 8 compares.
var fig8Names = []string{"FCFSU", "FCFSL", "OURS"}

// fig8Libraries builds the chunk libraries the Fig. 8 sweep needs, one per
// distinct decomposition policy rather than one per (point, scheduler)
// cell: the 16 x 4 GB dataset set is identical at every sweep point, and a
// Library is immutable once built, so FCFSL and OURS share the 512 MB
// max-chunk library while FCFSU gets its uniform per-node split. The
// result maps scheduler name -> library.
func fig8Libraries() map[string]*volume.Library {
	byPolicy := make(map[string]*volume.Library)
	libs := make(map[string]*volume.Library, len(fig8Names))
	for _, name := range fig8Names {
		sched, err := SchedulerByName(name)
		if err != nil {
			panic(err)
		}
		var policy volume.Decomposition = volume.MaxChunk{Chkmax: 512 * units.MB}
		if o, ok := sched.(core.DecompositionOverrider); ok {
			policy = o.Decomposition(32)
		}
		lib := byPolicy[policy.Name()]
		if lib == nil {
			lib = volume.NewLibrary()
			for i := 1; i <= 16; i++ {
				lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("ds-%d", i), 4*units.GB, policy))
			}
			byPolicy[policy.Name()] = lib
		}
		libs[name] = lib
	}
	return libs
}

// runFig8Cell runs one (action count, scheduler) cell of the Fig. 8 sweep
// and returns its average scheduling cost per job.
func runFig8Cell(name string, lib *volume.Library, n, seconds int) time.Duration {
	sched, err := SchedulerByName(name)
	if err != nil {
		panic(err)
	}
	eng := sim.New(sim.Config{
		Nodes:     32,
		MemQuota:  8 * units.GB,
		Model:     core.System2CostModel(),
		Scheduler: sched,
		Library:   lib,
		Jitter:    Jitter,
		Seed:      int64(n),
		Preload:   true,
	})
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(units.Duration(seconds) * units.Second),
		Datasets:          16,
		ContinuousActions: n,
		Seed:              int64(1000 + n),
	})
	return eng.Run(wl, 0).AvgSchedCostPerJob()
}

// Fig8ActionSweepN is Fig8ActionSweep with an explicit worker count; all
// (point, scheduler) cells run concurrently. Note the Cost values are
// wall-clock measurements — record reference numbers with workers == 1.
func Fig8ActionSweepN(actionCounts []int, seconds, workers int) []Fig8Point {
	libs := fig8Libraries()
	out := make([]Fig8Point, len(actionCounts))
	costs := make([][]time.Duration, len(actionCounts))
	for i := range costs {
		costs[i] = make([]time.Duration, len(fig8Names))
	}
	ForEach(workers, len(actionCounts)*len(fig8Names), func(cell int) {
		pi, ni := cell/len(fig8Names), cell%len(fig8Names)
		name := fig8Names[ni]
		costs[pi][ni] = runFig8Cell(name, libs[name], actionCounts[pi], seconds)
	})
	for pi, n := range actionCounts {
		point := Fig8Point{Actions: n, Cost: make(map[string]time.Duration, len(fig8Names))}
		for ni, name := range fig8Names {
			point.Cost[name] = costs[pi][ni]
		}
		out[pi] = point
	}
	return out
}

// runFig9Point runs one dataset count of the Fig. 9 sweep.
func runFig9Point(n, seconds int) Fig9Point {
	sched := core.NewLocalityScheduler(0)
	policy := volume.MaxChunk{Chkmax: 512 * units.MB}
	lib := volume.NewLibrary()
	for i := 1; i <= n; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), fmt.Sprintf("ds-%d", i), 8*units.GB, policy))
	}
	eng := sim.New(sim.Config{
		Nodes:     16,
		MemQuota:  8 * units.GB,
		Model:     core.System2CostModel(),
		Scheduler: sched,
		Library:   lib,
		Jitter:    Jitter,
		Seed:      int64(n),
		Preload:   true,
	})
	hot := n
	if hot > 8 {
		hot = 8
	}
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(units.Duration(seconds) * units.Second),
		Datasets:          n,
		ContinuousActions: 4,
		TargetBatch:       40 * seconds,
		BatchFramesMin:    20, BatchFramesMax: 60,
		HotDatasets: hot, HotFraction: 0.95,
		BatchUniform: true,
		Seed:         int64(2000 + n),
	})
	rep := eng.Run(wl, 0)
	return Fig9Point{
		Datasets:  n,
		Cost:      rep.AvgSchedCostPerJob(),
		Framerate: rep.MeanFramerate(),
		Latency:   rep.Interactive.Latency.Mean(),
	}
}

// Fig9DatasetSweepN is Fig9DatasetSweep with an explicit worker count; the
// sweep points run concurrently. As with Fig. 8, the Cost column is
// wall-clock — record reference numbers with workers == 1; Framerate and
// Latency are virtual-time and identical at any worker count.
func Fig9DatasetSweepN(datasetCounts []int, seconds, workers int) []Fig9Point {
	out := make([]Fig9Point, len(datasetCounts))
	ForEach(workers, len(datasetCounts), func(i int) {
		out[i] = runFig9Point(datasetCounts[i], seconds)
	})
	return out
}
