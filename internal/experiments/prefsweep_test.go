package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestPrefetchSweepFirstFrameReduction is the §5.8 acceptance gate: at the
// default scenario (3-of-4 chunks resident, load 1.0) predictive warming
// must cut mean first-frame latency by at least 20% without costing any
// demand completions.
func TestPrefetchSweepFirstFrameReduction(t *testing.T) {
	points := PrefetchSweep([]int{3}, []float64{1.0})
	if len(points) != 2 {
		t.Fatalf("expected off+on points, got %d", len(points))
	}
	off, on := points[0], points[1]
	if off.Mode != "off" || on.Mode != "on" {
		t.Fatalf("mode order wrong: %q, %q", off.Mode, on.Mode)
	}
	if on.Completed != off.Completed {
		t.Fatalf("prefetching changed demand completions: off=%d on=%d", off.Completed, on.Completed)
	}
	if off.FirstFrame <= 0 {
		t.Fatalf("baseline first-frame latency not measured: %v", off.FirstFrame)
	}
	if got, limit := float64(on.FirstFrame), 0.8*float64(off.FirstFrame); got > limit {
		t.Fatalf("first-frame reduction below 20%%: off=%v on=%v", off.FirstFrame, on.FirstFrame)
	}
	if on.Hits+on.HiddenHits == 0 {
		t.Fatalf("improvement without recorded prefetch hits: %+v", on)
	}
}

// TestPrefetchSweepOffCellsInert: every "off" cell must report zeroed
// prefetch lifecycle counters — the demand-only baseline really ran
// demand-only.
func TestPrefetchSweepOffCellsInert(t *testing.T) {
	for _, p := range PrefetchSweep([]int{2, 3}, []float64{1.0}) {
		if p.Mode != "off" {
			continue
		}
		if p.Issued != 0 || p.Loaded != 0 || p.Hits != 0 || p.HiddenHits != 0 || p.Wasted != 0 || p.BytesMoved != 0 {
			t.Fatalf("off cell carries prefetch activity: %+v", p)
		}
	}
}

// TestPrefetchSweepDeterministicAcrossWorkers: the sweep's index-addressed
// cells must yield bit-identical points (and therefore bytes) no matter how
// many workers share the grid.
func TestPrefetchSweepDeterministicAcrossWorkers(t *testing.T) {
	quotas := []int{2, 3}
	loads := []float64{0.5, 1.0, 2.0}
	seq := PrefetchSweepN(quotas, loads, 1)
	par := PrefetchSweepN(quotas, loads, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep differs across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	var a, b bytes.Buffer
	if err := PrefetchSweepCSV(&a, seq); err != nil {
		t.Fatal(err)
	}
	if err := PrefetchSweepCSV(&b, par); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV output differs across worker counts")
	}
	if !strings.HasPrefix(a.String(), "quota_chunks,load,mode,") {
		t.Fatalf("unexpected CSV header: %q", strings.SplitN(a.String(), "\n", 2)[0])
	}
}

// TestPrefetchSweepPrint smoke-checks the human-readable table.
func TestPrefetchSweepPrint(t *testing.T) {
	var buf bytes.Buffer
	points := WritePrefetchSweep(&buf, []int{3}, []float64{1.0}, 2)
	if len(points) != 2 {
		t.Fatalf("expected 2 points, got %d", len(points))
	}
	out := buf.String()
	for _, want := range []string{"Prefetch sweep", "3x512M", "first-frame", "off", "on"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
