// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): the pipeline-stage breakdown of Fig. 2, the scenario
// configurations of Table II, the per-scheduler scenario results of
// Figs. 4–7, the hit-rate/scheduling-cost summary of Table III, and the
// scaling sweeps of Figs. 8 and 9. Both cmd/vizbench and the repository's
// benchmarks drive these entry points, so the printed artifacts and the
// benchmarked code paths are the same.
package experiments

import (
	"fmt"
	"io"
	"time"

	"vizsched/internal/baselines"
	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// Schedulers returns fresh instances of all six scheduling policies in the
// paper's presentation order: FS, SF, FCFS, FCFSU, FCFSL, OURS.
func Schedulers() []core.Scheduler {
	return []core.Scheduler{
		baselines.NewFS(0),
		baselines.NewSF(0),
		baselines.FCFS{},
		baselines.FCFSU{},
		baselines.FCFSL{},
		core.NewLocalityScheduler(0),
	}
}

// SchedulerByName returns a fresh instance of the named policy. Beyond the
// paper's six, "DELAY" selects the delay-scheduling extension (the paper's
// reference [26]) and "DFRS" the dynamic fractional resource scheduling
// baseline (§5.13, arXiv:1106.4985).
func SchedulerByName(name string) (core.Scheduler, error) {
	if name == "DELAY" {
		return baselines.NewDelay(0, 0), nil
	}
	if name == "DFRS" {
		return baselines.NewDFRS(0, 0), nil
	}
	for _, s := range Schedulers() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown scheduler %q (want FS, SF, FCFS, FCFSU, FCFSL, OURS, DELAY, or DFRS)", name)
}

// Jitter is the execution-time noise used by all experiment runs; it keeps
// the prediction-correction path honest without breaking determinism.
const Jitter = 0.05

// ScenarioResult is one scheduler's outcome in one scenario: a bar group in
// Figs. 4–7 plus a Table III cell pair.
type ScenarioResult struct {
	Report *metrics.Report
}

// RunScenarioAll runs one scenario under every scheduler at the given scale,
// sequentially. See RunScenarioAllN to use multiple workers.
func RunScenarioAll(id workload.ScenarioID, scale float64) []*metrics.Report {
	return RunScenarioAllN(id, scale, 1)
}

// Fig2Row is one pipeline stage of Fig. 2.
type Fig2Row struct {
	Stage string
	Time  units.Duration
}

// Fig2Pipeline walks one 512 MB chunk through the visualization pipeline on
// both cost models and returns the stage costs — the paper's point being
// the orders-of-magnitude gap between data I/O and everything after it.
func Fig2Pipeline(model core.CostModel, chunk units.Bytes, group int) []Fig2Row {
	return []Fig2Row{
		{"disk -> main memory", model.DiskRate.TimeFor(chunk)},
		{"main memory -> GPU", model.PCIeRate.TimeFor(chunk)},
		{"ray casting", model.RenderTime(chunk)},
		{"image compositing", model.CompositeTime(group)},
		{"dispatch + return", model.TaskOverhead},
	}
}

// WriteFig2 prints the Fig. 2 breakdown for both systems.
func WriteFig2(w io.Writer) {
	for _, sys := range []struct {
		name  string
		model core.CostModel
	}{
		{"System 1 (8-node GTX 285 cluster)", core.System1CostModel()},
		{"System 2 (ANL GPU cluster)", core.System2CostModel()},
	} {
		fmt.Fprintf(w, "Fig 2 — pipeline stage costs, 512MB chunk, 16-node group — %s\n", sys.name)
		for _, r := range Fig2Pipeline(sys.model, 512*units.MB, 16) {
			fmt.Fprintf(w, "  %-22s %12v\n", r.Stage, r.Time.Std())
		}
		m := sys.model
		fmt.Fprintf(w, "  %-22s %12v   (tio dominates: miss/hit = %.0fx)\n\n",
			"total (cold chunk)", m.MissExec(512*units.MB, 16).Std(),
			float64(m.MissExec(512*units.MB, 16))/float64(m.HitExec(512*units.MB, 16)))
	}
}

// WriteTableII prints the scenario configurations and verifies the generated
// workloads hit Table II's job counts.
func WriteTableII(w io.Writer, scale float64) {
	fmt.Fprintf(w, "Table II — four scenarios (scale=%.2f)\n", scale)
	fmt.Fprintf(w, "  %-9s %6s %12s %10s %12s %9s %10s %12s\n",
		"scenario", "nodes", "total mem", "datasets", "total size", "length", "batch", "interactive")
	for id := workload.Scenario1; id <= workload.Scenario4; id++ {
		cfg := workload.Scenario(id, scale)
		wl := workload.Generate(cfg.Spec)
		fmt.Fprintf(w, "  %-9d %6d %12v %10d %12v %8.0fs %10d %12d\n",
			cfg.ID, cfg.Nodes, cfg.TotalMemory(), cfg.DatasetCount, cfg.TotalData(),
			cfg.Spec.Length.Seconds(), wl.BatchCount(), wl.InteractiveCount())
	}
	fmt.Fprintln(w)
}

// WriteScenario runs one scenario under all schedulers and prints the
// corresponding figure (Fig. 4, 5, 6, or 7).
func WriteScenario(w io.Writer, id workload.ScenarioID, scale float64) []*metrics.Report {
	reports := RunScenarioAll(id, scale)
	PrintScenario(w, id, scale, reports)
	return reports
}

// PrintScenario prints one scenario figure from already-computed reports —
// the printing half of WriteScenario, so cmd/vizbench can compute all
// scenarios in parallel and still emit them in canonical order.
func PrintScenario(w io.Writer, id workload.ScenarioID, scale float64, reports []*metrics.Report) {
	fig := map[workload.ScenarioID]string{
		workload.Scenario1: "Fig 4 — Scenario 1 (8 nodes, fully cacheable, interactive only)",
		workload.Scenario2: "Fig 5 — Scenario 2 (8 nodes, 24GB data on 16GB memory, mixed)",
		workload.Scenario3: "Fig 6 — Scenario 3 (64 nodes, light load, mixed)",
		workload.Scenario4: "Fig 7 — Scenario 4 (64 nodes, 1TB heavy load, mixed)",
	}
	fmt.Fprintf(w, "%s  (scale=%.2f, target 33.33 fps)\n", fig[id], scale)
	fmt.Fprintf(w, "  %-6s %9s %12s %12s %12s %9s\n",
		"sched", "fps", "int-latency", "batch-lat", "batch-work", "hit-rate")
	for _, r := range reports {
		fmt.Fprintf(w, "  %-6s %9.2f %12v %12v %12v %8.2f%%\n",
			r.Scheduler, r.MeanFramerate(),
			r.Interactive.Latency.Mean().Std().Round(time.Millisecond),
			r.Batch.Latency.Mean().Std().Round(time.Millisecond),
			r.Batch.Working.Mean().Std().Round(time.Millisecond),
			100*r.HitRate())
	}
	fmt.Fprintln(w)
}

// WriteTableIII prints hit rates and average scheduling costs for the four
// schedulers Table III covers, from already-collected scenario reports
// keyed by scenario ID.
func WriteTableIII(w io.Writer, results map[workload.ScenarioID][]*metrics.Report) {
	fmt.Fprintln(w, "Table III — data reuse hit rates and average scheduling costs")
	fmt.Fprintf(w, "  %-9s %-10s %10s %10s %10s %10s\n",
		"scenario", "metric", "FS", "FCFSU", "FCFSL", "OURS")
	pick := func(rs []*metrics.Report, name string) *metrics.Report {
		for _, r := range rs {
			if r.Scheduler == name {
				return r
			}
		}
		return nil
	}
	for id := workload.Scenario1; id <= workload.Scenario4; id++ {
		rs := results[id]
		if rs == nil {
			continue
		}
		fmt.Fprintf(w, "  %-9d %-10s", id, "hit rate")
		for _, n := range []string{"FS", "FCFSU", "FCFSL", "OURS"} {
			fmt.Fprintf(w, " %9.2f%%", 100*pick(rs, n).HitRate())
		}
		fmt.Fprintf(w, "\n  %-9s %-10s", "", "avg cost")
		for _, n := range []string{"FS", "FCFSU", "FCFSL", "OURS"} {
			fmt.Fprintf(w, " %10v", pick(rs, n).AvgSchedCostPerJob().Round(100*time.Nanosecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Fig8Point is one sample of the user-action sweep.
type Fig8Point struct {
	Actions int
	Cost    map[string]time.Duration // scheduler -> avg scheduling cost per job
}

// Fig8ActionSweep reproduces Fig. 8: scheduling cost per job versus number
// of simultaneous user actions on 32 nodes with 16 datasets of 4 GB,
// comparing OURS, FCFSL, and FCFSU. Sequential; see Fig8ActionSweepN.
func Fig8ActionSweep(actionCounts []int, seconds int) []Fig8Point {
	return Fig8ActionSweepN(actionCounts, seconds, 1)
}

// WriteFig8 runs and prints the action sweep.
func WriteFig8(w io.Writer, actionCounts []int, seconds int) {
	PrintFig8(w, Fig8ActionSweep(actionCounts, seconds))
}

// PrintFig8 prints already-computed action-sweep points.
func PrintFig8(w io.Writer, points []Fig8Point) {
	fmt.Fprintln(w, "Fig 8 — scheduling cost vs number of user actions (32 nodes, 16x4GB datasets)")
	fmt.Fprintf(w, "  %-8s %12s %12s %12s\n", "actions", "FCFSU", "FCFSL", "OURS")
	for _, p := range points {
		fmt.Fprintf(w, "  %-8d %12v %12v %12v\n",
			p.Actions,
			p.Cost["FCFSU"].Round(100*time.Nanosecond),
			p.Cost["FCFSL"].Round(100*time.Nanosecond),
			p.Cost["OURS"].Round(100*time.Nanosecond))
	}
	fmt.Fprintln(w)
}

// Fig9Point is one sample of the dataset sweep.
type Fig9Point struct {
	Datasets  int
	Cost      time.Duration
	Framerate float64
	Latency   units.Duration
}

// Fig9DatasetSweep reproduces Fig. 9: OURS scheduling cost, interactive
// framerate, and latency versus the number of 8 GB datasets in use on 16
// nodes with mixed interactive and batch jobs. Past 16 datasets the data
// exceeds the 128 GB total memory, the regime the bottom panels highlight.
// Sequential; see Fig9DatasetSweepN.
func Fig9DatasetSweep(datasetCounts []int, seconds int) []Fig9Point {
	return Fig9DatasetSweepN(datasetCounts, seconds, 1)
}

// WriteFig9 runs and prints the dataset sweep.
func WriteFig9(w io.Writer, datasetCounts []int, seconds int) {
	PrintFig9(w, Fig9DatasetSweep(datasetCounts, seconds))
}

// PrintFig9 prints already-computed dataset-sweep points.
func PrintFig9(w io.Writer, points []Fig9Point) {
	fmt.Fprintln(w, "Fig 9 — OURS vs number of 8GB datasets (16 nodes, 128GB total memory)")
	fmt.Fprintf(w, "  %-9s %12s %10s %12s\n", "datasets", "sched cost", "fps", "int-latency")
	for _, p := range points {
		fmt.Fprintf(w, "  %-9d %12v %10.2f %12v\n",
			p.Datasets, p.Cost.Round(100*time.Nanosecond), p.Framerate,
			p.Latency.Std().Round(time.Millisecond))
	}
	fmt.Fprintln(w)
}
