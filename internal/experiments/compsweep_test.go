package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestCompSweepDeterministicAcrossWorkers is the bit-reproducibility
// guarantee: any -parallel worker count produces identical points.
func TestCompSweepDeterministicAcrossWorkers(t *testing.T) {
	one := CompSweepN([]int{8, 27, 64}, 1)
	many := CompSweepN([]int{8, 27, 64}, 8)
	if len(one) != len(many) {
		t.Fatalf("length mismatch: %d vs %d", len(one), len(many))
	}
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("cell %d diverged across worker counts:\n  1: %+v\n  8: %+v", i, one[i], many[i])
		}
	}
}

// TestCompSweepDFBWins pins the acceptance criterion: dfb mean frame
// latency strictly below 2-3 swap at ≥27 nodes, with a materially smaller
// straggler degradation than both swap collectives.
func TestCompSweepDFBWins(t *testing.T) {
	points := CompSweep(DefaultWorkers())
	byKey := map[string]CompSweepPoint{}
	for _, p := range points {
		byKey[p.Algorithm+"/"+itoa(p.Nodes)] = p
	}
	for _, n := range CompSweepNodes {
		if n < 27 {
			continue
		}
		d, tt, bs := byKey["dfb/"+itoa(n)], byKey["2-3-swap/"+itoa(n)], byKey["binary-swap/"+itoa(n)]
		if d.MeanLatency >= tt.MeanLatency {
			t.Errorf("n=%d: dfb mean %v not strictly below 2-3 swap %v", n, d.MeanLatency, tt.MeanLatency)
		}
		if d.Degradation*2 > tt.Degradation || d.Degradation*2 > bs.Degradation {
			t.Errorf("n=%d: dfb degradation %.2fx not materially below swaps (%.2fx / %.2fx)",
				n, d.Degradation, tt.Degradation, bs.Degradation)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestCompSweepOutputs(t *testing.T) {
	points := CompSweepN([]int{8}, 1)
	var buf bytes.Buffer
	PrintCompSweep(&buf, points)
	if !strings.Contains(buf.String(), "dfb") || !strings.Contains(buf.String(), "degradation") {
		t.Errorf("print output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	if err := CompSweepCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(points) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(points))
	}
	if !strings.HasPrefix(lines[0], "nodes,algorithm,") {
		t.Errorf("CSV header wrong: %s", lines[0])
	}
}
