package experiments

import (
	"reflect"
	"sync"
	"testing"

	"vizsched/internal/metrics"
	"vizsched/internal/workload"
)

func TestForEachVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var mu sync.Mutex
		seen := make([]int, n)
		ForEach(workers, n, func(i int) {
			mu.Lock()
			seen[i]++
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -1, func(int) { called = true })
	if called {
		t.Error("ForEach invoked fn for non-positive n")
	}
}

// stripWallClock zeroes the only wall-clock-derived field of a report so the
// rest can be compared bit for bit. Everything else in a Report is derived
// from virtual time and the seeded RNGs, hence deterministic.
func stripWallClock(r *metrics.Report) {
	r.SchedWall = 0
}

// The tentpole guarantee: running scenarios through the parallel runner
// yields byte-identical virtual-time results to the sequential path, for
// every scheduler. Run with -race in CI, this doubles as the data-race
// check on the worker pool and the shared scenario config/library.
func TestParallelMatchesSequential(t *testing.T) {
	for _, id := range []workload.ScenarioID{workload.Scenario1, workload.Scenario2} {
		seq := RunScenarioAllN(id, 0.05, 1)
		par := RunScenarioAllN(id, 0.05, 4)
		if len(seq) != len(par) {
			t.Fatalf("scenario %d: %d sequential vs %d parallel reports", id, len(seq), len(par))
		}
		for i := range seq {
			stripWallClock(seq[i])
			stripWallClock(par[i])
			if seq[i].Scheduler != par[i].Scheduler {
				t.Fatalf("scenario %d: report %d is %s sequentially but %s in parallel",
					id, i, seq[i].Scheduler, par[i].Scheduler)
			}
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Errorf("scenario %d, %s: parallel report differs from sequential", id, seq[i].Scheduler)
			}
		}
	}
}

// RunScenarios must agree with per-scenario sequential runs cell by cell.
func TestRunScenariosMatchesPerScenario(t *testing.T) {
	ids := []workload.ScenarioID{workload.Scenario1, workload.Scenario2}
	got := RunScenarios(ids, 0.05, 4)
	for _, id := range ids {
		want := RunScenarioAllN(id, 0.05, 1)
		if len(got[id]) != len(want) {
			t.Fatalf("scenario %d: got %d reports, want %d", id, len(got[id]), len(want))
		}
		for i := range want {
			stripWallClock(want[i])
			stripWallClock(got[id][i])
			if !reflect.DeepEqual(want[i], got[id][i]) {
				t.Errorf("scenario %d, %s: fan-out report differs from sequential", id, want[i].Scheduler)
			}
		}
	}
}

// The Fig. 9 sweep's virtual-time panels must not depend on the worker
// count (the Cost panel is wall-clock and excluded).
func TestFig9ParallelVirtualTimeDeterminism(t *testing.T) {
	counts := []int{2, 4}
	seq := Fig9DatasetSweepN(counts, 2, 1)
	par := Fig9DatasetSweepN(counts, 2, 4)
	for i := range seq {
		if seq[i].Datasets != par[i].Datasets ||
			seq[i].Framerate != par[i].Framerate ||
			seq[i].Latency != par[i].Latency {
			t.Errorf("point %d: sequential {ds=%d fps=%v lat=%v} vs parallel {ds=%d fps=%v lat=%v}",
				i, seq[i].Datasets, seq[i].Framerate, seq[i].Latency,
				par[i].Datasets, par[i].Framerate, par[i].Latency)
		}
	}
}

// The hoisted Fig. 8 libraries must give every scheduler the decomposition
// it would have built for itself, and share libraries between schedulers
// with the same policy.
func TestFig8LibraryHoist(t *testing.T) {
	libs := fig8Libraries()
	for _, name := range fig8Names {
		if libs[name] == nil {
			t.Fatalf("no library for %s", name)
		}
	}
	if libs["FCFSL"] != libs["OURS"] {
		t.Error("FCFSL and OURS use the same decomposition but got distinct libraries")
	}
	if libs["FCFSU"] == libs["FCFSL"] {
		t.Error("FCFSU's uniform decomposition must not share FCFSL's max-chunk library")
	}
}

// Fig. 8 sweep points must come back in input order with all three
// schedulers priced, at any worker count.
func TestFig8SweepShape(t *testing.T) {
	actions := []int{1, 4}
	points := Fig8ActionSweepN(actions, 2, 4)
	if len(points) != len(actions) {
		t.Fatalf("got %d points, want %d", len(points), len(actions))
	}
	for i, p := range points {
		if p.Actions != actions[i] {
			t.Errorf("point %d has Actions=%d, want %d", i, p.Actions, actions[i])
		}
		for _, name := range fig8Names {
			if _, ok := p.Cost[name]; !ok {
				t.Errorf("point %d missing cost for %s", i, name)
			}
		}
	}
}
