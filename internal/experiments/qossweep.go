package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vizsched/internal/qos"
	"vizsched/internal/sim"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// qosSweepModes are the two queueing disciplines the sweep compares: the
// head's original single FIFO and the QoS subsystem (per-tenant admission
// control + deficit-round-robin fair queuing + degradation ladder).
var qosSweepModes = []string{"FIFO", "QoS"}

// QoSSweepPoint is one (tenant skew, load, mode) cell of the QoS sweep.
type QoSSweepPoint struct {
	// Skew is the tenant Zipf exponent (0 = uniform demand across tenants).
	Skew float64
	// Load is the demand multiplier: Load×6 continuous users on the
	// Scenario 1 cluster, whose render capacity is ~6 users at target rate.
	Load float64
	Mode string

	Actions   int
	Framerate float64
	Latency   units.Duration
	P95       units.Duration
	// Jain is Jain's fairness index over per-tenant interactive completions:
	// 1 when every tenant got equal service, 1/n when one tenant got it all.
	Jain      float64
	Issued    int64
	Completed int64
	// QoS-mode decision counters (zero under FIFO).
	Admitted, Throttled, Rejected, Shed int64
	MaxLevel, FinalLevel                int
}

// SweepQoSConfig is the controller configuration the sweep (and the demo
// binaries) use: per-tenant interactive rates sized to the Scenario 1
// cluster's fair share (~200 frames/s across 4 tenants), batch metered at a
// background trickle, and latest-frame-wins shedding so the queue cannot
// grow without bound under overload.
func SweepQoSConfig() *qos.Config {
	return &qos.Config{
		InteractiveRate: 55, InteractiveBurst: 28,
		BatchRate: 25, BatchBurst: 50,
		AlwaysShedStale: true,
	}
}

// runQoSCell plays one cell: Scenario 1's cluster, Load×6 continuous users
// split over 4 tenants by Zipf(skew), under OURS with or without QoS.
func runQoSCell(scale, skew, load float64, mode string) QoSSweepPoint {
	cfg := workload.Scenario(workload.Scenario1, scale)
	cfg.Spec.ContinuousActions = int(6*load + 0.5)
	cfg.Spec.Tenants = 4
	cfg.Spec.TenantSkew = skew
	sched, err := SchedulerByName("OURS")
	if err != nil {
		panic(err)
	}
	engCfg := sim.ScenarioEngineConfig(cfg, sched, Jitter)
	if mode == "QoS" {
		engCfg.QoS = SweepQoSConfig()
	}
	rep := sim.New(engCfg).Run(workload.Generate(cfg.Spec), 0)

	p := QoSSweepPoint{
		Skew: skew, Load: load, Mode: mode,
		Actions:   cfg.Spec.ContinuousActions,
		Framerate: rep.MeanFramerate(),
		Latency:   rep.Interactive.Latency.Mean(),
		P95:       rep.Interactive.LatencyHist.P95(),
		Jain:      rep.JainFairness(),
		Issued:    rep.Interactive.Issued,
		Completed: rep.Interactive.Completed,
	}
	if rep.QoS != nil {
		p.Admitted = rep.QoS.Admitted
		p.Throttled = rep.QoS.Throttled
		p.Rejected = rep.QoS.Rejected
		p.Shed = rep.QoS.Shed
		p.MaxLevel = rep.QoS.MaxLevel
		p.FinalLevel = rep.QoS.FinalLevel
	}
	return p
}

// QoSSweep runs the multi-tenant QoS sweep sequentially: for each tenant
// skew and load multiplier, the FIFO baseline and the QoS subsystem on the
// same generated workload. Results are grouped by (skew, load) with modes in
// qosSweepModes order, and are deterministic at any worker count.
func QoSSweep(skews, loads []float64, scale float64) []QoSSweepPoint {
	return QoSSweepN(skews, loads, scale, 1)
}

// QoSSweepN is QoSSweep with an explicit worker count; every cell is an
// independent simulation, so all cells run concurrently into index-addressed
// slots — output order and values are identical for any worker count.
func QoSSweepN(skews, loads []float64, scale float64, workers int) []QoSSweepPoint {
	out := make([]QoSSweepPoint, len(skews)*len(loads)*len(qosSweepModes))
	ForEach(workers, len(out), func(cell int) {
		mi := cell % len(qosSweepModes)
		li := (cell / len(qosSweepModes)) % len(loads)
		si := cell / (len(qosSweepModes) * len(loads))
		out[cell] = runQoSCell(scale, skews[si], loads[li], qosSweepModes[mi])
	})
	return out
}

// PrintQoSSweep prints already-computed QoS-sweep points.
func PrintQoSSweep(w io.Writer, points []QoSSweepPoint) {
	fmt.Fprintf(w, "QoS sweep — Scenario 1 cluster, 4 tenants, Zipf-skewed demand, FIFO vs admission+DRR (§5.7)\n")
	fmt.Fprintf(w, "  %-5s %-5s %-5s %8s %8s %12s %10s %7s %8s %8s %8s %8s %6s\n",
		"skew", "load", "mode", "users", "fps", "int-latency", "p95", "jain",
		"admit", "throttle", "reject", "shed", "level")
	lastKey := ""
	for _, p := range points {
		key := fmt.Sprintf("%v/%v", p.Skew, p.Load)
		if key != lastKey && lastKey != "" {
			fmt.Fprintln(w)
		}
		lastKey = key
		level := "-"
		if p.Mode == "QoS" {
			level = fmt.Sprintf("%d/%d", p.MaxLevel, p.FinalLevel)
		}
		fmt.Fprintf(w, "  %-5.1f %-5.1f %-5s %8d %8.2f %12v %10v %7.3f %8d %8d %8d %8d %6s\n",
			p.Skew, p.Load, p.Mode, p.Actions, p.Framerate,
			p.Latency.Std().Round(time.Millisecond),
			p.P95.Std().Round(time.Millisecond),
			p.Jain, p.Admitted, p.Throttled, p.Rejected, p.Shed, level)
	}
	fmt.Fprintln(w)
}

// WriteQoSSweep runs and prints the QoS sweep.
func WriteQoSSweep(w io.Writer, skews, loads []float64, scale float64, workers int) []QoSSweepPoint {
	points := QoSSweepN(skews, loads, scale, workers)
	PrintQoSSweep(w, points)
	return points
}

// QoSSweepCSV writes the QoS sweep as CSV.
func QoSSweepCSV(w io.Writer, points []QoSSweepPoint) error {
	cw := csv.NewWriter(w)
	header := []string{
		"tenant_skew", "load", "mode", "users", "fps",
		"interactive_latency_ms", "p95_ms", "jain_fairness",
		"issued", "completed", "admitted", "throttled", "rejected", "shed",
		"max_level", "final_level",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		rec := []string{
			f(p.Skew), f(p.Load), p.Mode, strconv.Itoa(p.Actions), f(p.Framerate),
			f(p.Latency.Milliseconds()), f(p.P95.Milliseconds()), f(p.Jain),
			i(p.Issued), i(p.Completed), i(p.Admitted), i(p.Throttled), i(p.Rejected), i(p.Shed),
			strconv.Itoa(p.MaxLevel), strconv.Itoa(p.FinalLevel),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
