// Package raycast is a software ray-casting volume renderer: the functional
// stand-in for the paper's GLSL/GPU renderer (Kruger & Westermann [6]).
//
// Each rendering node renders its data brick into a full-viewport
// premultiplied RGBA image plus a per-brick view depth; the compositing
// package then merges bricks in visibility order (sort-last, Molnar et
// al. [7]). The renderer does real work — trilinear sampling, transfer
// function lookup, gradient shading, front-to-back accumulation with early
// ray termination — so the end-to-end service produces genuine images
// (Fig. 10 analogues) rather than mock pixels.
package raycast

import (
	"math"
)

// Vec3 is a 3-component float64 vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a−b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns a·b.
func (a Vec3) Dot(b Vec3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns a×b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns |a|.
func (a Vec3) Len() float64 { return math.Sqrt(a.Dot(a)) }

// Normalize returns a/|a|; the zero vector normalizes to itself.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Ray is an origin and unit direction.
type Ray struct {
	Origin, Dir Vec3
}

// Camera is a simple perspective pinhole camera. The volume is rendered in a
// normalized world where the full dataset occupies [0,1]³.
type Camera struct {
	Eye, LookAt, Up Vec3
	// FovY is the vertical field of view in radians.
	FovY float64

	// Cached basis, built by Finish.
	right, up, fwd Vec3
	halfH, halfW   float64
	aspect         float64
	ready          bool
}

// NewCamera returns a camera with sensible defaults: orbiting the unit cube
// center from the given angle (radians around Y) and distance.
func NewCamera(angle, elevation, dist float64) *Camera {
	center := Vec3{0.5, 0.5, 0.5}
	eye := Vec3{
		0.5 + dist*math.Cos(elevation)*math.Sin(angle),
		0.5 + dist*math.Sin(elevation),
		0.5 + dist*math.Cos(elevation)*math.Cos(angle),
	}
	return &Camera{Eye: eye, LookAt: center, Up: Vec3{0, 1, 0}, FovY: 45 * math.Pi / 180}
}

// finish builds the orthonormal basis for the given aspect ratio.
func (c *Camera) finish(aspect float64) {
	if c.ready && c.aspect == aspect {
		return
	}
	c.fwd = c.LookAt.Sub(c.Eye).Normalize()
	c.right = c.fwd.Cross(c.Up).Normalize()
	c.up = c.right.Cross(c.fwd)
	c.halfH = math.Tan(c.FovY / 2)
	c.halfW = c.halfH * aspect
	c.aspect = aspect
	c.ready = true
}

// RayThrough returns the primary ray through normalized screen coordinates
// (u,v) ∈ [0,1]² for an image with the given aspect ratio (w/h). v grows
// downward, matching image row order.
func (c *Camera) RayThrough(u, v, aspect float64) Ray {
	c.finish(aspect)
	sx := (2*u - 1) * c.halfW
	sy := (1 - 2*v) * c.halfH
	dir := c.fwd.Add(c.right.Scale(sx)).Add(c.up.Scale(sy)).Normalize()
	return Ray{Origin: c.Eye, Dir: dir}
}

// intersectAABB returns the parametric entry/exit of the ray with the box
// [lo,hi], and whether it hits at all. tmin is clamped to 0 (rays starting
// inside the box enter immediately).
func intersectAABB(r Ray, lo, hi Vec3) (tmin, tmax float64, hit bool) {
	tmin, tmax = 0, math.Inf(1)
	for i := 0; i < 3; i++ {
		var o, d, l, h float64
		switch i {
		case 0:
			o, d, l, h = r.Origin.X, r.Dir.X, lo.X, hi.X
		case 1:
			o, d, l, h = r.Origin.Y, r.Dir.Y, lo.Y, hi.Y
		default:
			o, d, l, h = r.Origin.Z, r.Dir.Z, lo.Z, hi.Z
		}
		if math.Abs(d) < 1e-12 {
			if o < l || o > h {
				return 0, 0, false
			}
			continue
		}
		t0 := (l - o) / d
		t1 := (h - o) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > tmin {
			tmin = t0
		}
		if t1 < tmax {
			tmax = t1
		}
		if tmin > tmax {
			return 0, 0, false
		}
	}
	return tmin, tmax, true
}
