package raycast

import (
	"math"
	"testing"
	"testing/quick"

	"vizsched/internal/img"
	"vizsched/internal/volume"
)

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if c := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); c != (Vec3{0, 0, 1}) {
		t.Errorf("Cross = %v", c)
	}
	if n := (Vec3{3, 0, 4}).Normalize(); math.Abs(n.Len()-1) > 1e-12 {
		t.Error("Normalize length")
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Error("zero Normalize changed value")
	}
}

func TestIntersectAABB(t *testing.T) {
	lo, hi := Vec3{0, 0, 0}, Vec3{1, 1, 1}
	// Straight-on hit through the cube center.
	r := Ray{Origin: Vec3{0.5, 0.5, -1}, Dir: Vec3{0, 0, 1}}
	tmin, tmax, hit := intersectAABB(r, lo, hi)
	if !hit || math.Abs(tmin-1) > 1e-12 || math.Abs(tmax-2) > 1e-12 {
		t.Errorf("hit=%v tmin=%v tmax=%v", hit, tmin, tmax)
	}
	// Miss.
	r = Ray{Origin: Vec3{5, 5, -1}, Dir: Vec3{0, 0, 1}}
	if _, _, hit := intersectAABB(r, lo, hi); hit {
		t.Error("expected miss")
	}
	// Origin inside: tmin clamps to 0.
	r = Ray{Origin: Vec3{0.5, 0.5, 0.5}, Dir: Vec3{0, 0, 1}}
	tmin, tmax, hit = intersectAABB(r, lo, hi)
	if !hit || tmin != 0 || math.Abs(tmax-0.5) > 1e-12 {
		t.Errorf("inside: hit=%v tmin=%v tmax=%v", hit, tmin, tmax)
	}
	// Parallel ray outside a slab.
	r = Ray{Origin: Vec3{2, 0.5, -1}, Dir: Vec3{0, 0, 1}}
	if _, _, hit := intersectAABB(r, lo, hi); hit {
		t.Error("parallel outside slab should miss")
	}
}

// Property: whenever intersectAABB reports a hit, the entry and exit points
// lie on or inside the box.
func TestQuickAABBHitPointsInside(t *testing.T) {
	lo, hi := Vec3{0, 0, 0}, Vec3{1, 1, 1}
	inside := func(p Vec3) bool {
		const eps = 1e-9
		return p.X >= -eps && p.X <= 1+eps && p.Y >= -eps && p.Y <= 1+eps && p.Z >= -eps && p.Z <= 1+eps
	}
	f := func(ox, oy, oz, dx, dy, dz int8) bool {
		dir := Vec3{float64(dx), float64(dy), float64(dz)}
		if dir.Len() == 0 {
			return true
		}
		r := Ray{Origin: Vec3{float64(ox) / 32, float64(oy) / 32, float64(oz) / 32}, Dir: dir.Normalize()}
		tmin, tmax, hit := intersectAABB(r, lo, hi)
		if !hit {
			return true
		}
		if tmax < tmin {
			return false
		}
		return inside(r.Origin.Add(r.Dir.Scale(tmin))) && inside(r.Origin.Add(r.Dir.Scale(tmax)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCameraRaysPointForward(t *testing.T) {
	cam := NewCamera(0.7, 0.3, 2.2)
	fwd := cam.LookAt.Sub(cam.Eye).Normalize()
	for _, uv := range [][2]float64{{0.5, 0.5}, {0, 0}, {1, 1}, {0.25, 0.9}} {
		r := cam.RayThrough(uv[0], uv[1], 1)
		if r.Dir.Dot(fwd) <= 0 {
			t.Errorf("ray at %v points backward", uv)
		}
		if math.Abs(r.Dir.Len()-1) > 1e-9 {
			t.Errorf("ray at %v not normalized", uv)
		}
	}
	// Center ray goes straight at the look-at point.
	r := cam.RayThrough(0.5, 0.5, 1)
	if r.Dir.Sub(fwd).Len() > 1e-9 {
		t.Error("center ray deviates from forward")
	}
}

func TestPiecewiseLookup(t *testing.T) {
	p := Piecewise{Points: []ControlPoint{
		{V: 0.2, R: 0, A: 0},
		{V: 0.8, R: 1, A: 0.6},
	}}
	// Clamping below and above.
	if r, _, _, a := p.Lookup(0); r != 0 || a != 0 {
		t.Error("below-range lookup")
	}
	if r, _, _, a := p.Lookup(1); r != 1 || a != 0.6 {
		t.Error("above-range lookup")
	}
	// Midpoint interpolates.
	r, _, _, a := p.Lookup(0.5)
	if math.Abs(float64(r)-0.5) > 1e-6 || math.Abs(float64(a)-0.3) > 1e-6 {
		t.Errorf("mid lookup r=%v a=%v", r, a)
	}
	// Empty TF is transparent.
	var empty Piecewise
	if _, _, _, a := empty.Lookup(0.5); a != 0 {
		t.Error("empty TF not transparent")
	}
}

func TestLUTMatchesSource(t *testing.T) {
	lut := Bake(DefaultTF)
	for _, v := range []float32{0, 0.1, 0.33, 0.5, 0.77, 1} {
		lr, lg, lb, la := lut.Lookup(v)
		r, g, b, a := DefaultTF.Lookup(v)
		if math.Abs(float64(lr-r)) > 0.01 || math.Abs(float64(lg-g)) > 0.01 ||
			math.Abs(float64(lb-b)) > 0.01 || math.Abs(float64(la-a)) > 0.01 {
			t.Errorf("LUT diverges at %v", v)
		}
	}
	// Out-of-range lookups clamp rather than panic.
	lut.Lookup(-1)
	lut.Lookup(2)
}

func TestPresetTF(t *testing.T) {
	for _, name := range []string{"plume", "combustion", "supernova"} {
		if PresetTF(name) == nil {
			t.Errorf("no preset for %s", name)
		}
	}
	if PresetTF("unknown") == nil {
		t.Error("no fallback TF")
	}
}

func TestRenderFullProducesVisibleImage(t *testing.T) {
	g := volume.Generate(volume.Supernova, 32, 32, 32)
	cam := NewCamera(0.6, 0.4, 2.4)
	m := RenderFull(g, cam, PresetTF("supernova"), Options{Width: 64, Height: 64})
	if l := m.Luminance(); l <= 0.005 {
		t.Errorf("rendered image too dark: luminance=%v", l)
	}
	// Corner pixels should be transparent (rays miss the cube or hit air).
	if c := m.At(0, 0); c.A > 0.5 {
		t.Errorf("corner pixel unexpectedly opaque: %+v", c)
	}
}

func TestRenderDeterministicAndParallelMatches(t *testing.T) {
	g := volume.Generate(volume.Plume, 24, 24, 24)
	cam := NewCamera(1.1, 0.2, 2.5)
	opt := Options{Width: 48, Height: 48}
	a := RenderFull(g, cam, PresetTF("plume"), opt)
	b := RenderFull(g, cam, PresetTF("plume"), opt)
	if img.MaxDiff(a, b) != 0 {
		t.Error("sequential render not deterministic")
	}
	opt.Parallel = true
	c := RenderFull(g, cam, PresetTF("plume"), opt)
	if d := img.MaxDiff(a, c); d > 1e-6 {
		t.Errorf("parallel render differs by %v", d)
	}
}

func TestRenderShadingChangesImage(t *testing.T) {
	g := volume.Generate(volume.Supernova, 24, 24, 24)
	cam := NewCamera(0.6, 0.4, 2.4)
	flat := RenderFull(g, cam, PresetTF("supernova"), Options{Width: 32, Height: 32})
	lit := RenderFull(g, cam, PresetTF("supernova"), Options{Width: 32, Height: 32, Shading: true})
	if img.MaxDiff(flat, lit) == 0 {
		t.Error("shading had no effect")
	}
}

// Rendering a brick decomposition and compositing the slabs front-to-back
// must match rendering the whole volume in one pass (modulo sampling at the
// brick seams).
func TestBrickedRenderMatchesMonolithic(t *testing.T) {
	g := volume.Generate(volume.Supernova, 32, 32, 32)
	cam := &Camera{Eye: Vec3{0.5, 0.5, -1.8}, LookAt: Vec3{0.5, 0.5, 0.5}, Up: Vec3{0, 1, 0}, FovY: 45 * math.Pi / 180}
	tf := PresetTF("supernova")
	opt := Options{Width: 40, Height: 40, Step: 1.0 / 256}

	whole := RenderFull(g, cam, tf, opt)

	boxes := volume.BrickZ(g.Dims, 4)
	frags := make([]*Fragment, len(boxes))
	for i, box := range boxes {
		frags[i] = RenderBrick(MakeBrick(g, box), cam, tf, opt)
	}
	// Camera looks down +z, so bricks are already front-to-back; composite
	// back-to-front accumulating over.
	acc := img.New(opt.Width, opt.Height)
	for i := len(frags) - 1; i >= 0; i-- {
		acc.CompositeOver(frags[i].Image)
	}
	if d := img.MaxDiff(whole, acc); d > 0.02 {
		t.Errorf("bricked composite differs from monolithic by %v", d)
	}
	// Depths must increase with z for this camera.
	for i := 1; i < len(frags); i++ {
		if frags[i].Depth <= frags[i-1].Depth {
			t.Errorf("fragment depths not increasing: %v then %v", frags[i-1].Depth, frags[i].Depth)
		}
	}
}

func TestDiffuseShadingBounds(t *testing.T) {
	light := Vec3{0, -1, 0}
	if s := diffuse(Vec3{}, light); s != 1 {
		t.Errorf("zero gradient shade = %v, want 1", s)
	}
	for _, g := range []Vec3{{0, 5, 0}, {1, 2, 3}, {-1, 0, 0}} {
		s := diffuse(g, light)
		if s < 0.3 || s > 1 {
			t.Errorf("shade(%v) = %v out of [0.3,1]", g, s)
		}
	}
}

func BenchmarkRenderFull64(b *testing.B) {
	g := volume.Generate(volume.Supernova, 32, 32, 32)
	cam := NewCamera(0.6, 0.4, 2.4)
	tf := PresetTF("supernova")
	opt := Options{Width: 64, Height: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RenderFull(g, cam, tf, opt)
	}
}

func TestRenderModesDiffer(t *testing.T) {
	g := volume.Generate(volume.Supernova, 24, 24, 24)
	cam := NewCamera(0.6, 0.4, 2.4)
	tf := PresetTF("supernova")
	base := Options{Width: 32, Height: 32}

	composite := RenderFull(g, cam, tf, base)
	mipOpt := base
	mipOpt.Mode = ModeMIP
	mip := RenderFull(g, cam, tf, mipOpt)
	isoOpt := base
	isoOpt.Mode = ModeIso
	isoOpt.IsoValue = 0.4
	iso := RenderFull(g, cam, tf, isoOpt)

	if img.MaxDiff(composite, mip) == 0 {
		t.Error("MIP identical to composite")
	}
	if img.MaxDiff(composite, iso) == 0 {
		t.Error("iso identical to composite")
	}
	if mip.Luminance() <= 0 {
		t.Error("MIP produced a black image")
	}
	// Iso pixels are either fully opaque (surface hit) or fully transparent.
	for _, p := range iso.Pix {
		if p.A != 0 && p.A != 1 {
			t.Fatalf("iso pixel alpha = %v, want 0 or 1", p.A)
		}
	}
}

func TestIsoValueChangesSurface(t *testing.T) {
	g := volume.Generate(volume.Supernova, 24, 24, 24)
	cam := NewCamera(0.6, 0.4, 2.4)
	tf := PresetTF("supernova")
	lo := Options{Width: 32, Height: 32, Mode: ModeIso, IsoValue: 0.2}
	hi := Options{Width: 32, Height: 32, Mode: ModeIso, IsoValue: 0.8}
	a := RenderFull(g, cam, tf, lo)
	b := RenderFull(g, cam, tf, hi)
	// A lower threshold encloses more volume: more surface pixels.
	count := func(m *img.Image) int {
		n := 0
		for _, p := range m.Pix {
			if p.A == 1 {
				n++
			}
		}
		return n
	}
	if count(a) <= count(b) {
		t.Errorf("iso 0.2 covers %d px, iso 0.8 covers %d px; want more at lower threshold", count(a), count(b))
	}
}
