package raycast

import (
	"math"
	"runtime"
	"sync"

	"vizsched/internal/img"
	"vizsched/internal/volume"
)

// Mode selects the ray integration strategy.
type Mode int

// Render modes.
const (
	// ModeComposite is classic emission-absorption volume rendering through
	// a transfer function (the default).
	ModeComposite Mode = iota
	// ModeMIP is maximum-intensity projection: each pixel shows the largest
	// sample along its ray, mapped through the transfer function — the view
	// radiologists and plasma physicists reach for first.
	ModeMIP
	// ModeIso renders the first crossing of IsoValue as a shaded opaque
	// surface.
	ModeIso
)

// Options control a render pass.
type Options struct {
	// Width and Height of the output image in pixels.
	Width, Height int
	// Mode selects composite (default), MIP, or isosurface integration.
	Mode Mode
	// IsoValue is the level-set threshold for ModeIso (default 0.5).
	IsoValue float32
	// Step is the ray-march step in normalized world units. Zero selects
	// half a voxel of the full dataset, the usual quality/speed tradeoff.
	Step float64
	// Shading enables gradient (central-difference) diffuse shading.
	Shading bool
	// Light is the directional light used when Shading is on; zero value
	// selects a headlight-ish default.
	Light Vec3
	// Parallel renders scanline bands on all CPUs; single-threaded rendering
	// remains available for deterministic profiling.
	Parallel bool
}

func (o *Options) fill() {
	if o.Width <= 0 {
		o.Width = 256
	}
	if o.Height <= 0 {
		o.Height = 256
	}
	if o.Light == (Vec3{}) {
		o.Light = Vec3{-0.5, -1, -0.3}.Normalize()
	}
	if o.IsoValue <= 0 {
		o.IsoValue = 0.5
	}
}

// Brick is a renderable piece of a dataset: voxel data plus its placement
// inside the full dataset, which defines its world-space bounding box when
// the full dataset is mapped to the unit cube.
//
// Grid may carry ghost voxels beyond Extent (see MakeBrick); GridOrigin is
// the full-dataset coordinate of Grid's voxel (0,0,0). Ghost layers make
// trilinear interpolation at brick seams agree with a monolithic render —
// the same trick real distributed volume renderers use.
type Brick struct {
	Grid *volume.Grid
	// Extent is the brick's logical voxel box in full-dataset coordinates.
	Extent volume.Box
	// GridOrigin is where Grid's first voxel sits in full-dataset
	// coordinates. Defaults to Extent.Min when constructed literally.
	GridOrigin [3]int
	// FullDims are the full dataset's voxel dimensions.
	FullDims [3]int
}

// MakeBrick carves the box out of a full grid with a one-voxel ghost margin
// (clipped to the dataset bounds) so that seam interpolation matches a
// monolithic render.
func MakeBrick(full *volume.Grid, box volume.Box) *Brick {
	ghost := volume.Box{
		Min: [3]int{box.Min[0] - 1, box.Min[1] - 1, box.Min[2] - 1},
		Max: [3]int{box.Max[0] + 1, box.Max[1] + 1, box.Max[2] + 1},
	}.Intersect(full.Bounds())
	return &Brick{
		Grid:       full.SubGrid(ghost),
		Extent:     box,
		GridOrigin: ghost.Min,
		FullDims:   full.Dims,
	}
}

// WorldBounds returns the brick's axis-aligned box in the normalized unit
// cube occupied by the full dataset.
func (b *Brick) WorldBounds() (lo, hi Vec3) {
	fd := b.FullDims
	lo = Vec3{
		float64(b.Extent.Min[0]) / float64(fd[0]),
		float64(b.Extent.Min[1]) / float64(fd[1]),
		float64(b.Extent.Min[2]) / float64(fd[2]),
	}
	hi = Vec3{
		float64(b.Extent.Max[0]) / float64(fd[0]),
		float64(b.Extent.Max[1]) / float64(fd[1]),
		float64(b.Extent.Max[2]) / float64(fd[2]),
	}
	return lo, hi
}

// sample returns the trilinear sample at normalized world position p.
func (b *Brick) sample(p Vec3) float32 {
	fd := b.FullDims
	// World → full-dataset voxel coordinates → grid-local coordinates.
	x := p.X*float64(fd[0]) - float64(b.GridOrigin[0]) - 0.5
	y := p.Y*float64(fd[1]) - float64(b.GridOrigin[1]) - 0.5
	z := p.Z*float64(fd[2]) - float64(b.GridOrigin[2]) - 0.5
	return b.Grid.Sample(x, y, z)
}

// gradient returns the world-space gradient at p.
func (b *Brick) gradient(p Vec3) Vec3 {
	fd := b.FullDims
	x := p.X*float64(fd[0]) - float64(b.GridOrigin[0]) - 0.5
	y := p.Y*float64(fd[1]) - float64(b.GridOrigin[1]) - 0.5
	z := p.Z*float64(fd[2]) - float64(b.GridOrigin[2]) - 0.5
	g := b.Grid.Gradient(x, y, z)
	return Vec3{float64(g[0]), float64(g[1]), float64(g[2])}
}

// Fragment is the result of rendering one brick: a full-viewport image and
// the view depth used to order fragments during compositing. Depth is the
// ray parameter at the brick's world-space center as seen from the camera.
type Fragment struct {
	Image *img.Image
	Depth float64
}

// RenderBrick ray-casts one brick against the camera and returns its
// fragment. Pixels whose rays miss the brick stay transparent, which keeps
// the sort-last composite correct for non-overlapping bricks.
func RenderBrick(b *Brick, cam *Camera, tf TransferFunc, opt Options) *Fragment {
	opt.fill()
	out := img.New(opt.Width, opt.Height)
	lo, hi := b.WorldBounds()

	step := opt.Step
	if step <= 0 {
		maxDim := float64(max(b.FullDims[0], max(b.FullDims[1], b.FullDims[2])))
		step = 0.5 / maxDim
	}
	const refStep = 1.0 / 256 // opacity-correction reference step
	stepRatio := step / refStep

	aspect := float64(opt.Width) / float64(opt.Height)
	renderRows := func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			v := (float64(y) + 0.5) / float64(opt.Height)
			for x := 0; x < opt.Width; x++ {
				u := (float64(x) + 0.5) / float64(opt.Width)
				ray := cam.RayThrough(u, v, aspect)
				tmin, tmax, ok := intersectAABB(ray, lo, hi)
				if !ok {
					continue
				}
				var acc img.RGBA
				// Phase-align sampling to global multiples of step so that
				// bricks along the same ray sample the exact same positions
				// a monolithic render would; the half-open [tmin,tmax)
				// interval prevents double-sampling shared slab boundaries.
				t0 := math.Ceil(tmin/step) * step
				switch opt.Mode {
				case ModeMIP:
					var peak float32 = -1
					for t := t0; t < tmax; t += step {
						if s := b.sample(ray.Origin.Add(ray.Dir.Scale(t))); s > peak {
							peak = s
						}
					}
					if peak >= 0 {
						r, g, bl, _ := tf.Lookup(peak)
						// MIP composites by per-pixel max during the merge;
						// encode intensity in alpha so depth-order over still
						// prefers the brighter fragment in practice.
						acc = img.RGBA{R: r * peak, G: g * peak, B: bl * peak, A: peak}
					}
				case ModeIso:
					for t := t0; t < tmax; t += step {
						p := ray.Origin.Add(ray.Dir.Scale(t))
						if b.sample(p) >= opt.IsoValue {
							shade := diffuse(b.gradient(p), opt.Light)
							acc = img.RGBA{R: 0.9 * shade, G: 0.85 * shade, B: 0.8 * shade, A: 1}
							break
						}
					}
				default:
					for t := t0; t < tmax; t += step {
						p := ray.Origin.Add(ray.Dir.Scale(t))
						s := b.sample(p)
						smp := classify(tf, s, stepRatio)
						if smp.A > 0 && opt.Shading {
							shade := diffuse(b.gradient(p), opt.Light)
							smp.R *= shade
							smp.G *= shade
							smp.B *= shade
						}
						acc.AccumulateFrontToBack(smp)
						if acc.Opaque() {
							break
						}
					}
				}
				out.Set(x, y, acc)
			}
		}
	}

	if opt.Parallel {
		workers := runtime.GOMAXPROCS(0)
		if workers > opt.Height {
			workers = opt.Height
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			y0 := opt.Height * w / workers
			y1 := opt.Height * (w + 1) / workers
			wg.Add(1)
			go func() {
				defer wg.Done()
				renderRows(y0, y1)
			}()
		}
		wg.Wait()
	} else {
		renderRows(0, opt.Height)
	}

	center := lo.Add(hi).Scale(0.5)
	depth := center.Sub(cam.Eye).Len()
	return &Fragment{Image: out, Depth: depth}
}

// RenderFull convenience-renders a whole grid as one brick.
func RenderFull(g *volume.Grid, cam *Camera, tf TransferFunc, opt Options) *img.Image {
	b := &Brick{Grid: g, Extent: g.Bounds(), FullDims: g.Dims}
	return RenderBrick(b, cam, tf, opt).Image
}

// diffuse returns a Lambert shading factor with an ambient floor, using the
// gradient as the surface normal. Near-zero gradients (homogeneous regions)
// shade fully, which avoids speckle in flat areas.
func diffuse(grad, light Vec3) float32 {
	l := grad.Len()
	if l < 1e-6 {
		return 1
	}
	n := grad.Scale(1 / l)
	lambert := math.Abs(n.Dot(light))
	return float32(0.3 + 0.7*lambert)
}

// powFast is math.Pow behind a name the transfer code shares; kept separate
// so a cheaper approximation can be dropped in if profiles ever demand it.
func powFast(base, exp float64) float64 { return math.Pow(base, exp) }
