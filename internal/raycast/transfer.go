package raycast

import (
	"vizsched/internal/img"
)

// TransferFunc maps a normalized scalar value in [0,1] to a *straight*
// (non-premultiplied) color and opacity; the renderer premultiplies after
// opacity correction.
type TransferFunc interface {
	Lookup(v float32) (r, g, b, a float32)
}

// ControlPoint anchors a piecewise-linear transfer function.
type ControlPoint struct {
	V          float32 // scalar value in [0,1]
	R, G, B, A float32
}

// Piecewise is a piecewise-linear transfer function over sorted control
// points, the classic editor-style TF scientists use.
type Piecewise struct {
	Points []ControlPoint
}

// Lookup implements TransferFunc by linear interpolation between the
// bracketing control points; values outside the range clamp to the ends.
func (p Piecewise) Lookup(v float32) (r, g, b, a float32) {
	pts := p.Points
	if len(pts) == 0 {
		return 0, 0, 0, 0
	}
	if v <= pts[0].V {
		c := pts[0]
		return c.R, c.G, c.B, c.A
	}
	last := pts[len(pts)-1]
	if v >= last.V {
		return last.R, last.G, last.B, last.A
	}
	for i := 1; i < len(pts); i++ {
		if v <= pts[i].V {
			lo, hi := pts[i-1], pts[i]
			span := hi.V - lo.V
			t := float32(0)
			if span > 0 {
				t = (v - lo.V) / span
			}
			return lo.R + (hi.R-lo.R)*t,
				lo.G + (hi.G-lo.G)*t,
				lo.B + (hi.B-lo.B)*t,
				lo.A + (hi.A-lo.A)*t
		}
	}
	return last.R, last.G, last.B, last.A
}

// LUT is a precomputed 256-entry lookup table, the form a GPU shader would
// sample; Bake converts any TransferFunc into one.
type LUT struct {
	table [256][4]float32
}

// Bake samples tf into a LUT.
func Bake(tf TransferFunc) *LUT {
	l := &LUT{}
	for i := 0; i < 256; i++ {
		r, g, b, a := tf.Lookup(float32(i) / 255)
		l.table[i] = [4]float32{r, g, b, a}
	}
	return l
}

// Lookup implements TransferFunc with nearest-entry sampling.
func (l *LUT) Lookup(v float32) (r, g, b, a float32) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	e := l.table[int(v*255+0.5)]
	return e[0], e[1], e[2], e[3]
}

// Preset transfer functions for the Fig. 10 analogue datasets. Opacities are
// kept low in the "air" range so internal structure shows through, as in the
// paper's images.
var presets = map[string]Piecewise{
	"plume": {Points: []ControlPoint{
		{V: 0.00, A: 0},
		{V: 0.15, A: 0},
		{V: 0.3, R: 0.1, G: 0.25, B: 0.8, A: 0.03},
		{V: 0.55, R: 0.2, G: 0.75, B: 0.9, A: 0.12},
		{V: 0.8, R: 0.95, G: 0.9, B: 0.5, A: 0.35},
		{V: 1.0, R: 1, G: 1, B: 1, A: 0.6},
	}},
	"combustion": {Points: []ControlPoint{
		{V: 0.00, A: 0},
		{V: 0.2, A: 0},
		{V: 0.4, R: 0.4, G: 0.05, B: 0.02, A: 0.05},
		{V: 0.65, R: 0.95, G: 0.45, B: 0.05, A: 0.25},
		{V: 0.85, R: 1, G: 0.85, B: 0.3, A: 0.5},
		{V: 1.0, R: 1, G: 1, B: 0.9, A: 0.7},
	}},
	"supernova": {Points: []ControlPoint{
		{V: 0.00, A: 0},
		{V: 0.18, A: 0},
		{V: 0.35, R: 0.25, G: 0.05, B: 0.45, A: 0.04},
		{V: 0.6, R: 0.85, G: 0.25, B: 0.35, A: 0.18},
		{V: 0.82, R: 1, G: 0.7, B: 0.25, A: 0.45},
		{V: 1.0, R: 1, G: 1, B: 0.85, A: 0.75},
	}},
}

// DefaultTF is a generic grayscale-to-fire ramp used when no preset exists.
var DefaultTF = Piecewise{Points: []ControlPoint{
	{V: 0.0, A: 0},
	{V: 0.25, R: 0.2, G: 0.1, B: 0.4, A: 0.02},
	{V: 0.55, R: 0.8, G: 0.35, B: 0.1, A: 0.15},
	{V: 0.8, R: 1, G: 0.8, B: 0.3, A: 0.4},
	{V: 1.0, R: 1, G: 1, B: 1, A: 0.65},
}}

// PresetTF returns the transfer function for a named dataset, falling back
// to DefaultTF.
func PresetTF(name string) TransferFunc {
	if p, ok := presets[name]; ok {
		return p
	}
	return DefaultTF
}

// classify converts a straight-alpha TF sample into a premultiplied,
// opacity-corrected sample for the given step length relative to the
// reference step. Opacity correction keeps images stable when the step size
// changes: a' = 1-(1-a)^(step/ref).
func classify(tf TransferFunc, v float32, stepRatio float64) img.RGBA {
	r, g, b, a := tf.Lookup(v)
	if a <= 0 {
		return img.RGBA{}
	}
	corrected := float32(1 - pow1m(float64(a), stepRatio))
	return img.RGBA{R: r * corrected, G: g * corrected, B: b * corrected, A: corrected}
}

// pow1m computes (1-a)^e with guards for the endpoints.
func pow1m(a, e float64) float64 {
	base := 1 - a
	if base <= 0 {
		return 0
	}
	if base >= 1 {
		return 1
	}
	return powFast(base, e)
}
