package sim

// Control-plane chaos (§5.10): head outages and head↔node partitions. Both
// faults leave the data plane alive — nodes keep draining their queues and
// retain completion reports — while the control plane is unreachable. The
// recovery invariant the live service proves with snapshot+journal replay
// holds here by construction: reconciliation applies the retained reports,
// so committed work is never lost or re-rendered, and the metrics assert it
// (Recovery.CommittedLost stays zero).

import (
	"vizsched/internal/core"
	"vizsched/internal/trace"
)

// committedJobs is the number of fully completed jobs the head has
// acknowledged — the committed-session count the crash must not shrink.
func (e *Engine) committedJobs() int64 {
	return e.report.Interactive.Completed + e.report.Batch.Completed
}

// headFail starts a control-plane outage: the head stops admitting,
// scheduling, and processing completions. Nodes notice nothing.
func (e *Engine) headFail() {
	if e.headDown {
		return
	}
	e.headDown = true
	e.report.Recovery.HeadDown(e.sim.Now(), e.committedJobs())
	e.emit(trace.Event{Kind: trace.HeadFail})
}

// headRepair ends the outage: the recovered standby runs its resync epoch —
// reconcile every reachable node's retained completion reports, admit the
// deferred arrivals with their original issue times, and resume scheduling.
func (e *Engine) headRepair() {
	if !e.headDown {
		return
	}
	e.headDown = false
	e.emit(trace.Event{Kind: trace.HeadRepair})
	for _, n := range e.nodes {
		if !n.partitioned {
			e.drainPending(n)
		}
	}
	reqs := e.deferred
	e.deferred = nil
	for _, req := range reqs {
		e.admitArrival(req, req.At)
	}
	e.report.Recovery.HeadRepaired(e.sim.Now(), e.committedJobs())
	e.invokeScheduler()
}

// partition cuts node k off from the head: the head demotes it to suspect
// (predicted caches kept — it may come back), so no new work lands on it;
// the node keeps executing what it already holds.
func (e *Engine) partition(k core.NodeID) {
	n := e.nodes[k]
	if n.failed || n.partitioned {
		return
	}
	n.partitioned = true
	e.head.MarkSuspect(k)
	e.report.Recovery.NodeDown(int(k), e.sim.Now())
	e.emit(trace.Event{Kind: trace.NodePartition, Node: k})
}

// heal reconnects a partitioned node: suspect lifts back to up with the
// predicted caches intact (they match the node's real state — nothing was
// lost), the retained completion reports reconcile, and scheduling resumes
// with the node available again. A node that crashed during the partition
// was replaced by a fresh instance and heals through repair instead.
func (e *Engine) heal(k core.NodeID) {
	n := e.nodes[k]
	if !n.partitioned {
		return
	}
	n.partitioned = false
	e.head.MarkUp(k)
	e.emit(trace.Event{Kind: trace.NodeHeal, Node: k})
	if !e.headDown {
		e.drainPending(n)
	}
	e.report.Recovery.NodeRepaired(int(k), e.sim.Now())
	e.invokeScheduler()
}

// drainPending reconciles a node's retained completion reports with the
// head, oldest first — the resync epoch's idempotent replay.
func (e *Engine) drainPending(n *node) {
	pend := n.pendingResults
	n.pendingResults = nil
	for _, res := range pend {
		e.account(res)
	}
}
