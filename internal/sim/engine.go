// Package sim is the discrete-event execution engine that plays a workload
// against a scheduler on a modeled GPU cluster — the experimental apparatus
// behind every figure and table in the paper's evaluation (§VI).
//
// All rendering dynamics (disk I/O, GPU upload, ray casting, compositing,
// FIFO queueing at nodes, memory management) advance a virtual clock via
// internal/des, so a 600-second scenario runs in seconds of wall time. The
// scheduler code itself is the real artifact: its invocations are timed with
// the wall clock, which is what Table III's "avg. cost" column reports.
//
// The node model defaults to the paper's cost model (Definition 1: a task
// serially occupies its node for tio + trender + tcomposite). Three
// extensions the paper names as future work are available as options:
// overlapped I/O (OverlapIO — the three-thread latency hiding of §V-C),
// a two-level main-memory/GPU-memory hierarchy (GPUCache), and multi-GPU
// nodes (GPUsPerNode — System 2 has two GPUs per node). The eviction policy
// is pluggable for the ablation benchmarks.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"vizsched/internal/autoscale"
	"vizsched/internal/cache"
	"vizsched/internal/compositing"
	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/fracshare"
	"vizsched/internal/metrics"
	"vizsched/internal/prefetch"
	"vizsched/internal/qos"
	"vizsched/internal/shard"
	"vizsched/internal/trace"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// Failure injects one fault into a run — the fault-tolerance behaviour
// §VI-D describes, extended into a small chaos model. The zero Kind is a
// clean crash, so pre-existing Failure literals keep their meaning.
type Failure struct {
	At   units.Time
	Node core.NodeID
	// RepairAt ends the fault: a crash's node returns to service (with cold
	// caches), a slow disk or stall recovers. Zero means a crash stays down;
	// interval faults default to a 10-second interval.
	RepairAt units.Time

	// Kind selects the fault model; FaultCrash (zero) is the original clean
	// crash.
	Kind FaultKind
	// Factor is FaultSlowDisk's I/O time multiplier (loads take Factor×
	// longer); values ≤ 1 default to 4.
	Factor float64
	// Period, Count, and Seed shape FaultFlap: Count seeded crash/repair
	// cycles spaced Period apart starting at At. Zero values default to
	// 3 cycles of 5 seconds.
	Period units.Duration
	Count  int
	Seed   int64
}

// Config describes one simulation run.
type Config struct {
	// Nodes is the rendering-node count p.
	Nodes int
	// MemQuota is each node's main-memory budget for cached chunks.
	MemQuota units.Bytes
	// GPUMem, when positive, validates that no chunk exceeds it (§III-C's
	// Chkmax constraint).
	GPUMem units.Bytes
	// Model prices the pipeline stages.
	Model core.CostModel
	// Scheduler is the policy under test.
	Scheduler core.Scheduler
	// Library holds the datasets, already decomposed. Build it with the
	// scheduler's preferred policy (see core.DecompositionOverrider).
	Library *volume.Library
	// Jitter perturbs actual execution times by ±Jitter fraction to exercise
	// the head node's prediction-correction path. Zero disables.
	Jitter float64
	// Seed drives the jitter stream (and random eviction, if selected).
	Seed int64
	// BatchWindow caps how many queued batch jobs are presented to the
	// scheduler per invocation (interactive jobs are always presented).
	// Zero selects a default of 256. Purely an efficiency bound; deferred
	// batch work is presented oldest-first.
	BatchWindow int
	// Preload warms every node's cache round-robin with the library's
	// chunks (as far as quotas allow) and tells the head about it. The
	// paper's scenarios measure a running service, not a cold boot; without
	// preloading, initial disk loads dominate short runs.
	Preload bool
	// EvictionPolicy selects the node caches' replacement strategy;
	// defaults to LRU, the paper's choice.
	EvictionPolicy cache.Policy
	// GPUCache, when positive, models video memory as a second cache level:
	// a main-memory hit still pays the PCIe upload unless the chunk is also
	// GPU-resident. Zero folds the upload into the miss path (Definition 1).
	GPUCache units.Bytes
	// OverlapIO lets a node keep rendering resident chunks while a missing
	// chunk loads on its I/O channel, instead of blocking (Definition 1).
	OverlapIO bool
	// GPUsPerNode runs up to this many tasks concurrently per node;
	// zero/one is the serial default.
	GPUsPerNode int
	// Trace, when non-nil, records scheduling and execution events for CSV
	// or Gantt export. Cap it (trace.New(n)) on large runs.
	Trace *trace.Log
	// Failures to inject.
	Failures []Failure
	// Replicas enables the replication policy layer (§5.6) at degree k:
	// the head tracks per-chunk home/secondary nodes, OURS diverts a bounded
	// fraction of batch work to secondaries so hot chunks become k-resident,
	// and a crash re-homes the dead node's chunks to their warmest surviving
	// replica. 0 or 1 keeps the paper's single-home behaviour exactly.
	Replicas int
	// QoS enables the multi-tenant admission/fair-queuing/degradation layer
	// (§5.7): arrivals pass per-tenant token buckets, the job queue becomes
	// deficit-round-robin across tenants, and sustained interactive SLO
	// breach steps the degradation ladder. nil (the default) keeps the
	// single FIFO exactly, so published figures are unaffected. All QoS
	// decisions run in virtual time — results stay bit-reproducible.
	QoS *qos.Config
	// Prefetch enables the predictive chunk-warming layer (§5.8): a
	// trajectory predictor trained on completed tasks plans background warms
	// into the idle windows demand scheduling leaves open, metered by a
	// per-node bandwidth governor. Requires a scheduler implementing
	// core.PrefetchSetter (OURS); under other schedulers the setting is
	// inert. nil (the default) leaves every code path untouched, so golden
	// outputs are bit-identical.
	Prefetch *prefetch.Config
	// Shards splits the control plane into this many independent head shards
	// (§5.11), each an ordinary Engine over a contiguous partition of the
	// nodes, coordinated through a shared chunk directory. Sessions hash to
	// shards by tenant (falling back to action), so a session's frames always
	// meet the same head. Build sharded runs with NewSharded; New rejects
	// Shards > 1. Zero/one leaves every single-head code path untouched, so
	// golden outputs are bit-identical.
	Shards int
	// NewScheduler constructs one scheduler instance per shard — scheduler
	// scratch state is not safe to share across dispatchers. Required when
	// Shards > 1; ignored otherwise.
	NewScheduler func() core.Scheduler
	// HeadCost prices the control plane's serial work (admission, dispatch,
	// completion processing) in virtual time for sharded runs — the quantity
	// sharding exists to divide. nil selects shard.DefaultHeadCost()
	// when Shards > 1; the single-head path never charges it, keeping golden
	// outputs exact.
	HeadCost *shard.HeadCost
	// Donation enables cross-shard work donation: an idle shard past the
	// ε-guard adopts queued batch jobs from the hottest shard via the
	// directory's donation board, preserving fair-queue order within each
	// donated tenant. Sharded runs only.
	Donation bool
	// Autoscale enables the elastic-fleet layer (§5.12): a hysteresis
	// control loop samples queue depth, SLO headroom, and cache pressure on
	// the virtual clock and activates or gracefully drains nodes between
	// MinNodes and MaxNodes. Drains migrate queued work and pre-warm the
	// victim's working set before the capacity leaves; nothing they do ever
	// touches the Recovery crash accounting. nil (the default) leaves every
	// code path untouched, so golden outputs are bit-identical.
	Autoscale *autoscale.Config
	// FracShare enables the fractional-capacity layer (§5.13): nodes run up
	// to Slots concurrent tasks at fractional shares, completions are
	// re-priced deterministically on every share change, and schedulers
	// implementing core.CoScheduleSetter (OURS) may co-schedule one cached
	// batch guest per node inside the ε-guard window, preempted the instant
	// demand work starts. Incompatible with OverlapIO, GPUsPerNode > 1,
	// Prefetch, Autoscale, and sharded runs — the slot model replaces the
	// node's executor, and those extensions assume the serial/overlap one.
	// nil (the default) leaves every code path untouched, so golden outputs
	// are bit-identical.
	FracShare *fracshare.Config
	// Compositing selects the algorithm the cost model charges per task
	// (§5.9): "binary-swap", "2-3-swap" and "direct-send" price the group's
	// synchronous round count via the compositing package's closed forms,
	// and "dfb" prices the distributed framebuffer's single asynchronous
	// push — no barrier, so the charge is one round regardless of group
	// size. "" (the default) keeps the paper's ⌈log₂ g⌉ CompositeTime
	// exactly, so golden outputs are bit-identical.
	Compositing string
}

// node is the actual state of one rendering node.
type node struct {
	id   core.NodeID
	mem  cache.Chunks
	gpu  cache.Chunks // nil unless the two-level hierarchy is enabled
	gpus int

	// fifo is the serial-mode task queue, or the ready queue in overlap
	// mode. head gives amortized O(1) pops.
	fifo []*core.Task
	head int

	// running maps executing tasks to their execution records so a crash
	// can abort them and a stall can suspend and later resume them.
	running map[*core.Task]*execution

	// Overlap-mode I/O channel: one load at a time; tasks whose chunk is in
	// flight wait in waiters.
	loadq      []volume.ChunkID
	loadHead   int
	waiters    map[volume.ChunkID][]*core.Task
	loadTimer  des.Timer
	loadActive bool
	// loadFn/loadEnd/loadRemaining let a stall suspend the in-flight load
	// the same way executions are suspended.
	loadFn        des.Event
	loadEnd       units.Time
	loadRemaining units.Duration
	// missLoad remembers, per waiting task, the load duration it should
	// report (only the load-triggering task carries it).
	missLoad map[*core.Task]units.Duration

	// Background warm channel (§5.8): at most one prefetch load in flight,
	// modeled as an extra I/O stream that never occupies the executor.
	pfActive bool
	pfChunk  volume.ChunkID
	pfSize   units.Bytes
	pfEnd    units.Time
	pfTimer  des.Timer
	// pfWaiters are overlap-mode demand tasks that arrived while their chunk
	// was warming and absorbed the in-flight load ("hidden hits").
	pfWaiters []*core.Task

	failed bool
	// draining marks a graceful autoscaler exit in progress (§5.12): the
	// node finishes its running work but takes no new assignments; its
	// queued tasks have already migrated back to the head queue.
	draining bool
	// stalled freezes the node (FaultStall): nothing starts or completes,
	// but queues and caches survive — unlike a crash.
	stalled bool
	// partitioned isolates the node from the head (FaultPartition): it
	// keeps executing its local queue but its completion reports buffer in
	// pendingResults until the partition heals — the DES mirror of the
	// transport fault injector's Partition()/Heal().
	partitioned bool
	// pendingResults holds completion reports the node retained while the
	// head was unreachable (partition or head outage); reconciliation
	// drains them without re-rendering anything (§5.10).
	pendingResults []core.TaskResult
	// ioScale multiplies disk I/O times; 1 is healthy, FaultSlowDisk raises
	// it for an interval.
	ioScale float64
	// frac holds the node's fractional-slot bookkeeping (§5.13); nil unless
	// Config.FracShare is set.
	frac *fracNode
}

// execution is one running task's suspendable completion: the armed timer,
// when it would fire, and the callback to re-arm after a stall.
type execution struct {
	timer des.Timer
	end   units.Time
	fn    des.Event
	// remaining holds the unserved execution time while the node is stalled.
	remaining units.Duration
	// slot is the task's fractional progress account (§5.13); nil outside
	// frac mode, where end/remaining carry the timing instead. io marks the
	// execution as I/O-heavy (it paid a disk load) for super-linear
	// contention pricing, and co marks a co-scheduled guest.
	slot *fracshare.Slot
	io   bool
	co   bool
}

func (n *node) push(t *core.Task) { n.fifo = append(n.fifo, t) }

func (n *node) pop() *core.Task {
	if n.head >= len(n.fifo) {
		return nil
	}
	t := n.fifo[n.head]
	n.fifo[n.head] = nil
	n.head++
	if n.head > 1024 && n.head*2 > len(n.fifo) {
		n.fifo = append(n.fifo[:0], n.fifo[n.head:]...)
		n.head = 0
	}
	return t
}

func (n *node) popLoad() (volume.ChunkID, bool) {
	if n.loadHead >= len(n.loadq) {
		return volume.ChunkID{}, false
	}
	c := n.loadq[n.loadHead]
	n.loadHead++
	if n.loadHead > 256 && n.loadHead*2 > len(n.loadq) {
		n.loadq = append(n.loadq[:0], n.loadq[n.loadHead:]...)
		n.loadHead = 0
	}
	return c, true
}

// Engine runs one scenario.
type Engine struct {
	cfg   Config
	sim   *des.Simulator
	head  *core.HeadState
	nodes []*node
	// queue holds jobs with unassigned tasks awaiting the scheduler. With
	// QoS enabled it is only the working window: admitted jobs wait in the
	// controller's fair queue and are pulled here in fair order each
	// scheduler invocation.
	queue  []*core.Job
	report *metrics.Report
	rng    *rand.Rand
	qosc   *qos.Controller
	// pref is the prefetch controller (nil when disabled); prefSrc reads the
	// scheduler's planned directives back after each Schedule call.
	pref    *prefetch.Controller
	prefSrc core.PrefetchSource
	// pinned tracks the demand tasks whose resident chunk the engine pinned
	// at enqueue so a background warm can never evict it (prefetch only).
	pinned map[*core.Task]bool
	// scaler is the elastic-fleet machinery (nil when disabled); see
	// autoscale.go.
	scaler *autoScaler
	// frac is the fractional-capacity runtime (nil when disabled); see
	// fracshare.go.
	frac *fracRuntime

	// headDown marks a control-plane outage (FaultHeadCrash): no admission,
	// scheduling, or completion processing until the standby takes over.
	// deferred buffers the outage's arrivals for admission at repair.
	headDown bool
	deferred []workload.Request

	// onCorrect and onNodeDown are the sharded control plane's observation
	// taps (nil on single-head runs): after a completion folds into this
	// head's tables the shard publishes the locality facts to the shared
	// directory, and after a node is declared down the shard retracts it.
	onCorrect  func(core.TaskResult)
	onNodeDown func(core.NodeID)

	nextJob  core.JobID
	started  map[core.JobID]units.Time // JS per in-flight job
	finished map[core.JobID]int        // completed-task counts
	// maxExec tracks each in-flight job's largest task execution — the
	// denominator of the batch stretch metric (§5.13).
	maxExec map[core.JobID]units.Duration
	// pendingEvictions carries evictions from an overlap-mode load to the
	// triggering task's completion report.
	pendingEvictions map[*core.Task][]volume.ChunkID
}

// New validates the configuration and builds an engine.
func New(cfg Config) *Engine {
	if cfg.Shards > 1 {
		panic("sim: Config.Shards > 1 requires NewSharded")
	}
	if cfg.Nodes <= 0 {
		panic("sim: need at least one node")
	}
	if cfg.Library == nil || cfg.Library.Len() == 0 {
		panic("sim: need a dataset library")
	}
	if cfg.Scheduler == nil {
		panic("sim: need a scheduler")
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 256
	}
	if cfg.GPUsPerNode <= 0 {
		cfg.GPUsPerNode = 1
	}
	if cfg.FracShare != nil {
		switch {
		case cfg.OverlapIO:
			panic("sim: FracShare is incompatible with OverlapIO")
		case cfg.GPUsPerNode > 1:
			panic("sim: FracShare is incompatible with GPUsPerNode > 1")
		case cfg.Prefetch != nil:
			panic("sim: FracShare is incompatible with Prefetch")
		case cfg.Autoscale != nil:
			panic("sim: FracShare is incompatible with Autoscale")
		}
	}
	for _, d := range cfg.Library.All() {
		for _, c := range d.Chunks {
			if cfg.GPUMem > 0 && c.Size > cfg.GPUMem {
				panic(fmt.Sprintf("sim: chunk %v (%v) exceeds GPU memory %v", c.ID, c.Size, cfg.GPUMem))
			}
			if cfg.GPUCache > 0 && c.Size > cfg.GPUCache {
				panic(fmt.Sprintf("sim: chunk %v (%v) exceeds GPU cache %v", c.ID, c.Size, cfg.GPUCache))
			}
			if c.Size > cfg.MemQuota {
				panic(fmt.Sprintf("sim: chunk %v (%v) exceeds node memory quota %v", c.ID, c.Size, cfg.MemQuota))
			}
		}
	}
	e := &Engine{
		cfg:      cfg,
		sim:      des.New(),
		head:     core.NewHeadState(cfg.Nodes, cfg.MemQuota, cfg.Model),
		report:   metrics.NewReport(cfg.Scheduler.Name(), cfg.Nodes),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		started:  make(map[core.JobID]units.Time),
		finished: make(map[core.JobID]int),
		maxExec:  make(map[core.JobID]units.Duration),

		pendingEvictions: make(map[*core.Task][]volume.ChunkID),
	}
	if cfg.FracShare != nil {
		e.initFracShare()
	}
	if cfg.Replicas > 1 {
		e.head.SetReplication(cfg.Replicas)
		if rs, ok := cfg.Scheduler.(core.ReplicaSetter); ok {
			rs.SetReplicas(cfg.Replicas)
		}
	}
	if cfg.QoS != nil {
		e.qosc = qos.NewController(cfg.QoS)
	}
	if cfg.Prefetch != nil {
		if ps, ok := cfg.Scheduler.(core.PrefetchSetter); ok {
			lib := cfg.Library
			sizeOf := func(c volume.ChunkID) units.Bytes {
				d := lib.Get(c.Dataset)
				if d == nil || c.Index < 0 || c.Index >= len(d.Chunks) {
					return 0
				}
				return d.Chunks[c.Index].Size
			}
			e.pref = prefetch.NewController(cfg.Prefetch, cfg.Nodes, sizeOf)
			ps.SetPrefetchPlanner(e.pref)
			e.prefSrc, _ = cfg.Scheduler.(core.PrefetchSource)
			e.pinned = make(map[*core.Task]bool)
		}
	}
	for k := 0; k < cfg.Nodes; k++ {
		e.nodes = append(e.nodes, e.newNode(core.NodeID(k)))
	}
	if cfg.Preload {
		e.preload()
	}
	if cfg.Autoscale != nil {
		e.initAutoscale()
	}
	return e
}

// newNode builds a node with fresh caches per the configuration.
func (e *Engine) newNode(id core.NodeID) *node {
	n := &node{
		id:       id,
		mem:      cache.NewStore(e.cfg.EvictionPolicy, e.cfg.MemQuota, e.cfg.Seed+int64(id)*101),
		gpus:     e.cfg.GPUsPerNode,
		running:  make(map[*core.Task]*execution),
		waiters:  make(map[volume.ChunkID][]*core.Task),
		missLoad: make(map[*core.Task]units.Duration),
		ioScale:  1,
	}
	if e.cfg.GPUCache > 0 {
		n.gpu = cache.NewStore(e.cfg.EvictionPolicy, e.cfg.GPUCache, e.cfg.Seed+int64(id)*131+7)
	}
	if e.frac != nil {
		n.frac = &fracNode{}
	}
	return n
}

// preload distributes the library's chunks round-robin across nodes, warming
// both the actual caches and the head's predictions. Datasets are inserted
// in reverse ID order so that when the data exceeds total memory, LRU keeps
// the low-ID datasets — the popular end under the workload generator's
// popularity conventions — matching the steady state a running service
// would be in.
func (e *Engine) preload() {
	idx := 0
	all := e.cfg.Library.All()
	for i := len(all) - 1; i >= 0; i-- {
		for _, c := range all[i].Chunks {
			k := idx % e.cfg.Nodes
			e.nodes[k].mem.Insert(c.ID, c.Size)
			e.head.Caches[k].Insert(c.ID, c.Size)
			idx++
		}
	}
}

// Run plays the workload until the given horizon of virtual time (zero
// selects the workload's own length) and returns the collected metrics.
func (e *Engine) Run(wl *workload.Schedule, horizon units.Time) *metrics.Report {
	if horizon <= 0 {
		horizon = wl.Length
	}
	for i := range wl.Requests {
		req := wl.Requests[i]
		e.sim.At(req.At, func(s *des.Simulator) { e.arrive(req) })
	}
	if e.cfg.Scheduler.Trigger() == core.Periodic {
		e.sim.Every(e.cfg.Scheduler.Cycle(), func(s *des.Simulator) { e.invokeScheduler() })
	}
	for _, f := range e.cfg.Failures {
		e.inject(f)
	}
	if e.scaler != nil {
		e.sim.Every(e.scaler.pol.Config().Interval, func(s *des.Simulator) { e.autoscaleTick() })
	}
	e.report.Horizon = horizon
	e.sim.Run(horizon)
	if e.qosc != nil {
		e.report.QoS = e.qosc.Outcome()
	}
	if e.pref != nil {
		e.report.Prefetch = e.pref.Outcome(e.head)
	}
	if e.scaler != nil {
		e.finishAutoscale(horizon)
	}
	if e.frac != nil {
		e.finishFracShare(horizon)
	}
	return e.report
}

// QoS exposes the run's QoS controller (nil when disabled) for tests and
// post-run inspection of the degradation-ladder history.
func (e *Engine) QoS() *qos.Controller { return e.qosc }

// Prefetch exposes the run's prefetch controller (nil when disabled) for
// tests and post-run inspection.
func (e *Engine) Prefetch() *prefetch.Controller { return e.pref }

// arrive turns a request into a decomposed job and queues it. During a head
// outage the request buffers instead — the client retries until the standby
// takes over — and is admitted at repair with its original issue time, so
// latency accounting charges the control-plane downtime to the jobs that
// felt it.
func (e *Engine) arrive(req workload.Request) {
	if e.headDown {
		e.deferred = append(e.deferred, req)
		e.report.Recovery.ArrivalDeferred()
		return
	}
	e.admitArrival(req, e.sim.Now())
}

// admitArrival admits one request as a decomposed job issued at the given
// time (arrival time normally; the original arrival time for requests a
// head outage deferred).
func (e *Engine) admitArrival(req workload.Request, issued units.Time) {
	ds := e.cfg.Library.Get(req.Dataset)
	if ds == nil {
		panic(fmt.Sprintf("sim: request for unknown dataset %d", req.Dataset))
	}
	e.nextJob++
	j := &core.Job{
		ID:      e.nextJob,
		Class:   req.Class,
		Action:  req.Action,
		Tenant:  req.Tenant,
		Dataset: req.Dataset,
		Issued:  issued,
	}
	j.Tasks = make([]core.Task, len(ds.Chunks))
	for i, c := range ds.Chunks {
		j.Tasks[i] = core.Task{Job: j, Index: i, Chunk: c.ID, Size: c.Size}
	}
	j.Remaining = len(j.Tasks)
	e.report.JobIssued(req.Class == core.Interactive)
	if j.Tenant != 0 {
		e.report.TenantIssued(int(j.Tenant))
	}
	e.emit(trace.Event{Kind: trace.JobArrive, Job: j.ID, Class: j.Class, Tenant: j.Tenant})
	if e.qosc != nil {
		dec, victim := e.qosc.Admit(j, e.sim.Now())
		if victim != nil {
			e.emit(trace.Event{Kind: trace.Shed, Job: victim.ID, Class: victim.Class, Tenant: victim.Tenant})
		}
		e.emit(trace.Event{Kind: admitKind(dec), Job: j.ID, Class: j.Class, Tenant: j.Tenant})
		if !dec.Entered() {
			return
		}
	} else {
		e.queue = append(e.queue, j)
	}
	if e.cfg.Scheduler.Trigger() == core.OnArrival {
		e.invokeScheduler()
	}
}

// admitKind maps an admission decision to its trace event kind.
func admitKind(d qos.Decision) trace.Kind {
	switch d {
	case qos.Throttled:
		return trace.Throttle
	case qos.Rejected:
		return trace.Reject
	case qos.ShedStale:
		return trace.Shed
	default:
		return trace.Admit
	}
}

// invokeScheduler presents the queue (interactive fully; batch up to the
// window) to the scheduler, timing the call with the wall clock, then
// executes the returned assignments.
func (e *Engine) invokeScheduler() {
	if e.headDown {
		return // control plane down: nothing admits, schedules, or dispatches
	}
	if e.qosc != nil {
		// Pull admitted work into the window in fair order: interactive
		// frames fully (tenant round-robin), batch by DRR up to the window
		// bound net of batch jobs already here from failure requeues or
		// partial assignment.
		e.queue = e.qosc.PopInteractive(e.queue)
		batchHere := 0
		for _, j := range e.queue {
			if j.Class == core.Batch {
				batchHere++
			}
		}
		if batchHere < e.cfg.BatchWindow {
			e.queue = e.qosc.PopBatch(e.queue, e.cfg.BatchWindow-batchHere)
		}
	}
	if len(e.queue) == 0 {
		// Nothing to schedule is the deepest idle window there is: let the
		// planner warm directly. With demand queued, planning runs inside
		// Schedule instead, after the demand pass (strictly lower rank).
		if e.pref != nil {
			now := e.sim.Now()
			for _, d := range e.pref.Plan(now, now.Add(e.schedulerCycle()), e.head) {
				e.startPrefetch(d)
			}
		}
		return
	}
	present := e.queue
	if len(e.queue) > e.cfg.BatchWindow {
		present = make([]*core.Job, 0, e.cfg.BatchWindow+16)
		batch := 0
		for _, j := range e.queue {
			if j.Class == core.Interactive {
				present = append(present, j)
			} else if batch < e.cfg.BatchWindow {
				present = append(present, j)
				batch++
			}
		}
	}

	start := time.Now()
	assignments := e.cfg.Scheduler.Schedule(e.sim.Now(), present, e.head)
	wall := time.Since(start)

	jobsTouched := make(map[core.JobID]struct{})
	for _, a := range assignments {
		t := a.Task
		if !t.Assigned {
			panic(fmt.Sprintf("sim: scheduler %s returned unmarked assignment %v", e.cfg.Scheduler.Name(), t))
		}
		t.Job.Remaining--
		if t.Job.Remaining < 0 {
			panic(fmt.Sprintf("sim: task %v assigned twice", t))
		}
		jobsTouched[t.Job.ID] = struct{}{}
		e.emit(trace.Event{Kind: trace.Assign, Job: t.Job.ID, Class: t.Job.Class, Task: t.Index, Node: a.Node, Chunk: t.Chunk})
		n := e.nodes[a.Node]
		if n.failed || n.partitioned || n.draining {
			// A scheduler placing work on a known-failed, suspect, or
			// draining node is a policy bug; the head state exposes liveness.
			panic(fmt.Sprintf("sim: scheduler %s assigned %v to unavailable node %d", e.cfg.Scheduler.Name(), t, a.Node))
		}
		if a.CoScheduled {
			e.enqueueCo(n, t)
		} else {
			e.enqueue(n, t)
		}
	}
	e.report.ScheduleCall(wall, len(jobsTouched))

	// Compact: drop fully assigned jobs from the queue.
	live := e.queue[:0]
	for _, j := range e.queue {
		if j.Remaining > 0 {
			live = append(live, j)
		}
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live

	// Attribute this cycle's idle-with-pending-batch node time to the
	// ε-guard or to ordinary queueing (§5.13) — pure observation, after the
	// scheduler had its full say.
	e.sampleIdleSplit()

	// Launch whatever warms the scheduler's planner fitted into the cycle's
	// leftover idle windows — strictly after every demand assignment above.
	if e.pref != nil && e.prefSrc != nil {
		for _, d := range e.prefSrc.PlannedPrefetches() {
			e.startPrefetch(d)
		}
	}
}

// schedulerCycle returns the λ horizon used for idle-cycle prefetch
// planning: the scheduler's own cycle, or the default when it has none.
func (e *Engine) schedulerCycle() units.Duration {
	if c := e.cfg.Scheduler.Cycle(); c > 0 {
		return c
	}
	return core.DefaultCycle
}

// enqueue routes an assigned task into the node's execution machinery.
func (e *Engine) enqueue(n *node, t *core.Task) {
	if e.frac != nil {
		n.push(t)
		e.startFrac(n)
		return
	}
	if !e.cfg.OverlapIO {
		if e.pref != nil && n.mem.Pin(t.Chunk) {
			e.pinned[t] = true
		}
		n.push(t)
		e.startSerial(n)
		return
	}
	// Overlap mode: residency decides between the ready queue and the I/O
	// channel. The hit/miss metric is recorded at access, as on a real node.
	if _, seen := e.started[t.Job.ID]; !seen {
		e.started[t.Job.ID] = e.sim.Now()
	}
	if n.mem.Touch(t.Chunk) {
		e.report.TaskAccess(true)
		if e.pref != nil {
			if e.head.DemandTouchPrefetched(t.Chunk, n.id) {
				e.emit(trace.Event{Kind: trace.PrefetchHit, Job: t.Job.ID, Class: t.Job.Class, Task: t.Index, Node: n.id, Chunk: t.Chunk, Hit: true})
			}
			if n.mem.Pin(t.Chunk) {
				e.pinned[t] = true
			}
		}
		n.push(t)
		e.startOverlap(n)
		return
	}
	e.report.TaskAccess(false)
	n.missLoad[t] = 0 // marks the task as a miss; the trigger carries the load time
	if e.pref != nil && n.pfActive && n.pfChunk == t.Chunk {
		// The chunk is already warming: the demand task absorbs the
		// in-flight load and waits only for its remainder ("hidden hit").
		if len(n.pfWaiters) == 0 {
			if rem := n.pfEnd.Sub(e.sim.Now()); rem > 0 {
				n.missLoad[t] = rem
			}
		}
		n.pfWaiters = append(n.pfWaiters, t)
		return
	}
	if ws, loading := n.waiters[t.Chunk]; loading {
		n.waiters[t.Chunk] = append(ws, t)
		return
	}
	n.waiters[t.Chunk] = []*core.Task{t}
	n.loadq = append(n.loadq, t.Chunk)
	e.kickLoad(n)
}

// emit records a trace event when tracing is enabled.
func (e *Engine) emit(ev trace.Event) {
	if e.cfg.Trace != nil {
		ev.At = e.sim.Now()
		e.cfg.Trace.Add(ev)
	}
}

// jitter perturbs a duration by the configured noise fraction.
func (e *Engine) jitter(d units.Duration) units.Duration {
	if e.cfg.Jitter <= 0 {
		return d
	}
	f := 1 + e.cfg.Jitter*(2*e.rng.Float64()-1)
	return units.Duration(float64(d) * f)
}

// renderCost is the executor-side cost of a task whose chunk is in main
// memory: overhead + (upload if the two-level GPU cache misses) + render +
// composite.
func (e *Engine) renderCost(n *node, t *core.Task) units.Duration {
	m := e.cfg.Model
	work := m.RenderTime(t.Size) + e.compositeTime(t.Job.GroupSize())
	if e.qosc != nil && t.Job.Class == core.Interactive {
		// Degradation rung 2: interactive frames render at half linear
		// resolution, a quarter of the pixels — render and composite both
		// scale with image area.
		if s := e.qosc.ResolutionScale(); s < 1 {
			work = units.Duration(float64(work) * s * s)
		}
	}
	exec := m.TaskOverhead + work
	if n.gpu != nil && !n.gpu.Touch(t.Chunk) {
		exec += m.PCIeRate.TimeFor(t.Size)
		n.gpu.Insert(t.Chunk, t.Size)
	}
	return exec
}

// compositeTime prices a task's compositing share under the configured
// algorithm. The default ("") is the paper's model.CompositeTime; named
// algorithms charge CompositeRound × their actual synchronous round count,
// and dfb charges a single round — the asynchronous tile push has no
// barrier for the group size to stretch.
func (e *Engine) compositeTime(group int) units.Duration {
	m := e.cfg.Model
	switch e.cfg.Compositing {
	case "":
		return m.CompositeTime(group)
	case "dfb":
		if group <= 1 {
			return 0
		}
		return m.CompositeRound
	case "binary-swap":
		if group <= 1 {
			return 0
		}
		return m.CompositeRound * units.Duration(compositing.BinarySwapRounds(group))
	case "2-3-swap":
		if group <= 1 {
			return 0
		}
		return m.CompositeRound * units.Duration(compositing.TwoThreeSwapRounds(group))
	case "direct-send":
		if group <= 1 {
			return 0
		}
		return m.CompositeRound * units.Duration(compositing.DirectSendRounds(group))
	default:
		panic(fmt.Sprintf("sim: unknown compositing algorithm %q", e.cfg.Compositing))
	}
}

// startSerial begins queued tasks on an idle serial-mode node (Definition
// 1: a miss occupies the node for the whole of tio + trender + tcomposite).
func (e *Engine) startSerial(n *node) {
	for !n.failed && !n.stalled && len(n.running) < n.gpus {
		t := n.pop()
		if t == nil {
			return
		}
		now := e.sim.Now()
		// A warm in flight for this very chunk is absorbed: the task pays
		// only the load's remaining time instead of a full miss.
		var absorbed units.Duration
		absorbing := false
		if e.pref != nil {
			if e.pinned[t] {
				delete(e.pinned, t)
				n.mem.Unpin(t.Chunk)
			}
			if n.pfActive && n.pfChunk == t.Chunk {
				absorbing = true
				n.pfTimer.Cancel()
				n.pfTimer = des.Timer{}
				n.pfActive = false
				n.pfWaiters = nil
				if absorbed = n.pfEnd.Sub(now); absorbed < 0 {
					absorbed = 0
				}
				e.pref.Absorbed(n.id, t.Chunk)
				e.head.NotePrefetchHidden()
				e.emit(trace.Event{Kind: trace.PrefetchHit, Job: t.Job.ID, Class: t.Job.Class, Task: t.Index, Node: n.id, Chunk: t.Chunk, Dur: absorbed})
			}
		}
		hit := n.mem.Touch(t.Chunk)
		if hit && e.pref != nil && e.head.DemandTouchPrefetched(t.Chunk, n.id) {
			e.emit(trace.Event{Kind: trace.PrefetchHit, Job: t.Job.ID, Class: t.Job.Class, Task: t.Index, Node: n.id, Chunk: t.Chunk, Hit: true})
		}
		var evicted []volume.ChunkID
		if !hit {
			evicted = n.mem.Insert(t.Chunk, t.Size)
		}
		exec := e.renderCost(n, t)
		if !hit && !absorbing {
			if n.gpu != nil {
				// Two-level: the load brings the chunk to main memory; the
				// upload was already charged by renderCost's GPU miss.
				exec += scaleIO(e.cfg.Model.DiskRate.TimeFor(t.Size), n.ioScale)
			} else {
				exec += scaleIO(e.cfg.Model.IOTime(t.Size), n.ioScale)
			}
		}
		exec = e.jitter(exec)
		if absorbing {
			// The remainder is added after jitter: the load finishes when the
			// in-flight transfer finishes, noise applies to the render only.
			exec += absorbed
		}
		if _, seen := e.started[t.Job.ID]; !seen {
			e.started[t.Job.ID] = now
		}
		e.report.TaskExecuted(hit, exec, len(evicted))
		if !hit {
			e.report.LoadAdd()
		}
		res := core.TaskResult{
			Task: t, Node: n.id, Hit: hit,
			Exec: exec, Predicted: t.PredictedExec,
			Evicted: evicted,
		}
		e.begin(n, t, exec, func(s *des.Simulator) { e.complete(n, res) })
	}
}

// begin arms a task's completion as a suspendable execution record.
func (e *Engine) begin(n *node, t *core.Task, exec units.Duration, fn des.Event) {
	ex := &execution{end: e.sim.Now().Add(exec), fn: fn}
	ex.timer = e.sim.After(exec, fn)
	n.running[t] = ex
}

// scaleIO applies a node's slow-disk multiplier to an I/O duration.
func scaleIO(d units.Duration, factor float64) units.Duration {
	if factor == 1 {
		return d
	}
	return units.Duration(float64(d) * factor)
}

// kickLoad starts the overlap-mode I/O channel if it is idle.
func (e *Engine) kickLoad(n *node) {
	if n.loadActive || n.failed || n.stalled {
		return
	}
	c, ok := n.popLoad()
	if !ok {
		return
	}
	ws := n.waiters[c]
	if len(ws) == 0 {
		// All waiters were requeued by a failure; skip the load.
		delete(n.waiters, c)
		e.kickLoad(n)
		return
	}
	size := ws[0].Size
	dur := e.cfg.Model.IOTime(size)
	if n.gpu != nil {
		dur = e.cfg.Model.DiskRate.TimeFor(size) // upload deferred to render
	}
	dur = scaleIO(e.jitter(dur), n.ioScale)
	fn := func(s *des.Simulator) {
		n.loadActive = false
		n.loadTimer = des.Timer{}
		n.loadFn = nil
		evicted := n.mem.Insert(c, size)
		e.report.EvictionsAdd(len(evicted))
		e.report.LoadAdd()
		e.emit(trace.Event{Kind: trace.Load, Node: n.id, Chunk: c, Dur: dur})
		ws := n.waiters[c]
		delete(n.waiters, c)
		for i, t := range ws {
			if i == 0 {
				// The trigger task reports the load in its execution time
				// and carries the evictions to the head's correction.
				n.missLoad[t] = dur
				e.pendingEvictions[t] = evicted
			}
			n.push(t)
		}
		e.startOverlap(n)
		e.kickLoad(n)
	}
	n.loadActive = true
	n.loadFn = fn
	n.loadEnd = e.sim.Now().Add(dur)
	n.loadTimer = e.sim.After(dur, fn)
}

// startOverlap begins ready tasks on an overlap-mode node.
func (e *Engine) startOverlap(n *node) {
	for !n.failed && !n.stalled && len(n.running) < n.gpus {
		t := n.pop()
		if t == nil {
			return
		}
		if e.pref != nil && e.pinned[t] {
			delete(e.pinned, t)
			n.mem.Unpin(t.Chunk)
		}
		n.mem.Touch(t.Chunk)
		exec := e.jitter(e.renderCost(n, t))
		// Utilization in overlap mode counts executor occupancy only: the
		// whole point of the three-thread design is that loads do not hold
		// the GPU.
		e.report.BusyAdd(exec)
		loadDur, wasMiss := n.missLoad[t]
		delete(n.missLoad, t)
		evicted := e.pendingEvictions[t]
		delete(e.pendingEvictions, t)
		res := core.TaskResult{
			Task: t, Node: n.id, Hit: !wasMiss,
			Exec: exec + loadDur, Predicted: t.PredictedExec,
			Evicted: evicted,
		}
		e.begin(n, t, exec, func(s *des.Simulator) { e.complete(n, res) })
	}
}

// complete finishes a task on its node. When the head is reachable the
// report is accounted immediately; when it is not (head outage or the
// node's partition), the node retains the report for reconciliation and
// keeps draining its local queue — the data plane outlives the control
// plane (§5.10).
func (e *Engine) complete(n *node, res core.TaskResult) {
	res.Finished = e.sim.Now()
	delete(n.running, res.Task)
	e.emit(trace.Event{
		Kind: trace.TaskDone, Job: res.Task.Job.ID, Class: res.Task.Job.Class,
		Task: res.Task.Index, Node: n.id, Chunk: res.Task.Chunk,
		Dur: res.Exec, Hit: res.Hit,
	})
	if e.headDown || n.partitioned {
		n.pendingResults = append(n.pendingResults, res)
		e.report.Recovery.ResultDeferred()
	} else {
		e.account(res)
	}
	if e.frac != nil {
		e.startFrac(n)
	} else if e.cfg.OverlapIO {
		e.startOverlap(n)
	} else {
		e.startSerial(n)
	}
}

// account applies one completion report at the head: table correction, job
// progress, QoS observation. now is when the report reaches the head —
// completion time normally, reconciliation time for reports a head outage
// or partition deferred (the job's latency then includes the outage, as a
// client waiting on the frame would measure it).
func (e *Engine) account(res core.TaskResult) {
	now := e.sim.Now()
	e.head.Correct(res, now)
	if e.onCorrect != nil {
		e.onCorrect(res)
	}
	if e.pref != nil {
		e.pref.Observe(res.Task.Job.Action, res.Task.Chunk, now)
	}
	j := res.Task.Job
	if res.Exec > e.maxExec[j.ID] {
		e.maxExec[j.ID] = res.Exec
	}
	e.finished[j.ID]++
	if e.finished[j.ID] == len(j.Tasks) {
		e.report.JobCompleted(j.Class == core.Interactive, int(j.Action), j.Issued, e.started[j.ID], now)
		if j.Class == core.Batch {
			// Stretch: job latency over its largest task's full-share
			// execution — the fairness metric of the DFRS comparison.
			e.report.StretchAdd(now.Sub(j.Issued), e.maxExec[j.ID])
		}
		if j.Tenant != 0 {
			e.report.TenantCompleted(int(j.Tenant), j.Class == core.Interactive, now.Sub(j.Issued))
		}
		e.emit(trace.Event{Kind: trace.JobDone, Job: j.ID, Class: j.Class, Tenant: j.Tenant, Dur: now.Sub(j.Issued)})
		if e.qosc != nil {
			if changed, level := e.qosc.Observe(j, now.Sub(j.Issued), now); changed {
				e.emit(trace.Event{Kind: trace.Degrade, Level: int(level)})
			}
		}
		delete(e.finished, j.ID)
		delete(e.started, j.ID)
		delete(e.maxExec, j.ID)
	}
}

// fail crashes a node: its queued, loading, and running tasks return to the
// head queue for re-scheduling, and its memory contents are lost.
func (e *Engine) fail(k core.NodeID) {
	n := e.nodes[k]
	if n.failed {
		return
	}
	n.failed = true
	rehome := e.head.MarkFailed(k)
	if e.onNodeDown != nil {
		e.onNodeDown(k)
	}
	e.report.Recovery.NodeDown(int(k), e.sim.Now())
	if rehome.Rehomed > 0 || rehome.Reseeded > 0 {
		e.report.Recovery.ChunksMoved(rehome.Rehomed, rehome.Reseeded)
		if rehome.Fully() {
			// Every orphaned chunk found a warm surviving replica: the
			// outage's service impact ends now, not at the cold repair.
			e.report.Recovery.NodeRehomed(int(k), e.sim.Now())
		}
	}
	e.emit(trace.Event{Kind: trace.NodeFail, Node: k})

	if e.pref != nil {
		n.pfTimer.Cancel()
		e.pref.FailNode(k)
	}

	requeue := func(t *core.Task) {
		t.Assigned = false
		t.PredictedExec = 0
		delete(e.pendingEvictions, t)
		delete(e.pinned, t)
		if t.Job.Remaining == 0 {
			// The job had left the queue; put it back.
			e.queue = append(e.queue, t.Job)
		}
		t.Job.Remaining++
		e.report.Recovery.TaskRedispatched()
	}
	for t, ex := range n.running {
		ex.timer.Cancel()
		requeue(t)
		delete(n.running, t)
	}
	n.loadTimer.Cancel()
	n.loadTimer = des.Timer{}
	n.loadActive = false
	for t := n.pop(); t != nil; t = n.pop() {
		requeue(t)
	}
	for c, ws := range n.waiters {
		for _, t := range ws {
			requeue(t)
		}
		delete(n.waiters, c)
	}
	for _, t := range n.pfWaiters {
		requeue(t)
	}
	n.pfWaiters = nil
	// Completion reports the node retained through a partition or head
	// outage die with it: the head never saw them, so the tasks re-render.
	for _, res := range n.pendingResults {
		requeue(res.Task)
	}
	n.pendingResults = nil
	n.loadq = nil
	n.loadHead = 0
	fresh := e.newNode(k)
	fresh.failed = true
	e.nodes[k] = fresh
	if e.frac != nil {
		e.frac.meter.Set(int(k), 0, e.sim.Now())
		e.frac.coMeter.Set(int(k), 0, e.sim.Now())
	}
	if e.cfg.Scheduler.Trigger() == core.OnArrival {
		e.invokeScheduler()
	}
}

// repair returns a failed node to service with cold caches.
func (e *Engine) repair(k core.NodeID) {
	n := e.nodes[k]
	if !n.failed {
		return
	}
	if e.scaler != nil && e.scaler.inactive[k] {
		// The slot is parked by the autoscaler, not crashed; only a
		// scale-up decision may return it to service.
		return
	}
	n.failed = false
	e.head.MarkRepaired(k, e.sim.Now())
	e.report.Recovery.NodeRepaired(int(k), e.sim.Now())
	e.emit(trace.Event{Kind: trace.NodeRepair, Node: k})
}

// QueueLen exposes the number of jobs still holding unassigned tasks,
// used by tests.
func (e *Engine) QueueLen() int {
	n := len(e.queue)
	if e.qosc != nil {
		n += e.qosc.QueueLen()
	}
	return n
}

// ScenarioEngineConfig builds the engine configuration for a Table II
// scenario under the given scheduler: the library is decomposed per the
// scheduler's policy, the cost model matches the scenario's testbed, and
// caches start warm. Callers may adjust the result (tracing, node-model
// extensions) before New.
func ScenarioEngineConfig(cfg workload.ScenarioConfig, sched core.Scheduler, jitter float64) Config {
	var policy volume.Decomposition = volume.MaxChunk{Chkmax: cfg.Chkmax}
	if o, ok := sched.(core.DecompositionOverrider); ok {
		policy = o.Decomposition(cfg.Nodes)
	}
	model := core.System2CostModel()
	if cfg.System1 {
		model = core.System1CostModel()
	}
	return Config{
		Nodes:     cfg.Nodes,
		MemQuota:  cfg.MemQuota,
		Model:     model,
		Scheduler: sched,
		Library:   cfg.Library(policy),
		Jitter:    jitter,
		Seed:      int64(cfg.ID) * 7919,
		Preload:   true,
	}
}

// RunScenario is the one-call harness the experiments and benchmarks use:
// build the library with the scheduler's decomposition, wire the engine, and
// play the scenario's workload.
func RunScenario(cfg workload.ScenarioConfig, sched core.Scheduler, jitter float64) *metrics.Report {
	eng := New(ScenarioEngineConfig(cfg, sched, jitter))
	wl := workload.Generate(cfg.Spec)
	return eng.Run(wl, 0)
}
