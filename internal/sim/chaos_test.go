package sim

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

// TestChaosCrashMTTRMatchesRepairWindow: a crash with a known repair time
// must show up in the recovery metrics as exactly that much downtime — the
// simulator measures MTTR in virtual time, so it is exact, not approximate.
func TestChaosCrashMTTRMatchesRepairWindow(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{
		At:       units.Time(8 * units.Second),
		Node:     1,
		RepairAt: units.Time(16 * units.Second),
	}}
	rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)

	if rep.Recovery.Faults != 1 {
		t.Errorf("faults = %d, want 1", rep.Recovery.Faults)
	}
	if got, want := rep.Recovery.MTTR(), 8*units.Second; got != want {
		t.Errorf("MTTR = %v, want exactly %v", got, want)
	}
	if rep.Interactive.Completed == 0 {
		t.Error("no interactive jobs completed across the crash window")
	}
}

// TestChaosSlowDiskDegradesLatency: multiplying every node's I/O times must
// make the cold-start loads visibly slower than the fault-free run, while
// the zero-kind crash semantics stay untouched (Kind's zero value is crash,
// so pre-existing Failure literals keep their meaning).
func TestChaosSlowDiskDegradesLatency(t *testing.T) {
	base := smallConfig(core.NewLocalityScheduler(0), 2)
	base.Preload = false // force initial loads so disk speed matters
	wl := steadyWorkload(2, units.Time(20*units.Second))
	clean := New(base).Run(wl, 0)

	slow := smallConfig(core.NewLocalityScheduler(0), 2)
	slow.Preload = false
	for n := 0; n < slow.Nodes; n++ {
		slow.Failures = append(slow.Failures, Failure{
			Kind:     FaultSlowDisk,
			Node:     core.NodeID(n),
			At:       0,
			RepairAt: units.Time(10 * units.Second),
			Factor:   2,
		})
	}
	faulted := New(slow).Run(wl, 0)

	if faulted.Recovery.Faults != int64(slow.Nodes) {
		t.Errorf("faults = %d, want %d", faulted.Recovery.Faults, slow.Nodes)
	}
	if fl, cl := faulted.Interactive.Latency.Mean(), clean.Interactive.Latency.Mean(); fl <= cl {
		t.Errorf("slow-disk latency %v not worse than clean %v", fl, cl)
	}
	// Degraded, not dead: the node keeps completing work.
	if faulted.Interactive.Completed == 0 {
		t.Error("no jobs completed under slow disks")
	}
}

// TestChaosStallPreservesCaches: a transient stall delays work but loses
// nothing — the load count must equal the fault-free run's (caches and
// queues survive), unlike a crash which forces reloads.
func TestChaosStallPreservesCaches(t *testing.T) {
	wl := steadyWorkload(2, units.Time(20*units.Second))
	clean := New(smallConfig(core.NewLocalityScheduler(0), 2)).Run(wl, 0)

	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{
		Kind:     FaultStall,
		At:       units.Time(8 * units.Second),
		Node:     0,
		RepairAt: units.Time(10 * units.Second),
	}}
	stalled := New(cfg).Run(wl, 0)

	if stalled.Loads != clean.Loads {
		t.Errorf("stall forced reloads: %d loads vs %d clean", stalled.Loads, clean.Loads)
	}
	if stalled.Recovery.Faults != 1 {
		t.Errorf("faults = %d, want 1", stalled.Recovery.Faults)
	}
	// The freeze costs throughput or latency, never correctness.
	if stalled.Interactive.Completed > clean.Interactive.Completed {
		t.Errorf("stalled run completed more jobs (%d) than clean (%d)",
			stalled.Interactive.Completed, clean.Interactive.Completed)
	}
	if stalled.Interactive.Completed < clean.Interactive.Completed/2 {
		t.Errorf("2s stall on one node halved completions: %d vs %d",
			stalled.Interactive.Completed, clean.Interactive.Completed)
	}
}

// TestChaosFlapIsDeterministic: a flapping node's crash/repair schedule is
// drawn from the failure's own seed, so two identical runs must agree on
// every metric bit for bit.
func TestChaosFlapIsDeterministic(t *testing.T) {
	run := func() (fps float64, lat units.Duration, redisp int64, faults int64) {
		cfg := smallConfig(core.NewLocalityScheduler(0), 2)
		// Cold caches + a first crash at t=1s: the initial loads (seconds
		// each) are guaranteed to be in flight, so the flap must bounce work.
		cfg.Preload = false
		cfg.Failures = []Failure{{
			Kind:   FaultFlap,
			At:     units.Time(1 * units.Second),
			Node:   2,
			Period: 6 * units.Second,
			Count:  3,
			Seed:   99,
		}}
		rep := New(cfg).Run(steadyWorkload(2, units.Time(30*units.Second)), 0)
		return rep.MeanFramerate(), rep.Interactive.Latency.Mean(),
			rep.Recovery.TasksRedispatched, rep.Recovery.Faults
	}
	fps1, lat1, rd1, f1 := run()
	fps2, lat2, rd2, f2 := run()
	if fps1 != fps2 || lat1 != lat2 || rd1 != rd2 || f1 != f2 {
		t.Errorf("flap runs diverged: (%v,%v,%d,%d) vs (%v,%v,%d,%d)",
			fps1, lat1, rd1, f1, fps2, lat2, rd2, f2)
	}
	if f1 != 3 {
		t.Errorf("faults = %d, want 3 flap cycles", f1)
	}
	// Three crash cycles must bounce at least one task back to the queue.
	if rd1 == 0 {
		t.Error("flapping never re-dispatched a task")
	}
}
