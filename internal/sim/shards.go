package sim

import (
	"fmt"
	"strings"

	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/metrics"
	"vizsched/internal/shard"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// ShardedEngine is the multi-head control plane (§5.11): Config.Shards
// independent dispatchers, each a full Engine over a contiguous partition
// of the nodes, sharing one discrete-event clock. Sessions route to shards
// by consistent hash (tenant affinity first, action otherwise), so every
// frame of a session meets the same head and no session is ever owned by
// two shards. The shards coordinate only through the shared chunk
// directory — published locality facts (Estimate[c], residency, home sets)
// and the donation board — never through each other's tables.
//
// What sharding buys is modeled explicitly: each shard's control plane is
// a serial resource priced by HeadCost. Admissions, dispatches, and
// completion processing extend the shard's ctlFree horizon; an arrival
// finding the control plane busy waits its turn. One overloaded head
// saturates at 1/Admit admissions per second — N shards admit N× that,
// which is the near-linear session-throughput scaling the shardsweep
// experiment measures.
//
// Determinism: all shards share one des.Simulator (a single event heap
// with FIFO tie-breaking at equal timestamps), every cross-shard decision
// (routing, donation) is a pure function of virtual-time state, and no
// code path reads the wall clock, so a sharded run is bit-reproducible at
// any host parallelism.
type ShardedEngine struct {
	cfg   Config
	sim   *des.Simulator
	ring  *shard.Ring
	dir   *shard.Directory
	parts []shard.Partition
	subs  []*Engine
	cost  shard.HeadCost

	// ctlFree[s] is the virtual time at which shard s's serial control
	// loop is next free. Admission work queues behind it; data-plane
	// events never do (rendering does not wait for the head).
	ctlFree []units.Time

	// owners records each session key's admitting shard — the runtime
	// check behind the "no session owned by two shards" invariant.
	owners     map[uint64]int
	violations int

	admitted []int64
	donated  int64
}

// NewSharded validates the configuration and builds a sharded engine.
// cfg.Shards may be 1: that is the single-head baseline under the same
// control-plane cost model, which is what sharding speedups are measured
// against.
func NewSharded(cfg Config) *ShardedEngine {
	s := cfg.Shards
	if s <= 0 {
		s = 1
	}
	if cfg.FracShare != nil {
		panic("sim: FracShare is incompatible with sharded runs")
	}
	if cfg.NewScheduler == nil {
		panic("sim: NewSharded requires Config.NewScheduler (one scheduler instance per shard)")
	}
	if cfg.Autoscale != nil {
		// Per-shard fleets would need cross-shard victim coordination and a
		// shared node-hours bill; not wired yet.
		panic("sim: Config.Autoscale is not supported with sharded runs yet")
	}
	if cfg.Nodes < s {
		panic(fmt.Sprintf("sim: %d shards need at least %d nodes, have %d", s, s, cfg.Nodes))
	}
	cost := shard.DefaultHeadCost()
	if cfg.HeadCost != nil {
		cost = *cfg.HeadCost
	}
	k := 1
	if cfg.Replicas > 1 {
		k = cfg.Replicas
	}
	se := &ShardedEngine{
		cfg:      cfg,
		sim:      des.New(),
		ring:     shard.NewRing(s),
		dir:      shard.NewDirectory(s, k),
		parts:    shard.SplitNodes(cfg.Nodes, s),
		cost:     cost,
		ctlFree:  make([]units.Time, s),
		owners:   make(map[uint64]int),
		admitted: make([]int64, s),
	}
	for i := 0; i < s; i++ {
		sub := cfg
		sub.Nodes = se.parts[i].Count
		sub.Scheduler = cfg.NewScheduler()
		if sub.Scheduler == nil {
			panic("sim: Config.NewScheduler returned nil")
		}
		sub.Shards = 0
		sub.NewScheduler = nil
		sub.HeadCost = nil
		sub.Donation = false
		sub.Failures = nil // injected globally, translated to shard-local IDs
		// Distinct jitter/eviction streams per shard: one cluster's noise
		// must not be a copy of another's.
		sub.Seed = cfg.Seed + int64(i)*1_000_003
		eng := New(sub)
		eng.sim = se.sim // one shared clock and event heap for all shards
		// Shard-disjoint job ID spaces: donation moves jobs between shards,
		// and the adoptee's accounting maps are keyed by ID.
		eng.nextJob = core.JobID(i) << 40
		si, base := i, se.parts[i].Start
		eng.head.SetEstimateSource(func(c volume.ChunkID) (units.Duration, bool) {
			return se.dir.Estimate(c)
		})
		eng.onCorrect = func(res core.TaskResult) { se.publish(si, base, res) }
		eng.onNodeDown = func(n core.NodeID) { se.dir.DropNode(base + int(n)) }
		se.subs = append(se.subs, eng)
	}
	return se
}

// Ring exposes the session-routing ring.
func (se *ShardedEngine) Ring() *shard.Ring { return se.ring }

// Directory exposes the shared chunk directory.
func (se *ShardedEngine) Directory() *shard.Directory { return se.dir }

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.subs) }

// Partition returns shard i's node range in global IDs.
func (se *ShardedEngine) Partition(i int) shard.Partition { return se.parts[i] }

// publish is a shard's directory tap, run after every completion folds
// into its own tables: miss executions become shared Estimate[c] facts,
// residency and home sets follow the shard's predictions, and the
// completion's processing cost occupies the shard's control loop.
func (se *ShardedEngine) publish(si, base int, res core.TaskResult) {
	se.extendCtl(si, se.sim.Now(), se.cost.Complete)
	c := res.Task.Chunk
	if !res.Hit && res.Exec > 0 {
		se.dir.PublishEstimate(c, res.Exec)
	}
	se.dir.PublishResident(c, base+int(res.Node), true)
	for _, ev := range res.Evicted {
		se.dir.PublishResident(ev, base+int(res.Node), false)
	}
	if se.cfg.Replicas > 1 {
		if hs := se.subs[si].head.HomeSet(c); len(hs) > 0 {
			g := make([]int, len(hs))
			for j, n := range hs {
				g[j] = base + int(n)
			}
			se.dir.SetHomes(c, g)
		}
	}
}

// extendCtl occupies shard s's serial control loop for d more virtual time
// starting no earlier than now.
func (se *ShardedEngine) extendCtl(s int, now units.Time, d units.Duration) {
	if d <= 0 {
		return
	}
	if se.ctlFree[s] < now {
		se.ctlFree[s] = now
	}
	se.ctlFree[s] = se.ctlFree[s].Add(d)
}

// Run plays the workload to the horizon (zero selects the workload's own
// length) across all shards and returns the merged report.
func (se *ShardedEngine) Run(wl *workload.Schedule, horizon units.Time) *ShardedReport {
	if horizon <= 0 {
		horizon = wl.Length
	}
	for i := range wl.Requests {
		req := wl.Requests[i]
		s := se.ring.Owner(req.Tenant, req.Action)
		se.sim.At(req.At, func(d *des.Simulator) { se.admit(s, req) })
	}
	for i, sub := range se.subs {
		if sub.cfg.Scheduler.Trigger() == core.Periodic {
			i := i
			se.sim.Every(sub.cfg.Scheduler.Cycle(), func(d *des.Simulator) { se.tick(i) })
		}
	}
	if se.cfg.Donation && len(se.subs) > 1 {
		// Registered after every shard's tick: at equal timestamps the FIFO
		// tie-break runs donation after the owners have scheduled, so a
		// donor only gives away work its own cycle left queued.
		se.sim.Every(se.donationCycle(), func(d *des.Simulator) { se.donate() })
	}
	for _, f := range se.cfg.Failures {
		se.injectGlobal(f)
	}
	for _, sub := range se.subs {
		sub.report.Horizon = horizon
	}
	se.sim.Run(horizon)
	for _, sub := range se.subs {
		if sub.qosc != nil {
			sub.report.QoS = sub.qosc.Outcome()
		}
		if sub.pref != nil {
			sub.report.Prefetch = sub.pref.Outcome(sub.head)
		}
	}
	return se.Report()
}

// admit runs at a request's arrival: the owning shard's serial control
// loop admits it when free, charging Admit. The job's issue time stays the
// arrival time, so admission queueing delay is charged to the job's
// latency — exactly what a client waiting on a saturated head experiences.
func (se *ShardedEngine) admit(s int, req workload.Request) {
	key := shard.SessionKey(req.Tenant, req.Action)
	if prev, ok := se.owners[key]; ok {
		if prev != s {
			se.violations++
		}
	} else {
		se.owners[key] = s
	}
	now := se.sim.Now()
	free := se.ctlFree[s]
	if free < now {
		free = now
	}
	done := free.Add(se.cost.Admit)
	se.ctlFree[s] = done
	se.admitted[s]++
	sub := se.subs[s]
	if done == now {
		se.deliver(sub, req, now)
		return
	}
	se.sim.At(done, func(d *des.Simulator) { se.deliver(sub, req, now) })
}

// deliver hands an admitted request to its shard (or defers it through a
// shard-local head outage, mirroring Engine.arrive).
func (se *ShardedEngine) deliver(sub *Engine, req workload.Request, issued units.Time) {
	if sub.headDown {
		sub.deferred = append(sub.deferred, req)
		sub.report.Recovery.ArrivalDeferred()
		return
	}
	sub.admitArrival(req, issued)
}

// tick runs shard i's periodic scheduler cycle and charges the dispatch
// work to its control loop. Cycles are never skipped — a busy control
// loop delays admissions, not scheduling, matching a head that always
// runs its λ cycle but works through its mailbox serially.
func (se *ShardedEngine) tick(i int) {
	sub := se.subs[i]
	before := sub.report.JobsScheduled
	sub.invokeScheduler()
	if d := sub.report.JobsScheduled - before; d > 0 {
		se.extendCtl(i, se.sim.Now(), se.cost.Dispatch*units.Duration(d))
	}
}

// donationCycle derives the donation cadence from the scheduler period.
func (se *ShardedEngine) donationCycle() units.Duration {
	if c := se.subs[0].cfg.Scheduler.Cycle(); c > 0 {
		return c
	}
	return core.DefaultCycle
}

// idleExecutors counts shard i's executors with nothing running and
// nothing queued — the donation board's advertised capacity. A shard with
// any queued work of its own advertises zero: the ε-guard keeps donation
// strictly work-conserving.
func (se *ShardedEngine) idleExecutors(i int) int {
	sub := se.subs[i]
	if sub.QueueLen() > 0 || sub.headDown {
		return 0
	}
	idle := 0
	for _, n := range sub.nodes {
		if !n.failed && !n.stalled && !n.partitioned && len(n.running) == 0 && n.head >= len(n.fifo) {
			idle += n.gpus
		}
	}
	return idle
}

// batchBacklog counts shard i's queued batch jobs available for adoption:
// the fair queue's backlog under QoS, otherwise fully-unassigned batch
// jobs in the working queue.
func (se *ShardedEngine) batchBacklog(i int) int {
	sub := se.subs[i]
	if sub.qosc != nil {
		return sub.qosc.BatchBacklog()
	}
	n := 0
	for _, j := range sub.queue {
		if j.Class == core.Batch && j.Remaining == len(j.Tasks) {
			n++
		}
	}
	return n
}

// donate is the cross-shard work-donation cycle: every shard advertises
// its posture, then each idle shard (in shard order, so the round is
// deterministic) adopts up to its idle capacity in queued batch jobs from
// the hottest other shard. Under QoS the donor pops through its fair
// queue, so the donated set is exactly the next jobs deficit-round-robin
// would have released — per-tenant order is preserved by construction.
// Interactive work never moves: its session owner keeps its cache
// affinity.
func (se *ShardedEngine) donate() {
	now := se.sim.Now()
	for i := range se.subs {
		se.dir.Advertise(i, se.idleExecutors(i), se.batchBacklog(i))
	}
	for i := range se.subs {
		idle := se.idleExecutors(i)
		if idle == 0 || se.batchBacklog(i) > 0 {
			continue
		}
		donor, backlog, ok := se.dir.Hottest(i)
		if !ok {
			continue
		}
		n := idle
		if n > backlog {
			n = backlog
		}
		jobs := se.takeBatch(donor, n)
		if len(jobs) == 0 {
			continue
		}
		adoptee := se.subs[i]
		adoptee.queue = append(adoptee.queue, jobs...)
		se.dir.NoteDonation(len(jobs))
		se.donated += int64(len(jobs))
		// Moving work is dispatch-shaped control work on both loops.
		se.extendCtl(i, now, se.cost.Dispatch*units.Duration(len(jobs)))
		se.extendCtl(donor, now, se.cost.Dispatch*units.Duration(len(jobs)))
		se.dir.Advertise(donor, se.idleExecutors(donor), se.batchBacklog(donor))
		if adoptee.cfg.Scheduler.Trigger() == core.OnArrival {
			adoptee.invokeScheduler()
		}
	}
}

// takeBatch removes up to n adoptable batch jobs from a donor shard. QoS
// donors pop through the fair queue (DRR order); plain donors give their
// oldest fully-unassigned batch jobs, FIFO.
func (se *ShardedEngine) takeBatch(donor, n int) []*core.Job {
	sub := se.subs[donor]
	if sub.qosc != nil {
		return sub.qosc.PopBatch(nil, n)
	}
	var out []*core.Job
	keep := sub.queue[:0]
	for _, j := range sub.queue {
		if len(out) < n && j.Class == core.Batch && j.Remaining == len(j.Tasks) {
			out = append(out, j)
			continue
		}
		keep = append(keep, j)
	}
	for i := len(keep); i < len(sub.queue); i++ {
		sub.queue[i] = nil
	}
	sub.queue = keep
	return out
}

// injectGlobal translates a cluster-global failure to its owning shard.
// Head-targeted faults (FaultHeadCrash) take down shard 0's control plane;
// node faults follow the node's partition.
func (se *ShardedEngine) injectGlobal(f Failure) {
	if f.Kind == FaultHeadCrash {
		se.subs[0].inject(f)
		return
	}
	g := int(f.Node)
	for i, p := range se.parts {
		if g >= p.Start && g < p.Start+p.Count {
			f.Node = core.NodeID(g - p.Start)
			se.subs[i].inject(f)
			return
		}
	}
	panic(fmt.Sprintf("sim: failure targets unknown node %d", g))
}

// InvariantCheck verifies the cross-shard invariants after (or during) a
// run: every session stayed with its admitting shard, and the shared
// directory is structurally consistent (home sets ≤ k, no duplicates, all
// node references within the cluster). A nil error is the property the
// sweep and the test suite assert.
func (se *ShardedEngine) InvariantCheck() error {
	if se.violations > 0 {
		return fmt.Errorf("sim: %d session(s) admitted by more than one shard", se.violations)
	}
	for key, s := range se.owners {
		if want := se.ring.OwnerKey(key); want != s {
			return fmt.Errorf("sim: session key %x admitted by shard %d, ring owner %d", key, s, want)
		}
	}
	return se.dir.Validate(se.cfg.Nodes)
}

// Report merges the per-shard outcomes.
func (se *ShardedEngine) Report() *ShardedReport {
	r := &ShardedReport{
		Shards:    make([]*metrics.Report, len(se.subs)),
		Admitted:  append([]int64(nil), se.admitted...),
		Donated:   se.donated,
		Directory: se.dir.Snapshot(),
	}
	for i, sub := range se.subs {
		r.Shards[i] = sub.report
	}
	return r
}

// ShardedReport aggregates a sharded run: the per-shard metrics reports
// plus the cross-shard facts (admissions per shard, donated jobs, and the
// directory's counters).
type ShardedReport struct {
	Shards    []*metrics.Report
	Admitted  []int64
	Donated   int64
	Directory shard.Stats
}

// JobsIssued sums issued jobs across shards.
func (r *ShardedReport) JobsIssued() int64 {
	var n int64
	for _, s := range r.Shards {
		n += s.Interactive.Issued + s.Batch.Issued
	}
	return n
}

// JobsCompleted sums completed jobs across shards — the sweep's session
// throughput numerator.
func (r *ShardedReport) JobsCompleted() int64 {
	var n int64
	for _, s := range r.Shards {
		n += s.Interactive.Completed + s.Batch.Completed
	}
	return n
}

// InteractiveCompleted sums completed interactive jobs across shards.
func (r *ShardedReport) InteractiveCompleted() int64 {
	var n int64
	for _, s := range r.Shards {
		n += s.Interactive.Completed
	}
	return n
}

// MeanInteractiveLatency is the completion-weighted mean interactive job
// latency across shards.
func (r *ShardedReport) MeanInteractiveLatency() units.Duration {
	var n int64
	var sum float64
	for _, s := range r.Shards {
		n += s.Interactive.Latency.N
		sum += float64(s.Interactive.Latency.Mean()) * float64(s.Interactive.Latency.N)
	}
	if n == 0 {
		return 0
	}
	return units.Duration(sum / float64(n))
}

// Loads sums disk loads across shards.
func (r *ShardedReport) Loads() int64 {
	var n int64
	for _, s := range r.Shards {
		n += s.Loads
	}
	return n
}

// String summarizes the run for logs.
func (r *ShardedReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shards=%d completed=%d/%d donated=%d dir{chunks=%d hits=%d/%d}",
		len(r.Shards), r.JobsCompleted(), r.JobsIssued(), r.Donated,
		r.Directory.Chunks, r.Directory.Hits, r.Directory.Lookups)
	return b.String()
}
