package sim

import (
	"slices"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/metrics"
	"vizsched/internal/trace"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file wires the elastic autoscaler (§5.12) into the DES engine. The
// fleet is provisioned at Config.Nodes; the scaler holds some of those
// slots *inactive* (cold, HealthDown, never counted as crashed) and moves
// nodes between active and inactive on the policy's decisions:
//
//   scale-up:  the lowest-ID inactive slot returns to service cold through
//              the same MarkRepaired path a rejoining worker uses.
//   drain:     the victim stops taking work (HealthDraining), its queued
//              tasks migrate back to the head queue (counted as migrations,
//              never as crash redispatch), its would-be-orphan chunks are
//              pre-warmed onto survivors through the prefetch governor, and
//              only when its running work has finished and the warms have
//              landed does CompleteDrain retire it — so a drain is never
//              accounted as a crash anywhere in Recovery.
//
// Everything runs on the virtual clock off a des ticker, so runs stay
// bit-deterministic at any experiment -parallel width.

// autoScaler is the engine-side drain/activate machinery around the pure
// policy.
type autoScaler struct {
	pol *autoscale.Policy
	out *metrics.AutoscaleOutcome

	// inactive marks slots the scaler holds out of the fleet; only these
	// may be activated, so chaos-crashed nodes never get "scaled up".
	inactive []bool
	// activeCount includes a draining node until its drain completes: the
	// capacity is still held, so the node-hours bill still runs.
	activeCount int

	// draining is the node mid-drain (-1 when none; the policy starts at
	// most one drain at a time).
	draining     core.NodeID
	drainStart   units.Time
	drainPending []volume.ChunkID // orphans awaiting evacuation warms

	// warming[k] is the bring-up pre-warm deadline for a freshly activated
	// slot (zero when not warming): until it passes, each control tick
	// offers the predictor's hottest chunks to the governor for copying
	// onto node k.
	warming []units.Time

	lastAccount units.Time // node-seconds integral frontier
}

// initAutoscale builds the scaler and deactivates the slots beyond
// Config.Autoscale.Initial. Called from New after preload, so inactive
// slots are rebuilt cold — an inactive node holds nothing.
func (e *Engine) initAutoscale() {
	cfg := *e.cfg.Autoscale
	if cfg.MaxNodes <= 0 || cfg.MaxNodes > e.cfg.Nodes {
		cfg.MaxNodes = e.cfg.Nodes
	}
	if cfg.Initial <= 0 || cfg.Initial > cfg.MaxNodes {
		cfg.Initial = cfg.MaxNodes
	}
	if cfg.MinNodes > cfg.Initial {
		cfg.MinNodes = cfg.Initial
	}
	s := &autoScaler{
		pol:      autoscale.NewPolicy(&cfg),
		out:      &metrics.AutoscaleOutcome{MinActive: cfg.Initial, MaxActive: cfg.Initial},
		inactive: make([]bool, e.cfg.Nodes),
		warming:  make([]units.Time, e.cfg.Nodes),
		draining: -1,
	}
	s.activeCount = cfg.Initial
	e.scaler = s
	for k := cfg.Initial; k < e.cfg.Nodes; k++ {
		e.deactivateSlot(core.NodeID(k))
	}
}

// deactivateSlot parks node k outside the fleet: a fresh cold node object
// that refuses work, HealthDown at the head with no re-homing and no
// Recovery accounting — the non-crash exit CompleteDrain provides.
func (e *Engine) deactivateSlot(k core.NodeID) {
	fresh := e.newNode(k)
	fresh.failed = true
	e.nodes[k] = fresh
	e.head.CompleteDrain(k)
	e.scaler.inactive[k] = true
}

// autoscaleAccount advances the node-seconds integral to now.
func (s *autoScaler) account(now units.Time) {
	if now.After(s.lastAccount) {
		s.out.NodeSeconds += float64(s.activeCount) * now.Sub(s.lastAccount).Seconds()
		s.lastAccount = now
	}
}

// setActiveCount moves the integral frontier and tracks the extrema.
func (s *autoScaler) setActiveCount(now units.Time, n int) {
	s.account(now)
	s.activeCount = n
	if n < s.out.MinActive {
		s.out.MinActive = n
	}
	if n > s.out.MaxActive {
		s.out.MaxActive = n
	}
}

// autoscaleTick is the control loop: advance any drain in flight, sample
// the signals, evaluate the policy, and execute its decision.
func (e *Engine) autoscaleTick() {
	if e.headDown {
		return // no control plane, no fleet decisions
	}
	s := e.scaler
	now := e.sim.Now()
	if s.draining >= 0 {
		e.advanceDrain(now)
	}
	e.pumpWarmup(now)
	switch s.pol.Evaluate(now, e.autoscaleSignals()) {
	case autoscale.ScaleUp:
		e.activateOne(now)
	case autoscale.Drain:
		e.beginDrain(now)
	}
}

// pumpWarmup offers bring-up warms for every slot inside its warm-up window:
// one governed directive per node per tick, copying the predictor's hottest
// chunks onto the newly activated node so it takes interactive work warm.
// Slots iterate in ID order, so runs stay bit-deterministic.
func (e *Engine) pumpWarmup(now units.Time) {
	s := e.scaler
	if e.pref == nil {
		return
	}
	for k := range s.warming {
		if s.warming[k] == 0 {
			continue
		}
		n := e.nodes[k]
		if now.After(s.warming[k]) || s.inactive[k] || n.failed || n.draining {
			s.warming[k] = 0
			continue
		}
		if d, ok := e.pref.Warmup(now, core.NodeID(k), e.head); ok {
			e.startPrefetch(d)
			s.out.BringupWarms++
			s.out.WarmBytes += d.Size
		}
	}
}

// autoscaleSignals samples the policy inputs from dispatcher-owned state.
func (e *Engine) autoscaleSignals() autoscale.Signals {
	s := e.scaler
	sig := autoscale.Signals{
		ActiveNodes: s.activeCount,
		QueueDepth:  e.QueueLen(),
		MinHeadroom: 1,
	}
	if s.draining >= 0 {
		sig.ActiveNodes--
		sig.DrainingNodes = 1
	}
	if e.qosc != nil {
		sig.BatchBacklog = e.qosc.BatchBacklog()
		sig.LadderLevel = int(e.qosc.Level())
		slo := e.qosc.SLO()
		for _, tp := range e.qosc.TenantP95s() {
			if h := autoscale.Headroom(tp.P95, slo); h < sig.MinHeadroom {
				sig.MinHeadroom = h
			}
		}
	} else {
		for _, j := range e.queue {
			if j.Class == core.Batch {
				sig.BatchBacklog++
			}
		}
	}
	var used, quota units.Bytes
	for k := 0; k < e.cfg.Nodes; k++ {
		if s.inactive[k] || e.nodes[k].failed {
			continue
		}
		used += e.head.Caches[k].Used()
		quota += e.head.Caches[k].Quota()
	}
	if quota > 0 {
		sig.CacheUtilization = float64(used) / float64(quota)
	}
	return sig
}

// activateOne returns the lowest-ID inactive slot to service, cold,
// through the same repair path a rejoining worker takes.
func (e *Engine) activateOne(now units.Time) {
	s := e.scaler
	for k := 0; k < e.cfg.Nodes; k++ {
		if !s.inactive[k] {
			continue
		}
		s.inactive[k] = false
		e.nodes[k].failed = false
		e.head.MarkRepaired(core.NodeID(k), now)
		s.setActiveCount(now, s.activeCount+1)
		s.out.ScaleUps++
		e.emit(trace.Event{Kind: trace.NodeRepair, Node: core.NodeID(k)})
		// Pre-warmed bring-up: for the warm-up window, each control tick
		// copies the hottest predicted chunks onto the new node through the
		// governor, so it does not pay demand misses on the interactive path.
		if e.pref != nil {
			s.warming[k] = now.Add(s.pol.Config().Warmup)
			if d, ok := e.pref.Warmup(now, core.NodeID(k), e.head); ok {
				e.startPrefetch(d)
				s.out.BringupWarms++
				s.out.WarmBytes += d.Size
			}
		}
		if e.cfg.Scheduler.Trigger() == core.OnArrival {
			e.invokeScheduler()
		}
		return
	}
}

// beginDrain picks a victim and starts its graceful exit.
func (e *Engine) beginDrain(now units.Time) {
	s := e.scaler
	var cands []autoscale.Candidate
	for k := 0; k < e.cfg.Nodes; k++ {
		n := e.nodes[k]
		if s.inactive[k] || n.failed || n.stalled || n.partitioned || n.draining {
			continue
		}
		cands = append(cands, autoscale.Candidate{
			ID:           core.NodeID(k),
			Busy:         len(n.running) > 0 || n.loadActive,
			HomePressure: e.head.Pressure(core.NodeID(k)),
			CacheBytes:   e.head.Caches[k].Used(),
		})
	}
	victim, ok := autoscale.PickVictim(cands)
	if !ok {
		return
	}
	if !e.head.MarkDraining(victim) {
		return
	}
	n := e.nodes[victim]
	n.draining = true
	s.draining = victim
	s.drainStart = now
	s.out.Drains++
	e.emit(trace.Event{Kind: trace.NodeFail, Node: victim})

	// Abandon any background warm the victim was running; its cache no
	// longer has a future.
	if e.pref != nil {
		n.pfTimer.Cancel()
		n.pfTimer = des.Timer{}
		n.pfActive = false
		e.pref.FailNode(victim)
	}

	// Migrate the victim's queued, not-yet-running work back to the head
	// queue — the work-stealing half of the drain. Requeue order is the
	// node's own FIFO order (then waiters in chunk order, then warm
	// waiters), so each tenant's jobs re-enter the window in the same
	// relative order DRR released them: per-tenant order is preserved, and
	// nothing is ever counted as crash redispatch.
	migrate := func(t *core.Task) {
		t.Assigned = false
		t.PredictedExec = 0
		delete(e.pendingEvictions, t)
		delete(e.pinned, t)
		if t.Job.Remaining == 0 {
			e.queue = append(e.queue, t.Job)
		}
		t.Job.Remaining++
		s.out.TasksMigrated++
	}
	for t := n.pop(); t != nil; t = n.pop() {
		migrate(t)
	}
	chunks := make([]volume.ChunkID, 0, len(n.waiters))
	for c := range n.waiters {
		chunks = append(chunks, c)
	}
	slices.SortFunc(chunks, core.CompareChunks)
	for _, c := range chunks {
		for _, t := range n.waiters[c] {
			migrate(t)
		}
		delete(n.waiters, c)
	}
	for _, t := range n.pfWaiters {
		migrate(t)
	}
	n.pfWaiters = nil
	// The in-flight demand load (if any) completes harmlessly: its waiters
	// are gone, so the completion inserts the chunk and starts nothing.

	// Would-be orphans: chunks only the victim was home to, with no other
	// predicted replica. These get governed pre-warms until they land on
	// survivors (or MaxDrain expires).
	s.drainPending = e.head.DrainOrphans(victim)
	e.pumpEvacuation(now)

	if len(e.queue) > 0 && e.cfg.Scheduler.Trigger() == core.OnArrival {
		e.invokeScheduler()
	}
}

// pumpEvacuation drops pending orphans that have landed on a survivor and
// offers the rest to the governor for warming.
func (e *Engine) pumpEvacuation(now units.Time) {
	s := e.scaler
	if len(s.drainPending) == 0 {
		return
	}
	live := s.drainPending[:0]
	for _, c := range s.drainPending {
		if e.head.ReplicaCount(c) == 0 {
			live = append(live, c)
		}
	}
	s.drainPending = live
	if e.pref == nil || len(s.drainPending) == 0 {
		return
	}
	for _, d := range e.pref.Evacuate(now, s.drainPending, e.head, s.draining) {
		e.startPrefetch(d)
		s.out.OrphanWarms++
		s.out.WarmBytes += d.Size
	}
}

// advanceDrain progresses the drain in flight and completes it once the
// victim is idle and its working set is safe (or MaxDrain expired).
func (e *Engine) advanceDrain(now units.Time) {
	s := e.scaler
	n := e.nodes[s.draining]
	if n.failed {
		// The victim crashed mid-drain: the crash path has taken over
		// (MarkFailed, redispatch, Recovery accounting). Abandon the drain.
		s.draining = -1
		s.drainPending = nil
		return
	}
	e.pumpEvacuation(now)
	idle := len(n.running) == 0 && !n.loadActive
	safe := len(s.drainPending) == 0
	expired := now.Sub(s.drainStart) >= s.pol.Config().MaxDrain
	if (idle && safe) || expired {
		e.finishDrain(now)
	}
}

// finishDrain demotes the victim's home sets, retires it to an inactive
// slot, and settles the accounting.
func (e *Engine) finishDrain(now units.Time) {
	s := e.scaler
	victim := s.draining
	rep, orphans := e.head.DemoteHomes(victim)
	s.out.DrainRehomed += int64(rep.Rehomed)
	s.out.DrainOrphaned += int64(len(orphans))
	e.deactivateSlot(victim)
	s.draining = -1
	s.drainPending = nil
	s.out.DrainsCompleted++
	s.out.DrainTime.Add(now.Sub(s.drainStart))
	s.setActiveCount(now, s.activeCount-1)
}

// finishAutoscale closes the run's accounting at the horizon and attaches
// the outcome to the report.
func (e *Engine) finishAutoscale(horizon units.Time) {
	e.scaler.account(horizon)
	e.report.Autoscale = e.scaler.out
}

// Autoscale exposes the run's autoscale outcome so far (nil when disabled)
// for tests.
func (e *Engine) Autoscale() *metrics.AutoscaleOutcome {
	if e.scaler == nil {
		return nil
	}
	return e.scaler.out
}
