package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"vizsched/internal/compositing"
	"vizsched/internal/core"
	"vizsched/internal/units"
)

// CompFrameConfig drives the analytic frame-pipeline model behind the
// compsweep experiment: a closed-form recurrence over per-frame per-node
// render times that prices the compositing stage per algorithm — swap
// collectives as a full-cluster barrier whose every round waits for the
// slowest node, the distributed framebuffer as an asynchronous tile push
// that overlaps with the next frame's rendering. Everything runs in virtual
// time from a seeded stream, so results are bit-deterministic regardless of
// host parallelism.
type CompFrameConfig struct {
	// Nodes is the render-group size n.
	Nodes int
	// Frames is the animation length; 0 selects 120.
	Frames int
	// Algorithm is "binary-swap", "2-3-swap", "direct-send" or "dfb".
	Algorithm string
	// Model prices the composite round; the zero value selects
	// core.DefaultCostModel().
	Model core.CostModel
	// RenderMean is the mean per-node render time per frame; 0 selects 8ms.
	RenderMean units.Duration
	// Jitter perturbs each node's render time by ±Jitter fraction.
	Jitter float64
	// Period is the frame arrival interval (inverse target FPS); 0 selects
	// 30ms — the paper's ~33fps interactive target.
	Period units.Duration
	// Window bounds dfb's in-flight frames; 0 selects 2. Ignored by the
	// swap collectives, which cannot overlap frames at all.
	Window int
	// Straggler is the index of one slow node, or -1/none when < 0 is not
	// set; StragglerFactor multiplies its render time (and, for the
	// barriered collectives, every exchange round's critical path).
	Straggler       int
	StragglerFactor float64
	// Seed drives the render-time jitter stream.
	Seed int64
}

// CompFrameResult summarizes one analytic run.
type CompFrameResult struct {
	// MeanLatency/P95Latency/MaxLatency are per-frame latencies measured
	// from each frame's scheduled arrival to its delivery.
	MeanLatency units.Duration
	P95Latency  units.Duration
	MaxLatency  units.Duration
	// Makespan is the delivery time of the last frame.
	Makespan units.Duration
}

// withDefaults fills zero values.
func (c CompFrameConfig) withDefaults() CompFrameConfig {
	if c.Frames == 0 {
		c.Frames = 120
	}
	if c.Model.CompositeRound == 0 {
		c.Model = core.DefaultCostModel()
	}
	if c.RenderMean == 0 {
		c.RenderMean = 8 * units.Millisecond
	}
	if c.Period == 0 {
		c.Period = 30 * units.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 1
	}
	return c
}

// RunCompFrame evaluates the model. Frame f arrives at f×Period; a swap
// collective starts rendering f only after f-1's collective finished (the
// barrier occupies every node), while dfb starts a node on frame f the
// moment that node finished its own f-1 render, gated only by the bounded
// in-flight window — render of f overlaps compositing and delivery of f-1.
func RunCompFrame(cfg CompFrameConfig) CompFrameResult {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		panic("sim: CompFrameConfig.Nodes must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	render := make([][]units.Duration, cfg.Frames)
	for f := range render {
		render[f] = make([]units.Duration, cfg.Nodes)
		for i := range render[f] {
			r := units.Duration(float64(cfg.RenderMean) * (1 + cfg.Jitter*(2*rng.Float64()-1)))
			if i == cfg.Straggler && cfg.Straggler >= 0 {
				r = units.Duration(float64(r) * cfg.StragglerFactor)
			}
			render[f][i] = r
		}
	}
	c := cfg.Model.CompositeRound

	lat := make([]units.Duration, cfg.Frames)
	var last units.Time
	switch cfg.Algorithm {
	case "dfb":
		// Tile push + finalized-tile delivery: two asynchronous hops, no
		// round count — the straggler hurts only through its own render
		// time, which the per-node pipeline absorbs until the window gates.
		rc := make([]units.Time, cfg.Nodes) // per-node previous render completion
		done := make([]units.Time, cfg.Frames)
		for f := 0; f < cfg.Frames; f++ {
			arrival := units.Time(f) * units.Time(cfg.Period)
			gate := arrival
			if f >= cfg.Window && done[f-cfg.Window] > gate {
				gate = done[f-cfg.Window]
			}
			var worst units.Time
			for i := range rc {
				start := gate
				if rc[i] > start {
					start = rc[i]
				}
				rc[i] = start + units.Time(render[f][i])
				if rc[i] > worst {
					worst = rc[i]
				}
			}
			done[f] = worst + 2*units.Time(c)
			lat[f] = units.Duration(done[f] - arrival)
			last = done[f]
		}
	case "binary-swap", "2-3-swap", "direct-send":
		var rounds int
		switch cfg.Algorithm {
		case "binary-swap":
			rounds = compositing.BinarySwapRounds(cfg.Nodes)
		case "2-3-swap":
			rounds = compositing.TwoThreeSwapRounds(cfg.Nodes)
		case "direct-send":
			rounds = compositing.DirectSendRounds(cfg.Nodes)
		}
		// Every synchronous round's critical path runs through the slowest
		// participant, so a straggler stretches each round, not just its
		// own render.
		roundCost := units.Time(c)
		if cfg.Straggler >= 0 {
			roundCost = units.Time(float64(roundCost) * cfg.StragglerFactor)
		}
		var prevDone units.Time
		for f := 0; f < cfg.Frames; f++ {
			arrival := units.Time(f) * units.Time(cfg.Period)
			start := arrival
			if prevDone > start {
				start = prevDone // the collective is a barrier: no overlap
			}
			var worst units.Duration
			for _, r := range render[f] {
				if r > worst {
					worst = r
				}
			}
			prevDone = start + units.Time(worst) + units.Time(rounds)*roundCost
			lat[f] = units.Duration(prevDone - arrival)
			last = prevDone
		}
	default:
		panic(fmt.Sprintf("sim: unknown compsweep algorithm %q", cfg.Algorithm))
	}

	res := CompFrameResult{Makespan: units.Duration(last)}
	var sum units.Duration
	sorted := append([]units.Duration(nil), lat...)
	for _, l := range lat {
		sum += l
		if l > res.MaxLatency {
			res.MaxLatency = l
		}
	}
	res.MeanLatency = sum / units.Duration(len(lat))
	// Nearest-rank p95 over the per-frame latencies.
	slices.Sort(sorted)
	res.P95Latency = sorted[(len(sorted)*95+99)/100-1]
	return res
}
