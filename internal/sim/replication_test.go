package sim

import (
	"reflect"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// TestReplicaRehomeOnCrash: with the replication layer on, a crash of a node
// whose chunks survive warm elsewhere must be absorbed by re-homing — the
// recovery report shows chunks moved, nothing re-seeded, and a service-impact
// MTTR capped at the (instantaneous) re-home rather than the repair window.
func TestReplicaRehomeOnCrash(t *testing.T) {
	sched := core.NewLocalityScheduler(0)
	// Every eligible batch placement diverts to a secondary, so replicas
	// build quickly enough for the crash window. The idle guard is off
	// because this workload keeps every node interactive every frame —
	// ε-idle time never accrues on a 4-node cluster serving 4-chunk frames.
	sched.SpreadEvery = 1
	sched.DisableIdleGuard = true
	cfg := smallConfig(sched, 2)
	cfg.Replicas = 2
	cfg.Failures = []Failure{{
		At:       units.Time(16 * units.Second),
		Node:     1,
		RepairAt: units.Time(24 * units.Second),
	}}
	// Steady interactive users plus recurring batch work over the same
	// datasets: the spread pass only diverts batch tasks, so batch traffic
	// is what grows each chunk's home set toward k=2 before the crash.
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(30 * units.Second),
		Datasets:          2,
		ContinuousActions: 2,
		TargetBatch:       40,
		BatchFramesMin:    1,
		BatchFramesMax:    2,
		Seed:              5,
	})
	rep := New(cfg).Run(wl, 0)

	if rep.Recovery.ChunksRehomed == 0 {
		t.Fatalf("crash re-homed no chunks with k=2 (reseeded=%d)", rep.Recovery.ChunksReseeded)
	}
	if got, want := rep.Recovery.MTTR(), 8*units.Second; got != want {
		t.Errorf("raw MTTR = %v, want the full repair window %v", got, want)
	}
	if got := rep.Recovery.ServiceMTTR(); got > rep.Recovery.MTTR() {
		t.Errorf("ServiceMTTR = %v exceeds the raw MTTR %v", got, rep.Recovery.MTTR())
	}
	if rep.Recovery.ChunksReseeded == 0 && rep.Recovery.ServiceMTTR() >= rep.Recovery.MTTR() {
		t.Errorf("ServiceMTTR = %v, want below the raw MTTR %v after a fully-warm re-home",
			rep.Recovery.ServiceMTTR(), rep.Recovery.MTTR())
	}
	if rep.Interactive.Completed == 0 {
		t.Error("no interactive jobs completed across the crash window")
	}
}

// TestReplicaLayerOffByDefault: the engine's zero Config.Replicas preserves
// the paper's single-home behaviour — no home tracking, so a crash reports
// no replication activity and ServiceMTTR equals MTTR.
func TestReplicaLayerOffByDefault(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{
		At:       units.Time(8 * units.Second),
		Node:     1,
		RepairAt: units.Time(16 * units.Second),
	}}
	rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)

	if rep.Recovery.ChunksRehomed != 0 || rep.Recovery.ChunksReseeded != 0 {
		t.Errorf("replication counters = %d/%d with the layer off",
			rep.Recovery.ChunksRehomed, rep.Recovery.ChunksReseeded)
	}
	if rep.Recovery.ServiceMTTR() != rep.Recovery.MTTR() {
		t.Errorf("ServiceMTTR %v != MTTR %v without re-homing",
			rep.Recovery.ServiceMTTR(), rep.Recovery.MTTR())
	}
}

// TestReplicaRunDeterministic: enabling replication keeps the engine's
// golden determinism — identical configs and workloads yield bit-identical
// reports, crash and all.
func TestReplicaRunDeterministic(t *testing.T) {
	run := func() interface{} {
		cfg := smallConfig(core.NewLocalityScheduler(0), 2)
		cfg.Replicas = 2
		cfg.Failures = []Failure{{
			At:       units.Time(8 * units.Second),
			Node:     1,
			RepairAt: units.Time(16 * units.Second),
		}}
		rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)
		// Wall-clock scheduling cost varies run to run; compare the
		// virtual-time story.
		return []interface{}{
			rep.Interactive.Completed, rep.Batch.Completed, rep.MeanFramerate(),
			rep.HitRate(), rep.Recovery.ChunksRehomed, rep.Recovery.ChunksReseeded,
			rep.Recovery.MTTR(), rep.Recovery.ServiceMTTR(), rep.Recovery.TasksRedispatched,
		}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replicated runs diverge:\n%v\n%v", a, b)
	}
}
