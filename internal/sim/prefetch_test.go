package sim

import (
	"fmt"
	"testing"

	"vizsched/internal/baselines"
	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/prefetch"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// scrubWorkload is a time-series scrub: one interactive action stepping
// through consecutive datasets, one frame per step — the trajectory shape
// the Markov predictor is built for. Every step is a cold first frame
// without prefetching.
func scrubWorkload(datasets int, period units.Duration, length units.Time) *workload.Schedule {
	s := &workload.Schedule{Length: length}
	at := units.Time(0)
	for i := 1; i <= datasets; i++ {
		s.Requests = append(s.Requests, workload.Request{
			At: at, Class: core.Interactive, Action: 1, Dataset: volume.DatasetID(i),
		})
		at = at.Add(period)
	}
	return s
}

// scrubConfig builds the single-node scrub arena: eight 512 MB single-chunk
// datasets, System 1 disks (a miss load runs ~5.4 s), no preload so every
// step is cold without help.
func scrubConfig() Config {
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: 512 * units.MB})
	lib := volume.NewLibrary()
	for i := 1; i <= 8; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), "scrub", 512*units.MB, policy))
	}
	return Config{
		Nodes:     1,
		MemQuota:  4 * units.GB,
		Model:     core.System1CostModel(),
		Scheduler: core.NewLocalityScheduler(0),
		Library:   lib,
		Seed:      11,
	}
}

func runScrub(pf *prefetch.Config) *metrics.Report {
	cfg := scrubConfig()
	cfg.Prefetch = pf
	e := New(cfg)
	return e.Run(scrubWorkload(8, 6500*units.Millisecond, units.Time(70*units.Second)), 0)
}

// TestPrefetchSimScrubWarmsAhead drives the dataset scrub with prefetch on:
// once the predictor has seen the first few steps it warms the next dataset
// during the idle window, so later steps land as hits or absorb the
// in-flight load (hidden hits), and the mean first-frame latency drops
// against the same run with prefetch off.
func TestPrefetchSimScrubWarmsAhead(t *testing.T) {
	off := runScrub(nil)
	on := runScrub(prefetch.DefaultConfig())

	if off.Prefetch != nil {
		t.Fatal("prefetch-off run carries a prefetch outcome")
	}
	if on.Prefetch == nil {
		t.Fatal("prefetch-on run missing its outcome")
	}
	po := on.Prefetch
	if po.Issued == 0 {
		t.Fatal("no warms issued across a predictable scrub")
	}
	if po.Hits+po.HiddenHits < 3 {
		t.Fatalf("scrub should convert most steps: hits=%d hidden=%d (outcome %v)",
			po.Hits, po.HiddenHits, po)
	}
	if po.HiddenHits < 1 {
		t.Fatalf("long loads against a short period should absorb at least one warm in flight: %v", po)
	}

	// A single action scrubbing can't improve its own first frame (nothing
	// is trained yet) — the win shows in the mean step latency: later steps
	// land warm instead of paying the full 5.4 s load.
	offLat, onLat := off.Interactive.Latency.Mean(), on.Interactive.Latency.Mean()
	if float64(onLat) > 0.8*float64(offLat) {
		t.Fatalf("mean scrub-step latency did not improve >=20%%: off=%v on=%v", offLat, onLat)
	}
	// The scrub is the best case; demand job count must be unaffected.
	if off.Interactive.Completed != on.Interactive.Completed {
		t.Fatalf("prefetch changed demand completions: off=%d on=%d",
			off.Interactive.Completed, on.Interactive.Completed)
	}
}

// TestPrefetchSimDeterminism: identical configs must produce bit-identical
// reports — the planner, governor, and absorption paths all run in virtual
// time with no rng draws of their own.
func TestPrefetchSimDeterminism(t *testing.T) {
	key := func(r *metrics.Report) string {
		return fmt.Sprintf("%v|%v|%v|%d", r.MeanFirstFrameLatency(), r.MeanFramerate(), r.Prefetch, r.Interactive.Completed)
	}
	a := runScrub(prefetch.DefaultConfig())
	b := runScrub(prefetch.DefaultConfig())
	if key(a) != key(b) {
		t.Fatalf("prefetch run not deterministic:\n%s\n%s", key(a), key(b))
	}
}

// TestPrefetchSimOverlapAbsorption exercises the overlap-IO absorption
// path: a demand task arriving for a chunk mid-warm must wait only the
// remaining load time and count as a hidden hit.
func TestPrefetchSimOverlapAbsorption(t *testing.T) {
	cfg := scrubConfig()
	cfg.OverlapIO = true
	cfg.Prefetch = prefetch.DefaultConfig()
	e := New(cfg)
	r := e.Run(scrubWorkload(8, 6500*units.Millisecond, units.Time(70*units.Second)), 0)
	if r.Prefetch == nil || r.Prefetch.Hits+r.Prefetch.HiddenHits == 0 {
		t.Fatalf("overlap mode converted nothing: %v", r.Prefetch)
	}
}

// TestPrefetchSimInertUnderBaseline: a scheduler that cannot host the
// planner (no PrefetchSetter) leaves the config setting inert — same
// results as off, no outcome in the report.
func TestPrefetchSimInertUnderBaseline(t *testing.T) {
	run := func(pf *prefetch.Config) *metrics.Report {
		cfg := scrubConfig()
		cfg.Scheduler = baselines.NewSF(0)
		cfg.Prefetch = pf
		return New(cfg).Run(scrubWorkload(8, 6500*units.Millisecond, units.Time(70*units.Second)), 0)
	}
	off := run(nil)
	on := run(prefetch.DefaultConfig())
	if on.Prefetch != nil {
		t.Fatal("baseline scheduler produced a prefetch outcome")
	}
	if off.MeanFirstFrameLatency() != on.MeanFirstFrameLatency() ||
		off.Interactive.Completed != on.Interactive.Completed {
		t.Fatal("inert prefetch config changed baseline results")
	}
}

// TestPrefetchSimOffBitIdentical: with prefetch nil, a run over a standard
// scenario must match a second plain run exactly — the wiring adds no rng
// draws, no cache mutations, and no trace events when disabled.
func TestPrefetchSimOffBitIdentical(t *testing.T) {
	run := func() *metrics.Report {
		cfg := workload.Scenario(workload.Scenario1, 0.25)
		return RunScenario(cfg, core.NewLocalityScheduler(0), 0.05)
	}
	a, b := run(), run()
	ka := fmt.Sprintf("%v|%v|%d|%d", a.MeanFramerate(), a.MeanFirstFrameLatency(), a.Interactive.Completed, a.Batch.Completed)
	kb := fmt.Sprintf("%v|%v|%d|%d", b.MeanFramerate(), b.MeanFirstFrameLatency(), b.Interactive.Completed, b.Batch.Completed)
	if ka != kb {
		t.Fatalf("plain scenario runs diverged:\n%s\n%s", ka, kb)
	}
	if a.Prefetch != nil {
		t.Fatal("prefetch outcome present on a plain run")
	}
}

// TestPrefetchSimCrashCancelsWarm: a node crash mid-warm abandons the
// in-flight warm and wastes any already-landed prefetched chunks, without
// wedging the run.
func TestPrefetchSimCrashCancelsWarm(t *testing.T) {
	cfg := scrubConfig()
	cfg.Nodes = 2
	cfg.Prefetch = prefetch.DefaultConfig()
	cfg.Failures = []Failure{{At: units.Time(20 * units.Second), Node: 0, RepairAt: units.Time(30 * units.Second)}}
	e := New(cfg)
	r := e.Run(scrubWorkload(8, 6500*units.Millisecond, units.Time(70*units.Second)), 0)
	if r.Interactive.Completed == 0 {
		t.Fatal("run wedged after crash with prefetch enabled")
	}
	if e.QueueLen() != 0 {
		t.Fatalf("queue not drained after recovery: %d", e.QueueLen())
	}
}
