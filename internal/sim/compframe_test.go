package sim

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

func TestCompFrameDeterministic(t *testing.T) {
	cfg := CompFrameConfig{Nodes: 27, Algorithm: "2-3-swap", Jitter: 0.05, Straggler: -1, Seed: 9}
	a := RunCompFrame(cfg)
	b := RunCompFrame(cfg)
	if a != b {
		t.Fatalf("same config diverged: %+v vs %+v", a, b)
	}
}

// TestCompFrameDFBBeatsSwaps is the acceptance claim in model form: the
// asynchronous tile push charges two hops where the collectives charge a
// round count that grows with the cluster, so dfb's mean frame latency is
// strictly below 2-3 swap from 27 nodes up.
func TestCompFrameDFBBeatsSwaps(t *testing.T) {
	for _, n := range []int{27, 48, 64, 100} {
		base := CompFrameConfig{Nodes: n, Jitter: 0.05, Straggler: -1, Seed: int64(n)}
		base.Algorithm = "dfb"
		d := RunCompFrame(base)
		base.Algorithm = "2-3-swap"
		tt := RunCompFrame(base)
		base.Algorithm = "binary-swap"
		bs := RunCompFrame(base)
		if d.MeanLatency >= tt.MeanLatency {
			t.Errorf("n=%d: dfb mean %v not strictly below 2-3 swap %v", n, d.MeanLatency, tt.MeanLatency)
		}
		if d.MeanLatency >= bs.MeanLatency {
			t.Errorf("n=%d: dfb mean %v not strictly below binary swap %v", n, d.MeanLatency, bs.MeanLatency)
		}
	}
}

// TestCompFrameStragglerHurtsBarriersMore: one 3.5×-slow node stretches
// every barriered round and overruns the frame budget, so the collectives'
// degradation must dwarf dfb's.
func TestCompFrameStragglerHurtsBarriersMore(t *testing.T) {
	for _, n := range []int{8, 27, 100} {
		deg := func(alg string) float64 {
			base := CompFrameConfig{Nodes: n, Algorithm: alg, Jitter: 0.05, Straggler: -1, Seed: 3}
			healthy := RunCompFrame(base)
			base.Straggler = n / 2
			base.StragglerFactor = 3.5
			slow := RunCompFrame(base)
			return float64(slow.MeanLatency) / float64(healthy.MeanLatency)
		}
		dfbDeg, ttDeg := deg("dfb"), deg("2-3-swap")
		if dfbDeg*2 > ttDeg {
			t.Errorf("n=%d: dfb degradation %.2fx not materially below 2-3 swap %.2fx", n, dfbDeg, ttDeg)
		}
	}
}

func TestCompFrameWindowGates(t *testing.T) {
	// A slow cluster (render > period) with window 1 must serialize frames:
	// latency grows with the backlog but makespan equals frames×render-ish.
	cfg := CompFrameConfig{
		Nodes: 4, Frames: 10, Algorithm: "dfb",
		RenderMean: 50 * units.Millisecond, Period: 30 * units.Millisecond,
		Window: 1, Straggler: -1, Seed: 1,
	}
	r := RunCompFrame(cfg)
	if r.Makespan < 10*50*units.Millisecond {
		t.Errorf("window=1 makespan %v too small for serialized frames", r.Makespan)
	}
	cfg.Window = 4
	r4 := RunCompFrame(cfg)
	if r4.Makespan > r.Makespan {
		t.Errorf("wider window slowed the pipeline: %v > %v", r4.Makespan, r.Makespan)
	}
}

func TestCompFrameUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm accepted")
		}
	}()
	RunCompFrame(CompFrameConfig{Nodes: 2, Algorithm: "nope"})
}

// TestEngineCompositingSelector prices the DES composite charge per
// algorithm: dfb charges one round, the collectives their round count, and
// "" keeps the paper's ceil-log2 model bit-exactly.
func TestEngineCompositingSelector(t *testing.T) {
	m := core.DefaultCostModel()
	e := &Engine{cfg: Config{Model: m}}
	if got := e.compositeTime(27); got != m.CompositeTime(27) {
		t.Errorf("default selector diverged: %v vs %v", got, m.CompositeTime(27))
	}
	e.cfg.Compositing = "dfb"
	if got := e.compositeTime(27); got != m.CompositeRound {
		t.Errorf("dfb charge = %v, want one round %v", got, m.CompositeRound)
	}
	if got := e.compositeTime(1); got != 0 {
		t.Errorf("single-node group charged %v", got)
	}
	e.cfg.Compositing = "2-3-swap"
	if got := e.compositeTime(27); got != 4*m.CompositeRound {
		t.Errorf("2-3-swap(27) charge = %v, want 4 rounds", got)
	}
	e.cfg.Compositing = "binary-swap"
	if got := e.compositeTime(32); got != 6*m.CompositeRound {
		t.Errorf("binary-swap(32) charge = %v, want 6 rounds", got)
	}
}
