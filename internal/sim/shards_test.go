package sim

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/shard"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// shardConfig builds a cluster of nodes over nDatasets small datasets, one
// chunk each, warm caches — the control plane, not the data plane, is the
// scarce resource.
func shardConfig(nodes, nDatasets int, size units.Bytes) Config {
	lib := volume.NewLibrary()
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: 256 * units.MB})
	for i := 1; i <= nDatasets; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), "ds", size, policy))
	}
	return Config{
		Nodes:        nodes,
		MemQuota:     2 * units.GB,
		Model:        core.System1CostModel(),
		NewScheduler: func() core.Scheduler { return core.NewLocalityScheduler(0) },
		Library:      lib,
		Seed:         1,
		Preload:      true,
	}
}

// overloadWorkload issues interactive single-frame sessions at a fixed
// rate, each its own action so sessions spread across shards.
func overloadWorkload(perSecond int, seconds int, nDatasets int) *workload.Schedule {
	wl := &workload.Schedule{Length: units.Time(seconds) * units.Time(units.Second)}
	gap := units.Second / units.Duration(perSecond)
	var at units.Time
	id := core.ActionID(1)
	for at < wl.Length {
		wl.Requests = append(wl.Requests, workload.Request{
			At:      at,
			Class:   core.Interactive,
			Action:  id,
			Dataset: volume.DatasetID(1 + int(id)%nDatasets),
		})
		id++
		at = at.Add(gap)
	}
	return wl
}

// TestShardedSingleShardMatchesUnsharded: with one shard and a zero-cost
// control plane, the sharded engine is the ordinary engine — same clock,
// same streams, same outcome. This is the bit-identity anchor for the
// golden path.
func TestShardedSingleShardMatchesUnsharded(t *testing.T) {
	cfg := shardConfig(4, 4, units.GB)
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(10 * units.Second),
		Datasets:          4,
		ContinuousActions: 4,
		TargetBatch:       6,
		Seed:              5,
	})

	plain := cfg
	plain.Scheduler = cfg.NewScheduler()
	base := New(plain).Run(wl, 0)

	scfg := cfg
	scfg.Shards = 1
	scfg.HeadCost = &shard.HeadCost{}
	rep := NewSharded(scfg).Run(wl, 0)

	s := rep.Shards[0]
	if s.Interactive.Completed != base.Interactive.Completed ||
		s.Batch.Completed != base.Batch.Completed ||
		s.Loads != base.Loads ||
		s.Interactive.Latency.Mean() != base.Interactive.Latency.Mean() {
		t.Fatalf("single-shard run diverged from unsharded:\n sharded  %v\n plain    %v", s, base)
	}
}

// TestShardedDeterminism: the same sharded configuration run twice yields
// identical outcomes — the shared heap's FIFO tie-break and the pure-
// function cross-shard decisions leave no room for divergence.
func TestShardedDeterminism(t *testing.T) {
	run := func() *ShardedReport {
		cfg := shardConfig(8, 6, 256*units.MB)
		cfg.Shards = 4
		cfg.Donation = true
		return NewSharded(cfg).Run(overloadWorkload(400, 5, 6), 0)
	}
	a, b := run(), run()
	if a.JobsCompleted() != b.JobsCompleted() || a.Loads() != b.Loads() ||
		a.Donated != b.Donated || a.MeanInteractiveLatency() != b.MeanInteractiveLatency() {
		t.Fatalf("sharded runs diverged:\n a %v\n b %v", a, b)
	}
	for i := range a.Shards {
		if a.Shards[i].Interactive.Completed != b.Shards[i].Interactive.Completed {
			t.Fatalf("shard %d diverged: %d vs %d jobs",
				i, a.Shards[i].Interactive.Completed, b.Shards[i].Interactive.Completed)
		}
	}
}

// TestShardedInvariants: after a shard-spanning run every cross-shard
// invariant holds — session ownership is unique and ring-consistent, and
// the directory is structurally sound.
func TestShardedInvariants(t *testing.T) {
	cfg := shardConfig(8, 6, 256*units.MB)
	cfg.Shards = 4
	cfg.Donation = true
	cfg.Replicas = 2
	se := NewSharded(cfg)
	se.Run(overloadWorkload(400, 5, 6), 0)
	if err := se.InvariantCheck(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
	if st := se.Directory().Snapshot(); st.Publishes == 0 {
		t.Fatal("directory saw no publishes — shards are not sharing locality facts")
	}
}

// TestShardedDonation: one tenant's batch flood lands on its owning shard;
// the other shard is idle past the ε-guard and must adopt queued batch
// jobs through the donation board, raising total completions.
func TestShardedDonation(t *testing.T) {
	build := func(donation bool) (*ShardedEngine, *workload.Schedule) {
		cfg := shardConfig(4, 2, 256*units.MB)
		cfg.Shards = 2
		cfg.Donation = donation
		se := NewSharded(cfg)
		// All work from one tenant: every job is admitted by one shard.
		owner := se.Ring().Owner(7, 1)
		_ = owner
		wl := &workload.Schedule{Length: units.Time(30 * units.Second)}
		for i := 0; i < 120; i++ {
			wl.Requests = append(wl.Requests, workload.Request{
				At:      units.Time(units.Duration(i) * units.Millisecond),
				Class:   core.Batch,
				Action:  core.ActionID(1 + i),
				Tenant:  7,
				Dataset: volume.DatasetID(1 + i%2),
			})
		}
		return se, wl
	}

	seOff, wl := build(false)
	off := seOff.Run(wl, 0)
	seOn, wl2 := build(true)
	on := seOn.Run(wl2, 0)

	if on.Donated == 0 {
		t.Fatal("no jobs donated despite an idle shard and a flooded shard")
	}
	if err := seOn.InvariantCheck(); err != nil {
		t.Fatalf("invariant violated under donation: %v", err)
	}
	// Donation must not lose or duplicate work…
	if on.JobsCompleted() > on.JobsIssued() {
		t.Fatalf("completed %d of %d issued — duplicated work", on.JobsCompleted(), on.JobsIssued())
	}
	// …and with twice the executors in play, the flood drains faster.
	offLat, onLat := offMeanBatch(off), offMeanBatch(on)
	if onLat >= offLat {
		t.Fatalf("donation did not help: batch working mean %v (on) vs %v (off), donated %d",
			onLat, offLat, on.Donated)
	}
}

// offMeanBatch is the completion-weighted batch latency mean of a run.
func offMeanBatch(r *ShardedReport) units.Duration {
	var n int64
	var sum float64
	for _, s := range r.Shards {
		n += s.Batch.Latency.N
		sum += float64(s.Batch.Latency.Mean()) * float64(s.Batch.Latency.N)
	}
	if n == 0 {
		return 0
	}
	return units.Duration(sum / float64(n))
}

// TestShardedThroughputScaling is the acceptance benchmark in miniature:
// with the control plane as the bottleneck (admissions at 3.5× a single
// head's capacity), 4 shards must complete at least 3× the sessions one
// shard does.
func TestShardedThroughputScaling(t *testing.T) {
	run := func(shards int) *ShardedReport {
		cfg := shardConfig(16, 8, 64*units.MB)
		cfg.Shards = shards
		cfg.HeadCost = &shard.HeadCost{
			Admit:    2 * units.Millisecond, // 500 admissions/s per shard
			Dispatch: 50 * units.Microsecond,
			Complete: 20 * units.Microsecond,
		}
		se := NewSharded(cfg)
		rep := se.Run(overloadWorkload(1750, 8, 8), 0) // 3.5× one shard's capacity
		if err := se.InvariantCheck(); err != nil {
			t.Fatalf("invariant violated at %d shards: %v", shards, err)
		}
		return rep
	}
	one := run(1).JobsCompleted()
	four := run(4).JobsCompleted()
	if one == 0 {
		t.Fatal("baseline completed nothing")
	}
	if ratio := float64(four) / float64(one); ratio < 3 {
		t.Fatalf("4 shards completed %d vs %d at 1 shard — %.2fx, want ≥3x", four, one, ratio)
	}
}
