package sim

import (
	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/trace"
)

// This file is the execution side of the predictive prefetching layer
// (§5.8): it plays the directives the scheduler's planner fitted into the
// cycle's idle windows. A warm is modeled as a background I/O stream — it
// never occupies the executor, mirroring the three-thread design of §V-C —
// and is disposable: any conflict with demand work cancels it.

// startPrefetch begins a planned warm on its target node. The plan was made
// against the head's *predicted* tables; reality may disagree (the node
// failed or stalled since, the chunk is already resident or already loading
// for demand), in which case the directive cancels rather than panics.
func (e *Engine) startPrefetch(d core.PrefetchDirective) {
	n := e.nodes[d.Node]
	cancel := n.failed || n.stalled || n.pfActive || n.mem.Contains(d.Chunk)
	if !cancel && e.cfg.OverlapIO {
		_, loading := n.waiters[d.Chunk]
		cancel = loading
	}
	if cancel {
		e.pref.Cancel(d.Node, d.Chunk)
		e.emit(trace.Event{Kind: trace.PrefetchCancel, Node: d.Node, Chunk: d.Chunk})
		return
	}
	dur := e.cfg.Model.IOTime(d.Size)
	if n.gpu != nil {
		dur = e.cfg.Model.DiskRate.TimeFor(d.Size) // upload deferred to render
	}
	// No jitter: warms must not consume draws from the demand jitter
	// stream, or a prefetch-on run would perturb demand execution times and
	// the off-by-default bit-identity guarantee would be unverifiable.
	dur = scaleIO(dur, n.ioScale)
	n.pfActive = true
	n.pfChunk = d.Chunk
	n.pfSize = d.Size
	n.pfEnd = e.sim.Now().Add(dur)
	n.pfTimer = e.sim.After(dur, func(s *des.Simulator) { e.completePrefetch(n) })
	e.emit(trace.Event{Kind: trace.PrefetchIssue, Node: d.Node, Chunk: d.Chunk, Dur: dur})
}

// completePrefetch lands a finished warm: hand the chunk to the demand
// tasks that absorbed it mid-flight, or cold-insert it — at the cold end of
// the recency order, never evicting a chunk pinned by scheduled demand
// work.
func (e *Engine) completePrefetch(n *node) {
	n.pfTimer = des.Timer{}
	c, size := n.pfChunk, n.pfSize
	ws := n.pfWaiters
	n.pfActive = false
	n.pfWaiters = nil

	if len(ws) > 0 {
		// Overlap mode: demand absorbed the warm while it was in flight
		// ("hidden hits") — the chunk lands warm like any demand load and
		// the waiting tasks become ready.
		evicted := n.mem.Insert(c, size)
		e.report.EvictionsAdd(len(evicted))
		e.report.LoadAdd()
		e.pref.Absorbed(n.id, c)
		for i, t := range ws {
			if i == 0 {
				// The first waiter carries the evictions to the head's
				// correction, like an ordinary load trigger.
				e.pendingEvictions[t] = evicted
			}
			e.head.NotePrefetchHidden()
			e.emit(trace.Event{Kind: trace.PrefetchHit, Job: t.Job.ID, Class: t.Job.Class, Task: t.Index, Node: n.id, Chunk: c})
			n.push(t)
		}
		e.startOverlap(n)
		return
	}

	evicted, ok := n.mem.InsertCold(c, size)
	if !ok {
		// The quota is pinned solid by scheduled demand work; drop the warm.
		e.pref.Cancel(n.id, c)
		e.emit(trace.Event{Kind: trace.PrefetchCancel, Node: n.id, Chunk: c})
		return
	}
	e.report.EvictionsAdd(len(evicted))
	e.pref.Loaded(n.id, c)
	e.head.MarkPrefetched(c, n.id, size)
	// Keep the predicted cache in sync with what the cold insert actually
	// displaced (there is no TaskResult to carry these through Correct).
	for _, ev := range evicted {
		e.head.Caches[n.id].Remove(ev)
		e.pref.NoteEvicted(n.id, ev)
		if e.head.NotePrefetchEvicted(ev, n.id) {
			e.emit(trace.Event{Kind: trace.PrefetchWaste, Node: n.id, Chunk: ev})
		}
	}
}
