package sim

import (
	"cmp"
	"slices"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/qos"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// twoPhaseWorkload builds an overload phase (many users hammering a small
// cached working set — render capacity, not I/O, is the bottleneck, so
// completions keep flowing with latency well over any SLO) followed by a
// calm phase (one user), with users spread over four tenants.
func twoPhaseWorkload(actions, datasets int, split, length units.Time) *workload.Schedule {
	s := &workload.Schedule{Length: length}
	for i := 0; i < actions; i++ {
		s.Actions = append(s.Actions, workload.Action{
			ID:      core.ActionID(i + 1),
			Dataset: volume.DatasetID(i%datasets + 1),
			Tenant:  core.TenantID(i%4 + 1),
			Start:   0,
			End:     split,
			Period:  30 * units.Millisecond,
		})
	}
	// The calm phase continues session 1 rather than opening a new one: if
	// the ladder reached reject-sessions, a newcomer would be refused and
	// nothing would ever drive recovery — established sessions keep flowing.
	s.Actions = append(s.Actions, workload.Action{
		ID:      1,
		Dataset: 1,
		Tenant:  1,
		Start:   split.Add(units.Second),
		End:     length,
		Period:  30 * units.Millisecond,
	})
	for _, a := range s.Actions {
		s.Requests = append(s.Requests, a.Requests()...)
	}
	slices.SortStableFunc(s.Requests, func(a, b workload.Request) int { return cmp.Compare(a.At, b.At) })
	return s
}

func qosSimConfig() Config {
	lib := volume.NewLibrary()
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: 256 * units.MB})
	for i := 1; i <= 2; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), "ds", units.GB, policy))
	}
	return Config{
		Nodes:     4,
		MemQuota:  2 * units.GB, // both datasets cache fully: pure render overload
		Model:     core.System1CostModel(),
		Scheduler: core.NewLocalityScheduler(0),
		Library:   lib,
		Seed:      3,
		Preload:   true,
	}
}

// TestQoSSimLadderEngageAndRecover runs overload-then-calm through the
// simulator and checks the degradation ladder climbs during the thrash phase
// and is fully withdrawn by the end of the run.
func TestQoSSimLadderEngageAndRecover(t *testing.T) {
	cfg := qosSimConfig()
	cfg.QoS = &qos.Config{
		InteractiveRate: 1000, InteractiveBurst: 1000,
		BatchRate: 1000, BatchBurst: 1000,
		InteractiveSLO: 100 * units.Millisecond,
		Window:         250 * units.Millisecond,
		StepWindows:    2, RecoverWindows: 4,
		// Keep the backlog bounded like a real viewer (latest frame wins) so
		// completions — the ladder's only signal — keep flowing under load.
		AlwaysShedStale: true,
	}
	wl := twoPhaseWorkload(12, 2, units.Time(5*units.Second), units.Time(30*units.Second))
	rep := New(cfg).Run(wl, 0)

	if rep.QoS == nil {
		t.Fatal("report carries no QoS outcome with QoS enabled")
	}
	if rep.QoS.MaxLevel < int(qos.LevelHalveBatch) {
		t.Fatalf("ladder never engaged under thrash: max level %d", rep.QoS.MaxLevel)
	}
	if rep.QoS.FinalLevel != int(qos.LevelNormal) {
		t.Fatalf("ladder did not recover: final level %d after calm phase", rep.QoS.FinalLevel)
	}
	if rep.QoS.LevelChanges < 2 {
		t.Fatalf("expected at least one engage and one recover transition, got %d", rep.QoS.LevelChanges)
	}
	// Per-tenant accounting must partition every issued job.
	for _, ts := range rep.QoS.Tenants {
		if ts.ShedOnArrival() < 0 {
			t.Fatalf("tenant %d: negative shed-on-arrival (%+v)", ts.Tenant, ts)
		}
	}
}

// TestQoSSimDeterministic runs the same QoS-on simulation twice and demands
// bit-identical outcomes — the property the qossweep experiment relies on.
func TestQoSSimDeterministic(t *testing.T) {
	run := func() (int64, int64, *int64, float64) {
		cfg := qosSimConfig()
		cfg.QoS = &qos.Config{
			InteractiveRate: 40, InteractiveBurst: 20,
			BatchRate: 20, BatchBurst: 20,
			InteractiveSLO: 100 * units.Millisecond,
		}
		wl := twoPhaseWorkload(12, 2, units.Time(6*units.Second), units.Time(10*units.Second))
		rep := New(cfg).Run(wl, 0)
		var rejected *int64
		if rep.QoS != nil {
			rejected = &rep.QoS.Rejected
		}
		return rep.Interactive.Issued, rep.Interactive.Completed, rejected, rep.JainFairness()
	}
	i1, c1, r1, j1 := run()
	i2, c2, r2, j2 := run()
	if i1 != i2 || c1 != c2 || j1 != j2 {
		t.Fatalf("QoS-on runs diverged: issued %d/%d completed %d/%d jain %v/%v", i1, i2, c1, c2, j1, j2)
	}
	if r1 == nil || r2 == nil || *r1 != *r2 {
		t.Fatalf("rejected counts diverged: %v vs %v", r1, r2)
	}
	if c1 == 0 {
		t.Fatal("nothing completed")
	}
}

// TestTenantAssignmentDoesNotPerturbSchedule is the golden-output guard: a
// spec with tenants enabled must generate exactly the same request stream
// (times, datasets, classes) as without — only the Tenant labels may differ.
func TestTenantAssignmentDoesNotPerturbSchedule(t *testing.T) {
	base := workload.Spec{
		Length:            units.Time(10 * units.Second),
		Datasets:          6,
		TargetInteractive: 500,
		TargetBatch:       100,
		Seed:              102,
	}
	tenanted := base
	tenanted.Tenants = 4
	tenanted.TenantSkew = 1.5
	a := workload.Generate(base)
	b := workload.Generate(tenanted)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	tenantsSeen := map[core.TenantID]bool{}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.At != rb.At || ra.Dataset != rb.Dataset || ra.Class != rb.Class || ra.Action != rb.Action {
			t.Fatalf("request %d differs beyond tenant: %+v vs %+v", i, ra, rb)
		}
		if ra.Tenant != 0 {
			t.Fatalf("untenanted spec produced tenant %d", ra.Tenant)
		}
		tenantsSeen[rb.Tenant] = true
	}
	if len(tenantsSeen) < 2 {
		t.Fatalf("tenanted spec used %d tenants, want several", len(tenantsSeen))
	}
}
