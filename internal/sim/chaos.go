package sim

import (
	"fmt"
	"math/rand"

	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/trace"
	"vizsched/internal/units"
)

// FaultKind selects what a Failure does to its node. The crash model is the
// paper's §VI-D experiment; the other kinds extend it into a small chaos
// suite covering the failure shapes a GPU cluster actually exhibits.
type FaultKind int

const (
	// FaultCrash kills the node: queued/loading/running work returns to the
	// head queue and the node's caches are lost. RepairAt (if set) brings it
	// back cold.
	FaultCrash FaultKind = iota
	// FaultSlowDisk multiplies the node's disk I/O times by Factor between
	// At and RepairAt — a degraded-but-alive node that drags every miss.
	FaultSlowDisk
	// FaultStall freezes the node between At and RepairAt: nothing starts
	// or completes, but queues and caches survive and work resumes where it
	// stopped — a GC pause, driver hiccup, or network partition that heals.
	FaultStall
	// FaultFlap runs Count seeded crash/repair cycles spaced Period apart —
	// the pathological reconnect loop that stresses rejoin handling.
	FaultFlap
	// FaultHeadCrash takes the head's control plane down between At and
	// RepairAt (§5.10): no admissions, no scheduling, no completion
	// processing. Nodes keep draining already-dispatched work and retain
	// their completion reports; at repair the recovered standby reconciles
	// the retained reports and admits the deferred arrivals — committed
	// work is never re-rendered. The failure's Node field is ignored.
	FaultHeadCrash
	// FaultPartition isolates a live node from the head between At and
	// RepairAt — the DES mirror of the transport fault injector's
	// Partition()/Heal(). The head demotes the node to suspect (no new
	// work); the node keeps executing its queue and retains completion
	// reports, reconciled at heal with its predicted caches intact.
	FaultPartition
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSlowDisk:
		return "slowdisk"
	case FaultStall:
		return "stall"
	case FaultFlap:
		return "flap"
	case FaultHeadCrash:
		return "headcrash"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// interval returns a Failure's [At, RepairAt] span, defaulting the end for
// interval faults left open.
func (f Failure) interval() (units.Time, units.Time) {
	end := f.RepairAt
	if end <= f.At {
		end = f.At.Add(10 * units.Second)
	}
	return f.At, end
}

// inject schedules one Failure's events onto the simulation clock.
func (e *Engine) inject(f Failure) {
	if f.Kind != FaultHeadCrash && (int(f.Node) < 0 || int(f.Node) >= e.cfg.Nodes) {
		panic(fmt.Sprintf("sim: failure targets unknown node %d", f.Node))
	}
	switch f.Kind {
	case FaultCrash:
		e.sim.At(f.At, func(s *des.Simulator) {
			e.report.Recovery.FaultInjected(s.Now())
			e.fail(f.Node)
		})
		if f.RepairAt > f.At {
			e.sim.At(f.RepairAt, func(s *des.Simulator) { e.repair(f.Node) })
		}

	case FaultSlowDisk:
		factor := f.Factor
		if factor <= 1 {
			factor = 4
		}
		from, to := f.interval()
		e.sim.During(from, to,
			func(s *des.Simulator) {
				e.report.Recovery.FaultInjected(s.Now())
				e.nodes[f.Node].ioScale = factor
			},
			func(s *des.Simulator) {
				// A crash inside the interval swaps in a fresh (healthy)
				// node; resetting it to 1 is a harmless no-op.
				e.nodes[f.Node].ioScale = 1
			})

	case FaultStall:
		from, to := f.interval()
		var stalled *node
		e.sim.During(from, to,
			func(s *des.Simulator) {
				e.report.Recovery.FaultInjected(s.Now())
				stalled = e.stallNode(f.Node)
			},
			func(s *des.Simulator) {
				if stalled != nil {
					e.resumeNode(f.Node, stalled)
				}
			})

	case FaultFlap:
		period := f.Period
		if period <= 0 {
			period = 5 * units.Second
		}
		count := f.Count
		if count <= 0 {
			count = 3
		}
		// The schedule is drawn from the failure's own seed so a flap is
		// reproducible independent of the engine's jitter stream.
		rng := rand.New(rand.NewSource(f.Seed ^ (int64(f.Node)+1)*0x9e3779b9))
		at := f.At
		for i := 0; i < count; i++ {
			down := period / 2
			// Jitter the down time ±25% so cycles don't phase-lock with the
			// scheduler period.
			down += units.Duration(float64(period) * 0.125 * (2*rng.Float64() - 1))
			crashAt, repairAt := at, at.Add(down)
			e.sim.At(crashAt, func(s *des.Simulator) {
				e.report.Recovery.FaultInjected(s.Now())
				e.fail(f.Node)
			})
			e.sim.At(repairAt, func(s *des.Simulator) { e.repair(f.Node) })
			at = at.Add(period)
		}

	case FaultHeadCrash:
		from, to := f.interval()
		e.sim.During(from, to,
			func(s *des.Simulator) {
				e.report.Recovery.FaultInjected(s.Now())
				e.headFail()
			},
			func(s *des.Simulator) { e.headRepair() })

	case FaultPartition:
		from, to := f.interval()
		e.sim.During(from, to,
			func(s *des.Simulator) {
				e.report.Recovery.FaultInjected(s.Now())
				e.partition(f.Node)
			},
			func(s *des.Simulator) { e.heal(f.Node) })

	default:
		panic(fmt.Sprintf("sim: unknown fault kind %v", f.Kind))
	}
}

// stallNode freezes a live node: running executions and any in-flight load
// are suspended with their remaining times recorded. Returns nil when the
// node is already down or stalled.
func (e *Engine) stallNode(k core.NodeID) *node {
	n := e.nodes[k]
	if n.failed || n.stalled {
		return nil
	}
	n.stalled = true
	now := e.sim.Now()
	if e.frac != nil {
		// Frac mode suspends through the share accounts: re-pricing with the
		// node stalled zeroes every slot's rate (crediting progress up to
		// now first), so the stalled span accrues no progress and resume
		// re-prices from exactly where each task stopped.
		e.repriceNode(n)
	} else {
		for _, ex := range n.running {
			ex.timer.Cancel()
			ex.remaining = ex.end.Sub(now)
			if ex.remaining < 0 {
				ex.remaining = 0
			}
		}
	}
	if n.loadActive {
		n.loadTimer.Cancel()
		n.loadTimer = des.Timer{}
		n.loadRemaining = n.loadEnd.Sub(now)
		if n.loadRemaining < 0 {
			n.loadRemaining = 0
		}
	}
	if e.pref != nil && n.pfActive {
		// Warms are disposable: a stall cancels the in-flight warm rather
		// than suspending it. Demand tasks that had absorbed it fall back to
		// an ordinary load, restarted after the stall.
		n.pfTimer.Cancel()
		n.pfTimer = des.Timer{}
		n.pfActive = false
		e.pref.Cancel(n.id, n.pfChunk)
		e.emit(trace.Event{Kind: trace.PrefetchCancel, Node: n.id, Chunk: n.pfChunk})
		if len(n.pfWaiters) > 0 {
			n.waiters[n.pfChunk] = append(n.waiters[n.pfChunk], n.pfWaiters...)
			n.loadq = append(n.loadq, n.pfChunk)
			n.pfWaiters = nil
		}
	}
	return n
}

// resumeNode unfreezes a stalled node, re-arming every suspended execution
// and load for its remaining time. If the node crashed during the stall the
// engine swapped in a fresh node and this is a no-op.
func (e *Engine) resumeNode(k core.NodeID, n *node) {
	if e.nodes[k] != n || !n.stalled {
		return
	}
	n.stalled = false
	now := e.sim.Now()
	if e.frac != nil {
		// startFrac fills freed slots and re-prices, which restores every
		// suspended slot's rate and re-arms its completion timer.
		e.startFrac(n)
		return
	}
	for _, ex := range n.running {
		ex.end = now.Add(ex.remaining)
		ex.timer = e.sim.After(ex.remaining, ex.fn)
	}
	if n.loadActive {
		n.loadEnd = now.Add(n.loadRemaining)
		n.loadTimer = e.sim.After(n.loadRemaining, n.loadFn)
	}
	if e.cfg.OverlapIO {
		e.startOverlap(n)
	} else {
		e.startSerial(n)
	}
	e.kickLoad(n)
}
