package sim

import (
	"fmt"
	"testing"

	"vizsched/internal/autoscale"
	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// burstThenQuiet front-loads a burst of interactive frames and then leaves
// the rest of the horizon idle — the shape that makes the policy drain.
func burstThenQuiet(frames int, gap units.Duration, length units.Time) *workload.Schedule {
	s := &workload.Schedule{Length: length}
	at := units.Time(0)
	for i := 0; i < frames; i++ {
		s.Requests = append(s.Requests, workload.Request{
			At: at, Class: core.Interactive, Action: core.ActionID(1 + i%2), Dataset: 1,
		})
		at = at.Add(gap)
	}
	return s
}

// TestAutoscaleDrainIsNeverACrash is the tentpole invariant: an elastic run
// that drains nodes must leave every crash-recovery counter at zero — no
// redispatch, no MTTR samples, no rarest-first re-seeding — and lose no
// jobs. A drain is a voluntary exit, not a failure.
func TestAutoscaleDrainIsNeverACrash(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Replicas = 2
	cfg.Autoscale = &autoscale.Config{
		Interval: 250 * units.Millisecond,
		MinNodes: 1,
		HoldDown: 4,
		Cooldown: 2 * units.Second,
	}
	rep := New(cfg).Run(burstThenQuiet(16, 400*units.Millisecond, units.Time(60*units.Second)), 0)

	as := rep.Autoscale
	if as == nil {
		t.Fatal("elastic run carries no autoscale outcome")
	}
	if as.Drains == 0 || as.DrainsCompleted == 0 {
		t.Fatalf("quiet tail should drain: %+v", as)
	}
	if rep.Recovery.TasksRedispatched != 0 {
		t.Errorf("drain counted as crash redispatch: %d", rep.Recovery.TasksRedispatched)
	}
	if rep.Recovery.Downtime.N != 0 || rep.Recovery.EffectiveDowntime.N != 0 {
		t.Errorf("drain produced MTTR samples: down=%d effective=%d",
			rep.Recovery.Downtime.N, rep.Recovery.EffectiveDowntime.N)
	}
	if rep.Recovery.ChunksReseeded != 0 {
		t.Errorf("drain triggered rarest-first re-seeding: %d", rep.Recovery.ChunksReseeded)
	}
	if rep.Interactive.Issued != rep.Interactive.Completed {
		t.Errorf("jobs lost across drains: issued %d completed %d",
			rep.Interactive.Issued, rep.Interactive.Completed)
	}
	if as.NodeSeconds <= 0 {
		t.Error("node-seconds integral never advanced")
	}
	// The fleet actually shrank: the integral must undercut the fixed bill.
	fixed := float64(cfg.Nodes) * units.Time(60*units.Second).Seconds()
	if as.NodeSeconds >= fixed {
		t.Errorf("node-seconds %.1f not below fixed-fleet %.1f", as.NodeSeconds, fixed)
	}
}

// TestAutoscaleScaleUpUnderLoad starts the fleet at one node and piles on
// work: the policy must activate capacity, and the activations go through
// the repair path without ever counting as repairs of a *crash*.
func TestAutoscaleScaleUpUnderLoad(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 4)
	cfg.Autoscale = &autoscale.Config{
		Interval: 250 * units.Millisecond,
		Initial:  1,
		MinNodes: 1,
		HoldUp:   2,
		Cooldown: 1 * units.Second,
	}
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(40 * units.Second),
		Datasets:          4,
		ContinuousActions: 4,
		TargetBatch:       8,
		Seed:              7,
	})
	rep := New(cfg).Run(wl, 0)

	as := rep.Autoscale
	if as == nil {
		t.Fatal("elastic run carries no autoscale outcome")
	}
	if as.ScaleUps == 0 {
		t.Fatalf("loaded run never scaled up: %+v", as)
	}
	if as.MaxActive <= 1 {
		t.Errorf("MaxActive = %d, want growth past the single seed node", as.MaxActive)
	}
	if as.MinActive != 1 {
		t.Errorf("MinActive = %d, want the initial single node", as.MinActive)
	}
	if rep.Recovery.Faults != 0 {
		t.Errorf("scale-ups counted as faults: %d", rep.Recovery.Faults)
	}
	if got := rep.Interactive.Completed + rep.Batch.Completed; got == 0 {
		t.Error("no jobs completed on the elastic fleet")
	}
}

// TestAutoscaleDrainMigratesQueuedTasks forces a drain while the victim
// still holds queued work: the tasks must migrate (work stealing), never
// redispatch, and every job must still complete.
func TestAutoscaleDrainMigratesQueuedTasks(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 4)
	// Bands tuned so the very first sample reads as drain pressure even with
	// a deep queue: the test wants migration under load, not a quiet exit.
	cfg.Autoscale = &autoscale.Config{
		Interval:  200 * units.Millisecond,
		MinNodes:  1,
		QueueHigh: 1e9,
		QueueLow:  1e9 - 1,
		HoldDown:  1,
		Cooldown:  units.Duration(10 * units.Minute),
	}
	s := &workload.Schedule{Length: units.Time(60 * units.Second)}
	for i := 0; i < 40; i++ {
		s.Requests = append(s.Requests, workload.Request{
			At:      units.Time(i * int(units.Millisecond)),
			Class:   core.Interactive,
			Action:  core.ActionID(1 + i%8),
			Dataset: volume.DatasetID(1 + i%4),
		})
	}
	rep := New(cfg).Run(s, 0)

	as := rep.Autoscale
	if as == nil {
		t.Fatal("elastic run carries no autoscale outcome")
	}
	if as.Drains == 0 {
		t.Fatal("drain never started despite forced low band")
	}
	if as.TasksMigrated == 0 {
		t.Error("drain under load migrated no queued tasks")
	}
	if rep.Recovery.TasksRedispatched != 0 {
		t.Errorf("migration leaked into crash redispatch: %d", rep.Recovery.TasksRedispatched)
	}
	if rep.Interactive.Issued != rep.Interactive.Completed {
		t.Errorf("jobs lost across a loaded drain: issued %d completed %d",
			rep.Interactive.Issued, rep.Interactive.Completed)
	}
}

// TestAutoscaleRunsAreDeterministic: two identical elastic runs must agree
// bit-for-bit on every outcome the experiment tables print.
func TestAutoscaleRunsAreDeterministic(t *testing.T) {
	run := func() (*metricsSummary, string) {
		cfg := smallConfig(core.NewLocalityScheduler(0), 4)
		cfg.Replicas = 2
		cfg.Autoscale = &autoscale.Config{
			Interval: 250 * units.Millisecond,
			Initial:  2,
			MinNodes: 1,
			HoldUp:   2,
			HoldDown: 4,
			Cooldown: 2 * units.Second,
		}
		wl := workload.Generate(workload.Spec{
			Length:            units.Time(30 * units.Second),
			Datasets:          4,
			ContinuousActions: 3,
			TargetBatch:       4,
			Seed:              13,
		})
		rep := New(cfg).Run(wl, 0)
		sum := &metricsSummary{
			completed: rep.Interactive.Completed + rep.Batch.Completed,
			mean:      rep.Interactive.Latency.Mean(),
			p95:       rep.Interactive.LatencyHist.P95(),
		}
		return sum, fmt.Sprintf("%+v", rep.Autoscale)
	}
	s1, a1 := run()
	s2, a2 := run()
	if *s1 != *s2 {
		t.Errorf("elastic runs diverged: %+v vs %+v", s1, s2)
	}
	if a1 != a2 {
		t.Errorf("autoscale outcomes diverged:\n%s\n%s", a1, a2)
	}
}

type metricsSummary struct {
	completed int64
	mean      units.Duration
	p95       units.Duration
}
