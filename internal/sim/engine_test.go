package sim

import (
	"math"
	"testing"

	"vizsched/internal/baselines"
	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// smallConfig builds a 4-node cluster with nDatasets 1 GB datasets split
// into 256 MB chunks.
func smallConfig(sched core.Scheduler, nDatasets int) Config {
	lib := volume.NewLibrary()
	policy := volume.Decomposition(volume.MaxChunk{Chkmax: 256 * units.MB})
	if o, ok := sched.(core.DecompositionOverrider); ok {
		policy = o.Decomposition(4)
	}
	for i := 1; i <= nDatasets; i++ {
		lib.Add(volume.NewDataset(volume.DatasetID(i), "ds", units.GB, policy))
	}
	return Config{
		Nodes:     4,
		MemQuota:  2 * units.GB,
		Model:     core.System1CostModel(),
		Scheduler: sched,
		Library:   lib,
		Seed:      1,
		Preload:   true,
	}
}

// steadyWorkload returns one continuous action per dataset.
func steadyWorkload(nActions int, length units.Time) *workload.Schedule {
	return workload.Generate(workload.Spec{
		Length:            length,
		Datasets:          nActions,
		ContinuousActions: nActions,
		Seed:              5,
	})
}

func TestOursReachesTargetFramerate(t *testing.T) {
	// Two users on two 1GB datasets: after the initial loads, everything is
	// cached and the system must sustain ~33.33 fps.
	eng := New(smallConfig(core.NewLocalityScheduler(0), 2))
	wl := steadyWorkload(2, units.Time(20*units.Second))
	rep := eng.Run(wl, 0)

	if rep.Interactive.Completed < int64(float64(rep.Interactive.Issued)*0.95) {
		t.Errorf("completed %d of %d interactive jobs", rep.Interactive.Completed, rep.Interactive.Issued)
	}
	if fps := rep.MeanFramerate(); math.Abs(fps-33.33) > 2 {
		t.Errorf("framerate = %.2f, want ≈33.33", fps)
	}
	// After the six initial chunk loads, every access hits.
	if hr := rep.HitRate(); hr < 0.99 {
		t.Errorf("hit rate = %.4f, want ≥0.99", hr)
	}
	// Latency must be milliseconds, not seconds.
	if lat := rep.Interactive.Latency.Mean(); lat > 100*units.Millisecond {
		t.Errorf("mean latency = %v", lat)
	}
}

func TestFCFSThrashesAcrossManyDatasets(t *testing.T) {
	// Eight users on eight datasets over four nodes with locality-blind
	// FCFS: chunks keep landing on nodes that do not hold them, so the
	// framerate collapses and latency is dominated by I/O.
	cfg := smallConfig(baselines.FCFS{}, 8)
	cfg.MemQuota = units.GB // 4 chunks per node: far less than 32 chunks total
	eng := New(cfg)
	wl := steadyWorkload(8, units.Time(20*units.Second))
	rep := eng.Run(wl, 0)

	if fps := rep.MeanFramerate(); fps > 5 {
		t.Errorf("FCFS framerate = %.2f, expected collapse below 5", fps)
	}
	if hr := rep.HitRate(); hr > 0.9 {
		t.Errorf("FCFS hit rate = %.4f, expected low", hr)
	}
}

func TestFCFSLRecoverLocalityOnSameWorkload(t *testing.T) {
	cfg := smallConfig(baselines.FCFSL{}, 2)
	eng := New(cfg)
	wl := steadyWorkload(2, units.Time(20*units.Second))
	rep := eng.Run(wl, 0)
	if fps := rep.MeanFramerate(); math.Abs(fps-33.33) > 2 {
		t.Errorf("FCFSL framerate = %.2f, want ≈33.33", fps)
	}
	if hr := rep.HitRate(); hr < 0.99 {
		t.Errorf("FCFSL hit rate = %.4f", hr)
	}
}

func TestFCFSUUniformUsesAllNodesPerJob(t *testing.T) {
	eng := New(smallConfig(baselines.FCFSU{}, 1))
	wl := steadyWorkload(1, units.Time(5*units.Second))
	rep := eng.Run(wl, 0)
	// One action, uniform partition: all 4 nodes busy on every job; hit
	// rate perfect after the first job.
	if hr := rep.HitRate(); hr < 0.99 {
		t.Errorf("FCFSU hit rate = %.4f", hr)
	}
	if rep.Interactive.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestOursDefersBatchUnderInteractiveLoad(t *testing.T) {
	// Interactive users on datasets 1-2; batch animation over dataset 3.
	lengthS := 15
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(units.Duration(lengthS) * units.Second),
		Datasets:          3,
		ContinuousActions: 2, // datasets 1 and 2
		TargetBatch:       50,
		BatchFramesMin:    25, BatchFramesMax: 25,
		Seed: 9,
	})
	eng := New(smallConfig(core.NewLocalityScheduler(0), 3))
	rep := eng.Run(wl, 0)

	// Interactive stays near target despite batch pressure.
	if fps := rep.MeanFramerate(); fps < 30 {
		t.Errorf("interactive framerate under batch = %.2f", fps)
	}
	if rep.Batch.Completed == 0 {
		t.Error("batch fully starved; deferral must still make progress")
	}
}

func TestFailureRequeuesAndCompletes(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{At: units.Time(3 * units.Second), Node: 1}}
	eng := New(cfg)
	wl := steadyWorkload(2, units.Time(10*units.Second))
	rep := eng.Run(wl, 0)

	// Jobs keep completing on the surviving nodes. The lost node's chunks
	// need a ~2.6 s reload, so roughly one quarter of one action's frames in
	// a 10 s window are forfeit; anything above 80%% means recovery worked.
	if rep.Interactive.Completed < int64(float64(rep.Interactive.Issued)*0.8) {
		t.Errorf("completed %d of %d with one node down", rep.Interactive.Completed, rep.Interactive.Issued)
	}
	if fps := rep.MeanFramerate(); fps < 20 {
		t.Errorf("framerate with failure = %.2f", fps)
	}
}

func TestFailureAndRepair(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{
		At: units.Time(2 * units.Second), Node: 0,
		RepairAt: units.Time(4 * units.Second),
	}}
	eng := New(cfg)
	wl := steadyWorkload(2, units.Time(10*units.Second))
	rep := eng.Run(wl, 0)
	if rep.Interactive.Completed < int64(float64(rep.Interactive.Issued)*0.8) {
		t.Errorf("completed %d of %d across fail/repair", rep.Interactive.Completed, rep.Interactive.Issued)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *metrics.Report {
		cfg := smallConfig(core.NewLocalityScheduler(0), 3)
		cfg.Jitter = 0.1
		eng := New(cfg)
		wl := steadyWorkload(3, units.Time(8*units.Second))
		return eng.Run(wl, 0)
	}
	a, b := run(), run()
	if a.Interactive.Completed != b.Interactive.Completed ||
		a.Hits != b.Hits || a.Misses != b.Misses ||
		a.Interactive.Latency.Mean() != b.Interactive.Latency.Mean() {
		t.Error("identical seeds produced different runs")
	}
}

func TestJitterExercisesCorrection(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Jitter = 0.2
	eng := New(cfg)
	wl := steadyWorkload(2, units.Time(10*units.Second))
	rep := eng.Run(wl, 0)
	// The system still functions with noisy execution times.
	if fps := rep.MeanFramerate(); fps < 28 {
		t.Errorf("framerate with jitter = %.2f", fps)
	}
}

func TestConfigValidation(t *testing.T) {
	good := smallConfig(core.NewLocalityScheduler(0), 1)
	for name, breaker := range map[string]func(Config) Config{
		"no nodes":     func(c Config) Config { c.Nodes = 0; return c },
		"no library":   func(c Config) Config { c.Library = nil; return c },
		"no scheduler": func(c Config) Config { c.Scheduler = nil; return c },
		"chunk > gpu":  func(c Config) Config { c.GPUMem = units.MB; return c },
		"chunk > mem":  func(c Config) Config { c.MemQuota = units.MB; return c },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(breaker(good))
		}()
	}
}

func TestSchedulingCostIsMeasured(t *testing.T) {
	eng := New(smallConfig(core.NewLocalityScheduler(0), 2))
	wl := steadyWorkload(2, units.Time(5*units.Second))
	rep := eng.Run(wl, 0)
	if rep.SchedInvocations == 0 || rep.SchedWall == 0 {
		t.Error("scheduling cost not measured")
	}
	if rep.JobsScheduled == 0 {
		t.Error("no jobs counted as scheduled")
	}
	if rep.AvgSchedCostPerJob() <= 0 {
		t.Error("avg cost per job not positive")
	}
}

func TestRunScenarioSmoke(t *testing.T) {
	cfg := workload.Scenario(workload.Scenario1, 0.05)
	rep := RunScenario(cfg, core.NewLocalityScheduler(0), 0)
	if rep.Scheduler != "OURS" {
		t.Errorf("scheduler name = %q", rep.Scheduler)
	}
	if rep.Interactive.Completed == 0 {
		t.Error("scenario 1 run completed nothing")
	}
	if fps := rep.MeanFramerate(); fps < 25 {
		t.Errorf("scenario 1 OURS framerate = %.2f", fps)
	}
}

func TestBatchWindowLimitsPresentation(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 1)
	cfg.BatchWindow = 4
	eng := New(cfg)
	// A burst of batch jobs; the window bounds per-cycle presentation but
	// everything eventually completes.
	wl := workload.Generate(workload.Spec{
		Length:         units.Time(30 * units.Second),
		Datasets:       1,
		TargetBatch:    40,
		BatchFramesMin: 40, BatchFramesMax: 40,
		Seed: 3,
	})
	rep := eng.Run(wl, 0)
	if rep.Batch.Completed != 40 {
		t.Errorf("batch completed = %d of 40", rep.Batch.Completed)
	}
}
