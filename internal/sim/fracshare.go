package sim

import (
	"fmt"

	"vizsched/internal/core"
	"vizsched/internal/des"
	"vizsched/internal/fracshare"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// This file is the engine half of the fractional-capacity subsystem (§5.13).
// With Config.FracShare set, a node's executor changes from "one task
// serially occupies the node" to "up to K demand tasks run concurrently at
// equal shares, plus at most one co-scheduled guest at CoShare while the
// node has no demand work". Every task's progress lives in a fracshare.Slot;
// whenever a node's share layout changes (task start, completion, guest
// arrival, stall, resume) repriceNode folds elapsed progress into each slot
// at its old rate, sets the new rate, and re-arms the completion timer from
// the slot's remaining time. Completion instants therefore depend only on
// the piecewise-constant share function — not on event ordering — which the
// fracshare package's property tests pin down.
//
// Determinism: repriceNode iterates n.frac.order (a slice in task-start
// order), never the n.running map, so the float accumulation order and the
// timer re-arm order are identical on every run.

// fracRuntime is the engine's fractional-capacity state.
type fracRuntime struct {
	slots   int
	gamma   float64
	coShare float64
	// meter integrates each node's aggregate busy share (the per-node
	// utilization gauges); coMeter integrates the guests' share alone (the
	// reclaimed ε-guard idle).
	meter   *fracshare.Meter
	coMeter *fracshare.Meter
	out     metrics.FracShareOutcome
}

// fracNode is one node's slot bookkeeping: the demand tasks in start order
// (the deterministic re-pricing order) and the at-most-one guest.
type fracNode struct {
	order []*core.Task
	co    *core.Task
}

// initFracShare builds the runtime and hands the co-schedule share to
// schedulers that support guest placement.
func (e *Engine) initFracShare() {
	cfg := e.cfg.FracShare
	e.frac = &fracRuntime{
		slots:   cfg.SlotCount(),
		gamma:   cfg.Gamma(),
		coShare: cfg.CoShareValue(),
		meter:   fracshare.NewMeter(e.cfg.Nodes),
		coMeter: fracshare.NewMeter(e.cfg.Nodes),
	}
	e.frac.out.Slots = e.frac.slots
	if cs, ok := e.cfg.Scheduler.(core.CoScheduleSetter); ok {
		cs.SetCoSchedule(e.frac.coShare)
	}
}

// startFrac fills the node's free demand slots from its FIFO and re-prices.
// The frac-mode counterpart of startSerial; also the resume path after a
// stall, since re-pricing an unstalled node restores every suspended rate.
func (e *Engine) startFrac(n *node) {
	if !n.failed && !n.stalled {
		for len(n.frac.order) < e.frac.slots {
			t := n.pop()
			if t == nil {
				break
			}
			e.beginFrac(n, t, false)
		}
	}
	e.repriceNode(n)
}

// enqueueCo places a co-scheduled guest (§5.13). The scheduler contract is
// one guest per node, enforced the same way as placement on a dead node:
// violating it is a policy bug, not a runtime condition.
func (e *Engine) enqueueCo(n *node, t *core.Task) {
	if e.frac == nil {
		panic(fmt.Sprintf("sim: scheduler %s co-scheduled %v without FracShare enabled", e.cfg.Scheduler.Name(), t))
	}
	if n.frac.co != nil {
		panic(fmt.Sprintf("sim: scheduler %s co-scheduled %v onto node %d which already hosts a guest", e.cfg.Scheduler.Name(), t, n.id))
	}
	e.frac.out.CoScheduled++
	e.beginFrac(n, t, true)
	e.repriceNode(n)
}

// beginFrac starts one task in a slot: the cache access, eviction, and cost
// arithmetic are exactly startSerial's (Definition 1 with the load folded
// into the execution), but the completion is a suspended Slot that
// repriceNode will rate and arm.
func (e *Engine) beginFrac(n *node, t *core.Task, co bool) {
	now := e.sim.Now()
	hit := n.mem.Touch(t.Chunk)
	var evicted []volume.ChunkID
	if !hit {
		evicted = n.mem.Insert(t.Chunk, t.Size)
	}
	exec := e.renderCost(n, t)
	if !hit {
		if n.gpu != nil {
			exec += scaleIO(e.cfg.Model.DiskRate.TimeFor(t.Size), n.ioScale)
		} else {
			exec += scaleIO(e.cfg.Model.IOTime(t.Size), n.ioScale)
		}
	}
	exec = e.jitter(exec)
	if _, seen := e.started[t.Job.ID]; !seen {
		e.started[t.Job.ID] = now
	}
	// Exec is full-share work, as in the serial engine — the head's
	// prediction tables stay calibrated in work units; sharing stretches
	// only the completion instant.
	e.report.TaskExecuted(hit, exec, len(evicted))
	if !hit {
		e.report.LoadAdd()
	}
	res := core.TaskResult{
		Task: t, Node: n.id, Hit: hit,
		Exec: exec, Predicted: t.PredictedExec,
		Evicted: evicted,
	}
	ex := &execution{
		slot: fracshare.NewSlot(exec, now),
		io:   !hit,
		co:   co,
	}
	ex.fn = func(s *des.Simulator) { e.completeFrac(n, t, res) }
	n.running[t] = ex
	if co {
		n.frac.co = t
	} else {
		n.frac.order = append(n.frac.order, t)
	}
}

// completeFrac fires when a slot's completion timer lands: the slot is
// force-completed (absorbing sub-nanosecond rounding), the frac bookkeeping
// is released, and the standard completion path takes over — which ends by
// calling startFrac, re-pricing the survivors.
func (e *Engine) completeFrac(n *node, t *core.Task, res core.TaskResult) {
	ex := n.running[t]
	if ex == nil {
		return
	}
	now := e.sim.Now()
	ex.slot.Finish(now)
	if ex.co {
		n.frac.co = nil
		e.head.CoDone(n.id)
		e.frac.out.CoCompleted++
		e.frac.out.CoWork += res.Exec
	} else {
		for i, o := range n.frac.order {
			if o == t {
				n.frac.order = append(n.frac.order[:i], n.frac.order[i+1:]...)
				break
			}
		}
	}
	e.complete(n, res)
}

// repriceNode recomputes every slot's rate on one node and re-arms the
// completion timers. Demand tasks split the node equally (share 1/d);
// the guest runs at CoShare only while the node has no demand task — so a
// demand start preempts it to rate zero in the same event, and a demand
// drain resumes it. I/O-heavy tasks additionally divide by the super-linear
// contention penalty. Iteration order is the start-order slice, then the
// guest — deterministic by construction.
func (e *Engine) repriceNode(n *node) {
	now := e.sim.Now()
	f := n.frac
	down := n.failed || n.stalled
	demand := len(f.order)

	share := 0.0
	if !down && demand > 0 {
		share = 1 / float64(demand)
	}
	coShare := 0.0
	if !down && demand == 0 && f.co != nil {
		coShare = e.frac.coShare
	}

	// Count active I/O-heavy tasks for the contention penalty: every demand
	// load, plus the guest's load while the guest actually runs.
	nIO := 0
	if !down {
		for _, t := range f.order {
			if n.running[t].io {
				nIO++
			}
		}
		if coShare > 0 && n.running[f.co].io {
			nIO++
		}
	}

	for _, t := range f.order {
		ex := n.running[t]
		pen := 1.0
		if ex.io {
			pen = fracshare.IOPenalty(nIO, e.frac.gamma)
		}
		e.setSlotRate(ex, share, pen, now)
	}
	if f.co != nil {
		ex := n.running[f.co]
		was := ex.slot.Suspended()
		pen := 1.0
		if ex.io {
			pen = fracshare.IOPenalty(nIO, e.frac.gamma)
		}
		e.setSlotRate(ex, coShare, pen, now)
		if is := ex.slot.Suspended(); is != was {
			if is {
				e.frac.out.Preemptions++
			} else {
				e.frac.out.Resumes++
			}
		}
	}

	busy := 0.0
	if demand > 0 {
		busy = 1
	} else if coShare > 0 {
		busy = coShare
	}
	e.frac.meter.Set(int(n.id), busy, now)
	e.frac.coMeter.Set(int(n.id), coShare, now)
}

// setSlotRate re-prices one execution's slot and re-arms its completion
// timer from the remaining time at the new rate; a suspended slot keeps no
// timer.
func (e *Engine) setSlotRate(ex *execution, share, penalty float64, now units.Time) {
	ex.slot.SetRate(now, share, penalty)
	ex.timer.Cancel()
	ex.timer = des.Timer{}
	if rem, ok := ex.slot.Remaining(now); ok {
		ex.end = now.Add(rem)
		ex.timer = e.sim.After(rem, ex.fn)
	}
}

// finishFracShare closes the meters at the horizon and publishes the run's
// outcome.
func (e *Engine) finishFracShare(horizon units.Time) {
	e.frac.meter.Finish(horizon)
	e.frac.coMeter.Finish(horizon)
	out := e.frac.out
	out.NodeBusy = make([]units.Duration, e.cfg.Nodes)
	for k := 0; k < e.cfg.Nodes; k++ {
		out.NodeBusy[k] = e.frac.meter.Busy(k)
		out.CoBusyTime += e.frac.coMeter.Busy(k)
	}
	e.report.FracShare = &out
}

// sampleIdleSplit attributes one scheduling cycle's idle-with-pending-batch
// node time to the ε-guard or to ordinary queueing (§5.13). It runs at the
// end of each periodic scheduler invocation, after the scheduler had its
// full say: a node still idle with batch work pending was refused by the
// guard if every sampled pending group would miss on it AND the node served
// interactive work within that group's ε; any other reason (window bound, λ
// bound, a cached group the policy simply didn't reach) is queue idle. Pure
// observation — nothing here schedules events or touches the RNG — so
// enabling it cannot perturb golden outputs. In frac mode a node running
// only a co-scheduled guest still counts as idle, keeping the GuardIdle
// denominator comparable between runs with and without co-scheduling.
func (e *Engine) sampleIdleSplit() {
	if e.cfg.Scheduler.Trigger() != core.Periodic {
		return
	}
	type group struct {
		chunk volume.ChunkID
		size  units.Bytes
		tasks int
	}
	var groups []group
	seen := make(map[volume.ChunkID]bool)
	for _, j := range e.queue {
		if j.Class != core.Batch {
			continue
		}
		for i := range j.Tasks {
			t := &j.Tasks[i]
			if t.Assigned || seen[t.Chunk] {
				continue
			}
			seen[t.Chunk] = true
			groups = append(groups, group{t.Chunk, t.Size, j.GroupSize()})
			if len(groups) >= 8 {
				break
			}
		}
		if len(groups) >= 8 {
			break
		}
	}
	if len(groups) == 0 {
		return
	}
	now := e.sim.Now()
	cycle := e.schedulerCycle()
	for k, n := range e.nodes {
		if n.failed || n.stalled || n.draining || n.partitioned {
			continue
		}
		idle := len(n.running) == 0
		if e.frac != nil {
			idle = len(n.frac.order) == 0
		}
		if !idle || n.head < len(n.fifo) || n.loadActive || len(n.waiters) > 0 {
			continue
		}
		guard := true
		for _, g := range groups {
			if e.head.Caches[k].Contains(g.chunk) {
				guard = false
				break
			}
			eps := e.head.IdleThreshold(g.chunk, g.size, g.tasks)
			if e.head.InteractiveIdle(core.NodeID(k), now) > eps {
				guard = false
				break
			}
		}
		e.report.IdleSampled(guard, cycle)
	}
}
