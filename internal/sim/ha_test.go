package sim

import (
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/units"
)

// TestSimHeadFailoverZeroCommittedLoss: a head outage defers work instead of
// losing it. Arrivals during the outage buffer and admit at repair, nodes
// retain their completion reports for the resync epoch, no task re-renders,
// and the committed-session count never shrinks — the DES statement of the
// §5.10 recovery invariant the live service proves with journal replay.
func TestSimHeadFailoverZeroCommittedLoss(t *testing.T) {
	wl := steadyWorkload(2, units.Time(30*units.Second))
	clean := New(smallConfig(core.NewLocalityScheduler(0), 2)).Run(wl, 0)

	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{{
		Kind:     FaultHeadCrash,
		At:       units.Time(10 * units.Second),
		RepairAt: units.Time(14 * units.Second),
	}}
	rep := New(cfg).Run(wl, 0)

	rc := &rep.Recovery
	if rc.HeadCrashes != 1 {
		t.Fatalf("head crashes = %d, want 1", rc.HeadCrashes)
	}
	if got, want := rc.ControlMTTR(), 4*units.Second; got != want {
		t.Errorf("control MTTR = %v, want exactly %v", got, want)
	}
	if rc.CommittedAtCrash == 0 {
		t.Error("no jobs committed before the crash; the test is vacuous")
	}
	if rc.CommittedLost != 0 {
		t.Errorf("committed jobs lost = %d, want 0", rc.CommittedLost)
	}
	if rc.ArrivalsDeferred == 0 {
		t.Error("a 4s outage under a continuous workload deferred no arrivals")
	}
	if rc.ResultsDeferred == 0 {
		t.Error("no completion reports were retained across the outage")
	}
	// The outage must not force any re-rendering: deferred reports
	// reconcile, they do not requeue.
	if rc.TasksRedispatched != 0 {
		t.Errorf("tasks redispatched = %d, want 0 (nothing re-renders)", rc.TasksRedispatched)
	}
	// Degraded but correct: fewer completions than clean, never more issued.
	if rep.Interactive.Completed == 0 {
		t.Fatal("no interactive jobs completed across the outage")
	}
	if rep.Interactive.Completed > clean.Interactive.Completed {
		t.Errorf("faulted run completed more (%d) than clean (%d)",
			rep.Interactive.Completed, clean.Interactive.Completed)
	}
	if rep.Interactive.Issued != clean.Interactive.Issued {
		t.Errorf("issued diverged: %d vs clean %d (deferral must not drop arrivals)",
			rep.Interactive.Issued, clean.Interactive.Issued)
	}
}

// TestSimHeadFailoverDeterministic: the outage-and-recovery path runs
// entirely in virtual time, so two identical runs agree bit for bit.
func TestSimHeadFailoverDeterministic(t *testing.T) {
	run := func() (float64, units.Duration, int64, int64, int64) {
		cfg := smallConfig(core.NewLocalityScheduler(0), 2)
		cfg.Failures = []Failure{{
			Kind:     FaultHeadCrash,
			At:       units.Time(9 * units.Second),
			RepairAt: units.Time(12 * units.Second),
		}}
		rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)
		return rep.MeanFramerate(), rep.Interactive.Latency.Mean(),
			rep.Recovery.ArrivalsDeferred, rep.Recovery.ResultsDeferred,
			rep.Interactive.Completed
	}
	fps1, lat1, ad1, rd1, c1 := run()
	fps2, lat2, ad2, rd2, c2 := run()
	if fps1 != fps2 || lat1 != lat2 || ad1 != ad2 || rd1 != rd2 || c1 != c2 {
		t.Errorf("head-crash runs diverged: (%v,%v,%d,%d,%d) vs (%v,%v,%d,%d,%d)",
			fps1, lat1, ad1, rd1, c1, fps2, lat2, ad2, rd2, c2)
	}
}

// TestSimPartitionReconcilesRetainedResults: a partitioned node keeps
// rendering what it holds and retains the reports; the head routes new work
// around it (suspect, caches kept) and reconciles at heal — downtime is
// exact, nothing requeues, and service continues on the surviving nodes.
func TestSimPartitionReconcilesRetainedResults(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	// Cold caches: the initial loads take seconds, so node 1 is guaranteed
	// to be mid-task when the partition cuts it off — the completion it
	// finishes behind the partition must be retained, not lost.
	cfg.Preload = false
	cfg.Failures = []Failure{{
		Kind:     FaultPartition,
		Node:     1,
		At:       units.Time(1 * units.Second),
		RepairAt: units.Time(5 * units.Second),
	}}
	rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)

	rc := &rep.Recovery
	if rc.Faults != 1 {
		t.Errorf("faults = %d, want 1", rc.Faults)
	}
	if got, want := rc.MTTR(), 4*units.Second; got != want {
		t.Errorf("partition MTTR = %v, want exactly %v", got, want)
	}
	if rc.ResultsDeferred == 0 {
		t.Error("the partitioned node retained no completion reports")
	}
	// A partition is not a crash: nothing is requeued and nothing re-renders.
	if rc.TasksRedispatched != 0 {
		t.Errorf("tasks redispatched = %d, want 0", rc.TasksRedispatched)
	}
	if rep.Interactive.Completed == 0 {
		t.Fatal("no jobs completed across the partition")
	}
	// The head never declared the node dead, so its predicted caches were
	// kept and no chunks were re-homed or re-seeded.
	if rc.ChunksRehomed != 0 || rc.ChunksReseeded != 0 {
		t.Errorf("partition moved chunks (rehomed %d, reseeded %d), want none",
			rc.ChunksRehomed, rc.ChunksReseeded)
	}
}

// TestSimPartitionDuringHeadOutage: overlapping control-plane faults — the
// node's partition heals while the head is still down, so its retained
// reports must wait for the head's repair, not the heal.
func TestSimPartitionDuringHeadOutage(t *testing.T) {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Failures = []Failure{
		{Kind: FaultPartition, Node: 2, At: units.Time(8 * units.Second), RepairAt: units.Time(11 * units.Second)},
		{Kind: FaultHeadCrash, At: units.Time(9 * units.Second), RepairAt: units.Time(13 * units.Second)},
	}
	rep := New(cfg).Run(steadyWorkload(2, units.Time(24*units.Second)), 0)

	rc := &rep.Recovery
	if rc.HeadCrashes != 1 {
		t.Fatalf("head crashes = %d, want 1", rc.HeadCrashes)
	}
	if rc.CommittedLost != 0 {
		t.Errorf("committed jobs lost = %d, want 0", rc.CommittedLost)
	}
	if rc.TasksRedispatched != 0 {
		t.Errorf("tasks redispatched = %d, want 0", rc.TasksRedispatched)
	}
	if rep.Interactive.Completed == 0 {
		t.Fatal("no jobs completed across the overlapping faults")
	}
}
