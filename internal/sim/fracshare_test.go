package sim

import (
	"math"
	"testing"

	"vizsched/internal/baselines"
	"vizsched/internal/core"
	"vizsched/internal/fracshare"
	"vizsched/internal/units"
	"vizsched/internal/volume"
	"vizsched/internal/workload"
)

// oneNodeConfig builds a single-node cluster holding one 256 MB single-chunk
// dataset — the smallest fixture on which fractional timing is predictable in
// closed form.
func oneNodeConfig(sched core.Scheduler, fs *fracshare.Config, preload bool) Config {
	lib := volume.NewLibrary()
	lib.Add(volume.NewDataset(1, "ds", 256*units.MB, volume.MaxChunk{Chkmax: 256 * units.MB}))
	lib.Add(volume.NewDataset(2, "ds", 256*units.MB, volume.MaxChunk{Chkmax: 256 * units.MB}))
	return Config{
		Nodes:     1,
		MemQuota:  units.GB,
		Model:     core.System1CostModel(),
		Scheduler: sched,
		Library:   lib,
		Seed:      1,
		Preload:   preload,
		FracShare: fs,
	}
}

// batchPair is two single-chunk batch jobs over distinct datasets arriving
// together — distinct so that in a cold run both tasks are I/O-heavy
// (same-chunk pairs would coalesce into one load and one hit).
func batchPair(length units.Time) *workload.Schedule {
	return &workload.Schedule{
		Length: length,
		Requests: []workload.Request{
			{At: 0, Class: core.Batch, Action: 1, Dataset: 1},
			{At: 0, Class: core.Batch, Action: 2, Dataset: 2},
		},
	}
}

// TestFracShareEqualSlowdown pins the core re-pricing behaviour end to end:
// two identical cached tasks sharing one node at 1/2 each both finish at
// twice the serial execution time — against the serial engine where one
// finishes at E and the other at 2E — and deliver exactly the same total
// work.
func TestFracShareEqualSlowdown(t *testing.T) {
	horizon := units.Time(30 * units.Second)
	serial := New(oneNodeConfig(baselines.FCFS{}, nil, true)).Run(batchPair(horizon), 0)
	frac := New(oneNodeConfig(baselines.FCFS{}, &fracshare.Config{}, true)).Run(batchPair(horizon), 0)

	if serial.Batch.Completed != 2 || frac.Batch.Completed != 2 {
		t.Fatalf("completed: serial=%d frac=%d, want 2 and 2", serial.Batch.Completed, frac.Batch.Completed)
	}
	// Serial: convoy. The second job waits for the first.
	if r := float64(serial.Batch.Latency.Max) / float64(serial.Batch.Latency.Min); math.Abs(r-2) > 0.02 {
		t.Errorf("serial max/min latency ratio = %.3f, want ≈2 (convoy)", r)
	}
	// Fractional: both at share 1/2, both finish together at 2E — no convoy,
	// same makespan.
	if r := float64(frac.Batch.Latency.Min) / float64(serial.Batch.Latency.Max); math.Abs(r-1) > 0.02 {
		t.Errorf("frac min latency / serial makespan = %.3f, want ≈1", r)
	}
	if r := float64(frac.Batch.Latency.Max) / float64(serial.Batch.Latency.Max); math.Abs(r-1) > 0.02 {
		t.Errorf("frac max latency / serial makespan = %.3f, want ≈1", r)
	}
	// Sharing stretches completions, never the delivered work.
	if frac.BusyNodeTime != serial.BusyNodeTime {
		t.Errorf("busy time: frac=%v serial=%v, want equal", frac.BusyNodeTime, serial.BusyNodeTime)
	}
	if frac.FracShare == nil || frac.FracShare.Slots != fracshare.DefaultSlots {
		t.Errorf("FracShare outcome = %+v, want slots=%d", frac.FracShare, fracshare.DefaultSlots)
	}
	if serial.FracShare != nil {
		t.Error("serial run carries a FracShare outcome")
	}
	// Both jobs stretched by the sharing: stretch ≈ 2 each.
	if frac.BatchStretch.N != 2 || frac.BatchStretch.Mean() < 1.9 {
		t.Errorf("frac stretch: n=%d mean=%.2f, want 2 jobs ≈2.0", frac.BatchStretch.N, frac.BatchStretch.Mean())
	}
}

// TestFracShareIOPenaltySuperLinear: two co-running cache-miss tasks contend
// super-linearly on the disk — with γ=1.5 each runs at (1/2)/√2 instead of
// 1/2, so the shared makespan is √2× the γ=1 (fair-division) makespan.
func TestFracShareIOPenaltySuperLinear(t *testing.T) {
	horizon := units.Time(60 * units.Second)
	fair := New(oneNodeConfig(baselines.FCFS{}, &fracshare.Config{IOGamma: 1}, false)).Run(batchPair(horizon), 0)
	thrash := New(oneNodeConfig(baselines.FCFS{}, &fracshare.Config{IOGamma: 1.5}, false)).Run(batchPair(horizon), 0)

	if fair.Batch.Completed != 2 || thrash.Batch.Completed != 2 {
		t.Fatalf("completed: fair=%d thrash=%d", fair.Batch.Completed, thrash.Batch.Completed)
	}
	r := float64(thrash.Batch.Latency.Max) / float64(fair.Batch.Latency.Max)
	if math.Abs(r-math.Sqrt2) > 0.03 {
		t.Errorf("γ=1.5 / γ=1 makespan ratio = %.3f, want ≈√2", r)
	}
}

// TestFracShareStallResumePreemptsProgress: a stall zeroes every slot's rate
// and resume re-prices from exactly where progress stopped, so the stalled
// run's completions shift by precisely the stall window.
func TestFracShareStallResumePreemptsProgress(t *testing.T) {
	horizon := units.Time(60 * units.Second)
	plain := New(oneNodeConfig(baselines.FCFS{}, &fracshare.Config{}, false)).Run(batchPair(horizon), 0)

	cfg := oneNodeConfig(baselines.FCFS{}, &fracshare.Config{}, false)
	stallFor := units.Duration(900 * units.Millisecond)
	cfg.Failures = []Failure{{
		Kind: FaultStall, Node: 0,
		At:       units.Time(500 * units.Millisecond),
		RepairAt: units.Time(500 * units.Millisecond).Add(stallFor),
	}}
	stalled := New(cfg).Run(batchPair(horizon), 0)

	if stalled.Batch.Completed != 2 {
		t.Fatalf("stalled run completed %d of 2", stalled.Batch.Completed)
	}
	shift := stalled.Batch.Latency.Max - plain.Batch.Latency.Max
	if d := shift - stallFor; d < -units.Millisecond || d > units.Millisecond {
		t.Errorf("stall shifted makespan by %v, want %v", shift, stallFor)
	}
}

// fracMixedConfig is a 4-node cluster with 1 GB interactive datasets 1–2 and
// a single-chunk 256 MB batch dataset 3, nothing preloaded — so batch work is
// cold everywhere and each batch job is one task.
func fracMixedConfig(fs *fracshare.Config) Config {
	cfg := smallConfig(core.NewLocalityScheduler(0), 2)
	cfg.Library.Add(volume.NewDataset(3, "batch", 256*units.MB, volume.MaxChunk{Chkmax: 256 * units.MB}))
	cfg.Preload = false
	cfg.FracShare = fs
	return cfg
}

// guardWorkload is two steady interactive sessions plus nBatch cold batch
// jobs over dataset 3 submitted at one second.
func guardWorkload(nBatch int, length units.Time) *workload.Schedule {
	wl := workload.Generate(workload.Spec{
		Length:            length,
		Datasets:          2,
		ContinuousActions: 2,
		Seed:              5,
	})
	for i := 0; i < nBatch; i++ {
		wl.Requests = append(wl.Requests, workload.Request{
			At: units.Time(units.Second), Class: core.Batch,
			Action: core.ActionID(100 + i), Dataset: 3,
		})
	}
	return wl
}

// TestFracShareCoSchedulePreemptsAndReclaims is the tentpole behaviour test:
// under OURS with every node shadowing an interactive stream, the ε-guard
// starves cold batch entirely; with co-scheduling the same guard window runs
// batch guests at fractional share, preempted on every frame arrival — so
// batch makes real progress while the interactive framerate stays at target.
func TestFracShareCoSchedulePreemptsAndReclaims(t *testing.T) {
	length := units.Time(30 * units.Second)
	base := New(fracMixedConfig(nil)).Run(guardWorkload(3, length), 0)
	frac := New(fracMixedConfig(&fracshare.Config{})).Run(guardWorkload(3, length), 0)

	// Without co-scheduling, the guard blocks dataset 3 on every
	// interactive-hot node: the attributed guard idle must be visible.
	if base.GuardIdle == 0 {
		t.Error("baseline OURS run attributed no guard idle")
	}
	out := frac.FracShare
	if out == nil {
		t.Fatal("frac run has no FracShare outcome")
	}
	if out.CoScheduled == 0 {
		t.Fatal("no guests co-scheduled inside the guard window")
	}
	if out.Preemptions == 0 {
		t.Error("no guest was ever preempted by a demand frame")
	}
	if out.Resumes == 0 {
		t.Error("no guest ever resumed after a preemption")
	}
	if out.CoBusyTime == 0 {
		t.Error("guests accumulated no busy share (nothing reclaimed)")
	}
	if frac.Batch.Completed <= base.Batch.Completed {
		t.Errorf("co-scheduling reclaimed nothing: batch completed frac=%d base=%d",
			frac.Batch.Completed, base.Batch.Completed)
	}
	// The guard's reason must survive: interactive service unharmed.
	if fps := frac.MeanFramerate(); fps < 28 {
		t.Errorf("interactive framerate with co-scheduling = %.2f, want ≥28", fps)
	}
	if b, f := base.MeanFramerate(), frac.MeanFramerate(); f < b-3 {
		t.Errorf("co-scheduling dented framerate: %.2f vs %.2f", f, b)
	}
}

// TestFracShareDFRSCompletesWithStretch: the DFRS baseline late-binds batch
// onto fractional slots and everything completes, with per-job stretch
// recorded for the sweep's fairness column.
func TestFracShareDFRSCompletesWithStretch(t *testing.T) {
	cfg := smallConfig(baselines.NewDFRS(0, 0), 3)
	cfg.FracShare = &fracshare.Config{CoShare: -1} // slots only; DFRS has no guests
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(30 * units.Second),
		Datasets:          3,
		ContinuousActions: 1,
		TargetBatch:       20,
		BatchFramesMin:    10, BatchFramesMax: 10,
		Seed: 9,
	})
	rep := New(cfg).Run(wl, 0)
	if rep.Batch.Completed == 0 {
		t.Fatal("DFRS completed no batch work")
	}
	if rep.Interactive.Completed < int64(float64(rep.Interactive.Issued)*0.9) {
		t.Errorf("DFRS completed %d of %d interactive", rep.Interactive.Completed, rep.Interactive.Issued)
	}
	if rep.BatchStretch.N != rep.Batch.Completed {
		t.Errorf("stretch recorded for %d of %d batch jobs", rep.BatchStretch.N, rep.Batch.Completed)
	}
	if rep.BatchStretch.Min < 1 {
		t.Errorf("stretch min = %.3f; below 1 means a job beat its full-share lower bound", rep.BatchStretch.Min)
	}
	if rep.FracShare == nil || rep.FracShare.CoScheduled != 0 {
		t.Errorf("DFRS run outcome = %+v, want present with zero guests", rep.FracShare)
	}
}

// TestFracShareDeterministicRuns: the frac layer under jitter, guests,
// preemptions, and guard sampling is bit-reproducible.
func TestFracShareDeterministicRuns(t *testing.T) {
	run := func() *fracSummary {
		cfg := fracMixedConfig(&fracshare.Config{})
		cfg.Jitter = 0.1
		rep := New(cfg).Run(guardWorkload(4, units.Time(12*units.Second)), 0)
		return &fracSummary{
			intLat:  rep.Interactive.Latency.Mean(),
			batLat:  rep.Batch.Latency.Mean(),
			hits:    rep.Hits,
			misses:  rep.Misses,
			guard:   rep.GuardIdle,
			queue:   rep.QueueIdle,
			stretch: rep.BatchStretch.Mean(),
			coBusy:  rep.FracShare.CoBusyTime,
			preempt: rep.FracShare.Preemptions,
		}
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("identical seeds diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

type fracSummary struct {
	intLat, batLat units.Duration
	hits, misses   int64
	guard, queue   units.Duration
	stretch        float64
	coBusy         units.Duration
	preempt        int64
}

// TestFracShareRejectsUnsupportedCombos: the slot model replaces the node's
// executor, so extensions that assume the serial/overlap executor are
// rejected loudly at construction.
func TestFracShareRejectsUnsupportedCombos(t *testing.T) {
	good := oneNodeConfig(baselines.FCFS{}, &fracshare.Config{}, true)
	breakers := map[string]func(Config) Config{
		"overlap":  func(c Config) Config { c.OverlapIO = true; return c },
		"multigpu": func(c Config) Config { c.GPUsPerNode = 2; return c },
	}
	for name, breaker := range breakers {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			New(breaker(good))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("sharded: no panic")
			}
		}()
		c := good
		c.Shards = 2
		c.NewScheduler = func() core.Scheduler { return baselines.FCFS{} }
		NewSharded(c)
	}()
}

// TestFracShareCrashRequeuesGuest: a node crash mid-guest returns the
// guest's task to the queue like any running task, clears the head's
// guest mark, and the work completes elsewhere.
func TestFracShareCrashRequeuesGuest(t *testing.T) {
	cfg := fracMixedConfig(&fracshare.Config{})
	cfg.Failures = []Failure{{
		At: units.Time(4 * units.Second), Node: 1,
		RepairAt: units.Time(8 * units.Second),
	}}
	rep := New(cfg).Run(guardWorkload(2, units.Time(35*units.Second)), 0)
	if rep.Batch.Completed == 0 {
		t.Error("no batch completed across the crash")
	}
	if rep.Interactive.Completed < int64(float64(rep.Interactive.Issued)*0.75) {
		t.Errorf("interactive completed %d of %d across the crash",
			rep.Interactive.Completed, rep.Interactive.Issued)
	}
}
