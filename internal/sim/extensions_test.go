package sim

import (
	"testing"

	"vizsched/internal/baselines"
	"vizsched/internal/cache"
	"vizsched/internal/core"
	"vizsched/internal/metrics"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// coldConfig is smallConfig without preloading, so miss handling dominates.
func coldConfig(sched core.Scheduler, nDatasets int) Config {
	cfg := smallConfig(sched, nDatasets)
	cfg.Preload = false
	return cfg
}

// TestOverlapIOBeatsSerialOnColdStart: with overlapped I/O, a node keeps
// rendering resident chunks while others load, so a cold-start mixed
// workload completes more jobs in the same window.
func TestOverlapIOBeatsSerialOnColdStart(t *testing.T) {
	run := func(overlap bool) *metrics.Report {
		cfg := coldConfig(core.NewLocalityScheduler(0), 4)
		cfg.OverlapIO = overlap
		eng := New(cfg)
		wl := steadyWorkload(4, units.Time(15*units.Second))
		return eng.Run(wl, 0)
	}
	serial := run(false)
	overlap := run(true)
	if overlap.Interactive.Completed <= serial.Interactive.Completed {
		t.Errorf("overlap completed %d ≤ serial %d; latency hiding had no effect",
			overlap.Interactive.Completed, serial.Interactive.Completed)
	}
	// Hit/miss totals must still account for every executed task's access.
	if overlap.Hits+overlap.Misses == 0 {
		t.Error("overlap mode recorded no accesses")
	}
}

func TestOverlapIOCoalescesLoads(t *testing.T) {
	// Many jobs over one dataset arrive together on a cold cache: the load
	// of each chunk must happen once, with followers waiting, not once per
	// task.
	cfg := coldConfig(core.NewLocalityScheduler(0), 1)
	cfg.OverlapIO = true
	eng := New(cfg)
	wl := workload.Generate(workload.Spec{
		Length:            units.Time(20 * units.Second),
		Datasets:          1,
		ContinuousActions: 3,
		Seed:              2,
	})
	rep := eng.Run(wl, 0)
	if rep.Interactive.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// 4 chunks → exactly 4 loads would be ideal; allow a few replicas from
	// load balancing but not one load per waiting task.
	if rep.Loads > 12 {
		t.Errorf("loads = %d; loads were not coalesced", rep.Loads)
	}
	if rep.Misses <= rep.Loads {
		t.Errorf("misses (%d) should exceed loads (%d): waiters coalesce", rep.Misses, rep.Loads)
	}
}

func TestGPUCacheChargesUploads(t *testing.T) {
	// A GPU cache smaller than the working set forces repeated PCIe uploads
	// even though main memory holds everything; throughput must sit between
	// "all GPU-resident" and "reload from disk".
	run := func(gpuCache units.Bytes) *metrics.Report {
		cfg := smallConfig(core.NewLocalityScheduler(0), 2)
		cfg.GPUCache = gpuCache
		eng := New(cfg)
		wl := steadyWorkload(2, units.Time(10*units.Second))
		return eng.Run(wl, 0)
	}
	roomy := run(2 * units.GB)   // whole working set fits in video memory
	tight := run(300 * units.MB) // one 256MB chunk at a time: upload thrash
	if tight.BusyNodeTime <= roomy.BusyNodeTime {
		t.Errorf("tight GPU cache busy %v ≤ roomy %v; uploads not charged",
			tight.BusyNodeTime, roomy.BusyNodeTime)
	}
	if roomy.Interactive.Completed < tight.Interactive.Completed {
		t.Error("roomy GPU cache completed fewer jobs than tight")
	}
}

func TestMultiGPUNodesIncreaseThroughput(t *testing.T) {
	// Overload 2 nodes with 4 users; doubling GPUs per node must raise
	// completions.
	run := func(gpus int) *metrics.Report {
		cfg := smallConfig(core.NewLocalityScheduler(0), 4)
		cfg.Nodes = 2
		cfg.GPUsPerNode = gpus
		eng := New(cfg)
		wl := steadyWorkload(4, units.Time(10*units.Second))
		return eng.Run(wl, 0)
	}
	one := run(1)
	two := run(2)
	if two.Interactive.Completed <= one.Interactive.Completed {
		t.Errorf("2 GPUs completed %d ≤ 1 GPU %d", two.Interactive.Completed, one.Interactive.Completed)
	}
}

func TestEvictionPoliciesRun(t *testing.T) {
	for _, p := range []cache.Policy{cache.PolicyLRU, cache.PolicyFIFO, cache.PolicyRandom, cache.PolicyLFU} {
		cfg := smallConfig(core.NewLocalityScheduler(0), 6)
		cfg.MemQuota = units.GB // tight: forces evictions
		cfg.EvictionPolicy = p
		eng := New(cfg)
		wl := steadyWorkload(6, units.Time(6*units.Second))
		rep := eng.Run(wl, 0)
		if rep.Interactive.Completed == 0 {
			t.Errorf("policy %v completed nothing", p)
		}
	}
}

func TestOverlapWithFailure(t *testing.T) {
	cfg := coldConfig(core.NewLocalityScheduler(0), 2)
	cfg.OverlapIO = true
	cfg.Failures = []Failure{{At: units.Time(500 * units.Millisecond), Node: 0}}
	eng := New(cfg)
	wl := steadyWorkload(2, units.Time(12*units.Second))
	rep := eng.Run(wl, 0)
	// The node died mid-load; its waiters must be rescheduled elsewhere.
	if rep.Interactive.Completed < rep.Interactive.Issued/2 {
		t.Errorf("completed %d of %d with a mid-load failure",
			rep.Interactive.Completed, rep.Interactive.Issued)
	}
}

func TestOverlapDeterministic(t *testing.T) {
	run := func() *metrics.Report {
		cfg := coldConfig(baselines.FCFSL{}, 3)
		cfg.OverlapIO = true
		cfg.Jitter = 0.1
		eng := New(cfg)
		wl := steadyWorkload(3, units.Time(8*units.Second))
		return eng.Run(wl, 0)
	}
	a, b := run(), run()
	if a.Interactive.Completed != b.Interactive.Completed || a.Misses != b.Misses {
		t.Error("overlap mode not deterministic")
	}
}

func TestLatencyHistogramPopulated(t *testing.T) {
	eng := New(smallConfig(core.NewLocalityScheduler(0), 2))
	wl := steadyWorkload(2, units.Time(5*units.Second))
	rep := eng.Run(wl, 0)
	if rep.Interactive.LatencyHist.N() != rep.Interactive.Completed {
		t.Errorf("histogram n = %d, completed = %d",
			rep.Interactive.LatencyHist.N(), rep.Interactive.Completed)
	}
	if rep.Interactive.LatencyHist.P99() < rep.Interactive.LatencyHist.P50() {
		t.Error("p99 < p50")
	}
}
