// Package analysis provides closed-form capacity estimates for the
// scheduling scenarios: the back-of-envelope arithmetic the paper's design
// rests on (demand = actions × rate × tasks × per-task cost versus node
// supply), made executable. The simulator measures what *does* happen;
// this package predicts what *should*, and the tests hold the two within
// tolerance of each other — a guard against silent model drift.
package analysis

import (
	"fmt"

	"vizsched/internal/core"
	"vizsched/internal/units"
	"vizsched/internal/workload"
)

// Capacity summarizes the steady-state load arithmetic of one scenario
// under a Chkmax-decomposed locality-aware scheduler with warm caches.
type Capacity struct {
	// Nodes is the cluster size p.
	Nodes int
	// TasksPerJob is m, the chunk count of one dataset.
	TasksPerJob int
	// HitCost is the per-task node occupancy for a cached chunk.
	HitCost units.Duration
	// InteractiveJobsPerSec is the aggregate request rate of all actions in
	// steady state.
	InteractiveJobsPerSec float64
	// BatchJobsPerSec is the average batch arrival rate.
	BatchJobsPerSec float64
	// InteractiveUtilization is interactive demand / cluster supply.
	InteractiveUtilization float64
	// TotalUtilization includes batch demand.
	TotalUtilization float64
	// SustainableFPS is the per-action framerate the cluster can sustain:
	// the target when interactive utilization ≤ 1, else target scaled by
	// the overload factor.
	SustainableFPS float64
	// CacheableFraction is total memory / total data, capped at 1 — how
	// much of the working set can be resident at once.
	CacheableFraction float64
	// ReloadUtilization estimates the node time consumed by chunk reloads
	// when user actions start on non-resident datasets: action starts/s ×
	// (1 − cacheable) × m × tio / supply. This is what actually overloads
	// Scenario 4.
	ReloadUtilization float64
}

// Overloaded reports whether steady-state demand (interactive + batch +
// reloads) exceeds the cluster.
func (c Capacity) Overloaded() bool {
	return c.TotalUtilization+c.ReloadUtilization > 1
}

// AnalyzeScenario computes the capacity arithmetic for a Table II scenario,
// assuming the scenario's cost model and full cache warmth (the scheduler's
// job is to approach this bound; Figs. 4–7 measure how close each policy
// gets).
func AnalyzeScenario(cfg workload.ScenarioConfig) Capacity {
	model := core.System2CostModel()
	if cfg.System1 {
		model = core.System1CostModel()
	}
	m := int(units.CeilDiv(int64(cfg.DatasetSize), int64(cfg.Chkmax)))
	chunk := cfg.DatasetSize / units.Bytes(m)
	hit := model.HitExec(chunk, m)

	wl := workload.Generate(cfg.Spec)
	length := cfg.Spec.Length.Seconds()
	jobRate := float64(wl.InteractiveCount()) / length
	batchRate := float64(wl.BatchCount()) / length

	supply := float64(cfg.Nodes) // node-seconds per second
	intDemand := jobRate * float64(m) * hit.Seconds()
	batchDemand := batchRate * float64(m) * hit.Seconds()

	cacheable := float64(cfg.TotalMemory()) / float64(cfg.TotalData())
	if cacheable > 1 {
		cacheable = 1
	}
	actionsPerSec := float64(len(wl.Actions)) / length
	reloadDemand := actionsPerSec * (1 - cacheable) * float64(m) * model.IOTime(chunk).Seconds()

	target := 1 / (30e-3) // one request per 30 ms
	if p := cfg.Spec.Period; p > 0 {
		target = 1 / p.Seconds()
	}
	fps := target
	if u := (intDemand + reloadDemand) / supply; u > 1 {
		fps = target / u
	}

	return Capacity{
		Nodes:                  cfg.Nodes,
		TasksPerJob:            m,
		HitCost:                hit,
		InteractiveJobsPerSec:  jobRate,
		BatchJobsPerSec:        batchRate,
		InteractiveUtilization: intDemand / supply,
		TotalUtilization:       (intDemand + batchDemand) / supply,
		SustainableFPS:         fps,
		CacheableFraction:      cacheable,
		ReloadUtilization:      reloadDemand / supply,
	}
}

// UniformPenalty returns the per-job resource ratio of the FCFSU policy
// (uniform partition into one chunk per node) relative to the Chkmax
// decomposition — the paper's "twice as many computing resources" argument
// for Scenario 1, computed instead of asserted.
func UniformPenalty(cfg workload.ScenarioConfig) float64 {
	model := core.System2CostModel()
	if cfg.System1 {
		model = core.System1CostModel()
	}
	m := int(units.CeilDiv(int64(cfg.DatasetSize), int64(cfg.Chkmax)))
	chunk := cfg.DatasetSize / units.Bytes(m)
	ours := float64(m) * model.HitExec(chunk, m).Seconds()

	um := cfg.Nodes
	uchunk := cfg.DatasetSize / units.Bytes(um)
	uniform := float64(um) * model.HitExec(uchunk, um).Seconds()
	return uniform / ours
}

// MissBudget reports how many chunk reloads per second the cluster can
// absorb *beyond* the workload's own reload demand while keeping within
// capacity — the quantity that decides whether non-cached batch work can
// flow at all (ε exists to spend this budget on nodes that are quiet
// anyway).
func MissBudget(cfg workload.ScenarioConfig) float64 {
	model := core.System2CostModel()
	if cfg.System1 {
		model = core.System1CostModel()
	}
	cap := AnalyzeScenario(cfg)
	slack := (1 - cap.InteractiveUtilization - cap.ReloadUtilization) * float64(cfg.Nodes)
	if slack <= 0 {
		return 0
	}
	m := int(units.CeilDiv(int64(cfg.DatasetSize), int64(cfg.Chkmax)))
	chunk := cfg.DatasetSize / units.Bytes(m)
	return slack / model.IOTime(chunk).Seconds()
}

// String renders the capacity summary.
func (c Capacity) String() string {
	return fmt.Sprintf(
		"p=%d m=%d hit=%v jobs/s=%.1f util=%.0f%% (total %.0f%%, reload %.0f%%) sustainable=%.1ffps cacheable=%.0f%%",
		c.Nodes, c.TasksPerJob, c.HitCost.Std(), c.InteractiveJobsPerSec,
		100*c.InteractiveUtilization, 100*c.TotalUtilization, 100*c.ReloadUtilization,
		c.SustainableFPS, 100*c.CacheableFraction)
}
