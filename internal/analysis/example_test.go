package analysis_test

import (
	"fmt"

	"vizsched/internal/analysis"
	"vizsched/internal/workload"
)

// The capacity arithmetic behind the paper's scenarios: Scenario 3 is
// feasible ("light load"); Scenario 4 is not ("heavy load").
func ExampleAnalyzeScenario() {
	s3 := analysis.AnalyzeScenario(workload.Scenario(workload.Scenario3, 1))
	s4 := analysis.AnalyzeScenario(workload.Scenario(workload.Scenario4, 1))
	fmt.Printf("scenario 3 overloaded: %v\n", s3.Overloaded())
	fmt.Printf("scenario 4 overloaded: %v\n", s4.Overloaded())
	fmt.Printf("scenario 3 tasks/job: %d\n", s3.TasksPerJob)
	// Output:
	// scenario 3 overloaded: false
	// scenario 4 overloaded: true
	// scenario 3 tasks/job: 16
}
