package analysis

import (
	"math"
	"strings"
	"testing"

	"vizsched/internal/core"
	"vizsched/internal/sim"
	"vizsched/internal/workload"
)

func TestScenarioCapacityShapes(t *testing.T) {
	// The load arithmetic that shaped the paper's scenarios must hold.
	s1 := AnalyzeScenario(workload.Scenario(workload.Scenario1, 1))
	if s1.TasksPerJob != 4 {
		t.Errorf("scenario 1 m = %d, want 4", s1.TasksPerJob)
	}
	if s1.InteractiveUtilization <= 0.4 || s1.InteractiveUtilization >= 1 {
		t.Errorf("scenario 1 utilization = %.2f, want loaded but feasible", s1.InteractiveUtilization)
	}
	if math.Abs(s1.SustainableFPS-33.33) > 0.1 {
		t.Errorf("scenario 1 sustainable fps = %.2f", s1.SustainableFPS)
	}
	if s1.CacheableFraction != 1 {
		t.Errorf("scenario 1 cacheable = %.2f, want 1 (12GB on 16GB)", s1.CacheableFraction)
	}

	s2 := AnalyzeScenario(workload.Scenario(workload.Scenario2, 1))
	if s2.CacheableFraction >= 1 {
		t.Error("scenario 2 must exceed memory (that is its purpose)")
	}

	s3 := AnalyzeScenario(workload.Scenario(workload.Scenario3, 1))
	if s3.TasksPerJob != 16 {
		t.Errorf("scenario 3 m = %d, want 16", s3.TasksPerJob)
	}
	if s3.InteractiveUtilization >= 1 {
		t.Errorf("scenario 3 is 'light load': utilization = %.2f", s3.InteractiveUtilization)
	}

	s4 := AnalyzeScenario(workload.Scenario(workload.Scenario4, 1))
	if !s4.Overloaded() {
		t.Errorf("scenario 4 is 'heavy load': util = %.2f + reload %.2f", s4.TotalUtilization, s4.ReloadUtilization)
	}
	if s4.SustainableFPS >= 33 {
		t.Errorf("scenario 4 sustainable fps = %.2f, must be capped by overload", s4.SustainableFPS)
	}
	// The capped prediction should land near the paper's 23 fps / our 17.
	if s4.SustainableFPS < 10 || s4.SustainableFPS > 30 {
		t.Errorf("scenario 4 sustainable fps = %.2f, want 10-30", s4.SustainableFPS)
	}
}

// The analytic sustainable framerate must agree with what the simulator
// actually measures for OURS, within tolerance — the guard that keeps the
// closed-form model and the event-driven model from drifting apart.
func TestCapacityPredictsSimulatedFramerate(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run")
	}
	for _, id := range []workload.ScenarioID{workload.Scenario1, workload.Scenario3} {
		cfg := workload.Scenario(id, 0.1)
		pred := AnalyzeScenario(cfg)
		rep := sim.RunScenario(cfg, core.NewLocalityScheduler(0), 0.05)
		got := rep.MeanFramerate()
		if math.Abs(got-pred.SustainableFPS) > 0.15*pred.SustainableFPS {
			t.Errorf("scenario %d: simulated %.2f fps vs predicted %.2f", id, got, pred.SustainableFPS)
		}
	}
}

func TestUniformPenalty(t *testing.T) {
	// Scenario 1: the paper says FCFSU consumes about twice the resources
	// per job.
	p := UniformPenalty(workload.Scenario(workload.Scenario1, 1))
	if p < 1.3 || p > 2.5 {
		t.Errorf("scenario 1 uniform penalty = %.2f, want ~2", p)
	}
	// Scenario 3 (64 nodes): the penalty grows with cluster size.
	p3 := UniformPenalty(workload.Scenario(workload.Scenario3, 1))
	if p3 <= p {
		t.Errorf("penalty should grow with node count: %.2f vs %.2f", p3, p)
	}
}

func TestMissBudget(t *testing.T) {
	// Scenario 3 has slack for reloads; scenario 4 has none.
	if b := MissBudget(workload.Scenario(workload.Scenario3, 1)); b <= 0 {
		t.Errorf("scenario 3 miss budget = %.2f, want positive", b)
	}
	if b := MissBudget(workload.Scenario(workload.Scenario4, 1)); b != 0 {
		t.Errorf("scenario 4 miss budget = %.2f, want 0 (overloaded)", b)
	}
}

func TestCapacityString(t *testing.T) {
	s := AnalyzeScenario(workload.Scenario(workload.Scenario1, 1)).String()
	for _, want := range []string{"p=8", "m=4", "fps"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
