package volume

import (
	"fmt"
	"math"

	"vizsched/internal/units"
)

// Box is an axis-aligned voxel bounding box, inclusive of Min and exclusive
// of Max, in the dataset's voxel coordinates.
type Box struct {
	Min, Max [3]int
}

// Dx, Dy, Dz return the box dimensions along each axis.
func (b Box) Dx() int { return b.Max[0] - b.Min[0] }
func (b Box) Dy() int { return b.Max[1] - b.Min[1] }
func (b Box) Dz() int { return b.Max[2] - b.Min[2] }

// Voxels returns the number of voxels inside the box.
func (b Box) Voxels() int { return b.Dx() * b.Dy() * b.Dz() }

// Empty reports whether the box contains no voxels.
func (b Box) Empty() bool { return b.Dx() <= 0 || b.Dy() <= 0 || b.Dz() <= 0 }

// Contains reports whether voxel (x,y,z) lies inside the box.
func (b Box) Contains(x, y, z int) bool {
	return x >= b.Min[0] && x < b.Max[0] &&
		y >= b.Min[1] && y < b.Max[1] &&
		z >= b.Min[2] && z < b.Max[2]
}

// Intersect returns the overlap of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	var r Box
	for i := 0; i < 3; i++ {
		r.Min[i] = max(b.Min[i], o.Min[i])
		r.Max[i] = min(b.Max[i], o.Max[i])
		if r.Max[i] < r.Min[i] {
			r.Max[i] = r.Min[i]
		}
	}
	return r
}

// String renders the box as "[x0,y0,z0)-[x1,y1,z1)".
func (b Box) String() string {
	return fmt.Sprintf("[%d,%d,%d)-[%d,%d,%d)", b.Min[0], b.Min[1], b.Min[2], b.Max[0], b.Max[1], b.Max[2])
}

// Grid is a scalar volume with real voxel data, stored as float32 in x-major
// order (x fastest). Values are expected in [0,1]; the ray caster's transfer
// functions are defined over that range.
type Grid struct {
	Dims [3]int
	Data []float32
}

// NewGrid allocates a zeroed grid of the given dimensions.
func NewGrid(nx, ny, nz int) *Grid {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic("volume: non-positive grid dimension")
	}
	return &Grid{Dims: [3]int{nx, ny, nz}, Data: make([]float32, nx*ny*nz)}
}

// Bounds returns the grid's full voxel box.
func (g *Grid) Bounds() Box { return Box{Max: g.Dims} }

// Index returns the flat index of voxel (x,y,z).
func (g *Grid) Index(x, y, z int) int {
	return (z*g.Dims[1]+y)*g.Dims[0] + x
}

// At returns the value at voxel (x,y,z). Out-of-range coordinates are
// clamped to the boundary, which gives the ray caster free boundary
// handling.
func (g *Grid) At(x, y, z int) float32 {
	x = clampInt(x, 0, g.Dims[0]-1)
	y = clampInt(y, 0, g.Dims[1]-1)
	z = clampInt(z, 0, g.Dims[2]-1)
	return g.Data[g.Index(x, y, z)]
}

// Set stores v at voxel (x,y,z); coordinates must be in range.
func (g *Grid) Set(x, y, z int, v float32) { g.Data[g.Index(x, y, z)] = v }

// SizeBytes returns the in-memory size of the voxel payload.
func (g *Grid) SizeBytes() units.Bytes {
	return units.Bytes(len(g.Data) * 4)
}

// Sample returns the trilinearly interpolated value at the continuous
// position (x,y,z) in voxel coordinates (voxel centers at integer
// coordinates).
func (g *Grid) Sample(x, y, z float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	z0 := int(math.Floor(z))
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	fz := float32(z - float64(z0))

	c000 := g.At(x0, y0, z0)
	c100 := g.At(x0+1, y0, z0)
	c010 := g.At(x0, y0+1, z0)
	c110 := g.At(x0+1, y0+1, z0)
	c001 := g.At(x0, y0, z0+1)
	c101 := g.At(x0+1, y0, z0+1)
	c011 := g.At(x0, y0+1, z0+1)
	c111 := g.At(x0+1, y0+1, z0+1)

	c00 := c000 + (c100-c000)*fx
	c10 := c010 + (c110-c010)*fx
	c01 := c001 + (c101-c001)*fx
	c11 := c011 + (c111-c011)*fx
	c0 := c00 + (c10-c00)*fy
	c1 := c01 + (c11-c01)*fy
	return c0 + (c1-c0)*fz
}

// Gradient estimates the central-difference gradient at the continuous
// position, used for shading in the ray caster.
func (g *Grid) Gradient(x, y, z float64) [3]float32 {
	const h = 1.0
	return [3]float32{
		(g.Sample(x+h, y, z) - g.Sample(x-h, y, z)) / 2,
		(g.Sample(x, y+h, z) - g.Sample(x, y-h, z)) / 2,
		(g.Sample(x, y, z+h) - g.Sample(x, y, z-h)) / 2,
	}
}

// SubGrid copies the voxels inside box (clipped to the grid) into a new
// standalone grid. Used to brick a full grid into renderable chunks.
func (g *Grid) SubGrid(box Box) *Grid {
	box = box.Intersect(g.Bounds())
	if box.Empty() {
		panic(fmt.Sprintf("volume: empty subgrid %v of %v", box, g.Bounds()))
	}
	s := NewGrid(box.Dx(), box.Dy(), box.Dz())
	for z := 0; z < s.Dims[2]; z++ {
		for y := 0; y < s.Dims[1]; y++ {
			srcBase := g.Index(box.Min[0], box.Min[1]+y, box.Min[2]+z)
			dstBase := s.Index(0, y, z)
			copy(s.Data[dstBase:dstBase+s.Dims[0]], g.Data[srcBase:srcBase+s.Dims[0]])
		}
	}
	return s
}

// MinMax returns the smallest and largest values in the grid.
func (g *Grid) MinMax() (lo, hi float32) {
	lo, hi = g.Data[0], g.Data[0]
	for _, v := range g.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Normalize rescales the grid's values to [0,1] in place. A constant grid
// becomes all zeros.
func (g *Grid) Normalize() {
	lo, hi := g.MinMax()
	span := hi - lo
	if span == 0 {
		for i := range g.Data {
			g.Data[i] = 0
		}
		return
	}
	inv := 1 / span
	for i, v := range g.Data {
		g.Data[i] = (v - lo) * inv
	}
}

// BrickZ slices the grid into n bricks along the z axis (the axis volume
// renderers conventionally split first because slabs keep compositing order
// simple). Returns the brick boxes in front-to-back z order. n is clamped to
// the z dimension.
func BrickZ(dims [3]int, n int) []Box {
	if n < 1 {
		n = 1
	}
	if n > dims[2] {
		n = dims[2]
	}
	boxes := make([]Box, 0, n)
	for i := 0; i < n; i++ {
		z0 := dims[2] * i / n
		z1 := dims[2] * (i + 1) / n
		boxes = append(boxes, Box{
			Min: [3]int{0, 0, z0},
			Max: [3]int{dims[0], dims[1], z1},
		})
	}
	return boxes
}

// BrickGrid slices dims into an nx×ny×nz grid of near-equal boxes, in
// z-major order. Used when a dataset is decomposed into more chunks than a
// single axis split can provide.
func BrickGrid(dims [3]int, nx, ny, nz int) []Box {
	clamp := func(n, d int) int {
		if n < 1 {
			return 1
		}
		if n > d {
			return d
		}
		return n
	}
	nx, ny, nz = clamp(nx, dims[0]), clamp(ny, dims[1]), clamp(nz, dims[2])
	boxes := make([]Box, 0, nx*ny*nz)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				boxes = append(boxes, Box{
					Min: [3]int{dims[0] * i / nx, dims[1] * j / ny, dims[2] * k / nz},
					Max: [3]int{dims[0] * (i + 1) / nx, dims[1] * (j + 1) / ny, dims[2] * (k + 1) / nz},
				})
			}
		}
	}
	return boxes
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
