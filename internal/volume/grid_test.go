package volume

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxBasics(t *testing.T) {
	b := Box{Min: [3]int{1, 2, 3}, Max: [3]int{4, 6, 9}}
	if b.Dx() != 3 || b.Dy() != 4 || b.Dz() != 6 {
		t.Errorf("dims = %d,%d,%d", b.Dx(), b.Dy(), b.Dz())
	}
	if b.Voxels() != 72 {
		t.Errorf("Voxels = %d", b.Voxels())
	}
	if b.Empty() {
		t.Error("non-empty box reported empty")
	}
	if !b.Contains(1, 2, 3) || b.Contains(4, 2, 3) {
		t.Error("Contains boundary handling wrong")
	}
	i := b.Intersect(Box{Min: [3]int{2, 2, 2}, Max: [3]int{10, 3, 5}})
	want := Box{Min: [3]int{2, 2, 3}, Max: [3]int{4, 3, 5}}
	if i != want {
		t.Errorf("Intersect = %v, want %v", i, want)
	}
	empty := b.Intersect(Box{Min: [3]int{100, 100, 100}, Max: [3]int{200, 200, 200}})
	if !empty.Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", empty)
	}
}

func TestGridAtClampsAndSet(t *testing.T) {
	g := NewGrid(4, 4, 4)
	g.Set(3, 3, 3, 0.75)
	if g.At(3, 3, 3) != 0.75 {
		t.Error("Set/At roundtrip failed")
	}
	// Out-of-range clamps to boundary voxel.
	if g.At(99, 99, 99) != 0.75 {
		t.Error("At did not clamp high")
	}
	if g.At(-5, 0, 0) != g.At(0, 0, 0) {
		t.Error("At did not clamp low")
	}
}

func TestNewGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGrid(0, 4, 4)
}

func TestSampleAtVoxelCentersIsExact(t *testing.T) {
	g := Generate(Turbulence(7), 8, 8, 8)
	for _, p := range [][3]int{{0, 0, 0}, {3, 4, 5}, {7, 7, 7}} {
		want := g.At(p[0], p[1], p[2])
		got := g.Sample(float64(p[0]), float64(p[1]), float64(p[2]))
		if math.Abs(float64(got-want)) > 1e-6 {
			t.Errorf("Sample%v = %v, want %v", p, got, want)
		}
	}
}

func TestSampleInterpolatesLinearly(t *testing.T) {
	// A grid whose value equals its x coordinate must interpolate exactly.
	g := NewGrid(4, 4, 4)
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				g.Set(x, y, z, float32(x))
			}
		}
	}
	for _, x := range []float64{0.25, 1.5, 2.75} {
		got := g.Sample(x, 1.3, 2.7)
		if math.Abs(float64(got)-x) > 1e-5 {
			t.Errorf("Sample(%v) = %v, want %v", x, got, x)
		}
	}
}

// Property: trilinear samples are bounded by the grid's min and max.
func TestQuickSampleBounded(t *testing.T) {
	g := Generate(Turbulence(42), 10, 10, 10)
	lo, hi := g.MinMax()
	f := func(a, b, c uint16) bool {
		x := float64(a) / 65535 * 9
		y := float64(b) / 65535 * 9
		z := float64(c) / 65535 * 9
		v := g.Sample(x, y, z)
		return v >= lo-1e-5 && v <= hi+1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	g := NewGrid(6, 6, 6)
	for z := 0; z < 6; z++ {
		for y := 0; y < 6; y++ {
			for x := 0; x < 6; x++ {
				g.Set(x, y, z, float32(2*x+3*y+5*z))
			}
		}
	}
	grad := g.Gradient(2.5, 2.5, 2.5)
	want := [3]float32{2, 3, 5}
	for i := range grad {
		if math.Abs(float64(grad[i]-want[i])) > 1e-4 {
			t.Errorf("Gradient[%d] = %v, want %v", i, grad[i], want[i])
		}
	}
}

func TestSubGridCopies(t *testing.T) {
	g := Generate(Turbulence(3), 8, 6, 10)
	box := Box{Min: [3]int{2, 1, 3}, Max: [3]int{6, 5, 9}}
	s := g.SubGrid(box)
	if s.Dims != [3]int{4, 4, 6} {
		t.Fatalf("dims = %v", s.Dims)
	}
	for z := 0; z < s.Dims[2]; z++ {
		for y := 0; y < s.Dims[1]; y++ {
			for x := 0; x < s.Dims[0]; x++ {
				if s.At(x, y, z) != g.At(x+2, y+1, z+3) {
					t.Fatalf("mismatch at %d,%d,%d", x, y, z)
				}
			}
		}
	}
	// Mutating the subgrid must not touch the parent.
	before := g.At(2, 1, 3)
	s.Set(0, 0, 0, before+1)
	if g.At(2, 1, 3) != before {
		t.Error("SubGrid aliases parent storage")
	}
}

func TestNormalize(t *testing.T) {
	g := NewGrid(2, 2, 2)
	for i := range g.Data {
		g.Data[i] = float32(i) * 3
	}
	g.Normalize()
	lo, hi := g.MinMax()
	if lo != 0 || hi != 1 {
		t.Errorf("normalized range = [%v,%v]", lo, hi)
	}
	// Constant grid normalizes to zeros.
	c := NewGrid(2, 2, 2)
	for i := range c.Data {
		c.Data[i] = 5
	}
	c.Normalize()
	if lo, hi := c.MinMax(); lo != 0 || hi != 0 {
		t.Errorf("constant normalize = [%v,%v]", lo, hi)
	}
}

func TestBrickZCoversExactly(t *testing.T) {
	dims := [3]int{10, 12, 17}
	for n := 1; n <= 20; n++ {
		boxes := BrickZ(dims, n)
		total := 0
		prevZ := 0
		for _, b := range boxes {
			if b.Min[2] != prevZ {
				t.Fatalf("n=%d: gap/overlap at z=%d", n, b.Min[2])
			}
			prevZ = b.Max[2]
			if b.Empty() {
				t.Fatalf("n=%d: empty brick %v", n, b)
			}
			total += b.Voxels()
		}
		if prevZ != dims[2] || total != 10*12*17 {
			t.Fatalf("n=%d: bricks cover %d voxels to z=%d", n, total, prevZ)
		}
	}
}

// Property: BrickGrid partitions the volume exactly (total voxels conserved,
// no empty bricks).
func TestQuickBrickGridPartition(t *testing.T) {
	f := func(nx, ny, nz uint8) bool {
		dims := [3]int{13, 9, 21}
		boxes := BrickGrid(dims, int(nx%6), int(ny%6), int(nz%6))
		total := 0
		for _, b := range boxes {
			if b.Empty() {
				return false
			}
			total += b.Voxels()
		}
		return total == 13*9*21
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldsAreInRange(t *testing.T) {
	for name, f := range Fields {
		for _, p := range [][3]float64{{0, 0, 0}, {0.5, 0.5, 0.5}, {1, 1, 1}, {0.3, 0.8, 0.1}} {
			v := f(p[0], p[1], p[2])
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s%v = %v out of [0,1]", name, p, v)
			}
		}
	}
}

func TestFieldByNameFallback(t *testing.T) {
	f1 := FieldByName("no-such-dataset")
	f2 := FieldByName("no-such-dataset")
	if f1(0.3, 0.3, 0.3) != f2(0.3, 0.3, 0.3) {
		t.Error("fallback field not deterministic")
	}
	if FieldByName("plume")(0.5, 0.5, 0.5) != Plume(0.5, 0.5, 0.5) {
		t.Error("named field not returned")
	}
}

func TestFigureDims(t *testing.T) {
	d, err := FigureDims("plume", 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != [3]int{63, 63, 256} {
		t.Errorf("dims = %v", d)
	}
	if _, err := FigureDims("nope", 1); err == nil {
		t.Error("unknown dataset did not error")
	}
	// Downscale floor of 8.
	d, _ = FigureDims("plume", 1000)
	for _, v := range d {
		if v < 8 {
			t.Errorf("dims = %v below floor", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Plume, 16, 16, 16)
	b := Generate(Plume, 16, 16, 16)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Generate not deterministic")
		}
	}
	if a.SizeBytes() != 16*16*16*4 {
		t.Errorf("SizeBytes = %v", a.SizeBytes())
	}
}
