package volume

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The on-disk format is a minimal self-describing raw volume:
//
//	magic "VSVOL1\n" | nx,ny,nz uint32 LE | nx*ny*nz float32 LE
//
// It exists so the real service path (volgen → disk → render node cache →
// ray caster) exercises genuine file I/O, the cost the paper's scheduler is
// built to avoid repeating.

const magic = "VSVOL1\n"

// WriteGrid writes g to w in VSVOL1 format.
func WriteGrid(w io.Writer, g *Grid) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := [3]uint32{uint32(g.Dims[0]), uint32(g.Dims[1]), uint32(g.Dims[2])}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Data); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadGrid reads a VSVOL1 volume from r.
func ReadGrid(r io.Reader) (*Grid, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("volume: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("volume: bad magic %q", got)
	}
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("volume: reading header: %w", err)
	}
	const maxDim = 1 << 14
	for _, d := range hdr {
		if d == 0 || d > maxDim {
			return nil, fmt.Errorf("volume: unreasonable dimension %d", d)
		}
	}
	g := NewGrid(int(hdr[0]), int(hdr[1]), int(hdr[2]))
	if err := binary.Read(br, binary.LittleEndian, g.Data); err != nil {
		return nil, fmt.Errorf("volume: reading voxels: %w", err)
	}
	return g, nil
}

// SaveGrid writes g to the named file.
func SaveGrid(path string, g *Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGrid(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadGrid reads a volume from the named file.
func LoadGrid(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGrid(f)
}
