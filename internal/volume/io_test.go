package volume

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestGridRoundTrip(t *testing.T) {
	g := Generate(Supernova, 12, 10, 14)
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != g.Dims {
		t.Fatalf("dims = %v, want %v", got.Dims, g.Dims)
	}
	for i := range g.Data {
		if got.Data[i] != g.Data[i] {
			t.Fatalf("voxel %d mismatch", i)
		}
	}
}

func TestReadGridRejectsBadMagic(t *testing.T) {
	if _, err := ReadGrid(strings.NewReader("NOTVOL\nxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadGridRejectsTruncated(t *testing.T) {
	g := Generate(Plume, 8, 8, 8)
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadGrid(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated volume accepted")
	}
}

func TestReadGridRejectsHugeDims(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	// nx = 1<<20: unreasonable.
	buf.Write([]byte{0, 0, 16, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	if _, err := ReadGrid(&buf); err == nil {
		t.Error("huge dims accepted")
	}
}

func TestSaveLoadGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.vsvol")
	g := Generate(Combustion, 10, 10, 6)
	if err := SaveGrid(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != g.Dims {
		t.Fatalf("dims = %v", got.Dims)
	}
	if got.At(5, 5, 3) != g.At(5, 5, 3) {
		t.Error("voxel mismatch after file roundtrip")
	}
}

func TestLoadGridMissingFile(t *testing.T) {
	if _, err := LoadGrid(filepath.Join(t.TempDir(), "missing.vsvol")); err == nil {
		t.Error("missing file did not error")
	}
}
