package volume

import (
	"fmt"
	"math"
	"math/rand"
)

// A FieldFunc evaluates a synthetic scalar field at normalized coordinates
// in [0,1]³ and returns a value in [0,1]. The generators below are analytic
// stand-ins for the paper's three science datasets (Fig. 10): a plume
// simulation (252×252×1024), a combustion simulation (2025×1600×400), and a
// supernova simulation (864³). They are not the science data, but they have
// the same qualitative structure — a rising turbulent column, a thin wrinkled
// flame sheet, and a radiating shell — so the renderer and transfer functions
// are exercised the same way.
type FieldFunc func(x, y, z float64) float64

// Plume is a buoyant-plume analogue: a vertical Gaussian column whose radius
// grows with height, perturbed by swirling harmonics.
func Plume(x, y, z float64) float64 {
	dx, dy := x-0.5, y-0.5
	r := math.Sqrt(dx*dx + dy*dy)
	// Column radius widens from 0.06 at the base to 0.25 at the top.
	radius := 0.06 + 0.19*z
	core := math.Exp(-(r * r) / (2 * radius * radius))
	// Swirl: azimuthal ripples advected upward.
	theta := math.Atan2(dy, dx)
	swirl := 0.5 + 0.5*math.Sin(5*theta+18*z)
	ripple := 0.5 + 0.5*math.Sin(40*z+6*math.Cos(3*theta))
	v := core * (0.55 + 0.3*swirl*ripple)
	// Fade in at the base so the plume appears to detach from an inlet.
	v *= smooth01(z / 0.08)
	return clamp01(v)
}

// Combustion is a flame-sheet analogue: a thin, wrinkled iso-surface layer
// (mimicking a premixed flame front in a turbulent jet) embedded in cooler
// surroundings.
func Combustion(x, y, z float64) float64 {
	// The flame sheet is the zero level set of a wrinkled implicit surface.
	wrinkle := 0.08*math.Sin(9*math.Pi*x)*math.Cos(7*math.Pi*z) +
		0.05*math.Sin(15*math.Pi*x+5*math.Pi*z) +
		0.03*math.Sin(23*math.Pi*z)
	sheet := y - (0.5 + wrinkle)
	// Intensity decays away from the sheet; hotter pockets near x center.
	hot := math.Exp(-sheet * sheet / (2 * 0.02 * 0.02))
	jet := math.Exp(-(x - 0.5) * (x - 0.5) / (2 * 0.3 * 0.3))
	cool := 0.12 * math.Exp(-(y-0.25)*(y-0.25)/(2*0.2*0.2))
	return clamp01(hot*jet*0.9 + cool)
}

// Supernova is a radiating-shell analogue: an expanding spherical shock
// shell with angular instabilities and a dense core remnant.
func Supernova(x, y, z float64) float64 {
	dx, dy, dz := x-0.5, y-0.5, z-0.5
	r := math.Sqrt(dx*dx+dy*dy+dz*dz) * 2 // 0 at center, ~1 at corner faces
	theta := math.Acos(clampRange(dz*2/math.Max(r, 1e-9), -1, 1))
	phi := math.Atan2(dy, dx)
	// Rayleigh–Taylor-like fingers perturb the shell radius.
	finger := 0.05*math.Sin(6*phi)*math.Sin(5*theta) + 0.03*math.Sin(11*phi+3*theta)
	shellR := 0.62 + finger
	shell := math.Exp(-(r - shellR) * (r - shellR) / (2 * 0.035 * 0.035))
	core := 0.8 * math.Exp(-r*r/(2*0.12*0.12))
	return clamp01(shell*0.85 + core)
}

// Turbulence is a generic multi-octave value-noise field used by tests and
// the ablation workloads; seed selects the noise table.
func Turbulence(seed int64) FieldFunc {
	n := newValueNoise(seed)
	return func(x, y, z float64) float64 {
		var sum, amp, freq = 0.0, 0.5, 4.0
		for o := 0; o < 4; o++ {
			sum += amp * n.at(x*freq, y*freq, z*freq)
			amp /= 2
			freq *= 2
		}
		return clamp01(sum)
	}
}

// Fields maps the canonical dataset names to their generators.
var Fields = map[string]FieldFunc{
	"plume":      Plume,
	"combustion": Combustion,
	"supernova":  Supernova,
}

// FieldByName returns the named generator; unknown names fall back to a
// seeded turbulence field derived from the name, so arbitrary scenario
// dataset names always render something deterministic.
func FieldByName(name string) FieldFunc {
	if f, ok := Fields[name]; ok {
		return f
	}
	var seed int64
	for _, r := range name {
		seed = seed*131 + int64(r)
	}
	return Turbulence(seed)
}

// Generate fills a new grid by sampling f at voxel centers mapped to
// normalized [0,1]³ coordinates.
func Generate(f FieldFunc, nx, ny, nz int) *Grid {
	g := NewGrid(nx, ny, nz)
	sx := 1.0 / float64(max(nx-1, 1))
	sy := 1.0 / float64(max(ny-1, 1))
	sz := 1.0 / float64(max(nz-1, 1))
	for z := 0; z < nz; z++ {
		fz := float64(z) * sz
		for y := 0; y < ny; y++ {
			fy := float64(y) * sy
			base := g.Index(0, y, z)
			for x := 0; x < nx; x++ {
				g.Data[base+x] = float32(f(float64(x)*sx, fy, fz))
			}
		}
	}
	return g
}

// valueNoise is trilinearly interpolated lattice noise with a permuted
// hash, sufficient for deterministic synthetic turbulence without any
// external dependency.
type valueNoise struct {
	perm [512]int
	vals [256]float64
}

func newValueNoise(seed int64) *valueNoise {
	rng := rand.New(rand.NewSource(seed))
	n := &valueNoise{}
	p := rng.Perm(256)
	for i := 0; i < 256; i++ {
		n.perm[i] = p[i]
		n.perm[i+256] = p[i]
		n.vals[i] = rng.Float64()
	}
	return n
}

func (n *valueNoise) lattice(ix, iy, iz int) float64 {
	return n.vals[n.perm[n.perm[n.perm[ix&255]+(iy&255)]+(iz&255)]]
}

func (n *valueNoise) at(x, y, z float64) float64 {
	x0, y0, z0 := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
	fx, fy, fz := smooth01(x-float64(x0)), smooth01(y-float64(y0)), smooth01(z-float64(z0))
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	c00 := lerp(n.lattice(x0, y0, z0), n.lattice(x0+1, y0, z0), fx)
	c10 := lerp(n.lattice(x0, y0+1, z0), n.lattice(x0+1, y0+1, z0), fx)
	c01 := lerp(n.lattice(x0, y0, z0+1), n.lattice(x0+1, y0, z0+1), fx)
	c11 := lerp(n.lattice(x0, y0+1, z0+1), n.lattice(x0+1, y0+1, z0+1), fx)
	return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz)
}

func clamp01(v float64) float64 { return clampRange(v, 0, 1) }

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// smooth01 is the smoothstep ramp clamped to [0,1].
func smooth01(t float64) float64 {
	t = clamp01(t)
	return t * t * (3 - 2*t)
}

// FigureDims gives the paper's Fig. 10 dataset dimensions, downscaled by
// factor (≥1) so the analogues render at laptop scale while keeping the
// originals' aspect ratios.
func FigureDims(name string, factor int) ([3]int, error) {
	if factor < 1 {
		factor = 1
	}
	full := map[string][3]int{
		"plume":      {252, 252, 1024},
		"combustion": {2025, 1600, 400},
		"supernova":  {864, 864, 864},
	}
	d, ok := full[name]
	if !ok {
		return [3]int{}, fmt.Errorf("volume: unknown figure dataset %q", name)
	}
	for i := range d {
		d[i] = max(d[i]/factor, 8)
	}
	return d, nil
}
