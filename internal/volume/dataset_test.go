package volume

import (
	"testing"
	"testing/quick"

	"vizsched/internal/units"
)

func TestMaxChunkSplit(t *testing.T) {
	p := MaxChunk{Chkmax: 512 * units.MB}
	cases := []struct {
		size  units.Bytes
		wantN int
	}{
		{2 * units.GB, 4},
		{2*units.GB + 1, 5},
		{512 * units.MB, 1},
		{1, 1},
		{8 * units.GB, 16},
	}
	for _, c := range cases {
		chunks := p.Split(c.size)
		if len(chunks) != c.wantN {
			t.Errorf("Split(%v) yielded %d chunks, want %d", c.size, len(chunks), c.wantN)
		}
		var sum units.Bytes
		for _, s := range chunks {
			if s > p.Chkmax {
				t.Errorf("Split(%v) chunk %v exceeds Chkmax %v", c.size, s, p.Chkmax)
			}
			sum += s
		}
		if sum != c.size {
			t.Errorf("Split(%v) chunks sum to %v", c.size, sum)
		}
	}
}

func TestMaxChunkZeroSize(t *testing.T) {
	if got := (MaxChunk{Chkmax: units.MB}).Split(0); got != nil {
		t.Errorf("Split(0) = %v, want nil", got)
	}
}

func TestMaxChunkPanicsWithoutChkmax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MaxChunk{}.Split(units.GB)
}

func TestUniformSplit(t *testing.T) {
	p := Uniform{N: 8}
	chunks := p.Split(2 * units.GB)
	if len(chunks) != 8 {
		t.Fatalf("got %d chunks, want 8", len(chunks))
	}
	var sum units.Bytes
	for _, s := range chunks {
		sum += s
	}
	if sum != 2*units.GB {
		t.Errorf("chunks sum to %v", sum)
	}
	// Equal split of an exactly divisible size.
	for _, s := range chunks {
		if s != 256*units.MB {
			t.Errorf("chunk = %v, want 256MB", s)
		}
	}
}

// Property: any decomposition conserves total size, produces positive chunk
// sizes, and chunk sizes differ by at most one byte.
func TestQuickDecompositionConserves(t *testing.T) {
	check := func(p Decomposition) func(uint32) bool {
		return func(raw uint32) bool {
			size := units.Bytes(raw%(1<<30) + 1)
			chunks := p.Split(size)
			var sum units.Bytes
			lo, hi := chunks[0], chunks[0]
			for _, s := range chunks {
				if s <= 0 {
					return false
				}
				sum += s
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			return sum == size && hi-lo <= 1
		}
	}
	if err := quick.Check(check(MaxChunk{Chkmax: 64 * units.MB}), nil); err != nil {
		t.Errorf("MaxChunk: %v", err)
	}
	if err := quick.Check(check(Uniform{N: 7}), nil); err != nil {
		t.Errorf("Uniform: %v", err)
	}
}

// Property: MaxChunk uses the minimal chunk count subject to the cap.
func TestQuickMaxChunkMinimal(t *testing.T) {
	p := MaxChunk{Chkmax: 10 * units.MB}
	f := func(raw uint32) bool {
		size := units.Bytes(raw%(1<<28) + 1)
		m := len(p.Split(size))
		// m chunks suffice, m-1 do not.
		return units.Bytes(m)*p.Chkmax >= size && units.Bytes(m-1)*p.Chkmax < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewDatasetAndLibrary(t *testing.T) {
	lib := NewLibrary()
	for i := 0; i < 3; i++ {
		d := NewDataset(DatasetID(i), "ds", 2*units.GB, MaxChunk{Chkmax: 512 * units.MB})
		if d.ChunkCount() != 4 {
			t.Fatalf("chunk count = %d, want 4", d.ChunkCount())
		}
		if d.TotalChunkSize() != d.Size {
			t.Fatalf("TotalChunkSize = %v, want %v", d.TotalChunkSize(), d.Size)
		}
		lib.Add(d)
	}
	if lib.Len() != 3 {
		t.Errorf("Len = %d", lib.Len())
	}
	if lib.TotalSize() != 6*units.GB {
		t.Errorf("TotalSize = %v", lib.TotalSize())
	}
	c := lib.Chunk(ChunkID{Dataset: 1, Index: 2})
	if c.ID != (ChunkID{Dataset: 1, Index: 2}) || c.Size != 512*units.MB {
		t.Errorf("Chunk = %+v", c)
	}
	if lib.Get(2) == nil || lib.Get(9) != nil {
		t.Error("Get misbehaves")
	}
}

func TestLibraryDuplicatePanics(t *testing.T) {
	lib := NewLibrary()
	lib.Add(NewDataset(1, "a", units.GB, Uniform{N: 2}))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	lib.Add(NewDataset(1, "b", units.GB, Uniform{N: 2}))
}

func TestLibraryDanglingChunkPanics(t *testing.T) {
	lib := NewLibrary()
	lib.Add(NewDataset(1, "a", units.GB, Uniform{N: 2}))
	defer func() {
		if recover() == nil {
			t.Error("dangling Chunk did not panic")
		}
	}()
	lib.Chunk(ChunkID{Dataset: 1, Index: 99})
}

func TestChunkIDString(t *testing.T) {
	if got := (ChunkID{Dataset: 3, Index: 2}).String(); got != "d3/c2" {
		t.Errorf("got %q", got)
	}
}
