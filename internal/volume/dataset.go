// Package volume models volumetric datasets at two fidelities.
//
// At *metadata* fidelity a Dataset is a named size plus a chunk
// decomposition; this is all the scheduler and the discrete-event simulator
// ever look at, and it lets us describe the paper's 2 GB–8 GB datasets
// without allocating them. At *voxel* fidelity a Grid holds real scalar
// data produced by the synthetic field generators in field.go, bricked by
// the same decomposition policies, and fed to the software ray caster.
package volume

import (
	"fmt"

	"vizsched/internal/units"
)

// DatasetID identifies a dataset within a service.
type DatasetID int

// ChunkID identifies one chunk of one dataset. Chunks are the unit of
// caching, I/O, and task assignment throughout the system.
type ChunkID struct {
	Dataset DatasetID
	Index   int
}

// String renders the chunk as "d3/c2".
func (c ChunkID) String() string { return fmt.Sprintf("d%d/c%d", int(c.Dataset), c.Index) }

// Chunk is one piece of a decomposed dataset.
type Chunk struct {
	ID   ChunkID
	Size units.Bytes
	// Extent is the brick's voxel bounding box when the dataset has voxel
	// fidelity; zero-valued for metadata-only datasets.
	Extent Box
}

// Dataset is the metadata view of a volumetric dataset.
type Dataset struct {
	ID     DatasetID
	Name   string
	Size   units.Bytes
	Chunks []Chunk
}

// ChunkCount returns the number of chunks in the decomposition.
func (d *Dataset) ChunkCount() int { return len(d.Chunks) }

// Decomposition is a policy for splitting a dataset into chunks (§III-C).
type Decomposition interface {
	// Split returns the chunk sizes for a dataset of the given total size.
	Split(size units.Bytes) []units.Bytes
	// Name identifies the policy in logs and experiment output.
	Name() string
}

// MaxChunk decomposes into m = ⌈size/Chkmax⌉ equal chunks, the paper's
// preferred policy: a minimal number of chunks each no larger than Chkmax
// (which must not exceed a node's GPU memory).
type MaxChunk struct {
	Chkmax units.Bytes
}

// Name implements Decomposition.
func (p MaxChunk) Name() string { return fmt.Sprintf("maxchunk(%v)", p.Chkmax) }

// Split implements Decomposition.
func (p MaxChunk) Split(size units.Bytes) []units.Bytes {
	if p.Chkmax <= 0 {
		panic("volume: MaxChunk requires positive Chkmax")
	}
	if size <= 0 {
		return nil
	}
	m := units.CeilDiv(int64(size), int64(p.Chkmax))
	chunks := make([]units.Bytes, m)
	base := size / units.Bytes(m)
	rem := size - base*units.Bytes(m)
	for i := range chunks {
		chunks[i] = base
		if units.Bytes(i) < rem {
			chunks[i]++
		}
	}
	return chunks
}

// Uniform decomposes into exactly N equal chunks regardless of size — the
// FCFSU baseline's policy, where N is the number of rendering nodes.
type Uniform struct {
	N int
}

// Name implements Decomposition.
func (p Uniform) Name() string { return fmt.Sprintf("uniform(%d)", p.N) }

// Split implements Decomposition.
func (p Uniform) Split(size units.Bytes) []units.Bytes {
	if p.N <= 0 {
		panic("volume: Uniform requires positive N")
	}
	if size <= 0 {
		return nil
	}
	chunks := make([]units.Bytes, p.N)
	base := size / units.Bytes(p.N)
	rem := size - base*units.Bytes(p.N)
	for i := range chunks {
		chunks[i] = base
		if units.Bytes(i) < rem {
			chunks[i]++
		}
	}
	return chunks
}

// NewDataset builds a metadata dataset with the given decomposition.
func NewDataset(id DatasetID, name string, size units.Bytes, policy Decomposition) *Dataset {
	sizes := policy.Split(size)
	d := &Dataset{ID: id, Name: name, Size: size}
	d.Chunks = make([]Chunk, len(sizes))
	for i, s := range sizes {
		d.Chunks[i] = Chunk{ID: ChunkID{Dataset: id, Index: i}, Size: s}
	}
	return d
}

// TotalChunkSize returns the sum of chunk sizes; it must equal Size for any
// correct decomposition (a property the tests enforce).
func (d *Dataset) TotalChunkSize() units.Bytes {
	var sum units.Bytes
	for _, c := range d.Chunks {
		sum += c.Size
	}
	return sum
}

// Library is an ordered collection of datasets, as served by a head node.
type Library struct {
	datasets []*Dataset
	byID     map[DatasetID]*Dataset
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{byID: make(map[DatasetID]*Dataset)}
}

// Add registers a dataset. Duplicate IDs panic: the library is built once at
// configuration time and a duplicate is always a setup bug.
func (l *Library) Add(d *Dataset) {
	if _, dup := l.byID[d.ID]; dup {
		panic(fmt.Sprintf("volume: duplicate dataset id %d", d.ID))
	}
	l.datasets = append(l.datasets, d)
	l.byID[d.ID] = d
}

// Get returns the dataset with the given ID, or nil.
func (l *Library) Get(id DatasetID) *Dataset { return l.byID[id] }

// Chunk resolves a ChunkID to its Chunk. It panics on dangling IDs, which
// indicate corruption of scheduler state.
func (l *Library) Chunk(id ChunkID) Chunk {
	d := l.byID[id.Dataset]
	if d == nil || id.Index < 0 || id.Index >= len(d.Chunks) {
		panic(fmt.Sprintf("volume: dangling chunk id %v", id))
	}
	return d.Chunks[id.Index]
}

// All returns the datasets in insertion order. The returned slice is shared;
// callers must not mutate it.
func (l *Library) All() []*Dataset { return l.datasets }

// Len returns the number of datasets.
func (l *Library) Len() int { return len(l.datasets) }

// TotalSize returns the combined size of all datasets.
func (l *Library) TotalSize() units.Bytes {
	var sum units.Bytes
	for _, d := range l.datasets {
		sum += d.Size
	}
	return sum
}
