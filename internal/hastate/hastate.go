// Package hastate is the head node's durable dispatch state (DESIGN.md
// §5.10): a deterministic snapshot of everything a restarted or warm-standby
// head needs — the core prediction tables, the QoS controller's durable
// state, and the queued + in-flight jobs — plus the replay engine that
// applies an internal/journal mutation log on top of a snapshot.
//
// The design splits state by how it is recovered:
//
//   - Core tables (Cache/Available/Estimate, health, homes/pressure,
//     prefetch accuracy) are reconstructed *exactly*: the snapshot captures
//     them in sorted slice form (core.TableDump) and the journal replays the
//     very same mutations the live head performed — CommitAssign at the
//     recorded time, Correct with the recorded facts, MarkFailed/Repaired/
//     Suspect/Up, MarkPrefetched. Because core.HeadState mutates only
//     through those operations, replay is deep-equal to the lost head.
//   - Jobs are reconstructed exactly from admit records plus per-task
//     dispatch/complete records; completed-but-undelivered work is
//     identified by task state so recovery never re-renders it.
//   - QoS soft state (token balances, degradation ladder, accounting) comes
//     from the snapshot as-of its capture; session in-flight depths and
//     queue contents are *derived* from the recovered jobs, which keeps the
//     admission bound exact even though rate-limiter balances may lag by at
//     most one snapshot interval.
package hastate

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"vizsched/internal/cache"
	"vizsched/internal/core"
	"vizsched/internal/journal"
	"vizsched/internal/qos"
	"vizsched/internal/units"
	"vizsched/internal/volume"
)

// TaskState is one task's position in the dispatch lifecycle.
type TaskState uint8

// Task lifecycle states as recorded in job records.
const (
	// TaskQueued: not dispatched (or released after a presumed loss).
	TaskQueued TaskState = iota
	// TaskAssigned: dispatched to Node, completion not yet journaled.
	TaskAssigned
	// TaskDone: completion journaled; never re-rendered by recovery.
	TaskDone
)

// TaskInfo is one task's durable record inside a JobRecord.
type TaskInfo struct {
	Chunk volume.ChunkID
	Size  units.Bytes
	State TaskState
	// Node and Predicted are meaningful for TaskAssigned and TaskDone.
	Node      core.NodeID
	Predicted units.Duration
}

// JobRecord is the durable form of one admitted job. Req is an opaque
// service-layer payload (the original render request, encoded by the
// caller); hastate never interprets it, which keeps this package free of
// service dependencies.
type JobRecord struct {
	ID      core.JobID
	Key     uint64 // client idempotency key; 0 when the client sent none
	Class   core.Class
	Action  core.ActionID
	Tenant  core.TenantID
	Dataset volume.DatasetID
	Issued  units.Time
	Req     []byte
	Tasks   []TaskInfo
}

// Done reports whether every task has a journaled completion.
func (r *JobRecord) Done() bool {
	for i := range r.Tasks {
		if r.Tasks[i].State != TaskDone {
			return false
		}
	}
	return true
}

// Snapshot is the head's complete durable state at one instant. Every field
// is slice-backed and deterministically ordered, so equal heads encode to
// byte-identical snapshots.
type Snapshot struct {
	// At is the head's service clock when the snapshot was taken; journal
	// records at or after At apply on top.
	At        units.Time
	NextJobID core.JobID
	Tables    *core.TableDump
	// QoS is nil when the admission layer is off.
	QoS *qos.StateDump
	// Jobs holds queued and in-flight jobs in admission order.
	Jobs []JobRecord
}

// Journal record bodies. The fixed journal.Record fields carry kind, job ID,
// task index, node, and timestamp; bodies carry what else each mutation
// needs.

// AdmitBody accompanies journal.KindAdmit: the full job record, all tasks
// TaskQueued.
type AdmitBody struct {
	Job JobRecord
}

// DispatchBody accompanies journal.KindDispatch. Predicted is the execution
// time CommitAssign returned on the live head; replay recomputes it from the
// reconstructed tables and fails loudly on a mismatch — a divergence here
// means the journal and tables have drifted apart.
type DispatchBody struct {
	Predicted units.Duration
}

// CompleteBody accompanies journal.KindComplete: the facts the live head fed
// into Correct. Touch records whether the head attempted a
// DemandTouchPrefetched settle (prefetching on and the task hit).
type CompleteBody struct {
	Hit     bool
	Touch   bool
	Exec    units.Duration
	Evicted []volume.ChunkID
}

// PrefetchBody accompanies journal.KindPrefetch: a worker-confirmed warm.
type PrefetchBody struct {
	Chunk   volume.ChunkID
	Size    units.Bytes
	Loaded  bool
	Evicted []volume.ChunkID
}

// ResyncBody accompanies journal.KindResync: the cache contents a
// reconnecting worker announced, adopted wholesale via ResyncCache.
type ResyncBody struct {
	Entries []cache.Entry
}

// EncodeBody gob-encodes a journal record body.
func EncodeBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBody gob-decodes a journal record body.
func DecodeBody(raw []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// Snapshot encoding: a fixed magic + version header, a CRC32 over the gob
// payload, then the payload. Gob is deterministic for the slice-only shapes
// above, so equal snapshots produce byte-identical encodings.

const snapMagic = "VZHA"

// SnapVersion is the snapshot format version.
const SnapVersion = 1

// ErrBadSnapshot reports a snapshot that failed structural or checksum
// validation.
var ErrBadSnapshot = fmt.Errorf("hastate: bad snapshot")

// Encode serializes the snapshot with an integrity header.
func (s *Snapshot) Encode() ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("hastate: encoding snapshot: %w", err)
	}
	out := make([]byte, 0, len(snapMagic)+8+payload.Len())
	out = append(out, snapMagic...)
	out = binary.LittleEndian.AppendUint32(out, SnapVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload.Bytes()))
	return append(out, payload.Bytes()...), nil
}

// DecodeSnapshot parses and validates an encoded snapshot.
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	hdr := len(snapMagic) + 8
	if len(raw) < hdr || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: missing header", ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(raw[len(snapMagic):]); v != SnapVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, v, SnapVersion)
	}
	sum := binary.LittleEndian.Uint32(raw[len(snapMagic)+4:])
	payload := raw[hdr:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &s, nil
}

// RecoveredJob pairs a job's durable record (with final per-task states)
// with the reconstructed scheduler-facing job: Assigned flags, Remaining,
// and PredictedExec all match what the lost head held.
type RecoveredJob struct {
	Rec *JobRecord
	Job *core.Job
}

// State is the outcome of Replay: everything a standby head needs to resume
// dispatching where the lost head stopped.
type State struct {
	// Tables is deep-equal to the lost head's core.HeadState.
	Tables *core.HeadState
	// Jobs holds surviving (admitted, not failed) jobs in admission order;
	// fully-Done jobs are included so the service can deliver retained
	// results without re-rendering.
	Jobs []*RecoveredJob
	// QoS is the snapshot's controller state, passed through for the service
	// to Restore (nil when QoS was off).
	QoS       *qos.StateDump
	NextJobID core.JobID
	// At is the latest service-clock instant the state reflects: the
	// standby's clock must resume at or after it.
	At units.Time
}

// buildJob reconstructs the scheduler-facing job from a durable record.
func buildJob(r *JobRecord) *core.Job {
	j := &core.Job{
		ID: r.ID, Class: r.Class, Action: r.Action,
		Tenant: r.Tenant, Dataset: r.Dataset, Issued: r.Issued,
	}
	j.Tasks = make([]core.Task, len(r.Tasks))
	for i := range r.Tasks {
		ti := &r.Tasks[i]
		j.Tasks[i] = core.Task{Job: j, Index: i, Chunk: ti.Chunk, Size: ti.Size}
		if ti.State == TaskQueued {
			j.Remaining++
		} else {
			j.Tasks[i].Assigned = true
			j.Tasks[i].PredictedExec = ti.Predicted
		}
	}
	return j
}

// Replay reconstructs head state from a snapshot plus the journal records
// written after it. The model is supplied by the caller (cost models carry
// function-valued configuration that does not serialize). Replay applies
// each record through the same core mutations the live head performed, so
// the returned tables are deep-equal to the lost head's; any structural
// inconsistency (unknown job, out-of-order lifecycle, prediction mismatch)
// returns an error rather than silently diverging.
func Replay(snap *Snapshot, records []journal.Record, model core.CostModel) (*State, error) {
	st := &State{
		Tables:    core.LoadTables(snap.Tables, model),
		QoS:       snap.QoS,
		NextJobID: snap.NextJobID,
		At:        snap.At,
	}
	byID := make(map[core.JobID]*RecoveredJob, len(snap.Jobs))
	addJob := func(rec *JobRecord) error {
		if byID[rec.ID] != nil {
			return fmt.Errorf("hastate: duplicate job %d", rec.ID)
		}
		rj := &RecoveredJob{Rec: rec, Job: buildJob(rec)}
		st.Jobs = append(st.Jobs, rj)
		byID[rec.ID] = rj
		if rec.ID >= st.NextJobID {
			st.NextJobID = rec.ID
		}
		return nil
	}
	for i := range snap.Jobs {
		if err := addJob(&snap.Jobs[i]); err != nil {
			return nil, err
		}
	}
	dropJob := func(id core.JobID) {
		if byID[id] == nil {
			return
		}
		delete(byID, id)
		for i, rj := range st.Jobs {
			if rj.Rec.ID == id {
				st.Jobs = append(st.Jobs[:i], st.Jobs[i+1:]...)
				break
			}
		}
	}

	for ri := range records {
		rec := &records[ri]
		at := units.Time(rec.At)
		if at > st.At {
			st.At = at
		}
		jobID := core.JobID(rec.Job)
		node := core.NodeID(rec.Node)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("hastate: record %d (%v job=%d task=%d node=%d): %s",
				ri, rec.Kind, rec.Job, rec.Task, rec.Node, fmt.Sprintf(format, args...))
		}
		// task resolves the record's (job, task) pair for lifecycle records.
		task := func() (*RecoveredJob, *TaskInfo, *core.Task, error) {
			rj := byID[jobID]
			if rj == nil {
				return nil, nil, nil, fail("unknown job")
			}
			i := int(rec.Task)
			if i < 0 || i >= len(rj.Rec.Tasks) {
				return nil, nil, nil, fail("task index out of range (%d tasks)", len(rj.Rec.Tasks))
			}
			return rj, &rj.Rec.Tasks[i], &rj.Job.Tasks[i], nil
		}

		switch rec.Kind {
		case journal.KindAdmit:
			var body AdmitBody
			if err := DecodeBody(rec.Body, &body); err != nil {
				return nil, fail("decoding admit: %v", err)
			}
			jr := body.Job
			if err := addJob(&jr); err != nil {
				return nil, err
			}

		case journal.KindDispatch:
			var body DispatchBody
			if err := DecodeBody(rec.Body, &body); err != nil {
				return nil, fail("decoding dispatch: %v", err)
			}
			rj, ti, t, err := task()
			if err != nil {
				return nil, err
			}
			if ti.State == TaskDone {
				return nil, fail("dispatch of a completed task")
			}
			// A re-dispatch after a presumed loss arrives with the task still
			// TaskAssigned; the release itself is not journaled because it
			// mutates no tables. Normalize to queued first so Remaining
			// bookkeeping mirrors the live head's release-then-assign pair.
			if ti.State == TaskAssigned {
				ti.State = TaskQueued
				t.Assigned = false
				rj.Job.Remaining++
			}
			t.Assigned = true
			rj.Job.Remaining--
			pred := st.Tables.CommitAssign(t, node, at)
			if pred != body.Predicted {
				return nil, fail("replayed prediction %v != journaled %v — tables diverged", pred, body.Predicted)
			}
			ti.State, ti.Node, ti.Predicted = TaskAssigned, node, pred

		case journal.KindComplete:
			var body CompleteBody
			if err := DecodeBody(rec.Body, &body); err != nil {
				return nil, fail("decoding complete: %v", err)
			}
			rj, ti, t, err := task()
			if err != nil {
				return nil, err
			}
			if ti.State == TaskDone {
				return nil, fail("duplicate completion")
			}
			// A completion for a released task is the live head's reclaim
			// path: the original execution finished after the deadline fired.
			if ti.State == TaskQueued {
				t.Assigned = true
				rj.Job.Remaining--
			}
			if body.Touch {
				st.Tables.DemandTouchPrefetched(t.Chunk, node)
			}
			st.Tables.Correct(core.TaskResult{
				Task: t, Node: node, Hit: body.Hit,
				Exec: body.Exec, Predicted: t.PredictedExec,
				Evicted: body.Evicted, Finished: at,
			}, at)
			ti.State, ti.Node = TaskDone, node

		case journal.KindFail:
			dropJob(jobID)

		case journal.KindRehome:
			// The live head declared node down: MarkFailed re-homed its
			// chunks, and every in-flight task it held was released.
			st.Tables.MarkFailed(node)
			for _, rj := range st.Jobs {
				for i := range rj.Rec.Tasks {
					ti := &rj.Rec.Tasks[i]
					if ti.State == TaskAssigned && ti.Node == node {
						ti.State, ti.Predicted = TaskQueued, 0
						rj.Job.Tasks[i].Assigned = false
						rj.Job.Tasks[i].PredictedExec = 0
						rj.Job.Remaining++
					}
				}
			}

		case journal.KindRepair:
			st.Tables.MarkRepaired(node, at)

		case journal.KindSuspect:
			st.Tables.MarkSuspect(node)

		case journal.KindUp:
			st.Tables.MarkUp(node)

		case journal.KindResync:
			var body ResyncBody
			if err := DecodeBody(rec.Body, &body); err != nil {
				return nil, fail("decoding resync: %v", err)
			}
			st.Tables.ResyncCache(node, body.Entries)

		case journal.KindPrefetch:
			var body PrefetchBody
			if err := DecodeBody(rec.Body, &body); err != nil {
				return nil, fail("decoding prefetch: %v", err)
			}
			if !body.Loaded {
				break // a cancelled warm never touched the tables
			}
			st.Tables.MarkPrefetched(body.Chunk, node, body.Size)
			for _, ev := range body.Evicted {
				st.Tables.Caches[node].Remove(ev)
				st.Tables.NotePrefetchEvicted(ev, node)
			}

		default:
			return nil, fail("unknown record kind")
		}
	}
	return st, nil
}
